// xok-bench regenerates every table and figure from the paper's
// evaluation as formatted text tables, with the published values shown
// alongside for comparison.
//
// Usage:
//
//	xok-bench                  # run everything
//	xok-bench -run figure2     # one experiment: figure2, mab,
//	                           # protection, table2, figure3, figure4,
//	                           # figure5, emulator, xcp, crash
//	xok-bench -full            # full-size Figures 4/5 (7/1 .. 35/5)
//
// Fault injection (internal/fault):
//
//	xok-bench -run crash                   # crash-point enumeration,
//	                                       # default plan (seed 1, torn
//	                                       # writes)
//	xok-bench -run crash -faults 42:torn   # same sweep, custom plan
//
// Observability (internal/trace):
//
//	xok-bench -run figure2 -trace out.json   # Chrome trace_event
//	                                         # timeline (load it in
//	                                         # ui.perfetto.dev)
//	xok-bench -run figure3 -hist             # p50/p90/p99 latency
//	                                         # histograms per machine
//
// Differential syscall fuzzing (internal/difftest):
//
//	xok-bench -run difftest -seeds 500          # 500 random programs on
//	                                            # every personality,
//	                                            # cross-compared
//	xok-bench -run difftest -seeds 100 \
//	          -faults 42:kill=60,killenv=fuzz   # determinism mode: each
//	                                            # program twice per
//	                                            # personality under the
//	                                            # cloned plan
//	xok-bench -run difftest -replay 452:40:all  # re-run one replay token
//	                                            # bit-identically
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"
	"time"

	"xok/internal/apps"
	"xok/internal/cap"
	"xok/internal/core"
	"xok/internal/difftest"
	"xok/internal/exos"
	"xok/internal/fault"
	"xok/internal/kernel"
	"xok/internal/machine"
	"xok/internal/ostest"
	"xok/internal/parallel"
	"xok/internal/sim"
	"xok/internal/trace"
	"xok/internal/unix"
	"xok/internal/workload"
)

var (
	runFlag      = flag.String("run", "all", "experiment to run (all, figure2, mab, protection, table2, figure3, figure4, figure5, emulator, xcp, crash, difftest, cluster)")
	fullFlag     = flag.Bool("full", false, "run Figures 4/5 at full size (35 jobs); slower")
	traceFlag    = flag.String("trace", "", "write a Chrome trace_event JSON timeline of every simulated machine to this file")
	histFlag     = flag.Bool("hist", false, "print per-machine latency histograms (p50/p90/p99) after the experiments")
	faultsFlag   = flag.String("faults", "", "fault plan as seed[:spec], e.g. 42:torn,loss=50 (see internal/fault); used by -run crash and -run difftest")
	seedsFlag    = flag.Int("seeds", 200, "difftest: number of generated programs")
	stepsFlag    = flag.Int("steps", 60, "difftest: syscalls per generated program")
	baseFlag     = flag.Uint64("base", 1, "difftest: first seed (seed i = base+i)")
	replayFlag   = flag.String("replay", "", "difftest: replay one seed:steps:keep token instead of fuzzing")
	parallelFlag = flag.Int("parallel", 0, "worker count for independent simulated machines (0 = one per CPU, 1 = serial); stdout is byte-identical at any setting")
	snapshotFlag = flag.Bool("snapshot", true, "fork repeated runs from machine snapshots instead of re-booting (-run crash and -run difftest); stdout is byte-identical either way")
	serversFlag  = flag.Int("servers", 4, "cluster: backend machine count")
	connsFlag    = flag.Int("conns", 2000, "cluster: open-loop connection arrivals per cell")
	rateFlag     = flag.Float64("rate", 0, "cluster: offered arrivals per virtual second (0 = default)")
	shardFlag    = flag.Int("shard", 0, "cluster: shard each cell's fabric across this many concurrent islands (0 = single-engine); stdout is byte-identical at any setting, incompatible with -trace/-hist")
	nowheelFlag  = flag.Bool("nowheel", false, "cluster: disable the engines' timer-wheel scheduling backend (pure-heap baseline); stdout is byte-identical either way, only host time moves")
)

// bench carries the shared experiment knobs: the optional trace sink
// (fed by per-leg tracers, merged in presentation order) and the
// resolved worker count.
var bench core.Bench

func main() {
	flag.Parse()
	bench.Parallel = parallel.Workers(*parallelFlag)
	bench.Shard = *shardFlag
	bench.NoWheel = *nowheelFlag
	var tr *trace.Tracer
	if *traceFlag != "" || *histFlag {
		tr = trace.New()
		bench.Trace = tr
	}
	defer dumpTrace(tr)
	experiments := map[string]func(){
		"figure2":    figure2,
		"mab":        mab,
		"protection": protection,
		"table2":     table2,
		"figure3":    figure3,
		"figure4":    func() { globalPerf("Figure 4 (pool 1)", core.Pool1()) },
		"figure5":    func() { globalPerf("Figure 5 (pool 2)", core.Pool2()) },
		"emulator":   emulator,
		"xcp":        xcp,
		"crash":      crash,
		"difftest":   diffFuzz,
		"cluster":    cluster,
	}
	order := []string{"figure2", "mab", "protection", "table2", "emulator", "xcp", "crash", "difftest", "figure3", "figure4", "figure5", "cluster"}
	if *runFlag == "all" {
		for _, name := range order {
			timed(name, experiments[name])
		}
		return
	}
	fn, ok := experiments[*runFlag]
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown experiment %q; choose from %s\n",
			*runFlag, strings.Join(order, ", "))
		os.Exit(2)
	}
	timed(*runFlag, fn)
}

// timed wraps one experiment with a wall-clock summary: host seconds
// spent, virtual cycles simulated, and engine events dispatched with
// their per-host-second rate (summed across every machine the
// experiment ran, on all workers). Events-per-host-second is the
// simulator-throughput number a scheduling-backend change (heap vs
// timer wheel) actually moves. The line goes to stderr so stdout —
// the tables — stays byte-identical across runs and -parallel values.
func timed(name string, fn func()) {
	hostStart := time.Now()
	simStart := sim.CyclesSimulated()
	evStart := sim.EventsDispatched()
	fn()
	secs := time.Since(hostStart).Seconds()
	events := sim.EventsDispatched() - evStart
	rate := 0.0
	if secs > 0 {
		rate = float64(events) / secs
	}
	fmt.Fprintf(os.Stderr, "# %-10s %8.2fs host, %d cycles simulated, %d events (%.0f/s host)\n",
		name, secs, sim.CyclesSimulated()-simStart, events, rate)
}

// dumpTrace flushes the tracer's output after the experiments: the
// Chrome trace_event JSON timeline to -trace's file, the latency
// histogram report to stdout for -hist.
func dumpTrace(tr *trace.Tracer) {
	if tr == nil {
		return
	}
	if *traceFlag != "" {
		f, err := os.Create(*traceFlag)
		if err != nil {
			log.Fatal(err)
		}
		if err := tr.WriteChromeTrace(f); err != nil {
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\nwrote %d trace events to %s (open in ui.perfetto.dev or chrome://tracing)\n",
			tr.Events(), *traceFlag)
		if d := tr.Dropped(); d > 0 {
			fmt.Printf("note: %d events dropped past the %d-event cap; histograms stay exact\n",
				d, trace.MaxEvents)
		}
	}
	if *histFlag {
		fmt.Println()
		if err := tr.WriteHistReport(os.Stdout); err != nil {
			log.Fatal(err)
		}
	}
}

func header(title string) {
	fmt.Println()
	fmt.Println(title)
	fmt.Println(strings.Repeat("=", len(title)))
}

func figure2() {
	header("Figure 2 / Table 1 — I/O-intensive workload (lcc install)")
	fmt.Println("paper totals: Xok/ExOS 41s, OpenBSD/C-FFS 51s, OpenBSD 60s, FreeBSD 59s")
	results, err := bench.Figure2()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n%-28s", "step")
	for _, r := range results {
		fmt.Printf(" %14s", r.System)
	}
	fmt.Println()
	for i := range results[0].Steps {
		fmt.Printf("%-28s", results[0].Steps[i].Name)
		for _, r := range results {
			fmt.Printf(" %14v", r.Steps[i].Elapsed)
		}
		fmt.Println()
	}
	fmt.Printf("%-28s", "TOTAL")
	for _, r := range results {
		fmt.Printf(" %14v", r.Total)
	}
	fmt.Println()
}

func mab() {
	header("Modified Andrew Benchmark (Section 6.2)")
	fmt.Println("paper totals: Xok/ExOS 11.5s, OpenBSD/C-FFS 12.5s, OpenBSD 14.2s, FreeBSD 11.5s")
	results, err := bench.MAB()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n%-12s", "phase")
	for _, r := range results {
		fmt.Printf(" %14s", r.System)
	}
	fmt.Println()
	for i := range results[0].Phases {
		fmt.Printf("%-12s", results[0].Phases[i].Name)
		for _, r := range results {
			fmt.Printf(" %14v", r.Phases[i].Elapsed)
		}
		fmt.Println()
	}
	fmt.Printf("%-12s", "TOTAL")
	for _, r := range results {
		fmt.Printf(" %14v", r.Total)
	}
	fmt.Println()
}

func protection() {
	header("Cost of protection (Section 6.3)")
	fmt.Println("paper: 41.1s -> 39.7s; system calls 300,000 -> 81,000")
	res, err := bench.ProtectionCost()
	if err != nil {
		log.Fatal(err)
	}
	w, wo := res.WithProtection, res.WithoutProtection
	fmt.Printf("\n%-22s %12s %12s %12s\n", "configuration", "total", "syscalls", "prot calls")
	fmt.Printf("%-22s %12v %12d %12d\n", "XN + protection", w.Total, w.Syscalls, w.ProtCalls)
	fmt.Printf("%-22s %12v %12d %12d\n", "no XN, no protection", wo.Total, wo.Syscalls, wo.ProtCalls)
	fmt.Printf("\noverhead: %.1f%% of runtime\n",
		100*float64(w.Total-wo.Total)/float64(wo.Total))
}

func table2() {
	header("Table 2 — pipe latency (microseconds)")
	fmt.Println("paper: shared 13/150, protection 30/148, OpenBSD 34/160 (1B / 8KB)")
	rows, err := bench.Table2()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n%-16s %12s %12s\n", "implementation", "1 byte", "8 KB")
	for _, r := range rows {
		fmt.Printf("%-16s %10.1fus %10.1fus\n", r.Impl, r.Lat1B.Micros(), r.Lat8KB.Micros())
	}
}

func figure3() {
	header("Figure 3 — HTTP document throughput (requests/second)")
	fmt.Println("paper: Cheetah up to 8x the best BSD server; 29.3 MB/s at 100KB (network-limited)")
	results, err := bench.Figure3(24, 300*sim.Millisecond)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n%-12s %10s %12s %10s %9s\n", "server", "doc size", "req/s", "MB/s", "CPU idle")
	last := ""
	for _, r := range results {
		if r.Server != last {
			if last != "" {
				fmt.Println()
			}
			last = r.Server
		}
		fmt.Printf("%-12s %9dB %12.0f %10.2f %8.0f%%\n",
			r.Server, r.DocSize, r.ReqPerSec, r.MBytesPerS, r.CPUIdle*100)
	}
}

func globalPerf(title string, pool []workload.JobKind) {
	header(title + " — global performance under multitasking (Section 8)")
	fmt.Println("paper: Xok/ExOS roughly comparable to FreeBSD; advantage grows with concurrency on pool 2")
	cells := core.Figure45Cells()
	if !*fullFlag {
		cells = cells[:3]
		fmt.Println("(scaled to 7/1..21/3; use -full for 35/5)")
	}
	fmt.Printf("\n%-8s %28s %28s\n", "", "Xok/ExOS", "FreeBSD")
	fmt.Printf("%-8s %10s %8s %8s %10s %8s %8s\n",
		"jobs/conc", "total", "max", "min", "total", "max", "min")
	rows, err := bench.GlobalSweep(pool, cells, 1234)
	if err != nil {
		log.Fatal(err)
	}
	for i, cell := range cells {
		x, f := rows[i][0], rows[i][1]
		fmt.Printf("%3d/%-4d %10v %8v %8v %10v %8v %8v\n",
			cell.TotalJobs, cell.MaxConc,
			x.Total, x.Max, x.Min, f.Total, f.Max, f.Min)
	}
}

func emulator() {
	header("OpenBSD binary emulation (Section 7.1)")
	fmt.Println("paper: getpid 270 cycles on OpenBSD, 100 cycles emulated on Xok/ExOS")

	// Emulated getpid on Xok/ExOS (reroute + ExOS library call). These
	// machines run sequentially in this goroutine, so they may share
	// the main trace sink directly.
	sys := machine.MustNew(machine.Config{Personality: machine.XokExOS, Trace: bench.Trace})
	var emulated sim.Time
	sys.SpawnProc("emu", 0, func(p unix.Proc) {
		ep := emulateGetpid(p)
		const n = 2000
		ep()
		start := p.Now()
		for i := 0; i < n; i++ {
			ep()
		}
		emulated = (p.Now() - start) / n
	})
	sys.Run()

	bsd := machine.MustNew(machine.Config{Personality: machine.OpenBSD, Trace: bench.Trace})
	native := ostest.GetpidCost(machine.Runner(bsd))
	fmt.Printf("\ngetpid: native OpenBSD %d cycles, emulated on Xok/ExOS %d cycles\n",
		native, emulated)
}

// emulateGetpid mirrors internal/emu without importing it here (the
// emulator package has its own tests; this keeps the tool's output
// self-contained).
func emulateGetpid(p unix.Proc) func() int {
	return func() int {
		p.Compute(12) // INT reroute trampoline
		return p.Getpid()
	}
}

func diffFuzz() {
	header("Differential syscall fuzzing (internal/difftest)")
	opt := difftest.Options{
		Seeds:    *seedsFlag,
		Steps:    *stepsFlag,
		BaseSeed: *baseFlag,
		Log:      os.Stdout,
		Parallel: bench.Parallel,
		Snapshot: *snapshotFlag,
	}
	if *faultsFlag != "" {
		plan, err := fault.Parse(*faultsFlag)
		if err != nil {
			log.Fatal(err)
		}
		opt.Faults = plan
		fmt.Printf("mode: determinism (each program twice per personality, plan %s)\n", plan)
	} else {
		fmt.Println("mode: differential (every personality vs every other)")
	}

	if *replayFlag != "" {
		prog, err := difftest.Program(*replayFlag)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("replaying %s:\n%s", *replayFlag, prog)
		div, err := difftest.Replay(*replayFlag, opt)
		if err != nil {
			log.Fatal(err)
		}
		if div != nil {
			fmt.Printf("\nSTILL DIVERGES\n%v\n", div)
			os.Exit(1)
		}
		fmt.Println("\nclean: all personalities agree on this program")
		return
	}

	fmt.Printf("programs: %d x %d syscalls (seeds %d..%d)\n",
		opt.Seeds, opt.Steps, opt.BaseSeed, opt.BaseSeed+uint64(opt.Seeds)-1)
	div, err := difftest.Fuzz(opt)
	if err != nil {
		log.Fatal(err)
	}
	if div != nil {
		prog, _ := difftest.Program(div.Token)
		fmt.Printf("\nDIVERGENCE (shrunk to %d calls)\n%v\nprogram:\n%s", len(div.Keep), div, prog)
		os.Exit(1)
	}
	fmt.Printf("\nclean: zero divergences across %d programs\n", opt.Seeds)
}

func cluster() {
	header("Cluster — N-machine HTTP serving, open-loop load (topology fabric)")
	fmt.Println("Socket/Xok servers behind a balancer; tail latency from internal/trace")
	cells := workload.ClusterCells(*serversFlag, *connsFlag, *rateFlag)
	rs, err := bench.Cluster(cells)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println()
	workload.WriteClusterReport(os.Stdout, rs)
}

func crash() {
	header("Crash-point enumeration (Section 4.4 recovery)")
	fmt.Println("paper: XN's reachability scan rebuilds the free map after any crash;")
	fmt.Println("C-FFS metadata stays consistent without ordered cleanup")
	cfg := workload.CrashConfig{Parallel: bench.Parallel, Snapshot: *snapshotFlag}
	if *faultsFlag != "" {
		plan, err := fault.Parse(*faultsFlag)
		if err != nil {
			log.Fatal(err)
		}
		cfg.Plan = plan
	}
	res, err := workload.CrashEnumerate(cfg)
	if err != nil {
		log.Fatal(err)
	}
	plan := cfg.Plan
	if plan == nil {
		plan = &fault.Plan{Seed: 1, TornWrites: true}
	}
	fmt.Printf("\nfault plan:                %s\n", plan)
	fmt.Printf("write boundaries observed: %d\n", res.Boundaries)
	fmt.Printf("crash points tested:       %d\n", len(res.Points))
	fmt.Printf("recovered clean:           %d/%d\n", len(res.Points)-res.Violations(), len(res.Points))
	for _, pt := range res.Points {
		for _, v := range pt.Violations {
			fmt.Printf("  crash@%v: %s\n", pt.At, v)
		}
	}
	fmt.Printf("outcome digest:            %016x (same seed => same digest)\n", res.Digest)
}

func xcp() {
	header("XCP zero-touch copy (Section 7.2)")
	fmt.Println("paper: XCP is ~3x faster than cp, in core and on disk")
	for _, cold := range []bool{false, true} {
		cpT, xcpT := xcpOnce(cold)
		label := "in core"
		if cold {
			label = "on disk"
		}
		fmt.Printf("%-10s cp=%10v  xcp=%10v  speedup %.1fx\n",
			label, cpT, xcpT, float64(cpT)/float64(xcpT))
	}
}

func xcpOnce(cold bool) (cpT, xcpT sim.Time) {
	const n, size = 8, 400_000
	stage := func() (*exos.System, [][2]string) {
		// Serial machines; the shared sink is safe here (see emulator).
		s := machine.MustNew(machine.Config{Personality: machine.XokExOS, Trace: bench.Trace}).(machine.Xok).S
		pairs := make([][2]string, n)
		s.Spawn("stage", 0, func(p unix.Proc) {
			fds := make([]unix.FD, n)
			for i := range fds {
				fd, err := p.Create(fmt.Sprintf("/s%d", i), 6)
				if err != nil {
					log.Fatal(err)
				}
				fds[i] = fd
				pairs[i] = [2]string{fmt.Sprintf("/s%d", i), fmt.Sprintf("/d%d", i)}
			}
			chunk := make([]byte, sim.DiskBlockSize)
			for off := 0; off < size; off += len(chunk) {
				for i := range fds {
					if _, err := p.Write(fds[i], chunk); err != nil {
						log.Fatal(err)
					}
				}
			}
			for _, fd := range fds {
				p.Close(fd)
			}
			if err := p.Sync(); err != nil {
				log.Fatal(err)
			}
		})
		s.Run()
		if cold {
			s.K.Spawn("evict", func(e *kernel.Env) {
				e.Creds = cap.UnixCreds(0)
				for {
					if _, ok := s.X.RecycleLRU(e); !ok {
						return
					}
				}
			})
			s.Run()
		}
		return s, pairs
	}

	sc, pairsC := stage()
	start := sc.Now()
	var end sim.Time
	sc.Spawn("cp", 0, func(p unix.Proc) {
		for _, pr := range pairsC {
			if err := apps.Cp(p, pr[0], pr[1]); err != nil {
				log.Fatal(err)
			}
		}
		end = p.Now()
	})
	sc.Run()
	cpT = end - start

	sx, pairsX := stage()
	start = sx.Now()
	sx.K.Spawn("xcp", func(e *kernel.Env) {
		e.Creds = cap.UnixCreds(0)
		if err := apps.XCP(e, sx.FS, pairsX); err != nil {
			log.Fatal(err)
		}
		end = sx.Now()
	})
	sx.Run()
	xcpT = end - start
	return cpT, xcpT
}
