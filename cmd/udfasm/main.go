// udfasm assembles, verifies and disassembles UDF template programs —
// the pseudo-RISC language libFSes use to describe their metadata to
// XN (Section 4.1).
//
// Usage:
//
//	udfasm [-det] [-run] [-meta hexbytes] file.udf   (or stdin with -)
//
// Flags:
//
//	-det   verify as a deterministic context (owns-udf rules: ENVW is
//	       rejected)
//	-run   interpret the program and print the result
//	-meta  hex-encoded metadata input for -run (e.g. 0a00000001)
package main

import (
	"encoding/hex"
	"flag"
	"fmt"
	"io"
	"log"
	"os"

	"xok/internal/udf"
)

var (
	detFlag  = flag.Bool("det", false, "verify under deterministic (owns-udf) rules")
	runFlag  = flag.Bool("run", false, "interpret the program")
	metaFlag = flag.String("meta", "", "hex metadata input for -run")
)

func main() {
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: udfasm [-det] [-run] [-meta hex] <file.udf | ->")
		os.Exit(2)
	}

	var src []byte
	var err error
	if flag.Arg(0) == "-" {
		src, err = io.ReadAll(os.Stdin)
	} else {
		src, err = os.ReadFile(flag.Arg(0))
	}
	if err != nil {
		log.Fatal(err)
	}

	prog, err := udf.Assemble(flag.Arg(0), string(src))
	if err != nil {
		log.Fatalf("assemble: %v", err)
	}
	if err := udf.Verify(prog, *detFlag); err != nil {
		log.Fatalf("verify: %v", err)
	}
	mode := "acl/size (nondeterministic allowed)"
	if *detFlag {
		mode = "owns (deterministic)"
	}
	fmt.Printf("; %d instructions, verified as %s\n", prog.Len(), mode)
	fmt.Print(udf.Disassemble(prog))

	if *runFlag {
		var meta []byte
		if *metaFlag != "" {
			meta, err = hex.DecodeString(*metaFlag)
			if err != nil {
				log.Fatalf("bad -meta: %v", err)
			}
		}
		res, err := udf.Run(prog, meta, nil, udf.Env{0, 0, 0, 0}, 0)
		if err != nil {
			log.Fatalf("run: %v", err)
		}
		fmt.Printf("\n; ret = %d, %d steps\n", res.Ret, res.Steps)
		for _, e := range res.Extents {
			fmt.Printf("; emit (start=%d count=%d type=%d)\n", e.Start, e.Count, e.Type)
		}
	}
}
