// Command benchjson converts `go test -bench` output on stdin into a
// stable JSON document on stdout, so benchmark baselines can be
// committed (BENCH_sim.json) and diffed in review instead of eyeballed
// in scrollback.
//
//	go test -bench=. -benchmem ./... | go run ./cmd/benchjson > BENCH_sim.json
//
// Parsed per benchmark line: the run count plus every "value unit"
// metric pair — the standard ns/op, B/op, allocs/op and any custom
// b.ReportMetric units (vsec/system, usec/call, ...). Header lines
// (goos/goarch/cpu) become the "host" block. Everything else passes
// through to stderr untouched so failures stay visible in the pipe.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
)

// Benchmark is one parsed result line.
type Benchmark struct {
	// Name has the -cpu suffix stripped: BenchmarkFoo-4 -> BenchmarkFoo.
	Name string `json:"name"`
	// Runs is b.N — how many iterations the timing averages over.
	Runs int64 `json:"runs"`
	// Metrics maps unit -> value, e.g. {"ns/op": 57.3, "allocs/op": 0}.
	Metrics map[string]float64 `json:"metrics"`
}

// Speedup is one derived serial-vs-parallel comparison: a benchmark
// pair named <Base>Serial / <Base>Parallel<k>.
type Speedup struct {
	Base    string `json:"base"`
	Workers int    `json:"workers"`
	// Speedup is serial ns/op over parallel ns/op (>1 = parallel wins).
	Speedup float64 `json:"speedup"`
	// SerialNsOp/ParallelNsOp restate the inputs for review diffs.
	SerialNsOp   float64 `json:"serial_ns_op"`
	ParallelNsOp float64 `json:"parallel_ns_op"`
	// AllocDelta* are parallel minus serial — how much extra (or saved)
	// heap the fan-out costs per campaign. Present only when both sides
	// ran with -benchmem.
	AllocDeltaBytes   *float64 `json:"alloc_delta_bytes,omitempty"`
	AllocDeltaObjects *float64 `json:"alloc_delta_objects,omitempty"`
	// IntraRun is false for campaigns whose legs cannot fan out (e.g. a
	// single cluster cell sweep: Parallel only distributes whole cells,
	// so the worker count barely moves the number). It flags rows that
	// must not be read as scaling evidence; see shard_speedups for the
	// within-run comparison.
	IntraRun *bool `json:"intra_run,omitempty"`
	// Regression marks a speedup below 1.0 — the "fast" side lost. On a
	// multi-core host `make perf-sanity` refuses to accept these rows;
	// on a single-CPU host parallel rows hovering just under 1.0 are
	// measurement noise (see perfsanity_test.go).
	Regression bool `json:"regression,omitempty"`
}

// ShardSpeedup is one derived single-engine-vs-sharded comparison: a
// benchmark pair named <Base>Serial / <Base>Shard<k>, where the shard
// side splits each simulated fabric across k concurrent islands
// (conservative parallel simulation within one run, not a pool of
// independent runs).
type ShardSpeedup struct {
	Base   string `json:"base"`
	Shards int    `json:"shards"`
	// Speedup is single-engine ns/op over sharded ns/op (>1 = sharding
	// wins).
	Speedup float64 `json:"speedup"`
	// SerialNsOp/ShardNsOp restate the inputs for review diffs.
	SerialNsOp float64 `json:"serial_ns_op"`
	ShardNsOp  float64 `json:"shard_ns_op"`
	// Regression marks a speedup below 1.0 (see Speedup.Regression).
	Regression bool `json:"regression,omitempty"`
}

// SnapshotSpeedup is one derived boot-vs-fork comparison: a benchmark
// pair named <Base><Mode> / <Base>Snapshot<Mode> for the same Mode
// (Serial or Parallel<k>) — the same campaign re-booting machines per
// run versus forking them from snapshots.
type SnapshotSpeedup struct {
	Base string `json:"base"`
	Mode string `json:"mode"`
	// Speedup is boot ns/op over fork ns/op (>1 = forking wins).
	Speedup float64 `json:"speedup"`
	// BootNsOp/ForkNsOp restate the inputs for review diffs.
	BootNsOp float64 `json:"boot_ns_op"`
	ForkNsOp float64 `json:"fork_ns_op"`
	// Regression marks a speedup below 1.0 (see Speedup.Regression).
	Regression bool `json:"regression,omitempty"`
}

// WheelSpeedup is one derived heap-vs-timer-wheel comparison, from a
// benchmark pair named <Base>Heap<Case> / <Base>Wheel<Case> (the
// engine's far-timer microbenchmarks) or <Base>NoWheel / <Base> (a
// whole campaign with the wheel backend off vs on). Speedup > 1 means
// the wheel wins; these runs are single-threaded and deterministic, so
// a regression here is real on any host.
type WheelSpeedup struct {
	Base string `json:"base"`
	// Case is the pending-count suffix of the microbenchmark pair
	// ("65536", "1M"), empty for whole-campaign NoWheel pairs.
	Case string `json:"case,omitempty"`
	// Speedup is heap ns/op over wheel ns/op (>1 = wheel wins).
	Speedup float64 `json:"speedup"`
	// HeapNsOp/WheelNsOp restate the inputs for review diffs.
	HeapNsOp  float64 `json:"heap_ns_op"`
	WheelNsOp float64 `json:"wheel_ns_op"`
	// Regression marks a speedup below 1.0 (see Speedup.Regression).
	Regression bool `json:"regression,omitempty"`
}

// Report is the whole document.
type Report struct {
	// Host pins the hardware/toolchain the numbers were taken on.
	Host map[string]string `json:"host"`
	// Benchmarks appear in input order.
	Benchmarks []Benchmark `json:"benchmarks"`
	// ParallelSpeedups is derived from <Base>Serial / <Base>Parallel<k>
	// benchmark pairs, in the serial side's input order.
	ParallelSpeedups []Speedup `json:"parallel_speedups,omitempty"`
	// SnapshotSpeedups is derived from <Base><Mode> /
	// <Base>Snapshot<Mode> benchmark pairs, in the snapshot side's
	// input order.
	SnapshotSpeedups []SnapshotSpeedup `json:"snapshot_speedups,omitempty"`
	// ShardSpeedups is derived from <Base>Serial / <Base>Shard<k>
	// benchmark pairs, in the serial side's input order.
	ShardSpeedups []ShardSpeedup `json:"shard_speedups,omitempty"`
	// WheelSpeedups is derived from <Base>Heap<Case> / <Base>Wheel<Case>
	// and <Base>NoWheel / <Base> benchmark pairs, in the heap (resp.
	// NoWheel) side's input order.
	WheelSpeedups []WheelSpeedup `json:"wheel_speedups,omitempty"`
}

func main() {
	expect := flag.String("expect", "", "comma-separated benchmark names that must be present; any missing or unparsable one fails the run")
	flag.Parse()

	rep := Report{Host: map[string]string{}}
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		if b, ok := parseBench(line); ok {
			rep.Benchmarks = append(rep.Benchmarks, b)
			continue
		}
		if k, v, ok := parseHeader(line); ok {
			rep.Host[k] = v
			continue
		}
		// PASS/FAIL/ok lines and test noise: keep them on stderr so a
		// failing pipeline is still diagnosable.
		fmt.Fprintln(os.Stderr, line)
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: read: %v\n", err)
		os.Exit(1)
	}
	if len(rep.Benchmarks) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark lines on stdin")
		os.Exit(1)
	}
	if missing := missingBenchmarks(*expect, rep.Benchmarks); len(missing) > 0 {
		fmt.Fprintf(os.Stderr, "benchjson: expected benchmarks missing or unparsable: %s\n", strings.Join(missing, ", "))
		os.Exit(1)
	}
	rep.ParallelSpeedups = deriveSpeedups(rep.Benchmarks)
	rep.SnapshotSpeedups = deriveSnapshotSpeedups(rep.Benchmarks)
	rep.ShardSpeedups = deriveShardSpeedups(rep.Benchmarks)
	rep.WheelSpeedups = deriveWheelSpeedups(rep.Benchmarks)
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: write: %v\n", err)
		os.Exit(1)
	}
}

// missingBenchmarks returns the names from the comma-separated expect
// list that did not produce a parsed result line. A benchmark that
// paniced, failed, or was renamed shows up here instead of silently
// vanishing from the committed baseline.
func missingBenchmarks(expect string, got []Benchmark) []string {
	if expect == "" {
		return nil
	}
	have := make(map[string]bool, len(got))
	for _, b := range got {
		have[b.Name] = true
	}
	var missing []string
	for _, name := range strings.Split(expect, ",") {
		name = strings.TrimSpace(name)
		if name != "" && !have[name] {
			missing = append(missing, name)
		}
	}
	return missing
}

// noIntraRunParallelism names the campaign bases whose Parallel legs
// cannot fan out within a run — the worker pool only distributes whole
// independent sub-runs, and this campaign has too few to matter (the
// cluster sweep is three cells, dominated by the largest). Their
// speedup rows are kept for the record but flagged intra_run: false so
// nobody reads a ~1.0x as a regression or a ~Nx as scaling.
var noIntraRunParallelism = map[string]bool{
	"BenchmarkCluster": true,
}

// deriveSpeedups pairs <Base>Serial with every <Base>Parallel<k> and
// computes the speedup ratio plus the per-campaign allocation deltas.
func deriveSpeedups(benches []Benchmark) []Speedup {
	byName := make(map[string]Benchmark, len(benches))
	for _, b := range benches {
		byName[b.Name] = b
	}
	var out []Speedup
	for _, s := range benches {
		base, ok := strings.CutSuffix(s.Name, "Serial")
		if !ok {
			continue
		}
		for _, p := range benches {
			rest, ok := strings.CutPrefix(p.Name, base+"Parallel")
			if !ok {
				continue
			}
			workers, err := strconv.Atoi(rest)
			if err != nil {
				continue
			}
			sNs, pNs := s.Metrics["ns/op"], p.Metrics["ns/op"]
			if sNs == 0 || pNs == 0 {
				continue
			}
			sp := Speedup{
				Base:         base,
				Workers:      workers,
				Speedup:      sNs / pNs,
				SerialNsOp:   sNs,
				ParallelNsOp: pNs,
			}
			sB, okSB := s.Metrics["B/op"]
			pB, okPB := p.Metrics["B/op"]
			if okSB && okPB {
				d := pB - sB
				sp.AllocDeltaBytes = &d
			}
			sA, okSA := s.Metrics["allocs/op"]
			pA, okPA := p.Metrics["allocs/op"]
			if okSA && okPA {
				d := pA - sA
				sp.AllocDeltaObjects = &d
			}
			if noIntraRunParallelism[base] {
				f := false
				sp.IntraRun = &f
			}
			sp.Regression = sp.Speedup < 1.0
			out = append(out, sp)
		}
	}
	return out
}

// deriveShardSpeedups pairs <Base>Serial with every <Base>Shard<k>:
// the same campaign on one engine versus split across k concurrent
// islands inside each run.
func deriveShardSpeedups(benches []Benchmark) []ShardSpeedup {
	byName := make(map[string]Benchmark, len(benches))
	for _, b := range benches {
		byName[b.Name] = b
	}
	var out []ShardSpeedup
	for _, s := range benches {
		base, ok := strings.CutSuffix(s.Name, "Serial")
		if !ok {
			continue
		}
		for _, p := range benches {
			rest, ok := strings.CutPrefix(p.Name, base+"Shard")
			if !ok {
				continue
			}
			shards, err := strconv.Atoi(rest)
			if err != nil {
				continue
			}
			sNs, pNs := s.Metrics["ns/op"], p.Metrics["ns/op"]
			if sNs == 0 || pNs == 0 {
				continue
			}
			out = append(out, ShardSpeedup{
				Base:       base,
				Shards:     shards,
				Speedup:    sNs / pNs,
				SerialNsOp: sNs,
				ShardNsOp:  pNs,
				Regression: sNs/pNs < 1.0,
			})
		}
	}
	return out
}

// deriveWheelSpeedups pairs the heap baseline with the timer-wheel
// side: <Base>Heap<Case> with <Base>Wheel<Case> (engine far-timer
// microbenchmarks at a fixed pending count) and <Base>NoWheel with
// <Base> (whole campaigns with the wheel backend off vs on).
func deriveWheelSpeedups(benches []Benchmark) []WheelSpeedup {
	byName := make(map[string]Benchmark, len(benches))
	for _, b := range benches {
		byName[b.Name] = b
	}
	row := func(base, c string, heap, wheel Benchmark) (WheelSpeedup, bool) {
		hNs, wNs := heap.Metrics["ns/op"], wheel.Metrics["ns/op"]
		if hNs == 0 || wNs == 0 {
			return WheelSpeedup{}, false
		}
		return WheelSpeedup{
			Base: base, Case: c,
			Speedup:    hNs / wNs,
			HeapNsOp:   hNs,
			WheelNsOp:  wNs,
			Regression: hNs/wNs < 1.0,
		}, true
	}
	var out []WheelSpeedup
	for _, h := range benches {
		if base, ok := strings.CutSuffix(h.Name, "NoWheel"); ok {
			if wheel, found := byName[base]; found {
				if sp, valid := row(base, "", h, wheel); valid {
					out = append(out, sp)
				}
			}
			continue
		}
		i := strings.Index(h.Name, "Heap")
		if i < 0 {
			continue
		}
		base, c := h.Name[:i], h.Name[i+len("Heap"):]
		wheel, found := byName[base+"Wheel"+c]
		if !found {
			continue
		}
		if sp, valid := row(base, c, h, wheel); valid {
			out = append(out, sp)
		}
	}
	return out
}

// deriveSnapshotSpeedups pairs <Base>Snapshot<Mode> with <Base><Mode>
// for Mode = Serial or Parallel<k>, comparing the fork fast path
// against the boot-per-run baseline at the same worker count.
func deriveSnapshotSpeedups(benches []Benchmark) []SnapshotSpeedup {
	byName := make(map[string]Benchmark, len(benches))
	for _, b := range benches {
		byName[b.Name] = b
	}
	validMode := func(mode string) bool {
		if mode == "Serial" {
			return true
		}
		rest, ok := strings.CutPrefix(mode, "Parallel")
		if !ok {
			return false
		}
		_, err := strconv.Atoi(rest)
		return err == nil
	}
	var out []SnapshotSpeedup
	for _, f := range benches {
		i := strings.LastIndex(f.Name, "Snapshot")
		if i < 0 {
			continue
		}
		base, mode := f.Name[:i], f.Name[i+len("Snapshot"):]
		if !validMode(mode) {
			continue
		}
		boot, ok := byName[base+mode]
		if !ok {
			continue
		}
		bNs, fNs := boot.Metrics["ns/op"], f.Metrics["ns/op"]
		if bNs == 0 || fNs == 0 {
			continue
		}
		out = append(out, SnapshotSpeedup{
			Base:       base,
			Mode:       mode,
			Speedup:    bNs / fNs,
			BootNsOp:   bNs,
			ForkNsOp:   fNs,
			Regression: bNs/fNs < 1.0,
		})
	}
	return out
}

// parseHeader matches the `go test -bench` preamble: "goos: linux",
// "goarch: amd64", "pkg: xok", "cpu: ...". pkg is skipped — one
// report spans several packages.
func parseHeader(line string) (key, val string, ok bool) {
	for _, k := range []string{"goos", "goarch", "cpu"} {
		if rest, found := strings.CutPrefix(line, k+": "); found {
			return k, strings.TrimSpace(rest), true
		}
	}
	return "", "", false
}

// parseBench matches a result line:
//
//	BenchmarkEngineStepAfter16-4   20000000   57.3 ns/op   0 B/op   0 allocs/op
//
// i.e. name, b.N, then (value, unit) pairs.
func parseBench(line string) (Benchmark, bool) {
	f := strings.Fields(line)
	if len(f) < 4 || !strings.HasPrefix(f[0], "Benchmark") || len(f)%2 != 0 {
		return Benchmark{}, false
	}
	runs, err := strconv.ParseInt(f[1], 10, 64)
	if err != nil {
		return Benchmark{}, false
	}
	b := Benchmark{Name: f[0], Runs: runs, Metrics: map[string]float64{}}
	if i := strings.LastIndexByte(b.Name, '-'); i > 0 {
		if _, err := strconv.Atoi(b.Name[i+1:]); err == nil {
			b.Name = b.Name[:i]
		}
	}
	for i := 2; i+1 < len(f); i += 2 {
		v, err := strconv.ParseFloat(f[i], 64)
		if err != nil {
			return Benchmark{}, false
		}
		b.Metrics[f[i+1]] = v
	}
	return b, true
}
