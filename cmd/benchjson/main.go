// Command benchjson converts `go test -bench` output on stdin into a
// stable JSON document on stdout, so benchmark baselines can be
// committed (BENCH_sim.json) and diffed in review instead of eyeballed
// in scrollback.
//
//	go test -bench=. -benchmem ./... | go run ./cmd/benchjson > BENCH_sim.json
//
// Parsed per benchmark line: the run count plus every "value unit"
// metric pair — the standard ns/op, B/op, allocs/op and any custom
// b.ReportMetric units (vsec/system, usec/call, ...). Header lines
// (goos/goarch/cpu) become the "host" block. Everything else passes
// through to stderr untouched so failures stay visible in the pipe.
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"strconv"
	"strings"
)

// Benchmark is one parsed result line.
type Benchmark struct {
	// Name has the -cpu suffix stripped: BenchmarkFoo-4 -> BenchmarkFoo.
	Name string `json:"name"`
	// Runs is b.N — how many iterations the timing averages over.
	Runs int64 `json:"runs"`
	// Metrics maps unit -> value, e.g. {"ns/op": 57.3, "allocs/op": 0}.
	Metrics map[string]float64 `json:"metrics"`
}

// Report is the whole document.
type Report struct {
	// Host pins the hardware/toolchain the numbers were taken on.
	Host map[string]string `json:"host"`
	// Benchmarks appear in input order.
	Benchmarks []Benchmark `json:"benchmarks"`
}

func main() {
	rep := Report{Host: map[string]string{}}
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		if b, ok := parseBench(line); ok {
			rep.Benchmarks = append(rep.Benchmarks, b)
			continue
		}
		if k, v, ok := parseHeader(line); ok {
			rep.Host[k] = v
			continue
		}
		// PASS/FAIL/ok lines and test noise: keep them on stderr so a
		// failing pipeline is still diagnosable.
		fmt.Fprintln(os.Stderr, line)
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: read: %v\n", err)
		os.Exit(1)
	}
	if len(rep.Benchmarks) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark lines on stdin")
		os.Exit(1)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: write: %v\n", err)
		os.Exit(1)
	}
}

// parseHeader matches the `go test -bench` preamble: "goos: linux",
// "goarch: amd64", "pkg: xok", "cpu: ...". pkg is skipped — one
// report spans several packages.
func parseHeader(line string) (key, val string, ok bool) {
	for _, k := range []string{"goos", "goarch", "cpu"} {
		if rest, found := strings.CutPrefix(line, k+": "); found {
			return k, strings.TrimSpace(rest), true
		}
	}
	return "", "", false
}

// parseBench matches a result line:
//
//	BenchmarkEngineStepAfter16-4   20000000   57.3 ns/op   0 B/op   0 allocs/op
//
// i.e. name, b.N, then (value, unit) pairs.
func parseBench(line string) (Benchmark, bool) {
	f := strings.Fields(line)
	if len(f) < 4 || !strings.HasPrefix(f[0], "Benchmark") || len(f)%2 != 0 {
		return Benchmark{}, false
	}
	runs, err := strconv.ParseInt(f[1], 10, 64)
	if err != nil {
		return Benchmark{}, false
	}
	b := Benchmark{Name: f[0], Runs: runs, Metrics: map[string]float64{}}
	if i := strings.LastIndexByte(b.Name, '-'); i > 0 {
		if _, err := strconv.Atoi(b.Name[i+1:]); err == nil {
			b.Name = b.Name[:i]
		}
	}
	for i := 2; i+1 < len(f); i += 2 {
		v, err := strconv.ParseFloat(f[i], 64)
		if err != nil {
			return Benchmark{}, false
		}
		b.Metrics[f[i+1]] = v
	}
	return b, true
}
