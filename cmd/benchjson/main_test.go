package main

import "testing"

func TestParseBench(t *testing.T) {
	b, ok := parseBench("BenchmarkEngineStepAfter16-4   \t20000000\t        57.3 ns/op\t       0 B/op\t       0 allocs/op")
	if !ok {
		t.Fatal("line did not parse")
	}
	if b.Name != "BenchmarkEngineStepAfter16" {
		t.Fatalf("name %q (cpu suffix must be stripped)", b.Name)
	}
	if b.Runs != 20000000 {
		t.Fatalf("runs %d", b.Runs)
	}
	want := map[string]float64{"ns/op": 57.3, "B/op": 0, "allocs/op": 0}
	for unit, v := range want {
		if b.Metrics[unit] != v {
			t.Fatalf("metric %s = %v, want %v", unit, b.Metrics[unit], v)
		}
	}
}

func TestParseBenchCustomMetric(t *testing.T) {
	b, ok := parseBench("BenchmarkMAB-8 1 1234567 ns/op 9.41 vsec/xok")
	if !ok {
		t.Fatal("line did not parse")
	}
	if b.Metrics["vsec/xok"] != 9.41 {
		t.Fatalf("custom metric lost: %v", b.Metrics)
	}
}

func TestParseBenchRejectsNoise(t *testing.T) {
	for _, line := range []string{
		"PASS",
		"ok  \txok\t12.3s",
		"goos: linux",
		"BenchmarkBroken-4 notanumber 1 ns/op",
		"--- FAIL: BenchmarkX",
		"BenchmarkOdd-4 10 57.3", // dangling value without unit
	} {
		if _, ok := parseBench(line); ok {
			t.Fatalf("noise line parsed as benchmark: %q", line)
		}
	}
}

func TestDeriveSpeedups(t *testing.T) {
	benches := []Benchmark{
		{Name: "BenchmarkDifftest100Serial", Metrics: map[string]float64{
			"ns/op": 800e6, "B/op": 100e6, "allocs/op": 1000,
		}},
		{Name: "BenchmarkDifftest100Parallel4", Metrics: map[string]float64{
			"ns/op": 400e6, "B/op": 110e6, "allocs/op": 1100,
		}},
		{Name: "BenchmarkUnpaired", Metrics: map[string]float64{"ns/op": 5}},
	}
	got := deriveSpeedups(benches)
	if len(got) != 1 {
		t.Fatalf("derived %d speedups, want 1: %+v", len(got), got)
	}
	s := got[0]
	if s.Base != "BenchmarkDifftest100" || s.Workers != 4 {
		t.Fatalf("pairing wrong: %+v", s)
	}
	if s.Speedup != 2.0 {
		t.Fatalf("speedup = %v, want 2.0", s.Speedup)
	}
	if s.AllocDeltaBytes == nil || *s.AllocDeltaBytes != 10e6 {
		t.Fatalf("alloc byte delta = %v, want 10e6", s.AllocDeltaBytes)
	}
	if s.AllocDeltaObjects == nil || *s.AllocDeltaObjects != 100 {
		t.Fatalf("alloc object delta = %v, want 100", s.AllocDeltaObjects)
	}
}

func TestDeriveSpeedupsIntraRunFlag(t *testing.T) {
	benches := []Benchmark{
		{Name: "BenchmarkClusterSerial", Metrics: map[string]float64{"ns/op": 100e6}},
		{Name: "BenchmarkClusterParallel4", Metrics: map[string]float64{"ns/op": 98e6}},
		{Name: "BenchmarkDifftest100Serial", Metrics: map[string]float64{"ns/op": 800e6}},
		{Name: "BenchmarkDifftest100Parallel4", Metrics: map[string]float64{"ns/op": 400e6}},
	}
	got := deriveSpeedups(benches)
	if len(got) != 2 {
		t.Fatalf("derived %d speedups, want 2: %+v", len(got), got)
	}
	for _, s := range got {
		switch s.Base {
		case "BenchmarkCluster":
			if s.IntraRun == nil || *s.IntraRun {
				t.Fatalf("cluster row must be flagged intra_run=false: %+v", s)
			}
		default:
			if s.IntraRun != nil {
				t.Fatalf("%s must not carry the intra_run flag: %+v", s.Base, s)
			}
		}
	}
}

func TestDeriveShardSpeedups(t *testing.T) {
	benches := []Benchmark{
		{Name: "BenchmarkClusterSerial", Metrics: map[string]float64{"ns/op": 900e6}},
		{Name: "BenchmarkClusterShard4", Metrics: map[string]float64{"ns/op": 300e6}},
		{Name: "BenchmarkClusterShardX", Metrics: map[string]float64{"ns/op": 5}}, // malformed count
		{Name: "BenchmarkUnpairedShard2", Metrics: map[string]float64{"ns/op": 5}},
	}
	got := deriveShardSpeedups(benches)
	if len(got) != 1 {
		t.Fatalf("derived %d shard speedups, want 1: %+v", len(got), got)
	}
	s := got[0]
	if s.Base != "BenchmarkCluster" || s.Shards != 4 {
		t.Fatalf("pairing wrong: %+v", s)
	}
	if s.Speedup != 3.0 {
		t.Fatalf("speedup = %v, want 3.0", s.Speedup)
	}
}

func TestDeriveSnapshotSpeedups(t *testing.T) {
	benches := []Benchmark{
		{Name: "BenchmarkCrashSweepSerial", Metrics: map[string]float64{"ns/op": 600e6}},
		{Name: "BenchmarkCrashSweepParallel4", Metrics: map[string]float64{"ns/op": 200e6}},
		{Name: "BenchmarkCrashSweepSnapshotSerial", Metrics: map[string]float64{"ns/op": 300e6}},
		{Name: "BenchmarkCrashSweepSnapshotParallel4", Metrics: map[string]float64{"ns/op": 100e6}},
		{Name: "BenchmarkSnapshotOrphan", Metrics: map[string]float64{"ns/op": 5}}, // no mode suffix
	}
	got := deriveSnapshotSpeedups(benches)
	if len(got) != 2 {
		t.Fatalf("derived %d snapshot speedups, want 2: %+v", len(got), got)
	}
	if got[0].Base != "BenchmarkCrashSweep" || got[0].Mode != "Serial" || got[0].Speedup != 2.0 {
		t.Fatalf("serial pairing wrong: %+v", got[0])
	}
	if got[1].Base != "BenchmarkCrashSweep" || got[1].Mode != "Parallel4" || got[1].Speedup != 2.0 {
		t.Fatalf("parallel pairing wrong: %+v", got[1])
	}
}

func TestDeriveWheelSpeedups(t *testing.T) {
	benches := []Benchmark{
		{Name: "BenchmarkEngineTimersHeap65536", Metrics: map[string]float64{"ns/op": 172.7}},
		{Name: "BenchmarkEngineTimersWheel65536", Metrics: map[string]float64{"ns/op": 85.8}},
		{Name: "BenchmarkEngineTimersHeap1M", Metrics: map[string]float64{"ns/op": 232.9}},
		{Name: "BenchmarkEngineTimersWheel1M", Metrics: map[string]float64{"ns/op": 130.7}},
		{Name: "BenchmarkClusterConns100k", Metrics: map[string]float64{"ns/op": 2.0e9}},
		{Name: "BenchmarkClusterConns100kNoWheel", Metrics: map[string]float64{"ns/op": 2.8e9}},
		{Name: "BenchmarkUnpairedHeap8", Metrics: map[string]float64{"ns/op": 5}},
		{Name: "BenchmarkOrphanNoWheel", Metrics: map[string]float64{"ns/op": 5}},
	}
	got := deriveWheelSpeedups(benches)
	if len(got) != 3 {
		t.Fatalf("derived %d wheel speedups, want 3: %+v", len(got), got)
	}
	if got[0].Base != "BenchmarkEngineTimers" || got[0].Case != "65536" || got[0].Speedup < 2.0 {
		t.Fatalf("65536 pairing wrong: %+v", got[0])
	}
	if got[1].Case != "1M" || got[1].Speedup < 1.7 {
		t.Fatalf("1M pairing wrong: %+v", got[1])
	}
	if got[2].Base != "BenchmarkClusterConns100k" || got[2].Case != "" || got[2].Speedup < 1.3 {
		t.Fatalf("NoWheel pairing wrong: %+v", got[2])
	}
	for _, s := range got {
		if s.Regression {
			t.Fatalf("wheel-wins row flagged as regression: %+v", s)
		}
	}
}

func TestDeriveSpeedupsRegressionFlag(t *testing.T) {
	benches := []Benchmark{
		{Name: "BenchmarkSlowSerial", Metrics: map[string]float64{"ns/op": 100}},
		{Name: "BenchmarkSlowParallel4", Metrics: map[string]float64{"ns/op": 110}},
		{Name: "BenchmarkSlowShard4", Metrics: map[string]float64{"ns/op": 120}},
		{Name: "BenchmarkSlowSnapshotSerial", Metrics: map[string]float64{"ns/op": 130}},
		{Name: "BenchmarkEngineTimersHeap1M", Metrics: map[string]float64{"ns/op": 90}},
		{Name: "BenchmarkEngineTimersWheel1M", Metrics: map[string]float64{"ns/op": 100}},
	}
	if got := deriveSpeedups(benches); len(got) != 1 || !got[0].Regression {
		t.Fatalf("parallel slowdown not flagged: %+v", got)
	}
	if got := deriveShardSpeedups(benches); len(got) != 1 || !got[0].Regression {
		t.Fatalf("shard slowdown not flagged: %+v", got)
	}
	if got := deriveSnapshotSpeedups(benches); len(got) != 1 || !got[0].Regression {
		t.Fatalf("snapshot slowdown not flagged: %+v", got)
	}
	if got := deriveWheelSpeedups(benches); len(got) != 1 || !got[0].Regression {
		t.Fatalf("wheel slowdown not flagged: %+v", got)
	}
}

func TestDeriveSpeedupsNoBenchmem(t *testing.T) {
	benches := []Benchmark{
		{Name: "BenchmarkXSerial", Metrics: map[string]float64{"ns/op": 10}},
		{Name: "BenchmarkXParallel2", Metrics: map[string]float64{"ns/op": 5}},
	}
	got := deriveSpeedups(benches)
	if len(got) != 1 || got[0].AllocDeltaBytes != nil || got[0].AllocDeltaObjects != nil {
		t.Fatalf("alloc deltas should be absent without -benchmem: %+v", got)
	}
}

func TestMissingBenchmarks(t *testing.T) {
	got := []Benchmark{{Name: "BenchmarkA"}, {Name: "BenchmarkB"}}
	if m := missingBenchmarks("", got); m != nil {
		t.Fatalf("empty expect list flagged %v", m)
	}
	if m := missingBenchmarks("BenchmarkA,BenchmarkB", got); m != nil {
		t.Fatalf("all present but flagged %v", m)
	}
	m := missingBenchmarks("BenchmarkA, BenchmarkC,BenchmarkD", got)
	if len(m) != 2 || m[0] != "BenchmarkC" || m[1] != "BenchmarkD" {
		t.Fatalf("missing = %v, want [BenchmarkC BenchmarkD]", m)
	}
}

func TestParseHeader(t *testing.T) {
	k, v, ok := parseHeader("cpu: AMD EPYC 7B13")
	if !ok || k != "cpu" || v != "AMD EPYC 7B13" {
		t.Fatalf("got %q=%q ok=%v", k, v, ok)
	}
	if _, _, ok := parseHeader("pkg: xok"); ok {
		t.Fatal("pkg line must not become a host key")
	}
}
