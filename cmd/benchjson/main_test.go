package main

import "testing"

func TestParseBench(t *testing.T) {
	b, ok := parseBench("BenchmarkEngineStepAfter16-4   \t20000000\t        57.3 ns/op\t       0 B/op\t       0 allocs/op")
	if !ok {
		t.Fatal("line did not parse")
	}
	if b.Name != "BenchmarkEngineStepAfter16" {
		t.Fatalf("name %q (cpu suffix must be stripped)", b.Name)
	}
	if b.Runs != 20000000 {
		t.Fatalf("runs %d", b.Runs)
	}
	want := map[string]float64{"ns/op": 57.3, "B/op": 0, "allocs/op": 0}
	for unit, v := range want {
		if b.Metrics[unit] != v {
			t.Fatalf("metric %s = %v, want %v", unit, b.Metrics[unit], v)
		}
	}
}

func TestParseBenchCustomMetric(t *testing.T) {
	b, ok := parseBench("BenchmarkMAB-8 1 1234567 ns/op 9.41 vsec/xok")
	if !ok {
		t.Fatal("line did not parse")
	}
	if b.Metrics["vsec/xok"] != 9.41 {
		t.Fatalf("custom metric lost: %v", b.Metrics)
	}
}

func TestParseBenchRejectsNoise(t *testing.T) {
	for _, line := range []string{
		"PASS",
		"ok  \txok\t12.3s",
		"goos: linux",
		"BenchmarkBroken-4 notanumber 1 ns/op",
		"--- FAIL: BenchmarkX",
		"BenchmarkOdd-4 10 57.3", // dangling value without unit
	} {
		if _, ok := parseBench(line); ok {
			t.Fatalf("noise line parsed as benchmark: %q", line)
		}
	}
}

func TestParseHeader(t *testing.T) {
	k, v, ok := parseHeader("cpu: AMD EPYC 7B13")
	if !ok || k != "cpu" || v != "AMD EPYC 7B13" {
		t.Fatalf("got %q=%q ok=%v", k, v, ok)
	}
	if _, _, ok := parseHeader("pkg: xok"); ok {
		t.Fatal("pkg line must not become a host key")
	}
}
