package xio

import (
	"fmt"
	"testing"

	"xok/internal/cap"
	"xok/internal/exos"
	"xok/internal/kernel"
	"xok/internal/sim"
	"xok/internal/unix"
)

func boot(t *testing.T) *exos.System {
	t.Helper()
	return exos.Boot(exos.Config{})
}

func runEnv(t *testing.T, s *exos.System, body func(e *kernel.Env) error) {
	t.Helper()
	s.K.Spawn("xio", func(e *kernel.Env) {
		e.Creds = cap.UnixCreds(0)
		if err := body(e); err != nil {
			t.Errorf("xio: %v", err)
		}
	})
	s.Run()
}

func stageDoc(t *testing.T, s *exos.System, path string, size int) {
	t.Helper()
	s.Spawn("stage", 0, func(p unix.Proc) {
		data := make([]byte, size)
		for i := range data {
			data[i] = byte(i * 31)
		}
		fd, err := p.Create(path, 6)
		if err != nil {
			t.Error(err)
			return
		}
		if _, err := p.Write(fd, data); err != nil {
			t.Error(err)
			return
		}
		p.Close(fd)
		if err := p.Sync(); err != nil {
			t.Error(err)
		}
	})
	s.Run()
}

func TestCacheMissThenHits(t *testing.T) {
	s := boot(t)
	stageDoc(t, s, "/doc", 10_000)
	c := NewCache(s.FS)
	runEnv(t, s, func(e *kernel.Env) error {
		en, err := c.Lookup(e, "/doc")
		if err != nil {
			return err
		}
		if en.Size != 10_000 || len(en.Blocks) != 3 {
			t.Errorf("entry = %+v", en)
		}
		sum := en.Checksum
		if sum == 0 {
			t.Error("checksum not precomputed")
		}
		// Hits are cheap and return the identical entry.
		start := e.Kernel().Now()
		en2, err := c.Lookup(e, "/doc")
		if err != nil {
			return err
		}
		hitCost := e.Kernel().Now() - start
		if en2 != en {
			t.Error("hit returned a different entry")
		}
		if hitCost > 2*sim.Microsecond {
			t.Errorf("hit cost %v, want sub-2us pointer chase", hitCost)
		}
		if c.Hits != 1 || c.Misses != 1 {
			t.Errorf("hits=%d misses=%d", c.Hits, c.Misses)
		}
		return nil
	})
}

func TestCachePinsBlocks(t *testing.T) {
	s := boot(t)
	stageDoc(t, s, "/doc", 8192)
	c := NewCache(s.FS)
	runEnv(t, s, func(e *kernel.Env) error {
		en, err := c.Lookup(e, "/doc")
		if err != nil {
			return err
		}
		// Evict everything; the cached doc's blocks must survive.
		for {
			if _, ok := s.X.RecycleLRU(e); !ok {
				break
			}
		}
		for _, b := range en.Blocks {
			if !s.X.Cached(b) {
				t.Errorf("pinned block %d evicted", b)
			}
		}
		// After Evict the blocks become reclaimable.
		c.Evict("/doc")
		if c.Len() != 0 {
			t.Error("entry survived Evict")
		}
		if _, ok := s.X.RecycleLRU(e); !ok {
			t.Error("unpinned blocks not reclaimable")
		}
		return nil
	})
}

func TestChecksumStatsCharged(t *testing.T) {
	s := boot(t)
	stageDoc(t, s, "/doc", 20_000)
	c := NewCache(s.FS)
	runEnv(t, s, func(e *kernel.Env) error {
		before := s.K.Stats.Get(sim.CtrChecksums)
		if _, err := c.Lookup(e, "/doc"); err != nil {
			return err
		}
		if got := s.K.Stats.Get(sim.CtrChecksums) - before; got != 20_000 {
			t.Errorf("checksummed %d bytes, want 20000", got)
		}
		// Hits checksum nothing.
		before = s.K.Stats.Get(sim.CtrChecksums)
		if _, err := c.Lookup(e, "/doc"); err != nil {
			return err
		}
		if got := s.K.Stats.Get(sim.CtrChecksums) - before; got != 0 {
			t.Errorf("hit checksummed %d bytes", got)
		}
		return nil
	})
}

func TestLookupMissing(t *testing.T) {
	s := boot(t)
	c := NewCache(s.FS)
	runEnv(t, s, func(e *kernel.Env) error {
		if _, err := c.Lookup(e, "/nope"); err == nil {
			t.Error("missing doc did not error")
		}
		return nil
	})
}

func TestStoreGroupedColocates(t *testing.T) {
	// HTML grouping: a page and its inlines land contiguously, so a
	// cold fetch of the whole group is (nearly) one disk schedule.
	s := boot(t)
	groups := [][]Doc{
		{{Name: "index.html", Size: 8000}, {Name: "a.gif", Size: 6000}, {Name: "b.gif", Size: 6000}},
		{{Name: "index.html", Size: 8000}, {Name: "c.gif", Size: 12000}},
	}
	runEnv(t, s, func(e *kernel.Env) error {
		if err := StoreGrouped(e, s.FS, "/web", groups); err != nil {
			return err
		}
		// All blocks of group 0 must sit within a tight disk span.
		var blocks []int64
		for _, d := range groups[0] {
			ref, _, err := s.FS.Lookup(e, GroupPath("/web", 0, d.Name))
			if err != nil {
				return err
			}
			exts, err := s.FS.FileExtents(e, ref)
			if err != nil {
				return err
			}
			for _, ext := range exts {
				for j := uint32(0); j < ext.Count; j++ {
					blocks = append(blocks, int64(ext.Start+uint64(j)))
				}
			}
		}
		min, max := blocks[0], blocks[0]
		for _, b := range blocks {
			if b < min {
				min = b
			}
			if b > max {
				max = b
			}
		}
		if span := max - min; span > 64 {
			t.Errorf("group 0 spans %d blocks; co-location broken", span)
		}
		return nil
	})
}

func TestGroupedColdFetchBeatsScattered(t *testing.T) {
	// The ablation for Cheetah's HTML-based grouping: cold-reading a
	// grouped page + inlines vs the same files scattered across the
	// disk with other data interleaved.
	coldFetch := func(grouped bool) sim.Time {
		s := boot(t)
		docs := []Doc{
			{Name: "index.html", Size: 10000},
			{Name: "a.gif", Size: 15000}, {Name: "b.gif", Size: 15000},
			{Name: "c.gif", Size: 15000},
		}
		var elapsed sim.Time
		runEnv(t, s, func(e *kernel.Env) error {
			if grouped {
				if err := StoreGrouped(e, s.FS, "/web", [][]Doc{docs}); err != nil {
					return err
				}
			} else {
				// Scattered: interleave each doc with filler files in
				// separate directories.
				for i, d := range docs {
					dir := fmt.Sprintf("/dir%d", i)
					if err := s.FS.Mkdir(e, dir, 0, 0, 7); err != nil {
						return err
					}
					ref, err := s.FS.Create(e, dir+"/"+d.Name, 0, 0, 6)
					if err != nil {
						return err
					}
					if _, err := s.FS.WriteAt(e, ref, 0, make([]byte, d.Size)); err != nil {
						return err
					}
					// Filler pushes the next doc away on disk.
					fref, err := s.FS.Create(e, dir+"/filler", 0, 0, 6)
					if err != nil {
						return err
					}
					if _, err := s.FS.WriteAt(e, fref, 0, make([]byte, 600_000)); err != nil {
						return err
					}
				}
			}
			if err := s.FS.Sync(e); err != nil {
				return err
			}
			for {
				if _, ok := s.X.RecycleLRU(e); !ok {
					break
				}
			}
			cache := NewCache(s.FS)
			start := e.Kernel().Now()
			for i, d := range docs {
				path := GroupPath("/web", 0, d.Name)
				if !grouped {
					path = fmt.Sprintf("/dir%d/%s", i, d.Name)
				}
				if _, err := cache.Lookup(e, path); err != nil {
					return err
				}
			}
			elapsed = e.Kernel().Now() - start
			return nil
		})
		return elapsed
	}
	g := coldFetch(true)
	sc := coldFetch(false)
	t.Logf("cold page fetch: grouped=%v scattered=%v (%.2fx)", g, sc, float64(sc)/float64(g))
	if g >= sc {
		t.Errorf("grouped fetch (%v) should beat scattered (%v)", g, sc)
	}
}
