// Package xio is the extensible I/O library of Section 7.3: "designed
// to allow application writers to exploit domain-specific knowledge and
// to simplify the construction of high-performance servers". Cheetah
// builds on it; the package provides:
//
//   - a merged file cache / retransmission pool: documents are pinned
//     in the XN buffer cache and transmitted directly from it, with
//     per-file checksums precomputed at load time ("Cheetah avoids all
//     in-memory data touching (by the CPU) ... by transmitting file
//     data directly from the file cache using precomputed file
//     checksums");
//   - application-level caching of pointers to file cache blocks (the
//     "simple (though generally valuable) extensions" that make even
//     the vanilla socket interface on XIO faster);
//   - HTML-based file grouping: co-locating files referenced by a
//     document so cold fetches of a page and its inlines are one disk
//     schedule.
package xio

import (
	"xok/internal/cffs"
	"xok/internal/disk"
	"xok/internal/kernel"
	"xok/internal/sim"
)

// Entry is one cached document: block pointers into the XN buffer
// cache plus the precomputed checksum.
type Entry struct {
	Path     string
	Size     int
	Ref      cffs.Ref
	Blocks   []disk.BlockNo
	Checksum uint32
}

// Cache is the merged file cache / retransmission pool.
type Cache struct {
	FS      *cffs.FS
	entries map[string]*Entry

	// Hits/Misses are exposed for the benchmark reports.
	Hits   int64
	Misses int64
}

// NewCache builds an empty cache over a file system.
func NewCache(fs *cffs.FS) *Cache {
	return &Cache{FS: fs, entries: make(map[string]*Entry)}
}

// Lookup returns the cached entry, loading (and checksumming) it on a
// miss. Hits cost a hash probe; no bytes are touched.
func (c *Cache) Lookup(e *kernel.Env, path string) (*Entry, error) {
	if en, ok := c.entries[path]; ok {
		c.Hits++
		e.Use(200) // hash probe + pointer chase
		return en, nil
	}
	c.Misses++
	ref, in, err := c.FS.Lookup(e, path)
	if err != nil {
		return nil, err
	}
	en := &Entry{Path: path, Size: int(in.Size), Ref: ref}
	// Bind every block into the cache (bind-time access check), pin
	// it, and checksum it once.
	exts, err := c.FS.FileExtents(e, ref)
	if err != nil {
		return nil, err
	}
	need := (int(in.Size) + sim.DiskBlockSize - 1) / sim.DiskBlockSize
	for _, ext := range exts {
		for j := uint32(0); j < ext.Count && len(en.Blocks) < need; j++ {
			en.Blocks = append(en.Blocks, disk.BlockNo(ext.Start+uint64(j)))
		}
	}
	// Fault the data in through the normal read path (one batched,
	// mostly-sequential disk schedule thanks to co-location), then pin.
	if in.Size > 0 {
		buf := make([]byte, in.Size)
		if _, err := c.FS.ReadAt(e, ref, 0, buf); err != nil {
			return nil, err
		}
		// Precompute the file checksum, stored with the entry.
		e.Use(sim.ChecksumCost(int(in.Size)))
		c.FS.X.K.Stats.Add(sim.CtrChecksums, int64(in.Size))
		var sum uint32
		for _, b := range buf {
			sum = sum*31 + uint32(b)
		}
		en.Checksum = sum
	}
	for _, b := range en.Blocks {
		c.FS.X.Pin(b)
	}
	c.entries[path] = en
	return en, nil
}

// Evict drops a document from the cache, unpinning its pages.
func (c *Cache) Evict(path string) {
	en, ok := c.entries[path]
	if !ok {
		return
	}
	for _, b := range en.Blocks {
		c.FS.X.Unpin(b)
	}
	delete(c.entries, path)
}

// Len reports cached documents.
func (c *Cache) Len() int { return len(c.entries) }

// StoreGrouped writes a document set so that each group is co-located
// on disk (HTML-based grouping: "Cheetah co-locates files included in
// an HTML document by allocating them in disk blocks adjacent to that
// file when possible"). Each group becomes one directory, so C-FFS's
// co-location policy places the page and its inlines contiguously.
func StoreGrouped(e *kernel.Env, fs *cffs.FS, base string, groups [][]Doc) error {
	if err := fs.Mkdir(e, base, 0, 0, 7); err != nil && err != cffs.ErrExists {
		return err
	}
	for gi, group := range groups {
		dir := groupDir(base, gi)
		if err := fs.Mkdir(e, dir, 0, 0, 7); err != nil {
			return err
		}
		for _, d := range group {
			ref, err := fs.Create(e, dir+"/"+d.Name, 0, 0, 6)
			if err != nil {
				return err
			}
			if _, err := fs.WriteAt(e, ref, 0, make([]byte, d.Size)); err != nil {
				return err
			}
		}
	}
	return nil
}

// Doc names one document in a group.
type Doc struct {
	Name string
	Size int
}

// GroupPath returns the path of document name in group gi.
func GroupPath(base string, gi int, name string) string {
	return groupDir(base, gi) + "/" + name
}

func groupDir(base string, gi int) string {
	return base + "/g" + itoa(gi)
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var buf [12]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[i:])
}
