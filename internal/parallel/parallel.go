// Package parallel fans independent simulated-machine runs across OS
// threads while keeping every observable output identical to a serial
// run.
//
// The simulator's machines are fully self-contained once the tracer is
// routed through machine.Config: one engine, one kernel, one fault
// plan, one tracer per machine, touched by exactly one goroutine at a
// time under the token-handoff protocol. Distinct machines therefore
// parallelize trivially — the only thing that must NOT parallelize is
// the *consumption* of their results, because logs, tables, replay
// tokens and digest comparisons are all order-sensitive.
//
// Stream is the primitive that enforces this split: produce(i) calls
// run concurrently on a bounded worker pool, consume(i, r) runs
// strictly in index order in the caller's goroutine. A caller that
// does all its printing and comparing inside consume gets byte-
// identical output at any worker count, including 1 (which takes a
// no-goroutine fast path, so serial runs stay exactly as before).
package parallel

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Workers normalizes a requested worker count: n <= 0 selects one
// worker per available CPU (the -parallel flag's default).
func Workers(n int) int {
	if n <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return n
}

// Stream runs produce(i) for i in [0, n) on up to workers goroutines
// and delivers each result to consume(i, r) strictly in increasing
// index order, always in the caller's goroutine. consume returning
// false stops the stream early: no new produce calls start, in-flight
// ones finish and their results are discarded. workers <= 1 (after
// Workers normalization callers usually do themselves; Stream treats
// the value literally except that <= 0 means GOMAXPROCS) runs fully
// serially with no goroutines, producing and consuming alternately.
func Stream[R any](workers, n int, produce func(int) R, consume func(int, R) bool) {
	workers = Workers(workers)
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if !consume(i, produce(i)) {
				return
			}
		}
		return
	}

	type indexed struct {
		i int
		r R
	}
	// Permit protocol: a worker takes one permit per index it claims and
	// the consumer returns one per result it consumes. Claimed-but-
	// unconsumed indices therefore never exceed the worker count, which
	// is exactly the reorder-buffer bound: without it, one slow index
	// lets fast workers race ahead and buffer up to n results. done is
	// closed on early stop so blocked workers exit instead of waiting
	// for permits that will never come back.
	permits := make(chan struct{}, workers)
	for w := 0; w < workers; w++ {
		permits <- struct{}{}
	}
	done := make(chan struct{})
	out := make(chan indexed, workers)
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-permits:
				case <-done:
					return
				}
				i := int(next.Add(1) - 1)
				if i >= n {
					return
				}
				r := produce(i)
				select {
				case out <- indexed{i, r}:
				case <-done:
					return
				}
			}
		}()
	}
	go func() {
		wg.Wait()
		close(out)
	}()

	// Reorder buffer: results arrive in completion order, leave in
	// index order. The permit protocol above caps its size at the
	// worker count.
	pending := make(map[int]R, workers)
	want := 0
	stopped := false
	for r := range out {
		pending[r.i] = r.r
		if streamPendingObserver != nil {
			streamPendingObserver(len(pending))
		}
		for {
			v, ok := pending[want]
			if !ok {
				break
			}
			delete(pending, want)
			if !stopped {
				if !consume(want, v) {
					stopped = true
					close(done)
				} else {
					// Return the permit. Never blocks: at most `workers`
					// permits exist and this one was held by the index
					// just consumed.
					permits <- struct{}{}
				}
			}
			want++
		}
	}
}

// streamPendingObserver, when non-nil, receives the reorder buffer's
// size after each insertion. Test hook: the bound test asserts the
// buffer never exceeds the worker count.
var streamPendingObserver func(size int)

// Map runs f(i) for i in [0, n) on up to workers goroutines and
// returns the n results in index order.
func Map[R any](workers, n int, f func(int) R) []R {
	out := make([]R, n)
	Stream(workers, n, f, func(i int, r R) bool {
		out[i] = r
		return true
	})
	return out
}

// MapErr runs f(i) for i in [0, n) on up to workers goroutines and
// returns the error of the lowest failing index (nil if all succeed).
// Because failures are observed in index order, the returned error is
// deterministic regardless of which worker finished first, matching a
// serial loop that stops at its first error.
func MapErr(workers, n int, f func(int) error) error {
	var firstErr error
	Stream(workers, n, f, func(i int, err error) bool {
		if err != nil && firstErr == nil {
			firstErr = err
			return false // no need to start more; in-flight still finish
		}
		return true
	})
	return firstErr
}
