package parallel

import (
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
	"time"
)

func TestStreamOrdered(t *testing.T) {
	for _, workers := range []int{1, 2, 4, 16} {
		var got []int
		Stream(workers, 100, func(i int) int {
			// Finish out of order on purpose.
			time.Sleep(time.Duration((i%5)*100) * time.Microsecond)
			return i * i
		}, func(i, r int) bool {
			got = append(got, r)
			return true
		})
		if len(got) != 100 {
			t.Fatalf("workers=%d: consumed %d results, want 100", workers, len(got))
		}
		for i, r := range got {
			if r != i*i {
				t.Fatalf("workers=%d: result[%d] = %d, want %d (out of order)", workers, i, r, i*i)
			}
		}
	}
}

func TestStreamConsumeInCallerGoroutine(t *testing.T) {
	// The whole point: consume may touch caller state without locks.
	sum := 0
	Stream(8, 1000, func(i int) int { return i }, func(_, r int) bool {
		sum += r
		return true
	})
	if sum != 1000*999/2 {
		t.Fatalf("sum = %d, want %d", sum, 1000*999/2)
	}
}

func TestStreamEarlyStop(t *testing.T) {
	var produced atomic.Int64
	consumed := 0
	Stream(4, 10_000, func(i int) int {
		produced.Add(1)
		return i
	}, func(i, r int) bool {
		consumed++
		return i < 9 // stop after consuming index 9
	})
	if consumed != 10 {
		t.Fatalf("consumed %d, want 10", consumed)
	}
	if p := produced.Load(); p >= 10_000 {
		t.Fatalf("early stop did not stop production (produced %d)", p)
	}
}

func TestStreamSerialFastPathAlternates(t *testing.T) {
	// With one worker, produce(i+1) must not start before consume(i):
	// the serial path is the reference behavior parallel runs must match.
	var trace []string
	Stream(1, 3, func(i int) int {
		trace = append(trace, fmt.Sprintf("p%d", i))
		return i
	}, func(i, _ int) bool {
		trace = append(trace, fmt.Sprintf("c%d", i))
		return true
	})
	want := "[p0 c0 p1 c1 p2 c2]"
	if got := fmt.Sprint(trace); got != want {
		t.Fatalf("serial order %v, want %v", got, want)
	}
}

func TestStreamZeroItems(t *testing.T) {
	called := false
	Stream(4, 0, func(int) int { return 0 }, func(int, int) bool {
		called = true
		return true
	})
	if called {
		t.Fatal("consume called with zero items")
	}
}

func TestMap(t *testing.T) {
	got := Map(8, 50, func(i int) string { return fmt.Sprint(i) })
	for i, s := range got {
		if s != fmt.Sprint(i) {
			t.Fatalf("Map[%d] = %q", i, s)
		}
	}
}

func TestMapErrFirstByIndex(t *testing.T) {
	errA := errors.New("a")
	errB := errors.New("b")
	for trial := 0; trial < 20; trial++ {
		err := MapErr(8, 100, func(i int) error {
			switch i {
			case 7:
				return errA
			case 3:
				// Make the lower-index error the SLOWER one.
				time.Sleep(time.Millisecond)
				return errB
			}
			return nil
		})
		if err != errB {
			t.Fatalf("trial %d: err = %v, want lowest-index error %v", trial, err, errB)
		}
	}
	if err := MapErr(4, 10, func(int) error { return nil }); err != nil {
		t.Fatalf("clean run returned %v", err)
	}
}

func TestWorkers(t *testing.T) {
	if Workers(3) != 3 {
		t.Fatal("explicit count not honored")
	}
	if Workers(0) < 1 || Workers(-1) < 1 {
		t.Fatal("defaulted worker count < 1")
	}
}
