package parallel

import (
	"errors"
	"fmt"
	"runtime"
	"sync/atomic"
	"testing"
	"time"
)

func TestStreamOrdered(t *testing.T) {
	for _, workers := range []int{1, 2, 4, 16} {
		var got []int
		Stream(workers, 100, func(i int) int {
			// Finish out of order on purpose.
			time.Sleep(time.Duration((i%5)*100) * time.Microsecond)
			return i * i
		}, func(i, r int) bool {
			got = append(got, r)
			return true
		})
		if len(got) != 100 {
			t.Fatalf("workers=%d: consumed %d results, want 100", workers, len(got))
		}
		for i, r := range got {
			if r != i*i {
				t.Fatalf("workers=%d: result[%d] = %d, want %d (out of order)", workers, i, r, i*i)
			}
		}
	}
}

func TestStreamConsumeInCallerGoroutine(t *testing.T) {
	// The whole point: consume may touch caller state without locks.
	sum := 0
	Stream(8, 1000, func(i int) int { return i }, func(_, r int) bool {
		sum += r
		return true
	})
	if sum != 1000*999/2 {
		t.Fatalf("sum = %d, want %d", sum, 1000*999/2)
	}
}

func TestStreamEarlyStop(t *testing.T) {
	var produced atomic.Int64
	consumed := 0
	Stream(4, 10_000, func(i int) int {
		produced.Add(1)
		return i
	}, func(i, r int) bool {
		consumed++
		return i < 9 // stop after consuming index 9
	})
	if consumed != 10 {
		t.Fatalf("consumed %d, want 10", consumed)
	}
	if p := produced.Load(); p >= 10_000 {
		t.Fatalf("early stop did not stop production (produced %d)", p)
	}
}

func TestStreamSerialFastPathAlternates(t *testing.T) {
	// With one worker, produce(i+1) must not start before consume(i):
	// the serial path is the reference behavior parallel runs must match.
	var trace []string
	Stream(1, 3, func(i int) int {
		trace = append(trace, fmt.Sprintf("p%d", i))
		return i
	}, func(i, _ int) bool {
		trace = append(trace, fmt.Sprintf("c%d", i))
		return true
	})
	want := "[p0 c0 p1 c1 p2 c2]"
	if got := fmt.Sprint(trace); got != want {
		t.Fatalf("serial order %v, want %v", got, want)
	}
}

func TestStreamZeroItems(t *testing.T) {
	called := false
	Stream(4, 0, func(int) int { return 0 }, func(int, int) bool {
		called = true
		return true
	})
	if called {
		t.Fatal("consume called with zero items")
	}
}

func TestMap(t *testing.T) {
	got := Map(8, 50, func(i int) string { return fmt.Sprint(i) })
	for i, s := range got {
		if s != fmt.Sprint(i) {
			t.Fatalf("Map[%d] = %q", i, s)
		}
	}
}

func TestMapErrFirstByIndex(t *testing.T) {
	errA := errors.New("a")
	errB := errors.New("b")
	for trial := 0; trial < 20; trial++ {
		err := MapErr(8, 100, func(i int) error {
			switch i {
			case 7:
				return errA
			case 3:
				// Make the lower-index error the SLOWER one.
				time.Sleep(time.Millisecond)
				return errB
			}
			return nil
		})
		if err != errB {
			t.Fatalf("trial %d: err = %v, want lowest-index error %v", trial, err, errB)
		}
	}
	if err := MapErr(4, 10, func(int) error { return nil }); err != nil {
		t.Fatalf("clean run returned %v", err)
	}
}

func TestStreamReorderBufferBounded(t *testing.T) {
	// One slow head index while every other produce returns instantly:
	// fast workers race ahead of index 0, and each completed-but-
	// unconsumable result parks in the reorder buffer. The permit
	// protocol must cap that buffer at the worker count; the unbounded
	// version buffered up to n results here.
	const workers, n = 4, 200
	maxPending := 0
	streamPendingObserver = func(size int) {
		if size > maxPending {
			maxPending = size
		}
	}
	defer func() { streamPendingObserver = nil }()

	var got []int
	Stream(workers, n, func(i int) int {
		if i == 0 {
			time.Sleep(20 * time.Millisecond)
		}
		return i
	}, func(i, r int) bool {
		got = append(got, r)
		return true
	})
	if maxPending > workers {
		t.Fatalf("reorder buffer reached %d entries, documented bound is the worker count (%d)", maxPending, workers)
	}
	if len(got) != n {
		t.Fatalf("consumed %d results, want %d", len(got), n)
	}
	for i, r := range got {
		if r != i {
			t.Fatalf("result[%d] = %d: order lost", i, r)
		}
	}
}

func TestStreamEarlyStopNoLeakNoLoss(t *testing.T) {
	// Early stop with slow producers still in flight: Stream must (1)
	// consume exactly the prefix, in order, (2) stop claiming new
	// indices, and (3) return only after every worker goroutine has
	// exited — nothing may keep running or block forever on the permit
	// or output channels.
	const workers, n = 4, 1000
	before := runtime.NumGoroutine()

	var produced atomic.Int64
	var got []int
	doneCh := make(chan struct{})
	go func() {
		defer close(doneCh)
		Stream(workers, n, func(i int) int {
			produced.Add(1)
			if i > 1 {
				time.Sleep(5 * time.Millisecond) // in flight while the stop lands
			}
			return i
		}, func(i, r int) bool {
			got = append(got, r)
			return i != 1 // stop after consuming index 1
		})
	}()
	select {
	case <-doneCh:
	case <-time.After(10 * time.Second):
		t.Fatal("Stream did not return after early stop (worker deadlock)")
	}

	if want := []int{0, 1}; len(got) != 2 || got[0] != 0 || got[1] != 1 {
		t.Fatalf("consumed %v, want %v", got, want)
	}
	// No new claims after the stop: every produce call traces to a
	// permit issued before done closed — the initial `workers` permits
	// plus one returned for the single successful consume (plus one for
	// a worker that won a permit/done race at the instant of the stop).
	if p := produced.Load(); p > int64(workers+2) {
		t.Fatalf("produced %d results after early stop, want <= %d (production did not stop)", p, workers+2)
	}
	// Worker goroutines are gone (poll briefly: exiting goroutines are
	// counted until the scheduler reaps them).
	deadline := time.Now().Add(2 * time.Second)
	for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if g := runtime.NumGoroutine(); g > before {
		t.Fatalf("%d goroutines alive after Stream returned, %d before it started: leak", g, before)
	}
}

func TestWorkers(t *testing.T) {
	if Workers(3) != 3 {
		t.Fatal("explicit count not honored")
	}
	if Workers(0) < 1 || Workers(-1) < 1 {
		t.Fatal("defaulted worker count < 1")
	}
}
