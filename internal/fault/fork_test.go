package fault

import "testing"

// TestForkResumesStreams is the contract snapshots depend on: Fork
// preserves every channel's consumed xorshift position, so a forked
// plan draws the same continuation the original would — while Clone
// rewinds to the start of every stream. A machine forked mid-run must
// see the fault schedule it would have seen from boot; a Fork that
// rewound (behaved like Clone) would re-deal the prefix's faults.
func TestForkResumesStreams(t *testing.T) {
	p := &Plan{Seed: 5, ReadErrRate: 4, LossRate: 3}
	draw := func(q *Plan, n int) []bool {
		out := make([]bool, 0, 2*n)
		for i := 0; i < n; i++ {
			out = append(out, q.ReadError(), q.DropSegment())
		}
		return out
	}
	eq := func(a, b []bool) bool {
		if len(a) != len(b) {
			return false
		}
		for i := range a {
			if a[i] != b[i] {
				return false
			}
		}
		return true
	}

	prefix := draw(p, 57)
	f := p.Fork()
	c := p.Clone()

	cont := draw(p, 100)
	if got := draw(f, 100); !eq(got, cont) {
		t.Fatal("fork did not resume the streams mid-position")
	}
	full := draw(c, 157)
	if !eq(full[:len(prefix)], prefix) || !eq(full[len(prefix):], cont) {
		t.Fatal("clone did not rewind the streams to the start")
	}
}

// TestForkPreservesKillCounter: the kill-at-Nth-syscall channel is a
// counter plus a one-shot latch, both consumed state; a fork must pick
// up the count mid-sequence so the kill fires at the same absolute
// syscall whether the run forked or not.
func TestForkPreservesKillCounter(t *testing.T) {
	p := &Plan{Seed: 1, KillSyscallNth: 12}
	for i := 0; i < 9; i++ {
		if p.KillNow("fuzz") {
			t.Fatalf("kill fired at syscall %d, want 12", i+1)
		}
	}
	f := p.Fork()
	for i := 0; i < 2; i++ {
		if f.KillNow("fuzz") {
			t.Fatalf("forked kill fired at syscall %d, want 12", 10+i)
		}
	}
	if !f.KillNow("fuzz") {
		t.Fatal("forked kill did not fire at the 12th syscall")
	}
	if !f.Killed() {
		t.Fatal("forked latch not set after firing")
	}
	// The original is untouched by the fork's draws, and a fork taken
	// after the latch fires stays fired.
	if p.Killed() {
		t.Fatal("fork's kill leaked back into the original")
	}
	if !f.Fork().Killed() {
		t.Fatal("fork of a fired plan re-armed the kill")
	}
}
