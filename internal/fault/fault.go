// Package fault is the simulation's deterministic fault-injection
// layer: one seed-driven Plan that every subsystem consults — the disk
// for media errors and torn writes, the kernel for env kills
// mid-syscall and whole-machine crashes, the network for segment loss,
// duplication and reordering.
//
// The paper's central protection claim (Sections 5 and 6.3) is that XN
// and C-FFS keep metadata integrity even though untrusted libOSes own
// the file-system code. A claim like that is only credible when
// failure behaviour is exercised systematically, and a simulator can
// do what hardware cannot: fail the same component at the same virtual
// instant on every run. All fault decisions come from per-channel
// xorshift streams derived from Plan.Seed, so a plan replays
// identically — the property the crash-enumeration harness
// (internal/workload) relies on for bit-identical outcomes.
//
// # Zero overhead when disabled
//
// Like internal/trace, every method is safe (and a near-free no-op) on
// a nil *Plan: subsystems hold a plain *Plan pointer and the disabled
// path is one nil check. No machine pays for fault injection unless a
// plan is attached.
//
// Like sim.Engine, a Plan is not safe for concurrent use; the token
// handoff protocol guarantees only one goroutine per machine touches
// it at a time.
package fault

import (
	"errors"
	"fmt"
	"sort"
	"strconv"
	"strings"

	"xok/internal/sim"
)

// ErrMedia reports an unrecoverable media error on a disk read — the
// drive returned garbage for a sector and said so.
var ErrMedia = errors.New("fault: disk media error")

// Plan is one machine's fault schedule. The zero value (and a nil
// pointer) injects nothing. Rates are "one in N" probabilities (0 =
// never), evaluated against independent deterministic streams so that
// changing one rate does not perturb the draws of another channel.
type Plan struct {
	// Seed drives every fault channel. Two plans with equal Seed and
	// equal rates make identical decisions in an identical simulation.
	Seed uint64

	// ReadErrRate fails roughly one in N disk block reads with
	// ErrMedia (the request completes, carrying the error).
	ReadErrRate int

	// TornWrites makes Disk.CrashImage apply the partially-transferred
	// prefix of any write that is mid-service at crash time — the
	// power-failure case where a multi-block write stops between (or
	// inside) sectors.
	TornWrites bool

	// LossRate drops roughly one in N TCP segments, in both directions
	// (data, ACKs, SYNs). DupRate delivers one in N segments twice;
	// ReorderRate delays one in N segments by a few wire times so a
	// successor overtakes it.
	LossRate    int
	DupRate     int
	ReorderRate int

	// KillSyscallNth kills an environment at its Nth syscall (1-based;
	// 0 = never). KillEnv restricts the kill to environments whose
	// name contains it; empty matches any environment.
	KillSyscallNth int
	KillEnv        string

	// CrashAt is the virtual time at which harnesses cut the machine's
	// power (Kernel.Crash). 0 = no scheduled crash. The plan itself
	// does not act on it; it travels here so one "seed:spec" string
	// describes the whole failure scenario.
	CrashAt sim.Time

	syscalls int
	killed   bool
	rngs     map[string]*sim.RNG
	onWrite  func(at sim.Time, block int64, count int)
}

// Enabled reports whether any faults can fire. Nil-safe.
func (p *Plan) Enabled() bool { return p != nil }

// rng returns the named channel's private stream, derived from the
// plan seed and the channel name (FNV-1a) so channels are independent.
func (p *Plan) rng(channel string) *sim.RNG {
	if p.rngs == nil {
		p.rngs = make(map[string]*sim.RNG)
	}
	r, ok := p.rngs[channel]
	if !ok {
		h := uint64(14695981039346656037)
		for i := 0; i < len(channel); i++ {
			h = (h ^ uint64(channel[i])) * 1099511628211
		}
		r = sim.NewRNG(p.Seed ^ h)
		p.rngs[channel] = r
	}
	return r
}

// hit draws from channel's stream and reports a one-in-rate event.
// The stream only advances when the channel is armed (rate > 0), so
// enabling one fault type never perturbs the others. p is non-nil
// (callers nil-check before reading their rate field).
func (p *Plan) hit(channel string, rate int) bool {
	if rate <= 0 {
		return false
	}
	return p.rng(channel).Intn(rate) == 0
}

// ReadError reports whether this disk block read fails with ErrMedia.
func (p *Plan) ReadError() bool {
	return p != nil && p.hit("disk.read", p.ReadErrRate)
}

// Torn reports whether crash images include partially-transferred
// writes.
func (p *Plan) Torn() bool { return p != nil && p.TornWrites }

// DropSegment reports whether this TCP segment is lost on the wire.
func (p *Plan) DropSegment() bool {
	return p != nil && p.hit("net.loss", p.LossRate)
}

// DupSegment reports whether this segment is delivered twice.
func (p *Plan) DupSegment() bool {
	return p != nil && p.hit("net.dup", p.DupRate)
}

// ReorderSegment reports whether this segment is delayed so that a
// later one overtakes it.
func (p *Plan) ReorderSegment() bool {
	return p != nil && p.hit("net.reorder", p.ReorderRate)
}

// KillNow is consulted by Env.Syscall: it counts syscalls made by
// environments matching KillEnv and fires exactly once, at the Nth.
func (p *Plan) KillNow(envName string) bool {
	if p == nil || p.KillSyscallNth <= 0 || p.killed {
		return false
	}
	if p.KillEnv != "" && !strings.Contains(envName, p.KillEnv) {
		return false
	}
	p.syscalls++
	if p.syscalls < p.KillSyscallNth {
		return false
	}
	p.killed = true
	return true
}

// Killed reports whether the env-kill already fired.
func (p *Plan) Killed() bool { return p != nil && p.killed }

// ObserveWrites installs fn to be called at every disk write
// completion (the synchronous-write boundaries the crash-enumeration
// harness crashes at). Panics on a nil plan — observation requires a
// plan by design.
func (p *Plan) ObserveWrites(fn func(at sim.Time, block int64, count int)) {
	p.onWrite = fn
}

// NoteWrite reports one completed disk write to the observer. Nil-safe
// and free when no observer is installed.
func (p *Plan) NoteWrite(at sim.Time, block int64, count int) {
	if p == nil || p.onWrite == nil {
		return
	}
	p.onWrite(at, block, count)
}

// Clone returns a fresh plan with the same knobs and none of the
// consumed state (rng streams, syscall counter, kill latch, write
// observer), so a re-run under the clone injects the identical fault
// sequence. Nil-safe.
func (p *Plan) Clone() *Plan {
	if p == nil {
		return nil
	}
	return &Plan{
		Seed:           p.Seed,
		ReadErrRate:    p.ReadErrRate,
		TornWrites:     p.TornWrites,
		LossRate:       p.LossRate,
		DupRate:        p.DupRate,
		ReorderRate:    p.ReorderRate,
		KillSyscallNth: p.KillSyscallNth,
		KillEnv:        p.KillEnv,
		CrashAt:        p.CrashAt,
	}
}

// Fork returns a copy that *preserves* the consumed state: every
// per-channel xorshift stream continues from its current position, and
// the syscall counter and kill latch carry over. A machine forked from
// a snapshot uses this so it draws the exact fault schedule a run from
// boot would see past the snapshot point — Clone would rewind the
// streams and replay the prefix's faults. The write observer is NOT
// carried over (it is harness-side instrumentation of one specific
// machine, not simulated state). Nil-safe; safe to call concurrently
// on a frozen plan (it only reads p).
func (p *Plan) Fork() *Plan {
	if p == nil {
		return nil
	}
	cp := p.Clone()
	cp.syscalls = p.syscalls
	cp.killed = p.killed
	if p.rngs != nil {
		cp.rngs = make(map[string]*sim.RNG, len(p.rngs))
		for ch, r := range p.rngs {
			cp.rngs[ch] = r.Clone()
		}
	}
	return cp
}

// Parse builds a plan from a "seed:spec" string (the cmd/xok-bench
// -faults flag). The seed is a decimal or 0x-hex integer; spec is a
// comma-separated list of key=value fault knobs:
//
//	loss=N      one-in-N segment loss, both directions
//	dup=N       one-in-N segment duplication
//	reorder=N   one-in-N segment reordering
//	readerr=N   one-in-N disk read media errors
//	torn        torn (partially-transferred) writes in crash images
//	kill=N      kill an environment at its Nth syscall
//	killenv=S   restrict the kill to env names containing S
//	crash=D     machine crash at virtual time D (e.g. 250ms, 1.5s)
//
// "1234" alone (no colon) is a seed with no faults armed — useful for
// harnesses that inject their own schedule, like crash enumeration.
func Parse(s string) (*Plan, error) {
	if s == "" {
		return nil, errors.New("fault: empty spec")
	}
	seedStr, spec, _ := strings.Cut(s, ":")
	seed, err := strconv.ParseUint(seedStr, 0, 64)
	if err != nil {
		return nil, fmt.Errorf("fault: bad seed %q: %v", seedStr, err)
	}
	p := &Plan{Seed: seed}
	if spec == "" {
		return p, nil
	}
	for _, kv := range strings.Split(spec, ",") {
		key, val, hasVal := strings.Cut(kv, "=")
		intVal := func() (int, error) {
			if !hasVal {
				return 0, fmt.Errorf("fault: %s needs a value", key)
			}
			return strconv.Atoi(val)
		}
		var err error
		switch key {
		case "loss":
			p.LossRate, err = intVal()
		case "dup":
			p.DupRate, err = intVal()
		case "reorder":
			p.ReorderRate, err = intVal()
		case "readerr":
			p.ReadErrRate, err = intVal()
		case "torn":
			if hasVal {
				err = fmt.Errorf("fault: torn takes no value")
			}
			p.TornWrites = true
		case "kill":
			p.KillSyscallNth, err = intVal()
		case "killenv":
			if !hasVal || val == "" {
				err = fmt.Errorf("fault: killenv needs a value")
			}
			p.KillEnv = val
		case "crash":
			if !hasVal {
				err = fmt.Errorf("fault: crash needs a duration")
			} else {
				p.CrashAt, err = sim.ParseTime(val)
			}
		default:
			err = fmt.Errorf("fault: unknown knob %q", key)
		}
		if err != nil {
			return nil, err
		}
	}
	return p, nil
}

// String renders the plan in Parse's format.
func (p *Plan) String() string {
	if p == nil {
		return "<none>"
	}
	var knobs []string
	add := func(k string, v int) {
		if v > 0 {
			knobs = append(knobs, fmt.Sprintf("%s=%d", k, v))
		}
	}
	add("loss", p.LossRate)
	add("dup", p.DupRate)
	add("reorder", p.ReorderRate)
	add("readerr", p.ReadErrRate)
	if p.TornWrites {
		knobs = append(knobs, "torn")
	}
	add("kill", p.KillSyscallNth)
	if p.KillEnv != "" {
		knobs = append(knobs, "killenv="+p.KillEnv)
	}
	if p.CrashAt > 0 {
		knobs = append(knobs, "crash="+p.CrashAt.String())
	}
	sort.Strings(knobs)
	if len(knobs) == 0 {
		return fmt.Sprintf("%d", p.Seed)
	}
	return fmt.Sprintf("%d:%s", p.Seed, strings.Join(knobs, ","))
}
