package fault

import (
	"testing"

	"xok/internal/sim"
)

func TestNilPlanIsInert(t *testing.T) {
	var p *Plan
	if p.Enabled() || p.ReadError() || p.Torn() || p.DropSegment() ||
		p.DupSegment() || p.ReorderSegment() || p.KillNow("x") || p.Killed() {
		t.Fatal("nil plan injected a fault")
	}
	p.NoteWrite(0, 0, 1) // must not panic
	if p.String() != "<none>" {
		t.Fatalf("nil String = %q", p.String())
	}
}

func TestChannelsAreIndependentAndDeterministic(t *testing.T) {
	draw := func(p *Plan) []bool {
		var out []bool
		for i := 0; i < 200; i++ {
			out = append(out, p.DropSegment())
		}
		return out
	}
	a := draw(&Plan{Seed: 7, LossRate: 4})
	b := draw(&Plan{Seed: 7, LossRate: 4})
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at draw %d", i)
		}
	}
	// Arming an unrelated channel must not perturb the loss stream.
	c := &Plan{Seed: 7, LossRate: 4, DupRate: 3, ReadErrRate: 5}
	for i := 0; i < 200; i++ {
		c.DupSegment()
		c.ReadError()
		if got := c.DropSegment(); got != a[i] {
			t.Fatalf("loss stream perturbed by other channels at draw %d", i)
		}
	}
	hits := 0
	for _, v := range a {
		if v {
			hits++
		}
	}
	if hits == 0 || hits == len(a) {
		t.Fatalf("loss rate 1/4 produced %d/200 hits", hits)
	}
}

func TestKillFiresOnceAtNthSyscall(t *testing.T) {
	p := &Plan{KillSyscallNth: 3, KillEnv: "victim"}
	seq := []struct {
		env  string
		want bool
	}{
		{"bystander", false},
		{"victim-1", false},
		{"victim-1", false},
		{"victim-1", true},  // 3rd matching syscall
		{"victim-1", false}, // one-shot
		{"victim-2", false},
	}
	for i, s := range seq {
		if got := p.KillNow(s.env); got != s.want {
			t.Fatalf("step %d (%s): KillNow = %v, want %v", i, s.env, got, s.want)
		}
	}
	if !p.Killed() {
		t.Fatal("Killed not latched")
	}
}

func TestWriteObserver(t *testing.T) {
	p := &Plan{}
	var got []int64
	p.ObserveWrites(func(at sim.Time, block int64, count int) {
		got = append(got, block, int64(count))
	})
	p.NoteWrite(10, 42, 3)
	if len(got) != 2 || got[0] != 42 || got[1] != 3 {
		t.Fatalf("observer saw %v", got)
	}
}

func TestParseRoundTrip(t *testing.T) {
	p, err := Parse("1234:dup=8,kill=100,killenv=mab,loss=16,readerr=64,reorder=32,torn")
	if err != nil {
		t.Fatal(err)
	}
	if p.Seed != 1234 || p.LossRate != 16 || p.DupRate != 8 || p.ReorderRate != 32 ||
		p.ReadErrRate != 64 || !p.TornWrites || p.KillSyscallNth != 100 || p.KillEnv != "mab" {
		t.Fatalf("parsed %+v", p)
	}
	if s := p.String(); s != "1234:dup=8,kill=100,killenv=mab,loss=16,readerr=64,reorder=32,torn" {
		t.Fatalf("String = %q", s)
	}
	if p2, err := Parse("0x10"); err != nil || p2.Seed != 16 {
		t.Fatalf("hex seed: %+v, %v", p2, err)
	}
	if p3, err := Parse("9:crash=250ms"); err != nil || p3.CrashAt != 250*sim.Millisecond {
		t.Fatalf("crash knob: %+v, %v", p3, err)
	}
	for _, bad := range []string{"", "x:loss=1", "1:frob=2", "1:loss", "1:torn=1", "1:crash=xx"} {
		if _, err := Parse(bad); err == nil {
			t.Errorf("Parse(%q) accepted", bad)
		}
	}
}

func TestParseTime(t *testing.T) {
	cases := map[string]sim.Time{
		"250ms": 250 * sim.Millisecond,
		"1.5s":  sim.FromSeconds(1.5),
		"80us":  80 * sim.Microsecond,
		"1000":  1000,
		"500cy": 500,
	}
	for in, want := range cases {
		got, err := sim.ParseTime(in)
		if err != nil || got != want {
			t.Errorf("ParseTime(%q) = %v, %v; want %v", in, got, err, want)
		}
	}
	if _, err := sim.ParseTime("12abc"); err == nil {
		t.Error("ParseTime accepted garbage")
	}
}
