package disk

import (
	"testing"

	"xok/internal/sim"
)

func newDisk() (*sim.Engine, *sim.Stats, *Disk) {
	eng := sim.NewEngine()
	st := sim.NewStats()
	return eng, st, New(eng, st, 1<<20)
}

func TestReadWriteRoundTrip(t *testing.T) {
	eng, _, d := newDisk()
	wr := make([]byte, sim.DiskBlockSize)
	for i := range wr {
		wr[i] = byte(i)
	}
	done := 0
	d.Submit(&Request{
		Write: true, Block: 100, Count: 1, Pages: [][]byte{wr},
		Done: func(*Request) { done++ },
	})
	eng.Run()
	rd := make([]byte, sim.DiskBlockSize)
	d.Submit(&Request{
		Block: 100, Count: 1, Pages: [][]byte{rd},
		Done: func(*Request) { done++ },
	})
	eng.Run()
	if done != 2 {
		t.Fatalf("completions = %d, want 2", done)
	}
	for i := range rd {
		if rd[i] != byte(i) {
			t.Fatalf("byte %d = %d, want %d", i, rd[i], byte(i))
		}
	}
}

func TestUnwrittenBlocksReadZero(t *testing.T) {
	eng, _, d := newDisk()
	rd := make([]byte, sim.DiskBlockSize)
	rd[0] = 0xFF
	d.Submit(&Request{Block: 5, Count: 1, Pages: [][]byte{rd}})
	eng.Run()
	if rd[0] != 0 {
		t.Fatal("unwritten block did not read as zero")
	}
}

func TestSequentialCheaperThanScattered(t *testing.T) {
	// 8 sequential blocks must complete much faster than 8 scattered
	// ones — this asymmetry is what C-FFS exploits.
	eng1, _, d1 := newDisk()
	for i := 0; i < 8; i++ {
		d1.Submit(&Request{Block: BlockNo(1000 + i), Count: 1})
	}
	eng1.Run()
	seq := eng1.Now()

	eng2, _, d2 := newDisk()
	for i := 0; i < 8; i++ {
		d2.Submit(&Request{Block: BlockNo(1000 + i*50000), Count: 1})
	}
	eng2.Run()
	scattered := eng2.Now()

	if scattered < 3*seq {
		t.Fatalf("scattered %v vs sequential %v: not enough penalty", scattered, seq)
	}
}

func TestLargeRequestBeatsManySmall(t *testing.T) {
	eng1, _, d1 := newDisk()
	pages := make([][]byte, 16)
	for i := range pages {
		pages[i] = make([]byte, sim.DiskBlockSize)
	}
	d1.Submit(&Request{Block: 2000, Count: 16, Pages: pages})
	eng1.Run()
	one := eng1.Now()

	eng2, _, d2 := newDisk()
	for i := 0; i < 16; i++ {
		d2.Submit(&Request{Block: BlockNo(2000 + i), Count: 1})
	}
	eng2.Run()
	many := eng2.Now()

	if one >= many {
		t.Fatalf("one large request (%v) should beat 16 small (%v)", one, many)
	}
}

func TestCSCANOrdering(t *testing.T) {
	// Submit out of order while the disk is busy; completions must come
	// back in ascending block order (single sweep), not FIFO.
	eng, st, d := newDisk()
	var order []BlockNo
	mk := func(b BlockNo) *Request {
		return &Request{Block: b, Count: 1, Done: func(r *Request) {
			order = append(order, r.Block)
		}}
	}
	d.Submit(mk(500000)) // goes into service immediately
	d.Submit(mk(900000))
	d.Submit(mk(600000))
	d.Submit(mk(700000))
	eng.Run()
	want := []BlockNo{500000, 600000, 700000, 900000}
	for i, b := range want {
		if order[i] != b {
			t.Fatalf("service order = %v, want %v", order, want)
		}
	}
	if st.Get(sim.CtrDiskReads) != 4 {
		t.Fatalf("disk_reads = %d, want 4", st.Get(sim.CtrDiskReads))
	}
}

func TestCSCANWrapsAround(t *testing.T) {
	eng, _, d := newDisk()
	var order []BlockNo
	mk := func(b BlockNo) *Request {
		return &Request{Block: b, Count: 1, Done: func(r *Request) {
			order = append(order, r.Block)
		}}
	}
	d.Submit(mk(800000)) // enters service; head ends beyond 800000
	d.Submit(mk(100))
	d.Submit(mk(900000))
	eng.Run()
	// From head ~800001: 900000 first (upward), then wrap to 100.
	if len(order) != 3 || order[1] != 900000 || order[2] != 100 {
		t.Fatalf("order = %v, want [800000 900000 100]", order)
	}
}

func TestSortedScheduleBeatsUnsorted(t *testing.T) {
	// The XCP effect: submitting a large batch at once lets the driver
	// sort it; submitting one-at-a-time (waiting for each) forces the
	// random order. Use the same pseudo-random block list for both.
	rng := sim.NewRNG(1234)
	blocks := make([]BlockNo, 64)
	for i := range blocks {
		blocks[i] = BlockNo(rng.Intn(1 << 20))
	}

	engBatch, _, dBatch := newDisk()
	for _, b := range blocks {
		dBatch.Submit(&Request{Block: b, Count: 1})
	}
	engBatch.Run()
	batch := engBatch.Now()

	engSer, _, dSer := newDisk()
	i := 0
	var next func(*Request)
	next = func(*Request) {
		if i >= len(blocks) {
			return
		}
		b := blocks[i]
		i++
		dSer.Submit(&Request{Block: b, Count: 1, Done: next})
	}
	next(nil)
	engSer.Run()
	serial := engSer.Now()

	if batch >= serial {
		t.Fatalf("batched schedule (%v) should beat serial submission (%v)", batch, serial)
	}
}

func TestSeekCounterOnlyOnMoves(t *testing.T) {
	eng, st, d := newDisk()
	d.Submit(&Request{Block: 0, Count: 4})
	eng.Run()
	d.Submit(&Request{Block: 4, Count: 4}) // continues exactly at head
	eng.Run()
	if st.Get(sim.CtrDiskSeeks) != 0 {
		t.Fatalf("seeks = %d, want 0 for fully sequential access", st.Get(sim.CtrDiskSeeks))
	}
	d.Submit(&Request{Block: 100000, Count: 1})
	eng.Run()
	if st.Get(sim.CtrDiskSeeks) != 1 {
		t.Fatalf("seeks = %d, want 1", st.Get(sim.CtrDiskSeeks))
	}
}

func TestPeekPoke(t *testing.T) {
	_, _, d := newDisk()
	data := make([]byte, sim.DiskBlockSize)
	data[17] = 42
	d.PokeBlock(7, data)
	got := d.PeekBlock(7)
	if got[17] != 42 {
		t.Fatal("PokeBlock/PeekBlock round trip failed")
	}
	if d.PeekBlock(8)[17] != 0 {
		t.Fatal("PeekBlock of untouched block not zero")
	}
}

func TestSubmitValidation(t *testing.T) {
	_, _, d := newDisk()
	for _, r := range []*Request{
		{Block: 0, Count: 0},
		{Block: -1, Count: 1},
		{Block: 1 << 20, Count: 1},
		{Block: 0, Count: 2, Pages: [][]byte{nil}},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("Submit(%+v) did not panic", r)
				}
			}()
			d.Submit(r)
		}()
	}
}
