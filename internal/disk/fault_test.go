package disk

import (
	"bytes"
	"testing"

	"xok/internal/fault"
	"xok/internal/sim"
)

// pattern fills a 4-KB page with a recognizable byte.
func pattern(b byte) []byte {
	p := make([]byte, sim.DiskBlockSize)
	for i := range p {
		p[i] = b
	}
	return p
}

func TestReadMediaErrorInjection(t *testing.T) {
	eng := sim.NewEngine()
	d := New(eng, nil, 1024, WithFaults(&fault.Plan{Seed: 3, ReadErrRate: 1}))
	d.PokeBlock(5, pattern(0xAB))
	page := make([]byte, sim.DiskBlockSize)
	var got *Request
	d.Submit(&Request{Block: 5, Count: 1, Pages: [][]byte{page},
		Done: func(r *Request) { got = r }})
	eng.Run()
	if got == nil || got.Err != fault.ErrMedia {
		t.Fatalf("request err = %v, want ErrMedia", got.Err)
	}
	if page[0] == 0xAB {
		t.Fatal("failed read still transferred data")
	}
	// Writes never carry media errors.
	var wr *Request
	d.Submit(&Request{Write: true, Block: 6, Count: 1, Pages: [][]byte{pattern(1)},
		Done: func(r *Request) { wr = r }})
	eng.Run()
	if wr == nil || wr.Err != nil {
		t.Fatalf("write err = %v", wr.Err)
	}
}

func TestStripedReadErrorPropagates(t *testing.T) {
	eng := sim.NewEngine()
	d := New(eng, nil, 1024,
		WithStriping(2, 1),
		WithFaults(&fault.Plan{Seed: 3, ReadErrRate: 1}))
	var got *Request
	d.Submit(&Request{Block: 0, Count: 4, Done: func(r *Request) { got = r }})
	eng.Run()
	if got == nil || got.Err != fault.ErrMedia {
		t.Fatalf("striped parent err = %v, want ErrMedia", got.Err)
	}
}

func TestWriteBoundaryObserver(t *testing.T) {
	eng := sim.NewEngine()
	plan := &fault.Plan{}
	var at []sim.Time
	var blocks []int64
	plan.ObserveWrites(func(t sim.Time, b int64, n int) {
		at = append(at, t)
		blocks = append(blocks, b)
	})
	d := New(eng, nil, 1024, WithFaults(plan))
	d.Submit(&Request{Write: true, Block: 7, Count: 2})
	d.Submit(&Request{Block: 9, Count: 1}) // a read: not a boundary
	eng.Run()
	if len(at) != 1 || blocks[0] != 7 || at[0] == 0 {
		t.Fatalf("observed writes at %v blocks %v, want one boundary at block 7", at, blocks)
	}
}

func TestCrashImageTornWrite(t *testing.T) {
	const nblk = 4
	mid := func(torn bool) Image {
		eng := sim.NewEngine()
		var plan *fault.Plan
		if torn {
			plan = &fault.Plan{TornWrites: true}
		}
		d := New(eng, nil, 1024, WithFaults(plan))
		pages := make([][]byte, nblk)
		for i := range pages {
			pages[i] = pattern(byte(0x10 + i))
		}
		d.Submit(&Request{Write: true, Block: 0, Count: nblk, Pages: pages})
		// Head starts at block 0, so service is controller overhead +
		// transfer only. Stop mid-transfer of block 2 (half-way in).
		eng.RunUntil(sim.DiskControllerOverhead + sim.DiskTransferPerBlock*5/2)
		return d.CrashImage()
	}

	// Without torn writes armed, the in-flight request must vanish.
	if img := mid(false); len(img) != 0 {
		t.Fatalf("untorn crash image has %d blocks, want 0", len(img))
	}

	img := mid(true)
	// Blocks 0 and 1 transferred whole; block 2 is half-written; block
	// 3 never reached the media.
	for i := 0; i < 2; i++ {
		if !bytes.Equal(img[BlockNo(i)], pattern(byte(0x10+i))) {
			t.Fatalf("block %d not fully applied in torn image", i)
		}
	}
	b2, ok := img[2]
	if !ok {
		t.Fatal("torn block 2 missing")
	}
	half := sim.DiskBlockSize / 2
	if !bytes.Equal(b2[:half], pattern(0x12)[:half]) {
		t.Fatal("torn block 2 prefix not the new data")
	}
	if !bytes.Equal(b2[half:], make([]byte, sim.DiskBlockSize-half)) {
		t.Fatal("torn block 2 suffix should be the old (zero) data")
	}
	if _, ok := img[3]; ok {
		t.Fatal("block 3 appeared although never transferred")
	}
}

func TestDeprecatedConstructorsStillWork(t *testing.T) {
	eng := sim.NewEngine()
	d := NewStriped(eng, nil, 1024, 4, 8)
	if d.Spindles() != 4 {
		t.Fatalf("spindles = %d", d.Spindles())
	}
	if d2 := New(eng, nil, 64); d2.Spindles() != 1 {
		t.Fatalf("default spindles = %d", d2.Spindles())
	}
}
