package disk

import (
	"testing"

	"xok/internal/sim"
)

func TestStripedRoundTrip(t *testing.T) {
	eng := sim.NewEngine()
	d := NewStriped(eng, sim.NewStats(), 1<<16, 4, 16)
	if d.Spindles() != 4 {
		t.Fatalf("spindles = %d", d.Spindles())
	}
	// A request spanning several stripe units must still behave as one
	// logical I/O.
	const n = 64 // 4 stripe units per spindle
	wr := make([][]byte, n)
	for i := range wr {
		wr[i] = make([]byte, sim.DiskBlockSize)
		wr[i][0] = byte(i)
	}
	done := 0
	d.Submit(&Request{Write: true, Block: 100, Count: n, Pages: wr,
		Done: func(*Request) { done++ }})
	eng.Run()
	if done != 1 {
		t.Fatalf("write completions = %d, want exactly 1", done)
	}
	rd := make([][]byte, n)
	for i := range rd {
		rd[i] = make([]byte, sim.DiskBlockSize)
	}
	d.Submit(&Request{Block: 100, Count: n, Pages: rd,
		Done: func(*Request) { done++ }})
	eng.Run()
	if done != 2 {
		t.Fatalf("read completions = %d, want 2", done)
	}
	for i := range rd {
		if rd[i][0] != byte(i) {
			t.Fatalf("block %d corrupted across striping", i)
		}
	}
}

func TestStripingParallelism(t *testing.T) {
	// A large sequential transfer should finish ~n times faster on an
	// n-way stripe (transfer-time bound).
	elapsed := func(spindles int) sim.Time {
		eng := sim.NewEngine()
		d := NewStriped(eng, sim.NewStats(), 1<<20, spindles, 16)
		const blocks = 512
		d.Submit(&Request{Block: 0, Count: blocks})
		eng.Run()
		return eng.Now()
	}
	one := elapsed(1)
	four := elapsed(4)
	speedup := float64(one) / float64(four)
	if speedup < 2.5 {
		t.Fatalf("4-way stripe speedup = %.2fx, want near 4x", speedup)
	}
}

func TestStripingIndependentQueues(t *testing.T) {
	// Requests to different spindles proceed concurrently; requests to
	// the same spindle serialize.
	sameSpindle := func() sim.Time {
		eng := sim.NewEngine()
		d := NewStriped(eng, sim.NewStats(), 1<<20, 4, 16)
		// Blocks 0 and 64 both map to spindle 0 (64/16 = 4 % 4 = 0).
		d.Submit(&Request{Block: 0, Count: 1})
		d.Submit(&Request{Block: 64, Count: 1})
		eng.Run()
		return eng.Now()
	}()
	diffSpindle := func() sim.Time {
		eng := sim.NewEngine()
		d := NewStriped(eng, sim.NewStats(), 1<<20, 4, 16)
		// Blocks 0 and 16 map to spindles 0 and 1.
		d.Submit(&Request{Block: 0, Count: 1})
		d.Submit(&Request{Block: 16, Count: 1})
		eng.Run()
		return eng.Now()
	}()
	if diffSpindle >= sameSpindle {
		t.Fatalf("cross-spindle (%v) should beat same-spindle (%v)", diffSpindle, sameSpindle)
	}
}

// TestCSCANUsesPhysicalPositions is the regression test for the
// striped-disk elevator bug: pickNext used to sort the queue by
// *logical* block number and compare it against the head position,
// which complete() keeps in *physical* spindle-local space. On a
// 2-spindle stripe, logical numbers are ~2x any physical position, so
// a request physically *behind* the head (logical 70 → phys 38) was
// classified as "at or beyond" a head at phys 48 and serviced before a
// perfectly sequential request (logical 96 → phys 48), costing an
// extra seek.
func TestCSCANUsesPhysicalPositions(t *testing.T) {
	eng := sim.NewEngine()
	stats := sim.NewStats()
	d := NewStriped(eng, stats, 1<<16, 2, 16)

	var order []string
	// r0: logical 64..79 → spindle 0, phys 32..47; head lands at 48.
	// Starts service immediately (spindle idle).
	d.Submit(&Request{Write: true, Block: 64, Count: 16,
		Done: func(*Request) { order = append(order, "r0") }})
	// Queued while r0 is in service, both also spindle 0:
	// rB: logical 70 → phys 38 (physically behind the post-r0 head).
	d.Submit(&Request{Block: 70, Count: 1,
		Done: func(*Request) { order = append(order, "rB") }})
	// rA: logical 96 → phys 48 (exactly sequential after r0).
	d.Submit(&Request{Block: 96, Count: 1,
		Done: func(*Request) { order = append(order, "rA") }})
	eng.Run()

	if len(order) != 3 || order[0] != "r0" || order[1] != "rA" || order[2] != "rB" {
		t.Fatalf("service order = %v, want [r0 rA rB] (physical CSCAN)", order)
	}
	// r0 pays the initial seek (0→32); rA is sequential; rB seeks. The
	// logical-space elevator serviced rB first and paid three seeks.
	if got := stats.Get(sim.CtrDiskSeeks); got != 2 {
		t.Fatalf("seeks = %d, want 2", got)
	}
}

// TestSeekCalibrationPerSpindle is the regression test for the seek
// curve: each drive of a striped set holds nblocks/n blocks, so a
// seek of a given physical distance must cost the same as on a
// standalone disk of that per-spindle size. The old code calibrated
// against the *total* logical size, making every striped spindle
// behave as an n-times-larger platter with correspondingly
// underestimated seek times.
func TestSeekCalibrationPerSpindle(t *testing.T) {
	// Standalone disk, 1<<16 blocks: service block 0, then block 800.
	single := sim.NewEngine()
	ds := New(single, sim.NewStats(), 1<<16)
	ds.Submit(&Request{Block: 0, Count: 1})
	ds.Submit(&Request{Block: 800, Count: 1})
	single.Run()

	// 4-way stripe, same 1<<16 blocks *per spindle*: logical 0 and
	// logical 3200 both live on spindle 0 at phys 0 and phys 800 — the
	// identical physical schedule.
	striped := sim.NewEngine()
	dr := NewStriped(striped, sim.NewStats(), 4<<16, 4, 16)
	dr.Submit(&Request{Block: 0, Count: 1})
	dr.Submit(&Request{Block: 3200, Count: 1})
	striped.Run()

	if single.Now() != striped.Now() {
		t.Fatalf("same physical schedule, different time: single=%v striped=%v",
			single.Now(), striped.Now())
	}
}

// TestSplitCountdownManyUnits exercises the split countdown: one
// request crossing three stripe units (three spindles) must deliver
// exactly one Done, at the instant the *last* piece completes.
func TestSplitCountdownManyUnits(t *testing.T) {
	eng := sim.NewEngine()
	d := NewStriped(eng, sim.NewStats(), 1<<16, 4, 16)
	// Blocks 8..47 → pieces [8,+8) [16,+16) [32,+16) on spindles 0,1,2.
	const start, n = 8, 40
	wr := make([][]byte, n)
	for i := range wr {
		wr[i] = make([]byte, sim.DiskBlockSize)
		wr[i][0] = byte(i + 1)
	}
	done := 0
	var doneAt sim.Time
	d.Submit(&Request{Write: true, Block: start, Count: n, Pages: wr,
		Done: func(*Request) { done++; doneAt = eng.Now() }})
	eng.Run()
	if done != 1 {
		t.Fatalf("completions = %d, want exactly 1", done)
	}
	if doneAt != eng.Now() {
		t.Fatalf("Done fired at %v before the last piece completed (%v)", doneAt, eng.Now())
	}
	for i := 0; i < n; i++ {
		if got := d.PeekBlock(BlockNo(start + i))[0]; got != byte(i+1) {
			t.Fatalf("block %d = %d after split write, want %d", start+i, got, i+1)
		}
	}
}

// TestSnapshotExcludesQueued pins the documented power-failure
// semantics: a Snapshot taken while writes sit in the driver queue (or
// in service — DMA happens at completion) must not reflect them.
func TestSnapshotExcludesQueued(t *testing.T) {
	eng := sim.NewEngine()
	d := NewStriped(eng, sim.NewStats(), 1<<16, 2, 16)
	page := func(v byte) [][]byte {
		p := make([]byte, sim.DiskBlockSize)
		p[0] = v
		return [][]byte{p}
	}
	// Block 5 is durably on media before the "power failure".
	d.Submit(&Request{Write: true, Block: 5, Count: 1, Pages: page(0xAA)})
	eng.Run()
	// Same spindle as block 5 (unit 0 → spindle 0): block 6 goes into
	// service immediately, block 7 waits in the driver queue.
	d.Submit(&Request{Write: true, Block: 6, Count: 1, Pages: page(0xBB)})
	d.Submit(&Request{Write: true, Block: 7, Count: 1, Pages: page(0xCC)})

	snap := d.Snapshot()
	if got := snap[5]; got == nil || got[0] != 0xAA {
		t.Fatal("snapshot lost a completed write")
	}
	if _, ok := snap[6]; ok {
		t.Fatal("snapshot reflects an in-service write")
	}
	if _, ok := snap[7]; ok {
		t.Fatal("snapshot reflects a queued write")
	}

	// The snapshot is a deep copy: finishing the queued I/O afterwards
	// must not leak into it, while the live media does see the writes.
	eng.Run()
	if d.PeekBlock(6)[0] != 0xBB || d.PeekBlock(7)[0] != 0xCC {
		t.Fatal("queued writes never reached media")
	}
	if _, ok := snap[6]; ok {
		t.Fatal("snapshot aliases live media")
	}
}

func TestSingleSpindleUnchanged(t *testing.T) {
	// New() must behave exactly as before the striping refactor: one
	// spindle, whole volume.
	eng := sim.NewEngine()
	d := New(eng, sim.NewStats(), 1000)
	if d.Spindles() != 1 {
		t.Fatalf("spindles = %d", d.Spindles())
	}
	done := false
	d.Submit(&Request{Block: 999, Count: 1, Done: func(*Request) { done = true }})
	eng.Run()
	if !done {
		t.Fatal("request never completed")
	}
}
