package disk

import (
	"testing"

	"xok/internal/sim"
)

func TestStripedRoundTrip(t *testing.T) {
	eng := sim.NewEngine()
	d := NewStriped(eng, sim.NewStats(), 1<<16, 4, 16)
	if d.Spindles() != 4 {
		t.Fatalf("spindles = %d", d.Spindles())
	}
	// A request spanning several stripe units must still behave as one
	// logical I/O.
	const n = 64 // 4 stripe units per spindle
	wr := make([][]byte, n)
	for i := range wr {
		wr[i] = make([]byte, sim.DiskBlockSize)
		wr[i][0] = byte(i)
	}
	done := 0
	d.Submit(&Request{Write: true, Block: 100, Count: n, Pages: wr,
		Done: func(*Request) { done++ }})
	eng.Run()
	if done != 1 {
		t.Fatalf("write completions = %d, want exactly 1", done)
	}
	rd := make([][]byte, n)
	for i := range rd {
		rd[i] = make([]byte, sim.DiskBlockSize)
	}
	d.Submit(&Request{Block: 100, Count: n, Pages: rd,
		Done: func(*Request) { done++ }})
	eng.Run()
	if done != 2 {
		t.Fatalf("read completions = %d, want 2", done)
	}
	for i := range rd {
		if rd[i][0] != byte(i) {
			t.Fatalf("block %d corrupted across striping", i)
		}
	}
}

func TestStripingParallelism(t *testing.T) {
	// A large sequential transfer should finish ~n times faster on an
	// n-way stripe (transfer-time bound).
	elapsed := func(spindles int) sim.Time {
		eng := sim.NewEngine()
		d := NewStriped(eng, sim.NewStats(), 1<<20, spindles, 16)
		const blocks = 512
		d.Submit(&Request{Block: 0, Count: blocks})
		eng.Run()
		return eng.Now()
	}
	one := elapsed(1)
	four := elapsed(4)
	speedup := float64(one) / float64(four)
	if speedup < 2.5 {
		t.Fatalf("4-way stripe speedup = %.2fx, want near 4x", speedup)
	}
}

func TestStripingIndependentQueues(t *testing.T) {
	// Requests to different spindles proceed concurrently; requests to
	// the same spindle serialize.
	sameSpindle := func() sim.Time {
		eng := sim.NewEngine()
		d := NewStriped(eng, sim.NewStats(), 1<<20, 4, 16)
		// Blocks 0 and 64 both map to spindle 0 (64/16 = 4 % 4 = 0).
		d.Submit(&Request{Block: 0, Count: 1})
		d.Submit(&Request{Block: 64, Count: 1})
		eng.Run()
		return eng.Now()
	}()
	diffSpindle := func() sim.Time {
		eng := sim.NewEngine()
		d := NewStriped(eng, sim.NewStats(), 1<<20, 4, 16)
		// Blocks 0 and 16 map to spindles 0 and 1.
		d.Submit(&Request{Block: 0, Count: 1})
		d.Submit(&Request{Block: 16, Count: 1})
		eng.Run()
		return eng.Now()
	}()
	if diffSpindle >= sameSpindle {
		t.Fatalf("cross-spindle (%v) should beat same-spindle (%v)", diffSpindle, sameSpindle)
	}
}

func TestSingleSpindleUnchanged(t *testing.T) {
	// New() must behave exactly as before the striping refactor: one
	// spindle, whole volume.
	eng := sim.NewEngine()
	d := New(eng, sim.NewStats(), 1000)
	if d.Spindles() != 1 {
		t.Fatalf("spindles = %d", d.Spindles())
	}
	done := false
	d.Submit(&Request{Block: 999, Count: 1, Done: func(*Request) { done = true }})
	eng.Run()
	if !done {
		t.Fatal("request never completed")
	}
}
