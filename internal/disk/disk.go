// Package disk models the machine's SCSI disk: a Quantum Atlas
// XP32150-like drive (7200 rpm, ~8 ms average seek, ~10 MB/s media
// rate) behind an NCR 815-style controller with a driver queue.
//
// The model captures exactly the properties the paper's results depend
// on:
//
//   - positional timing: a request pays controller overhead, a
//     distance-dependent seek, half-rotation latency, and per-block
//     transfer time — except that a request starting where the previous
//     one ended is sequential and pays transfer time only. This is what
//     rewards C-FFS's co-location and XCP's sorted schedules.
//   - a driver queue with CSCAN ordering and contiguity detection:
//     "if multiple instances of XCP run concurrently, the disk driver
//     will merge the schedules" (Section 7.2).
//   - DMA: data moves between disk and memory pages without consuming
//     simulated CPU (the CPU cost of copies is charged by whoever
//     touches the data, not by the disk).
//
// All completion is delivered through the event engine, so disk I/O is
// fully deterministic.
package disk

import (
	"fmt"
	"math"
	"sort"
	"strconv"

	"xok/internal/bufpool"
	"xok/internal/fault"
	"xok/internal/sim"
	"xok/internal/trace"
)

// BlockNo names a physical disk block (4 KB). Physical names are used
// throughout — the exokernel way.
type BlockNo int64

// Request is one I/O: Count contiguous blocks starting at Block.
// For reads, Pages receives the data; for writes, Pages supplies it.
// Done fires at completion-interrupt time.
type Request struct {
	Write bool
	Block BlockNo
	Count int
	Pages [][]byte // one 4-KB slice per block; may be nil (timing-only I/O)
	Done  func(*Request)

	// Err carries a media error to the completion callback: the drive
	// serviced the request but could not read the sectors
	// (fault.ErrMedia, injected by an attached fault plan). Writes
	// never fail this way; a dying write is modelled as a torn write in
	// the crash image instead.
	Err error

	queuedAt sim.Time
	svcStart sim.Time // when the spindle began servicing this request
	seekT    sim.Time // seek component of the service time
	rotT     sim.Time // rotational-latency component

	// Completion routing for the allocation-free timer path: set by
	// startNext so the package-level completeArg callback can find its
	// way back without a per-request closure.
	svcDisk *Disk
	svcSp   *spindle
}

// spindle is one physical drive: its own head, queue and service
// loop. A single-spindle Disk is the paper's configuration; striped
// configurations (RAID-0, Section 4.6's "range of file systems ...
// RAID") fan logical blocks across several spindles.
type spindle struct {
	idx   int
	head  BlockNo
	busy  bool
	queue []*Request
	cur   *Request // the request in service (CrashImage's torn writes)
}

// Disk is the drive (or striped drive set) plus its driver queues.
type Disk struct {
	eng     *sim.Engine
	stats   *sim.Stats
	nblocks int64

	spindles   []spindle
	stripeUnit int64 // blocks per stripe unit (striped configs)

	// FIFO disables the driver's CSCAN sorting and services requests
	// in arrival order — an ablation knob for measuring what the
	// scheduler is worth (cmd and bench ablations use it).
	FIFO bool

	tr    *trace.Tracer // span/histogram sink; nil = tracing off
	trPID int64

	faults *fault.Plan // fault plan; nil = no injection

	store map[BlockNo][]byte // live (mutable) media overlay, allocated lazily
	base  *cowLayer          // frozen snapshot layers under the overlay; nil = none
	// cowCopies counts blocks copied up from frozen layers on first
	// post-fork write — the "fork is O(state actually written)" number
	// the snapshot test suite gates on.
	cowCopies int64
}

// Option configures a Disk at construction (functional options).
type Option func(*Disk)

// WithStriping builds the disk as a RAID-0 set: the logical space
// striped across n spindles in stripeUnit-block units (default 16).
// The logical block interface is unchanged; requests are split at
// stripe boundaries and serviced by the owning spindles in parallel
// (Section 4.6's "range of file systems ... RAID").
func WithStriping(n int, stripeUnit int64) Option {
	return func(d *Disk) {
		if n < 1 {
			n = 1
		}
		if stripeUnit < 1 {
			stripeUnit = 16
		}
		d.spindles = make([]spindle, n)
		for i := range d.spindles {
			d.spindles[i].idx = i
		}
		d.stripeUnit = stripeUnit
	}
}

// WithFaults attaches a fault plan: read media errors (Request.Err)
// and torn writes in CrashImage. A nil plan is the default — no
// injection, one nil check per request.
func WithFaults(p *fault.Plan) Option {
	return func(d *Disk) { d.faults = p }
}

// WithTrace attaches a tracer at construction: each spindle becomes a
// trace lane and every request gets queue and service spans plus
// latency-histogram samples. Option order does not matter — lanes are
// named once the spindle count is final.
func WithTrace(tr *trace.Tracer, pid int64) Option {
	return func(d *Disk) {
		d.tr = tr
		d.trPID = pid
	}
}

// New returns a disk with nblocks 4-KB blocks: a single spindle unless
// WithStriping says otherwise, silent unless WithTrace, fault-free
// unless WithFaults.
func New(eng *sim.Engine, stats *sim.Stats, nblocks int64, opts ...Option) *Disk {
	d := &Disk{
		eng:        eng,
		stats:      stats,
		nblocks:    nblocks,
		spindles:   make([]spindle, 1),
		stripeUnit: nblocks,
		store:      make(map[BlockNo][]byte),
	}
	for _, opt := range opts {
		opt(d)
	}
	if d.tr.Enabled() {
		d.SetTrace(d.tr, d.trPID)
	}
	return d
}

// NewStriped returns a RAID-0 set.
//
// Deprecated: use New with WithStriping.
func NewStriped(eng *sim.Engine, stats *sim.Stats, nblocks int64, n int, stripeUnit int64) *Disk {
	return New(eng, stats, nblocks, WithStriping(n, stripeUnit))
}

// SetTrace attaches a tracer after construction (prefer WithTrace). A
// nil tracer turns tracing off.
func (d *Disk) SetTrace(tr *trace.Tracer, pid int64) {
	d.tr = tr
	d.trPID = pid
	if tr.Enabled() {
		for i := range d.spindles {
			tr.NameLane(pid, d.laneOf(i), fmt.Sprintf("disk spindle %d", i))
		}
	}
}

// laneOf maps a spindle index to its trace lane (TID). Lanes 1..n are
// the spindles; the kernel's environments use 100+.
func (d *Disk) laneOf(spindle int) int64 { return int64(1 + spindle) }

// Spindles reports the number of physical drives in the set.
func (d *Disk) Spindles() int { return len(d.spindles) }

// spindleOf maps a logical block to its owning spindle.
func (d *Disk) spindleOf(b BlockNo) int {
	return int((int64(b) / d.stripeUnit) % int64(len(d.spindles)))
}

// physOf maps a logical block to its position on the owning spindle's
// platter (consecutive stripe units interleave across spindles but are
// contiguous within each one).
func (d *Disk) physOf(b BlockNo) BlockNo {
	n := int64(len(d.spindles))
	return BlockNo((int64(b)/(d.stripeUnit*n))*d.stripeUnit + int64(b)%d.stripeUnit)
}

// NumBlocks returns the media size in blocks.
func (d *Disk) NumBlocks() int64 { return d.nblocks }

// QueueLen reports how many requests are waiting (excluding those in
// service). Exposed information.
func (d *Disk) QueueLen() int {
	n := 0
	for i := range d.spindles {
		n += len(d.spindles[i].queue)
	}
	return n
}

// Submit queues a request. The driver sorts the queue CSCAN-style, so
// large schedules submitted together are serviced in near-optimal
// order.
func (d *Disk) Submit(r *Request) {
	if r.Count <= 0 {
		panic("disk: request with non-positive count")
	}
	if r.Block < 0 || int64(r.Block)+int64(r.Count) > d.nblocks {
		panic(fmt.Sprintf("disk: request [%d,+%d) outside media", r.Block, r.Count))
	}
	if r.Pages != nil && len(r.Pages) != r.Count {
		panic("disk: Pages length does not match Count")
	}
	r.queuedAt = d.eng.Now()
	if d.stats != nil {
		if r.Write {
			d.stats.Add(sim.CtrDiskWrites, int64(r.Count))
		} else {
			d.stats.Add(sim.CtrDiskReads, int64(r.Count))
		}
	}
	// Split at stripe boundaries; each piece goes to its spindle. The
	// original Done fires when the last piece completes.
	pieces := d.split(r)
	for _, pc := range pieces {
		sp := &d.spindles[d.spindleOf(pc.Block)]
		sp.queue = append(sp.queue, pc)
		if !sp.busy {
			d.startNext(sp)
		}
	}
}

// split cuts a request at stripe-unit boundaries, wiring a countdown
// completion so the caller sees one Done.
func (d *Disk) split(r *Request) []*Request {
	if len(d.spindles) == 1 {
		return []*Request{r}
	}
	var pieces []*Request
	b := r.Block
	remaining := r.Count
	idx := 0
	for remaining > 0 {
		unitEnd := (int64(b)/d.stripeUnit + 1) * d.stripeUnit
		n := int(unitEnd - int64(b))
		if n > remaining {
			n = remaining
		}
		var pages [][]byte
		if r.Pages != nil {
			pages = r.Pages[idx : idx+n]
		}
		pieces = append(pieces, &Request{
			Write: r.Write, Block: b, Count: n, Pages: pages,
			queuedAt: r.queuedAt,
		})
		b += BlockNo(n)
		idx += n
		remaining -= n
	}
	if len(pieces) == 1 {
		pieces[0].Done = r.Done
		return pieces
	}
	outstanding := len(pieces)
	for _, pc := range pieces {
		pc.Done = func(done *Request) {
			if done.Err != nil && r.Err == nil {
				r.Err = done.Err // first piece error wins
			}
			outstanding--
			if outstanding == 0 && r.Done != nil {
				r.Done(r)
			}
		}
	}
	return pieces
}

// pickNext removes and returns the CSCAN-next request for a spindle:
// the lowest start position at or beyond the head, wrapping to the
// lowest overall. The head lives in spindle-local *physical* space
// (complete sets it via physOf), so the elevator must sort and compare
// physical positions too — logical block numbers interleave across
// spindles and are ~n times larger than any physical position, which
// on a striped set made the old logical-space comparison pick requests
// behind the head and break sequential runs. (Single-spindle disks
// were unaffected only because physOf is the identity there.)
func (d *Disk) pickNext(sp *spindle) *Request {
	if len(sp.queue) == 0 {
		return nil
	}
	if d.FIFO {
		r := sp.queue[0]
		sp.queue = sp.queue[1:]
		return r
	}
	sort.SliceStable(sp.queue, func(i, j int) bool {
		return d.physOf(sp.queue[i].Block) < d.physOf(sp.queue[j].Block)
	})
	idx := -1
	for i, r := range sp.queue {
		if d.physOf(r.Block) >= sp.head {
			idx = i
			break
		}
	}
	if idx == -1 {
		idx = 0 // wrap
	}
	r := sp.queue[idx]
	sp.queue = append(sp.queue[:idx], sp.queue[idx+1:]...)
	return r
}

// serviceTime computes the positional cost of r given a spindle's
// head (positions in spindle-local physical space). The seek and
// rotation components are recorded on the request so completion spans
// can attribute them.
func (d *Disk) serviceTime(sp *spindle, r *Request) sim.Time {
	t := sim.DiskControllerOverhead
	r.seekT, r.rotT = 0, 0
	pos := d.physOf(r.Block)
	if pos != sp.head {
		dist := int64(pos - sp.head)
		if dist < 0 {
			dist = -dist
		}
		// The seek curve is calibrated against one *platter*: each
		// spindle of a striped set holds nblocks/n of the logical
		// space. (Calibrating against the total used to make every
		// spindle behave as if its platter were n times its real size,
		// systematically underestimating seeks on striped sets.)
		r.seekT = seekTime(dist, d.spindleBlocks())
		r.rotT = sim.DiskRotationPeriod / 2 // average rotational latency
		t += r.seekT + r.rotT
		if d.stats != nil {
			d.stats.Inc(sim.CtrDiskSeeks)
		}
	}
	t += sim.DiskTransferPerBlock * sim.Time(r.Count)
	return t
}

// spindleBlocks is the capacity of one physical drive in the set.
func (d *Disk) spindleBlocks() int64 {
	per := d.nblocks / int64(len(d.spindles))
	if per < 1 {
		per = 1
	}
	return per
}

// seekTime is the classic a + b*sqrt(distance) seek curve, calibrated
// so the one-third-stroke seek is DiskSeekAvg.
func seekTime(distBlocks, nblocks int64) sim.Time {
	if distBlocks == 0 {
		return 0
	}
	frac := math.Sqrt(float64(distBlocks) / (float64(nblocks) / 3))
	if frac > 1.8 {
		frac = 1.8 // full-stroke cap
	}
	return sim.DiskSeekMin + sim.Time(float64(sim.DiskSeekAvg-sim.DiskSeekMin)*frac)
}

func (d *Disk) startNext(sp *spindle) {
	r := d.pickNext(sp)
	if r == nil {
		sp.busy = false
		sp.cur = nil
		return
	}
	sp.busy = true
	sp.cur = r
	r.svcStart = d.eng.Now()
	t := d.serviceTime(sp, r)
	r.svcDisk, r.svcSp = d, sp
	d.eng.AfterArg(t, completeArg, r)
}

// completeArg is the completion timer callback in sim.Engine's
// allocation-free AfterArg form (disk transfers are the simulator's
// highest-volume timer source after the scheduler).
func completeArg(a any) {
	r := a.(*Request)
	r.svcDisk.complete(r.svcSp, r)
}

func (d *Disk) complete(sp *spindle, r *Request) {
	sp.cur = nil
	if !r.Write && d.faults.ReadError() {
		// The drive could not read the sectors: no data transfers, the
		// completion carries the error.
		r.Err = fault.ErrMedia
	}
	// DMA the data at completion time.
	for i := 0; r.Err == nil && i < r.Count; i++ {
		b := r.Block + BlockNo(i)
		if r.Write {
			if r.Pages != nil {
				blk := d.mediaBlock(b)
				copy(blk, r.Pages[i])
			}
		} else if r.Pages != nil {
			blk, ok := d.lookup(b)
			if ok {
				copy(r.Pages[i], blk)
			} else {
				for j := range r.Pages[i] {
					r.Pages[i][j] = 0
				}
			}
		}
	}
	if r.Write {
		// Report the synchronous-write boundary to the fault plan's
		// observer (the crash-enumeration harness collects these).
		d.faults.NoteWrite(d.eng.Now(), int64(r.Block), r.Count)
	}
	sp.head = d.physOf(r.Block) + BlockNo(r.Count)
	if d.tr.Enabled() {
		d.traceRequest(sp, r)
	}
	done := r.Done
	d.startNext(sp) // keep the spindle busy before running the callback
	if done != nil {
		done(r)
	}
}

// traceRequest emits the queue and service spans for a completed
// request, with the positional breakdown (seek vs. rotation vs.
// transfer) as span args, and feeds the latency histograms.
func (d *Disk) traceRequest(sp *spindle, r *Request) {
	now := d.eng.Now()
	lane := d.laneOf(sp.idx)
	op := "read"
	if r.Write {
		op = "write"
	}
	if r.svcStart > r.queuedAt {
		d.tr.Span(d.trPID, lane, "disk", "queue", r.queuedAt, r.svcStart,
			trace.Arg{Key: "block", Val: strconv.FormatInt(int64(r.Block), 10)})
	}
	d.tr.Span(d.trPID, lane, "disk", op, r.svcStart, now,
		trace.Arg{Key: "block", Val: strconv.FormatInt(int64(r.Block), 10)},
		trace.Arg{Key: "count", Val: strconv.Itoa(r.Count)},
		trace.Arg{Key: "seek", Val: r.seekT.String()},
		trace.Arg{Key: "rotation", Val: r.rotT.String()},
		trace.Arg{Key: "transfer", Val: (sim.DiskTransferPerBlock * sim.Time(r.Count)).String()})
	d.tr.Observe(d.trPID, "disk.queue", r.svcStart-r.queuedAt)
	d.tr.Observe(d.trPID, "disk.service", now-r.svcStart)
	if r.seekT > 0 {
		d.tr.Observe(d.trPID, "disk.seek", r.seekT)
	}
}

// lookup finds block b's current media contents: the live overlay
// first, then the frozen snapshot layers, newest first. The returned
// slice may alias a frozen (shared, read-only) buffer.
func (d *Disk) lookup(b BlockNo) ([]byte, bool) {
	if blk, ok := d.store[b]; ok {
		return blk, true
	}
	for l := d.base; l != nil; l = l.parent {
		if blk, ok := l.store[b]; ok {
			return blk, true
		}
	}
	return nil, false
}

// mediaBlock returns a mutable buffer for block b in the live overlay.
// A block whose current contents live in a frozen layer is copied up
// on this first write (the copy-on-write in "COW disk image"); a block
// never written anywhere materializes zeroed.
func (d *Disk) mediaBlock(b BlockNo) []byte {
	blk, ok := d.store[b]
	if !ok {
		for l := d.base; l != nil; l = l.parent {
			if frozen, fok := l.store[b]; fok {
				blk = bufpool.GetDirty()
				copy(blk, frozen)
				d.cowCopies++
				break
			}
		}
		if blk == nil {
			blk = bufpool.Get()
		}
		d.store[b] = blk
	}
	return blk
}

// PeekBlock returns the media contents of block b without timing (test
// and crash-recovery support; the "crashed machine's" disk is read this
// way when simulating reboot).
func (d *Disk) PeekBlock(b BlockNo) []byte {
	out := make([]byte, sim.DiskBlockSize)
	if blk, ok := d.lookup(b); ok {
		copy(out, blk)
	}
	return out
}

// zeroBlock is the all-zero media a never-written block reads as.
// Callers of ViewBlock receive it read-only.
var zeroBlock [sim.DiskBlockSize]byte

// ViewBlock returns the media contents of block b without timing and
// without copying. The slice aliases the live media (or a shared
// all-zero block if b was never written): callers must treat it as
// read-only and must not hold it across media writes. Recovery-time
// scans (XN's reachability GC reads every reachable block) use this to
// avoid a 4-KB copy per block; everything else should PeekBlock.
func (d *Disk) ViewBlock(b BlockNo) []byte {
	if blk, ok := d.lookup(b); ok {
		return blk
	}
	return zeroBlock[:]
}

// PokeBlock writes media contents directly (mkfs-style initialization
// without timing).
func (d *Disk) PokeBlock(b BlockNo, data []byte) {
	blk := d.mediaBlock(b)
	copy(blk, data)
}

// Image is a disk's media contents at one instant — what Snapshot and
// CrashImage return and Restore transplants into a fresh machine.
type Image = map[BlockNo][]byte

// Snapshot deep-copies the media contents at this instant. Requests
// still in the driver queue are NOT reflected — exactly the state a
// power failure would leave. Crash tests transplant the snapshot into
// a fresh machine with Restore.
func (d *Disk) Snapshot() Image {
	// Flatten the frozen layers (deepest first, so newer layers win)
	// under the live overlay into one self-contained image.
	var layers []*cowLayer
	for l := d.base; l != nil; l = l.parent {
		layers = append(layers, l)
	}
	out := make(Image, len(d.store))
	put := func(b BlockNo, blk []byte) {
		cp, ok := out[b]
		if !ok {
			cp = bufpool.GetDirty()[:len(blk)]
			out[b] = cp
		}
		copy(cp, blk)
	}
	for i := len(layers) - 1; i >= 0; i-- {
		for b, blk := range layers[i].store {
			put(b, blk)
		}
	}
	for b, blk := range d.store {
		put(b, blk)
	}
	return out
}

// CrashImage is the media contents a power failure at this instant
// would leave. Without a fault plan (or with TornWrites off) it equals
// Snapshot: queued and in-flight requests vanish, media is whole-block
// consistent. With TornWrites armed, a write that is mid-transfer has
// its already-transferred whole blocks applied, plus the transferred
// byte prefix of the block under the head — the torn-write case
// recovery code must survive.
func (d *Disk) CrashImage() Image {
	img := d.Snapshot()
	if !d.faults.Torn() {
		return img
	}
	now := d.eng.Now()
	for i := range d.spindles {
		r := d.spindles[i].cur
		if r == nil || !r.Write || r.Pages == nil {
			continue
		}
		// Positioning (controller overhead, seek, rotation) precedes
		// any media transfer; only time past it moves data.
		pre := sim.DiskControllerOverhead + r.seekT + r.rotT
		elapsed := now - r.svcStart
		if elapsed <= pre {
			continue
		}
		xfer := elapsed - pre
		full := int(xfer / sim.DiskTransferPerBlock)
		if full > r.Count {
			full = r.Count
		}
		for j := 0; j < full; j++ {
			blk := bufpool.GetDirty()
			copy(blk, r.Pages[j])
			if old, ok := img[r.Block+BlockNo(j)]; ok {
				bufpool.Put(old)
			}
			img[r.Block+BlockNo(j)] = blk
		}
		if full < r.Count {
			frac := xfer - sim.Time(full)*sim.DiskTransferPerBlock
			nbytes := int(int64(frac) * sim.DiskBlockSize / int64(sim.DiskTransferPerBlock))
			if nbytes > 0 {
				b := r.Block + BlockNo(full)
				blk := bufpool.Get()
				if old, ok := img[b]; ok {
					copy(blk, old)
					bufpool.Put(old)
				}
				copy(blk[:nbytes], r.Pages[full])
				img[b] = blk
			}
		}
	}
	return img
}

// Restore replaces the media contents with a deep copy of a snapshot;
// the caller keeps ownership of snap.
func (d *Disk) Restore(snap Image) {
	for _, blk := range d.store {
		bufpool.Put(blk)
	}
	// A full media replacement supersedes any frozen layers; they stay
	// owned by (and are released through) their checkpoints.
	d.base = nil
	d.store = make(map[BlockNo][]byte, len(snap))
	for b, blk := range snap {
		cp := bufpool.GetDirty()[:len(blk)]
		copy(cp, blk)
		d.store[b] = cp
	}
}

// RestoreOwned is Restore without the copy: the disk takes ownership
// of snap and of every block buffer in it. The caller must not touch
// snap afterwards — the buffers are recycled by the next Restore or by
// Recycle. This is the crash-audit fast path: a crash image is
// transplanted into the audit machine exactly once and then discarded.
func (d *Disk) RestoreOwned(snap Image) {
	for _, blk := range d.store {
		bufpool.Put(blk)
	}
	d.base = nil
	d.store = snap
}

// Recycle returns every media block to the buffer pool and leaves the
// disk empty. Call only when the machine is finished for good:
// teardown-for-reuse, not an operation the simulation models.
// Frozen snapshot layers are not recycled here: their buffers belong
// to the checkpoints that froze them (Checkpoint.Release).
func (d *Disk) Recycle() {
	for _, blk := range d.store {
		bufpool.Put(blk)
	}
	d.store = nil
	d.base = nil
}

// RecycleImage returns a detached crash image's buffers to the pool —
// for callers that audited an image they own and are done with it.
func RecycleImage(img Image) {
	for _, blk := range img {
		bufpool.Put(blk)
	}
}
