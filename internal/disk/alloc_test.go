package disk

import (
	"testing"

	"xok/internal/sim"
)

// TestWritePathSteadyStateAllocs pins the steady-state allocation count
// of the hot block-write path: Submit + service + DMA of one 4-KB block
// that already exists on the media. This is the path every C-FFS sync
// write and crash-enumeration trial hammers; before the pooling pass it
// allocated a fresh 4-KB media block per first-touch and assorted
// per-request garbage. The remaining per-op allocations are the
// single-spindle split slice ([]*Request{r}) and pickNext's sort
// machinery — the media block itself, the request, and the completion
// timer must all be reuse/alloc-free.
func TestWritePathSteadyStateAllocs(t *testing.T) {
	eng, _, d := newDisk()
	page := make([]byte, sim.DiskBlockSize)
	pages := [][]byte{page}
	req := &Request{}

	write := func() {
		*req = Request{Write: true, Block: 777, Count: 1, Pages: pages}
		d.Submit(req)
		eng.Run()
	}
	write() // first touch allocates the media block; steady state must not

	avg := testing.AllocsPerRun(200, write)
	// 2 = the single-spindle split slice + pickNext's sort machinery. A
	// fresh 4-KB block or per-request closure on this path shows up as +1.
	if avg > 2 {
		t.Fatalf("steady-state disk write path: %.1f allocs/op, want <= 2", avg)
	}
}
