package disk

import "xok/internal/bufpool"

// Copy-on-write snapshot support. Checkpoint freezes the live media
// overlay into an immutable layer; the disk (and any disk forked from
// the checkpoint via Adopt) continues on an empty overlay chained over
// it. Reads fall through the chain; the first write to a frozen block
// copies it up into the live overlay (see mediaBlock). Taking a
// checkpoint is O(1) in media size, and a fork that writes nothing
// copies nothing.

// cowLayer is one frozen media layer. Its block buffers are immutable
// and may be read concurrently by every machine forked from the
// checkpoint that froze it.
type cowLayer struct {
	store  map[BlockNo][]byte
	parent *cowLayer
}

// Checkpoint is frozen disk state: the media as a layer chain plus the
// per-spindle head positions and the scheduler mode. The checkpoint
// owns the buffers of the one layer it froze (earlier layers belong to
// earlier checkpoints); Release returns them to bufpool.
type Checkpoint struct {
	base  *cowLayer
	heads []BlockNo
	fifo  bool
}

// Checkpoint freezes the live overlay and returns the disk's snapshot
// state. Call only at quiescence (no request in service or queued —
// guaranteed when the engine has no pending events); in-flight
// requests are not captured. The disk keeps running afterwards on a
// fresh overlay, copying frozen blocks up on first write.
func (d *Disk) Checkpoint() *Checkpoint {
	l := &cowLayer{store: d.store, parent: d.base}
	d.base = l
	d.store = make(map[BlockNo][]byte)
	cp := &Checkpoint{base: l, fifo: d.FIFO, heads: make([]BlockNo, len(d.spindles))}
	for i := range d.spindles {
		cp.heads[i] = d.spindles[i].head
	}
	return cp
}

// Adopt attaches a freshly built disk (same geometry options as the
// checkpointed one) to a checkpoint: media reads resolve through the
// frozen layers and the arm positions continue where the snapshot left
// them. Safe to call for many forks of one checkpoint, concurrently —
// the frozen layers are only read.
func (d *Disk) Adopt(cp *Checkpoint) {
	if len(cp.heads) != len(d.spindles) {
		panic("disk: Adopt with mismatched spindle count")
	}
	d.base = cp.base
	d.FIFO = cp.fifo
	for i := range d.spindles {
		d.spindles[i].head = cp.heads[i]
	}
}

// Release returns the checkpoint's frozen layer to the buffer pool.
// Only legal once every disk chained over it (the checkpointed disk
// and all forks, plus any later checkpoints' forks) is done for good.
func (cp *Checkpoint) Release() {
	if cp.base == nil {
		return
	}
	for _, blk := range cp.base.store {
		bufpool.Put(blk)
	}
	cp.base.store = nil
	cp.base = nil
}

// CowCopies reports how many blocks this disk has copied up from
// frozen snapshot layers — zero for a fork that never wrote a
// snapshotted block.
func (d *Disk) CowCopies() int64 { return d.cowCopies }
