// Package difftest is the deterministic differential syscall fuzzer:
// it turns the OS personalities into each other's semantic oracles.
//
// The paper's central claim is relational — Xok/ExOS and the
// monolithic BSD models must agree on UNIX *semantics* while differing
// only in *cost* (Sections 6 and 7). difftest checks that claim at
// scale: a seed-driven generator synthesizes random but well-formed
// syscall programs (gen.go), each program runs on every personality
// via machine.New, and the full observable outcome is compared —
// per-call return values and errno, the final directory tree with
// file-content hashes, and post-run fsck cleanliness of the crashed
// disk image (cffs.AuditImage). The first divergence fails the seed;
// the failing program is then delta-shrunk (shrink.go) to a minimal
// reproducer and reported with a one-line replay token that re-runs it
// bit-identically.
//
// A second mode (determinism.go) runs the same program twice on the
// same personality — optionally under a fault.Plan — and compares
// outcomes, cycle counts and trace digests bit-exactly, proving the
// simulation itself is deterministic (the property every other result
// in this repository rests on).
package difftest

import (
	"errors"
	"fmt"
	"io"
	"sort"
	"strings"

	"xok/internal/cffs"
	"xok/internal/fault"
	"xok/internal/machine"
	"xok/internal/parallel"
	"xok/internal/sim"
	"xok/internal/trace"
	"xok/internal/unix"
	"xok/internal/xn"
)

// Options configures a fuzzing run. The zero value is not useful; see
// Defaults.
type Options struct {
	// Seeds is how many generated programs to try.
	Seeds int
	// Steps is the length of each generated program.
	Steps int
	// BaseSeed offsets the seed sequence (seed i = BaseSeed + i).
	BaseSeed uint64
	// Personalities under test; nil = machine.Personalities().
	Personalities []machine.Personality
	// Faults switches to determinism mode: instead of comparing
	// personalities against each other (whose syscall counts differ, so
	// a kill-at-Nth fault would fire at different program points), each
	// personality runs the program twice under a cloned plan and the
	// two runs must match bit-exactly.
	Faults *fault.Plan
	// Log receives one-line progress; nil = silent.
	Log io.Writer

	// Parallel is the worker count for the per-seed fan-out; <= 1 runs
	// fully serially. Each seed's machines boot and run on one worker
	// goroutine while results are consumed — logged, compared, shrunk —
	// strictly in seed order, so the campaign's output (and the
	// divergence it finds, if any) is identical at every worker count.
	Parallel int

	// Snapshot turns on the fork-based fast path: the campaign boots
	// each personality once to its post-boot quiescent point (mkfs
	// done, nothing spawned), snapshots it, and every seed forks from
	// that snapshot instead of re-paying boot. Replay equivalence
	// (forks continue bit-identically) keeps outcomes, trees, audits,
	// cycle counts and trace digests the same with the flag on or off.
	// In determinism mode the two runs become one from-boot run and one
	// forked run compared bit-exactly — which additionally proves the
	// snapshot captured the tracer and the fault plan's stream
	// positions, not just memory and disk.
	Snapshot bool

	// DiskBlocks/MemPages size the machines (0 = 16384 / 2048 — small
	// keeps a 500-seed run fast).
	DiskBlocks int64
	MemPages   int

	// mutate, when set, rewrites a recorded outcome — the mutation-test
	// hook: tests inject a fake divergence on one personality and
	// assert the harness catches, shrinks and replays it. It is called
	// from worker goroutines when Parallel > 1, so it must be a pure
	// function of its arguments.
	mutate func(personality string, step int, out string) string

	// snaps holds the per-personality post-boot snapshots while a
	// Snapshot campaign runs. Read-only once built, so worker
	// goroutines fork from them concurrently without locking.
	snaps map[machine.Personality]*machine.Snapshot
}

// Defaults fills unset fields.
func (o Options) Defaults() Options {
	if o.Seeds == 0 {
		o.Seeds = 100
	}
	if o.Steps == 0 {
		o.Steps = 40
	}
	if o.BaseSeed == 0 {
		o.BaseSeed = 1
	}
	if len(o.Personalities) == 0 {
		o.Personalities = machine.Personalities()
	}
	if o.DiskBlocks == 0 {
		o.DiskBlocks = 16384
	}
	if o.MemPages == 0 {
		o.MemPages = 2048
	}
	return o
}

func (o *Options) logf(format string, args ...any) {
	if o.Log != nil {
		fmt.Fprintf(o.Log, format+"\n", args...)
	}
}

// Result is everything observable about one program execution.
type Result struct {
	Outcomes []string // one canonical line per executed step
	Tree     []string // final namespace: entries + content hashes, no MTime
	Audit    []string // post-crash fsck findings (empty = clean)
	Cycles   sim.Time // final virtual time (compared in determinism mode)
	Digest   uint64   // trace digest (compared in determinism mode)
}

// Divergence describes one caught disagreement.
type Divergence struct {
	Seed  uint64
	Steps int   // generated program length
	Keep  []int // indices kept after shrinking (nil = all)
	A, B  string
	Where string // human-readable first point of disagreement
	Token string // replay token: re-runs this exact reproducer
}

// Error renders the divergence as the harness reports it.
func (d *Divergence) Error() string {
	return fmt.Sprintf("difftest: %s vs %s diverge (seed %d): %s\nreplay: %s",
		d.A, d.B, d.Seed, d.Where, d.Token)
}

// errno canonicalizes an error to its POSIX name. Unknown errors pass
// through raw — if a personality invents a private error value, the
// raw text shows up as a divergence instead of hiding behind a
// catch-all.
func errno(err error) string {
	switch {
	case err == nil:
		return "OK"
	case errors.Is(err, cffs.ErrNotFound):
		return "ENOENT"
	case errors.Is(err, cffs.ErrExists):
		return "EEXIST"
	case errors.Is(err, cffs.ErrIsDir):
		return "EISDIR"
	case errors.Is(err, cffs.ErrNotDir):
		return "ENOTDIR"
	case errors.Is(err, cffs.ErrNotEmpty):
		return "ENOTEMPTY"
	case errors.Is(err, cffs.ErrNameLen):
		return "ENAMETOOLONG"
	case errors.Is(err, cffs.ErrLinkLoop):
		return "ELOOP"
	case errors.Is(err, cffs.ErrStale):
		return "ESTALE"
	case errors.Is(err, cffs.ErrFileLimit):
		return "EFBIG"
	case errors.Is(err, cffs.ErrDirFull), errors.Is(err, xn.ErrNotFree):
		return "ENOSPC"
	case errors.Is(err, cffs.ErrInvalOp), errors.Is(err, unix.ErrInval):
		return "EINVAL"
	case errors.Is(err, unix.ErrBadFD):
		return "EBADF"
	case errors.Is(err, unix.ErrSeekPipe):
		return "ESPIPE"
	case errors.Is(err, unix.ErrPipe):
		return "EPIPE"
	case errors.Is(err, unix.ErrXDev):
		return "EXDEV"
	case errors.Is(err, fault.ErrMedia):
		return "EIO"
	default:
		return err.Error()
	}
}

// badFD is the descriptor passed for a slot whose producer is not in
// the program (removed by shrinking, or never generated): far outside
// any real table, so every personality answers EBADF.
const badFD = unix.FD(1 << 30)

// pipeCapacity mirrors the (identical) exos and bsdos ring sizes; the
// executor models pipe fill with it to skip would-block operations.
const pipeCapacity = 16384

// pipeModel tracks one pipe's executor-side state. Because a program
// is a single process holding both ends, an operation that would block
// can never be woken — the executor must skip it, deterministically,
// based only on the program and previously returned counts (identical
// across personalities), so any shrunk subset of steps still executes
// without deadlock.
type pipeModel struct {
	fill         int
	rOpen, wOpen bool
}

type execState struct {
	fds   map[int]unix.FD
	pipes map[int]*pipeModel // slot -> pipe (both end slots map to it)
	wEnd  map[int]bool       // slot is the write end
	buf   []byte             // reusable read/write payload scratch
}

// scratch returns an n-byte payload buffer, reused across steps: the
// kernel layers copy payloads in and out, never retaining the slice.
func (st *execState) scratch(n int) []byte {
	if cap(st.buf) < n {
		st.buf = make([]byte, n)
	}
	return st.buf[:n]
}

// fnv1a folds bytes into an FNV-1a hash (the repo's standard digest).
func fnv1a(h uint64, data []byte) uint64 {
	if h == 0 {
		h = 14695981039346656037
	}
	for _, b := range data {
		h = (h ^ uint64(b)) * 1099511628211
	}
	return h
}

// stepPrefixes renders the per-step outcome-line prefixes ("<idx>
// <step> = ") once; every personality running the same kept program
// shares them instead of re-formatting identical step text five times.
func stepPrefixes(steps []Step, keep []int) []string {
	out := make([]string, len(keep))
	for j, i := range keep {
		out[j] = fmt.Sprintf("%3d %s = ", i, steps[i])
	}
	return out
}

// execute runs the kept steps of a program inside proc p, recording
// one canonical outcome line per step. prefixes must come from
// stepPrefixes(steps, keep).
func (o *Options) execute(p unix.Proc, persona string, steps []Step, keep []int, prefixes []string, res *Result) {
	st := &execState{
		fds:   make(map[int]unix.FD),
		pipes: make(map[int]*pipeModel),
		wEnd:  make(map[int]bool),
	}
	for j, i := range keep {
		out := st.step(p, steps[i])
		if o.mutate != nil {
			out = o.mutate(persona, i, out)
		}
		res.Outcomes = append(res.Outcomes, prefixes[j]+out)
	}
}

func (st *execState) fd(slot int) unix.FD {
	if fd, ok := st.fds[slot]; ok {
		return fd
	}
	return badFD
}

func (st *execState) step(p unix.Proc, s Step) string {
	switch s.Op {
	case OpMkdir:
		return errno(p.Mkdir(s.Path, s.Mode))
	case OpCreate:
		fd, err := p.Create(s.Path, s.Mode)
		if err == nil {
			st.fds[s.Slot] = fd
		}
		return errno(err)
	case OpOpen:
		fd, err := p.Open(s.Path)
		if err == nil {
			st.fds[s.Slot] = fd
		}
		return errno(err)
	case OpRead:
		if pm := st.pipes[s.FD]; pm != nil && !st.wEnd[s.FD] &&
			pm.fill == 0 && pm.wOpen {
			return "SKIP(would block)"
		}
		buf := st.scratch(s.Size)
		n, err := p.Read(st.fd(s.FD), buf)
		if pm := st.pipes[s.FD]; pm != nil && !st.wEnd[s.FD] && err == nil {
			pm.fill -= n
		}
		return fmt.Sprintf("%d,%s,h=%x", n, errno(err), fnv1a(0, buf[:n]))
	case OpWrite:
		if pm := st.pipes[s.FD]; pm != nil && st.wEnd[s.FD] &&
			pm.rOpen && s.Size > pipeCapacity-pm.fill {
			return "SKIP(would block)"
		}
		buf := st.scratch(s.Size)
		for i := range buf {
			buf[i] = s.Fill + byte(i%7)
		}
		n, err := p.Write(st.fd(s.FD), buf)
		if pm := st.pipes[s.FD]; pm != nil && st.wEnd[s.FD] && err == nil {
			pm.fill += n
		}
		return fmt.Sprintf("%d,%s", n, errno(err))
	case OpSeek:
		pos, err := p.Seek(st.fd(s.FD), s.Off, s.Whence)
		return fmt.Sprintf("%d,%s", pos, errno(err))
	case OpClose:
		err := p.Close(st.fd(s.FD))
		if pm := st.pipes[s.FD]; pm != nil && err == nil {
			if st.wEnd[s.FD] {
				pm.wOpen = false
			} else {
				pm.rOpen = false
			}
		}
		if err == nil {
			delete(st.fds, s.FD)
		}
		return errno(err)
	case OpStat:
		info, err := p.Stat(s.Path)
		if err != nil {
			return errno(err)
		}
		return fmt.Sprintf("size=%d,mode=%o,uid=%d,dir=%v", info.Size, info.Mode, info.UID, info.IsDir)
	case OpChmod:
		return errno(p.Chmod(s.Path, s.Mode))
	case OpReaddir:
		ents, err := p.Readdir(s.Path)
		if err != nil {
			return errno(err)
		}
		names := make([]string, len(ents))
		for i, e := range ents {
			kind := "f"
			if e.IsDir {
				kind = "d"
			} else if e.IsLink {
				kind = "l"
			}
			names[i] = kind + ":" + e.Name
		}
		sort.Strings(names)
		return "[" + strings.Join(names, " ") + "]"
	case OpUnlink:
		return errno(p.Unlink(s.Path))
	case OpRmdir:
		return errno(p.Rmdir(s.Path))
	case OpRename:
		return errno(p.Rename(s.Path, s.Path2))
	case OpSymlink:
		return errno(p.Symlink(s.Path, s.Path2))
	case OpPipe:
		r, w, err := p.Pipe()
		if err == nil {
			st.fds[s.Slot] = r
			st.fds[s.Slot+1] = w
			pm := &pipeModel{rOpen: true, wOpen: true}
			st.pipes[s.Slot] = pm
			st.pipes[s.Slot+1] = pm
			st.wEnd[s.Slot+1] = true
		}
		return errno(err)
	case OpFork:
		// fork-lite: spawn + immediate wait; the child is restricted to
		// file operations so the interleaving is fully serialized.
		childErr := "OK"
		h, err := p.Spawn("child", func(c unix.Proc) {
			fd, err := c.Create(s.Path, 6)
			if err != nil {
				childErr = errno(err)
				return
			}
			buf := make([]byte, 64)
			for i := range buf {
				buf[i] = s.Fill
			}
			if _, err := c.Write(fd, buf); err != nil {
				childErr = errno(err)
			}
			if err := c.Close(fd); err != nil && childErr == "OK" {
				childErr = errno(err)
			}
		})
		if err != nil {
			return errno(err)
		}
		h.Wait()
		return "OK,child=" + childErr
	case OpSync:
		return errno(p.Sync())
	}
	return "?"
}

// observe walks the final namespace: every directory (sorted), every
// file's size/mode/uid and full content hash. MTime is deliberately
// excluded — it derives from virtual time, which is cost-dependent and
// so legitimately differs across personalities.
func observe(p unix.Proc, dir string, depth int, out *[]string, buf []byte) {
	if depth > 8 {
		return
	}
	path := dir
	if path == "" {
		path = "/"
	}
	ents, err := p.Readdir(path)
	if err != nil {
		*out = append(*out, fmt.Sprintf("D %s readdir=%s", path, errno(err)))
		return
	}
	sort.Slice(ents, func(i, j int) bool { return ents[i].Name < ents[j].Name })
	for _, e := range ents {
		full := dir + "/" + e.Name
		switch {
		case e.IsDir:
			info, err := p.Stat(full)
			*out = append(*out, fmt.Sprintf("D %s mode=%o uid=%d (%s)", full, info.Mode, info.UID, errno(err)))
			observe(p, full, depth+1, out, buf)
		case e.IsLink:
			*out = append(*out, fmt.Sprintf("L %s size=%d", full, e.Size))
		default:
			line := fmt.Sprintf("F %s size=%d", full, e.Size)
			if info, err := p.Stat(full); err == nil {
				line += fmt.Sprintf(" mode=%o uid=%d", info.Mode, info.UID)
			}
			if fd, err := p.Open(full); err == nil {
				h := uint64(0)
				for {
					n, err := p.Read(fd, buf)
					if n > 0 {
						h = fnv1a(h, buf[:n])
					}
					if err != nil || n == 0 {
						break
					}
				}
				p.Close(fd)
				line += fmt.Sprintf(" h=%x", h)
			} else {
				line += " open=" + errno(err)
			}
			*out = append(*out, line)
		}
	}
}

// runProgram executes the kept steps of a program on one personality
// and captures the full observable Result. prefixes, when non-nil,
// must come from stepPrefixes(steps, keep); callers running the same
// program on several personalities pass one shared set.
func (o *Options) runProgram(pers machine.Personality, steps []Step, keep []int, prefixes []string, plan *fault.Plan, withTrace bool) (*Result, error) {
	var tr *trace.Tracer
	if withTrace {
		tr = trace.New()
	}
	if prefixes == nil {
		prefixes = stepPrefixes(steps, keep)
	}
	m, err := machine.New(machine.Config{
		Personality: pers,
		DiskBlocks:  o.DiskBlocks,
		MemPages:    o.MemPages,
		Faults:      plan,
		Trace:       tr,
	})
	if err != nil {
		return nil, err
	}
	return o.finishProgram(m, pers.String(), steps, keep, prefixes), nil
}

// forkProgram is runProgram's snapshot fast path: instead of booting a
// machine it forks the personality's post-boot snapshot and runs the
// kept steps there. The fork resumes the snapshot's tracer and
// fault-plan stream positions, so the Result is bit-identical to a
// from-boot run's — determinismOnce checks exactly that.
func (o *Options) forkProgram(sn *machine.Snapshot, persName string, steps []Step, keep []int, prefixes []string) *Result {
	return o.finishProgram(machine.Fork(sn), persName, steps, keep, prefixes)
}

// finishProgram runs the observable tail — the fuzz program, the
// namespace walk, a sync, the crash image audit — on m, which it
// consumes (Close), and captures the Result.
func (o *Options) finishProgram(m machine.Machine, persName string, steps []Step, keep []int, prefixes []string) *Result {
	res := &Result{}
	m.SpawnProc("fuzz", 0, func(p unix.Proc) {
		o.execute(p, persName, steps, keep, prefixes, res)
	})
	m.Run()
	m.SpawnProc("observe", 0, func(p unix.Proc) {
		observe(p, "", 0, &res.Tree, make([]byte, 8192))
	})
	m.Run()
	m.SpawnProc("syncer", 0, func(p unix.Proc) { _ = p.Sync() })
	m.Run()
	res.Cycles = m.Now()
	res.Digest = m.Kern().Trace.Digest() // nil-safe: untraced runs fold to the offset basis
	img := m.Crash(m.Now())
	fsName, fsCfg := m.FSSpec()
	// AuditImage consumes img; Close returns the machine's page frames
	// and media blocks to the shared pool. Together they make a seed ×
	// personality cell ~allocation-neutral at steady state.
	res.Audit = cffs.AuditImage(img, o.DiskBlocks, fsName, fsCfg)
	m.Close()
	return res
}

// bootSnapshots boots each personality once to its post-boot quiescent
// point, snapshots it, and closes the machine (the snapshot owns the
// frozen pages and blocks; copy-on-write keeps them valid). In
// determinism mode the snapshot machine boots with a live tracer and a
// clone of the campaign's fault plan, so forks resume both exactly
// where boot left them. The returned func releases every snapshot.
func (o *Options) bootSnapshots() (func(), error) {
	o.snaps = make(map[machine.Personality]*machine.Snapshot, len(o.Personalities))
	release := func() {
		for _, sn := range o.snaps {
			sn.Release()
		}
		o.snaps = nil
	}
	for _, pers := range o.Personalities {
		var tr *trace.Tracer
		var plan *fault.Plan
		if o.Faults != nil {
			tr = trace.New()
			plan = o.Faults.Clone()
		}
		m, err := machine.New(machine.Config{
			Personality: pers,
			DiskBlocks:  o.DiskBlocks,
			MemPages:    o.MemPages,
			Faults:      plan,
			Trace:       tr,
		})
		if err != nil {
			release()
			return nil, err
		}
		sn, err := m.Snapshot()
		if err != nil {
			m.Close()
			release()
			return nil, fmt.Errorf("difftest: post-boot snapshot of %s: %w", pers, err)
		}
		m.Close()
		o.snaps[pers] = sn
	}
	return release, nil
}

// compare reports the first observable disagreement between two
// results, or "" if they match. Cycle counts and trace digests are
// only compared when exact is set (determinism mode: same personality,
// same costs).
func compare(a, b *Result, exact bool) string {
	n := len(a.Outcomes)
	if len(b.Outcomes) < n {
		n = len(b.Outcomes)
	}
	for i := 0; i < n; i++ {
		if a.Outcomes[i] != b.Outcomes[i] {
			return fmt.Sprintf("step %s vs %s", a.Outcomes[i], b.Outcomes[i])
		}
	}
	if len(a.Outcomes) != len(b.Outcomes) {
		return fmt.Sprintf("outcome count %d vs %d", len(a.Outcomes), len(b.Outcomes))
	}
	if d := diffLines(a.Tree, b.Tree); d != "" {
		return "final tree: " + d
	}
	if exact {
		if d := diffLines(a.Audit, b.Audit); d != "" {
			return "audit: " + d
		}
		if a.Cycles != b.Cycles {
			return fmt.Sprintf("cycle count %d vs %d", a.Cycles, b.Cycles)
		}
		if a.Digest != b.Digest {
			return fmt.Sprintf("trace digest %x vs %x", a.Digest, b.Digest)
		}
	}
	return ""
}

func diffLines(a, b []string) string {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if a[i] != b[i] {
			return fmt.Sprintf("%q vs %q", a[i], b[i])
		}
	}
	if len(a) != len(b) {
		return fmt.Sprintf("%d vs %d lines", len(a), len(b))
	}
	return ""
}

// allSteps returns [0..n).
func allSteps(n int) []int {
	keep := make([]int, n)
	for i := range keep {
		keep[i] = i
	}
	return keep
}

// Fuzz runs the configured campaign. It returns the first divergence
// found — already shrunk, with its replay token — or nil if every seed
// agreed. Infrastructure errors (a personality failing to boot) are
// returned as err.
//
// Seeds are independent (each boots fresh machines), so with
// opt.Parallel > 1 they fan out across a worker pool; logging,
// first-divergence selection and shrinking all happen in seed order in
// the calling goroutine, keeping the output byte-identical to a
// serial run.
func Fuzz(opt Options) (*Divergence, error) {
	o := opt.Defaults()
	if o.Snapshot {
		release, err := o.bootSnapshots()
		if err != nil {
			return nil, err
		}
		defer release()
	}
	if o.Faults != nil {
		return fuzzDeterminism(&o)
	}
	type seedResult struct {
		div *Divergence
		err error
	}
	var (
		firstErr error
		firstDiv *Divergence
		divSeed  uint64
	)
	parallel.Stream(o.workers(), o.Seeds, func(i int) seedResult {
		seed := o.BaseSeed + uint64(i)
		steps := Generate(seed, o.Steps)
		div, err := o.diffOnce(seed, steps, allSteps(len(steps)))
		return seedResult{div, err}
	}, func(i int, r seedResult) bool {
		seed := o.BaseSeed + uint64(i)
		if r.err != nil {
			firstErr = r.err
			return false
		}
		if r.div != nil {
			o.logf("seed %d: divergence (%s vs %s) — shrinking", seed, r.div.A, r.div.B)
			firstDiv, divSeed = r.div, seed
			return false
		}
		if (i+1)%50 == 0 {
			o.logf("%d/%d seeds clean", i+1, o.Seeds)
		}
		return true
	})
	if firstErr != nil {
		return nil, firstErr
	}
	if firstDiv != nil {
		// Shrinking bisects one program repeatedly — inherently serial.
		return o.shrinkDivergence(divSeed, Generate(divSeed, o.Steps), firstDiv)
	}
	return nil, nil
}

// workers resolves Options.Parallel for parallel.Stream: difftest
// treats values <= 1 (including the zero value) as serial so existing
// callers keep their exact behavior; explicit counts pass through.
// Callers wanting "one worker per CPU" resolve it themselves with
// parallel.Workers(0), as cmd/xok-bench does for its -parallel flag.
func (o *Options) workers() int {
	if o.Parallel <= 1 {
		return 1
	}
	return o.Parallel
}

// diffOnce runs one program (the kept subset) on every personality and
// cross-compares. The first personality is the reference; audit
// cleanliness is checked per personality.
func (o *Options) diffOnce(seed uint64, steps []Step, keep []int) (*Divergence, error) {
	var ref *Result
	var refName string
	prefixes := stepPrefixes(steps, keep)
	for _, pers := range o.Personalities {
		name := pers.String()
		var res *Result
		if sn := o.snaps[pers]; sn != nil {
			res = o.forkProgram(sn, name, steps, keep, prefixes)
		} else {
			var err error
			res, err = o.runProgram(pers, steps, keep, prefixes, nil, false)
			if err != nil {
				return nil, err
			}
		}
		if len(res.Audit) != 0 {
			return &Divergence{
				Seed: seed, Steps: len(steps), Keep: keep,
				A: name, B: "fsck",
				Where: fmt.Sprintf("audit not clean: %s", res.Audit[0]),
			}, nil
		}
		if ref == nil {
			ref, refName = res, name
			continue
		}
		if d := compare(ref, res, false); d != "" {
			return &Divergence{
				Seed: seed, Steps: len(steps), Keep: keep,
				A: refName, B: name, Where: d,
			}, nil
		}
	}
	return nil, nil
}

// shrinkDivergence reduces the failing program to a minimal set of
// steps that still reproduces a divergence between div.A and div.B,
// and attaches the replay token.
func (o *Options) shrinkDivergence(seed uint64, steps []Step, div *Divergence) (*Divergence, error) {
	var persA, persB machine.Personality
	for _, p := range o.Personalities {
		if p.String() == div.A {
			persA = p
		}
		if p.String() == div.B {
			persB = p
		}
	}
	reproduces := func(keep []int) bool {
		if div.B == "fsck" {
			res, err := o.runProgram(persA, steps, keep, nil, nil, false)
			return err == nil && len(res.Audit) != 0
		}
		prefixes := stepPrefixes(steps, keep)
		ra, errA := o.runProgram(persA, steps, keep, prefixes, nil, false)
		rb, errB := o.runProgram(persB, steps, keep, prefixes, nil, false)
		if errA != nil || errB != nil {
			return false
		}
		return compare(ra, rb, false) != ""
	}
	keep := shrink(div.Keep, reproduces)
	div.Keep = keep
	div.Token = encodeToken(seed, len(steps), keep)
	// Re-derive the divergence description from the minimal program.
	final, err := o.diffOnce(seed, steps, keep)
	if err == nil && final != nil {
		final.Token = div.Token
		return final, nil
	}
	return div, nil
}

// Replay re-runs a replay token bit-identically: same seed, same
// program, same kept steps — and the same fault plan when opt.Faults
// carries one. It returns the divergence the token reproduces (nil if
// it no longer diverges, e.g. after a fix).
func Replay(token string, opt Options) (*Divergence, error) {
	o := opt.Defaults()
	seed, n, keep, err := ParseToken(token)
	if err != nil {
		return nil, err
	}
	steps := Generate(seed, n)
	if o.Faults != nil {
		for _, pers := range o.Personalities {
			div, err := o.determinismOnce(pers, seed, steps, keep)
			if err != nil || div != nil {
				if div != nil {
					div.Token = token
				}
				return div, err
			}
		}
		return nil, nil
	}
	div, err := o.diffOnce(seed, steps, keep)
	if div != nil {
		div.Token = token
	}
	return div, err
}
