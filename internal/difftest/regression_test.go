package difftest

import "testing"

// Shrunk reproducers of real divergences the fuzzer caught, kept as
// replay tokens. Each one failed before its fix landed; replaying it
// must now come back clean on every personality. The cffs-level
// translations live in internal/cffs/stale_test.go — these exercise
// the same bugs end to end through the replay machinery, which also
// pins the token workflow itself.
//
//	452:…   — file-hole blocks exposed stale disk contents (content
//	          hash diverged between allocation policies; fixed by
//	          zero-filling uninit blocks in xn.Read and initializing
//	          hole blocks at cffs write time)
//	5136:…  — holes left metadata tainted, so sync() failed forever on
//	          the protected personality only
//	5390:…  — I/O through a stale descriptor failed with different
//	          internal errors per personality (now uniformly ESTALE
//	          via slot generations)
func TestFixedDivergenceTokens(t *testing.T) {
	tokens := []string{
		"452:40:0,2,7,13-14,19,22,36",
		"5136:80:1-2,5,12,14,19,23,40-41,45",
		"5390:80:1,6,8-9,11,16,19,30",
	}
	for _, tok := range tokens {
		div, err := Replay(tok, Options{})
		if err != nil {
			t.Errorf("replay %s: %v", tok, err)
			continue
		}
		if div != nil {
			prog, _ := Program(tok)
			t.Errorf("token %s diverges again:\n%v\nprogram:\n%s", tok, div, prog)
		}
	}
}
