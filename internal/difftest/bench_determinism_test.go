package difftest

import (
	"testing"

	"xok/internal/machine"
	"xok/internal/ostest"
	"xok/internal/sim"
	"xok/internal/trace"
	"xok/internal/workload"
)

// TestBenchmarkDeterminism pins the simulator's core guarantee at the
// benchmark scale: two boots of the same personality running the same
// workload (the Modified Andrew Benchmark plus a pipe ping-pong) must
// agree on every traced event AND every cycle — not just final state.
// The differential fuzzer depends on this: it compares personalities
// against each other, which is only sound if a single personality never
// disagrees with itself. A divergence here means nondeterminism leaked
// into the simulation (map iteration, wall-clock time, shared state
// across boots) and every published figure is suspect.
func TestBenchmarkDeterminism(t *testing.T) {
	rounds := 40
	if testing.Short() {
		rounds = 8
	}
	for _, pers := range machine.Personalities() {
		pers := pers
		t.Run(pers.String(), func(t *testing.T) {
			run := func() (uint64, sim.Time) {
				tr := trace.New()
				m, err := machine.New(machine.Config{Personality: pers, Trace: tr})
				if err != nil {
					t.Fatalf("boot: %v", err)
				}
				if _, err := workload.MAB(m); err != nil {
					t.Fatalf("mab: %v", err)
				}
				if lat := ostest.PipeLatency(machine.Runner(m), 64, rounds); lat == 0 {
					t.Fatal("pipe benchmark failed")
				}
				return tr.Digest(), m.Now()
			}
			d1, c1 := run()
			d2, c2 := run()
			if d1 != d2 {
				t.Errorf("trace digests differ across identical runs: %#x vs %#x", d1, d2)
			}
			if c1 != c2 {
				t.Errorf("cycle counts differ across identical runs: %d vs %d", c1, c2)
			}
		})
	}
}
