package difftest

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// shrink is ddmin-style delta debugging over step indices: it returns
// a subset of keep (order preserved) for which reproduces still holds,
// locally minimal in the sense that removing any single remaining step
// breaks reproduction. reproduces(keep) must be true on entry.
func shrink(keep []int, reproduces func([]int) bool) []int {
	cur := append([]int(nil), keep...)
	n := 2
	for len(cur) >= 2 {
		chunk := (len(cur) + n - 1) / n
		reduced := false
		// Try deleting each chunk (complement testing — the useful half
		// of classic ddmin for "smaller is always easier" workloads).
		for lo := 0; lo < len(cur); lo += chunk {
			hi := lo + chunk
			if hi > len(cur) {
				hi = len(cur)
			}
			cand := append(append([]int(nil), cur[:lo]...), cur[hi:]...)
			if len(cand) > 0 && reproduces(cand) {
				cur = cand
				n = 2
				reduced = true
				break
			}
		}
		if !reduced {
			if n >= len(cur) {
				break
			}
			n *= 2
			if n > len(cur) {
				n = len(cur)
			}
		}
	}
	// Final one-at-a-time pass guarantees 1-minimality even when the
	// chunk schedule skipped a singleton.
	for i := 0; i < len(cur) && len(cur) > 1; {
		cand := append(append([]int(nil), cur[:i]...), cur[i+1:]...)
		if reproduces(cand) {
			cur = cand
		} else {
			i++
		}
	}
	return cur
}

// encodeToken renders a replay token: "seed:steps:keep" where keep is
// "all" or compact index ranges ("3-5,9"). The token plus the
// generator version pins the exact reproducer — Generate(seed, steps)
// restricted to the kept indices.
func encodeToken(seed uint64, steps int, keep []int) string {
	return fmt.Sprintf("%d:%d:%s", seed, steps, encodeRanges(keep, steps))
}

func encodeRanges(keep []int, steps int) string {
	if len(keep) == steps {
		return "all"
	}
	sorted := append([]int(nil), keep...)
	sort.Ints(sorted)
	var parts []string
	for i := 0; i < len(sorted); {
		j := i
		for j+1 < len(sorted) && sorted[j+1] == sorted[j]+1 {
			j++
		}
		if i == j {
			parts = append(parts, strconv.Itoa(sorted[i]))
		} else {
			parts = append(parts, fmt.Sprintf("%d-%d", sorted[i], sorted[j]))
		}
		i = j + 1
	}
	return strings.Join(parts, ",")
}

// ParseToken decodes a replay token back into (seed, program length,
// kept step indices).
func ParseToken(token string) (seed uint64, steps int, keep []int, err error) {
	parts := strings.SplitN(strings.TrimSpace(token), ":", 3)
	if len(parts) != 3 {
		return 0, 0, nil, fmt.Errorf("difftest: bad token %q (want seed:steps:keep)", token)
	}
	seed, err = strconv.ParseUint(parts[0], 0, 64)
	if err != nil {
		return 0, 0, nil, fmt.Errorf("difftest: bad token seed %q: %v", parts[0], err)
	}
	steps, err = strconv.Atoi(parts[1])
	if err != nil || steps <= 0 {
		return 0, 0, nil, fmt.Errorf("difftest: bad token step count %q", parts[1])
	}
	if parts[2] == "all" {
		return seed, steps, allSteps(steps), nil
	}
	for _, r := range strings.Split(parts[2], ",") {
		lo, hi, ok := parseRange(r)
		if !ok || lo < 0 || hi >= steps || lo > hi {
			return 0, 0, nil, fmt.Errorf("difftest: bad token range %q", r)
		}
		for i := lo; i <= hi; i++ {
			keep = append(keep, i)
		}
	}
	if len(keep) == 0 {
		return 0, 0, nil, fmt.Errorf("difftest: token keeps no steps")
	}
	sort.Ints(keep)
	return seed, steps, keep, nil
}

func parseRange(s string) (lo, hi int, ok bool) {
	if i := strings.IndexByte(s, '-'); i >= 0 {
		a, err1 := strconv.Atoi(s[:i])
		b, err2 := strconv.Atoi(s[i+1:])
		return a, b, err1 == nil && err2 == nil
	}
	a, err := strconv.Atoi(s)
	return a, a, err == nil
}

// Program renders the kept steps of a token's program — what the
// harness prints under a divergence so the reproducer is readable
// without running anything.
func Program(token string) (string, error) {
	seed, n, keep, err := ParseToken(token)
	if err != nil {
		return "", err
	}
	steps := Generate(seed, n)
	var b strings.Builder
	for _, i := range keep {
		fmt.Fprintf(&b, "%3d %s\n", i, steps[i])
	}
	return b.String(), nil
}
