package difftest

import "fmt"

// The program generator: seed-driven, state-aware synthesis of
// syscall programs over the unix.Proc surface. The same (seed, steps)
// pair always yields the identical program — that is what makes a
// replay token a complete reproducer.
//
// Generation is *state-aware*, not state-perfect: the generator keeps
// a model of which paths and descriptors it believes exist and biases
// choices toward valid calls (so programs mostly make progress), but
// deliberately mixes in stale paths, closed descriptors, wrong pipe
// ends and colliding names, because the errno surface is exactly where
// personalities historically diverged.

// Op enumerates the generated syscalls.
type Op int

// The generated operation set (ISSUE: mkdir/create/open/read/write/
// seek/unlink/rename/link/stat/chmod/pipe/fork-lite, plus readdir,
// rmdir and sync which fall out of the same surface).
const (
	OpMkdir Op = iota
	OpCreate
	OpOpen
	OpRead
	OpWrite
	OpSeek
	OpClose
	OpStat
	OpChmod
	OpReaddir
	OpUnlink
	OpRmdir
	OpRename
	OpSymlink
	OpPipe
	OpFork
	OpSync
)

var opNames = map[Op]string{
	OpMkdir: "mkdir", OpCreate: "create", OpOpen: "open", OpRead: "read",
	OpWrite: "write", OpSeek: "seek", OpClose: "close", OpStat: "stat",
	OpChmod: "chmod", OpReaddir: "readdir", OpUnlink: "unlink",
	OpRmdir: "rmdir", OpRename: "rename", OpSymlink: "symlink",
	OpPipe: "pipe", OpFork: "fork", OpSync: "sync",
}

// String names the op.
func (o Op) String() string {
	if n, ok := opNames[o]; ok {
		return n
	}
	return fmt.Sprintf("op%d", int(o))
}

// Step is one generated syscall. Descriptors are named by *slot*: the
// step that opened them. A consumer holds the producer's slot number,
// so when shrinking removes the producer, the consumer degrades to a
// deterministic EBADF instead of aliasing an unrelated descriptor.
type Step struct {
	Op     Op
	Path   string // primary path operand
	Path2  string // rename destination / symlink target
	Slot   int    // descriptor slot this step defines (open/create: 1, pipe: Slot and Slot+1)
	FD     int    // descriptor slot this step uses (-1 = none)
	Size   int    // read/write byte count
	Off    int64  // seek offset
	Whence int
	Mode   uint32
	Fill   byte // write payload byte (mixed with the offset for content)
}

// String renders a step compactly for failure reports.
func (s Step) String() string {
	switch s.Op {
	case OpMkdir, OpCreate:
		return fmt.Sprintf("%s(%q, %o) -> s%d", s.Op, s.Path, s.Mode, s.Slot)
	case OpOpen:
		return fmt.Sprintf("open(%q) -> s%d", s.Path, s.Slot)
	case OpRead:
		return fmt.Sprintf("read(s%d, %d)", s.FD, s.Size)
	case OpWrite:
		return fmt.Sprintf("write(s%d, %d×%#x)", s.FD, s.Size, s.Fill)
	case OpSeek:
		return fmt.Sprintf("seek(s%d, %d, %d)", s.FD, s.Off, s.Whence)
	case OpClose:
		return fmt.Sprintf("close(s%d)", s.FD)
	case OpStat, OpReaddir, OpUnlink, OpRmdir:
		return fmt.Sprintf("%s(%q)", s.Op, s.Path)
	case OpChmod:
		return fmt.Sprintf("chmod(%q, %o)", s.Path, s.Mode)
	case OpRename:
		return fmt.Sprintf("rename(%q, %q)", s.Path, s.Path2)
	case OpSymlink:
		return fmt.Sprintf("symlink(%q -> %q)", s.Path, s.Path2)
	case OpPipe:
		return fmt.Sprintf("pipe() -> s%d,s%d", s.Slot, s.Slot+1)
	case OpFork:
		return fmt.Sprintf("fork{create %q}", s.Path)
	case OpSync:
		return "sync()"
	}
	return s.Op.String()
}

// rng is splitmix64: tiny, deterministic, sequence-stable across
// architectures (math/rand's stream is not part of the Go 1
// compatibility promise; this one is ours).
type rng struct{ s uint64 }

func newRng(seed uint64) *rng { return &rng{s: seed*0x9E3779B97F4A7C15 + 0x1F123BB5} }

func (r *rng) next() uint64 {
	r.s += 0x9E3779B97F4A7C15
	z := r.s
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

func (r *rng) intn(n int) int { return int(r.next() % uint64(n)) }

func (r *rng) pick(ss []string) string { return ss[r.intn(len(ss))] }

// oneIn rolls a 1/n chance.
func (r *rng) oneIn(n int) bool { return r.intn(n) == 0 }

// genModel is the generator's belief about machine state. It is only a
// bias — the executor never consults it.
type genModel struct {
	dirs     []string // directories believed to exist ("" is the root)
	files    []string // file (and symlink) paths believed to exist
	fileFDs  []int    // slots holding believed-open file descriptors
	pipeRs   []int    // slots holding believed-open pipe read ends
	pipeWs   []int    // slots holding believed-open pipe write ends
	nextSlot int
}

var (
	fileNames = []string{"a", "b", "c", "f1", "f2", "longer-name"}
	dirNames  = []string{"d0", "d1", "sub"}
	sizes     = []int{1, 8, 100, 700, 4096, 5000, 17000}
)

// freshPath invents a path under an existing directory; a small
// namespace makes collisions (EEXIST) and re-use after unlink common.
func (m *genModel) freshPath(r *rng) string {
	return m.dirs[r.intn(len(m.dirs))] + "/" + r.pick(fileNames)
}

func (m *genModel) freshDirPath(r *rng) string {
	return m.dirs[r.intn(len(m.dirs))] + "/" + r.pick(dirNames)
}

// somePath picks a path for a consuming op: usually one believed to
// exist, sometimes fresh, occasionally nonsense.
func (m *genModel) somePath(r *rng) string {
	switch {
	case len(m.files) > 0 && r.intn(10) < 6:
		return m.files[r.intn(len(m.files))]
	case r.oneIn(8):
		return "/no/such/path"
	default:
		return m.freshPath(r)
	}
}

// someFD picks a descriptor slot: usually a live file fd, sometimes a
// pipe end, occasionally a slot that was never (or is no longer) open.
func (m *genModel) someFD(r *rng) int {
	pools := [][]int{}
	if len(m.fileFDs) > 0 {
		pools = append(pools, m.fileFDs, m.fileFDs, m.fileFDs) // weight 3
	}
	if len(m.pipeRs) > 0 {
		pools = append(pools, m.pipeRs)
	}
	if len(m.pipeWs) > 0 {
		pools = append(pools, m.pipeWs)
	}
	if len(pools) == 0 || r.oneIn(12) {
		if m.nextSlot == 0 {
			return 0
		}
		return r.intn(m.nextSlot + 1) // any historical slot, maybe closed
	}
	pool := pools[r.intn(len(pools))]
	return pool[r.intn(len(pool))]
}

func remove(s []int, v int) []int {
	for i, x := range s {
		if x == v {
			return append(s[:i], s[i+1:]...)
		}
	}
	return s
}

func removeStr(s []string, v string) []string {
	for i, x := range s {
		if x == v {
			return append(s[:i], s[i+1:]...)
		}
	}
	return s
}

// Generate produces the deterministic n-step program for seed.
func Generate(seed uint64, n int) []Step {
	r := newRng(seed)
	m := &genModel{dirs: []string{""}}
	steps := make([]Step, 0, n)
	for len(steps) < n {
		steps = append(steps, m.genStep(r))
	}
	return steps
}

// weights for op selection; state-aware adjustments happen in genStep.
var opWeights = []struct {
	op Op
	w  int
}{
	{OpCreate, 14}, {OpOpen, 10}, {OpWrite, 14}, {OpRead, 12},
	{OpSeek, 6}, {OpClose, 8}, {OpStat, 8}, {OpChmod, 4},
	{OpReaddir, 4}, {OpMkdir, 6}, {OpUnlink, 6}, {OpRmdir, 3},
	{OpRename, 6}, {OpSymlink, 5}, {OpPipe, 3}, {OpFork, 2}, {OpSync, 2},
}

func (m *genModel) genStep(r *rng) Step {
	total := 0
	for _, ow := range opWeights {
		total += ow.w
	}
	// Bootstrap bias: with nothing open and nothing on disk, the
	// consuming ops would all be noise.
	op := OpCreate
	if len(m.files) > 0 || len(m.fileFDs) > 0 || r.intn(10) < 3 {
		roll := r.intn(total)
		for _, ow := range opWeights {
			if roll < ow.w {
				op = ow.op
				break
			}
			roll -= ow.w
		}
	}

	switch op {
	case OpMkdir:
		p := m.freshDirPath(r)
		m.dirs = append(m.dirs, p)
		return Step{Op: OpMkdir, Path: p, Mode: 7}
	case OpCreate:
		p := m.freshPath(r)
		s := Step{Op: OpCreate, Path: p, Slot: m.nextSlot, Mode: uint32(6 + r.intn(2))}
		m.nextSlot++
		m.files = append(m.files, p)
		m.fileFDs = append(m.fileFDs, s.Slot)
		return s
	case OpOpen:
		s := Step{Op: OpOpen, Path: m.somePath(r), Slot: m.nextSlot}
		m.nextSlot++
		m.fileFDs = append(m.fileFDs, s.Slot)
		return s
	case OpRead:
		return Step{Op: OpRead, FD: m.someFD(r), Size: sizes[r.intn(len(sizes))]}
	case OpWrite:
		return Step{Op: OpWrite, FD: m.someFD(r), Size: sizes[r.intn(len(sizes))],
			Fill: byte('A' + r.intn(26))}
	case OpSeek:
		off := int64(r.intn(9000)) - 100                                      // negative offsets on purpose
		return Step{Op: OpSeek, FD: m.someFD(r), Off: off, Whence: r.intn(4)} // whence 3 = EINVAL
	case OpClose:
		fd := m.someFD(r)
		m.fileFDs = remove(m.fileFDs, fd)
		m.pipeRs = remove(m.pipeRs, fd)
		m.pipeWs = remove(m.pipeWs, fd)
		return Step{Op: OpClose, FD: fd}
	case OpStat:
		return Step{Op: OpStat, Path: m.somePath(r)}
	case OpChmod:
		return Step{Op: OpChmod, Path: m.somePath(r), Mode: uint32(r.intn(8))}
	case OpReaddir:
		return Step{Op: OpReaddir, Path: m.dirs[r.intn(len(m.dirs))]}
	case OpUnlink:
		p := m.somePath(r)
		m.files = removeStr(m.files, p)
		return Step{Op: OpUnlink, Path: p}
	case OpRmdir:
		var p string
		if len(m.dirs) > 1 && !r.oneIn(4) {
			p = m.dirs[1+r.intn(len(m.dirs)-1)]
			// Believe the removal only when nothing obviously lives
			// under it; either way the executor records the truth.
			m.dirs = removeStr(m.dirs, p)
		} else {
			p = m.somePath(r)
		}
		return Step{Op: OpRmdir, Path: p}
	case OpRename:
		oldP := m.somePath(r)
		var newP string
		if r.oneIn(3) {
			newP = m.somePath(r) // collision or cross-directory attempt
		} else {
			// Same-directory rename: the supported fast path.
			if i := lastSlash(oldP); i >= 0 {
				newP = oldP[:i+1] + r.pick(fileNames)
			} else {
				newP = m.freshPath(r)
			}
		}
		m.files = removeStr(m.files, oldP)
		m.files = append(m.files, newP)
		return Step{Op: OpRename, Path: oldP, Path2: newP}
	case OpSymlink:
		target := m.somePath(r)
		p := m.freshPath(r)
		m.files = append(m.files, p)
		return Step{Op: OpSymlink, Path: target, Path2: p}
	case OpPipe:
		s := Step{Op: OpPipe, Slot: m.nextSlot}
		m.pipeRs = append(m.pipeRs, m.nextSlot)
		m.pipeWs = append(m.pipeWs, m.nextSlot+1)
		m.nextSlot += 2
		return s
	case OpFork:
		p := m.freshPath(r)
		m.files = append(m.files, p)
		return Step{Op: OpFork, Path: p, Fill: byte('a' + r.intn(26))}
	}
	return Step{Op: OpSync}
}

func lastSlash(p string) int {
	for i := len(p) - 1; i >= 0; i-- {
		if p[i] == '/' {
			return i
		}
	}
	return -1
}
