package difftest

import (
	"xok/internal/machine"
	"xok/internal/parallel"
)

// Determinism mode: the same program runs twice on the same
// personality — under a cloned fault plan when one is armed — and the
// two runs must agree on everything, bit for bit: per-step outcomes,
// final tree, audit findings, cycle count, and the full trace digest.
// This is the property the rest of the repository silently assumes
// (crash-point enumeration, benchmark reproducibility, the replay
// tokens above); here it is checked mechanically across random
// programs.
//
// Cross-personality comparison is deliberately NOT done under faults:
// a kill-at-Nth-syscall or crash-at-depth plan fires at different
// program points on personalities with different syscall sequences, so
// personalities legitimately diverge. Within one personality the plan
// is cloned per run and must land identically.

func fuzzDeterminism(o *Options) (*Divergence, error) {
	// One unit of fanned-out work = one seed across every personality
	// (the per-seed inner loop stays serial inside the worker, matching
	// the order a serial campaign checks personalities in).
	type seedResult struct {
		div  *Divergence
		pers machine.Personality
		err  error
	}
	var (
		firstErr error
		firstDiv *Divergence
		divPers  machine.Personality
		divSeed  uint64
	)
	parallel.Stream(o.workers(), o.Seeds, func(i int) seedResult {
		seed := o.BaseSeed + uint64(i)
		steps := Generate(seed, o.Steps)
		keep := allSteps(len(steps))
		for _, pers := range o.Personalities {
			div, err := o.determinismOnce(pers, seed, steps, keep)
			if err != nil || div != nil {
				return seedResult{div, pers, err}
			}
		}
		return seedResult{}
	}, func(i int, r seedResult) bool {
		seed := o.BaseSeed + uint64(i)
		if r.err != nil {
			firstErr = r.err
			return false
		}
		if r.div != nil {
			o.logf("seed %d: nondeterminism on %s — shrinking", seed, r.div.A)
			firstDiv, divPers, divSeed = r.div, r.pers, seed
			return false
		}
		if (i+1)%50 == 0 {
			o.logf("%d/%d seeds deterministic", i+1, o.Seeds)
		}
		return true
	})
	if firstErr != nil {
		return nil, firstErr
	}
	if firstDiv != nil {
		return o.shrinkDeterminism(divPers, divSeed, Generate(divSeed, o.Steps), firstDiv)
	}
	return nil, nil
}

// determinismOnce runs the kept steps twice on one personality and
// compares exactly. With the snapshot fast path on, the second run
// forks from the personality's post-boot snapshot instead of booting —
// so the comparison doubles as the replay-equivalence proof that a
// snapshot captures the tracer and the fault plan's xorshift stream
// positions: a fork that rewound (or skipped) any stream would land
// faults at different points and fail the exact compare.
func (o *Options) determinismOnce(pers machine.Personality, seed uint64, steps []Step, keep []int) (*Divergence, error) {
	prefixes := stepPrefixes(steps, keep)
	run := func() (*Result, error) {
		var plan = o.Faults
		if plan != nil {
			// Clone per run: a plan consumes deterministic decisions as
			// it goes; reusing one object would make run 2 see different
			// faults than run 1 by construction.
			plan = plan.Clone()
		}
		return o.runProgram(pers, steps, keep, prefixes, plan, true)
	}
	r1, err := run()
	if err != nil {
		return nil, err
	}
	var r2 *Result
	second := " (2nd run)"
	if sn := o.snaps[pers]; sn != nil {
		r2 = o.forkProgram(sn, pers.String(), steps, keep, prefixes)
		second = " (forked run)"
	} else {
		r2, err = run()
		if err != nil {
			return nil, err
		}
	}
	if d := compare(r1, r2, true); d != "" {
		return &Divergence{
			Seed: seed, Steps: len(steps), Keep: keep,
			A: pers.String(), B: pers.String() + second,
			Where: d,
		}, nil
	}
	return nil, nil
}

func (o *Options) shrinkDeterminism(pers machine.Personality, seed uint64, steps []Step, div *Divergence) (*Divergence, error) {
	reproduces := func(keep []int) bool {
		d, err := o.determinismOnce(pers, seed, steps, keep)
		return err == nil && d != nil
	}
	keep := shrink(div.Keep, reproduces)
	div.Keep = keep
	div.Token = encodeToken(seed, len(steps), keep)
	final, err := o.determinismOnce(pers, seed, steps, keep)
	if err == nil && final != nil {
		final.Token = div.Token
		return final, nil
	}
	return div, nil
}
