package difftest

import (
	"bytes"
	"reflect"
	"testing"

	"xok/internal/fault"
)

// runCampaign runs one fuzz campaign capturing its log.
func runCampaign(t *testing.T, opt Options, workers int) (string, *Divergence) {
	t.Helper()
	var buf bytes.Buffer
	opt.Log = &buf
	opt.Parallel = workers
	div, err := Fuzz(opt)
	if err != nil {
		t.Fatalf("fuzz (parallel=%d): %v", workers, err)
	}
	return buf.String(), div
}

// TestParallelMatchesSerial is the harness's core promise: fanning a
// campaign across workers changes wall-clock time and nothing else.
// The progress log must be byte-identical and the divergence (if any)
// identical — same seed, same shrunk reproducer, same replay token.
func TestParallelMatchesSerial(t *testing.T) {
	opt := Options{Seeds: 25, Steps: 30}
	serialLog, serialDiv := runCampaign(t, opt, 1)
	for _, workers := range []int{2, 4, 7} {
		log, div := runCampaign(t, opt, workers)
		if log != serialLog {
			t.Fatalf("parallel=%d log differs from serial:\n--- serial ---\n%s--- parallel ---\n%s",
				workers, serialLog, log)
		}
		if serialDiv != nil || div != nil {
			t.Fatalf("clean campaign reported a divergence: serial=%v parallel=%v", serialDiv, div)
		}
	}
}

// TestParallelMatchesSerialDivergence injects a divergence via the
// mutation hook (which runs on worker goroutines — the hook here is a
// pure function, as the field requires) and demands that every worker
// count finds, shrinks, and reports the identical first divergence.
func TestParallelMatchesSerialDivergence(t *testing.T) {
	mutate := func(personality string, step int, out string) string {
		if personality == "Xok/ExOS" && step == 5 && out == "OK" {
			return "ENOENT"
		}
		return out
	}
	// Scan for a base seed the mutation actually trips on (the step-5
	// outcome must normally be OK), as TestMutationCaught does.
	var base uint64
	for b := uint64(1); b <= 20; b++ {
		opt := Options{Seeds: 1, Steps: 40, BaseSeed: b}
		opt.mutate = mutate
		if hit, err := Fuzz(opt); err != nil {
			t.Fatalf("fuzz: %v", err)
		} else if hit != nil {
			base = b
			break
		}
	}
	if base == 0 {
		t.Fatal("injected mutation never tripped in 20 base seeds")
	}
	// A multi-seed campaign whose LAST seed is the tripping one, so
	// parallel workers race past clean seeds before the hit: ordered
	// consumption must still report the hit identically.
	opt := Options{Seeds: 8, Steps: 40, BaseSeed: base - 7}
	if base < 8 {
		opt = Options{Seeds: int(base), Steps: 40, BaseSeed: 1}
	}
	opt.mutate = mutate
	serialLog, serialDiv := runCampaign(t, opt, 1)
	if serialDiv == nil {
		t.Fatal("serial campaign missed the injected divergence")
	}
	for _, workers := range []int{2, 4} {
		log, div := runCampaign(t, opt, workers)
		if log != serialLog {
			t.Fatalf("parallel=%d log differs from serial:\n--- serial ---\n%s--- parallel ---\n%s",
				workers, serialLog, log)
		}
		if div == nil {
			t.Fatalf("parallel=%d campaign missed the divergence", workers)
		}
		if !reflect.DeepEqual(div, serialDiv) {
			t.Fatalf("parallel=%d divergence differs:\nserial:   %+v\nparallel: %+v", workers, serialDiv, div)
		}
		if div.Token != serialDiv.Token {
			t.Fatalf("replay token differs: %s vs %s", serialDiv.Token, div.Token)
		}
	}
}

// TestParallelMatchesSerialDeterminism covers the faults (determinism)
// mode of the campaign under the same contract.
func TestParallelMatchesSerialDeterminism(t *testing.T) {
	plan, err := fault.Parse("42:kill=60,killenv=fuzz,torn")
	if err != nil {
		t.Fatalf("parse plan: %v", err)
	}
	opt := Options{Seeds: 6, Steps: 25, BaseSeed: 900, Faults: plan}
	serialLog, serialDiv := runCampaign(t, opt, 1)
	log, div := runCampaign(t, opt, 4)
	if log != serialLog {
		t.Fatalf("determinism-mode log differs:\n--- serial ---\n%s--- parallel ---\n%s", serialLog, log)
	}
	if serialDiv != nil || div != nil {
		t.Fatalf("determinism campaign diverged: serial=%v parallel=%v", serialDiv, div)
	}
}
