package difftest

import (
	"strings"
	"testing"

	"xok/internal/fault"
)

// TestFuzzSmoke is the tier-1 entry: a fixed-seed differential
// campaign across every personality. Every seed must agree — the
// personalities are each other's oracles.
func TestFuzzSmoke(t *testing.T) {
	seeds := 30
	if testing.Short() {
		seeds = 8
	}
	div, err := Fuzz(Options{Seeds: seeds, Steps: 40, BaseSeed: 1})
	if err != nil {
		t.Fatalf("fuzz: %v", err)
	}
	if div != nil {
		prog, _ := Program(div.Token)
		t.Fatalf("divergence:\n%v\nprogram:\n%s", div, prog)
	}
}

// TestDeterminismSmoke runs each program twice per personality under a
// cloned (but quiet) fault plan and demands bit-identical results:
// outcomes, tree, audit, cycle count, trace digest.
func TestDeterminismSmoke(t *testing.T) {
	seeds := 6
	if testing.Short() {
		seeds = 2
	}
	// Kill the fuzz process at its 60th syscall and arm torn writes:
	// faults that perturb the program mid-flight without touching
	// boot-time I/O (a media-error rate would fail mkfs reads too, and
	// a boot that cannot mkfs panics the personality).
	plan, err := fault.Parse("42:kill=60,killenv=fuzz,torn")
	if err != nil {
		t.Fatalf("parse plan: %v", err)
	}
	div, errF := Fuzz(Options{Seeds: seeds, Steps: 30, BaseSeed: 900, Faults: plan})
	if errF != nil {
		t.Fatalf("fuzz: %v", errF)
	}
	if div != nil {
		t.Fatalf("nondeterminism: %v", div)
	}
}

// TestSnapshotDeterminism: with the snapshot fast path on, determinism
// mode pits a from-boot run against a run forked from the
// personality's post-boot snapshot and demands bit-identical results —
// outcomes, tree, audit, cycle count, trace digest. This is the
// harness-level replay-equivalence proof that a snapshot captures the
// tracer and the fault plan's consumed state (syscall kill counter,
// xorshift stream positions): a fork that rewound any of them would
// land the kill or a torn write at a different point and fail the
// exact compare. Parallel workers fork from the shared snapshots
// concurrently.
func TestSnapshotDeterminism(t *testing.T) {
	plan, err := fault.Parse("42:kill=60,killenv=fuzz,torn")
	if err != nil {
		t.Fatalf("parse plan: %v", err)
	}
	div, errF := Fuzz(Options{Seeds: 4, Steps: 30, BaseSeed: 900, Faults: plan, Snapshot: true, Parallel: 4})
	if errF != nil {
		t.Fatalf("fuzz: %v", errF)
	}
	if div != nil {
		t.Fatalf("forked run diverged from boot run: %v", div)
	}
}

// TestSnapshotFuzzCrossPersonality: the normal cross-personality
// campaign with forking on must stay clean — every seed's five
// machines are forks of the five shared post-boot snapshots.
func TestSnapshotFuzzCrossPersonality(t *testing.T) {
	div, err := Fuzz(Options{Seeds: 8, Steps: 40, BaseSeed: 1, Snapshot: true, Parallel: 4})
	if err != nil {
		t.Fatalf("fuzz: %v", err)
	}
	if div != nil {
		prog, _ := Program(div.Token)
		t.Fatalf("divergence:\n%v\nprogram:\n%s", div, prog)
	}
}

// TestMutationCaught is the harness's own mutation test (the
// acceptance criterion): fake a single-errno divergence on one
// personality via the outcome hook and require that the fuzzer (a)
// catches it, (b) shrinks it to a minimal reproducer of at most 8
// calls, and (c) produces a token that replays the exact same
// divergence bit-identically.
func TestMutationCaught(t *testing.T) {
	// Flip the first OK outcome at step >= 5 on Xok/ExOS to ENOENT —
	// the shape of a real errno bug in one personality's syscall layer.
	mutate := func(personality string, step int, out string) string {
		if personality == "Xok/ExOS" && step == 5 && out == "OK" {
			return "ENOENT"
		}
		return out
	}
	var hit *Divergence
	var err error
	// Scan a few seeds for one whose step 5 normally returns OK.
	for base := uint64(1); base <= 20 && hit == nil; base++ {
		opt := Options{Seeds: 1, Steps: 40, BaseSeed: base}
		opt.mutate = mutate
		hit, err = Fuzz(opt)
		if err != nil {
			t.Fatalf("fuzz: %v", err)
		}
	}
	if hit == nil {
		t.Fatal("injected errno mutation was never caught")
	}
	if len(hit.Keep) > 8 {
		t.Fatalf("shrunk reproducer has %d calls, want <= 8 (token %s)", len(hit.Keep), hit.Token)
	}
	if hit.Token == "" {
		t.Fatal("divergence carries no replay token")
	}
	if !strings.Contains(hit.Where, "ENOENT") {
		t.Fatalf("divergence does not surface the mutated errno: %q", hit.Where)
	}

	// Replay the token twice; the reported divergence must be
	// bit-identical both times, and identical to the original report.
	replayOpt := Options{}
	replayOpt.mutate = mutate
	r1, err := Replay(hit.Token, replayOpt)
	if err != nil {
		t.Fatalf("replay 1: %v", err)
	}
	r2, err := Replay(hit.Token, replayOpt)
	if err != nil {
		t.Fatalf("replay 2: %v", err)
	}
	if r1 == nil || r2 == nil {
		t.Fatalf("token did not reproduce: %v / %v", r1, r2)
	}
	if r1.Where != r2.Where || r1.A != r2.A || r1.B != r2.B {
		t.Fatalf("replay not bit-identical:\n  %v\n  %v", r1, r2)
	}
	if r1.Where != hit.Where {
		t.Fatalf("replay differs from original:\n  %q\n  %q", r1.Where, hit.Where)
	}

	// With the mutation removed (the "bug" fixed), the token must come
	// back clean.
	clean, err := Replay(hit.Token, Options{})
	if err != nil {
		t.Fatalf("replay after fix: %v", err)
	}
	if clean != nil {
		t.Fatalf("token still diverges without the mutation: %v", clean)
	}
}

func TestTokenRoundTrip(t *testing.T) {
	cases := []struct {
		seed  uint64
		steps int
		keep  []int
	}{
		{7, 40, []int{0, 1, 2, 3}},
		{7, 40, allSteps(40)},
		{123456, 50, []int{3, 4, 5, 9, 17}},
		{1, 10, []int{9}},
	}
	for _, c := range cases {
		tok := encodeToken(c.seed, c.steps, c.keep)
		seed, steps, keep, err := ParseToken(tok)
		if err != nil {
			t.Fatalf("%s: %v", tok, err)
		}
		if seed != c.seed || steps != c.steps || len(keep) != len(c.keep) {
			t.Fatalf("%s -> %d %d %v, want %d %d %v", tok, seed, steps, keep, c.seed, c.steps, c.keep)
		}
		for i := range keep {
			if keep[i] != c.keep[i] {
				t.Fatalf("%s: keep %v != %v", tok, keep, c.keep)
			}
		}
	}
	for _, bad := range []string{"", "7", "7:40", "x:40:all", "7:0:all", "7:40:5-60", "7:40:"} {
		if _, _, _, err := ParseToken(bad); err == nil {
			t.Errorf("ParseToken(%q) accepted", bad)
		}
	}
}

// TestShrinkMinimal checks ddmin on a synthetic predicate: the failure
// needs exactly the (sparse) culprit set, and shrink must find it.
func TestShrinkMinimal(t *testing.T) {
	culprits := map[int]bool{3: true, 17: true, 31: true}
	reproduces := func(keep []int) bool {
		have := 0
		for _, i := range keep {
			if culprits[i] {
				have++
			}
		}
		return have == len(culprits)
	}
	got := shrink(allSteps(40), reproduces)
	if len(got) != len(culprits) {
		t.Fatalf("shrink -> %v, want exactly the culprits", got)
	}
	for _, i := range got {
		if !culprits[i] {
			t.Fatalf("shrink kept non-culprit %d: %v", i, got)
		}
	}
}

// TestGenerateStable pins the generator's output for one seed: replay
// tokens are only meaningful if Generate(seed, n) never drifts. If
// this test breaks, the generator changed and old tokens are void —
// that must be a deliberate decision, not an accident.
func TestGenerateStable(t *testing.T) {
	a := Generate(7, 40)
	b := Generate(7, 40)
	if len(a) != 40 || len(b) != 40 {
		t.Fatalf("lengths %d, %d", len(a), len(b))
	}
	for i := range a {
		if a[i].String() != b[i].String() {
			t.Fatalf("step %d differs across calls: %s vs %s", i, a[i], b[i])
		}
	}
	// Digest the rendered program; update this constant only when
	// intentionally changing the generator (and say so in the commit).
	h := uint64(0)
	for _, s := range a {
		h = fnv1a(h, []byte(s.String()))
		h = fnv1a(h, []byte{'\n'})
	}
	const want = uint64(0xcd4de99677e4030d)
	if h != want {
		t.Fatalf("generator drift: program digest %#x, want %#x", h, want)
	}
	t.Logf("program digest %#x", h)
}
