// Package trace is the simulation's observability layer: typed span
// records over virtual time, fixed-bucket latency histograms, and
// exporters producing Chrome trace_event JSON and a plain-text
// histogram report.
//
// The paper's results are accounting tables — crossings, copies,
// seeks, sync writes — and sim.Stats captures those totals. What flat
// counters cannot show is *where the time went per request*: how long
// a disk request sat in the driver queue versus seeking versus
// transferring, what the tail of the HTTP request latency
// distribution looks like, when an environment was switched out.
// Tracer records exactly that, at virtual-time resolution, for any
// simulated machine.
//
// # Zero overhead when disabled
//
// Every method is safe (and a near-free no-op) on a nil *Tracer; the
// subsystems that emit spans hold a plain *Tracer pointer and the
// disabled path is a nil check. No allocation, no locking, no clock
// reads happen unless a tracer is attached.
//
// Like sim.Engine, a Tracer is not safe for concurrent use. The token
// handoff protocol guarantees only one goroutine per machine touches
// it at a time; attach distinct machines to one Tracer only when they
// run sequentially. Machines running concurrently (internal/parallel)
// each get their own Tracer, folded together afterwards with Merge.
package trace

import (
	"fmt"

	"xok/internal/sim"
)

// Arg is one key=value annotation on a span or instant event. Values
// are pre-rendered strings so recording never needs reflection.
type Arg struct {
	Key string
	Val string
}

// Phases of recorded events (a subset of the Chrome trace_event
// phases).
const (
	phaseComplete = 'X' // a span with begin and end
	phaseInstant  = 'i' // a point event
)

// Span is one recorded interval, in the coordinates of the machine
// (PID) and lane (TID) that emitted it.
type Span struct {
	PID   int64
	TID   int64
	Cat   string
	Name  string
	Begin sim.Time
	End   sim.Time
	Args  []Arg
}

// event is the internal record for both spans and instants.
type event struct {
	phase byte
	pid   int64
	tid   int64
	cat   string
	name  string
	begin sim.Time // instant events: the timestamp
	end   sim.Time
	args  []Arg
}

// MaxEvents bounds the event buffer; past it, new span/instant records
// are counted as dropped rather than stored (histograms and counters
// keep exact totals regardless). A Figure-2 run emits hundreds of
// thousands of syscall spans; the cap keeps a full-suite trace bounded
// in memory. A variable so tools (and tests) can resize it before
// recording starts.
var MaxEvents = 1 << 21

// Tracer collects events, histograms and counters for one or more
// sequentially-run machines.
type Tracer struct {
	events  []event
	dropped int64

	// histOnly tracers (NewHistOnly) drop span/instant events and keep
	// only histograms and counters — the cheap mode for quantile
	// collection at connection scale, where recording (and rendering
	// args for) millions of spans would dominate the run.
	histOnly bool

	procs     []string // index = pid
	laneNames map[laneKey]string

	hists     map[string]*Histogram
	histOrder []string
	// hcache short-circuits Observe's "<process>/<name>" key build —
	// the per-sample string concatenation is the hot path's allocation.
	hcache map[histKey]*Histogram

	counts     map[string]int64
	countOrder []string
}

type laneKey struct {
	pid int64
	tid int64
}

type histKey struct {
	pid  int64
	name string
}

// New returns an empty, enabled tracer. PID 0 is pre-registered as
// "sim" for subsystems used standalone (e.g. a bare disk in a test).
func New() *Tracer {
	return &Tracer{
		procs:     []string{"sim"},
		laneNames: make(map[laneKey]string),
		hists:     make(map[string]*Histogram),
		hcache:    make(map[histKey]*Histogram),
		counts:    make(map[string]int64),
	}
}

// NewHistOnly returns a tracer that collects histograms and counters
// but ignores span/instant events (EventsEnabled reports false, so
// emitters skip building args). Digest, Hist, Observe, Count and the
// histogram report all work as usual over what it does record.
func NewHistOnly() *Tracer {
	t := New()
	t.histOnly = true
	return t
}

// EventsEnabled reports whether span/instant records are kept — the
// guard to check before doing work (string rendering, lane setup) only
// a full event trace consumes.
func (t *Tracer) EventsEnabled() bool { return t != nil && !t.histOnly }

// Merge appends src's record into t, deterministically. src's
// processes (past the shared pid-0 "sim" entry) are re-registered
// after t's existing ones and event/lane pids remapped by the fixed
// offset; events append in recording order, respecting MaxEvents with
// dropped accounting; histograms and counters — keyed by process
// *name*, which survives the remap — merge by key in src's
// registration order. Merging per-leg tracers in leg order therefore
// reproduces the state a single tracer would hold had the legs run
// sequentially against it, which is what makes parallel experiment
// runs trace-identical to serial ones. A nil src is a no-op.
func (t *Tracer) Merge(src *Tracer) {
	if t == nil || src == nil {
		return
	}
	off := int64(len(t.procs) - 1)
	remap := func(pid int64) int64 {
		if pid <= 0 {
			return pid
		}
		return pid + off
	}
	t.procs = append(t.procs, src.procs[1:]...)
	for k, name := range src.laneNames {
		t.laneNames[laneKey{remap(k.pid), k.tid}] = name
	}
	for _, ev := range src.events {
		ev.pid = remap(ev.pid)
		t.record(ev)
	}
	t.dropped += src.dropped
	for _, k := range src.histOrder {
		h, ok := t.hists[k]
		if !ok {
			h = newHistogram(k)
			t.hists[k] = h
			t.histOrder = append(t.histOrder, k)
		}
		h.merge(src.hists[k])
	}
	for _, k := range src.countOrder {
		if _, ok := t.counts[k]; !ok {
			t.countOrder = append(t.countOrder, k)
		}
		t.counts[k] += src.counts[k]
	}
}

// Enabled reports whether t records anything. It is the idiomatic
// guard before building args for a span.
func (t *Tracer) Enabled() bool { return t != nil }

// AddProcess registers a simulated machine and returns its pid for
// subsequent Span/Observe calls. Exported as a Chrome process so each
// machine gets its own swimlane group.
func (t *Tracer) AddProcess(name string) int64 {
	if t == nil {
		return 0
	}
	if name == "" {
		name = fmt.Sprintf("machine-%d", len(t.procs))
	}
	t.procs = append(t.procs, name)
	return int64(len(t.procs) - 1)
}

// NameLane labels a (pid, tid) lane — exported as a Chrome thread
// name. Renaming a lane overwrites the previous label.
func (t *Tracer) NameLane(pid, tid int64, name string) {
	if t == nil {
		return
	}
	t.laneNames[laneKey{pid, tid}] = name
}

// Span records a completed interval [begin, end] on a lane.
func (t *Tracer) Span(pid, tid int64, cat, name string, begin, end sim.Time, args ...Arg) {
	if t == nil {
		return
	}
	if end < begin {
		end = begin
	}
	t.record(event{phase: phaseComplete, pid: pid, tid: tid, cat: cat, name: name,
		begin: begin, end: end, args: args})
}

// Instant records a point event on a lane.
func (t *Tracer) Instant(pid, tid int64, cat, name string, at sim.Time, args ...Arg) {
	if t == nil {
		return
	}
	t.record(event{phase: phaseInstant, pid: pid, tid: tid, cat: cat, name: name,
		begin: at, end: at, args: args})
}

func (t *Tracer) record(ev event) {
	if t.histOnly {
		return
	}
	if len(t.events) >= MaxEvents {
		t.dropped++
		return
	}
	t.events = append(t.events, ev)
}

// Observe adds one latency sample to the named histogram, keyed per
// machine ("<process>/<name>"). Histograms are exact regardless of the
// event cap.
func (t *Tracer) Observe(pid int64, name string, d sim.Time) {
	if t == nil {
		return
	}
	ck := histKey{pid: pid, name: name}
	h, ok := t.hcache[ck]
	if !ok {
		key := t.procName(pid) + "/" + name
		h, ok = t.hists[key]
		if !ok {
			h = newHistogram(key)
			t.hists[key] = h
			t.histOrder = append(t.histOrder, key)
		}
		t.hcache[ck] = h
	}
	h.Observe(d)
}

// Count adds n to a named per-machine counter (the engine's per-event
// hook feeds "events" through this).
func (t *Tracer) Count(pid int64, name string, n int64) {
	if t == nil {
		return
	}
	key := t.procName(pid) + "/" + name
	if _, ok := t.counts[key]; !ok {
		t.countOrder = append(t.countOrder, key)
	}
	t.counts[key] += n
}

// Hist returns the named histogram for a machine, or nil if nothing
// was observed under that name.
func (t *Tracer) Hist(pid int64, name string) *Histogram {
	if t == nil {
		return nil
	}
	return t.hists[t.procName(pid)+"/"+name]
}

// Spans returns the recorded spans (phase-X events only), in recording
// order. Intended for tests and programmatic inspection.
func (t *Tracer) Spans() []Span {
	if t == nil {
		return nil
	}
	out := make([]Span, 0, len(t.events))
	for _, ev := range t.events {
		if ev.phase != phaseComplete {
			continue
		}
		out = append(out, Span{PID: ev.pid, TID: ev.tid, Cat: ev.cat, Name: ev.name,
			Begin: ev.begin, End: ev.end, Args: ev.args})
	}
	return out
}

// Digest folds every recorded event — phase, lane, category, name,
// timestamps, args — plus the histogram and counter totals into one
// FNV-1a hash. Two runs of the same deterministic simulation must
// produce identical digests; internal/difftest's determinism mode
// asserts exactly that. Nil-safe (returns the FNV offset basis).
func (t *Tracer) Digest() uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	mixByte := func(b byte) { h = (h ^ uint64(b)) * prime64 }
	mixInt := func(v int64) {
		for i := 0; i < 8; i++ {
			mixByte(byte(v >> (8 * i)))
		}
	}
	mixStr := func(s string) {
		mixInt(int64(len(s)))
		for i := 0; i < len(s); i++ {
			mixByte(s[i])
		}
	}
	if t == nil {
		return h
	}
	for _, ev := range t.events {
		mixByte(ev.phase)
		mixInt(ev.pid)
		mixInt(ev.tid)
		mixStr(ev.cat)
		mixStr(ev.name)
		mixInt(int64(ev.begin))
		mixInt(int64(ev.end))
		for _, a := range ev.args {
			mixStr(a.Key)
			mixStr(a.Val)
		}
	}
	mixInt(t.dropped)
	for _, k := range t.histOrder {
		hist := t.hists[k]
		mixStr(k)
		mixInt(hist.Count())
		mixInt(int64(hist.Sum()))
	}
	for _, k := range t.countOrder {
		mixStr(k)
		mixInt(t.counts[k])
	}
	return h
}

// Dropped reports how many events were discarded past MaxEvents.
func (t *Tracer) Dropped() int64 {
	if t == nil {
		return 0
	}
	return t.dropped
}

// Events reports how many events were recorded.
func (t *Tracer) Events() int {
	if t == nil {
		return 0
	}
	return len(t.events)
}

func (t *Tracer) procName(pid int64) string {
	if pid >= 0 && pid < int64(len(t.procs)) {
		return t.procs[pid]
	}
	return fmt.Sprintf("pid%d", pid)
}
