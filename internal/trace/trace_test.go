package trace

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"xok/internal/sim"
)

func TestNilTracerIsSafe(t *testing.T) {
	var tr *Tracer
	if tr.Enabled() {
		t.Fatal("nil tracer reports enabled")
	}
	// Every method must be a no-op, not a crash.
	pid := tr.AddProcess("x")
	tr.NameLane(pid, 1, "lane")
	tr.Span(pid, 1, "cat", "name", 0, 10)
	tr.Instant(pid, 1, "cat", "name", 5)
	tr.Observe(pid, "h", 10)
	tr.Count(pid, "c", 1)
	if tr.Hist(pid, "h") != nil || tr.Spans() != nil || tr.Events() != 0 {
		t.Fatal("nil tracer returned data")
	}
	var buf bytes.Buffer
	if err := tr.WriteHistReport(&buf); err != nil {
		t.Fatal(err)
	}
}

func TestSpanRecording(t *testing.T) {
	tr := New()
	pid := tr.AddProcess("m1")
	tr.Span(pid, 3, "disk", "service", 100, 250, Arg{"block", "7"})
	tr.Span(pid, 3, "disk", "service", 300, 280) // end < begin clamps
	spans := tr.Spans()
	if len(spans) != 2 {
		t.Fatalf("spans = %d, want 2", len(spans))
	}
	s := spans[0]
	if s.PID != pid || s.TID != 3 || s.Cat != "disk" || s.Name != "service" ||
		s.Begin != 100 || s.End != 250 || len(s.Args) != 1 || s.Args[0].Val != "7" {
		t.Fatalf("bad span: %+v", s)
	}
	if spans[1].End != spans[1].Begin {
		t.Fatalf("end<begin not clamped: %+v", spans[1])
	}
}

func TestHistogramQuantiles(t *testing.T) {
	h := newHistogram("t")
	// 1..1000 cycles uniformly: p50 ~ 500, p99 ~ 990.
	for i := 1; i <= 1000; i++ {
		h.Observe(sim.Time(i))
	}
	if h.Count() != 1000 || h.Min() != 1 || h.Max() != 1000 {
		t.Fatalf("count/min/max = %d/%d/%d", h.Count(), h.Min(), h.Max())
	}
	if m := h.Mean(); m != 500 {
		t.Fatalf("mean = %d, want 500", m)
	}
	p50 := h.Quantile(0.50)
	if p50 < 300 || p50 > 700 {
		t.Fatalf("p50 = %d, want ~500 (log-bucket tolerance)", p50)
	}
	p99 := h.Quantile(0.99)
	if p99 < 900 || p99 > 1000 {
		t.Fatalf("p99 = %d, want ~990", p99)
	}
	if q := h.Quantile(0); q != 1 {
		t.Fatalf("q0 = %d, want min", q)
	}
	if q := h.Quantile(1); q != 1000 {
		t.Fatalf("q1 = %d, want max", q)
	}
}

func TestHistogramZerosAndSingleton(t *testing.T) {
	h := newHistogram("z")
	h.Observe(0)
	h.Observe(0)
	if h.Quantile(0.5) != 0 || h.Max() != 0 {
		t.Fatal("zero samples mishandled")
	}
	h2 := newHistogram("s")
	h2.Observe(12345)
	for _, q := range []float64{0.01, 0.5, 0.99} {
		if got := h2.Quantile(q); got != 12345 {
			t.Fatalf("singleton quantile(%v) = %d", q, got)
		}
	}
}

func TestObserveKeyedPerProcess(t *testing.T) {
	tr := New()
	a := tr.AddProcess("a")
	b := tr.AddProcess("b")
	tr.Observe(a, "lat", 10)
	tr.Observe(b, "lat", 20)
	if tr.Hist(a, "lat").Count() != 1 || tr.Hist(b, "lat").Count() != 1 {
		t.Fatal("histograms not keyed per process")
	}
	if tr.Hist(a, "lat") == tr.Hist(b, "lat") {
		t.Fatal("processes share a histogram")
	}
}

func TestChromeExportIsValidJSON(t *testing.T) {
	tr := New()
	pid := tr.AddProcess("xok")
	tr.NameLane(pid, 1, "disk spindle 0")
	tr.Span(pid, 1, "disk", "service", sim.FromMicros(10), sim.FromMicros(35),
		Arg{"block", "42"}, Arg{"seek", "8ms"})
	tr.Instant(pid, 1, "disk", "queue", sim.FromMicros(5))
	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, buf.String())
	}
	// 2 process_name + 1 thread_name + 2 events.
	if len(doc.TraceEvents) != 5 {
		t.Fatalf("events = %d, want 5", len(doc.TraceEvents))
	}
	var sawSpan bool
	for _, ev := range doc.TraceEvents {
		if ev["ph"] == "X" {
			sawSpan = true
			if ev["ts"].(float64) != 10 || ev["dur"].(float64) != 25 {
				t.Fatalf("span ts/dur wrong: %v", ev)
			}
			args := ev["args"].(map[string]any)
			if args["block"] != "42" {
				t.Fatalf("span args wrong: %v", ev)
			}
		}
	}
	if !sawSpan {
		t.Fatal("no X-phase span in export")
	}
}

func TestHistReport(t *testing.T) {
	tr := New()
	pid := tr.AddProcess("xok")
	for i := 1; i <= 100; i++ {
		tr.Observe(pid, "disk.service", sim.FromMicros(float64(i*100)))
	}
	tr.Count(pid, "events", 321)
	var buf bytes.Buffer
	if err := tr.WriteHistReport(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"xok/disk.service", "p50", "p99", "xok/events", "321"} {
		if !strings.Contains(out, want) {
			t.Fatalf("report missing %q:\n%s", want, out)
		}
	}
}

func TestEventCapDrops(t *testing.T) {
	old := MaxEvents
	MaxEvents = 100
	defer func() { MaxEvents = old }()
	tr := New()
	for i := 0; i < MaxEvents+10; i++ {
		tr.Instant(0, 0, "c", "n", sim.Time(i))
	}
	if tr.Events() != 100 {
		t.Fatalf("events = %d, want cap 100", tr.Events())
	}
	if tr.Dropped() != 10 {
		t.Fatalf("dropped = %d, want 10", tr.Dropped())
	}
}

// leg simulates one machine's worth of activity on a tracer: register
// a process named name, emit a span, a histogram sample and a counter
// bump under it.
func mergeLeg(tr *Tracer, name string, d sim.Time) {
	pid := tr.AddProcess(name)
	tr.NameLane(pid, 1, name+"-lane")
	tr.Span(pid, 1, "cat", "work", 0, d)
	tr.Observe(pid, "latency", d)
	tr.Count(pid, "events", 1)
}

// TestMergeMatchesSerial is the contract parallel experiment runs rely
// on: per-leg tracers merged in leg order must be digest-identical to
// one tracer that saw the legs sequentially.
func TestMergeMatchesSerial(t *testing.T) {
	serial := New()
	mergeLeg(serial, "A", 10)
	mergeLeg(serial, "B", 20)
	mergeLeg(serial, "C", 30)

	merged := New()
	for _, leg := range []struct {
		name string
		d    sim.Time
	}{{"A", 10}, {"B", 20}, {"C", 30}} {
		per := New()
		mergeLeg(per, leg.name, leg.d)
		merged.Merge(per)
	}

	if got, want := merged.Digest(), serial.Digest(); got != want {
		t.Fatalf("merged digest %#x != serial digest %#x", got, want)
	}
	if merged.Events() != serial.Events() {
		t.Fatalf("events %d != %d", merged.Events(), serial.Events())
	}
	// Histogram keys are process-name based and must line up too.
	for _, name := range []string{"A", "B", "C"} {
		hs := serial.hists[name+"/latency"]
		hm := merged.hists[name+"/latency"]
		if hs == nil || hm == nil || hs.Count() != hm.Count() ||
			hs.Min() != hm.Min() || hs.Max() != hm.Max() || hs.Sum() != hm.Sum() {
			t.Fatalf("histogram %s/latency diverged: serial=%+v merged=%+v", name, hs, hm)
		}
	}
}

// TestMergeSameProcessName checks samples under the same process name
// fold into one histogram/counter rather than clobbering.
func TestMergeSameProcessName(t *testing.T) {
	dst := New()
	mergeLeg(dst, "m", 10)
	src := New()
	mergeLeg(src, "m", 30)
	dst.Merge(src)

	h := dst.hists["m/latency"]
	if h == nil || h.Count() != 2 || h.Min() != 10 || h.Max() != 30 || h.Sum() != 40 {
		t.Fatalf("merged histogram = %+v, want n=2 min=10 max=30 sum=40", h)
	}
	if dst.counts["m/events"] != 2 {
		t.Fatalf("merged counter = %d, want 2", dst.counts["m/events"])
	}
	// Both processes keep distinct pids (swimlanes) even with one name.
	if len(dst.procs) != 3 {
		t.Fatalf("procs = %v, want [sim m m]", dst.procs)
	}
}

// TestMergeRespectsCap checks MaxEvents still bounds the merged buffer
// with dropped accounting.
func TestMergeRespectsCap(t *testing.T) {
	old := MaxEvents
	MaxEvents = 10
	defer func() { MaxEvents = old }()
	dst := New()
	for i := 0; i < 8; i++ {
		dst.Instant(0, 0, "c", "n", sim.Time(i))
	}
	src := New()
	for i := 0; i < 5; i++ {
		src.Instant(0, 0, "c", "n", sim.Time(i))
	}
	dst.Merge(src)
	if dst.Events() != 10 {
		t.Fatalf("events = %d, want cap 10", dst.Events())
	}
	if dst.Dropped() != 3 {
		t.Fatalf("dropped = %d, want 3", dst.Dropped())
	}

	// Merging a nil source is a no-op.
	dst.Merge(nil)
	if dst.Events() != 10 || dst.Dropped() != 3 {
		t.Fatal("nil merge changed state")
	}
}
