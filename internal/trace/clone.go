package trace

// Clone returns an independent copy of the tracer's full state —
// events, drop count, process and lane registries, histograms and
// counters. Machine snapshots freeze a clone (the snapshotted machine
// keeps recording into the original) and every fork clones again, so
// a forked machine's digest evolves exactly as a from-boot machine's
// would. Event arg slices are shared: they are never mutated after
// recording. Nil-safe like every Tracer method.
func (t *Tracer) Clone() *Tracer {
	if t == nil {
		return nil
	}
	cp := &Tracer{
		events:    append([]event(nil), t.events...),
		dropped:   t.dropped,
		histOnly:  t.histOnly,
		procs:     append([]string(nil), t.procs...),
		laneNames: make(map[laneKey]string, len(t.laneNames)),
		hists:     make(map[string]*Histogram, len(t.hists)),
		histOrder: append([]string(nil), t.histOrder...),
		// hcache must point at the clone's own histograms; it refills
		// lazily on the clone's first observes.
		hcache:     make(map[histKey]*Histogram),
		counts:     make(map[string]int64, len(t.counts)),
		countOrder: append([]string(nil), t.countOrder...),
	}
	for k, v := range t.laneNames {
		cp.laneNames[k] = v
	}
	for k, h := range t.hists {
		hc := *h
		cp.hists[k] = &hc
	}
	for k, v := range t.counts {
		cp.counts[k] = v
	}
	return cp
}
