package trace

import (
	"fmt"
	"io"
	"math/bits"
	"sort"

	"xok/internal/sim"
)

// nBuckets covers every representable sim.Time: bucket i holds
// durations d with bits.Len64(d) == i, i.e. d in [2^(i-1), 2^i).
// Bucket 0 holds exact zeros.
const nBuckets = 65

// Histogram is a fixed-bucket latency histogram over virtual-time
// durations. Buckets are powers of two in cycles (a ~2x resolution
// log scale from 5 ns to the full clock range); quantiles interpolate
// linearly inside a bucket and are clamped to the exact observed
// min/max, so p50/p90/p99 summaries are tight even with coarse
// buckets.
type Histogram struct {
	name     string
	counts   [nBuckets]int64
	n        int64
	sum      sim.Time
	min, max sim.Time
}

func newHistogram(name string) *Histogram { return &Histogram{name: name} }

// Name returns the histogram's registry key ("<process>/<metric>").
func (h *Histogram) Name() string { return h.name }

// Observe adds one duration sample.
func (h *Histogram) Observe(d sim.Time) {
	if h.n == 0 || d < h.min {
		h.min = d
	}
	if d > h.max {
		h.max = d
	}
	h.n++
	h.sum += d
	h.counts[bits.Len64(uint64(d))]++
}

// merge folds src's samples into h (same bucket layout, exact n/sum;
// min/max stay exact too, which keeps quantile clamping tight).
func (h *Histogram) merge(src *Histogram) {
	if src == nil || src.n == 0 {
		return
	}
	if h.n == 0 || src.min < h.min {
		h.min = src.min
	}
	if src.max > h.max {
		h.max = src.max
	}
	h.n += src.n
	h.sum += src.sum
	for i, c := range src.counts {
		h.counts[i] += c
	}
}

// Count reports the number of samples.
func (h *Histogram) Count() int64 { return h.n }

// Sum reports the total of all samples.
func (h *Histogram) Sum() sim.Time { return h.sum }

// Min reports the smallest sample (zero if empty).
func (h *Histogram) Min() sim.Time {
	if h.n == 0 {
		return 0
	}
	return h.min
}

// Max reports the largest sample.
func (h *Histogram) Max() sim.Time { return h.max }

// Mean reports the average sample.
func (h *Histogram) Mean() sim.Time {
	if h.n == 0 {
		return 0
	}
	return h.sum / sim.Time(h.n)
}

// Quantile estimates the q-th quantile (0 <= q <= 1) by linear
// interpolation within the containing bucket.
func (h *Histogram) Quantile(q float64) sim.Time {
	if h.n == 0 {
		return 0
	}
	if q <= 0 {
		return h.min
	}
	if q >= 1 {
		return h.max
	}
	rank := q * float64(h.n)
	var cum float64
	for i, c := range h.counts {
		if c == 0 {
			continue
		}
		next := cum + float64(c)
		if next >= rank {
			lo, hi := bucketBounds(i)
			frac := (rank - cum) / float64(c)
			est := sim.Time(float64(lo) + frac*float64(hi-lo))
			if est < h.min {
				est = h.min
			}
			if est > h.max {
				est = h.max
			}
			return est
		}
		cum = next
	}
	return h.max
}

// bucketBounds returns bucket i's [lo, hi) duration range.
func bucketBounds(i int) (lo, hi sim.Time) {
	if i == 0 {
		return 0, 0
	}
	return sim.Time(1) << (i - 1), sim.Time(1) << i
}

// WriteHistReport renders every histogram (p50/p90/p99 summaries) and
// counter as aligned plain text, sorted by name.
func (t *Tracer) WriteHistReport(w io.Writer) error {
	if t == nil {
		_, err := fmt.Fprintln(w, "tracing disabled")
		return err
	}
	keys := append([]string(nil), t.histOrder...)
	sort.Strings(keys)
	if len(keys) > 0 {
		if _, err := fmt.Fprintf(w, "%-36s %10s %10s %10s %10s %10s %10s\n",
			"histogram", "count", "mean", "p50", "p90", "p99", "max"); err != nil {
			return err
		}
		for _, k := range keys {
			h := t.hists[k]
			if _, err := fmt.Fprintf(w, "%-36s %10d %10v %10v %10v %10v %10v\n",
				k, h.Count(), h.Mean(), h.Quantile(0.50), h.Quantile(0.90),
				h.Quantile(0.99), h.Max()); err != nil {
				return err
			}
		}
	}
	ckeys := append([]string(nil), t.countOrder...)
	sort.Strings(ckeys)
	for _, k := range ckeys {
		if _, err := fmt.Fprintf(w, "%-36s %10d\n", k, t.counts[k]); err != nil {
			return err
		}
	}
	if t.dropped > 0 {
		if _, err := fmt.Fprintf(w, "%-36s %10d (past %d-event buffer)\n",
			"dropped-events", t.dropped, MaxEvents); err != nil {
			return err
		}
	}
	return nil
}
