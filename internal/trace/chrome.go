package trace

import (
	"bufio"
	"encoding/json"
	"io"
)

// chromeEvent is one entry of the Chrome trace_event format
// (chrome://tracing and https://ui.perfetto.dev both load it).
// Timestamps and durations are microseconds of *virtual* time.
type chromeEvent struct {
	Name  string            `json:"name"`
	Cat   string            `json:"cat,omitempty"`
	Phase string            `json:"ph"`
	TS    float64           `json:"ts"`
	Dur   *float64          `json:"dur,omitempty"`
	PID   int64             `json:"pid"`
	TID   int64             `json:"tid"`
	Scope string            `json:"s,omitempty"`
	Args  map[string]string `json:"args,omitempty"`
}

// WriteChromeTrace exports every recorded event as Chrome trace_event
// JSON: {"traceEvents": [...]}. Process and lane names are emitted as
// metadata events so viewers show "xok", "disk spindle 0", "env 3
// (cc1)" instead of bare numbers.
func (t *Tracer) WriteChromeTrace(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString("{\"traceEvents\":[\n"); err != nil {
		return err
	}
	first := true
	emit := func(ev chromeEvent) error { // one record per line, comma-separated
		if !first {
			if _, err := bw.WriteString(",\n"); err != nil {
				return err
			}
		}
		first = false
		b, err := json.Marshal(ev)
		if err != nil {
			return err
		}
		_, err = bw.Write(b)
		return err
	}

	if t != nil {
		for pid, name := range t.procs {
			if err := emit(chromeEvent{Name: "process_name", Phase: "M", PID: int64(pid),
				Args: map[string]string{"name": name}}); err != nil {
				return err
			}
		}
		for key, name := range t.laneNames {
			if err := emit(chromeEvent{Name: "thread_name", Phase: "M", PID: key.pid,
				TID: key.tid, Args: map[string]string{"name": name}}); err != nil {
				return err
			}
		}
		for i := range t.events {
			ev := &t.events[i]
			ce := chromeEvent{
				Name: ev.name, Cat: ev.cat, PID: ev.pid, TID: ev.tid,
				TS: ev.begin.Micros(),
			}
			switch ev.phase {
			case phaseComplete:
				ce.Phase = "X"
				dur := (ev.end - ev.begin).Micros()
				ce.Dur = &dur
			case phaseInstant:
				ce.Phase = "i"
				ce.Scope = "t"
			}
			if len(ev.args) > 0 {
				ce.Args = make(map[string]string, len(ev.args))
				for _, a := range ev.args {
					ce.Args[a.Key] = a.Val
				}
			}
			if err := emit(ce); err != nil {
				return err
			}
		}
	}
	if _, err := bw.WriteString("\n]}\n"); err != nil {
		return err
	}
	return bw.Flush()
}
