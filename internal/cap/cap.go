// Package cap implements Xok's hierarchically-named capabilities
// (Section 5.1; Mazières & Kaashoek, HotOS 1997). Despite the name,
// these resemble a generalized form of UNIX user and group IDs more
// than classical object capabilities: a capability is a path in a name
// hierarchy, a capability dominates everything beneath it, and every
// system call takes explicit credentials (a list of capabilities held
// by the caller).
//
// The on-the-fly creation of sub-capabilities (Extend) is what lets a
// libOS hand a child process rights to exactly one software region or
// page: a buggy child that asks for write access to anything else will
// present the wrong capability and be denied (Section 3.3).
package cap

import (
	"fmt"
	"strings"
)

// Capability is a hierarchical name plus an access mode. The zero value
// is the all-powerful root write capability (empty name dominates every
// name).
type Capability struct {
	name  []uint16
	read  bool // read-only if set and write clear
	write bool
}

// Root returns the root capability. write selects write (full) or
// read-only power.
func Root(write bool) Capability {
	return Capability{read: true, write: write}
}

// New builds a capability from explicit name components.
func New(write bool, components ...uint16) Capability {
	c := Root(write)
	c.name = append([]uint16(nil), components...)
	return c
}

// Extend derives a sub-capability one level below c, preserving c's
// access mode. This is the paper's "on-the-fly creation of
// hierarchically-named capabilities".
func (c Capability) Extend(component uint16) Capability {
	name := make([]uint16, len(c.name)+1)
	copy(name, c.name)
	name[len(c.name)] = component
	return Capability{name: name, read: c.read, write: c.write}
}

// ReadOnly returns a copy of c with write power stripped.
func (c Capability) ReadOnly() Capability {
	return Capability{name: c.name, read: true, write: false}
}

// CanWrite reports whether c confers write access.
func (c Capability) CanWrite() bool { return c.write }

// Depth returns the number of name components.
func (c Capability) Depth() int { return len(c.name) }

// Dominates reports whether c's name is a (non-strict) prefix of o's
// name — i.e. whether holding c implies holding o's name authority.
// Access-mode is checked separately by Grants.
func (c Capability) Dominates(o Capability) bool {
	if len(c.name) > len(o.name) {
		return false
	}
	for i, v := range c.name {
		if o.name[i] != v {
			return false
		}
	}
	return true
}

// Equal reports whether two capabilities name the same node with the
// same mode.
func (c Capability) Equal(o Capability) bool {
	if len(c.name) != len(o.name) || c.write != o.write || c.read != o.read {
		return false
	}
	for i, v := range c.name {
		if o.name[i] != v {
			return false
		}
	}
	return true
}

// String renders the capability like "cap(1.503:rw)".
func (c Capability) String() string {
	parts := make([]string, len(c.name))
	for i, v := range c.name {
		parts[i] = fmt.Sprint(v)
	}
	mode := "r"
	if c.write {
		mode = "rw"
	}
	name := strings.Join(parts, ".")
	if name == "" {
		name = "*"
	}
	return fmt.Sprintf("cap(%s:%s)", name, mode)
}

// Credentials is the explicit set of capabilities presented on a system
// call. "All Xok calls require explicit credentials" (Section 5.1).
type Credentials []Capability

// Grants reports whether the credentials include a capability that
// dominates guard and carries write power when write access is asked.
func (cr Credentials) Grants(guard Capability, write bool) bool {
	for _, c := range cr {
		if write && !c.write {
			continue
		}
		if c.Dominates(guard) {
			return true
		}
	}
	return false
}

// With returns a new credential set with c appended.
func (cr Credentials) With(c Capability) Credentials {
	out := make(Credentials, len(cr)+1)
	copy(out, cr)
	out[len(cr)] = c
	return out
}

// UNIX identity mapping used by C-FFS (Section 4.5): uids live under
// branch 1 of the hierarchy, gids under branch 2. The superuser holds
// the root capability and therefore dominates both branches.
const (
	branchUID uint16 = 1
	branchGID uint16 = 2
)

// UID returns the capability standing for UNIX user id u.
func UID(u uint16, write bool) Capability {
	return New(write, branchUID, u)
}

// GID returns the capability standing for UNIX group id g.
func GID(g uint16, write bool) Capability {
	return New(write, branchGID, g)
}

// CredWord extracts the UNIX identity encoded in a credential set for
// consumption by acl-uf environment words: i=0 returns the uid, i=1 the
// primary gid. Root credentials read as 0; credentials carrying no such
// identity read as -1.
func CredWord(cr Credentials, i int) int64 {
	branch := branchUID
	if i == 1 {
		branch = branchGID
	}
	for _, c := range cr {
		if len(c.name) == 0 && c.write {
			return 0 // superuser
		}
		if len(c.name) >= 2 && c.name[0] == branch {
			return int64(c.name[1])
		}
	}
	return -1
}

// UnixCreds builds the credential set a UNIX-like process running as
// (uid, gids...) would present: a write uid capability plus write gid
// capabilities. uid 0 gets the root capability.
func UnixCreds(uid uint16, gids ...uint16) Credentials {
	if uid == 0 {
		return Credentials{Root(true)}
	}
	cr := Credentials{UID(uid, true)}
	for _, g := range gids {
		cr = append(cr, GID(g, true))
	}
	return cr
}
