package cap

import (
	"testing"
	"testing/quick"
)

func TestRootDominatesEverything(t *testing.T) {
	root := Root(true)
	leaf := New(true, 1, 2, 3, 4)
	if !root.Dominates(leaf) {
		t.Fatal("root must dominate every capability")
	}
	if leaf.Dominates(root) {
		t.Fatal("leaf must not dominate root")
	}
	if !root.Dominates(root) {
		t.Fatal("dominance must be reflexive")
	}
}

func TestExtendCreatesChild(t *testing.T) {
	parent := New(true, 7)
	child := parent.Extend(9)
	if !parent.Dominates(child) {
		t.Fatal("parent must dominate extended child")
	}
	if child.Dominates(parent) {
		t.Fatal("child must not dominate parent")
	}
	if child.Depth() != 2 {
		t.Fatalf("child depth = %d, want 2", child.Depth())
	}
	// Extending must not alias the parent's backing array.
	c1 := parent.Extend(1)
	c2 := parent.Extend(2)
	if c1.Dominates(c2) || c2.Dominates(c1) {
		t.Fatal("siblings must not dominate each other")
	}
}

func TestSiblingIsolation(t *testing.T) {
	a := New(true, 1, 5)
	b := New(true, 1, 6)
	if a.Dominates(b) || b.Dominates(a) {
		t.Fatal("siblings must be incomparable")
	}
	common := New(true, 1)
	if !common.Dominates(a) || !common.Dominates(b) {
		t.Fatal("common ancestor must dominate both")
	}
}

func TestReadOnlyStripsWrite(t *testing.T) {
	c := New(true, 3)
	ro := c.ReadOnly()
	if ro.CanWrite() {
		t.Fatal("ReadOnly kept write power")
	}
	if !ro.Dominates(c.Extend(1)) {
		t.Fatal("ReadOnly must keep name authority")
	}
}

func TestCredentialsGrants(t *testing.T) {
	guard := New(true, 1, 503) // uid 503's guard
	cr := Credentials{UID(503, true)}
	if !cr.Grants(guard, true) {
		t.Fatal("matching uid capability denied write")
	}
	if !cr.Grants(guard, false) {
		t.Fatal("matching uid capability denied read")
	}
	other := Credentials{UID(504, true)}
	if other.Grants(guard, false) {
		t.Fatal("wrong uid capability granted access")
	}
	roCr := Credentials{UID(503, false)}
	if roCr.Grants(guard, true) {
		t.Fatal("read-only capability granted write")
	}
	if !roCr.Grants(guard, false) {
		t.Fatal("read-only capability denied read")
	}
}

func TestUnixCreds(t *testing.T) {
	cr := UnixCreds(503, 100, 200)
	if len(cr) != 3 {
		t.Fatalf("creds = %d entries, want 3", len(cr))
	}
	if !cr.Grants(UID(503, true), true) {
		t.Fatal("uid write denied")
	}
	if !cr.Grants(GID(200, true), true) {
		t.Fatal("gid write denied")
	}
	if cr.Grants(UID(9, true), false) {
		t.Fatal("foreign uid granted")
	}
	root := UnixCreds(0)
	if !root.Grants(UID(503, true), true) || !root.Grants(GID(7, true), true) {
		t.Fatal("uid 0 must dominate all uids and gids")
	}
}

func TestUIDvsGIDBranches(t *testing.T) {
	if UID(5, true).Dominates(GID(5, true)) {
		t.Fatal("uid branch must not dominate gid branch")
	}
}

func TestWith(t *testing.T) {
	base := Credentials{UID(1, true)}
	ext := base.With(GID(2, true))
	if len(base) != 1 || len(ext) != 2 {
		t.Fatal("With must not mutate the receiver")
	}
	if !ext.Grants(GID(2, true), true) {
		t.Fatal("appended capability missing")
	}
}

func TestEqualAndString(t *testing.T) {
	a := New(true, 1, 2)
	b := New(true, 1, 2)
	if !a.Equal(b) {
		t.Fatal("identical capabilities not Equal")
	}
	if a.Equal(a.ReadOnly()) {
		t.Fatal("mode must participate in Equal")
	}
	if a.Equal(New(true, 1, 3)) {
		t.Fatal("different names Equal")
	}
	if got := a.String(); got != "cap(1.2:rw)" {
		t.Fatalf("String = %q", got)
	}
	if got := Root(false).String(); got != "cap(*:r)" {
		t.Fatalf("root String = %q", got)
	}
}

func TestDominanceTransitivityProperty(t *testing.T) {
	// For random chains a <= b <= c built by extension, dominance must
	// be transitive and antisymmetric.
	f := func(x, y, z uint16) bool {
		a := New(true, x)
		b := a.Extend(y)
		c := b.Extend(z)
		return a.Dominates(b) && b.Dominates(c) && a.Dominates(c) &&
			!c.Dominates(a)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
