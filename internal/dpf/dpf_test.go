package dpf

import (
	"errors"
	"testing"
)

// makeUDPPacket builds a tiny pseudo-header: [dstPort(2) srcPort(2)
// proto(1) payload...]. The tests only need deterministic bytes, not a
// real IP stack.
func pkt(dst, src uint16, proto byte, payload ...byte) []byte {
	p := []byte{byte(dst >> 8), byte(dst), byte(src >> 8), byte(src), proto}
	return append(p, payload...)
}

func TestBasicDispatch(t *testing.T) {
	e := NewEngine()
	f := &Filter{Cmps: []Cmp{Eq16(0, 80)}} // dst port 80
	if _, err := e.Insert(f, "httpd"); err != nil {
		t.Fatal(err)
	}
	owner, ok := e.Dispatch(pkt(80, 1234, 6))
	if !ok || owner != "httpd" {
		t.Fatalf("dispatch = %v, %v", owner, ok)
	}
	if _, ok := e.Dispatch(pkt(81, 1234, 6)); ok {
		t.Fatal("packet for port 81 claimed by port-80 filter")
	}
}

func TestMostSpecificWins(t *testing.T) {
	// A server's listen filter (port only) vs an established
	// connection's filter (port + peer): the connection filter must
	// win for its 4-tuple.
	e := NewEngine()
	listen := &Filter{Cmps: []Cmp{Eq16(0, 80)}}
	conn := &Filter{Cmps: []Cmp{Eq16(0, 80), Eq16(2, 5555)}}
	if _, err := e.Insert(listen, "listen"); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Insert(conn, "conn"); err != nil {
		t.Fatal(err)
	}
	owner, _ := e.Dispatch(pkt(80, 5555, 6))
	if owner != "conn" {
		t.Fatalf("established packet went to %v", owner)
	}
	owner, _ = e.Dispatch(pkt(80, 7777, 6))
	if owner != "listen" {
		t.Fatalf("new-connection packet went to %v", owner)
	}
}

func TestDuplicateRejected(t *testing.T) {
	// The anti-theft property: a second application cannot install a
	// filter identical to an existing one to steal its packets.
	e := NewEngine()
	f1 := &Filter{Cmps: []Cmp{Eq16(0, 80), Eq8(4, 6)}}
	if _, err := e.Insert(f1, "victim"); err != nil {
		t.Fatal(err)
	}
	// Same comparisons in a different order are still the same filter.
	f2 := &Filter{Cmps: []Cmp{Eq8(4, 6), Eq16(0, 80)}}
	if _, err := e.Insert(f2, "thief"); !errors.Is(err, ErrDuplicate) {
		t.Fatalf("duplicate insert err = %v, want ErrDuplicate", err)
	}
}

func TestRemove(t *testing.T) {
	e := NewEngine()
	id, err := e.Insert(&Filter{Cmps: []Cmp{Eq16(0, 80)}}, "a")
	if err != nil {
		t.Fatal(err)
	}
	if e.Len() != 1 {
		t.Fatalf("len = %d", e.Len())
	}
	if err := e.Remove(id); err != nil {
		t.Fatal(err)
	}
	if err := e.Remove(id); !errors.Is(err, ErrUnknownID) {
		t.Fatalf("double remove err = %v", err)
	}
	if _, ok := e.Dispatch(pkt(80, 1, 6)); ok {
		t.Fatal("removed filter still claims packets")
	}
	// After removal, the "duplicate" can be installed again.
	if _, err := e.Insert(&Filter{Cmps: []Cmp{Eq16(0, 80)}}, "b"); err != nil {
		t.Fatal(err)
	}
}

func TestInsertValidation(t *testing.T) {
	e := NewEngine()
	if _, err := e.Insert(nil, "x"); !errors.Is(err, ErrEmpty) {
		t.Fatalf("nil filter err = %v", err)
	}
	if _, err := e.Insert(&Filter{}, "x"); !errors.Is(err, ErrEmpty) {
		t.Fatalf("empty filter err = %v", err)
	}
	if _, err := e.Insert(&Filter{Cmps: []Cmp{{Offset: 0, Width: 3}}}, "x"); !errors.Is(err, ErrBadCmp) {
		t.Fatalf("bad width err = %v", err)
	}
	if _, err := e.Insert(&Filter{Cmps: []Cmp{{Offset: -1, Width: 1}}}, "x"); !errors.Is(err, ErrBadCmp) {
		t.Fatalf("bad offset err = %v", err)
	}
}

func TestShortPacketFailsComparison(t *testing.T) {
	e := NewEngine()
	f := &Filter{Cmps: []Cmp{Eq32(100, 1)}}
	if _, err := e.Insert(f, "x"); err != nil {
		t.Fatal(err)
	}
	if _, ok := e.Dispatch([]byte{1, 2, 3}); ok {
		t.Fatal("short packet matched out-of-range comparison")
	}
}

func TestMaskedComparison(t *testing.T) {
	e := NewEngine()
	// Match any packet whose first byte's high nibble is 4 (IPv4).
	f := &Filter{Cmps: []Cmp{{Offset: 0, Width: 1, Mask: 0xF0, Value: 0x40}}}
	if _, err := e.Insert(f, "ip"); err != nil {
		t.Fatal(err)
	}
	if _, ok := e.Dispatch([]byte{0x45, 0}); !ok {
		t.Fatal("masked match failed")
	}
	if _, ok := e.Dispatch([]byte{0x60, 0}); ok {
		t.Fatal("masked mismatch matched")
	}
}

func TestDeterministicTieBreak(t *testing.T) {
	e := NewEngine()
	// Two equally specific filters matching disjoint fields of the same
	// packet: oldest must win, consistently.
	a := &Filter{Cmps: []Cmp{Eq16(0, 80)}}
	b := &Filter{Cmps: []Cmp{Eq16(2, 9999)}}
	if _, err := e.Insert(a, "a"); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Insert(b, "b"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		owner, ok := e.Dispatch(pkt(80, 9999, 6))
		if !ok || owner != "a" {
			t.Fatalf("tie break not deterministic: %v", owner)
		}
	}
}
