// Package dpf implements dynamic packet filters (Engler & Kaashoek,
// SIGCOMM 1996), the mechanism Xok uses to multiplex the network:
// "packet filters are downloaded code fragments used by applications to
// claim incoming network packets. Because they are in the kernel, the
// kernel can inspect them and verify that they do not steal packets
// intended for other applications" (Section 9.3).
//
// A filter is a conjunction of (offset, width, value) comparisons over
// the packet bytes. The engine keeps all installed filters merged, and:
//
//   - rejects a filter identical to an installed one (it would steal
//     the same packets);
//   - dispatches each packet to the most specific matching filter
//     (longest comparison chain), which is how a TCP library claims
//     its specific 4-tuple while a server's listen filter claims the
//     rest of a port.
package dpf

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sort"
)

// Cmp is one comparison: width bytes at offset, big-endian (network
// order), must equal Value after masking.
type Cmp struct {
	Offset int
	Width  int // 1, 2, or 4
	Mask   uint32
	Value  uint32
}

// Filter is a conjunction of comparisons.
type Filter struct {
	Cmps []Cmp
}

// Eq8/Eq16/Eq32 are comparison constructors.
func Eq8(off int, v uint8) Cmp   { return Cmp{off, 1, 0xFF, uint32(v)} }
func Eq16(off int, v uint16) Cmp { return Cmp{off, 2, 0xFFFF, uint32(v)} }
func Eq32(off int, v uint32) Cmp { return Cmp{off, 4, 0xFFFFFFFF, v} }

// Match reports whether the filter accepts pkt. A comparison beyond
// the packet's end fails.
func (f *Filter) Match(pkt []byte) bool {
	for _, c := range f.Cmps {
		if !c.match(pkt) {
			return false
		}
	}
	return true
}

func (c Cmp) match(pkt []byte) bool {
	if c.Offset < 0 || c.Offset+c.Width > len(pkt) {
		return false
	}
	var v uint32
	switch c.Width {
	case 1:
		v = uint32(pkt[c.Offset])
	case 2:
		v = uint32(binary.BigEndian.Uint16(pkt[c.Offset:]))
	case 4:
		v = binary.BigEndian.Uint32(pkt[c.Offset:])
	default:
		return false
	}
	return v&c.Mask == c.Value&c.Mask
}

// normalize sorts comparisons for canonical equality checks.
func (f *Filter) normalized() []Cmp {
	out := append([]Cmp(nil), f.Cmps...)
	sort.Slice(out, func(i, j int) bool {
		if out[i].Offset != out[j].Offset {
			return out[i].Offset < out[j].Offset
		}
		return out[i].Width < out[j].Width
	})
	return out
}

func sameFilter(a, b *Filter) bool {
	na, nb := a.normalized(), b.normalized()
	if len(na) != len(nb) {
		return false
	}
	for i := range na {
		if na[i] != nb[i] {
			return false
		}
	}
	return true
}

// ID names an installed filter.
type ID int

// Engine holds the installed filters and dispatches packets.
type Engine struct {
	next    ID
	entries map[ID]*entry
}

type entry struct {
	f     *Filter
	owner any
}

// Errors.
var (
	ErrDuplicate = errors.New("dpf: identical filter already installed")
	ErrEmpty     = errors.New("dpf: filter with no comparisons")
	ErrBadCmp    = errors.New("dpf: malformed comparison")
	ErrUnknownID = errors.New("dpf: unknown filter id")
)

// NewEngine returns an empty filter engine.
func NewEngine() *Engine {
	return &Engine{entries: make(map[ID]*entry)}
}

// Insert verifies and installs a filter for owner (typically an
// environment or a protocol control block). The verification mirrors
// the kernel's anti-theft check: an exact duplicate of an installed
// filter is rejected, because the kernel could not decide which
// application the packet belongs to.
func (e *Engine) Insert(f *Filter, owner any) (ID, error) {
	if f == nil || len(f.Cmps) == 0 {
		return 0, ErrEmpty
	}
	for _, c := range f.Cmps {
		if c.Width != 1 && c.Width != 2 && c.Width != 4 {
			return 0, fmt.Errorf("%w: width %d", ErrBadCmp, c.Width)
		}
		if c.Offset < 0 {
			return 0, fmt.Errorf("%w: offset %d", ErrBadCmp, c.Offset)
		}
	}
	for _, ent := range e.entries {
		if sameFilter(ent.f, f) {
			return 0, ErrDuplicate
		}
	}
	id := e.next
	e.next++
	e.entries[id] = &entry{f: f, owner: owner}
	return id, nil
}

// Remove uninstalls a filter.
func (e *Engine) Remove(id ID) error {
	if _, ok := e.entries[id]; !ok {
		return ErrUnknownID
	}
	delete(e.entries, id)
	return nil
}

// Len reports how many filters are installed.
func (e *Engine) Len() int { return len(e.entries) }

// Dispatch finds the owner for pkt: the matching filter with the most
// comparisons (most specific) wins; ties break by lowest ID (oldest
// installed) for determinism. Returns (nil, false) if no filter claims
// the packet.
func (e *Engine) Dispatch(pkt []byte) (owner any, ok bool) {
	bestLen := -1
	var bestID ID
	var best *entry
	for id, ent := range e.entries {
		if !ent.f.Match(pkt) {
			continue
		}
		n := len(ent.f.Cmps)
		if n > bestLen || (n == bestLen && id < bestID) {
			bestLen, bestID, best = n, id, ent
		}
	}
	if best == nil {
		return nil, false
	}
	return best.owner, true
}
