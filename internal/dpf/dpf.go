// Package dpf implements dynamic packet filters (Engler & Kaashoek,
// SIGCOMM 1996), the mechanism Xok uses to multiplex the network:
// "packet filters are downloaded code fragments used by applications to
// claim incoming network packets. Because they are in the kernel, the
// kernel can inspect them and verify that they do not steal packets
// intended for other applications" (Section 9.3).
//
// A filter is a conjunction of (offset, width, value) comparisons over
// the packet bytes. The engine keeps all installed filters merged, and:
//
//   - rejects a filter identical to an installed one (it would steal
//     the same packets);
//   - dispatches each packet to the most specific matching filter
//     (longest comparison chain), which is how a TCP library claims
//     its specific 4-tuple while a server's listen filter claims the
//     rest of a port.
package dpf

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sort"
)

// Cmp is one comparison: width bytes at offset, big-endian (network
// order), must equal Value after masking.
type Cmp struct {
	Offset int
	Width  int // 1, 2, or 4
	Mask   uint32
	Value  uint32
}

// Filter is a conjunction of comparisons.
type Filter struct {
	Cmps []Cmp
}

// Eq8/Eq16/Eq32 are comparison constructors.
func Eq8(off int, v uint8) Cmp   { return Cmp{off, 1, 0xFF, uint32(v)} }
func Eq16(off int, v uint16) Cmp { return Cmp{off, 2, 0xFFFF, uint32(v)} }
func Eq32(off int, v uint32) Cmp { return Cmp{off, 4, 0xFFFFFFFF, v} }

// Match reports whether the filter accepts pkt. A comparison beyond
// the packet's end fails.
func (f *Filter) Match(pkt []byte) bool {
	for _, c := range f.Cmps {
		if !c.match(pkt) {
			return false
		}
	}
	return true
}

func (c Cmp) match(pkt []byte) bool {
	if c.Offset < 0 || c.Offset+c.Width > len(pkt) {
		return false
	}
	var v uint32
	switch c.Width {
	case 1:
		v = uint32(pkt[c.Offset])
	case 2:
		v = uint32(binary.BigEndian.Uint16(pkt[c.Offset:]))
	case 4:
		v = binary.BigEndian.Uint32(pkt[c.Offset:])
	default:
		return false
	}
	return v&c.Mask == c.Value&c.Mask
}

// normalize sorts comparisons for canonical equality checks.
func (f *Filter) normalized() []Cmp {
	out := append([]Cmp(nil), f.Cmps...)
	sort.Slice(out, func(i, j int) bool {
		if out[i].Offset != out[j].Offset {
			return out[i].Offset < out[j].Offset
		}
		return out[i].Width < out[j].Width
	})
	return out
}

// cmpsEqual reports whether two normalized comparison lists are
// identical (the anti-theft duplicate identity: raw values compare,
// not masked ones, exactly as the pre-index engine did).
func cmpsEqual(a, b []Cmp) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// ID names an installed filter.
type ID int

// Engine holds the installed filters and dispatches packets.
//
// Filters are grouped by shape — the normalized (offset, width, mask)
// comparison layout, ignoring values — and each shape whose compared
// bytes fit a 64-bit key indexes its filters in a hash map keyed by
// the masked comparison values. Dispatch then extracts one key per
// shape from the packet and looks it up, so its cost is O(shapes), not
// O(filters): a server holding 100k per-connection filters pays two
// map probes per packet instead of a 100k-entry scan. Real DPF gets
// the same effect by merging filters into a prefix trie with hash
// tables at disjunction points; the shape index is that idea flattened
// onto this engine's conjunction-only filter language.
type Engine struct {
	next    ID
	entries map[ID]*entry
	shapes  []*shape
}

type entry struct {
	id    ID
	f     *Filter
	owner any
	norm  []Cmp  // normalized comparisons (the duplicate-check identity)
	key   uint64 // folded masked values (keyed shapes)
	sh    *shape
}

// shape is one comparison layout and the filters installed under it.
type shape struct {
	cmps []Cmp // normalized, values zeroed; masks and layout only
	// keyed shapes (total compared width <= 8 bytes) index entries by
	// the folded masked comparison values; wider shapes fall back to a
	// linear list. Bucket/list order is ascending ID (append order —
	// IDs only grow), so the oldest filter is always first.
	keyed   bool
	buckets map[uint64][]*entry
	list    []*entry
}

// shapeKey folds cmps' masked values into the shape's lookup key.
// Each comparison occupies its own bit range (its full width, of which
// the mask keeps a subset), so the fold is collision-free.
func shapeKey(cmps []Cmp) uint64 {
	var key uint64
	for _, c := range cmps {
		key = key<<(8*c.Width) | uint64(c.Value&c.Mask)
	}
	return key
}

// packetKey extracts the same key from a packet, false when any
// comparison reaches beyond the packet (which fails the filter).
func (sh *shape) packetKey(pkt []byte) (uint64, bool) {
	var key uint64
	for _, c := range sh.cmps {
		if c.Offset+c.Width > len(pkt) {
			return 0, false
		}
		var v uint32
		switch c.Width {
		case 1:
			v = uint32(pkt[c.Offset])
		case 2:
			v = uint32(binary.BigEndian.Uint16(pkt[c.Offset:]))
		default:
			v = binary.BigEndian.Uint32(pkt[c.Offset:])
		}
		key = key<<(8*c.Width) | uint64(v&c.Mask)
	}
	return key, true
}

// sameShape reports whether the normalized comparisons norm lay out
// exactly as the shape's.
func (sh *shape) sameShape(norm []Cmp) bool {
	if len(norm) != len(sh.cmps) {
		return false
	}
	for i, c := range norm {
		s := sh.cmps[i]
		if c.Offset != s.Offset || c.Width != s.Width || c.Mask != s.Mask {
			return false
		}
	}
	return true
}

// shapeFor finds or creates the shape of norm.
func (e *Engine) shapeFor(norm []Cmp) *shape {
	for _, sh := range e.shapes {
		if sh.sameShape(norm) {
			return sh
		}
	}
	width := 0
	cmps := make([]Cmp, len(norm))
	for i, c := range norm {
		width += c.Width
		c.Value = 0
		cmps[i] = c
	}
	sh := &shape{cmps: cmps, keyed: width <= 8}
	if sh.keyed {
		sh.buckets = make(map[uint64][]*entry)
	}
	e.shapes = append(e.shapes, sh)
	return sh
}

// lookup returns the oldest installed filter matching pkt under this
// shape (nil if none).
func (sh *shape) lookup(pkt []byte) *entry {
	if sh.keyed {
		key, ok := sh.packetKey(pkt)
		if !ok {
			return nil
		}
		if b := sh.buckets[key]; len(b) > 0 {
			return b[0]
		}
		return nil
	}
	for _, ent := range sh.list {
		if ent.f.Match(pkt) {
			return ent
		}
	}
	return nil
}

// Errors.
var (
	ErrDuplicate = errors.New("dpf: identical filter already installed")
	ErrEmpty     = errors.New("dpf: filter with no comparisons")
	ErrBadCmp    = errors.New("dpf: malformed comparison")
	ErrUnknownID = errors.New("dpf: unknown filter id")
)

// NewEngine returns an empty filter engine.
func NewEngine() *Engine {
	return &Engine{entries: make(map[ID]*entry)}
}

// Insert verifies and installs a filter for owner (typically an
// environment or a protocol control block). The verification mirrors
// the kernel's anti-theft check: an exact duplicate of an installed
// filter is rejected, because the kernel could not decide which
// application the packet belongs to.
func (e *Engine) Insert(f *Filter, owner any) (ID, error) {
	if f == nil || len(f.Cmps) == 0 {
		return 0, ErrEmpty
	}
	for _, c := range f.Cmps {
		if c.Width != 1 && c.Width != 2 && c.Width != 4 {
			return 0, fmt.Errorf("%w: width %d", ErrBadCmp, c.Width)
		}
		if c.Offset < 0 {
			return 0, fmt.Errorf("%w: offset %d", ErrBadCmp, c.Offset)
		}
	}
	norm := f.normalized()
	sh := e.shapeFor(norm)
	ent := &entry{f: f, owner: owner, norm: norm, sh: sh}
	if sh.keyed {
		ent.key = shapeKey(norm)
		for _, other := range sh.buckets[ent.key] {
			if cmpsEqual(other.norm, norm) {
				return 0, ErrDuplicate
			}
		}
	} else {
		for _, other := range sh.list {
			if cmpsEqual(other.norm, norm) {
				return 0, ErrDuplicate
			}
		}
	}
	ent.id = e.next
	e.next++
	e.entries[ent.id] = ent
	if sh.keyed {
		sh.buckets[ent.key] = append(sh.buckets[ent.key], ent)
	} else {
		sh.list = append(sh.list, ent)
	}
	return ent.id, nil
}

// Remove uninstalls a filter.
func (e *Engine) Remove(id ID) error {
	ent, ok := e.entries[id]
	if !ok {
		return ErrUnknownID
	}
	delete(e.entries, id)
	sh := ent.sh
	if sh.keyed {
		b := removeEntry(sh.buckets[ent.key], ent)
		if len(b) == 0 {
			delete(sh.buckets, ent.key)
		} else {
			sh.buckets[ent.key] = b
		}
	} else {
		sh.list = removeEntry(sh.list, ent)
	}
	return nil
}

// removeEntry deletes ent from s preserving order.
func removeEntry(s []*entry, ent *entry) []*entry {
	for i, other := range s {
		if other == ent {
			return append(s[:i], s[i+1:]...)
		}
	}
	return s
}

// Len reports how many filters are installed.
func (e *Engine) Len() int { return len(e.entries) }

// Dispatch finds the owner for pkt: the matching filter with the most
// comparisons (most specific) wins; ties break by lowest ID (oldest
// installed) for determinism. Returns (nil, false) if no filter claims
// the packet. One lookup per installed shape, regardless of how many
// filters each shape holds.
func (e *Engine) Dispatch(pkt []byte) (owner any, ok bool) {
	var best *entry
	for _, sh := range e.shapes {
		ent := sh.lookup(pkt)
		if ent == nil {
			continue
		}
		if best == nil || len(ent.norm) > len(best.norm) ||
			(len(ent.norm) == len(best.norm) && ent.id < best.id) {
			best = ent
		}
	}
	if best == nil {
		return nil, false
	}
	return best.owner, true
}
