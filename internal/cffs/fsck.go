package cffs

import (
	"fmt"

	"xok/internal/disk"
	"xok/internal/kernel"
	"xok/internal/xn"
)

// Fsck walks the entire file system and checks its structural
// invariants — the libFS-level guarantees C-FFS layers above XN's
// block-ownership protection (Section 4.5): name uniqueness and
// well-formedness within every directory, no block shared by two
// files, all extents inside the volume, and sizes consistent with the
// allocated blocks. The crash-consistency tests run it after simulated
// crashes; it is also a reusable utility (examples and tools may call
// it on any mounted volume).
type FsckReport struct {
	Dirs   int
	Files  int
	Blocks int64
	Errors []string
}

func (r *FsckReport) errorf(format string, args ...any) {
	r.Errors = append(r.Errors, fmt.Sprintf(format, args...))
}

// Ok reports a clean volume.
func (r *FsckReport) Ok() bool { return len(r.Errors) == 0 }

// Fsck checks the whole tree rooted at fs.Root.
func (fs *FS) Fsck(e *kernel.Env) (*FsckReport, error) {
	r := &FsckReport{}
	owners := make(map[disk.BlockNo]string) // block -> path that owns it
	if err := fs.fsckDir(e, fs.Root, xn.NoParent, "/", r, owners); err != nil {
		return r, err
	}
	return r, nil
}

func (fs *FS) fsckDir(e *kernel.Env, head, parent disk.BlockNo, path string, r *FsckReport, owners map[disk.BlockNo]string) error {
	r.Dirs++
	blk, par := head, parent
	seen := map[string]bool{}
	for {
		if err := fs.ensureDir(e, blk, par); err != nil {
			return fmt.Errorf("fsck: reading %s block %d: %w", path, blk, err)
		}
		if prev, dup := owners[blk]; dup {
			r.errorf("%s: directory block %d already owned by %s", path, blk, prev)
		}
		owners[blk] = path
		r.Blocks++
		data := fs.dirData(blk)
		for i := 0; i < SlotsPerBlock; i++ {
			if data[SlotOff(i)] == 0 {
				continue
			}
			in := DecodeSlot(data, i)
			full := path + in.Name
			// Well-formed names (the "legal, aligned file names"
			// guarantee).
			if in.Name == "" || len(in.Name) > MaxNameLen {
				r.errorf("%s: slot %d has malformed name %q", path, i, in.Name)
			}
			for j := 0; j < len(in.Name); j++ {
				if in.Name[j] == '/' || in.Name[j] == 0 {
					r.errorf("%s: slot %d name contains illegal byte", path, i)
					break
				}
			}
			// Name uniqueness within the directory chain.
			if seen[in.Name] {
				r.errorf("%s: duplicate name %q", path, in.Name)
			}
			seen[in.Name] = true

			switch in.Kind {
			case KindDir:
				if in.Ext[0].Count != 1 {
					r.errorf("%s: directory with %d-block head extent", full, in.Ext[0].Count)
					continue
				}
				if err := fs.fsckDir(e, disk.BlockNo(in.Ext[0].Start), blk, full+"/", r, owners); err != nil {
					return err
				}
			case KindFile, KindLink:
				// A symlink is structurally a file whose data block
				// holds the target path; the same extent checks apply.
				r.Files++
				fs.fsckFile(e, Ref{Dir: blk, Slot: i}, in, full, r, owners)
			default:
				r.errorf("%s: slot %d has unknown kind %d", path, i, in.Kind)
			}
		}
		next := DirNext(data)
		if next == 0 {
			return nil
		}
		par = blk
		blk = disk.BlockNo(next)
	}
}

func (fs *FS) fsckFile(e *kernel.Env, ref Ref, in Inode, path string, r *FsckReport, owners map[disk.BlockNo]string) {
	exts, err := fs.FileExtents(e, ref)
	if err != nil {
		r.errorf("%s: extents unreadable: %v", path, err)
		return
	}
	var blocks int64
	vol := fs.X.D.NumBlocks()
	for _, ext := range exts {
		if int64(ext.Start) <= 0 || int64(ext.Start)+int64(ext.Count) > vol {
			r.errorf("%s: extent [%d,+%d) outside volume", path, ext.Start, ext.Count)
			continue
		}
		for j := uint32(0); j < ext.Count; j++ {
			b := disk.BlockNo(ext.Start + uint64(j))
			if prev, dup := owners[b]; dup {
				r.errorf("%s: block %d already owned by %s", path, b, prev)
			}
			owners[b] = path
			blocks++
			r.Blocks++
		}
	}
	if in.Ind != 0 {
		b := disk.BlockNo(in.Ind)
		if prev, dup := owners[b]; dup {
			r.errorf("%s: indirect block %d already owned by %s", path, b, prev)
		}
		owners[b] = path + "(ind)"
		r.Blocks++
	}
	// Size must fit in the allocated blocks.
	maxBytes := blocks * int64(udfBlockSize)
	if int64(in.Size) > maxBytes {
		r.errorf("%s: size %d exceeds %d allocated bytes", path, in.Size, maxBytes)
	}
}

const udfBlockSize = 4096
