// Package cffs implements C-FFS, the co-locating fast file system
// (Ganger & Kaashoek 1997; paper Section 4.5) as a library file system
// over XN. Its three structural properties drive the paper's
// unmodified-application speedups (Section 6.2):
//
//   - embedded inodes: inodes live inside directory blocks, so naming
//     a file and reaching its inode is one disk read, not two;
//   - co-location: a file's data is allocated contiguously, as close
//     to its directory block as possible, so directory-locality
//     becomes disk locality;
//   - asynchronous, ordered metadata writes: XN's tainted-block rules
//     replace FFS's synchronous metadata writes.
//
// All metadata interpretation happens through UDFs: XN never sees this
// package's layout except through the owns/acl/size programs installed
// at mkfs time. The format:
//
// Directory block (4096 B), template "cffs-dir":
//
//	off  0: magic  (4)
//	off  4: nSlots (4)   — informational; the format fixes 31
//	off  8: next   (8)   — continuation directory block, 0 = none
//	off 16: uid    (4)
//	off 20: gid    (4)
//	off 24: mode   (4)
//	off 28: pad    (4)
//	off 32: 31 slots of 128 B each
//
// Slot (128 B, relative offsets):
//
//	off   0: used(1) kind(1) nameLen(1) pad(1)
//	off   4: name[52]
//	off  56: uid(4) gid(4)
//	off  64: mode(4) size(4)
//	off  72: mtime(4) pad(4)
//	off  80: 3 extents of {start(8) count(4)} = 36
//	off 116: indirect(8)
//	off 124: pad(4)
//
// Indirect block, template "cffs-ind":
//
//	off 0: count(4) pad(4)
//	off 8: count entries of {start(8) count(4) pad(4)}
//
// Data block, template "cffs-data": opaque bytes (owns nothing; access
// control at the parent).
package cffs

import (
	"encoding/binary"
	"fmt"

	"xok/internal/udf"
)

// Format constants.
const (
	Magic = 0xCFF5

	DirHdrSize    = 32
	SlotSize      = 128
	SlotsPerBlock = 31

	SlotsOff = DirHdrSize

	MaxNameLen    = 52
	DirectExtents = 3
	IndEntrySize  = 16
	IndMaxEntries = 254
	IndEntriesOff = 8

	// Slot field offsets (relative to slot start).
	soUsed    = 0
	soKind    = 1
	soNameLen = 2
	soName    = 4
	soUID     = 56
	soGID     = 60
	soMode    = 64
	soSize    = 68
	soMTime   = 72
	soExt0    = 80
	soInd     = 116
	soGen     = 124

	extSize = 12

	// Header field offsets.
	hoMagic = 0
	hoSlots = 4
	hoNext  = 8
	hoUID   = 16
	hoGID   = 20
	hoMode  = 24

	// Entry kinds.
	KindFile = 1
	KindDir  = 2
	// KindLink is a symbolic link: structurally a one-block file whose
	// data is the target path, so allocation, ownership (the owns-udf's
	// file branch) and deallocation all reuse the file machinery.
	KindLink = 3
)

// Extent is a contiguous run of data blocks.
type Extent struct {
	Start uint64
	Count uint32
}

// Inode is the decoded form of a directory slot.
type Inode struct {
	Used  bool
	Kind  byte
	Name  string
	UID   uint32
	GID   uint32
	Mode  uint32
	Size  uint32
	MTime uint32
	Ext   [DirectExtents]Extent
	Ind   uint64
	// Gen is the slot's incarnation number, stamped at create time.
	// Descriptors carry it so I/O through a ref whose slot has been
	// recycled (unlink + create) fails with ErrStale instead of
	// reading or corrupting the new occupant.
	Gen uint32
}

// SlotOff returns the byte offset of slot i in a directory block.
func SlotOff(i int) int { return SlotsOff + i*SlotSize }

// DecodeSlot parses the slot at block offset off.
func DecodeSlot(blk []byte, i int) Inode {
	s := blk[SlotOff(i):]
	var in Inode
	in.Used = s[soUsed] != 0
	in.Kind = s[soKind]
	n := int(s[soNameLen])
	if n > MaxNameLen {
		n = MaxNameLen
	}
	in.Name = string(s[soName : soName+n])
	in.UID = binary.LittleEndian.Uint32(s[soUID:])
	in.GID = binary.LittleEndian.Uint32(s[soGID:])
	in.Mode = binary.LittleEndian.Uint32(s[soMode:])
	in.Size = binary.LittleEndian.Uint32(s[soSize:])
	in.MTime = binary.LittleEndian.Uint32(s[soMTime:])
	for e := 0; e < DirectExtents; e++ {
		off := soExt0 + e*extSize
		in.Ext[e].Start = binary.LittleEndian.Uint64(s[off:])
		in.Ext[e].Count = binary.LittleEndian.Uint32(s[off+8:])
	}
	in.Ind = binary.LittleEndian.Uint64(s[soInd:])
	in.Gen = binary.LittleEndian.Uint32(s[soGen:])
	return in
}

// EncodeSlot serializes an inode into a fresh 128-byte slot image.
func EncodeSlot(in Inode) []byte {
	s := make([]byte, SlotSize)
	if in.Used {
		s[soUsed] = 1
	}
	s[soKind] = in.Kind
	if len(in.Name) > MaxNameLen {
		panic("cffs: name too long")
	}
	s[soNameLen] = byte(len(in.Name))
	copy(s[soName:], in.Name)
	binary.LittleEndian.PutUint32(s[soUID:], in.UID)
	binary.LittleEndian.PutUint32(s[soGID:], in.GID)
	binary.LittleEndian.PutUint32(s[soMode:], in.Mode)
	binary.LittleEndian.PutUint32(s[soSize:], in.Size)
	binary.LittleEndian.PutUint32(s[soMTime:], in.MTime)
	for e := 0; e < DirectExtents; e++ {
		off := soExt0 + e*extSize
		binary.LittleEndian.PutUint64(s[off:], in.Ext[e].Start)
		binary.LittleEndian.PutUint32(s[off+8:], in.Ext[e].Count)
	}
	binary.LittleEndian.PutUint64(s[soInd:], in.Ind)
	binary.LittleEndian.PutUint32(s[soGen:], in.Gen)
	return s
}

// EncodeDirHeader builds a directory block header.
func EncodeDirHeader(uid, gid, mode uint32) []byte {
	h := make([]byte, DirHdrSize)
	binary.LittleEndian.PutUint32(h[hoMagic:], Magic)
	binary.LittleEndian.PutUint32(h[hoSlots:], SlotsPerBlock)
	binary.LittleEndian.PutUint32(h[hoUID:], uid)
	binary.LittleEndian.PutUint32(h[hoGID:], gid)
	binary.LittleEndian.PutUint32(h[hoMode:], mode)
	return h
}

// DirNext reads the continuation pointer of a directory block.
func DirNext(blk []byte) uint64 { return binary.LittleEndian.Uint64(blk[hoNext:]) }

// The UDF programs. The directory type is self-referential (a
// directory owns subdirectory and continuation blocks of its own
// type), so the sources are generated with the concrete template IDs
// substituted in.

// OwnsUDFSource returns the directory owns-udf with the given type IDs.
func dirOwnsSource(dirT, dataT, indT int64) string {
	return fmt.Sprintf(`
	; cffs-dir owns-udf: continuation + per-slot extents
	li   r0, 0
	ldq  r1, r0, %[4]d     ; next
	li   r2, 0
	beq  r1, r2, slots
	li   r3, 1
	li   r4, %[1]d
	emit r1, r3, r4        ; (next, 1, dir)
slots:
	li   r5, %[5]d         ; slot base
	li   r6, 0             ; index
	li   r7, %[6]d         ; slot count
sloop:
	bge  r6, r7, done
	ldb  r8, r5, 0         ; used
	li   r2, 0
	beq  r8, r2, snext
	ldb  r9, r5, 1         ; kind
	li   r10, 2
	beq  r9, r10, isdir
	; file: up to 3 data extents + indirect
	ldq  r11, r5, 80
	ldw  r12, r5, 88
	li   r2, 0
	beq  r12, r2, e2
	li   r4, %[2]d
	emit r11, r12, r4
e2:
	ldq  r11, r5, 92
	ldw  r12, r5, 100
	li   r2, 0
	beq  r12, r2, e3
	li   r4, %[2]d
	emit r11, r12, r4
e3:
	ldq  r11, r5, 104
	ldw  r12, r5, 112
	li   r2, 0
	beq  r12, r2, eind
	li   r4, %[2]d
	emit r11, r12, r4
eind:
	ldq  r11, r5, 116
	li   r2, 0
	beq  r11, r2, snext
	li   r3, 1
	li   r4, %[3]d
	emit r11, r3, r4       ; (indirect, 1, ind)
	jmp  snext
isdir:
	ldq  r11, r5, 80       ; subdirectory first block
	ldw  r12, r5, 88
	li   r2, 0
	beq  r12, r2, snext
	li   r4, %[1]d
	emit r11, r12, r4
snext:
	addi r5, r5, %[7]d
	addi r6, r6, 1
	jmp  sloop
done:
	li   r0, 0
	ret  r0
`, dirT, dataT, indT, hoNext, SlotsOff, SlotsPerBlock, SlotSize)
}

// dirAclSource implements UNIX-ish permission checks over the header:
// superuser or owner always pass; others need the read (4) or write
// (2) "other" mode bit depending on the operation.
const dirAclSource = `
	envw r1, 2          ; caller uid
	li   r2, 0
	beq  r1, r2, ok     ; superuser
	li   r0, 0
	ldw  r3, r0, 16     ; dir uid
	beq  r1, r3, ok
	ldw  r4, r0, 24     ; mode
	envw r5, 1          ; op (1 = read)
	li   r6, 1
	beq  r5, r6, rdchk
	li   r6, 2          ; other-write bit
	and  r7, r4, r6
	bne  r7, r2, ok
	li   r0, 0
	ret  r0
rdchk:
	li   r6, 4          ; other-read bit
	and  r7, r4, r6
	bne  r7, r2, ok
	li   r0, 0
	ret  r0
ok:
	li   r0, 1
	ret  r0
`

const dirSizeSource = `
	li r0, 4096
	ret r0
`

func indOwnsSource(dataT int64) string {
	return fmt.Sprintf(`
	; cffs-ind owns-udf: extent table
	li   r0, 0
	ldw  r1, r0, 0      ; count
	li   r2, 0
	li   r3, %[2]d      ; entries base
iloop:
	bge  r2, r1, done
	ldq  r4, r3, 0
	ldw  r5, r3, 8
	li   r6, %[1]d
	emit r4, r5, r6
	addi r3, r3, %[3]d
	addi r2, r2, 1
	jmp  iloop
done:
	li   r0, 0
	ret  r0
`, dataT, IndEntriesOff, IndEntrySize)
}

const approveAllSource = `
	li r0, 1
	ret r0
`

const noOwnsSource = `
	li r0, 0
	ret r0
`

const blockSizeSource = `
	li r0, 4096
	ret r0
`

// mustAsm assembles a generated source, panicking on programmer error.
func mustAsm(name, src string) *udf.Program { return udf.MustAssemble(name, src) }
