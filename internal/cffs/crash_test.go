package cffs

import (
	"bytes"
	"fmt"
	"testing"

	"xok/internal/cap"
	"xok/internal/kernel"
	"xok/internal/sim"
	"xok/internal/xn"
)

// Crash-consistency fuzzing: run a randomized stream of file system
// operations, cut the power at an arbitrary instant (transplant the
// disk image into a fresh machine), remount, and verify:
//
//  1. Mount + Attach succeed (XN's reachability GC rebuilds the free
//     map from any crash-point image — Section 4.4);
//  2. Fsck finds a structurally clean tree (no shared blocks, unique
//     names, sane extents) — the Ganger/Patt rules at work;
//  3. everything that was covered by a Sync *before* the crash is
//     intact byte-for-byte (durability).
//
// Operations after the last Sync may or may not have survived — that
// is the contract of asynchronous writes — but they must never damage
// structure or durable data.

// content derives a file's deterministic bytes from its path and
// version.
func content(path string, version, size int) []byte {
	out := make([]byte, size)
	h := uint32(2166136261)
	for i := 0; i < len(path); i++ {
		h = (h ^ uint32(path[i])) * 16777619
	}
	h ^= uint32(version) * 2654435761
	for i := range out {
		h = h*1664525 + 1013904223
		out[i] = byte(h >> 24)
	}
	return out
}

type shadowFile struct {
	data []byte // exact expected content
}

func TestCrashConsistencyFuzz(t *testing.T) {
	const trials = 8
	for trial := 0; trial < trials; trial++ {
		trial := trial
		t.Run(fmt.Sprintf("trial%d", trial), func(t *testing.T) {
			fuzzOnce(t, uint64(trial)*7919+17)
		})
	}
}

func fuzzOnce(t *testing.T, seed uint64) {
	rng := sim.NewRNG(seed)
	k := kernel.New(kernel.Config{Name: "xok", MemPages: 4096, DiskSize: 32768})
	x := xn.New(k)
	x.FlushBehind = 64

	var fs *FS
	k.Spawn("mkfs", func(e *kernel.Env) {
		e.Creds = cap.UnixCreds(0)
		var err error
		fs, err = Mkfs(e, x, "cffs", DefaultConfig())
		if err != nil {
			t.Error(err)
		}
	})
	k.Run()
	if t.Failed() {
		return
	}

	// The shadow model: what a correct FS must contain after replaying
	// the operation log. durable = state as of the last Sync.
	live := map[string]shadowFile{}
	durable := map[string]shadowFile{}
	dirs := []string{""}

	k.Spawn("chaos", func(e *kernel.Env) {
		e.Creds = cap.UnixCreds(0)
		for op := 0; op < 220; op++ {
			switch rng.Intn(10) {
			case 0, 1, 2: // create or overwrite a file
				dir := dirs[rng.Intn(len(dirs))]
				name := fmt.Sprintf("f%d", rng.Intn(24))
				path := dir + "/" + name
				size := 1 + rng.Intn(30000)
				sf, exists := live[path]
				if !exists {
					if _, err := fs.Create(e, path, 0, 0, 6); err != nil {
						if err == ErrExists {
							continue // a directory holds this name
						}
						t.Errorf("create %s: %v", path, err)
						return
					}
				}
				ref, _, err := fs.Lookup(e, path)
				if err != nil {
					t.Errorf("lookup %s: %v", path, err)
					return
				}
				data := content(path, op, size)
				if _, err := fs.WriteAt(e, ref, 0, data); err != nil {
					t.Errorf("write %s: %v", path, err)
					return
				}
				// A shrinking overwrite keeps the old tail bytes.
				expected := append([]byte(nil), data...)
				if exists && len(sf.data) > len(expected) {
					expected = append(expected, sf.data[len(expected):]...)
				}
				live[path] = shadowFile{data: expected}
				// A post-sync overwrite may be partially flushed by
				// the crash; only unmodified-since-sync files carry a
				// durability guarantee.
				delete(durable, path)
			case 3: // unlink
				if len(live) == 0 {
					continue
				}
				for path := range live {
					if err := fs.Unlink(e, path); err != nil {
						t.Errorf("unlink %s: %v", path, err)
						return
					}
					delete(live, path)
					delete(durable, path)
					break
				}
			case 4: // mkdir
				if len(dirs) > 6 {
					continue
				}
				parent := dirs[rng.Intn(len(dirs))]
				path := parent + fmt.Sprintf("/d%d", rng.Intn(8))
				if err := fs.Mkdir(e, path, 0, 0, 7); err != nil {
					if err == ErrExists {
						continue
					}
					t.Errorf("mkdir %s: %v", path, err)
					return
				}
				dirs = append(dirs, path)
			case 5: // sync: everything so far becomes durable
				if err := fs.Sync(e); err != nil {
					t.Errorf("sync: %v", err)
					return
				}
				durable = make(map[string]shadowFile, len(live))
				for p, sf := range live {
					durable[p] = sf
				}
			default: // read back a live file and verify (online check)
				if len(live) == 0 {
					continue
				}
				for path, sf := range live {
					ref, _, err := fs.Lookup(e, path)
					if err != nil {
						t.Errorf("lookup %s: %v", path, err)
						return
					}
					buf := make([]byte, len(sf.data))
					n, err := fs.ReadAt(e, ref, 0, buf)
					if err != nil || n != len(sf.data) {
						t.Errorf("read %s: n=%d err=%v", path, n, err)
						return
					}
					if !bytes.Equal(buf, sf.data) {
						t.Errorf("online read of %s mismatches shadow", path)
						return
					}
					break
				}
			}
		}
	})

	// Crash at an arbitrary instant mid-run.
	crashAt := sim.Time(rng.Intn(int(2 * sim.CPUHz)))
	k.RunUntil(crashAt)
	snapshot := k.Disk.Snapshot()
	k.Shutdown()
	if t.Failed() {
		return
	}

	// Fresh machine, transplanted disk.
	k2 := kernel.New(kernel.Config{Name: "xok2", MemPages: 4096, DiskSize: 32768})
	k2.Disk.Restore(snapshot)
	x2, err := xn.Mount(k2)
	if err != nil {
		t.Fatalf("mount after crash@%v: %v", crashAt, err)
	}
	k2.Spawn("verify", func(e *kernel.Env) {
		e.Creds = cap.UnixCreds(0)
		fs2, err := Attach(e, x2, "cffs", DefaultConfig())
		if err != nil {
			t.Errorf("attach after crash: %v", err)
			return
		}
		report, err := fs2.Fsck(e)
		if err != nil {
			t.Errorf("fsck after crash@%v: %v", crashAt, err)
			return
		}
		for _, msg := range report.Errors {
			t.Errorf("fsck: %s", msg)
		}
		// Durability: everything covered by the last pre-crash Sync.
		for path, sf := range durable {
			ref, in, err := fs2.Lookup(e, path)
			if err != nil {
				t.Errorf("durable file %s lost after crash@%v: %v", path, crashAt, err)
				continue
			}
			if int(in.Size) != len(sf.data) {
				t.Errorf("durable file %s: size %d, want %d", path, in.Size, len(sf.data))
				continue
			}
			got := make([]byte, len(sf.data))
			if _, err := fs2.ReadAt(e, ref, 0, got); err != nil {
				t.Errorf("durable file %s unreadable: %v", path, err)
				continue
			}
			if !bytes.Equal(got, sf.data) {
				t.Errorf("durable file %s: content corrupted after crash@%v", path, crashAt)
			}
		}
	})
	k2.Run()
	k2.Shutdown()
}
