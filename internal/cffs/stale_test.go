package cffs

import (
	"errors"
	"testing"

	"xok/internal/kernel"
	"xok/internal/sim"
)

// Regressions for bugs surfaced by the differential syscall fuzzer
// (internal/difftest); each test is the hand-translated shrunk
// reproducer, exercised at the cffs layer where the fix lives.

// TestHoleReadsZero: a write past EOF leaves a hole whose blocks were
// allocated but never written. Reads of the hole must see zeros — not
// whatever previous owner's bytes sit at that physical location (the
// block content differed per allocation policy, which difftest caught
// as a cross-personality content divergence; fuzzer seed 452).
func TestHoleReadsZero(t *testing.T) {
	for _, cfg := range []Config{DefaultConfig(), FFSConfig()} {
		w := newWorld(t, cfg)
		// Dirty the disk region first so stale bytes would be nonzero.
		w.run(t, "prefill", func(e *kernel.Env) error {
			ref, err := w.fs.Create(e, "/junk", 0, 0, 6)
			if err != nil {
				return err
			}
			if _, err := w.fs.WriteAt(e, ref, 0, pattern(3*sim.DiskBlockSize, 9)); err != nil {
				return err
			}
			if err := w.fs.Sync(e); err != nil {
				return err
			}
			return w.fs.Unlink(e, "/junk")
		})
		w.run(t, "hole", func(e *kernel.Env) error {
			ref, err := w.fs.Create(e, "/a", 0, 0, 6)
			if err != nil {
				return err
			}
			// Write 8 bytes far past EOF: block 0 becomes a pure hole.
			if _, err := w.fs.WriteAt(e, ref, 5688, []byte("ABCDEFGH")); err != nil {
				return err
			}
			buf := make([]byte, sim.DiskBlockSize)
			if _, err := w.fs.ReadAt(e, ref, 0, buf); err != nil {
				return err
			}
			for i, b := range buf {
				if b != 0 {
					t.Fatalf("cfg %+v: hole byte %d = %#x, want 0", cfg, i, b)
				}
			}
			return nil
		})
	}
}

// TestHoleSyncs: the metadata of a file with holes points at
// uninitialized blocks; XN's tainted-block rule refuses to persist
// such pointers, so sync() failed forever on the protected
// personality while the unprotected models shrugged (fuzzer seed
// 5136). The fix initializes hole blocks at write time, so sync must
// succeed.
func TestHoleSyncs(t *testing.T) {
	w := newWorld(t, DefaultConfig())
	w.run(t, "hole-sync", func(e *kernel.Env) error {
		ref, err := w.fs.Create(e, "/b", 0, 0, 6)
		if err != nil {
			return err
		}
		if _, err := w.fs.WriteAt(e, ref, 8200, pattern(100, 1)); err != nil {
			return err
		}
		return w.fs.Sync(e)
	})
}

// TestStaleRef: I/O through a Ref whose slot was recycled (unlink +
// create reusing the slot, or the whole directory block freed) must
// fail with ErrStale — deterministically, on every personality —
// rather than reading or corrupting the new occupant (fuzzer seed
// 5390, where the two personalities failed with different internal
// errors).
func TestStaleRef(t *testing.T) {
	w := newWorld(t, DefaultConfig())
	var stale Ref
	w.run(t, "setup", func(e *kernel.Env) error {
		if err := w.fs.Mkdir(e, "/sub", 0, 0, 7); err != nil {
			return err
		}
		ref, err := w.fs.Create(e, "/sub/f1", 0, 0, 6)
		if err != nil {
			return err
		}
		stale = ref
		if err := w.fs.Unlink(e, "/sub/f1"); err != nil {
			return err
		}
		return w.fs.Rmdir(e, "/sub")
	})
	w.run(t, "recycle", func(e *kernel.Env) error {
		// Reuse the freed blocks for fresh allocations.
		ref, err := w.fs.Create(e, "/f2", 0, 0, 6)
		if err != nil {
			return err
		}
		_, err = w.fs.WriteAt(e, ref, 0, pattern(sim.DiskBlockSize, 2))
		return err
	})
	w.run(t, "stale-io", func(e *kernel.Env) error {
		if _, err := w.fs.ReadAt(e, stale, 0, make([]byte, 1)); !errors.Is(err, ErrStale) {
			t.Errorf("ReadAt through stale ref = %v, want ErrStale", err)
		}
		if _, err := w.fs.WriteAt(e, stale, 0, []byte("x")); !errors.Is(err, ErrStale) {
			t.Errorf("WriteAt through stale ref = %v, want ErrStale", err)
		}
		if _, err := w.fs.RefInode(e, stale); !errors.Is(err, ErrStale) {
			t.Errorf("RefInode on stale ref = %v, want ErrStale", err)
		}
		return nil
	})
}

// TestSlotRecycleSameName: unlink + create of the SAME path recycles
// the slot; a descriptor from before the recycle must go stale even
// though name and location still match — only the generation tells the
// two incarnations apart.
func TestSlotRecycleSameName(t *testing.T) {
	w := newWorld(t, DefaultConfig())
	w.run(t, "recycle-same-name", func(e *kernel.Env) error {
		ref1, err := w.fs.Create(e, "/b", 0, 0, 6)
		if err != nil {
			return err
		}
		if _, err := w.fs.WriteAt(e, ref1, 0, pattern(100, 3)); err != nil {
			return err
		}
		if err := w.fs.Unlink(e, "/b"); err != nil {
			return err
		}
		ref2, err := w.fs.Create(e, "/b", 0, 0, 6)
		if err != nil {
			return err
		}
		if ref1.Dir == ref2.Dir && ref1.Slot == ref2.Slot && ref1.Gen == ref2.Gen {
			t.Fatal("recycled slot kept the same generation")
		}
		if _, err := w.fs.WriteAt(e, ref1, 0, []byte("overwrite")); !errors.Is(err, ErrStale) {
			t.Errorf("write through pre-recycle ref = %v, want ErrStale", err)
		}
		// The new incarnation is untouched.
		buf := make([]byte, 16)
		if n, err := w.fs.ReadAt(e, ref2, 0, buf); err != nil || n != 0 {
			t.Errorf("new file read = %d, %v, want empty", n, err)
		}
		return nil
	})
}
