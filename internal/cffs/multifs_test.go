package cffs

import (
	"bytes"
	"errors"
	"testing"

	"xok/internal/cap"
	"xok/internal/disk"
	"xok/internal/kernel"
	"xok/internal/sim"
	"xok/internal/udf"
	"xok/internal/xn"
)

// Multiple library file systems sharing one disk is the whole point of
// XN (Section 4: "an exokernel must provide a means to safely
// multiplex disks among multiple library file systems"). These tests
// run two independent C-FFS volumes — different owners — on a single
// XN and check both coexistence and isolation.

func bootTwo(t *testing.T) (*kernel.Kernel, *xn.XN, *FS, *FS) {
	t.Helper()
	k := kernel.New(kernel.Config{Name: "xok", MemPages: 8192, DiskSize: 65536})
	x := xn.New(k)
	var fsA, fsB *FS
	k.Spawn("mkfs", func(e *kernel.Env) {
		e.Creds = cap.UnixCreds(0)
		var err error
		if fsA, err = Mkfs(e, x, "alpha", DefaultConfig()); err != nil {
			t.Error(err)
			return
		}
		if fsB, err = Mkfs(e, x, "beta", DefaultConfig()); err != nil {
			t.Error(err)
		}
	})
	k.Run()
	if t.Failed() {
		t.FailNow()
	}
	return k, x, fsA, fsB
}

func TestTwoVolumesCoexist(t *testing.T) {
	k, x, fsA, fsB := bootTwo(t)
	k.Spawn("use", func(e *kernel.Env) {
		e.Creds = cap.UnixCreds(0)
		refA, err := fsA.Create(e, "/a.txt", 0, 0, 6)
		if err != nil {
			t.Error(err)
			return
		}
		refB, err := fsB.Create(e, "/b.txt", 0, 0, 6)
		if err != nil {
			t.Error(err)
			return
		}
		da := bytes.Repeat([]byte("A"), 9000)
		db := bytes.Repeat([]byte("B"), 9000)
		if _, err := fsA.WriteAt(e, refA, 0, da); err != nil {
			t.Error(err)
			return
		}
		if _, err := fsB.WriteAt(e, refB, 0, db); err != nil {
			t.Error(err)
			return
		}
		if err := x.Sync(e); err != nil {
			t.Error(err)
			return
		}
		// No block belongs to both volumes.
		extsA, _ := fsA.FileExtents(e, refA)
		extsB, _ := fsB.FileExtents(e, refB)
		blocks := map[uint64]bool{uint64(fsA.Root): true, uint64(fsB.Root): true}
		for _, exts := range [][]Extent{extsA, extsB} {
			for _, ext := range exts {
				for j := uint32(0); j < ext.Count; j++ {
					b := ext.Start + uint64(j)
					if blocks[b] {
						t.Errorf("block %d allocated to both volumes", b)
					}
					blocks[b] = true
				}
			}
		}
		// Contents stay separate.
		got := make([]byte, 9000)
		if _, err := fsA.ReadAt(e, refA, 0, got); err != nil || !bytes.Equal(got, da) {
			t.Error("volume A content wrong")
		}
		if _, err := fsB.ReadAt(e, refB, 0, got); err != nil || !bytes.Equal(got, db) {
			t.Error("volume B content wrong")
		}
	})
	k.Run()

	// Both survive a reboot independently.
	x2, err := xn.Mount(k)
	if err != nil {
		t.Fatal(err)
	}
	k.Spawn("remount", func(e *kernel.Env) {
		e.Creds = cap.UnixCreds(0)
		a2, err := Attach(e, x2, "alpha", DefaultConfig())
		if err != nil {
			t.Error(err)
			return
		}
		b2, err := Attach(e, x2, "beta", DefaultConfig())
		if err != nil {
			t.Error(err)
			return
		}
		if _, _, err := a2.Lookup(e, "/a.txt"); err != nil {
			t.Errorf("alpha lost /a.txt: %v", err)
		}
		if _, _, err := b2.Lookup(e, "/b.txt"); err != nil {
			t.Errorf("beta lost /b.txt: %v", err)
		}
		if _, _, err := a2.Lookup(e, "/b.txt"); !errors.Is(err, ErrNotFound) {
			t.Error("alpha sees beta's file")
		}
	})
	k.Run()
}

func TestCrossVolumeTheftRejected(t *testing.T) {
	// A libFS cannot allocate a block the other volume already owns —
	// XN's free-map check stops it regardless of what the thief's own
	// metadata claims.
	k, x, fsA, fsB := bootTwo(t)
	k.Spawn("thief", func(e *kernel.Env) {
		e.Creds = cap.UnixCreds(0)
		refA, err := fsA.Create(e, "/loot", 0, 0, 6)
		if err != nil {
			t.Error(err)
			return
		}
		if _, err := fsA.WriteAt(e, refA, 0, make([]byte, 4096)); err != nil {
			t.Error(err)
			return
		}
		exts, _ := fsA.FileExtents(e, refA)
		victim := exts[0].Start

		// Forge a slot in beta's root claiming alpha's block.
		in := Inode{Used: true, Kind: KindFile, Name: "stolen", Mode: 6, Size: 4096}
		in.Ext[0] = Extent{Start: victim, Count: 1}
		err = x.Alloc(e, fsB.Root,
			[]xn.Mod{{Off: SlotOff(0), Bytes: EncodeSlot(in)}},
			udf.Extent{Start: int64(victim), Count: 1, Type: int64(fsB.DataT)})
		if !errors.Is(err, xn.ErrNotFree) {
			t.Errorf("cross-volume theft err = %v, want ErrNotFree", err)
		}
	})
	k.Run()
}

func TestMemFSSkipsOrderingAndDoesNotPersist(t *testing.T) {
	// Section 4.3.2's temporary file systems: full speed (no ordering
	// rules) and gone after reboot.
	k := kernel.New(kernel.Config{Name: "xok", MemPages: 4096, DiskSize: 32768})
	x := xn.New(k)
	k.Spawn("mem", func(e *kernel.Env) {
		e.Creds = cap.UnixCreds(0)
		mem, err := Mkfs(e, x, "tmp", MemConfig())
		if err != nil {
			t.Error(err)
			return
		}
		if err := mem.Mkdir(e, "/scratch", 0, 0, 7); err != nil {
			t.Error(err)
			return
		}
		ref, err := mem.Create(e, "/scratch/x", 0, 0, 6)
		if err != nil {
			t.Error(err)
			return
		}
		if _, err := mem.WriteAt(e, ref, 0, make([]byte, 20000)); err != nil {
			t.Error(err)
			return
		}
		// The ordering exemption: writing the root while children are
		// uninitialized is allowed for temporary trees. Make an
		// allocation whose child never gets written, then write root.
		tgt, _ := x.FindFree(mem.Root+100, 1)
		in := Inode{Used: true, Kind: KindFile, Name: "hollow", Mode: 6}
		in.Ext[0] = Extent{Start: uint64(tgt), Count: 1}
		if err := x.Alloc(e, mem.Root,
			[]xn.Mod{{Off: SlotOff(30), Bytes: EncodeSlot(in)}},
			udf.Extent{Start: int64(tgt), Count: 1, Type: int64(mem.DataT)}); err != nil {
			t.Error(err)
			return
		}
		if err := x.Write(e, []disk.BlockNo{mem.Root}); err != nil {
			t.Errorf("temporary FS exempt from ordering, but write failed: %v", err)
		}
	})
	k.Run()

	// After a reboot the temporary root is gone and its blocks free.
	x2, err := xn.Mount(k)
	if err != nil {
		t.Fatal(err)
	}
	k.Spawn("check", func(e *kernel.Env) {
		e.Creds = cap.UnixCreds(0)
		if _, err := x2.LookupRoot(e, "tmp"); !errors.Is(err, xn.ErrNoRoot) {
			t.Errorf("temporary FS survived reboot: %v", err)
		}
	})
	k.Run()
	_ = sim.Time(0)
}
