package cffs

import "xok/internal/xn"

// Frozen is the snapshot of one mounted C-FFS's control state: block
// layout handles, allocation cursor, slot-incarnation counter and the
// name cache. All of it is plain values except the cache map, which
// Freeze copies. Thawing against a forked XN is safe from concurrent
// goroutines: Thaw only reads the Frozen.
type Frozen struct {
	fs    FS
	cache map[string]Ref
}

// Freeze captures the file system's state. The live FS keeps running
// (its maps are untouched).
func (fs *FS) Freeze() *Frozen {
	fz := &Frozen{fs: *fs, cache: make(map[string]Ref, len(fs.nameCache))}
	for k, v := range fs.nameCache {
		fz.cache[k] = v
	}
	fz.fs.X = nil
	fz.fs.nameCache = nil
	return fz
}

// Thaw rebuilds the FS against x (the forked machine's XN).
func (fz *Frozen) Thaw(x *xn.XN) *FS {
	fs := fz.fs
	fs.X = x
	fs.nameCache = make(map[string]Ref, len(fz.cache))
	for k, v := range fz.cache {
		fs.nameCache[k] = v
	}
	return &fs
}
