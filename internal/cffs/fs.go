package cffs

import (
	"encoding/binary"
	"errors"
	"fmt"
	"strconv"
	"strings"

	"xok/internal/disk"
	"xok/internal/kernel"
	"xok/internal/sim"
	"xok/internal/trace"
	"xok/internal/udf"
	"xok/internal/xn"
)

// Config selects the file system's structural policies. The C-FFS
// defaults are what give the paper's speedups; the FFS baseline
// (internal/ffs) reuses this implementation with the flags inverted,
// which isolates exactly the structural differences the C-FFS paper
// identifies (embedded inodes, co-location, asynchronous metadata).
type Config struct {
	// Colocate allocates file data adjacent to its directory block
	// (C-FFS). When false, data goes to a rotating cursor far from the
	// directory, FFS-style.
	Colocate bool

	// SyncMeta forces synchronous directory/inode writes on namespace
	// operations (create, mkdir, unlink, rmdir, rename) — the FFS
	// integrity discipline that XN's ordering rules make unnecessary.
	SyncMeta bool

	// EmbeddedInodes stores inodes inside directory blocks (C-FFS).
	// When false, every namespace operation also dirties (and, with
	// SyncMeta, synchronously writes) a block in a separate inode
	// table region, modelling FFS's split between inodes and
	// directories.
	EmbeddedInodes bool

	// Temporary marks the whole file system non-persistent. XN then
	// exempts it from the write-ordering rules ("entire file systems
	// [can] be marked 'temporary' ... memory-based file systems can be
	// implemented with no loss of efficiency", Section 4.3.2) and the
	// root does not survive a reboot.
	Temporary bool
}

// MemConfig is a memory-based (tmpfs-style) file system: C-FFS
// policies with persistence off — one of the file systems Section 4.6
// names as planned future work.
func MemConfig() Config {
	cfg := DefaultConfig()
	cfg.Temporary = true
	return cfg
}

// DefaultConfig is genuine C-FFS.
func DefaultConfig() Config {
	return Config{Colocate: true, SyncMeta: false, EmbeddedInodes: true}
}

// FFSConfig is the FFS-style baseline profile.
func FFSConfig() Config {
	return Config{Colocate: false, SyncMeta: true, EmbeddedInodes: false}
}

// Ref locates a file: the directory block holding its slot, and the
// slot index. With embedded inodes this *is* the inode's address. Gen
// is the incarnation the reference was resolved against; RefInode
// rejects a ref whose slot has since been recycled.
type Ref struct {
	Dir  disk.BlockNo
	Slot int
	Gen  uint32
}

// Errors.
var (
	ErrNotFound  = errors.New("cffs: no such file or directory")
	ErrExists    = errors.New("cffs: file exists")
	ErrNotDir    = errors.New("cffs: not a directory")
	ErrIsDir     = errors.New("cffs: is a directory")
	ErrNotEmpty  = errors.New("cffs: directory not empty")
	ErrDirFull   = errors.New("cffs: directory has no free slots")
	ErrFileLimit = errors.New("cffs: file size limit reached")
	ErrNameLen   = errors.New("cffs: name too long")
	ErrLinkLoop  = errors.New("cffs: too many levels of symbolic links")
	ErrInvalOp   = errors.New("cffs: invalid operation for this entry kind")
	ErrStale     = errors.New("cffs: stale file reference")
)

// MaxLinkDepth bounds symbolic-link resolution (ELOOP past it).
const MaxLinkDepth = 8

const itableBlocks = 32

// FS is one mounted C-FFS file system.
type FS struct {
	X    *xn.XN
	Name string
	Cfg  Config

	Root  disk.BlockNo
	DirT  xn.TemplateID
	IndT  xn.TemplateID
	DataT xn.TemplateID

	itable     disk.BlockNo // inode-table region (non-embedded mode)
	dataCursor disk.BlockNo // FFS-style allocation cursor
	genCtr     uint32       // monotonic slot-incarnation counter

	nameCache map[string]Ref
}

// nextGen mints a fresh slot incarnation number (never 0, so a
// zero-valued Ref can never validate against a live slot).
func (fs *FS) nextGen() uint32 {
	fs.genCtr++
	return fs.genCtr
}

// Mkfs formats a new C-FFS on the volume: installs the three templates
// (data first, then indirect, then the self-referential directory type
// whose ID is predicted via NextTemplateID), claims and registers the
// root directory block, and initializes it.
func Mkfs(e *kernel.Env, x *xn.XN, name string, cfg Config) (*FS, error) {
	fs := &FS{X: x, Name: name, Cfg: cfg, nameCache: make(map[string]Ref)}

	// The installs and root registrations below each write the whole
	// catalogue through to disk; batch them into one flush at the end.
	x.SuspendCatalogueFlush()
	defer x.ResumeCatalogueFlush()

	dataT, err := x.InstallTemplate(e, xn.Template{
		Name:        name + ".data",
		Owns:        mustAsm(name+".data.owns", noOwnsSource),
		Acl:         mustAsm(name+".data.acl", approveAllSource),
		Size:        mustAsm(name+".data.size", blockSizeSource),
		AclAtParent: true,
		Temporary:   cfg.Temporary,
	})
	if err != nil {
		return nil, err
	}
	indT, err := x.InstallTemplate(e, xn.Template{
		Name:      name + ".ind",
		Owns:      mustAsm(name+".ind.owns", indOwnsSource(int64(dataT))),
		Acl:       mustAsm(name+".ind.acl", approveAllSource),
		Size:      mustAsm(name+".ind.size", blockSizeSource),
		Temporary: cfg.Temporary,
	})
	if err != nil {
		return nil, err
	}
	dirT := x.NextTemplateID()
	gotDirT, err := x.InstallTemplate(e, xn.Template{
		Name:      name + ".dir",
		Owns:      mustAsm(name+".dir.owns", dirOwnsSource(int64(dirT), int64(dataT), int64(indT))),
		Acl:       mustAsm(name+".dir.acl", dirAclSource),
		Size:      mustAsm(name+".dir.size", dirSizeSource),
		Temporary: cfg.Temporary,
	})
	if err != nil {
		return nil, err
	}
	if gotDirT != dirT {
		return nil, fmt.Errorf("cffs: template id prediction failed: %d != %d", gotDirT, dirT)
	}
	fs.DataT, fs.IndT, fs.DirT = dataT, indT, dirT

	root, err := x.AllocRootExtent(e, 64, 1)
	if err != nil {
		return nil, err
	}
	fs.Root = root
	if err := x.RegisterRoot(e, xn.Root{
		Name: name, Start: root, Count: 1, Tmpl: dirT, Temporary: cfg.Temporary,
	}); err != nil {
		return nil, err
	}
	if _, err := x.LoadRoot(e, name); err != nil {
		return nil, err
	}
	// Initialize the root directory header in place (the freshly-read
	// zero block owns nothing, so this is a pure Modify).
	hdr := EncodeDirHeader(0, 0, 7) // uid 0, other bits rwx: world-usable root
	if err := x.Modify(e, root, []xn.Mod{{Off: 0, Bytes: hdr}}); err != nil {
		return nil, err
	}

	if !cfg.EmbeddedInodes {
		if err := fs.setupItable(e); err != nil {
			return nil, err
		}
	}
	fs.dataCursor = root + 512
	return fs, nil
}

// setupItable claims the separate inode-table region used by the FFS
// baseline profile.
func (fs *FS) setupItable(e *kernel.Env) error {
	x := fs.X
	itT, err := x.InstallTemplate(e, xn.Template{
		Name: fs.Name + ".itable",
		Owns: mustAsm(fs.Name+".itable.owns", noOwnsSource),
		Acl:  mustAsm(fs.Name+".itable.acl", approveAllSource),
		Size: mustAsm(fs.Name+".itable.size", blockSizeSource),
	})
	if err != nil {
		return err
	}
	start, err := x.AllocRootExtent(e, fs.Root+2048, itableBlocks)
	if err != nil {
		return err
	}
	if err := x.RegisterRoot(e, xn.Root{
		Name: fs.Name + ".itable", Start: start, Count: itableBlocks, Tmpl: itT,
	}); err != nil {
		return err
	}
	if _, err := x.LoadRoot(e, fs.Name+".itable"); err != nil {
		return err
	}
	fs.itable = start
	return nil
}

// Attach mounts an existing C-FFS (e.g. after a reboot): looks up the
// templates and root by name and loads the root directory.
func Attach(e *kernel.Env, x *xn.XN, name string, cfg Config) (*FS, error) {
	fs := &FS{X: x, Name: name, Cfg: cfg, nameCache: make(map[string]Ref)}
	for _, tp := range []struct {
		suffix string
		dst    *xn.TemplateID
	}{{".data", &fs.DataT}, {".ind", &fs.IndT}, {".dir", &fs.DirT}} {
		t, ok := x.TemplateByName(name + tp.suffix)
		if !ok {
			return nil, fmt.Errorf("cffs: template %s%s missing", name, tp.suffix)
		}
		*tp.dst = t.ID
	}
	r, err := x.LoadRoot(e, name)
	if err != nil {
		return nil, err
	}
	fs.Root = r.Start
	if !cfg.EmbeddedInodes {
		ir, err := x.LoadRoot(e, name+".itable")
		if err != nil {
			return nil, err
		}
		fs.itable = ir.Start
	}
	fs.dataCursor = fs.Root + 512
	return fs, nil
}

// ensureDir makes a directory block resident, inserting it under its
// parent in the registry if needed.
func (fs *FS) ensureDir(e *kernel.Env, blk, parent disk.BlockNo) error {
	if fs.X.Cached(blk) {
		fs.X.Pin(blk)
		return nil
	}
	if _, ok := fs.X.Lookup(blk); !ok {
		if err := fs.X.Insert(e, parent, udf.Extent{Start: int64(blk), Count: 1, Type: int64(fs.DirT)}); err != nil {
			return err
		}
	}
	if err := fs.X.Read(e, []disk.BlockNo{blk}, nil); err != nil {
		return err
	}
	// Directory blocks are the libFS's hot metadata: pin them so
	// handles and the name cache stay valid under cache pressure.
	fs.X.Pin(blk)
	return nil
}

func (fs *FS) dirData(blk disk.BlockNo) []byte { return fs.X.PageData(blk) }

// split normalizes a path into components. Hand-rolled rather than
// strings.Split: every namei allocates one of these, and the Split
// intermediate slice doubled the cost.
func split(path string) []string {
	n := 0
	for i := 0; i < len(path); {
		j := i
		for j < len(path) && path[j] != '/' {
			j++
		}
		if c := path[i:j]; c != "" && c != "." {
			n++
		}
		i = j + 1
	}
	if n == 0 {
		return nil
	}
	out := make([]string, 0, n)
	for i := 0; i < len(path); {
		j := i
		for j < len(path) && path[j] != '/' {
			j++
		}
		if c := path[i:j]; c != "" && c != "." {
			out = append(out, c)
		}
		i = j + 1
	}
	return out
}

// findEntry scans a directory chain for name. Returns the ref and
// inode.
func (fs *FS) findEntry(e *kernel.Env, head, parent disk.BlockNo, name string) (Ref, Inode, error) {
	blk, par := head, parent
	for {
		if err := fs.ensureDir(e, blk, par); err != nil {
			return Ref{}, Inode{}, err
		}
		data := fs.dirData(blk)
		e.Use(sim.TouchCost(DirHdrSize + SlotsPerBlock*8)) // scan cost
		for i := 0; i < SlotsPerBlock; i++ {
			if data[SlotOff(i)] == 0 {
				continue
			}
			in := DecodeSlot(data, i)
			if in.Name == name {
				return Ref{Dir: blk, Slot: i, Gen: in.Gen}, in, nil
			}
		}
		next := DirNext(data)
		if next == 0 {
			return Ref{}, Inode{}, ErrNotFound
		}
		par = blk
		blk = disk.BlockNo(next)
	}
}

// walkDir resolves the directory containing path's last component,
// returning its head block and the final name. LibOS-level name cache
// first ("renaming or deleting a file updates the name cache",
// Section 4.5).
func (fs *FS) walkDir(e *kernel.Env, path string) (disk.BlockNo, string, error) {
	comps := split(path)
	if len(comps) == 0 {
		return 0, "", ErrIsDir
	}
	e.LibCall(100)
	cur := fs.Root
	var par disk.BlockNo = xn.NoParent
	if err := fs.ensureDir(e, cur, par); err != nil {
		return 0, "", err
	}
	for _, c := range comps[:len(comps)-1] {
		ref, in, err := fs.findEntry(e, cur, par, c)
		if err != nil {
			return 0, "", err
		}
		if in.Kind != KindDir {
			return 0, "", ErrNotDir
		}
		par = ref.Dir
		child := disk.BlockNo(in.Ext[0].Start)
		if err := fs.ensureDir(e, child, par); err != nil {
			return 0, "", err
		}
		par = ref.Dir
		cur = child
	}
	return cur, comps[len(comps)-1], nil
}

// LookupNoFollow resolves a path to its Ref and Inode without
// resolving a symbolic link in the final component (the lstat/unlink/
// rename view of the namespace).
func (fs *FS) LookupNoFollow(e *kernel.Env, path string) (Ref, Inode, error) {
	comps := split(path)
	if r, ok := fs.nameCache[path]; ok {
		if fs.X.Cached(r.Dir) {
			data := fs.dirData(r.Dir)
			in := DecodeSlot(data, r.Slot)
			// A slot can be recycled for a different name after
			// unlink+create; the name check keeps a stale cache entry
			// from resurrecting the old path.
			if in.Used && len(comps) > 0 && in.Name == comps[len(comps)-1] {
				e.LibCall(50)
				// Same name can reoccupy the slot after unlink+create;
				// hand out the current incarnation, not the cached one.
				r.Gen = in.Gen
				return r, in, nil
			}
		}
		delete(fs.nameCache, path)
	}
	head, name, err := fs.walkDir(e, path)
	if err != nil {
		return Ref{}, Inode{}, err
	}
	ref, in, err := fs.findEntry(e, head, xn.NoParent, name)
	if err != nil {
		return Ref{}, Inode{}, err
	}
	fs.nameCache[path] = ref
	fs.touchItable(e, ref, false)
	return ref, in, nil
}

// Lookup resolves a path to its Ref and Inode, following symbolic
// links in the final component (up to MaxLinkDepth).
func (fs *FS) Lookup(e *kernel.Env, path string) (Ref, Inode, error) {
	return fs.lookupFollow(e, path, 0)
}

func (fs *FS) lookupFollow(e *kernel.Env, path string, depth int) (Ref, Inode, error) {
	ref, in, err := fs.LookupNoFollow(e, path)
	if err != nil || in.Kind != KindLink {
		return ref, in, err
	}
	if depth >= MaxLinkDepth {
		return Ref{}, Inode{}, ErrLinkLoop
	}
	target, err := fs.ReadLink(e, ref, in)
	if err != nil {
		return Ref{}, Inode{}, err
	}
	if target == "" {
		return Ref{}, Inode{}, ErrNotFound
	}
	// A relative target resolves against the link's containing
	// directory.
	if !strings.HasPrefix(target, "/") {
		trimmed := strings.TrimRight(path, "/")
		if i := strings.LastIndexByte(trimmed, '/'); i >= 0 {
			target = trimmed[:i+1] + target
		}
	}
	return fs.lookupFollow(e, target, depth+1)
}

// ReadLink returns the target path stored in a symbolic link's data
// block.
func (fs *FS) ReadLink(e *kernel.Env, ref Ref, in Inode) (string, error) {
	if in.Kind != KindLink {
		return "", ErrInvalOp
	}
	buf := make([]byte, in.Size)
	n, err := fs.ReadAt(e, ref, 0, buf)
	if err != nil {
		return "", err
	}
	return string(buf[:n]), nil
}

// Stat returns the inode for path.
func (fs *FS) Stat(e *kernel.Env, path string) (Inode, error) {
	if len(split(path)) == 0 {
		return Inode{Used: true, Kind: KindDir, Name: "/"}, nil
	}
	_, in, err := fs.Lookup(e, path)
	return in, err
}

// touchItable models the FFS split-inode penalty: reads (and for
// namespace mutations dirties) the file's block in the separate inode
// region.
func (fs *FS) touchItable(e *kernel.Env, ref Ref, dirty bool) {
	if fs.Cfg.EmbeddedInodes {
		return
	}
	blk := fs.itable + disk.BlockNo((int64(ref.Dir)*SlotsPerBlock+int64(ref.Slot))%itableBlocks)
	if !fs.X.Cached(blk) {
		_ = fs.X.Read(e, []disk.BlockNo{blk}, nil)
	}
	if dirty {
		_ = fs.X.MarkDirty(e, blk)
		if fs.Cfg.SyncMeta {
			_ = fs.X.Write(e, []disk.BlockNo{blk})
		}
	}
}

// freeSlot finds (or creates, by extending the chain) a free slot in
// the directory whose head block is head. Returns the block and index.
func (fs *FS) freeSlot(e *kernel.Env, head disk.BlockNo) (disk.BlockNo, int, error) {
	blk := head
	var par disk.BlockNo = xn.NoParent
	for {
		if err := fs.ensureDir(e, blk, par); err != nil {
			return 0, 0, err
		}
		data := fs.dirData(blk)
		for i := 0; i < SlotsPerBlock; i++ {
			if data[SlotOff(i)] == 0 {
				return blk, i, nil
			}
		}
		next := DirNext(data)
		if next != 0 {
			par = blk
			blk = disk.BlockNo(next)
			continue
		}
		// Extend the chain with a continuation block co-located with
		// the directory.
		nb, ok := fs.X.FindFree(blk+1, 1)
		if !ok {
			return 0, 0, ErrDirFull
		}
		nextBytes := make([]byte, 8)
		binary.LittleEndian.PutUint64(nextBytes, uint64(nb))
		if err := fs.X.Alloc(e, blk, []xn.Mod{{Off: hoNext, Bytes: nextBytes}},
			udf.Extent{Start: int64(nb), Count: 1, Type: int64(fs.DirT)}); err != nil {
			return 0, 0, err
		}
		hdr := fs.dirData(blk)
		if err := fs.X.InitMetadata(e, nb, EncodeDirHeader(
			binary.LittleEndian.Uint32(hdr[hoUID:]),
			binary.LittleEndian.Uint32(hdr[hoGID:]),
			binary.LittleEndian.Uint32(hdr[hoMode:]))); err != nil {
			return 0, 0, err
		}
		fs.syncMeta(e, nb, blk)
		par = blk
		blk = nb
	}
}

// syncMeta performs the FFS-style synchronous metadata write when
// configured, flushing uninitialized children first to satisfy XN's
// ordering rules.
func (fs *FS) syncMeta(e *kernel.Env, blks ...disk.BlockNo) {
	if !fs.Cfg.SyncMeta {
		return
	}
	for _, b := range blks {
		fs.syncOne(e, b, 0)
	}
}

func (fs *FS) syncOne(e *kernel.Env, b disk.BlockNo, depth int) {
	if depth > 8 {
		return
	}
	begin := fs.X.K.Now()
	err := fs.X.Write(e, []disk.BlockNo{b})
	if err == nil {
		fs.noteSyncWrite(e, b, begin)
		return
	}
	if !errors.Is(err, xn.ErrTainted) {
		return
	}
	// Flush resident uninitialized children first, then retry.
	for _, c := range fs.childBlocks(b) {
		if en, ok := fs.X.Lookup(c); ok && en.Uninit && en.State == xn.StateResident {
			fs.syncOne(e, c, depth+1)
		}
	}
	begin = fs.X.K.Now()
	if fs.X.Write(e, []disk.BlockNo{b}) == nil {
		fs.noteSyncWrite(e, b, begin)
	}
}

// noteSyncWrite accounts one completed synchronous metadata write: the
// flat counter the paper's tables need, plus (when tracing) a span and
// a latency-histogram sample so the cost of FFS-style sync ordering is
// attributable per write.
func (fs *FS) noteSyncWrite(e *kernel.Env, b disk.BlockNo, begin sim.Time) {
	k := fs.X.K
	k.Stats.Inc(sim.CtrSyncWrites)
	if tr := k.Trace; tr != nil {
		now := k.Now()
		lane := int64(0)
		if e != nil {
			lane = e.TraceLane()
		}
		tr.Span(k.TracePID, lane, "cffs", "sync-write", begin, now,
			trace.Arg{Key: "block", Val: strconv.FormatInt(int64(b), 10)})
		tr.Observe(k.TracePID, "cffs.syncwrite", now-begin)
	}
}

// childBlocks lists the blocks a cached directory/indirect block owns,
// by decoding the slots (the libFS understands its own format; it does
// not need XN for this).
func (fs *FS) childBlocks(b disk.BlockNo) []disk.BlockNo {
	en, ok := fs.X.Lookup(b)
	if !ok || en.State != xn.StateResident {
		return nil
	}
	data := fs.X.PageData(b)
	var out []disk.BlockNo
	if en.Tmpl == fs.DirT {
		if next := DirNext(data); next != 0 {
			out = append(out, disk.BlockNo(next))
		}
		for i := 0; i < SlotsPerBlock; i++ {
			if data[SlotOff(i)] == 0 {
				continue
			}
			in := DecodeSlot(data, i)
			for _, ext := range in.Ext {
				for j := uint32(0); j < ext.Count; j++ {
					out = append(out, disk.BlockNo(ext.Start+uint64(j)))
				}
			}
			if in.Ind != 0 {
				out = append(out, disk.BlockNo(in.Ind))
			}
		}
	} else if en.Tmpl == fs.IndT {
		for _, ext := range decodeIndirect(data) {
			for j := uint32(0); j < ext.Count; j++ {
				out = append(out, disk.BlockNo(ext.Start+uint64(j)))
			}
		}
	}
	return out
}

// Create makes a new empty file.
func (fs *FS) Create(e *kernel.Env, path string, uid, gid, mode uint32) (Ref, error) {
	head, name, err := fs.walkDir(e, path)
	if err != nil {
		return Ref{}, err
	}
	if len(name) > MaxNameLen {
		return Ref{}, ErrNameLen
	}
	// Name-uniqueness guarantee (Section 4.5): scan the chain.
	if _, _, err := fs.findEntry(e, head, xn.NoParent, name); err == nil {
		return Ref{}, ErrExists
	}
	blk, slot, err := fs.freeSlot(e, head)
	if err != nil {
		return Ref{}, err
	}
	in := Inode{
		Used: true, Kind: KindFile, Name: name,
		UID: uid, GID: gid, Mode: mode,
		MTime: uint32(fs.X.K.Now().Seconds()),
		Gen:   fs.nextGen(),
	}
	if err := fs.X.Modify(e, blk, []xn.Mod{{Off: SlotOff(slot), Bytes: EncodeSlot(in)}}); err != nil {
		return Ref{}, err
	}
	ref := Ref{Dir: blk, Slot: slot, Gen: in.Gen}
	fs.nameCache[path] = ref
	fs.touchItable(e, ref, true)
	fs.syncMeta(e, blk)
	return ref, nil
}

// Mkdir creates a directory: a slot in the parent plus a freshly
// allocated, initialized directory block owned by the parent block.
func (fs *FS) Mkdir(e *kernel.Env, path string, uid, gid, mode uint32) error {
	head, name, err := fs.walkDir(e, path)
	if err != nil {
		return err
	}
	if len(name) > MaxNameLen {
		return ErrNameLen
	}
	if _, _, err := fs.findEntry(e, head, xn.NoParent, name); err == nil {
		return ErrExists
	}
	blk, slot, err := fs.freeSlot(e, head)
	if err != nil {
		return err
	}
	nb, ok := fs.X.FindFree(blk+1, 1)
	if !ok {
		return xn.ErrNotFree
	}
	in := Inode{
		Used: true, Kind: KindDir, Name: name,
		UID: uid, GID: gid, Mode: mode,
		MTime: uint32(fs.X.K.Now().Seconds()),
		Gen:   fs.nextGen(),
	}
	in.Ext[0] = Extent{Start: uint64(nb), Count: 1}
	if err := fs.X.Alloc(e, blk, []xn.Mod{{Off: SlotOff(slot), Bytes: EncodeSlot(in)}},
		udf.Extent{Start: int64(nb), Count: 1, Type: int64(fs.DirT)}); err != nil {
		return err
	}
	if err := fs.X.InitMetadata(e, nb, EncodeDirHeader(uid, gid, mode)); err != nil {
		return err
	}
	ref := Ref{Dir: blk, Slot: slot, Gen: in.Gen}
	fs.touchItable(e, ref, true)
	fs.syncMeta(e, nb, blk)
	return nil
}

// Readdir lists the entries of the directory at path.
func (fs *FS) Readdir(e *kernel.Env, path string) ([]Inode, error) {
	comps := split(path)
	head := fs.Root
	if len(comps) > 0 {
		_, in, err := fs.Lookup(e, path)
		if err != nil {
			return nil, err
		}
		if in.Kind != KindDir {
			return nil, ErrNotDir
		}
		head = disk.BlockNo(in.Ext[0].Start)
	}
	var out []Inode
	blk := head
	var par disk.BlockNo = xn.NoParent
	for {
		if err := fs.ensureDir(e, blk, par); err != nil {
			return nil, err
		}
		data := fs.dirData(blk)
		e.Use(sim.TouchCost(sim.DiskBlockSize / 8))
		for i := 0; i < SlotsPerBlock; i++ {
			if data[SlotOff(i)] != 0 {
				out = append(out, DecodeSlot(data, i))
			}
		}
		next := DirNext(data)
		if next == 0 {
			return out, nil
		}
		par = blk
		blk = disk.BlockNo(next)
	}
}

// Symlink creates a symbolic link at path whose data block holds the
// target path. Structurally the link is a one-block file (so the
// owns-udf's file branch covers it); only the slot kind differs.
func (fs *FS) Symlink(e *kernel.Env, target, path string, uid, gid uint32) error {
	ref, err := fs.Create(e, path, uid, gid, 0777)
	if err != nil {
		return err
	}
	if _, err := fs.WriteAt(e, ref, 0, []byte(target)); err != nil {
		return err
	}
	in := DecodeSlot(fs.dirData(ref.Dir), ref.Slot)
	in.Kind = KindLink
	if err := fs.X.Modify(e, ref.Dir, []xn.Mod{{Off: SlotOff(ref.Slot), Bytes: EncodeSlot(in)}}); err != nil {
		return err
	}
	fs.syncMeta(e, ref.Dir)
	return nil
}

// Chmod changes the permission bits of the entry at path (following a
// final-component symlink, as POSIX chmod does). For a directory the
// mode is also mirrored into every block header of its chain, which is
// where the acl-udf reads it.
func (fs *FS) Chmod(e *kernel.Env, path string, mode uint32) error {
	modeB := make([]byte, 4)
	binary.LittleEndian.PutUint32(modeB, mode)
	if len(split(path)) == 0 {
		if err := fs.ensureDir(e, fs.Root, xn.NoParent); err != nil {
			return err
		}
		if err := fs.X.Modify(e, fs.Root, []xn.Mod{{Off: hoMode, Bytes: modeB}}); err != nil {
			return err
		}
		fs.syncMeta(e, fs.Root)
		return nil
	}
	ref, in, err := fs.Lookup(e, path)
	if err != nil {
		return err
	}
	in.Mode = mode
	if err := fs.X.Modify(e, ref.Dir, []xn.Mod{{Off: SlotOff(ref.Slot), Bytes: EncodeSlot(in)}}); err != nil {
		return err
	}
	if in.Kind == KindDir {
		blk, par := disk.BlockNo(in.Ext[0].Start), ref.Dir
		for blk != 0 {
			if err := fs.ensureDir(e, blk, par); err != nil {
				return err
			}
			if err := fs.X.Modify(e, blk, []xn.Mod{{Off: hoMode, Bytes: modeB}}); err != nil {
				return err
			}
			par = blk
			blk = disk.BlockNo(DirNext(fs.dirData(blk)))
		}
	}
	fs.touchItable(e, ref, true)
	fs.syncMeta(e, ref.Dir)
	return nil
}

// Rename renames within a directory via a slot update; a cross-
// directory rename degrades to copy-and-delete at the libOS level.
func (fs *FS) Rename(e *kernel.Env, oldPath, newPath string) error {
	oldHead, oldName, err := fs.walkDir(e, oldPath)
	if err != nil {
		return err
	}
	newHead, newName, err := fs.walkDir(e, newPath)
	if err != nil {
		return err
	}
	if len(newName) > MaxNameLen {
		return ErrNameLen
	}
	if oldHead != newHead {
		return fmt.Errorf("cffs: cross-directory rename not supported at this layer")
	}
	ref, in, err := fs.findEntry(e, oldHead, xn.NoParent, oldName)
	if err != nil {
		return err
	}
	if _, _, err := fs.findEntry(e, newHead, xn.NoParent, newName); err == nil {
		return ErrExists
	}
	in.Name = newName
	if err := fs.X.Modify(e, ref.Dir, []xn.Mod{{Off: SlotOff(ref.Slot), Bytes: EncodeSlot(in)}}); err != nil {
		return err
	}
	delete(fs.nameCache, oldPath) // implicit name-cache update
	if in.Kind == KindDir {
		// Every cached path under the old name now resolves through a
		// name that no longer exists; drop the whole subtree.
		prefix := "/" + strings.Join(split(oldPath), "/") + "/"
		for k := range fs.nameCache {
			if strings.HasPrefix("/"+strings.Join(split(k), "/")+"/", prefix) {
				delete(fs.nameCache, k)
			}
		}
	}
	fs.nameCache[newPath] = ref
	fs.touchItable(e, ref, true)
	fs.syncMeta(e, ref.Dir)
	return nil
}

// Sync flushes all dirty state in dependency order.
func (fs *FS) Sync(e *kernel.Env) error { return fs.X.Sync(e) }
