package cffs

import (
	"xok/internal/cap"
	"xok/internal/disk"
	"xok/internal/kernel"
	"xok/internal/xn"
)

// AuditImage is the post-crash recovery audit: mount a crashed disk
// image on a forensic machine, let XN's reachability GC rebuild the
// free map (Section 4.4), and return every violation found — a failed
// mount or attach, XN bookkeeping inconsistencies, and fsck structural
// errors. An empty slice means the image recovered clean. The result
// is deterministic for a given image, so same-seed crash runs digest
// identically.
//
// AuditImage takes ownership of img: the blocks are mounted in place on
// the forensic machine (no deep copy) and recycled with it when the
// audit finishes. Callers that need the image afterwards must pass a
// copy.
func AuditImage(img disk.Image, diskBlocks int64, fsName string, fsCfg Config) []string {
	k := kernel.New(kernel.Config{Name: "audit", MemPages: 4096, DiskSize: diskBlocks})
	k.Disk.RestoreOwned(img)
	x, err := xn.Mount(k)
	if err != nil {
		return []string{"mount: " + err.Error()}
	}
	var errs []string
	errs = append(errs, x.CheckConsistency()...)
	k.Spawn("fsck", func(e *kernel.Env) {
		e.Creds = cap.UnixCreds(0)
		fs, aerr := Attach(e, x, fsName, fsCfg)
		if aerr != nil {
			errs = append(errs, "attach: "+aerr.Error())
			return
		}
		report, ferr := fs.Fsck(e)
		if ferr != nil {
			errs = append(errs, "fsck: "+ferr.Error())
			return
		}
		errs = append(errs, report.Errors...)
	})
	k.Run()
	k.Release()
	return errs
}
