package cffs

import (
	"encoding/binary"
	"fmt"

	"xok/internal/disk"
	"xok/internal/kernel"
	"xok/internal/sim"
	"xok/internal/udf"
	"xok/internal/xn"
)

// File data paths: ReadAt / WriteAt move bytes between caller buffers
// and cached pages; extent allocation implements the co-location
// policy. Lower-level consumers (XCP, Cheetah's XIO) use FileExtents
// and the XN registry directly to avoid the copies entirely.

// RefInode re-reads the inode a descriptor-held Ref points at,
// verifying the reference still names the same incarnation of the
// file. After unlink the slot may be unused, recycled for another file
// (generation mismatch), or its whole directory block freed and
// reallocated as something else (ensureDir fails); all three collapse
// to ErrStale so I/O through a dead descriptor fails deterministically
// instead of reading — or corrupting — whatever reused the blocks.
func (fs *FS) RefInode(e *kernel.Env, ref Ref) (Inode, error) {
	if err := fs.ensureDir(e, ref.Dir, xn.NoParent); err != nil {
		return Inode{}, ErrStale
	}
	in := DecodeSlot(fs.dirData(ref.Dir), ref.Slot)
	if !in.Used || in.Gen != ref.Gen {
		return Inode{}, ErrStale
	}
	return in, nil
}

// decodeIndirect parses an indirect block's extent table.
func decodeIndirect(data []byte) []Extent {
	n := int(binary.LittleEndian.Uint32(data[0:]))
	if n > IndMaxEntries {
		n = IndMaxEntries
	}
	out := make([]Extent, 0, n)
	for i := 0; i < n; i++ {
		off := IndEntriesOff + i*IndEntrySize
		out = append(out, Extent{
			Start: binary.LittleEndian.Uint64(data[off:]),
			Count: binary.LittleEndian.Uint32(data[off+8:]),
		})
	}
	return out
}

// blockCount sums an extent list.
func blockCount(exts []Extent) uint32 {
	var n uint32
	for _, e := range exts {
		n += e.Count
	}
	return n
}

// ensureIndCached loads the file's indirect block.
func (fs *FS) ensureIndCached(e *kernel.Env, ref Ref, ind disk.BlockNo) error {
	if fs.X.Cached(ind) {
		fs.X.Pin(ind)
		return nil
	}
	if _, ok := fs.X.Lookup(ind); !ok {
		if err := fs.X.Insert(e, ref.Dir, udf.Extent{Start: int64(ind), Count: 1, Type: int64(fs.IndT)}); err != nil {
			return err
		}
	}
	if err := fs.X.Read(e, []disk.BlockNo{ind}, nil); err != nil {
		return err
	}
	fs.X.Pin(ind)
	return nil
}

// FileExtents returns the file's full extent list in order (direct
// then indirect). Exposed for zero-touch consumers like XCP.
func (fs *FS) FileExtents(e *kernel.Env, ref Ref) ([]Extent, error) {
	if err := fs.ensureDir(e, ref.Dir, xn.NoParent); err != nil {
		return nil, err
	}
	in := DecodeSlot(fs.dirData(ref.Dir), ref.Slot)
	var out []Extent
	for _, ext := range in.Ext {
		if ext.Count > 0 {
			out = append(out, ext)
		}
	}
	if in.Ind != 0 {
		if err := fs.ensureIndCached(e, ref, disk.BlockNo(in.Ind)); err != nil {
			return nil, err
		}
		out = append(out, decodeIndirect(fs.X.PageData(disk.BlockNo(in.Ind)))...)
	}
	return out, nil
}

// blockAt maps a file block index to its disk block.
func blockAt(exts []Extent, idx uint32) (disk.BlockNo, bool) {
	for _, e := range exts {
		if idx < e.Count {
			return disk.BlockNo(e.Start + uint64(idx)), true
		}
		idx -= e.Count
	}
	return 0, false
}

// owner returns which metadata block owns file block index idx: the
// directory block (direct extents) or the indirect block.
func (fs *FS) ownerOf(in Inode, ref Ref, idx uint32) disk.BlockNo {
	var direct uint32
	for _, e := range in.Ext {
		direct += e.Count
	}
	if idx < direct || in.Ind == 0 {
		return ref.Dir
	}
	return disk.BlockNo(in.Ind)
}

// ReadAt reads up to len(buf) bytes at offset off, returning the count.
func (fs *FS) ReadAt(e *kernel.Env, ref Ref, off int64, buf []byte) (int, error) {
	e.LibCall(100)
	if off < 0 {
		return 0, ErrInvalOp
	}
	in, err := fs.RefInode(e, ref)
	if err != nil {
		return 0, err
	}
	size := int64(in.Size)
	if off >= size {
		return 0, nil
	}
	if off+int64(len(buf)) > size {
		buf = buf[:size-off]
	}
	exts, err := fs.FileExtents(e, ref)
	if err != nil {
		return 0, err
	}

	// Gather the needed blocks and fetch the missing ones in one
	// batched, sorted read (contiguous runs coalesce at the disk).
	first := uint32(off / sim.DiskBlockSize)
	last := uint32((off + int64(len(buf)) - 1) / sim.DiskBlockSize)
	var need []disk.BlockNo
	for idx := first; idx <= last; idx++ {
		b, ok := blockAt(exts, idx)
		if !ok {
			return 0, fmt.Errorf("cffs: hole at block %d", idx)
		}
		if !fs.X.Cached(b) {
			if _, inReg := fs.X.Lookup(b); !inReg {
				owner := fs.ownerOf(in, ref, idx)
				if err := fs.X.Insert(e, owner, udf.Extent{Start: int64(b), Count: 1, Type: int64(fs.DataT)}); err != nil {
					return 0, err
				}
			}
			need = append(need, b)
		}
	}
	if len(need) > 0 {
		if err := fs.X.Read(e, need, nil); err != nil {
			return 0, err
		}
	}

	// Copy out. Under severe cache pressure a block that was resident
	// at gather time may have been recycled while the misses were
	// read; fetch it again.
	n := 0
	for idx := first; idx <= last; idx++ {
		b, _ := blockAt(exts, idx)
		if !fs.X.Cached(b) {
			if _, inReg := fs.X.Lookup(b); !inReg {
				owner := fs.ownerOf(in, ref, idx)
				if err := fs.X.Insert(e, owner, udf.Extent{Start: int64(b), Count: 1, Type: int64(fs.DataT)}); err != nil {
					return n, err
				}
			}
			if err := fs.X.Read(e, []disk.BlockNo{b}, nil); err != nil {
				return n, err
			}
		}
		data := fs.X.PageData(b)
		lo := int64(0)
		if idx == first {
			lo = off % sim.DiskBlockSize
		}
		hi := int64(sim.DiskBlockSize)
		if rem := off + int64(len(buf)) - int64(idx)*sim.DiskBlockSize; rem < hi {
			hi = rem
		}
		n += copy(buf[n:], data[lo:hi])
	}
	e.Use(sim.CopyCost(n))
	fs.X.K.Stats.Add(sim.CtrBytesCopied, int64(n))
	return n, nil
}

// appendExtentMods builds the slot modification that records a new or
// extended direct extent. Returns nil if no direct slot can take it.
func appendDirectMods(in Inode, ref Ref, start disk.BlockNo, count uint32) ([]xn.Mod, bool) {
	for i := 0; i < DirectExtents; i++ {
		ext := in.Ext[i]
		if ext.Count > 0 && ext.Start+uint64(ext.Count) == uint64(start) {
			in.Ext[i].Count += count
			return []xn.Mod{{Off: SlotOff(ref.Slot), Bytes: EncodeSlot(in)}}, true
		}
		if ext.Count == 0 {
			in.Ext[i] = Extent{Start: uint64(start), Count: count}
			return []xn.Mod{{Off: SlotOff(ref.Slot), Bytes: EncodeSlot(in)}}, true
		}
	}
	return nil, false
}

// growFile allocates `need` more blocks for the file, co-locating near
// the directory (or after the last extent) per policy. Returns the
// updated inode.
func (fs *FS) growFile(e *kernel.Env, ref Ref, in Inode, need uint32) (Inode, error) {
	for need > 0 {
		// Refresh the slot image: earlier loop iterations (and any
		// sharer) may have changed it.
		in = DecodeSlot(fs.dirData(ref.Dir), ref.Slot)
		exts, err := fs.FileExtents(e, ref)
		if err != nil {
			return in, err
		}
		// Pick a target: extend the tail, or start near the directory
		// (C-FFS) / at the roaming cursor (FFS profile).
		var hint disk.BlockNo
		if len(exts) > 0 {
			tail := exts[len(exts)-1]
			hint = disk.BlockNo(tail.Start + uint64(tail.Count))
		} else if fs.Cfg.Colocate {
			hint = ref.Dir + 1
		} else {
			hint = fs.dataCursor
			fs.dataCursor += 64
			if int64(fs.dataCursor) >= fs.X.D.NumBlocks()-64 {
				fs.dataCursor = fs.Root + 512
			}
		}
		start, ok := fs.X.FindFree(hint, 1)
		if !ok {
			return in, xn.ErrNotFree
		}
		// How long a contiguous run can we take from here?
		run := uint32(1)
		for run < need && fs.X.IsFree(start+disk.BlockNo(run)) {
			run++
		}

		if mods, ok := appendDirectMods(in, ref, start, run); ok {
			if err := fs.X.Alloc(e, ref.Dir, mods,
				udf.Extent{Start: int64(start), Count: int64(run), Type: int64(fs.DataT)}); err != nil {
				return in, err
			}
		} else {
			// Spill to the indirect block.
			if in.Ind == 0 {
				ib, ok := fs.X.FindFree(start+disk.BlockNo(run), 1)
				if !ok {
					return in, xn.ErrNotFree
				}
				ni := in
				ni.Ind = uint64(ib)
				if err := fs.X.Alloc(e, ref.Dir,
					[]xn.Mod{{Off: SlotOff(ref.Slot), Bytes: EncodeSlot(ni)}},
					udf.Extent{Start: int64(ib), Count: 1, Type: int64(fs.IndT)}); err != nil {
					return in, err
				}
				zero := make([]byte, 8)
				if err := fs.X.InitMetadata(e, ib, zero); err != nil {
					return in, err
				}
				in = ni
			}
			ind := disk.BlockNo(in.Ind)
			if err := fs.ensureIndCached(e, ref, ind); err != nil {
				return in, err
			}
			table := decodeIndirect(fs.X.PageData(ind))
			// Merge with the last entry when contiguous.
			if n := len(table); n > 0 && table[n-1].Start+uint64(table[n-1].Count) == uint64(start) {
				cnt := make([]byte, 4)
				binary.LittleEndian.PutUint32(cnt, table[n-1].Count+run)
				off := IndEntriesOff + (n-1)*IndEntrySize + 8
				if err := fs.X.Alloc(e, ind, []xn.Mod{{Off: off, Bytes: cnt}},
					udf.Extent{Start: int64(start), Count: int64(run), Type: int64(fs.DataT)}); err != nil {
					return in, err
				}
			} else {
				if len(table) >= IndMaxEntries {
					return in, ErrFileLimit
				}
				entry := make([]byte, IndEntrySize)
				binary.LittleEndian.PutUint64(entry[0:], uint64(start))
				binary.LittleEndian.PutUint32(entry[8:], run)
				cnt := make([]byte, 4)
				binary.LittleEndian.PutUint32(cnt, uint32(len(table)+1))
				mods := []xn.Mod{
					{Off: IndEntriesOff + len(table)*IndEntrySize, Bytes: entry},
					{Off: 0, Bytes: cnt},
				}
				if err := fs.X.Alloc(e, ind, mods,
					udf.Extent{Start: int64(start), Count: int64(run), Type: int64(fs.DataT)}); err != nil {
					return in, err
				}
			}
		}
		need -= run
	}
	return DecodeSlot(fs.dirData(ref.Dir), ref.Slot), nil
}

// Preallocate grows the file to hold size bytes (allocating blocks
// with the usual co-location policy) and records the size, without
// writing any data — the XCP path that overlaps allocation with reads.
func (fs *FS) Preallocate(e *kernel.Env, ref Ref, size int64) error {
	e.LibCall(100)
	if err := fs.ensureDir(e, ref.Dir, xn.NoParent); err != nil {
		return err
	}
	in := DecodeSlot(fs.dirData(ref.Dir), ref.Slot)
	if !in.Used || in.Kind != KindFile {
		return ErrNotFound
	}
	exts, err := fs.FileExtents(e, ref)
	if err != nil {
		return err
	}
	want := uint32((size + sim.DiskBlockSize - 1) / sim.DiskBlockSize)
	if have := blockCount(exts); want > have {
		if in, err = fs.growFile(e, ref, in, want-have); err != nil {
			return err
		}
	}
	if int64(in.Size) < size {
		in.Size = uint32(size)
		if err := fs.X.Modify(e, ref.Dir, []xn.Mod{{Off: SlotOff(ref.Slot), Bytes: EncodeSlot(in)}}); err != nil {
			return err
		}
	}
	return nil
}

// WriteAt writes data at offset off, allocating blocks as needed, and
// updates size and mtime ("modification times are updated when file
// data are changed" — C-FFS implicit updates, Section 4.5).
func (fs *FS) WriteAt(e *kernel.Env, ref Ref, off int64, data []byte) (int, error) {
	e.LibCall(100)
	if off < 0 {
		return 0, ErrInvalOp
	}
	if len(data) == 0 {
		return 0, nil
	}
	in, err := fs.RefInode(e, ref)
	if err != nil {
		return 0, err
	}
	if in.Kind != KindFile {
		return 0, ErrIsDir
	}
	end := off + int64(len(data))
	if end > int64(IndMaxEntries+DirectExtents)*sim.DiskBlockSize*64 {
		return 0, ErrFileLimit
	}

	exts, err := fs.FileExtents(e, ref)
	if err != nil {
		return 0, err
	}
	have := blockCount(exts)
	wantBlocks := uint32((end + sim.DiskBlockSize - 1) / sim.DiskBlockSize)
	if wantBlocks > have {
		in, err = fs.growFile(e, ref, in, wantBlocks-have)
		if err != nil {
			return 0, err
		}
		exts, err = fs.FileExtents(e, ref)
		if err != nil {
			return 0, err
		}
		// Blocks this grow allocated that the copy loop below will not
		// touch are file holes. Their on-disk content is garbage:
		// attach zero pages and mark them dirty so reads see the UNIX
		// zeros contract and the next sync initializes them on disk —
		// untainting the metadata that points at them (XN refuses to
		// persist pointers to uninitialized blocks).
		for idx := have; idx < uint32(off/sim.DiskBlockSize); idx++ {
			b, ok := blockAt(exts, idx)
			if !ok {
				return 0, fmt.Errorf("cffs: missing block %d after grow", idx)
			}
			if en, inReg := fs.X.Lookup(b); inReg && en.State == xn.StateResident {
				continue
			}
			if _, err := fs.X.AttachPage(e, b); err != nil {
				return 0, err
			}
			if err := fs.X.MarkDirty(e, b); err != nil {
				return 0, err
			}
		}
	}

	first := uint32(off / sim.DiskBlockSize)
	last := uint32((end - 1) / sim.DiskBlockSize)
	n := 0
	for idx := first; idx <= last; idx++ {
		b, ok := blockAt(exts, idx)
		if !ok {
			return n, fmt.Errorf("cffs: missing block %d after grow", idx)
		}
		lo := int64(0)
		if idx == first {
			lo = off % sim.DiskBlockSize
		}
		hi := int64(sim.DiskBlockSize)
		if rem := end - int64(idx)*sim.DiskBlockSize; rem < hi {
			hi = rem
		}
		fullBlock := lo == 0 && hi == sim.DiskBlockSize

		en, inReg := fs.X.Lookup(b)
		switch {
		case inReg && en.State == xn.StateResident:
			// cached: write through the mapping
		case inReg && en.Uninit:
			if _, err := fs.X.AttachPage(e, b); err != nil {
				return n, err
			}
		case fullBlock:
			// Full overwrite of an uncached block: no read needed.
			if !inReg {
				owner := fs.ownerOf(in, ref, idx)
				if err := fs.X.Insert(e, owner, udf.Extent{Start: int64(b), Count: 1, Type: int64(fs.DataT)}); err != nil {
					return n, err
				}
			}
			if _, err := fs.X.AttachPage(e, b); err != nil {
				return n, err
			}
		default:
			// Partial overwrite: read-modify-write.
			if !inReg {
				owner := fs.ownerOf(in, ref, idx)
				if err := fs.X.Insert(e, owner, udf.Extent{Start: int64(b), Count: 1, Type: int64(fs.DataT)}); err != nil {
					return n, err
				}
			}
			if err := fs.X.Read(e, []disk.BlockNo{b}, nil); err != nil {
				return n, err
			}
		}
		page := fs.X.PageData(b)
		n += copy(page[lo:hi], data[n:])
		if err := fs.X.MarkDirty(e, b); err != nil {
			return n, err
		}
	}
	e.Use(sim.CopyCost(n))
	fs.X.K.Stats.Add(sim.CtrBytesCopied, int64(n))

	// Implicit size/mtime update.
	if end > int64(in.Size) {
		in.Size = uint32(end)
	}
	in.MTime = uint32(fs.X.K.Now().Seconds())
	if err := fs.X.Modify(e, ref.Dir, []xn.Mod{{Off: SlotOff(ref.Slot), Bytes: EncodeSlot(in)}}); err != nil {
		return n, err
	}
	return n, nil
}

// Unlink removes a file and deallocates its blocks (indirect contents
// first, then the indirect block, then the direct extents, then the
// slot).
func (fs *FS) Unlink(e *kernel.Env, path string) error {
	ref, in, err := fs.LookupNoFollow(e, path) // unlink removes the link itself
	if err != nil {
		return err
	}
	if in.Kind == KindDir {
		return ErrIsDir
	}
	if in.Ind != 0 {
		ind := disk.BlockNo(in.Ind)
		if err := fs.ensureIndCached(e, ref, ind); err != nil {
			return err
		}
		table := decodeIndirect(fs.X.PageData(ind))
		for i := len(table) - 1; i >= 0; i-- {
			cnt := make([]byte, 4)
			binary.LittleEndian.PutUint32(cnt, uint32(i))
			if err := fs.X.Dealloc(e, ind, []xn.Mod{{Off: 0, Bytes: cnt}},
				udf.Extent{Start: int64(table[i].Start), Count: int64(table[i].Count), Type: int64(fs.DataT)}); err != nil {
				return err
			}
		}
		ni := in
		ni.Ind = 0
		if err := fs.X.Dealloc(e, ref.Dir,
			[]xn.Mod{{Off: SlotOff(ref.Slot), Bytes: EncodeSlot(ni)}},
			udf.Extent{Start: int64(ind), Count: 1, Type: int64(fs.IndT)}); err != nil {
			return err
		}
		in = ni
	}
	for i := DirectExtents - 1; i >= 0; i-- {
		if in.Ext[i].Count == 0 {
			continue
		}
		ext := in.Ext[i]
		ni := in
		ni.Ext[i] = Extent{}
		if err := fs.X.Dealloc(e, ref.Dir,
			[]xn.Mod{{Off: SlotOff(ref.Slot), Bytes: EncodeSlot(ni)}},
			udf.Extent{Start: int64(ext.Start), Count: int64(ext.Count), Type: int64(fs.DataT)}); err != nil {
			return err
		}
		in = ni
	}
	if err := fs.X.Modify(e, ref.Dir,
		[]xn.Mod{{Off: SlotOff(ref.Slot), Bytes: make([]byte, SlotSize)}}); err != nil {
		return err
	}
	delete(fs.nameCache, path) // implicit name-cache update
	fs.touchItable(e, ref, true)
	fs.syncMeta(e, ref.Dir)
	return nil
}

// Rmdir removes an empty directory.
func (fs *FS) Rmdir(e *kernel.Env, path string) error {
	ref, in, err := fs.LookupNoFollow(e, path) // a link to a dir is ENOTDIR
	if err != nil {
		return err
	}
	if in.Kind != KindDir {
		return ErrNotDir
	}
	head := disk.BlockNo(in.Ext[0].Start)
	// Walk the chain: every block must be slot-free.
	var chain []disk.BlockNo
	blk, par := head, ref.Dir
	for {
		if err := fs.ensureDir(e, blk, par); err != nil {
			return err
		}
		chain = append(chain, blk)
		data := fs.dirData(blk)
		for i := 0; i < SlotsPerBlock; i++ {
			if data[SlotOff(i)] != 0 {
				return ErrNotEmpty
			}
		}
		next := DirNext(data)
		if next == 0 {
			break
		}
		par = blk
		blk = disk.BlockNo(next)
	}
	// Release continuation blocks tail-first (each owned by its
	// predecessor), then the head from the parent slot.
	for i := len(chain) - 1; i >= 1; i-- {
		zero := make([]byte, 8)
		if err := fs.X.Dealloc(e, chain[i-1], []xn.Mod{{Off: hoNext, Bytes: zero}},
			udf.Extent{Start: int64(chain[i]), Count: 1, Type: int64(fs.DirT)}); err != nil {
			return err
		}
	}
	ni := in
	ni.Ext[0] = Extent{}
	ni.Used = false
	ni.Name = ""
	ni.Kind = 0
	if err := fs.X.Dealloc(e, ref.Dir,
		[]xn.Mod{{Off: SlotOff(ref.Slot), Bytes: EncodeSlot(ni)}},
		udf.Extent{Start: int64(head), Count: 1, Type: int64(fs.DirT)}); err != nil {
		return err
	}
	delete(fs.nameCache, path)
	fs.touchItable(e, ref, true)
	fs.syncMeta(e, ref.Dir)
	return nil
}
