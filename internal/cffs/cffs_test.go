package cffs

import (
	"bytes"
	"errors"
	"fmt"
	"testing"

	"xok/internal/cap"
	"xok/internal/kernel"
	"xok/internal/sim"
	"xok/internal/xn"
)

type world struct {
	k  *kernel.Kernel
	x  *xn.XN
	fs *FS
}

func newWorld(t *testing.T, cfg Config) *world {
	t.Helper()
	k := kernel.New(kernel.Config{Name: "xok", MemPages: 8192, DiskSize: 65536})
	x := xn.New(k)
	w := &world{k: k, x: x}
	w.run(t, "mkfs", func(e *kernel.Env) error {
		fs, err := Mkfs(e, x, "cffs", cfg)
		if err != nil {
			return err
		}
		w.fs = fs
		return nil
	})
	return w
}

func (w *world) run(t *testing.T, name string, body func(*kernel.Env) error) {
	t.Helper()
	w.k.Spawn(name, func(e *kernel.Env) {
		if e.Creds == nil {
			e.Creds = cap.UnixCreds(0)
		}
		if err := body(e); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	})
	w.k.Run()
}

func pattern(n int, seed byte) []byte {
	b := make([]byte, n)
	for i := range b {
		b[i] = byte(i)*7 + seed
	}
	return b
}

func TestCreateWriteReadSmall(t *testing.T) {
	w := newWorld(t, DefaultConfig())
	data := pattern(1000, 3)
	w.run(t, "rw", func(e *kernel.Env) error {
		ref, err := w.fs.Create(e, "/hello.txt", 100, 100, 6)
		if err != nil {
			return err
		}
		if n, err := w.fs.WriteAt(e, ref, 0, data); err != nil || n != len(data) {
			return fmt.Errorf("write = %d, %v", n, err)
		}
		buf := make([]byte, len(data))
		if n, err := w.fs.ReadAt(e, ref, 0, buf); err != nil || n != len(data) {
			return fmt.Errorf("read = %d, %v", n, err)
		}
		if !bytes.Equal(buf, data) {
			t.Error("read data mismatch")
		}
		in, err := w.fs.Stat(e, "/hello.txt")
		if err != nil {
			return err
		}
		if in.Size != 1000 || in.UID != 100 || in.Kind != KindFile {
			t.Errorf("stat = %+v", in)
		}
		return nil
	})
}

func TestLargeFileSpillsToIndirect(t *testing.T) {
	w := newWorld(t, DefaultConfig())
	// Force extent fragmentation so the file needs >3 extents: allocate
	// a large file while a competitor grabs interleaving blocks.
	big := pattern(300*sim.DiskBlockSize, 1) // 300 blocks = 1.2 MB
	w.run(t, "big", func(e *kernel.Env) error {
		ref, err := w.fs.Create(e, "/big.bin", 0, 0, 6)
		if err != nil {
			return err
		}
		// Write in interleaved chunks with other files to fragment.
		chunk := 10 * sim.DiskBlockSize
		for off := 0; off < len(big); off += chunk {
			end := off + chunk
			if end > len(big) {
				end = len(big)
			}
			if _, err := w.fs.WriteAt(e, ref, int64(off), big[off:end]); err != nil {
				return err
			}
			if off%(chunk*4) == 0 {
				name := fmt.Sprintf("/frag%d", off)
				fref, err := w.fs.Create(e, name, 0, 0, 6)
				if err != nil {
					return err
				}
				if _, err := w.fs.WriteAt(e, fref, 0, pattern(sim.DiskBlockSize, byte(off))); err != nil {
					return err
				}
			}
		}
		in, err := w.fs.Stat(e, "/big.bin")
		if err != nil {
			return err
		}
		if in.Ind == 0 {
			t.Error("large fragmented file did not use the indirect block")
		}
		buf := make([]byte, len(big))
		if _, err := w.fs.ReadAt(e, ref, 0, buf); err != nil {
			return err
		}
		if !bytes.Equal(buf, big) {
			t.Error("large file readback mismatch")
		}
		return nil
	})
}

func TestPersistenceAcrossRemount(t *testing.T) {
	w := newWorld(t, DefaultConfig())
	data := pattern(3*sim.DiskBlockSize+17, 9)
	w.run(t, "write", func(e *kernel.Env) error {
		if err := w.fs.Mkdir(e, "/sub", 0, 0, 7); err != nil {
			return err
		}
		ref, err := w.fs.Create(e, "/sub/file", 0, 0, 6)
		if err != nil {
			return err
		}
		if _, err := w.fs.WriteAt(e, ref, 0, data); err != nil {
			return err
		}
		return w.fs.Sync(e)
	})

	// Simulated reboot: remount XN from the disk image, reattach.
	x2, err := xn.Mount(w.k)
	if err != nil {
		t.Fatal(err)
	}
	w.x = x2
	w.run(t, "reattach", func(e *kernel.Env) error {
		fs2, err := Attach(e, x2, "cffs", DefaultConfig())
		if err != nil {
			return err
		}
		ref, _, err := fs2.Lookup(e, "/sub/file")
		if err != nil {
			return err
		}
		buf := make([]byte, len(data))
		if n, err := fs2.ReadAt(e, ref, 0, buf); err != nil || n != len(data) {
			return fmt.Errorf("read = %d, %v", n, err)
		}
		if !bytes.Equal(buf, data) {
			t.Error("data corrupted across remount")
		}
		return nil
	})
}

func TestUnsyncedDataLostButConsistentAfterCrash(t *testing.T) {
	w := newWorld(t, DefaultConfig())
	w.run(t, "setup", func(e *kernel.Env) error {
		ref, err := w.fs.Create(e, "/durable", 0, 0, 6)
		if err != nil {
			return err
		}
		if _, err := w.fs.WriteAt(e, ref, 0, pattern(100, 1)); err != nil {
			return err
		}
		if err := w.fs.Sync(e); err != nil {
			return err
		}
		// Written but never synced: must vanish at crash, without
		// corrupting anything.
		ref2, err := w.fs.Create(e, "/ephemeral", 0, 0, 6)
		if err != nil {
			return err
		}
		_, err = w.fs.WriteAt(e, ref2, 0, pattern(5000, 2))
		return err
	})
	x2, err := xn.Mount(w.k)
	if err != nil {
		t.Fatal(err)
	}
	free := x2.FreeBlocks()
	w.run(t, "verify", func(e *kernel.Env) error {
		fs2, err := Attach(e, x2, "cffs", DefaultConfig())
		if err != nil {
			return err
		}
		if _, _, err := fs2.Lookup(e, "/durable"); err != nil {
			t.Errorf("durable file lost: %v", err)
		}
		if _, _, err := fs2.Lookup(e, "/ephemeral"); !errors.Is(err, ErrNotFound) {
			t.Errorf("ephemeral file err = %v, want ErrNotFound", err)
		}
		return nil
	})
	if x2.FreeBlocks() != free {
		t.Error("lookup changed the free map")
	}
}

func TestMkdirTreeAndReaddir(t *testing.T) {
	w := newWorld(t, DefaultConfig())
	w.run(t, "tree", func(e *kernel.Env) error {
		if err := w.fs.Mkdir(e, "/a", 0, 0, 7); err != nil {
			return err
		}
		if err := w.fs.Mkdir(e, "/a/b", 0, 0, 7); err != nil {
			return err
		}
		for i := 0; i < 5; i++ {
			if _, err := w.fs.Create(e, fmt.Sprintf("/a/b/f%d", i), 0, 0, 6); err != nil {
				return err
			}
		}
		ents, err := w.fs.Readdir(e, "/a/b")
		if err != nil {
			return err
		}
		if len(ents) != 5 {
			t.Errorf("readdir = %d entries, want 5", len(ents))
		}
		ents, err = w.fs.Readdir(e, "/")
		if err != nil {
			return err
		}
		if len(ents) != 1 || ents[0].Name != "a" || ents[0].Kind != KindDir {
			t.Errorf("root readdir = %+v", ents)
		}
		_, err = w.fs.Readdir(e, "/a/b/f0")
		if !errors.Is(err, ErrNotDir) {
			t.Errorf("readdir(file) err = %v", err)
		}
		return nil
	})
}

func TestNameUniquenessEnforced(t *testing.T) {
	w := newWorld(t, DefaultConfig())
	w.run(t, "dup", func(e *kernel.Env) error {
		if _, err := w.fs.Create(e, "/x", 0, 0, 6); err != nil {
			return err
		}
		if _, err := w.fs.Create(e, "/x", 0, 0, 6); !errors.Is(err, ErrExists) {
			t.Errorf("duplicate create err = %v", err)
		}
		if err := w.fs.Mkdir(e, "/x", 0, 0, 7); !errors.Is(err, ErrExists) {
			t.Errorf("mkdir over file err = %v", err)
		}
		return nil
	})
}

func TestDirectoryChainGrowth(t *testing.T) {
	// More files than one block's 31 slots forces continuation blocks.
	w := newWorld(t, DefaultConfig())
	const n = 75
	w.run(t, "many", func(e *kernel.Env) error {
		for i := 0; i < n; i++ {
			if _, err := w.fs.Create(e, fmt.Sprintf("/f%03d", i), 0, 0, 6); err != nil {
				return err
			}
		}
		ents, err := w.fs.Readdir(e, "/")
		if err != nil {
			return err
		}
		if len(ents) != n {
			t.Errorf("readdir = %d, want %d", len(ents), n)
		}
		// All must be findable.
		for i := 0; i < n; i += 7 {
			if _, _, err := w.fs.Lookup(e, fmt.Sprintf("/f%03d", i)); err != nil {
				t.Errorf("lookup f%03d: %v", i, err)
			}
		}
		return nil
	})
}

func TestUnlinkFreesBlocks(t *testing.T) {
	w := newWorld(t, DefaultConfig())
	var before int64
	w.run(t, "cycle", func(e *kernel.Env) error {
		before = w.x.FreeBlocks()
		ref, err := w.fs.Create(e, "/victim", 0, 0, 6)
		if err != nil {
			return err
		}
		if _, err := w.fs.WriteAt(e, ref, 0, pattern(20*sim.DiskBlockSize, 4)); err != nil {
			return err
		}
		if err := w.fs.Unlink(e, "/victim"); err != nil {
			return err
		}
		if _, _, err := w.fs.Lookup(e, "/victim"); !errors.Is(err, ErrNotFound) {
			t.Errorf("lookup after unlink: %v", err)
		}
		// Nothing hit the disk, so everything frees immediately.
		if got := w.x.FreeBlocks(); got != before {
			t.Errorf("free blocks = %d, want %d", got, before)
		}
		return nil
	})
}

func TestUnlinkSyncedFileFreesAfterSync(t *testing.T) {
	w := newWorld(t, DefaultConfig())
	w.run(t, "cycle", func(e *kernel.Env) error {
		ref, err := w.fs.Create(e, "/victim", 0, 0, 6)
		if err != nil {
			return err
		}
		if _, err := w.fs.WriteAt(e, ref, 0, pattern(10*sim.DiskBlockSize, 4)); err != nil {
			return err
		}
		if err := w.fs.Sync(e); err != nil {
			return err
		}
		before := w.x.FreeBlocks()
		if err := w.fs.Unlink(e, "/victim"); err != nil {
			return err
		}
		// The dir block's on-disk copy still points at the data: the
		// blocks sit on the will-free list until the dir is written.
		if w.x.WillFreeCount() == 0 {
			t.Error("expected will-free blocks after unlinking synced file")
		}
		if err := w.fs.Sync(e); err != nil {
			return err
		}
		if w.x.WillFreeCount() != 0 {
			t.Errorf("will-free = %d after sync", w.x.WillFreeCount())
		}
		if got := w.x.FreeBlocks(); got != before+10 {
			t.Errorf("free delta = %d, want 10", got-before)
		}
		return nil
	})
}

func TestRmdir(t *testing.T) {
	w := newWorld(t, DefaultConfig())
	w.run(t, "rmdir", func(e *kernel.Env) error {
		if err := w.fs.Mkdir(e, "/d", 0, 0, 7); err != nil {
			return err
		}
		if _, err := w.fs.Create(e, "/d/f", 0, 0, 6); err != nil {
			return err
		}
		if err := w.fs.Rmdir(e, "/d"); !errors.Is(err, ErrNotEmpty) {
			t.Errorf("rmdir non-empty err = %v", err)
		}
		if err := w.fs.Unlink(e, "/d/f"); err != nil {
			return err
		}
		if err := w.fs.Rmdir(e, "/d"); err != nil {
			return err
		}
		if _, _, err := w.fs.Lookup(e, "/d"); !errors.Is(err, ErrNotFound) {
			t.Errorf("lookup after rmdir: %v", err)
		}
		return nil
	})
}

func TestRenameSameDir(t *testing.T) {
	w := newWorld(t, DefaultConfig())
	w.run(t, "rename", func(e *kernel.Env) error {
		ref, err := w.fs.Create(e, "/old", 0, 0, 6)
		if err != nil {
			return err
		}
		if _, err := w.fs.WriteAt(e, ref, 0, []byte("payload")); err != nil {
			return err
		}
		if err := w.fs.Rename(e, "/old", "/new"); err != nil {
			return err
		}
		if _, _, err := w.fs.Lookup(e, "/old"); !errors.Is(err, ErrNotFound) {
			t.Errorf("old name still resolves: %v", err)
		}
		ref2, _, err := w.fs.Lookup(e, "/new")
		if err != nil {
			return err
		}
		buf := make([]byte, 7)
		if _, err := w.fs.ReadAt(e, ref2, 0, buf); err != nil {
			return err
		}
		if string(buf) != "payload" {
			t.Errorf("renamed content = %q", buf)
		}
		return nil
	})
}

func TestOverwriteInPlace(t *testing.T) {
	w := newWorld(t, DefaultConfig())
	w.run(t, "overwrite", func(e *kernel.Env) error {
		ref, err := w.fs.Create(e, "/f", 0, 0, 6)
		if err != nil {
			return err
		}
		if _, err := w.fs.WriteAt(e, ref, 0, pattern(2*sim.DiskBlockSize, 1)); err != nil {
			return err
		}
		free := w.x.FreeBlocks()
		// Partial overwrite spanning the block boundary.
		patch := []byte("XYZZY")
		if _, err := w.fs.WriteAt(e, ref, sim.DiskBlockSize-2, patch); err != nil {
			return err
		}
		if w.x.FreeBlocks() != free {
			t.Error("in-place overwrite allocated blocks")
		}
		buf := make([]byte, 5)
		if _, err := w.fs.ReadAt(e, ref, sim.DiskBlockSize-2, buf); err != nil {
			return err
		}
		if string(buf) != "XYZZY" {
			t.Errorf("patch = %q", buf)
		}
		return nil
	})
}

func TestColocationKeepsDataNearDirectory(t *testing.T) {
	w := newWorld(t, DefaultConfig())
	w.run(t, "coloc", func(e *kernel.Env) error {
		if err := w.fs.Mkdir(e, "/proj", 0, 0, 7); err != nil {
			return err
		}
		ref, _, err := w.fs.Lookup(e, "/proj")
		if err != nil {
			return err
		}
		_ = ref
		fref, err := w.fs.Create(e, "/proj/src.c", 0, 0, 6)
		if err != nil {
			return err
		}
		if _, err := w.fs.WriteAt(e, fref, 0, pattern(4*sim.DiskBlockSize, 2)); err != nil {
			return err
		}
		exts, err := w.fs.FileExtents(e, fref)
		if err != nil {
			return err
		}
		if len(exts) != 1 {
			t.Errorf("fresh file has %d extents, want 1 contiguous", len(exts))
		}
		dist := int64(exts[0].Start) - int64(fref.Dir)
		if dist < 0 {
			dist = -dist
		}
		if dist > 64 {
			t.Errorf("data %d blocks from its directory; co-location broken", dist)
		}
		return nil
	})
}

func TestFFSProfileSyncWritesAndSplitInodes(t *testing.T) {
	// The FFS profile must do synchronous metadata writes (slow) where
	// C-FFS does none; creates must be dramatically slower.
	elapsed := func(cfg Config) (sim.Time, int64) {
		k := kernel.New(kernel.Config{Name: "m", MemPages: 8192, DiskSize: 65536})
		x := xn.New(k)
		var fs *FS
		k.Spawn("mkfs", func(e *kernel.Env) {
			e.Creds = cap.UnixCreds(0)
			var err error
			fs, err = Mkfs(e, x, "fs", cfg)
			if err != nil {
				t.Error(err)
			}
		})
		k.Run()
		start := k.Now()
		k.Spawn("creates", func(e *kernel.Env) {
			e.Creds = cap.UnixCreds(0)
			for i := 0; i < 20; i++ {
				if _, err := fs.Create(e, fmt.Sprintf("/f%d", i), 0, 0, 6); err != nil {
					t.Error(err)
					return
				}
			}
		})
		k.Run()
		return k.Now() - start, k.Stats.Get(sim.CtrSyncWrites)
	}
	cffsTime, cffsSync := elapsed(DefaultConfig())
	ffsTime, ffsSync := elapsed(FFSConfig())
	if cffsSync != 0 {
		t.Errorf("C-FFS did %d sync writes, want 0", cffsSync)
	}
	if ffsSync == 0 {
		t.Error("FFS profile did no sync writes")
	}
	if ffsTime < 3*cffsTime {
		t.Errorf("FFS creates (%v) not much slower than C-FFS (%v)", ffsTime, cffsTime)
	}
}

func TestPermissionDenied(t *testing.T) {
	w := newWorld(t, DefaultConfig())
	// Root creates a private directory (no "other" bits).
	w.run(t, "setup", func(e *kernel.Env) error {
		return w.fs.Mkdir(e, "/private", 0, 0, 0)
	})
	w.k.Spawn("intruder", func(e *kernel.Env) {
		e.Creds = cap.UnixCreds(503)
		_, err := w.fs.Create(e, "/private/evil", 503, 503, 6)
		if !errors.Is(err, xn.ErrAccessDenied) {
			t.Errorf("create in private dir err = %v, want ErrAccessDenied", err)
		}
	})
	w.k.Run()
	// A directory with other-write allows it.
	w.run(t, "setup2", func(e *kernel.Env) error {
		return w.fs.Mkdir(e, "/public", 0, 0, 7)
	})
	w.k.Spawn("user", func(e *kernel.Env) {
		e.Creds = cap.UnixCreds(503)
		if _, err := w.fs.Create(e, "/public/mine", 503, 503, 6); err != nil {
			t.Errorf("create in public dir: %v", err)
		}
	})
	w.k.Run()
}

func TestNotFoundPaths(t *testing.T) {
	w := newWorld(t, DefaultConfig())
	w.run(t, "missing", func(e *kernel.Env) error {
		if _, _, err := w.fs.Lookup(e, "/nope"); !errors.Is(err, ErrNotFound) {
			t.Errorf("missing file err = %v", err)
		}
		if _, _, err := w.fs.Lookup(e, "/no/such/dir"); !errors.Is(err, ErrNotFound) {
			t.Errorf("missing dir err = %v", err)
		}
		if _, err := w.fs.Create(e, "/no/file", 0, 0, 6); !errors.Is(err, ErrNotFound) {
			t.Errorf("create under missing dir err = %v", err)
		}
		return nil
	})
}

func TestNameTooLong(t *testing.T) {
	w := newWorld(t, DefaultConfig())
	w.run(t, "longname", func(e *kernel.Env) error {
		long := "/" + string(bytes.Repeat([]byte("x"), MaxNameLen+1))
		if _, err := w.fs.Create(e, long, 0, 0, 6); !errors.Is(err, ErrNameLen) {
			t.Errorf("err = %v, want ErrNameLen", err)
		}
		return nil
	})
}

func TestSlotRoundTripProperty(t *testing.T) {
	cases := []Inode{
		{},
		{Used: true, Kind: KindFile, Name: "a", UID: 1, GID: 2, Mode: 6, Size: 42, MTime: 7},
		{Used: true, Kind: KindDir, Name: "sub-directory.name", Mode: 7,
			Ext: [DirectExtents]Extent{{100, 5}, {900, 1}, {0, 0}}, Ind: 1234},
	}
	for _, in := range cases {
		got := DecodeSlot(append(make([]byte, 0, 4096),
			append(make([]byte, SlotsOff), append(EncodeSlot(in), make([]byte, 4096-SlotsOff-SlotSize)...)...)...), 0)
		if got != in {
			t.Errorf("slot round trip: got %+v want %+v", got, in)
		}
	}
}
