package netsim

import (
	"fmt"

	"xok/internal/dpf"
	"xok/internal/fault"
	"xok/internal/kernel"
	"xok/internal/parallel"
	"xok/internal/sim"
)

// HostID names one node of a Topology.
type HostID int

// IslandID names one partition of a sharded Topology. Island 0 — the
// root — is the topology's original engine; every plain host and load
// balancer lives there. AddIsland creates further islands, each with
// its own engine and clock, for machines to boot onto (see
// Attachment.Island); RunSharded then executes the islands on
// concurrent workers under conservative (lookahead-based) time
// synchronization, with results byte-identical to a single engine.
type IslandID int

// islandRT is the per-island runtime: the engine, the packet freelist
// and the drop counter, each touched only by the island that owns it
// (the whole point — no cross-island locking on the fast path). The
// root island's counter aliases Topology.Drops; the others accumulate
// locally and fold into it after a sharded run joins.
type islandRT struct {
	id  int
	eng *sim.Engine
	isl *sim.Island // created when the fabric is first wired for sharding

	// freePkts recycles Packet objects island-locally: a saturated run
	// sends hundreds of thousands of segments whose lifetime is a few
	// events. A packet crossing islands is freed — and later reused —
	// by the island it landed on.
	freePkts []*Packet

	// freeTransits recycles the per-hop delivery records the same way:
	// popped by the island sending a hop, pushed back by the island the
	// hop lands on. Each list is only ever touched by its own island's
	// goroutine.
	freeTransits []*transit

	drops      *int64
	localDrops int64
}

// newPacket returns a zeroed Packet from the island's freelist.
func (rt *islandRT) newPacket() *Packet {
	if k := len(rt.freePkts); k > 0 {
		p := rt.freePkts[k-1]
		rt.freePkts = rt.freePkts[:k-1]
		*p = Packet{}
		return p
	}
	return &Packet{}
}

// release drops one pending delivery; the last one frees the packet
// into this island's freelist.
func (rt *islandRT) release(p *Packet) {
	p.refs--
	if p.refs == 0 {
		rt.freePkts = append(rt.freePkts, p)
	}
}

// newTransit returns a zeroed delivery record from the island's
// freelist.
func (rt *islandRT) newTransit() *transit {
	if k := len(rt.freeTransits); k > 0 {
		tr := rt.freeTransits[k-1]
		rt.freeTransits = rt.freeTransits[:k-1]
		return tr
	}
	return &transit{}
}

// freeTransit recycles a finished delivery record.
func (rt *islandRT) freeTransit(tr *transit) {
	*tr = transit{}
	rt.freeTransits = append(rt.freeTransits, tr)
}

// sink consumes packets that reach the end of their path: a *NIC (the
// server receive path) or a *Conn (the scripted client endpoint).
// Using an interface instead of a func value keeps xmit calls
// alloc-free — binding a method value allocates, converting a pointer
// to an interface does not.
type sink interface {
	deliverPkt(*Packet)
}

// transit is one copy of one segment in flight across one hop: the
// pooled record link.transmit schedules instead of a fresh closure per
// hop (at connection scale the per-hop closures were the fabric's
// dominant allocation). The fault decisions are drawn at send time in
// forward — exactly where the closure captured them before — and the
// record is freed by the island the hop lands on (rt).
type transit struct {
	t     *Topology
	rt    *islandRT // receiving island: runs the arrival, frees the record
	path  []hop
	i     int
	pkt   *Packet
	to    sink
	lost  bool
	delay sim.Time
}

// transitArrive is the arrival event for one hop: drop a lost copy,
// forward an inner hop, apply a reorder delay on the last hop, or
// deliver to the sink. Package-level so scheduling it via AtArg /
// SendArg captures nothing.
func transitArrive(a any) {
	tr := a.(*transit)
	switch {
	case tr.lost:
		tr.rt.release(tr.pkt)
	case tr.i+1 < len(tr.path):
		tr.t.forward(tr.path, tr.i+1, tr.pkt, tr.to)
	case tr.delay > 0:
		d := tr.delay
		tr.delay = 0
		tr.rt.eng.AfterArg(d, transitArrive, tr)
		return // still in flight; the delayed firing frees it
	default:
		tr.to.deliverPkt(tr.pkt)
	}
	tr.rt.freeTransit(tr)
}

// Policy selects how a load balancer spreads new connections over its
// backends.
type Policy int

// The balancing policies.
const (
	// RoundRobin assigns backends cyclically in link-insertion order.
	RoundRobin Policy = iota
	// LeastConnections assigns the backend with the fewest connections
	// currently open through this balancer; ties break toward the
	// lowest backend index, so assignment is deterministic.
	LeastConnections
)

// String names the policy as the cluster report does.
func (p Policy) String() string {
	switch p {
	case RoundRobin:
		return "round-robin"
	case LeastConnections:
		return "least-conn"
	}
	return "policy?"
}

// LinkSpec describes one full-duplex link. The zero value is a stock
// Ethernet: sim.LinkBandwidthBps, sim.LinkLatency, unbounded queue,
// lossless.
type LinkSpec struct {
	// BandwidthBps is the link speed in bits/second (0 = the default
	// 100-Mbit Ethernet).
	BandwidthBps uint64
	// Latency is the one-way propagation+switch delay (0 = the
	// default sim.LinkLatency).
	Latency sim.Time
	// Queue bounds the per-direction transmit backlog, in full-size
	// frames; a frame arriving at a link whose backlog exceeds it is
	// tail-dropped (counted in Topology.Drops). 0 = unbounded, the
	// legacy behavior.
	Queue int
	// LossRate drops roughly one in LossRate frames on this link
	// only, from a per-link deterministic stream (0 = lossless). The
	// fabric-wide Topology.LossRate and fault plan apply on top.
	LossRate int
}

// link is one full-duplex wire between two hosts. Direction 0 is
// a-to-b, direction 1 is b-to-a; each direction serializes frames
// against its own transmit horizon. rt[dir] is the island of the
// direction's SENDING host — the only island that ever touches
// busy[dir], which is what keeps the horizons race-free under
// sharding. xch[dir] is the cross-island hand-off channel when the
// endpoints live on different islands (nil for intra-island links):
// the link's propagation latency is the channel's lookahead.
type link struct {
	a, b    HostID
	rt      [2]*islandRT
	xch     [2]*sim.Channel
	bps     uint64
	latency sim.Time
	queue   int
	loss    int
	lossRNG *sim.RNG
	busy    [2]sim.Time
}

// wire is the serialization time of payload bytes plus TCP/IP headers
// on this link.
func (l *link) wire(payload int) sim.Time {
	return sim.WireTimeAt(payload+ipTCPHeader, l.bps)
}

// full reports whether the direction's backlog exceeds the queue
// bound: the untransmitted horizon is longer than Queue full-size
// frames' worth of wire time.
func (l *link) full(dir int) bool {
	if l.queue <= 0 {
		return false
	}
	backlog := l.busy[dir] - l.rt[dir].eng.Now()
	return backlog > sim.Time(l.queue)*l.wire(MSS)
}

// transmit serializes a frame on one direction and schedules its
// arrival record after the wire time plus propagation — on the
// sender's own engine for an intra-island link, or through the
// cross-island channel when the far end lives on another island.
// Serialization makes arrival timestamps per direction strictly
// increasing (tx is at least one cycle), which is exactly the
// channel's ordering contract.
func (l *link) transmit(dir int, payload int, tr *transit) {
	rt := l.rt[dir]
	start := rt.eng.Now()
	if l.busy[dir] > start {
		start = l.busy[dir]
	}
	tx := l.wire(payload)
	l.busy[dir] = start + tx
	at := start + tx + l.latency
	if ch := l.xch[dir]; ch != nil {
		ch.SendArg(at, transitArrive, tr)
		return
	}
	rt.eng.AtArg(at, transitArrive, tr)
}

// hop is one directed traversal of a link.
type hop struct {
	l   *link
	dir int
}

type hostKind uint8

const (
	kindHost hostKind = iota // plain traffic source/sink (clients)
	kindNIC                  // a machine's network interface
	kindLB                   // load balancer / switch
)

type host struct {
	id   HostID
	name string
	kind hostKind
	rt   *islandRT // the island this host's events run on
	nic  *NIC
	lb   *lbState
	adj  []adjEntry // links out of this host, insertion order
}

type adjEntry struct {
	peer HostID
	l    *link
}

// lbState is a load balancer's connection table.
type lbState struct {
	policy   Policy
	backends []HostID // NIC hosts directly linked, insertion order
	active   []int    // connections currently open per backend
	assigned []int64  // total connections ever assigned per backend
	rr       int
}

// pick chooses a backend for a new connection and records it open.
func (l *lbState) pick() int {
	var i int
	switch l.policy {
	case LeastConnections:
		for j := 1; j < len(l.backends); j++ {
			if l.active[j] < l.active[i] {
				i = j
			}
		}
	default: // RoundRobin
		i = l.rr % len(l.backends)
		l.rr++
	}
	l.active[i]++
	l.assigned[i]++
	return i
}

type pairKey struct{ a, b HostID }

// trunkSet is the parallel links between one ordered host pair, with
// the rotation cursor that spreads successive connections across them
// (the paper's server has three Ethernets; clients round-robin over
// them).
type trunkSet struct {
	hops []hop
	rr   int
}

// Topology is a network fabric: hosts joined by links, with machines
// (kernels) attached at NIC hosts and optional load-balancer nodes
// spreading connections over a cluster. All hosts share one event
// engine and therefore one virtual clock.
//
// Everything is deterministic: routing is BFS over hosts in insertion
// order, parallel links rotate per connection, balancer policies
// break ties by index, and every loss/duplication decision comes from
// a seeded stream.
type Topology struct {
	eng   *sim.Engine
	hosts []*host
	links []*link

	// LossRate drops roughly one in LossRate TCP segments on every
	// hop, in both directions — SYNs, requests and ACKs as well as
	// response data (0 = lossless, the default). Deterministic:
	// driven by a seeded stream. Per-link LinkSpec.LossRate and the
	// fault plan add independent channels on top.
	LossRate int
	lossRNG  *sim.RNG

	// Faults is the fabric's deterministic fault plan (nil = none):
	// segment loss, duplication and reordering channels.
	Faults *fault.Plan

	// Drops counts frames tail-dropped at a full link queue.
	Drops int64

	paths  map[pairKey][]HostID
	trunks map[pairKey]*trunkSet

	// noWheel mirrors sim.Engine.SetWheel across the fabric: SetWheel
	// records it here so islands added later inherit the setting.
	noWheel bool

	// islands[0] is the root (the topology's own engine — clients and
	// balancers always live there); AddIsland appends the rest. All
	// client-side connection logic, routing-table mutation and balancer
	// state stays on the root island, which is what keeps the trace
	// recording order — and so the digests — identical to a
	// single-engine run.
	islands []*islandRT
}

// NewTopology builds an empty fabric on a fresh event engine.
func NewTopology() *Topology {
	return NewTopologyOn(sim.NewEngine())
}

// NewTopologyOn builds an empty fabric on an existing engine —
// machines attached later must already run on the same engine.
func NewTopologyOn(eng *sim.Engine) *Topology {
	t := &Topology{
		eng:     eng,
		lossRNG: sim.NewRNG(0xfade),
		paths:   make(map[pairKey][]HostID),
		trunks:  make(map[pairKey]*trunkSet),
	}
	root := &islandRT{id: 0, eng: eng, drops: &t.Drops}
	t.islands = []*islandRT{root}
	return t
}

// AddIsland adds a partition with its own engine and clock. Machines
// booted onto it (Attachment.Island) run concurrently with the other
// islands under RunSharded; everything else about the fabric API is
// unchanged. Islands must be added before the hosts that live on them.
func (t *Topology) AddIsland() IslandID {
	rt := &islandRT{id: len(t.islands), eng: sim.NewEngine()}
	rt.drops = &rt.localDrops
	rt.eng.SetWheel(!t.noWheel)
	t.islands = append(t.islands, rt)
	return IslandID(rt.id)
}

// SetWheel toggles the timer-wheel scheduling backend (on by default)
// on every island engine, current and future. The off position is the
// pure-heap baseline; results are bit-identical either way — only the
// host time to produce them moves.
func (t *Topology) SetWheel(on bool) {
	t.noWheel = !on
	for _, rt := range t.islands {
		rt.eng.SetWheel(on)
	}
}

// Islands reports the partition count (1 = unsharded).
func (t *Topology) Islands() int { return len(t.islands) }

// IslandEngine returns an island's engine; island 0 is Engine().
func (t *Topology) IslandEngine(id IslandID) *sim.Engine {
	return t.islands[id].eng
}

// rtByEngine finds the island runtime owning eng (nil if none).
func (t *Topology) rtByEngine(eng *sim.Engine) *islandRT {
	for _, rt := range t.islands {
		if rt.eng == eng {
			return rt
		}
	}
	return nil
}

// Engine returns the fabric's event engine. Machines joining the
// fabric boot with kernel.Config.Eng set to it.
func (t *Topology) Engine() *sim.Engine { return t.eng }

// Now returns the fabric's virtual time.
func (t *Topology) Now() sim.Time { return t.eng.Now() }

func (t *Topology) addHost(name string, kind hostKind) *host {
	h := &host{id: HostID(len(t.hosts)), name: name, kind: kind, rt: t.islands[0]}
	t.hosts = append(t.hosts, h)
	return h
}

// AddHost adds a plain host: a traffic source/sink with no machine
// behind it (client populations live here — the paper saturates the
// server from client hosts whose CPU is not modelled).
func (t *Topology) AddHost(name string) HostID {
	return t.addHost(name, kindHost).id
}

// AttachKernel adds a NIC host for an already-booted machine. The
// kernel must run on one of the fabric's island engines — the root
// engine for an unsharded fabric (boot it with kernel.Config.Eng =
// t.Engine(), or let machine.Config.Net do it), or an AddIsland engine
// for a partitioned one. The host joins the kernel's island.
func (t *Topology) AttachKernel(name string, k *kernel.Kernel) HostID {
	rt := t.rtByEngine(k.Eng)
	if rt == nil {
		panic("netsim: AttachKernel: kernel is not on any of the topology's island engines")
	}
	h := t.addHost(name, kindNIC)
	h.rt = rt
	h.nic = &NIC{t: t, host: h, K: k, DPF: dpf.NewEngine(), rt: rt}
	return h.id
}

// LoadBalancer adds a switch/load-balancer node. Its backends are the
// NIC hosts directly linked to it (in link-insertion order), frozen
// at the first connection; new connections opened at the balancer are
// spread over them by the policy, and their packets traverse it as an
// ordinary forwarding hop.
func (t *Topology) LoadBalancer(policy Policy) HostID {
	h := t.addHost("lb", kindLB)
	h.lb = &lbState{policy: policy}
	return h.id
}

// NIC returns the NIC at a host created with AttachKernel.
func (t *Topology) NIC(id HostID) *NIC {
	h := t.hosts[id]
	if h.nic == nil {
		panic("netsim: host " + h.name + " has no NIC")
	}
	return h.nic
}

// Link joins two hosts with one full-duplex link. Linking the same
// pair again adds a parallel trunk; connections rotate across trunks.
func (t *Topology) Link(a, b HostID, spec LinkSpec) {
	if spec.BandwidthBps == 0 {
		spec.BandwidthBps = sim.LinkBandwidthBps
	}
	if spec.Latency == 0 {
		spec.Latency = sim.LinkLatency
	}
	l := &link{
		a: a, b: b,
		rt:  [2]*islandRT{t.hosts[a].rt, t.hosts[b].rt},
		bps: spec.BandwidthBps, latency: spec.Latency,
		queue: spec.Queue, loss: spec.LossRate,
	}
	if l.loss > 0 {
		// Per-link stream, seeded by position so adding links never
		// perturbs another link's decisions.
		l.lossRNG = sim.NewRNG(0x11bead ^ uint64(len(t.links)+1)*0x9e3779b97f4a7c15)
	}
	t.links = append(t.links, l)
	t.hosts[a].adj = append(t.hosts[a].adj, adjEntry{peer: b, l: l})
	t.hosts[b].adj = append(t.hosts[b].adj, adjEntry{peer: a, l: l})
	// Routes and trunk sets may be stale now; recompute lazily.
	clear(t.paths)
	clear(t.trunks)
}

// Assignments reports how many connections a balancer has assigned to
// each backend so far, in backend order (fairness tests read this).
func (t *Topology) Assignments(lb HostID) []int64 {
	h := t.hosts[lb]
	if h.lb == nil {
		panic("netsim: host is not a load balancer")
	}
	return append([]int64(nil), h.lb.assigned...)
}

// hostPath returns the host sequence from -> to (inclusive), cached.
// BFS in host/link insertion order makes it deterministic; equal-cost
// choices resolve to the earliest-added route.
func (t *Topology) hostPath(from, to HostID) []HostID {
	key := pairKey{from, to}
	if p, ok := t.paths[key]; ok {
		return p
	}
	parent := make([]HostID, len(t.hosts))
	for i := range parent {
		parent[i] = -1
	}
	parent[from] = from
	queue := []HostID{from}
	for len(queue) > 0 && parent[to] == -1 {
		h := queue[0]
		queue = queue[1:]
		for _, ae := range t.hosts[h].adj {
			if parent[ae.peer] == -1 {
				parent[ae.peer] = h
				queue = append(queue, ae.peer)
			}
		}
	}
	if parent[to] == -1 {
		panic("netsim: no path from " + t.hosts[from].name + " to " + t.hosts[to].name)
	}
	var rev []HostID
	for h := to; h != from; h = parent[h] {
		rev = append(rev, h)
	}
	rev = append(rev, from)
	path := make([]HostID, 0, len(rev))
	for i := len(rev) - 1; i >= 0; i-- {
		path = append(path, rev[i])
	}
	t.paths[key] = path
	return path
}

// trunkFor returns the directed trunk set between adjacent hosts.
func (t *Topology) trunkFor(a, b HostID) *trunkSet {
	key := pairKey{a, b}
	if ts, ok := t.trunks[key]; ok {
		return ts
	}
	ts := &trunkSet{}
	for _, ae := range t.hosts[a].adj {
		if ae.peer != b {
			continue
		}
		dir := 0
		if ae.l.a != a {
			dir = 1
		}
		ts.hops = append(ts.hops, hop{l: ae.l, dir: dir})
	}
	if len(ts.hops) == 0 {
		panic("netsim: hosts not adjacent")
	}
	t.trunks[key] = ts
	return ts
}

// appendPath appends the hop sequence from -> to onto dst, rotating
// each pair's parallel trunks one step (one call per connection gives
// the legacy per-connection link round-robin).
func (t *Topology) appendPath(dst []hop, from, to HostID) []hop {
	hp := t.hostPath(from, to)
	for i := 0; i+1 < len(hp); i++ {
		ts := t.trunkFor(hp[i], hp[i+1])
		dst = append(dst, ts.hops[ts.rr%len(ts.hops)])
		ts.rr++
	}
	return dst
}

// appendReverse appends fwd's links walked the other way onto dst.
func appendReverse(dst, fwd []hop) []hop {
	for i := len(fwd) - 1; i >= 0; i-- {
		dst = append(dst, hop{l: fwd[i].l, dir: 1 - fwd[i].dir})
	}
	return dst
}

// pathRTT is the static round-trip estimate of a path: twice the
// propagation plus one full-size frame's serialization per hop each
// way. Connections seed their RTT estimator with it.
func pathRTT(path []hop) sim.Time {
	var oneWay sim.Time
	for _, h := range path {
		oneWay += h.l.latency + h.l.wire(MSS)
	}
	return 2 * oneWay
}

// newPacket returns a zeroed Packet from the root island's freelist —
// the client-side allocation path (server stacks allocate from their
// own island via NIC.rt).
func (t *Topology) newPacket() *Packet { return t.islands[0].newPacket() }

// release drops one pending delivery on the root island; the last one
// frees the packet.
func (t *Topology) release(p *Packet) { t.islands[0].release(p) }

// xmit puts one segment on the wire along a path of hops, applying
// the fault decisions: loss (LossRate, per-link loss, or the fault
// plan), duplication and reordering (fault plan only, the latter on
// the final hop so successors can overtake). A lost segment still
// consumes its wire time — the frame went out, it just never arrives;
// a tail-dropped one (full queue) consumes nothing. A duplicated
// segment is sent twice back to back. Each copy carries one
// reference; a lost or dropped copy releases it, a delivered copy
// passes it to the sink, which owns it from then on.
func (t *Topology) xmit(path []hop, pkt *Packet, to sink) {
	copies := 1
	if t.Faults.DupSegment() {
		copies = 2
	}
	pkt.refs = copies
	for i := 0; i < copies; i++ {
		t.forward(path, 0, pkt, to)
	}
}

// forward sends one copy across hop i; its transit record recurses to
// i+1 on arrival. Fault decisions draw in the legacy order (fabric
// loss, link loss, plan loss, plan reorder) at every hop, at send
// time. Hop i runs on the island of its sending host; the arrival
// record runs on the receiving host's island (which is hop i+1's
// sending island), so every freelist and drop-counter touch is
// island-local. The fabric-global decision streams (LossRate, Faults)
// only draw on unsharded fabrics — RunSharded rejects them.
func (t *Topology) forward(path []hop, i int, pkt *Packet, to sink) {
	h := path[i]
	send, recv := h.l.rt[h.dir], h.l.rt[1-h.dir]
	last := i == len(path)-1
	lost := t.LossRate > 0 && t.lossRNG.Intn(t.LossRate) == 0
	if h.l.loss > 0 && h.l.lossRNG.Intn(h.l.loss) == 0 {
		lost = true
	}
	if t.Faults.DropSegment() {
		lost = true
	}
	var delay sim.Time
	if last && t.Faults.ReorderSegment() {
		delay = 2 * sim.WireTime(sim.EthernetMTU+ipTCPHeader)
	}
	if h.l.full(h.dir) {
		*send.drops++
		send.release(pkt)
		return
	}
	tr := send.newTransit()
	tr.t, tr.rt, tr.path, tr.i = t, recv, path, i
	tr.pkt, tr.to, tr.lost, tr.delay = pkt, to, lost, delay
	h.l.transmit(h.dir, pkt.Payload, tr)
}

// wireShards creates the cross-island hand-off channels for every link
// whose endpoints live on different islands, validating the lookahead
// contract. Idempotent per link, so islands wired once stay wired
// across repeated sharded runs.
func (t *Topology) wireShards() error {
	for _, rt := range t.islands {
		if rt.isl == nil {
			rt.isl = sim.NewIsland(rt.id, rt.eng)
		}
	}
	for _, l := range t.links {
		if l.rt[0] == l.rt[1] || l.xch[0] != nil {
			continue
		}
		if l.latency < 1 {
			return fmt.Errorf("netsim: zero-latency link between %s and %s crosses islands %d and %d: no lookahead is possible — merge the hosts onto one island or give the link latency",
				t.hosts[l.a].name, t.hosts[l.b].name, l.rt[0].id, l.rt[1].id)
		}
		if l.loss > 0 {
			return fmt.Errorf("netsim: lossy link between %s and %s crosses islands %d and %d: per-link loss draws are only deterministic island-locally",
				t.hosts[l.a].name, t.hosts[l.b].name, l.rt[0].id, l.rt[1].id)
		}
		l.xch[0] = sim.Connect(l.rt[0].isl, l.rt[1].isl, l.latency)
		l.xch[1] = sim.Connect(l.rt[1].isl, l.rt[0].isl, l.latency)
	}
	return nil
}

// RunSharded drives a partitioned fabric to global completion — the
// parallel equivalent of Engine().Run() on every island at once, with
// one worker goroutine per island (routed through internal/parallel).
// Cross-island links become timestamped channels whose lookahead is
// the link latency; execution order is conservatively synchronized, so
// results are byte-identical to the same fabric run on one engine.
// The fabric-global nondeterminism channels are rejected up front:
// loss, duplication and fault plans draw from streams whose order a
// partitioned run cannot reproduce.
func (t *Topology) RunSharded() error {
	if len(t.islands) == 1 {
		t.eng.Run()
		return nil
	}
	if t.Faults != nil {
		return fmt.Errorf("netsim: RunSharded: fault plans draw from a fabric-global stream; run single-engine")
	}
	if t.LossRate > 0 {
		return fmt.Errorf("netsim: RunSharded: fabric-wide LossRate draws from a global stream; run single-engine or use per-link loss on intra-island links")
	}
	if err := t.wireShards(); err != nil {
		return err
	}
	islands := make([]*sim.Island, len(t.islands))
	for i, rt := range t.islands {
		islands[i] = rt.isl
	}
	sim.RunIslands(islands, func(n int, run func(i int)) {
		// One worker per island: islands block on each other's
		// promises, so multiplexing them onto fewer workers deadlocks.
		parallel.Map(n, n, func(i int) struct{} {
			run(i)
			return struct{}{}
		})
	})
	// Fold the non-root islands' drop counts into the public counter
	// now that their goroutines have joined.
	for _, rt := range t.islands[1:] {
		t.Drops += rt.localDrops
		rt.localDrops = 0
	}
	return nil
}

// openConn builds a connection from a client host to a server: either
// directly to a NIC host, or to a load balancer, which picks a
// backend by its policy at connection-open time (an L4 balancer's
// connection table) and forwards every packet as an ordinary hop.
func (t *Topology) openConn(from, target HostID, port uint32, docSize int, deadline sim.Time) *Conn {
	c := &Conn{
		t:          t,
		clientPort: port,
		expect:     responseHeader + docSize,
		started:    t.eng.Now(),
		deadline:   deadline,
		reqDocLen:  docSize,
	}
	// Paths build into the connection's inline buffer (half each way);
	// a route deeper than pathHalf hops spills to the heap. The cluster
	// fabric is two hops (client -> balancer -> server).
	fwd := c.pathBuf[:0:pathHalf]
	dst := target
	if th := t.hosts[target]; th.kind == kindLB {
		lb := th.lb
		if lb.backends == nil {
			// Freeze the backend set: NIC hosts directly linked, in
			// link-insertion order.
			seen := make(map[HostID]bool)
			for _, ae := range th.adj {
				if t.hosts[ae.peer].kind == kindNIC && !seen[ae.peer] {
					seen[ae.peer] = true
					lb.backends = append(lb.backends, ae.peer)
				}
			}
			if len(lb.backends) == 0 {
				panic("netsim: load balancer has no NIC backends")
			}
			lb.active = make([]int, len(lb.backends))
			lb.assigned = make([]int64, len(lb.backends))
		}
		idx := lb.pick()
		c.lbRef, c.lbIdx, c.lbHeld = lb, idx, true
		dst = lb.backends[idx]
		fwd = t.appendPath(fwd, from, target)
		fwd = t.appendPath(fwd, target, dst)
	} else {
		fwd = t.appendPath(fwd, from, target)
	}
	c.fwd = fwd
	if t.hosts[dst].nic == nil {
		panic("netsim: connection target " + t.hosts[dst].name + " has no NIC")
	}
	c.backend = t.hosts[dst].nic
	if len(fwd) <= pathHalf {
		c.rev = appendReverse(c.pathBuf[pathHalf:pathHalf:2*pathHalf], fwd)
	} else {
		c.rev = appendReverse(make([]hop, 0, len(fwd)), fwd)
	}
	c.staticRTT = pathRTT(c.fwd)
	c.rttEst = c.staticRTT
	// Default trace sink: the backend machine's tracer (pools may
	// override with their own).
	c.sink = c.backend.K.Trace
	c.sinkPID = c.backend.K.TracePID
	return c
}

// Attachment joins a machine to a fabric: set machine.Config.Net to
// one and machine.New boots the kernel on the topology's engine and
// attaches a NIC host. Host and NIC are outputs, filled by New.
type Attachment struct {
	// Topology is the fabric to join.
	Topology *Topology
	// Name labels the NIC host (default: the machine's name).
	Name string
	// Island selects which partition of a sharded fabric the machine
	// boots onto (its kernel runs on that island's engine). Zero — the
	// root island — is the single-engine default.
	Island IslandID

	// Host is the machine's NIC host, filled by machine.New.
	Host HostID
	// NIC is the attached interface, filled by machine.New.
	NIC *NIC
}
