package netsim

import (
	"math"

	"xok/internal/sim"
	"xok/internal/trace"
)

// Arrival selects the open-loop arrival process.
type Arrival int

// The arrival processes.
const (
	// ArrivalPoisson spaces arrivals exponentially around the mean
	// rate (memoryless offered load, the default).
	ArrivalPoisson Arrival = iota
	// ArrivalUniform spaces arrivals exactly 1/rate apart.
	ArrivalUniform
)

// RequestClass is one stratum of an open-loop workload mix: a name
// (its latency series appears as "http.<Name>"), a document size, and
// a selection weight.
type RequestClass struct {
	Name    string
	DocSize int
	Weight  int
}

// OpenLoopConfig describes an open-loop client population: Conns
// connection arrivals at Rate per virtual second, launched from host
// From against Target (a NIC host or a load balancer), regardless of
// how fast completions come back — unlike the closed-loop ClientPool,
// a slow server here grows its backlog instead of throttling the
// offered load.
type OpenLoopConfig struct {
	From   HostID
	Target HostID

	// Conns is the total number of connection arrivals.
	Conns int
	// Rate is the mean arrival rate per virtual second.
	Rate float64
	// Arrival picks the spacing process (default Poisson).
	Arrival Arrival
	// Seed drives arrival spacing and class selection (0 = 1).
	Seed uint64

	// Classes is the request mix (nil = one 1-KB "doc" class).
	Classes []RequestClass

	// Deadline bounds each connection's client-side retries, relative
	// to its launch (0 = retry forever; the run ends when every
	// connection completes).
	Deadline sim.Time

	// Trace receives every connection's spans and latency samples
	// ("http.request" plus one "http.<class>" series per class) under
	// TracePID. Nil falls back to each backend machine's own tracer.
	Trace    *trace.Tracer
	TracePID int64
}

// OpenPool is a running open-loop population and its outcome
// counters. Throughput is measured on the makespan: completions over
// (LastDone - Started).
type OpenPool struct {
	t   *Topology
	cfg OpenLoopConfig

	// Started is when the arrivals were scheduled.
	Started sim.Time
	// Issued counts launched connections, Completed finished ones.
	Issued    int
	Completed int
	// Bytes is the document payload delivered.
	Bytes int64
	// LastDone is the completion time of the latest finisher.
	LastDone sim.Time
	// LatMax is the worst request latency.
	LatMax sim.Time

	// ClassDone/ClassBytes break completions down per request class.
	ClassDone  []int
	ClassBytes []int64

	// arrivals holds every pre-drawn arrival; each is scheduled via
	// AtArg with a pointer into this slice, so a million-connection
	// launch plan costs one allocation, not one closure per arrival.
	arrivals []arrival
	// series holds the precomputed "http.<class>" histogram names.
	series []string
}

// arrival is one pre-drawn connection arrival.
type arrival struct {
	p    *OpenPool
	port uint32
	ci   int32
}

// launchArrival opens the arrival's connection (the scheduled event's
// body; package-level for alloc-free scheduling).
func launchArrival(a any) {
	ar := a.(*arrival)
	ar.p.launch(ar.port, int(ar.ci))
}

// defaultClasses is the single-class fallback mix.
var defaultClasses = []RequestClass{{Name: "doc", DocSize: 1024, Weight: 1}}

// OpenLoop schedules an open-loop client population on the fabric.
// All arrival times and class choices are drawn up front from the
// seeded stream, so the offered load is identical no matter how the
// cluster behind Target responds.
func (t *Topology) OpenLoop(cfg OpenLoopConfig) *OpenPool {
	if len(t.islands) > 1 {
		// The pool's arrival clock, connection state and counters all
		// live on the root island's engine.
		if t.hosts[cfg.From].rt != t.islands[0] || t.hosts[cfg.Target].rt != t.islands[0] {
			panic("netsim: OpenLoop source and target must live on the root island of a sharded fabric")
		}
	}
	if cfg.Rate <= 0 {
		cfg.Rate = 1000
	}
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	if len(cfg.Classes) == 0 {
		cfg.Classes = defaultClasses
	}
	p := &OpenPool{
		t: t, cfg: cfg, Started: t.eng.Now(),
		ClassDone:  make([]int, len(cfg.Classes)),
		ClassBytes: make([]int64, len(cfg.Classes)),
		arrivals:   make([]arrival, cfg.Conns),
		series:     make([]string, len(cfg.Classes)),
	}
	for i, cl := range cfg.Classes {
		p.series[i] = "http." + cl.Name
	}
	totalW := 0
	for _, cl := range cfg.Classes {
		totalW += cl.Weight
	}
	rng := sim.NewRNG(cfg.Seed)
	perArrival := float64(sim.CPUHz) / cfg.Rate // mean gap in cycles
	at := p.Started
	port := uint32(10000)
	for i := 0; i < cfg.Conns; i++ {
		switch cfg.Arrival {
		case ArrivalUniform:
			at += sim.Time(perArrival)
		default:
			u := rng.Float64()
			for u == 0 {
				u = rng.Float64()
			}
			at += sim.Time(-math.Log(u) * perArrival)
		}
		ci := 0
		if totalW > 1 {
			w := rng.Intn(totalW)
			for w >= cfg.Classes[ci].Weight {
				w -= cfg.Classes[ci].Weight
				ci++
			}
		}
		p.arrivals[i] = arrival{p: p, port: port, ci: int32(ci)}
		port++
		t.eng.AtArg(at, launchArrival, &p.arrivals[i])
	}
	return p
}

// launch opens one connection (the arrival instant).
func (p *OpenPool) launch(port uint32, ci int) {
	cl := p.cfg.Classes[ci]
	var deadline sim.Time
	if p.cfg.Deadline > 0 {
		deadline = p.t.eng.Now() + p.cfg.Deadline
	}
	c := p.t.openConn(p.cfg.From, p.cfg.Target, port, cl.DocSize, deadline)
	c.class, c.classSeries = ci, p.series[ci]
	if p.cfg.Trace != nil {
		c.sink, c.sinkPID = p.cfg.Trace, p.cfg.TracePID
	}
	p.Issued++
	c.owner = p
	c.sendSyn()
	c.armTimer()
}

// connDone books one completed open-loop connection.
func (p *OpenPool) connDone(c *Conn, lat sim.Time) {
	p.Completed++
	p.Bytes += int64(c.reqDocLen)
	p.ClassDone[c.class]++
	p.ClassBytes[c.class] += int64(c.reqDocLen)
	p.LastDone = p.t.eng.Now()
	if lat > p.LatMax {
		p.LatMax = lat
	}
}

// Makespan is the offered-to-drained duration: first arrival
// scheduling to last completion.
func (p *OpenPool) Makespan() sim.Time {
	if p.LastDone <= p.Started {
		return 0
	}
	return p.LastDone - p.Started
}
