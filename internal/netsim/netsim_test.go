package netsim

import (
	"testing"

	"xok/internal/cap"
	"xok/internal/fault"
	"xok/internal/kernel"
	"xok/internal/sim"
	"xok/internal/trace"
)

func testServerConfig() StackConfig {
	return StackConfig{
		Name: "test", PerConn: 100 * sim.Microsecond,
		PerPacket: 20 * sim.Microsecond, AckCost: 5 * sim.Microsecond,
	}
}

// serve boots a machine with a fixed-size handler and runs a client
// pool against it.
func serve(t *testing.T, cfg StackConfig, body, clients int, dur sim.Time) (*ClientPool, *kernel.Env, *kernel.Kernel) {
	t.Helper()
	k := kernel.New(kernel.Config{Name: "net", MemPages: 512})
	n := New(k)
	stop := k.Now() + dur
	pool := n.NewClientPool(clients, body, stop)
	env := k.Spawn("server", func(e *kernel.Env) {
		e.Creds = cap.UnixCreds(0)
		n.Serve(e, cfg, func(*kernel.Env, *Conn) int { return body }, stop)
	})
	k.RunUntil(stop)
	k.Shutdown()
	return pool, env, k
}

func TestRequestsComplete(t *testing.T) {
	pool, _, k := serve(t, testServerConfig(), 1000, 4, 100*sim.Millisecond)
	if pool.Completed == 0 {
		t.Fatal("no requests completed")
	}
	if pool.Bytes != int64(pool.Completed)*1000 {
		t.Fatalf("bytes = %d for %d requests", pool.Bytes, pool.Completed)
	}
	if pool.MeanLatency() == 0 || pool.LatMax < pool.MeanLatency() {
		t.Fatalf("latency accounting broken: mean=%v max=%v", pool.MeanLatency(), pool.LatMax)
	}
	if k.Stats.Get(sim.CtrPacketsRx) == 0 || k.Stats.Get(sim.CtrPacketsTx) == 0 {
		t.Fatal("no packets counted")
	}
}

func TestThroughputBoundByServerCPU(t *testing.T) {
	// With per-request CPU of ~260us (conn + 4 packets + acks), the
	// server cannot exceed ~1/260us requests/sec.
	cfg := testServerConfig()
	dur := 200 * sim.Millisecond
	pool, env, _ := serve(t, cfg, 0, 16, dur)
	rps := float64(pool.Completed) / dur.Seconds()
	if rps > 8000 {
		t.Fatalf("rps = %.0f exceeds the CPU bound", rps)
	}
	busy := env.CPUUsed().Seconds() / dur.Seconds()
	if busy < 0.8 {
		t.Fatalf("server only %.0f%% busy with 16 clients; should saturate", busy*100)
	}
}

func TestLargeDocsBoundByNetwork(t *testing.T) {
	// A nearly free server pushing 100-KB docs must cap near the
	// 3-link aggregate bandwidth (37.5 MB/s raw).
	cfg := StackConfig{Name: "fast", PerConn: 10 * sim.Microsecond,
		PerPacket: 2 * sim.Microsecond, AckCost: 1 * sim.Microsecond}
	dur := 200 * sim.Millisecond
	pool, _, _ := serve(t, cfg, 100_000, 30, dur)
	mbps := float64(pool.Bytes) / dur.Seconds() / 1e6
	if mbps < 20 {
		t.Fatalf("%.1f MB/s: not reaching network saturation", mbps)
	}
	if mbps > 38 {
		t.Fatalf("%.1f MB/s exceeds 3x100Mbit physical capacity", mbps)
	}
}

func TestSeparateControlPacketsCostMore(t *testing.T) {
	base := testServerConfig()
	dur := 100 * sim.Millisecond
	merged, _, km := serve(t, base, 100, 8, dur)
	sep := base
	sep.SeparateReqAck = true
	sep.SeparateFIN = true
	separate, _, ks := serve(t, sep, 100, 8, dur)
	// Per request, the separate config transmits 2 more server frames.
	mergedTx := float64(km.Stats.Get(sim.CtrPacketsTx)) / float64(merged.Completed)
	sepTx := float64(ks.Stats.Get(sim.CtrPacketsTx)) / float64(separate.Completed)
	if sepTx < mergedTx+1.5 {
		t.Fatalf("separate-control frames/request = %.2f vs merged %.2f; want ~+2", sepTx, mergedTx)
	}
	if separate.Completed >= merged.Completed {
		t.Fatalf("packet merging should raise throughput: %d vs %d",
			merged.Completed, separate.Completed)
	}
}

func TestForkPerRequestThrottles(t *testing.T) {
	base := testServerConfig()
	dur := 100 * sim.Millisecond
	plain, _, _ := serve(t, base, 0, 8, dur)
	forky := base
	forky.ForkPerRequest = sim.CostForkBSD + sim.CostExec
	forked, _, _ := serve(t, forky, 0, 8, dur)
	if forked.Completed*2 >= plain.Completed {
		t.Fatalf("fork-per-request only dropped throughput %d -> %d",
			plain.Completed, forked.Completed)
	}
}

// nowSink records the engine time of its delivery.
type nowSink struct {
	eng *sim.Engine
	at  *sim.Time
}

func (s *nowSink) deliverPkt(*Packet) { *s.at = s.eng.Now() }

func TestWireTimeSerializesLink(t *testing.T) {
	eng := sim.NewEngine()
	rt := &islandRT{eng: eng}
	l := &link{rt: [2]*islandRT{rt, rt}, bps: sim.LinkBandwidthBps, latency: sim.LinkLatency}
	var first, second sim.Time
	send := func(at *sim.Time) {
		tr := rt.newTransit()
		tr.rt = rt
		tr.to = &nowSink{eng: eng, at: at}
		l.transmit(0, 1460, tr)
	}
	send(&first)
	send(&second)
	eng.Run()
	if second <= first {
		t.Fatal("second frame not serialized behind the first")
	}
	gap := second - first
	wire := sim.WireTime(1460 + ipTCPHeader)
	if gap != wire {
		t.Fatalf("inter-frame gap = %v, want one wire time %v", gap, wire)
	}
}

func TestPacketHeaderMatchesFilters(t *testing.T) {
	p := &Packet{SrcPort: 5555, DstPort: 80, Flags: FlagSYN}
	h := p.Header()
	want := []byte{0, 0, 0, 80, 0, 0, 0x15, 0xB3, FlagSYN}
	if len(h) != len(want) {
		t.Fatalf("header = %v, want %v", h, want)
	}
	for i := range want {
		if h[i] != want[i] {
			t.Fatalf("header = %v, want %v", h, want)
		}
	}
}

func TestLossRecoveredByRetransmission(t *testing.T) {
	// With ~3% data-segment loss, every request must still complete —
	// go-back-N retransmission out of the retransmission pool fills
	// the holes.
	k := kernel.New(kernel.Config{Name: "net", MemPages: 512})
	n := New(k)
	n.LossRate = 32
	dur := 2 * sim.CPUHz / 5 * sim.Time(1) // 400 ms
	stop := k.Now() + dur
	pool := n.NewClientPool(6, 20000, stop)
	k.Spawn("server", func(e *kernel.Env) {
		n.Serve(e, testServerConfig(), func(*kernel.Env, *Conn) int { return 20000 }, stop)
	})
	k.RunUntil(stop)
	k.Shutdown()
	if pool.Completed == 0 {
		t.Fatal("no requests completed under loss")
	}
	if k.Stats.Get(sim.CtrRetransmits) == 0 {
		t.Fatal("loss recovered without any retransmissions?")
	}
	if pool.Bytes != int64(pool.Completed)*20000 {
		t.Fatalf("byte accounting broken under loss: %d for %d requests",
			pool.Bytes, pool.Completed)
	}
}

func TestLossReducesThroughput(t *testing.T) {
	measure := func(loss int) int {
		k := kernel.New(kernel.Config{Name: "net", MemPages: 512})
		n := New(k)
		n.LossRate = loss
		stop := k.Now() + 200*sim.Millisecond
		pool := n.NewClientPool(8, 10000, stop)
		k.Spawn("server", func(e *kernel.Env) {
			n.Serve(e, testServerConfig(), func(*kernel.Env, *Conn) int { return 10000 }, stop)
		})
		k.RunUntil(stop)
		k.Shutdown()
		return pool.Completed
	}
	clean := measure(0)
	lossy := measure(16) // ~6% loss
	if lossy >= clean {
		t.Fatalf("loss did not hurt throughput: %d vs %d", lossy, clean)
	}
}

func TestBidirectionalLossRecovered(t *testing.T) {
	// The fault plan drops, duplicates and reorders segments in BOTH
	// directions: lost SYNs, requests and client ACKs are recovered by
	// the client's retransmission timer, lost response data by the
	// server's go-back-N — and every completed request still delivers
	// exactly its bytes. Same seed, same outcome.
	run := func() (*ClientPool, *kernel.Kernel) {
		plan := &fault.Plan{Seed: 7, LossRate: 24, DupRate: 37, ReorderRate: 41}
		k := kernel.New(kernel.Config{Name: "net", MemPages: 512, Faults: plan})
		n := New(k)
		stop := k.Now() + 400*sim.Millisecond
		pool := n.NewClientPool(6, 20000, stop)
		k.Spawn("server", func(e *kernel.Env) {
			n.Serve(e, testServerConfig(), func(*kernel.Env, *Conn) int { return 20000 }, stop)
		})
		k.RunUntil(stop)
		k.Shutdown()
		return pool, k
	}
	pool, k := run()
	if pool.Completed == 0 {
		t.Fatal("no requests completed under bidirectional faults")
	}
	if pool.Bytes != int64(pool.Completed)*20000 {
		t.Fatalf("byte accounting broken: %d bytes for %d requests", pool.Bytes, pool.Completed)
	}
	if k.Stats.Get(sim.CtrRetransmits) == 0 {
		t.Fatal("no server retransmissions under loss?")
	}
	pool2, _ := run()
	if pool2.Completed != pool.Completed || pool2.Bytes != pool.Bytes {
		t.Fatalf("same seed diverged: %d/%d requests, %d/%d bytes",
			pool.Completed, pool2.Completed, pool.Bytes, pool2.Bytes)
	}
}

func TestClientSideLossRecovered(t *testing.T) {
	// Legacy LossRate now applies to client->server segments too: under
	// harsh symmetric loss (one in six frames) the handshake itself
	// fails constantly, and only the client retransmission timer keeps
	// connections alive.
	k := kernel.New(kernel.Config{Name: "net", MemPages: 512})
	n := New(k)
	n.LossRate = 6
	stop := k.Now() + 400*sim.Millisecond
	pool := n.NewClientPool(4, 5000, stop)
	k.Spawn("server", func(e *kernel.Env) {
		n.Serve(e, testServerConfig(), func(*kernel.Env, *Conn) int { return 5000 }, stop)
	})
	k.RunUntil(stop)
	k.Shutdown()
	if pool.Completed == 0 {
		t.Fatal("no requests completed under symmetric loss")
	}
	if pool.Bytes != int64(pool.Completed)*5000 {
		t.Fatalf("byte accounting broken: %d bytes for %d requests", pool.Bytes, pool.Completed)
	}
}

func TestConnectionTracing(t *testing.T) {
	tr := trace.New()
	k := kernel.New(kernel.Config{Name: "net", MemPages: 512, Trace: tr})
	n := New(k)
	stop := k.Now() + 100*sim.Millisecond
	pool := n.NewClientPool(4, 1000, stop)
	k.Spawn("server", func(e *kernel.Env) {
		n.Serve(e, testServerConfig(), func(*kernel.Env, *Conn) int { return 1000 }, stop)
	})
	k.RunUntil(stop)
	k.Shutdown()
	if pool.Completed == 0 {
		t.Fatal("no requests completed")
	}
	h := tr.Hist(k.TracePID, "http.request")
	if h == nil || h.Count() != int64(pool.Completed) {
		t.Fatalf("http.request samples = %v, want %d", h, pool.Completed)
	}
	if h.Max() != pool.LatMax {
		t.Fatalf("histogram max %v != pool max %v", h.Max(), pool.LatMax)
	}
	var conns, phases int
	for _, s := range tr.Spans() {
		if s.Cat != "http" {
			continue
		}
		switch s.Name {
		case "conn":
			conns++
		case "handshake+request", "stream":
			phases++
		}
	}
	if conns != pool.Completed {
		t.Fatalf("conn spans = %d, want %d", conns, pool.Completed)
	}
	if phases < 2*pool.Completed {
		t.Fatalf("phase spans = %d, want >= %d", phases, 2*pool.Completed)
	}
}
