package netsim

import (
	"testing"

	"xok/internal/cap"
	"xok/internal/kernel"
	"xok/internal/sim"
)

// funcSink adapts a func(*Packet) to the sink interface for tests.
type funcSink struct{ f func(*Packet) }

func (s *funcSink) deliverPkt(p *Packet) { s.f(p) }

// testTransit builds a terminal transit record (no further hops)
// delivering to the given sink.
func testTransit(rt *islandRT, to sink) *transit {
	tr := rt.newTransit()
	tr.rt = rt
	tr.to = to
	return tr
}

// TestLinkCustomBandwidthSerializes: frames on a slow link serialize
// against the custom wire time, not the default Ethernet's.
func TestLinkCustomBandwidthSerializes(t *testing.T) {
	eng := sim.NewEngine()
	const bps = 10_000_000 // 10 Mbit
	rt := &islandRT{eng: eng}
	l := &link{rt: [2]*islandRT{rt, rt}, bps: bps, latency: sim.LinkLatency}
	var deliveries []sim.Time
	record := &funcSink{f: func(p *Packet) { deliveries = append(deliveries, eng.Now()) }}
	l.transmit(0, 1460, testTransit(rt, record))
	l.transmit(0, 1460, testTransit(rt, record))
	eng.Run()
	if len(deliveries) != 2 {
		t.Fatalf("delivered %d frames, want 2", len(deliveries))
	}
	wire := sim.WireTimeAt(1460+ipTCPHeader, bps)
	if want := wire + sim.LinkLatency; deliveries[0] != want {
		t.Errorf("first delivery at %v, want %v", deliveries[0], want)
	}
	if want := 2*wire + sim.LinkLatency; deliveries[1] != want {
		t.Errorf("second delivery at %v, want %v (serialized)", deliveries[1], want)
	}
	slow := sim.WireTimeAt(1460+ipTCPHeader, bps)
	fast := sim.WireTimeAt(1460+ipTCPHeader, sim.LinkBandwidthBps)
	if slow <= fast {
		t.Errorf("10Mbit wire time %v should exceed 100Mbit's %v", slow, fast)
	}
}

// TestQueueTailDrop: a bounded link queue tail-drops the burst's
// excess, counts it in Drops, and delivers the rest.
func TestQueueTailDrop(t *testing.T) {
	tp := NewTopology()
	a := tp.AddHost("a")
	b := tp.AddHost("b")
	tp.Link(a, b, LinkSpec{Queue: 2})
	path := tp.appendPath(nil, a, b)

	const burst = 16
	delivered := 0
	count := &funcSink{f: func(p *Packet) { delivered++; tp.release(p) }}
	for i := 0; i < burst; i++ {
		pkt := tp.newPacket()
		pkt.Payload = MSS
		tp.xmit(path, pkt, count)
	}
	tp.Engine().Run()
	if tp.Drops == 0 {
		t.Fatal("no tail drops on a 2-frame queue under a 16-frame burst")
	}
	if got := int64(burst) - int64(delivered); got != tp.Drops {
		t.Errorf("delivered %d + dropped %d != burst %d", delivered, tp.Drops, burst)
	}
	// The queue admits the in-flight frame plus roughly Queue more.
	if delivered < 3 || delivered > 4 {
		t.Errorf("delivered %d frames, want 3-4 (1 in flight + queue of 2)", delivered)
	}
}

// TestUnboundedQueueNeverDrops: the zero-value spec keeps the legacy
// behavior — everything queues, nothing drops.
func TestUnboundedQueueNeverDrops(t *testing.T) {
	tp := NewTopology()
	a := tp.AddHost("a")
	b := tp.AddHost("b")
	tp.Link(a, b, LinkSpec{})
	path := tp.appendPath(nil, a, b)
	delivered := 0
	count := &funcSink{f: func(p *Packet) { delivered++; tp.release(p) }}
	for i := 0; i < 64; i++ {
		pkt := tp.newPacket()
		pkt.Payload = MSS
		tp.xmit(path, pkt, count)
	}
	tp.Engine().Run()
	if delivered != 64 || tp.Drops != 0 {
		t.Errorf("delivered %d (want 64), drops %d (want 0)", delivered, tp.Drops)
	}
}

// TestRoundRobinPickCycles: round-robin walks the backends cyclically
// in insertion order.
func TestRoundRobinPickCycles(t *testing.T) {
	lb := &lbState{
		policy:   RoundRobin,
		backends: []HostID{10, 11, 12, 13},
		active:   make([]int, 4),
		assigned: make([]int64, 4),
	}
	want := []int{0, 1, 2, 3, 0, 1, 2, 3}
	for i, w := range want {
		if got := lb.pick(); got != w {
			t.Fatalf("pick %d = backend %d, want %d", i, got, w)
		}
	}
	for i, n := range lb.assigned {
		if n != 2 {
			t.Errorf("backend %d assigned %d, want 2", i, n)
		}
	}
}

// TestLeastConnTieBreakDeterministic: least-connections breaks ties
// toward the lowest index, so with no releases it degenerates to the
// same cyclic order every run.
func TestLeastConnTieBreakDeterministic(t *testing.T) {
	seq := func() []int {
		lb := &lbState{
			policy:   LeastConnections,
			backends: []HostID{10, 11, 12, 13},
			active:   make([]int, 4),
			assigned: make([]int64, 4),
		}
		var got []int
		for i := 0; i < 8; i++ {
			got = append(got, lb.pick())
		}
		return got
	}
	want := []int{0, 1, 2, 3, 0, 1, 2, 3}
	first := seq()
	for i, w := range want {
		if first[i] != w {
			t.Fatalf("pick sequence %v, want %v (lowest-index tie-break)", first, want)
		}
	}
	second := seq()
	for i := range first {
		if first[i] != second[i] {
			t.Fatalf("non-deterministic pick: run1 %v run2 %v", first, second)
		}
	}
}

// TestLeastConnFollowsReleases: a freed backend wins the next pick.
func TestLeastConnFollowsReleases(t *testing.T) {
	lb := &lbState{
		policy:   LeastConnections,
		backends: []HostID{10, 11, 12},
		active:   make([]int, 3),
		assigned: make([]int64, 3),
	}
	for i := 0; i < 3; i++ {
		lb.pick()
	}
	lb.active[2]-- // backend 2's connection completes
	if got := lb.pick(); got != 2 {
		t.Errorf("pick after release = %d, want 2 (fewest active)", got)
	}
}

// twoHopServe runs a small open-loop load across a two-hop 15ms+15ms
// path (static RTT ~60ms — right at the legacy RTO floor, which
// without RTT adaptation retransmits every exchange).
func twoHopServe(t *testing.T, loss int) (*OpenPool, *kernel.Kernel) {
	t.Helper()
	k := kernel.New(kernel.Config{Name: "far", MemPages: 512})
	tp := NewTopologyOn(k.Eng)
	client := tp.AddHost("client")
	mid := tp.AddHost("wan-switch")
	srv := tp.AttachKernel("server", k)
	spec := LinkSpec{Latency: 15 * sim.Millisecond, LossRate: loss}
	tp.Link(client, mid, spec)
	tp.Link(mid, srv, spec)
	k.Spawn("server", func(e *kernel.Env) {
		e.Creds = cap.UnixCreds(0)
		tp.NIC(srv).Serve(e, testServerConfig(), func(*kernel.Env, *Conn) int { return 4000 }, 0)
	})
	pool := tp.OpenLoop(OpenLoopConfig{
		From: client, Target: srv, Conns: 20, Rate: 200,
		Classes: []RequestClass{{Name: "doc", DocSize: 4000, Weight: 1}},
	})
	k.Eng.Run()
	return pool, k
}

// TestAdaptiveRTOCleanLongPath: on a lossless long path the RTO must
// scale with the measured RTT — zero retransmits, every connection
// completes. (With the fixed 60ms floor the ~60ms path livelocks.)
func TestAdaptiveRTOCleanLongPath(t *testing.T) {
	pool, k := twoHopServe(t, 0)
	if pool.Completed != 20 {
		t.Fatalf("completed %d/20 on a lossless long path", pool.Completed)
	}
	if rtx := k.Stats.Get(sim.CtrRetransmits); rtx != 0 {
		t.Errorf("%d spurious retransmits on a lossless path (RTO below path RTT?)", rtx)
	}
}

// TestAdaptiveRTOLossyLongPath: per-link loss on both hops — recovery
// must still converge (retransmissions happen, the load drains).
func TestAdaptiveRTOLossyLongPath(t *testing.T) {
	pool, k := twoHopServe(t, 25)
	if pool.Completed != 20 {
		t.Fatalf("completed %d/20 on a lossy long path (livelock?)", pool.Completed)
	}
	if rtx := k.Stats.Get(sim.CtrRetransmits); rtx == 0 {
		t.Error("no retransmits despite 1-in-25 per-link loss on both hops")
	}
}

// TestTrunkRotation: parallel links between one pair rotate per
// connection-path computation, in link order.
func TestTrunkRotation(t *testing.T) {
	tp := NewTopology()
	a := tp.AddHost("a")
	b := tp.AddHost("b")
	for i := 0; i < 3; i++ {
		tp.Link(a, b, LinkSpec{})
	}
	var got []*link
	for i := 0; i < 6; i++ {
		path := tp.appendPath(nil, a, b)
		got = append(got, path[0].l)
	}
	for i := range got {
		if want := tp.links[i%3]; got[i] != want {
			t.Fatalf("path %d used link %d, want %d (round-robin)", i, linkIndex(tp, got[i]), i%3)
		}
	}
}

func linkIndex(tp *Topology, l *link) int {
	for i, cand := range tp.links {
		if cand == l {
			return i
		}
	}
	return -1
}

// TestBFSRouting: multi-hop routes resolve and carry traffic
// end-to-end through intermediate plain hosts.
func TestBFSRouting(t *testing.T) {
	tp := NewTopology()
	a := tp.AddHost("a")
	s1 := tp.AddHost("s1")
	s2 := tp.AddHost("s2")
	d := tp.AddHost("d")
	tp.Link(a, s1, LinkSpec{})
	tp.Link(s1, s2, LinkSpec{})
	tp.Link(s2, d, LinkSpec{})
	path := tp.appendPath(nil, a, d)
	if len(path) != 3 {
		t.Fatalf("path a->d has %d hops, want 3", len(path))
	}
	delivered := false
	pkt := tp.newPacket()
	pkt.Payload = 100
	tp.xmit(path, pkt, &funcSink{f: func(p *Packet) { delivered = true; tp.release(p) }})
	tp.Engine().Run()
	if !delivered {
		t.Fatal("packet not delivered across 3-hop route")
	}
}
