package netsim

import (
	"strings"
	"testing"

	"xok/internal/fault"
)

// shardPair builds a two-island fabric: host a on the root island,
// host b on its own island, one link between them.
func shardPair(t *testing.T, spec LinkSpec) (*Topology, HostID, HostID) {
	t.Helper()
	tp := NewTopology()
	a := tp.AddHost("a")
	b := tp.AddHost("b")
	isl := tp.AddIsland()
	tp.hosts[b].rt = tp.islands[isl]
	tp.Link(a, b, spec)
	return tp, a, b
}

// TestRunShardedRejectsZeroLatencyCrossLink: a zero-latency link
// between islands admits no lookahead; RunSharded must refuse it with
// a diagnostic naming the hosts — and return, never deadlock.
func TestRunShardedRejectsZeroLatencyCrossLink(t *testing.T) {
	tp, _, _ := shardPair(t, LinkSpec{})
	// LinkSpec cannot express zero latency publicly (0 means the
	// default); force it the way a future partitioner bug would.
	tp.links[0].latency = 0
	err := tp.RunSharded()
	if err == nil {
		t.Fatal("RunSharded accepted a zero-latency cross-island link")
	}
	for _, want := range []string{"a", "b", "zero-latency"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("error %q does not mention %q", err, want)
		}
	}
}

// TestRunShardedRejectsLossyCrossLink: per-link loss draws must stay
// island-local, so a lossy cross-island link is refused.
func TestRunShardedRejectsLossyCrossLink(t *testing.T) {
	tp, _, _ := shardPair(t, LinkSpec{LossRate: 10})
	if err := tp.RunSharded(); err == nil {
		t.Fatal("RunSharded accepted a lossy cross-island link")
	}
}

// TestRunShardedRejectsGlobalNondeterminism: fabric-wide loss and
// fault plans draw from global streams a partitioned run cannot
// reproduce.
func TestRunShardedRejectsGlobalNondeterminism(t *testing.T) {
	tp, _, _ := shardPair(t, LinkSpec{})
	tp.LossRate = 100
	if err := tp.RunSharded(); err == nil {
		t.Fatal("RunSharded accepted a fabric-wide LossRate")
	}
	tp.LossRate = 0
	tp.Faults = &fault.Plan{}
	if err := tp.RunSharded(); err == nil {
		t.Fatal("RunSharded accepted a fault plan")
	}
}

// pingPong bounces one packet back and forth across the cross-island
// link; each side draws from its own island freelist and releases
// what lands on it, so a warmed steady state recycles every packet.
type pingPong struct {
	tp     *Topology
	ab, ba []hop
	a, b   HostID
	left   int
}

// ppSinkA/ppSinkB are the two delivery endpoints (one per island).
type ppSinkA struct{ pp *pingPong }
type ppSinkB struct{ pp *pingPong }

// deliverPkt on B's island: recycle the landed packet, volley back.
func (s *ppSinkB) deliverPkt(pkt *Packet) {
	pp := s.pp
	pp.tp.hosts[pp.b].rt.release(pkt)
	pp.send(pp.ba, &ppSinkA{pp})
}

// deliverPkt on the root island: recycle, count, volley again.
func (s *ppSinkA) deliverPkt(pkt *Packet) {
	pp := s.pp
	pp.tp.hosts[pp.a].rt.release(pkt)
	if pp.left--; pp.left > 0 {
		pp.send(pp.ab, &ppSinkB{pp})
	}
}

func (pp *pingPong) send(path []hop, to sink) {
	from := path[0].l.rt[path[0].dir]
	pkt := from.newPacket()
	pkt.SrcPort, pkt.DstPort = 9999, ServerPort
	pkt.Payload = MSS
	pp.tp.xmit(path, pkt, to)
}

// TestCrossIslandHandoffSteadyStateAllocs pins the allocation count of
// the cross-partition packet hand-off: in steady state a round trip
// costs only the two sink wrappers the test itself builds per volley —
// packets and transit records recycle through the island freelists,
// SendArg hands events across without a closure, and the channel rings
// are warm, exactly as on the single-engine path.
func TestCrossIslandHandoffSteadyStateAllocs(t *testing.T) {
	tp, a, b := shardPair(t, LinkSpec{})
	pp := &pingPong{tp: tp, a: a, b: b}
	pp.ab = tp.appendPath(nil, a, b)
	pp.ba = tp.appendPath(nil, b, a)

	const volleys = 400
	run := func() {
		pp.left = volleys
		tp.Engine().At(tp.Engine().Now(), func() { pp.send(pp.ab, &ppSinkB{pp}) })
		if err := tp.RunSharded(); err != nil {
			t.Fatal(err)
		}
	}
	run() // warm freelists and channel rings

	avg := testing.AllocsPerRun(3, run)
	// 2 test-built sink wrappers per round trip, plus the run's fixed
	// overhead (goroutines, termination state) amortized over the
	// volleys. Anything near 3/volley means packets, transit records or
	// ring slots are being reallocated per message.
	if perVolley := avg / volleys; perVolley > 2.5 {
		t.Fatalf("cross-island hand-off: %.2f allocs/volley, want <= 2.5", perVolley)
	}
}
