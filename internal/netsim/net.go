// Package netsim models the paper's network environment for the HTTP
// experiments (Section 7.3): a server machine with three 100-Mbit/s
// Ethernets and a population of closed-loop clients. Packets occupy
// link bandwidth for their wire time, arrivals interrupt the server's
// CPU, and Xok's dynamic packet filters (internal/dpf) demultiplex
// arriving packets to the listening server or the specific connection
// — exactly the kernel path Xok uses.
//
// The transport is a compact HTTP/1.0-over-TCP exchange: SYN,
// SYN-ACK, request (piggybacked on the client's ACK), response
// segments with delayed client ACKs every second segment, FIN. The
// server-side cost knobs (per-connection CPU, per-packet CPU, copies
// into a retransmission pool, checksum computation, separate
// control packets, fork-per-request) are what differentiate the five
// servers of Figure 3.
package netsim

import (
	"encoding/binary"

	"xok/internal/dpf"
	"xok/internal/fault"
	"xok/internal/kernel"
	"xok/internal/sim"
)

// TCP/IP header bytes per segment on the wire.
const ipTCPHeader = 40

// MSS is the maximum segment payload.
const MSS = sim.EthernetMTU - ipTCPHeader

// Packet flags.
const (
	FlagSYN uint8 = 1 << iota
	FlagACK
	FlagFIN
	FlagPSH
)

// Packet is one TCP segment (payload content is not materialized; the
// header bytes are real so the packet filters have something to match).
type Packet struct {
	SrcPort uint16
	DstPort uint16
	Flags   uint8
	Payload int
	Seq     int // first payload byte's offset in the response stream
	Ack     int // client ACK: bytes received in order
	Conn    *Conn

	// refs counts pending deliveries of this exact packet object (a
	// fault-plan duplication puts the same pointer on the wire twice).
	// When it reaches zero the packet returns to the Net's freelist.
	refs int
}

// HeaderInto renders the bytes the packet filter engine matches — dst
// port, src port, flags — into buf (len >= 5), returning buf[:5]. The
// receive path reuses one per-Net buffer: the filter engine matches and
// never retains.
func (p *Packet) HeaderInto(buf []byte) []byte {
	_ = buf[4]
	binary.BigEndian.PutUint16(buf[0:], p.DstPort)
	binary.BigEndian.PutUint16(buf[2:], p.SrcPort)
	buf[4] = p.Flags
	return buf[:5]
}

// Header renders the match bytes into a fresh slice.
func (p *Packet) Header() []byte {
	return p.HeaderInto(make([]byte, 5))
}

// Link is one full-duplex Ethernet.
type Link struct {
	eng  *sim.Engine
	busy [2]sim.Time // per-direction transmit horizon
}

// Directions.
const (
	toServer = 0
	toClient = 1
)

// transmit serializes a frame on one direction and schedules delivery.
func (l *Link) transmit(dir int, payload int, deliver func()) {
	start := l.eng.Now()
	if l.busy[dir] > start {
		start = l.busy[dir]
	}
	tx := sim.WireTime(payload + ipTCPHeader)
	l.busy[dir] = start + tx
	l.eng.At(start+tx+sim.LinkLatency, deliver)
}

// Net is the network attached to one server machine.
type Net struct {
	K     *kernel.Kernel
	Eng   *sim.Engine
	Links []*Link
	DPF   *dpf.Engine

	// LossRate drops roughly one in LossRate TCP segments, in BOTH
	// directions — SYNs, requests and ACKs as well as response data (0
	// = lossless, the default). Deterministic: driven by lossRNG. The
	// machine's fault plan (kernel.Config.Faults) adds independent
	// loss, duplication and reordering channels on top.
	LossRate int
	lossRNG  *sim.RNG

	plan *fault.Plan // the machine's fault plan (nil = none)

	stack *Stack

	// freePkts recycles Packet objects machine-locally: a saturated
	// Figure 3 run sends hundreds of thousands of segments whose
	// lifetime is a few events. The whole machine is sequential (engine
	// callbacks and environment goroutines alternate), so no locking.
	freePkts []*Packet
	hdrBuf   [5]byte // serverRx filter-match scratch
}

// newPacket returns a zeroed Packet from the freelist (or the heap).
func (n *Net) newPacket() *Packet {
	if k := len(n.freePkts); k > 0 {
		p := n.freePkts[k-1]
		n.freePkts = n.freePkts[:k-1]
		*p = Packet{}
		return p
	}
	return &Packet{}
}

// release drops one pending delivery; the last one frees the packet.
func (n *Net) release(p *Packet) {
	p.refs--
	if p.refs == 0 {
		n.freePkts = append(n.freePkts, p)
	}
}

// New wires sim.NumLinks Ethernets to the kernel's machine.
func New(k *kernel.Kernel) *Net {
	n := &Net{K: k, Eng: k.Eng, DPF: dpf.NewEngine(),
		lossRNG: sim.NewRNG(0xfade), plan: k.Faults}
	for i := 0; i < sim.NumLinks; i++ {
		n.Links = append(n.Links, &Link{eng: k.Eng})
	}
	return n
}

// xmit puts one segment on the wire in the given direction, applying
// the fault decisions: loss (LossRate or the fault plan), duplication
// and reordering (fault plan only). A lost segment still consumes its
// wire time — the frame went out, it just never arrives. A duplicated
// segment is sent twice back to back; a reordered one has its delivery
// delayed a few frame times so that successors overtake it.
// Each copy carries one reference; a lost copy releases it on
// "arrival", a delivered copy passes it to deliver, which owns it from
// then on (serverRx hands it to the ring and the server loop releases
// after processing; the client path releases as soon as clientDeliver
// returns).
func (n *Net) xmit(link *Link, dir int, pkt *Packet, deliver func(*Packet)) {
	copies := 1
	if n.plan.DupSegment() {
		copies = 2
	}
	pkt.refs = copies
	for i := 0; i < copies; i++ {
		lost := n.LossRate > 0 && n.lossRNG.Intn(n.LossRate) == 0
		if n.plan.DropSegment() {
			lost = true
		}
		var delay sim.Time
		if n.plan.ReorderSegment() {
			delay = 2 * sim.WireTime(sim.EthernetMTU+ipTCPHeader)
		}
		link.transmit(dir, pkt.Payload, func() {
			if lost {
				n.release(pkt)
				return
			}
			if delay > 0 {
				n.Eng.After(delay, func() { deliver(pkt) })
				return
			}
			deliver(pkt)
		})
	}
}

// serverRx is the NIC receive path: interrupt, packet filter, enqueue
// on the owner's ring, wake the server.
func (n *Net) serverRx(pkt *Packet) {
	n.K.ChargeInterrupt(sim.CostNICInterrupt)
	n.K.Stats.Inc(sim.CtrPacketsRx)
	if tr := n.K.Trace; tr != nil && pkt.Conn != nil {
		tr.Instant(n.K.TracePID, pkt.Conn.lane(), "net", "rx", n.Eng.Now())
	}
	n.K.ChargeInterrupt(sim.CostPacketFilter)
	owner, ok := n.DPF.Dispatch(pkt.HeaderInto(n.hdrBuf[:]))
	if !ok {
		n.release(pkt)
		return // no filter claims it: dropped
	}
	ring, ok := owner.(*ring)
	if !ok {
		n.release(pkt)
		return
	}
	ring.push(pkt)
}

// ring is a packet ring bound to the server stack ("packet rings ...
// allow protected buffering of received network packets", Section
// 5.2.1).
type ring struct {
	stack *Stack
}

func (r *ring) push(pkt *Packet) {
	s := r.stack
	s.inbox = append(s.inbox, pkt)
	if s.env != nil {
		s.net.K.Wake(s.env)
	}
}
