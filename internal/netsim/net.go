// Package netsim models the paper's network environment for the HTTP
// experiments (Section 7.3) and its cluster-scale extension: hosts
// joined by links with real bandwidth, latency and queue bounds
// (Topology), machines attached at NICs, and an optional
// load-balancer node spreading connections over several servers.
// Packets occupy link bandwidth for their wire time, arrivals
// interrupt the owning machine's CPU, and Xok's dynamic packet
// filters (internal/dpf) demultiplex arriving packets to the
// listening server or the specific connection — exactly the kernel
// path Xok uses.
//
// The transport is a compact HTTP/1.0-over-TCP exchange: SYN,
// SYN-ACK, request (piggybacked on the client's ACK), response
// segments with delayed client ACKs every second segment, FIN. The
// server-side cost knobs (per-connection CPU, per-packet CPU, copies
// into a retransmission pool, checksum computation, separate
// control packets, fork-per-request) are what differentiate the five
// servers of Figure 3.
//
// Load comes in two shapes: the closed-loop ClientPool of Figure 3
// (each client reissues as soon as its response lands) and the
// open-loop OpenPool (arrivals follow a Poisson or uniform process
// regardless of completions — the cluster experiment's offered load).
package netsim

import (
	"encoding/binary"

	"xok/internal/kernel"
	"xok/internal/sim"
)

// TCP/IP header bytes per segment on the wire.
const ipTCPHeader = 40

// MSS is the maximum segment payload.
const MSS = sim.EthernetMTU - ipTCPHeader

// Packet flags.
const (
	FlagSYN uint8 = 1 << iota
	FlagACK
	FlagFIN
	FlagPSH
)

// Packet is one TCP segment (payload content is not materialized; the
// header bytes are real so the packet filters have something to match).
// Ports are 32 bits wide — wider than TCP's — so a connection-scale
// run (100k+ client ports from one host) never wraps into a colliding
// port and a stolen packet filter.
type Packet struct {
	SrcPort uint32
	DstPort uint32
	Flags   uint8
	Payload int
	Seq     int // first payload byte's offset in the response stream
	Ack     int // client ACK: bytes received in order
	Conn    *Conn

	// refs counts pending deliveries of this exact packet object (a
	// fault-plan duplication puts the same pointer on the wire twice).
	// When it reaches zero the packet returns to the fabric's freelist.
	refs int
}

// HeaderInto renders the bytes the packet filter engine matches — dst
// port at 0 (32 bits), src port at 4 (32 bits), flags at 8 — into buf
// (len >= 9), returning buf[:9]. The receive path reuses one per-NIC
// buffer: the filter engine matches and never retains.
func (p *Packet) HeaderInto(buf []byte) []byte {
	_ = buf[8]
	binary.BigEndian.PutUint32(buf[0:], p.DstPort)
	binary.BigEndian.PutUint32(buf[4:], p.SrcPort)
	buf[8] = p.Flags
	return buf[:9]
}

// Header renders the match bytes into a fresh slice.
func (p *Packet) Header() []byte {
	return p.HeaderInto(make([]byte, 9))
}

// Net is the deprecated single-machine view of the fabric: one server
// machine with sim.NumLinks Ethernets to one client host — exactly
// the pre-Topology package API.
//
// Deprecated: build a Topology. Net remains so existing single-server
// harnesses keep compiling; it is a thin veneer over a two-host
// Topology and produces event-for-event identical behavior.
type Net struct {
	*Topology
	K *kernel.Kernel

	// Client and Server are the two hosts of the legacy pairing.
	Client HostID
	Server HostID
}

// New wires sim.NumLinks Ethernets between a client host and the
// kernel's machine.
//
// Deprecated: build a Topology with AddHost/AttachKernel/Link.
func New(k *kernel.Kernel) *Net {
	t := NewTopologyOn(k.Eng)
	t.Faults = k.Faults
	n := &Net{Topology: t, K: k}
	n.Client = t.AddHost("client")
	n.Server = t.AttachKernel("server", k)
	for i := 0; i < sim.NumLinks; i++ {
		t.Link(n.Client, n.Server, LinkSpec{})
	}
	return n
}

// Serve runs the server loop on the machine's NIC (see NIC.Serve).
func (n *Net) Serve(env *kernel.Env, cfg StackConfig, handler Handler, stopAt sim.Time) *Stack {
	return n.Topology.NIC(n.Server).Serve(env, cfg, handler, stopAt)
}

// NewClientPool prepares closed-loop clients against the server (see
// Topology.NewClientPool).
func (n *Net) NewClientPool(clients, docSize int, stopAt sim.Time) *ClientPool {
	return n.Topology.NewClientPool(n.Client, n.Server, clients, docSize, stopAt)
}
