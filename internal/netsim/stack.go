package netsim

import (
	"xok/internal/dpf"
	"xok/internal/kernel"
	"xok/internal/sim"
)

// StackConfig is the server-side protocol cost profile. The five HTTP
// servers of Figure 3 differ exactly in these knobs:
//
//   - the OpenBSD socket stack pays heavy per-packet and
//     per-connection kernel work, copies every payload into a kernel
//     retransmission pool and checksums it at send time, and emits
//     separate control packets (ACK of the request, standalone FIN);
//   - the XIO-based socket stack on Xok is the same interface with a
//     leaner user-level implementation (protocol control block reuse,
//     cheaper crossings);
//   - Cheetah additionally transmits file data directly from the file
//     cache with precomputed checksums (no copies, no checksum at
//     send), and merges control packets into data packets
//     ("knowledge-based packet merging").
type StackConfig struct {
	Name           string
	PerConn        sim.Time // connection setup/teardown CPU
	PerPacket      sim.Time // per-segment stack processing
	AckCost        sim.Time // processing one client ACK
	CopyOnSend     bool     // copy payloads into a retransmission pool
	ChecksumOnSend bool     // checksum each segment at send time
	SeparateReqAck bool     // ACK the request in its own packet
	SeparateFIN    bool     // FIN as its own packet
	ForkPerRequest sim.Time // NCSA: fork+exec a handler per request
}

// Handler produces the response body length for a request and performs
// the server's file system work in the server environment.
type Handler func(e *kernel.Env, conn *Conn) int

// flagRetransmit is an internal inbox marker: the RTO timer fired.
const flagRetransmit uint8 = 0x80

// RTO is the floor of the server retransmission timeout. Connections
// on high-latency paths scale it from the measured round-trip time
// instead (see Conn.serverTimeout).
const RTO = 80 * sim.Millisecond

// NIC is a machine's interface on the fabric: the receive path
// charges the machine's CPU for the interrupt and packet filter, and
// the server stack transmits from here.
type NIC struct {
	t    *Topology
	host *host
	rt   *islandRT // the machine's island: its engine and freelist
	K    *kernel.Kernel
	DPF  *dpf.Engine

	stack  *Stack
	hdrBuf [9]byte // rx filter-match scratch
}

// Host returns the NIC's host id in the topology.
func (nic *NIC) Host() HostID { return nic.host.id }

// deliverPkt is the NIC receive path (the NIC is the sink of every
// client->server path): interrupt, packet filter, enqueue on the
// owner's ring, wake the server.
func (nic *NIC) deliverPkt(pkt *Packet) {
	nic.K.ChargeInterrupt(sim.CostNICInterrupt)
	nic.K.Stats.Inc(sim.CtrPacketsRx)
	if tr := nic.K.Trace; tr != nil && pkt.Conn != nil {
		tr.Instant(nic.K.TracePID, pkt.Conn.lane(), "net", "rx", nic.rt.eng.Now())
	}
	nic.K.ChargeInterrupt(sim.CostPacketFilter)
	owner, ok := nic.DPF.Dispatch(pkt.HeaderInto(nic.hdrBuf[:]))
	if !ok {
		nic.rt.release(pkt)
		return // no filter claims it: dropped
	}
	ring, ok := owner.(*ring)
	if !ok {
		nic.rt.release(pkt)
		return
	}
	ring.push(pkt)
}

// ring is a packet ring bound to the server stack ("packet rings ...
// allow protected buffering of received network packets", Section
// 5.2.1).
type ring struct {
	stack *Stack
}

func (r *ring) push(pkt *Packet) {
	s := r.stack
	s.inbox = append(s.inbox, pkt)
	if s.env != nil {
		s.nic.K.Wake(s.env)
	}
}

// Stack is the server's protocol endpoint.
type Stack struct {
	nic *NIC
	cfg StackConfig
	env *kernel.Env

	// inbox is a head-indexed queue: wait pops from inHead and the
	// storage is reclaimed wholesale when it drains, so steady-state
	// receive buffering allocates nothing (the old inbox[1:] drift
	// forced append to reallocate continuously).
	inbox   []*Packet
	inHead  int
	rg      ring // shared filter owner: one ring per stack, not per conn
	handler Handler

	// stopAt ends the server loop at a deadline; 0 serves forever
	// (the loop exits only when the machine shuts down).
	stopAt sim.Time
}

// Serve installs the listen filter and runs the server loop in env
// until stopAt (0 = serve forever; then the environment exits).
func (nic *NIC) Serve(env *kernel.Env, cfg StackConfig, handler Handler, stopAt sim.Time) *Stack {
	s := &Stack{nic: nic, cfg: cfg, env: env, handler: handler, stopAt: stopAt}
	s.rg.stack = s
	nic.stack = s
	listen := &dpf.Filter{Cmps: []dpf.Cmp{dpf.Eq32(0, ServerPort)}}
	if _, err := nic.DPF.Insert(listen, &s.rg); err != nil {
		panic("netsim: listen filter: " + err.Error())
	}
	if stopAt > 0 {
		// Stop event so the server wakes up and notices the deadline
		// even if traffic is in flight.
		nic.rt.eng.At(stopAt, func() { nic.K.Wake(env) })
	}
	s.loop()
	return s
}

// expired reports whether the serve deadline has passed.
func (s *Stack) expired() bool {
	return s.stopAt > 0 && s.nic.rt.eng.Now() >= s.stopAt
}

// wait blocks the server until a packet arrives or the deadline hits.
func (s *Stack) wait() *Packet {
	for s.inHead == len(s.inbox) {
		if s.expired() {
			return nil
		}
		s.env.Block()
	}
	pkt := s.inbox[s.inHead]
	s.inbox[s.inHead] = nil
	s.inHead++
	if s.inHead == len(s.inbox) {
		s.inbox = s.inbox[:0]
		s.inHead = 0
	}
	return pkt
}

func (s *Stack) loop() {
	for {
		pkt := s.wait()
		if pkt == nil {
			return
		}
		if s.expired() {
			return
		}
		c := pkt.Conn
		switch {
		case pkt.Flags&flagRetransmit != 0:
			s.retransmit(c)
		case pkt.Flags&FlagSYN != 0:
			s.acceptConn(c)
		case pkt.Payload > 0: // the HTTP request
			s.serveRequest(c)
		default: // bare ACK
			s.env.Use(s.cfg.AckCost)
			if pkt.Ack > c.srvAcked {
				c.srvAcked = pkt.Ack
			}
			if !c.srvDone && c.srvTotal > 0 && c.srvAcked >= c.srvTotal {
				s.retireConn(c)
			}
		}
		// The ring handed us this delivery; processing is done.
		s.nic.rt.release(pkt)
	}
}

// acceptConn performs the server side of the handshake: PCB setup and
// a connection-specific packet filter, then SYN-ACK.
func (s *Stack) acceptConn(c *Conn) {
	if c.srvAccepted {
		// Duplicate SYN (retransmitted or duplicated in flight; the
		// first SYN-ACK may have been lost): re-send the SYN-ACK
		// without setting up a second PCB or filter.
		c.sendToClient(FlagSYN|FlagACK, 0, 0)
		return
	}
	c.srvAccepted = true
	s.env.Use(s.cfg.PerConn)
	f := &dpf.Filter{Cmps: []dpf.Cmp{
		dpf.Eq32(0, ServerPort),
		dpf.Eq32(4, c.clientPort),
	}}
	id, err := s.nic.DPF.Insert(f, &s.rg)
	if err == nil {
		c.filterID = id
		c.hasFilter = true
	}
	c.sendToClient(FlagSYN|FlagACK, 0, 0)
}

// serveRequest runs the handler and streams the response.
func (s *Stack) serveRequest(c *Conn) {
	if c.srvTotal > 0 || c.srvDone {
		// Duplicate request (a client retransmit crossed our response):
		// the handler already ran; the RTO covers delivery.
		return
	}
	c.tsReq = s.nic.rt.eng.Now()
	// Receive-side processing of the request segment.
	s.env.Use(s.cfg.PerPacket)
	if s.cfg.CopyOnSend {
		s.env.Use(sim.CopyCost(requestBytes))
	}
	if s.cfg.ForkPerRequest > 0 {
		s.nic.K.Stats.Inc(sim.CtrForks)
		s.env.Use(s.cfg.ForkPerRequest)
	}
	if s.cfg.SeparateReqAck {
		s.env.Use(s.cfg.PerPacket)
		c.sendToClient(FlagACK, 0, 0)
	}

	body := s.handler(s.env, c)
	c.srvTotal = responseHeader + body
	c.srvAcked = 0
	s.sendFrom(c, 0, true)
	s.armRTO(c)
}

// sendFrom streams the response from byte offset `from`. On the first
// transmission copies go into the retransmission pool (socket
// semantics); on retransmits the pool already holds the bytes — no
// copy, only (for BSD-style stacks) a fresh checksum.
func (s *Stack) sendFrom(c *Conn, from int, first bool) {
	total := c.srvTotal
	for off := from; off < total; {
		seg := total - off
		if seg > MSS {
			seg = MSS
		}
		s.env.Use(s.cfg.PerPacket)
		if first && s.cfg.CopyOnSend {
			s.env.Use(sim.CopyCost(seg))
			s.nic.K.Stats.Add(sim.CtrBytesCopied, int64(seg))
		}
		if s.cfg.ChecksumOnSend {
			s.env.Use(sim.ChecksumCost(seg))
			s.nic.K.Stats.Add(sim.CtrChecksums, int64(seg))
		}
		flags := FlagACK | FlagPSH
		if off+seg >= total && !s.cfg.SeparateFIN {
			flags |= FlagFIN // merged FIN (Cheetah-style)
		}
		c.sendToClient(flags, seg, off)
		off += seg
	}
	if s.cfg.SeparateFIN {
		s.env.Use(s.cfg.PerPacket)
		c.sendToClient(FlagFIN|FlagACK, 0, total)
	}
}

// armRTO schedules the retransmission timer; firing enqueues a marker
// packet the server loop handles with CPU properly charged.
func (s *Stack) armRTO(c *Conn) {
	eng := s.nic.rt.eng
	eng.Cancel(c.rto)
	c.rto = eng.AfterArg(c.serverTimeout(), rtoFire, c)
}

// rtoFire is the RTO firing body (package-level so the dominant
// arm/cancel timer churn never allocates). The stack is reached
// through the connection's backend NIC — the same stack armRTO ran on.
func rtoFire(a any) {
	c := a.(*Conn)
	c.rto = sim.Event{}
	s := c.backend.stack
	if s == nil || c.srvDone || s.expired() {
		return
	}
	mp := s.nic.rt.newPacket()
	mp.Flags, mp.Conn, mp.refs = flagRetransmit, c, 1
	s.inbox = append(s.inbox, mp)
	s.nic.K.Wake(s.env)
}

// retransmit resends the unacknowledged tail (go-back-N) out of the
// retransmission pool.
func (s *Stack) retransmit(c *Conn) {
	if c.srvDone || c.srvAcked >= c.srvTotal {
		return
	}
	s.nic.K.Stats.Inc(sim.CtrRetransmits)
	// Align to the segment boundary at or below the cumulative ACK.
	from := (c.srvAcked / MSS) * MSS
	s.sendFrom(c, from, false)
	s.armRTO(c)
}

// retireConn tears down a fully-acknowledged connection.
func (s *Stack) retireConn(c *Conn) {
	if tr := s.nic.K.Trace; tr != nil {
		tr.Instant(s.nic.K.TracePID, c.lane(), "http", "retire", s.nic.rt.eng.Now())
	}
	c.srvDone = true
	s.nic.rt.eng.Cancel(c.rto)
	c.rto = sim.Event{}
	if c.hasFilter {
		_ = s.nic.DPF.Remove(c.filterID)
		c.hasFilter = false
	}
}
