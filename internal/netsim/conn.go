package netsim

import (
	"strconv"

	"xok/internal/dpf"
	"xok/internal/sim"
	"xok/internal/trace"
)

// Conn is one HTTP/1.0 connection: server-side state plus the scripted
// client endpoint (clients are other machines; their logic runs in
// event callbacks with no simulated-CPU accounting — the paper
// saturates the server from multiple client hosts).
type Conn struct {
	net  *Net
	link *Link

	clientPort uint16
	filterID   dpf.ID
	hasFilter  bool

	// Client-side state. The client accepts segments in order only
	// (the link is FIFO; a loss leaves a hole that go-back-N
	// retransmission fills).
	expect    int // response bytes outstanding
	got       int // contiguous bytes received
	gotSynAck bool
	started   sim.Time
	tsReq     sim.Time  // when the server began serving the request
	deadline  sim.Time  // client stops re-sending past this point
	ctimer    sim.Event // client retransmission timer
	onDone    func(latency sim.Time)
	unacked   int // data segments since last client ACK
	reqDocLen int

	// Server-side retransmission state (the merged file cache /
	// retransmission pool holds the data; nothing is re-read or
	// re-copied on a retransmit).
	srvAccepted bool
	srvTotal    int
	srvAcked    int
	srvDone     bool
	rto         sim.Event
}

// clientRTO is the client-side retransmission timeout: shorter than the
// server's RTO so a stalled handshake restarts before the server's
// timer would have a say.
const clientRTO = 60 * sim.Millisecond

// clientDeliver handles a server->client segment at the client host.
func (c *Conn) clientDeliver(pkt *Packet) {
	if c.onDone != nil {
		c.armTimer() // any arrival is progress; push the timer back
	}
	if pkt.Flags&FlagSYN != 0 {
		if c.gotSynAck {
			return // duplicate SYN-ACK
		}
		c.gotSynAck = true
		c.sendRequest()
		return
	}
	if pkt.Payload > 0 {
		if pkt.Seq != c.got {
			// A predecessor was lost: discard and dup-ACK so the
			// server learns our progress.
			c.sendAck()
			return
		}
		c.got += pkt.Payload
		c.unacked++
		// Delayed ACK: every second segment.
		if c.unacked >= 2 {
			c.unacked = 0
			c.sendAck()
		}
	}
	// The client knows the response length up front, so arrival of the
	// last byte completes the request — a lost FIN must not strand a
	// connection whose data all made it.
	if c.got >= c.expect {
		done := c.onDone
		c.onDone = nil
		if done != nil {
			c.net.Eng.Cancel(c.ctimer)
			c.ctimer = sim.Event{}
			// Final cumulative ACK so the server can retire the
			// connection.
			c.sendAck()
			c.traceDone()
			done(c.net.Eng.Now() - c.started)
		}
	}
}

// sendSyn opens (or re-opens) the handshake.
func (c *Conn) sendSyn() {
	syn := c.net.newPacket()
	syn.SrcPort, syn.DstPort, syn.Flags, syn.Conn = c.clientPort, ServerPort, FlagSYN, c
	c.net.xmit(c.link, toServer, syn, c.net.serverRx)
}

// sendRequest piggybacks the HTTP request (a ~200-byte GET) on the
// client's handshake ACK.
func (c *Conn) sendRequest() {
	req := c.net.newPacket()
	req.SrcPort, req.DstPort, req.Conn = c.clientPort, ServerPort, c
	req.Flags, req.Payload = FlagACK|FlagPSH, requestBytes
	c.net.xmit(c.link, toServer, req, c.net.serverRx)
}

// armTimer (re)schedules the client retransmission timer. The server's
// go-back-N covers lost response data; this timer covers everything the
// server cannot know about — a lost SYN, SYN-ACK or request, and lost
// client ACKs that leave both ends waiting. On firing it re-sends
// whatever the exchange is missing and re-arms.
func (c *Conn) armTimer() {
	c.net.Eng.Cancel(c.ctimer)
	c.ctimer = c.net.Eng.After(clientRTO, func() {
		c.ctimer = sim.Event{}
		if c.onDone == nil || c.net.Eng.Now() >= c.deadline {
			return
		}
		switch {
		case !c.gotSynAck:
			c.sendSyn()
		case c.got == 0:
			c.sendRequest()
		default:
			c.sendAck() // remind the server of our progress
		}
		c.armTimer()
	})
}

// lane is this connection's trace lane (TID): 10000 + the client port.
func (c *Conn) lane() int64 { return 10000 + int64(c.clientPort) }

// traceDone emits the connection's phase spans — handshake+request
// (SYN sent to the server starting the handler) and stream (response
// bytes until the client has everything) — plus the end-to-end span
// and the http.request latency sample.
func (c *Conn) traceDone() {
	tr := c.net.K.Trace
	if tr == nil {
		return
	}
	now := c.net.Eng.Now()
	pid := c.net.K.TracePID
	if c.tsReq > c.started {
		tr.Span(pid, c.lane(), "http", "handshake+request", c.started, c.tsReq)
		tr.Span(pid, c.lane(), "http", "stream", c.tsReq, now)
	}
	tr.Span(pid, c.lane(), "http", "conn", c.started, now,
		trace.Arg{Key: "doc", Val: strconv.Itoa(c.reqDocLen)},
		trace.Arg{Key: "port", Val: strconv.Itoa(int(c.clientPort))})
	tr.Observe(pid, "http.request", now-c.started)
}

// sendAck transmits a cumulative ACK carrying the client's in-order
// byte count.
func (c *Conn) sendAck() {
	ack := c.net.newPacket()
	ack.SrcPort, ack.DstPort, ack.Conn = c.clientPort, ServerPort, c
	ack.Flags, ack.Ack = FlagACK, c.got
	c.net.xmit(c.link, toServer, ack, c.net.serverRx)
}

// deliverAndRelease consumes one client-bound delivery: unlike the
// server path, the client processes a segment synchronously, so the
// reference drops as soon as clientDeliver returns.
func (c *Conn) deliverAndRelease(pkt *Packet) {
	c.clientDeliver(pkt)
	c.net.release(pkt)
}

// sendToClient transmits a server segment; Net.xmit applies the fault
// decisions (loss, duplication, reordering) on the way out.
func (c *Conn) sendToClient(flags uint8, payload, seq int) {
	c.net.K.Stats.Inc(sim.CtrPacketsTx)
	if tr := c.net.K.Trace; tr != nil {
		tr.Instant(c.net.K.TracePID, c.lane(), "net", "tx", c.net.Eng.Now(),
			trace.Arg{Key: "seq", Val: strconv.Itoa(seq)},
			trace.Arg{Key: "payload", Val: strconv.Itoa(payload)})
	}
	pkt := c.net.newPacket()
	pkt.SrcPort, pkt.DstPort, pkt.Conn = ServerPort, c.clientPort, c
	pkt.Flags, pkt.Payload, pkt.Seq = flags, payload, seq
	c.net.xmit(c.link, toClient, pkt, c.deliverAndRelease)
}

// ClientPool drives nClients closed-loop HTTP clients against the
// server: each opens a connection, sends one request, reads the full
// response, and immediately issues the next. Connections round-robin
// across the links.
type ClientPool struct {
	net      *Net
	docSize  int
	nextPort uint16
	linkRR   int

	stopAt    sim.Time
	Completed int
	Bytes     int64
	latSum    sim.Time
	LatMax    sim.Time
}

// requestBytes is the size of an HTTP GET.
const requestBytes = 200

// responseHeader is the HTTP response header size.
const responseHeader = 200

// ServerPort is the HTTP port.
const ServerPort = 80

// NewClientPool prepares n clients fetching docSize-byte documents.
func (n *Net) NewClientPool(clients, docSize int, stopAt sim.Time) *ClientPool {
	p := &ClientPool{net: n, docSize: docSize, nextPort: 10000, stopAt: stopAt}
	for i := 0; i < clients; i++ {
		// Stagger starts slightly for a clean ramp.
		d := sim.Time(i) * 100
		n.Eng.After(d, p.startRequest)
	}
	return p
}

// startRequest opens a fresh connection and sends the SYN.
func (p *ClientPool) startRequest() {
	if p.net.Eng.Now() >= p.stopAt {
		return
	}
	port := p.nextPort
	p.nextPort++
	link := p.net.Links[p.linkRR%len(p.net.Links)]
	p.linkRR++
	c := &Conn{
		net:        p.net,
		link:       link,
		clientPort: port,
		expect:     responseHeader + p.docSize,
		started:    p.net.Eng.Now(),
		deadline:   p.stopAt,
		reqDocLen:  p.docSize,
	}
	c.onDone = func(lat sim.Time) {
		p.Completed++
		p.Bytes += int64(p.docSize)
		p.latSum += lat
		if lat > p.LatMax {
			p.LatMax = lat
		}
		p.startRequest()
	}
	c.sendSyn()
	c.armTimer()
}

// MeanLatency reports the average request latency.
func (p *ClientPool) MeanLatency() sim.Time {
	if p.Completed == 0 {
		return 0
	}
	return p.latSum / sim.Time(p.Completed)
}
