package netsim

import (
	"strconv"

	"xok/internal/dpf"
	"xok/internal/sim"
	"xok/internal/trace"
)

// connOwner receives connection completions. The pool that opened a
// connection owns it; an interface (rather than a per-connection
// callback closure) keeps opening 100k+ connections alloc-lean.
type connOwner interface {
	connDone(c *Conn, latency sim.Time)
}

// pathHalf is the hop capacity of each half of a connection's inline
// path buffer; deeper routes spill to the heap.
const pathHalf = 4

// Conn is one HTTP/1.0 connection: server-side state plus the scripted
// client endpoint (clients are other hosts; their logic runs in
// event callbacks with no simulated-CPU accounting — the paper
// saturates the server from multiple client hosts).
//
// Conn objects are deliberately NOT pooled: in-flight duplicate or
// lost-in-transit packets keep *Conn references alive across islands
// after completion, so recycling a retired connection under a sharded
// run would be a determinism (and correctness) hazard. The scale pass
// pools what cycles fast — packets, transit records, timer nodes —
// and keeps the connection itself a plain allocation.
type Conn struct {
	t       *Topology
	fwd     []hop // client -> server path (through the balancer, if any)
	rev     []hop // the same links walked back
	backend *NIC  // the serving machine's interface

	// pathBuf holds fwd (first half) and rev (second half) inline so
	// opening a connection does not allocate path slices.
	pathBuf [2 * pathHalf]hop

	// Load-balancer bookkeeping: which backend slot this connection
	// holds open (released exactly once, on completion).
	lbRef  *lbState
	lbIdx  int
	lbHeld bool

	// sink receives the connection's spans and latency samples
	// (default: the backend machine's tracer; pools may redirect).
	sink    *trace.Tracer
	sinkPID int64

	// class tags the request for per-class latency series;
	// classSeries is the precomputed "http.<class>" histogram name
	// ("" = the untagged legacy single-document workload).
	class       int
	classSeries string

	clientPort uint32
	filterID   dpf.ID
	hasFilter  bool

	// Client-side state. The client accepts segments in order only
	// (the path is FIFO; a loss leaves a hole that go-back-N
	// retransmission fills).
	expect    int // response bytes outstanding
	got       int // contiguous bytes received
	gotSynAck bool
	started   sim.Time
	tsReq     sim.Time  // when the server began serving the request
	deadline  sim.Time  // client stops re-sending past this point (0 = never)
	ctimer    sim.Event // client retransmission timer
	owner     connOwner // completion sink; nil once done
	unacked   int       // data segments since last client ACK
	reqDocLen int

	// Round-trip estimation. staticRTT is the path's propagation +
	// serialization bound computed at open; rttEst only ever rises,
	// lifted by the measured handshake RTT (monotone, so timer values
	// are deterministic and never shrink mid-connection).
	staticRTT sim.Time
	rttEst    sim.Time

	// Server-side retransmission state (the merged file cache /
	// retransmission pool holds the data; nothing is re-read or
	// re-copied on a retransmit).
	srvAccepted bool
	srvTotal    int
	srvAcked    int
	srvDone     bool
	rto         sim.Event
}

// clientRTO is the floor of the client-side retransmission timeout:
// shorter than the server's RTO so a stalled handshake restarts
// before the server's timer would have a say.
const clientRTO = 60 * sim.Millisecond

// adaptiveRTTMin gates measured-RTT timer scaling: a path whose
// static round trip is at least this long gets timeouts derived from
// the measured RTT (a fixed 60/80-ms timer under a comparable path
// RTT fires spuriously and livelocks lossy multi-hop paths in
// retransmission storms). LAN-scale paths keep the fixed floors — at
// a sub-millisecond RTT the floor already dominates, and inflating it
// with congestion-queueing samples would only slow loss recovery.
const adaptiveRTTMin = 10 * sim.Millisecond

// adaptive reports whether this connection's path is long enough for
// measured-RTT timeouts.
func (c *Conn) adaptive() bool { return c.staticRTT >= adaptiveRTTMin }

// clientTimeout is the client retransmission timeout: the legacy
// 60-ms floor, or 3x the path RTT estimate when the path is long.
func (c *Conn) clientTimeout() sim.Time {
	if c.adaptive() {
		if v := 3 * c.rttEst; v > clientRTO {
			return v
		}
	}
	return clientRTO
}

// serverTimeout is the server RTO: the legacy 80-ms floor, or 4x the
// path RTT estimate when the path is long (the server waits out a
// full client-timer cycle before going back-N).
func (c *Conn) serverTimeout() sim.Time {
	if c.adaptive() {
		if v := 4 * c.rttEst; v > RTO {
			return v
		}
	}
	return RTO
}

// Class returns the request-class index the connection was opened
// with (open-loop pools tag connections; handlers pick the document).
func (c *Conn) Class() int { return c.class }

// clientDeliver handles a server->client segment at the client host.
func (c *Conn) clientDeliver(pkt *Packet) {
	if c.owner != nil {
		c.armTimer() // any arrival is progress; push the timer back
	}
	if pkt.Flags&FlagSYN != 0 {
		if c.gotSynAck {
			return // duplicate SYN-ACK
		}
		c.gotSynAck = true
		// The handshake measures the path once: SYN out to SYN-ACK
		// back. The estimate only rises (Karn-style caution: a dup
		// SYN-ACK never produces a second, ambiguous sample).
		if s := c.t.eng.Now() - c.started; s > c.rttEst {
			c.rttEst = s
		}
		c.sendRequest()
		return
	}
	if pkt.Payload > 0 {
		if pkt.Seq != c.got {
			// A predecessor was lost: discard and dup-ACK so the
			// server learns our progress.
			c.sendAck()
			return
		}
		c.got += pkt.Payload
		c.unacked++
		// Delayed ACK: every second segment.
		if c.unacked >= 2 {
			c.unacked = 0
			c.sendAck()
		}
	}
	// The client knows the response length up front, so arrival of the
	// last byte completes the request — a lost FIN must not strand a
	// connection whose data all made it.
	if c.got >= c.expect {
		owner := c.owner
		c.owner = nil
		if owner != nil {
			c.t.eng.Cancel(c.ctimer)
			c.ctimer = sim.Event{}
			if c.lbHeld {
				c.lbHeld = false
				c.lbRef.active[c.lbIdx]--
			}
			// Final cumulative ACK so the server can retire the
			// connection.
			c.sendAck()
			c.traceDone()
			owner.connDone(c, c.t.eng.Now()-c.started)
		}
	}
}

// sendSyn opens (or re-opens) the handshake.
func (c *Conn) sendSyn() {
	syn := c.t.newPacket()
	syn.SrcPort, syn.DstPort, syn.Flags, syn.Conn = c.clientPort, ServerPort, FlagSYN, c
	c.t.xmit(c.fwd, syn, c.backend)
}

// sendRequest piggybacks the HTTP request (a ~200-byte GET) on the
// client's handshake ACK.
func (c *Conn) sendRequest() {
	req := c.t.newPacket()
	req.SrcPort, req.DstPort, req.Conn = c.clientPort, ServerPort, c
	req.Flags, req.Payload = FlagACK|FlagPSH, requestBytes
	c.t.xmit(c.fwd, req, c.backend)
}

// armTimer (re)schedules the client retransmission timer. The server's
// go-back-N covers lost response data; this timer covers everything the
// server cannot know about — a lost SYN, SYN-ACK or request, and lost
// client ACKs that leave both ends waiting. On firing it re-sends
// whatever the exchange is missing and re-arms.
func (c *Conn) armTimer() {
	c.t.eng.Cancel(c.ctimer)
	c.ctimer = c.t.eng.AfterArg(c.clientTimeout(), clientTimerFire, c)
}

// clientTimerFire is the client timer's firing body (package-level so
// re-arming a timer never allocates a closure).
func clientTimerFire(a any) {
	c := a.(*Conn)
	c.ctimer = sim.Event{}
	if c.owner == nil || (c.deadline > 0 && c.t.eng.Now() >= c.deadline) {
		return
	}
	switch {
	case !c.gotSynAck:
		c.sendSyn()
	case c.got == 0:
		c.sendRequest()
	default:
		c.sendAck() // remind the server of our progress
	}
	c.armTimer()
}

// lane is this connection's trace lane (TID): 10000 + the client port.
func (c *Conn) lane() int64 { return 10000 + int64(c.clientPort) }

// traceDone emits the connection's phase spans — handshake+request
// (SYN sent to the server starting the handler) and stream (response
// bytes until the client has everything) — plus the end-to-end span
// and the http.request latency sample (and the class's own series,
// for tagged connections).
func (c *Conn) traceDone() {
	tr := c.sink
	if tr == nil {
		return
	}
	now := c.t.eng.Now()
	pid := c.sinkPID
	if tr.EventsEnabled() {
		// Span records (and their rendered args) only exist on a
		// full tracer; a histogram-only sink skips the strconv work
		// entirely.
		if c.tsReq > c.started {
			tr.Span(pid, c.lane(), "http", "handshake+request", c.started, c.tsReq)
			tr.Span(pid, c.lane(), "http", "stream", c.tsReq, now)
		}
		tr.Span(pid, c.lane(), "http", "conn", c.started, now,
			trace.Arg{Key: "doc", Val: strconv.Itoa(c.reqDocLen)},
			trace.Arg{Key: "port", Val: strconv.Itoa(int(c.clientPort))})
	}
	tr.Observe(pid, "http.request", now-c.started)
	if c.classSeries != "" {
		tr.Observe(pid, c.classSeries, now-c.started)
	}
}

// sendAck transmits a cumulative ACK carrying the client's in-order
// byte count.
func (c *Conn) sendAck() {
	ack := c.t.newPacket()
	ack.SrcPort, ack.DstPort, ack.Conn = c.clientPort, ServerPort, c
	ack.Flags, ack.Ack = FlagACK, c.got
	c.t.xmit(c.fwd, ack, c.backend)
}

// deliverPkt consumes one client-bound delivery (the Conn is the sink
// of its reverse path): unlike the server path, the client processes a
// segment synchronously, so the reference drops as soon as
// clientDeliver returns.
func (c *Conn) deliverPkt(pkt *Packet) {
	c.clientDeliver(pkt)
	c.t.release(pkt)
}

// sendToClient transmits a server segment; Topology.xmit applies the
// fault decisions (loss, duplication, reordering) on the way out.
func (c *Conn) sendToClient(flags uint8, payload, seq int) {
	k := c.backend.K
	k.Stats.Inc(sim.CtrPacketsTx)
	if tr := k.Trace; tr != nil {
		tr.Instant(k.TracePID, c.lane(), "net", "tx", c.backend.rt.eng.Now(),
			trace.Arg{Key: "seq", Val: strconv.Itoa(seq)},
			trace.Arg{Key: "payload", Val: strconv.Itoa(payload)})
	}
	pkt := c.backend.rt.newPacket()
	pkt.SrcPort, pkt.DstPort, pkt.Conn = ServerPort, c.clientPort, c
	pkt.Flags, pkt.Payload, pkt.Seq = flags, payload, seq
	c.t.xmit(c.rev, pkt, c)
}

// ClientPool drives nClients closed-loop HTTP clients against the
// server: each opens a connection, sends one request, reads the full
// response, and immediately issues the next. Connections round-robin
// across parallel links.
type ClientPool struct {
	t        *Topology
	from     HostID
	target   HostID
	docSize  int
	nextPort uint32

	stopAt    sim.Time
	Completed int
	Bytes     int64
	latSum    sim.Time
	LatMax    sim.Time
}

// requestBytes is the size of an HTTP GET.
const requestBytes = 200

// responseHeader is the HTTP response header size.
const responseHeader = 200

// ServerPort is the HTTP port.
const ServerPort = 80

// NewClientPool prepares n closed-loop clients at host `from`
// fetching docSize-byte documents from `target` (a NIC host or a load
// balancer).
func (t *Topology) NewClientPool(from, target HostID, clients, docSize int, stopAt sim.Time) *ClientPool {
	p := &ClientPool{t: t, from: from, target: target, docSize: docSize,
		nextPort: 10000, stopAt: stopAt}
	for i := 0; i < clients; i++ {
		// Stagger starts slightly for a clean ramp.
		d := sim.Time(i) * 100
		t.eng.AfterArg(d, poolStart, p)
	}
	return p
}

// poolStart launches one closed-loop client (the staggered-start
// event's body).
func poolStart(a any) { a.(*ClientPool).startRequest() }

// startRequest opens a fresh connection and sends the SYN.
func (p *ClientPool) startRequest() {
	if p.t.eng.Now() >= p.stopAt {
		return
	}
	port := p.nextPort
	p.nextPort++
	c := p.t.openConn(p.from, p.target, port, p.docSize, p.stopAt)
	c.owner = p
	c.sendSyn()
	c.armTimer()
}

// connDone books one completed closed-loop request and immediately
// issues the next (the closed loop).
func (p *ClientPool) connDone(_ *Conn, lat sim.Time) {
	p.Completed++
	p.Bytes += int64(p.docSize)
	p.latSum += lat
	if lat > p.LatMax {
		p.LatMax = lat
	}
	p.startRequest()
}

// MeanLatency reports the average request latency.
func (p *ClientPool) MeanLatency() sim.Time {
	if p.Completed == 0 {
		return 0
	}
	return p.latSum / sim.Time(p.Completed)
}
