package netsim

import (
	"testing"

	"xok/internal/sim"
)

// releaseSink is a delivery endpoint that immediately releases the
// packet — the minimal implementation of the sink interface.
type releaseSink struct{ tp *Topology }

func (s *releaseSink) deliverPkt(p *Packet) { s.tp.release(p) }

// TestPacketSendPathSteadyStateAllocs pins the steady-state allocation
// count of the packet send path: take a Packet from the freelist, put
// it on the wire, deliver it, release it back. A saturated cluster run
// pushes millions of segments down this path; Packets, transit records
// and engine timer nodes all come from freelists and the delivery
// endpoint is an interface (no per-hop closure), so the whole
// traversal is allocation-free.
func TestPacketSendPathSteadyStateAllocs(t *testing.T) {
	eng := sim.NewEngine()
	tp := NewTopologyOn(eng)
	a := tp.AddHost("a")
	b := tp.AddHost("b")
	tp.Link(a, b, LinkSpec{})
	path := tp.appendPath(nil, a, b)
	to := &releaseSink{tp: tp}

	send := func() {
		pkt := tp.newPacket()
		pkt.SrcPort, pkt.DstPort = 9999, ServerPort
		pkt.Flags = FlagACK | FlagPSH
		pkt.Payload = MSS
		tp.xmit(path, pkt, to)
		eng.Run()
	}
	send() // warm the freelists

	avg := testing.AllocsPerRun(500, send)
	// A Packet or transit record escaping its freelist, a header slice
	// rematerializing, or a per-hop closure returning shows up as +1.
	if avg > 0 {
		t.Fatalf("steady-state packet send path: %.1f allocs/op, want 0", avg)
	}
}
