package netsim

import (
	"testing"

	"xok/internal/sim"
)

// TestPacketSendPathSteadyStateAllocs pins the steady-state allocation
// count of the packet send path: take a Packet from the freelist, put
// it on the wire, deliver it, release it back. A saturated Figure 3
// run pushes hundreds of thousands of segments down this path; before
// the freelist each one was a fresh Packet plus a fresh 5-byte header
// slice. The only allocation left is forward's per-hop transmit
// closure (one per hop on the path).
func TestPacketSendPathSteadyStateAllocs(t *testing.T) {
	eng := sim.NewEngine()
	tp := NewTopologyOn(eng)
	a := tp.AddHost("a")
	b := tp.AddHost("b")
	tp.Link(a, b, LinkSpec{})
	path := tp.appendPath(nil, a, b)
	deliver := func(p *Packet) { tp.release(p) }

	send := func() {
		pkt := tp.newPacket()
		pkt.SrcPort, pkt.DstPort = 9999, ServerPort
		pkt.Flags = FlagACK | FlagPSH
		pkt.Payload = MSS
		tp.xmit(path, pkt, deliver)
		eng.Run()
	}
	send() // warm the freelist

	avg := testing.AllocsPerRun(500, send)
	// 1 = the closure forward hands to link.transmit. A Packet escaping
	// the freelist or a header slice rematerializing shows up as +1.
	if avg > 1 {
		t.Fatalf("steady-state packet send path: %.1f allocs/op, want <= 1", avg)
	}
}
