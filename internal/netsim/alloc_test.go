package netsim

import (
	"testing"

	"xok/internal/sim"
)

// TestPacketSendPathSteadyStateAllocs pins the steady-state allocation
// count of the packet send path: take a Packet from the freelist, put
// it on the wire, deliver it, release it back. A saturated Figure 3
// run pushes hundreds of thousands of segments down this path; before
// the freelist each one was a fresh Packet plus a fresh 5-byte header
// slice. The only allocation left is xmit's per-copy transmit closure.
func TestPacketSendPathSteadyStateAllocs(t *testing.T) {
	eng := sim.NewEngine()
	n := &Net{Eng: eng}
	link := &Link{eng: eng}
	deliver := func(p *Packet) { n.release(p) }

	send := func() {
		pkt := n.newPacket()
		pkt.SrcPort, pkt.DstPort = 9999, ServerPort
		pkt.Flags = FlagACK | FlagPSH
		pkt.Payload = MSS
		n.xmit(link, toClient, pkt, deliver)
		eng.Run()
	}
	send() // warm the freelist

	avg := testing.AllocsPerRun(500, send)
	// 1 = the closure xmit hands to Link.transmit. A Packet escaping the
	// freelist or a header slice rematerializing shows up as +1.
	if avg > 1 {
		t.Fatalf("steady-state packet send path: %.1f allocs/op, want <= 1", avg)
	}
}
