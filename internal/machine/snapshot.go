package machine

import (
	"fmt"

	"xok/internal/bsdos"
	"xok/internal/exos"
)

// Snapshot is a frozen machine of any personality, taken at a
// quiescent point (all processes exited, event queue drained —
// exactly the state between two Run calls). Fork builds as many
// independent continuations as needed, concurrently if the caller
// likes: the snapshot is read-only, memory pages and disk blocks are
// copy-on-write, and each fork gets its own engine, tracer clone and
// fault-plan streams resumed mid-position. Replay equivalence is the
// contract: a fork runs bit-identically to a machine that reached the
// snapshot point from boot (trace digests, cycle counts, crash
// images).
type Snapshot struct {
	pers Personality
	xok  *exos.Snapshot
	bsd  *bsdos.Snapshot
}

// Personality reports which system the snapshot came from.
func (s *Snapshot) Personality() Personality { return s.pers }

// Snapshot implements Machine. A machine attached to a shared network
// fabric can only be snapshotted while the fabric is quiesced — no
// in-flight packets or timers anywhere on the shared engine — and the
// fork runs standalone (its own clock, no NIC). Machines on a sharded
// fabric refuse outright: quiescence would have to hold across every
// island and all the cross-island channels at once, which the fork —
// owning only its island's engine — could never re-establish.
func (m Xok) Snapshot() (*Snapshot, error) {
	if m.net != nil && m.net.Topology.Islands() > 1 {
		return nil, fmt.Errorf("machine: cannot snapshot a machine on a sharded fabric (topology has %d islands); snapshot a single-engine run instead",
			m.net.Topology.Islands())
	}
	pers := XokExOS
	if m.S.X.FreeCost {
		pers = XokUnprotected
	}
	sn, err := m.S.Snapshot()
	if err != nil {
		return nil, err
	}
	return &Snapshot{pers: pers, xok: sn}, nil
}

// Snapshot implements Machine. Sharded fabrics refuse, as for Xok.
func (m BSD) Snapshot() (*Snapshot, error) {
	if m.net != nil && m.net.Topology.Islands() > 1 {
		return nil, fmt.Errorf("machine: cannot snapshot a machine on a sharded fabric (topology has %d islands); snapshot a single-engine run instead",
			m.net.Topology.Islands())
	}
	var pers Personality
	switch m.S.Variant {
	case bsdos.FreeBSD:
		pers = FreeBSD
	case bsdos.OpenBSD:
		pers = OpenBSD
	case bsdos.OpenBSDCFFS:
		pers = OpenBSDCFFS
	}
	sn, err := m.S.Snapshot()
	if err != nil {
		return nil, err
	}
	return &Snapshot{pers: pers, bsd: sn}, nil
}

// Fork builds a new machine continuing from the snapshot. Safe to call
// concurrently on one snapshot — forks share the frozen state
// read-only and copy pages/blocks up privately on first write.
func Fork(s *Snapshot) Machine {
	switch {
	case s.xok != nil:
		return Xok{S: exos.Fork(s.xok)}
	case s.bsd != nil:
		return BSD{S: bsdos.Fork(s.bsd)}
	}
	panic(fmt.Sprintf("machine: empty snapshot (personality %v)", s.pers))
}

// Release returns the snapshot's frozen page and block buffers to the
// shared pool. Only legal once the snapshotted machine and every fork
// are closed; snapshots taken later on the same machine (whose layers
// chain over this one) must be released no earlier than this one's
// forks are done too.
func (s *Snapshot) Release() {
	if s.xok != nil {
		s.xok.Release()
	}
	if s.bsd != nil {
		s.bsd.Release()
	}
}
