package machine

import (
	"testing"

	"xok/internal/fault"
	"xok/internal/unix"
)

func TestNewBootsEveryPersonality(t *testing.T) {
	for _, p := range []Personality{XokExOS, XokUnprotected, FreeBSD, OpenBSD, OpenBSDCFFS} {
		m, err := New(Config{Personality: p, DiskBlocks: 1 << 15})
		if err != nil {
			t.Fatalf("%v: %v", p, err)
		}
		if m.Kern() == nil || m.Disk() == nil || m.Stats() == nil {
			t.Fatalf("%v: accessors returned nil", p)
		}
		ok := false
		m.SpawnProc("probe", 0, func(pr unix.Proc) {
			if _, err := pr.Create("/probe", 6); err == nil {
				ok = true
			}
		})
		m.Run()
		if !ok {
			t.Fatalf("%v: file system not usable", p)
		}
	}
}

func TestNewRejectsBadConfigs(t *testing.T) {
	if _, err := New(Config{Personality: FreeBSD, SharedMemPipes: true}); err == nil {
		t.Error("shared-memory pipes accepted on FreeBSD")
	}
	if _, err := New(Config{Personality: Personality(99)}); err == nil {
		t.Error("unknown personality accepted")
	}
}

func TestConfigThreadsGeometryAndFaults(t *testing.T) {
	plan := &fault.Plan{Seed: 1, TornWrites: true}
	m := MustNew(Config{
		Personality: XokExOS,
		DiskBlocks:  1 << 15,
		Spindles:    2,
		StripeUnit:  32,
		Faults:      plan,
	})
	if m.Kern().Faults != plan {
		t.Error("fault plan not threaded to the kernel")
	}
	if got := m.Disk().Spindles(); got != 2 {
		t.Errorf("spindles = %d, want 2", got)
	}
	img := m.Crash(m.Now() + 1000)
	if img == nil {
		t.Error("crash image nil")
	}
}
