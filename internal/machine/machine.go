// Package machine is the single construction path for the simulated
// machines under test: one Config names the OS personality (Xok/ExOS
// or one of the monolithic BSD models), the disk geometry, the
// observability sink and the fault plan, and New boots it. Every
// benchmark, harness and tool builds machines here rather than calling
// exos.Boot / bsdos.Boot with hand-copied settings.
package machine

import (
	"fmt"

	"xok/internal/bsdos"
	"xok/internal/cffs"
	"xok/internal/disk"
	"xok/internal/exos"
	"xok/internal/fault"
	"xok/internal/kernel"
	"xok/internal/netsim"
	"xok/internal/ostest"
	"xok/internal/sim"
	"xok/internal/trace"
	"xok/internal/unix"
)

// Personality selects the OS under test.
type Personality int

// The five system configurations of the paper's evaluation.
const (
	// XokExOS is the exokernel with the ExOS libOS, protection on —
	// the configuration every Section 6 and 8 measurement uses.
	XokExOS Personality = iota
	// XokUnprotected removes XN charging and the shared-state
	// protection calls (the Section 6.3 comparison point).
	XokUnprotected
	// FreeBSD models FreeBSD 2.2.2: native FFS, unified buffer cache.
	FreeBSD
	// OpenBSD models OpenBSD 2.1: native FFS, small non-unified cache.
	OpenBSD
	// OpenBSDCFFS is the in-kernel C-FFS port on OpenBSD.
	OpenBSDCFFS
)

// String names the personality as the paper does.
func (p Personality) String() string {
	switch p {
	case XokExOS:
		return "Xok/ExOS"
	case XokUnprotected:
		return "Xok/ExOS (unprotected)"
	case FreeBSD:
		return "FreeBSD"
	case OpenBSD:
		return "OpenBSD"
	case OpenBSDCFFS:
		return "OpenBSD/C-FFS"
	}
	return fmt.Sprintf("Personality(%d)", int(p))
}

// Config describes one machine. The zero value boots a stock Xok/ExOS
// machine with the default 4-GB single-spindle disk and 64 MB of
// memory, no tracing, no faults.
type Config struct {
	Personality Personality

	// SharedMemPipes selects the mutual-trust pipe implementation on
	// Xok (Table 2 "Shared memory"); rejected for BSD personalities.
	SharedMemPipes bool

	// DiskBlocks sizes the volume (0 = 1<<20 blocks = 4 GB) and
	// MemPages physical memory (0 = 16384 pages = 64 MB).
	DiskBlocks int64
	MemPages   int

	// Spindles > 1 builds the volume as a RAID-0 stripe set of that
	// many disks, StripeUnit blocks per unit (0 = 16).
	Spindles   int
	StripeUnit int64

	// Trace attaches an observability sink (nil = the package default
	// installed by tools like xok-bench -trace, else off).
	Trace *trace.Tracer

	// Faults attaches a deterministic fault plan (internal/fault). Nil
	// — the default — injects nothing and costs one nil check per
	// decision point, the same contract as Trace.
	Faults *fault.Plan

	// Net joins the machine to a shared network fabric: the kernel
	// boots on the attachment's topology engine (one virtual clock
	// across the whole cluster) and gets a NIC host. New fills the
	// attachment's Host and NIC outputs. Nil — the default — boots a
	// stand-alone machine with a private engine.
	Net *netsim.Attachment
}

// EnvHandle identifies a spawned process.
type EnvHandle interface {
	Env() *kernel.Env
}

// Machine abstracts over the OS personalities.
type Machine interface {
	// Name labels the system as the paper does ("Xok/ExOS", ...).
	Name() string
	// SpawnProc starts a UNIX process.
	SpawnProc(name string, uid uint16, main func(unix.Proc)) EnvHandle
	// Run drains the machine.
	Run()
	// Now returns virtual time.
	Now() sim.Time
	// Stats returns the counter registry.
	Stats() *sim.Stats
	// Kern returns the kernel.
	Kern() *kernel.Kernel
	// Disk returns the machine's disk (nil if configured without one).
	Disk() *disk.Disk
	// Crash cuts power at virtual time at: events run to that instant,
	// the surviving disk image (including torn in-flight writes when
	// the fault plan arms them) is captured, and the machine is dead.
	Crash(at sim.Time) disk.Image
	// FSSpec returns the root file system's registry name and
	// structural profile — what cffs.AuditImage needs to re-attach a
	// crash image of this machine forensically.
	FSSpec() (string, cffs.Config)
	// Snapshot freezes the machine at a quiescent point (all processes
	// exited, event queue drained) into a forkable checkpoint; see
	// Snapshot and Fork. The machine keeps running afterwards
	// (copy-on-write). Errors if the machine is not quiescent — for a
	// fabric-attached machine that includes any in-flight packet or
	// timer on the shared engine.
	Snapshot() (*Snapshot, error)
	// Close releases the machine for good: environment goroutines are
	// killed and the page-frame and disk-block buffers go back to the
	// shared pool (kernel.Release). This is the reset path that lets
	// run-per-cell harnesses (difftest's seed × personality grid, the
	// crash sweep) boot hundreds of machines without hundreds of
	// machines' worth of heap churn. The machine must not be used —
	// not even inspected — afterwards.
	Close()
}

// Personalities lists every personality, in the paper's order. Cross-
// personality harnesses (internal/difftest) iterate this rather than
// hard-coding the set.
func Personalities() []Personality {
	return []Personality{XokExOS, XokUnprotected, FreeBSD, OpenBSD, OpenBSDCFFS}
}

// New boots the machine cfg describes.
func New(cfg Config) (Machine, error) {
	var eng *sim.Engine
	if cfg.Net != nil {
		if cfg.Net.Topology == nil {
			return nil, fmt.Errorf("machine: Net attachment without a topology")
		}
		if n := cfg.Net.Topology.Islands(); int(cfg.Net.Island) >= n {
			return nil, fmt.Errorf("machine: attachment island %d out of range (topology has %d)",
				cfg.Net.Island, n)
		}
		eng = cfg.Net.Topology.IslandEngine(cfg.Net.Island)
	}
	var m Machine
	switch cfg.Personality {
	case XokExOS, XokUnprotected:
		s := exos.Boot(exos.Config{
			Protect:        cfg.Personality == XokExOS,
			SharedMemPipes: cfg.SharedMemPipes,
			DiskBlocks:     cfg.DiskBlocks,
			MemPages:       cfg.MemPages,
			Spindles:       cfg.Spindles,
			StripeUnit:     cfg.StripeUnit,
			Trace:          cfg.Trace,
			Faults:         cfg.Faults,
			Eng:            eng,
		})
		if cfg.Personality == XokUnprotected {
			s.X.FreeCost = true
		}
		m = Xok{S: s, net: cfg.Net}
	case FreeBSD, OpenBSD, OpenBSDCFFS:
		if cfg.SharedMemPipes {
			return nil, fmt.Errorf("machine: %s has no shared-memory pipes", cfg.Personality)
		}
		var v bsdos.Variant
		switch cfg.Personality {
		case FreeBSD:
			v = bsdos.FreeBSD
		case OpenBSD:
			v = bsdos.OpenBSD
		case OpenBSDCFFS:
			v = bsdos.OpenBSDCFFS
		}
		s := bsdos.Boot(v, bsdos.Config{
			DiskBlocks: cfg.DiskBlocks,
			MemPages:   cfg.MemPages,
			Spindles:   cfg.Spindles,
			StripeUnit: cfg.StripeUnit,
			Trace:      cfg.Trace,
			Faults:     cfg.Faults,
			Eng:        eng,
		})
		m = BSD{S: s, net: cfg.Net}
	default:
		return nil, fmt.Errorf("machine: unknown personality %d", int(cfg.Personality))
	}
	if cfg.Net != nil {
		name := cfg.Net.Name
		if name == "" {
			name = m.Name()
		}
		cfg.Net.Host = cfg.Net.Topology.AttachKernel(name, m.Kern())
		cfg.Net.NIC = cfg.Net.Topology.NIC(cfg.Net.Host)
	}
	return m, nil
}

// MustNew is New for static configurations known to be valid.
func MustNew(cfg Config) Machine {
	m, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return m
}

// Runner adapts a Machine to an ostest.RunFunc: each call runs main as
// a fresh uid-0 process and drains the machine.
func Runner(m Machine) ostest.RunFunc {
	return func(main func(unix.Proc)) {
		m.SpawnProc("t", 0, main)
		m.Run()
	}
}

// Xok wraps an ExOS system as a Machine. The underlying system is
// exported for experiments that reach below the UNIX surface (XCP
// drives the file cache and XN directly).
type Xok struct {
	S *exos.System

	net *netsim.Attachment // nil for stand-alone machines and forks
}

// Name implements Machine.
func (m Xok) Name() string { return "Xok/ExOS" }

// SpawnProc implements Machine.
func (m Xok) SpawnProc(name string, uid uint16, main func(unix.Proc)) EnvHandle {
	return m.S.Spawn(name, uid, main)
}

// Run implements Machine.
func (m Xok) Run() { m.S.Run() }

// Now implements Machine.
func (m Xok) Now() sim.Time { return m.S.Now() }

// Stats implements Machine.
func (m Xok) Stats() *sim.Stats { return m.S.Stats() }

// Kern implements Machine.
func (m Xok) Kern() *kernel.Kernel { return m.S.K }

// Disk implements Machine.
func (m Xok) Disk() *disk.Disk { return m.S.K.Disk }

// Crash implements Machine.
func (m Xok) Crash(at sim.Time) disk.Image { return m.S.K.Crash(at) }

// FSSpec implements Machine.
func (m Xok) FSSpec() (string, cffs.Config) { return "cffs", cffs.DefaultConfig() }

// Close implements Machine.
func (m Xok) Close() { m.S.K.Release() }

// BSD wraps a BSD system as a Machine.
type BSD struct {
	S *bsdos.System

	net *netsim.Attachment // nil for stand-alone machines and forks
}

// Name implements Machine.
func (m BSD) Name() string { return m.S.Variant.String() }

// SpawnProc implements Machine.
func (m BSD) SpawnProc(name string, uid uint16, main func(unix.Proc)) EnvHandle {
	return m.S.Spawn(name, uid, main)
}

// Run implements Machine.
func (m BSD) Run() { m.S.Run() }

// Now implements Machine.
func (m BSD) Now() sim.Time { return m.S.Now() }

// Stats implements Machine.
func (m BSD) Stats() *sim.Stats { return m.S.Stats() }

// Kern implements Machine.
func (m BSD) Kern() *kernel.Kernel { return m.S.K }

// Disk implements Machine.
func (m BSD) Disk() *disk.Disk { return m.S.K.Disk }

// Crash implements Machine.
func (m BSD) Crash(at sim.Time) disk.Image { return m.S.K.Crash(at) }

// FSSpec implements Machine.
func (m BSD) FSSpec() (string, cffs.Config) { return "ffs", m.S.FSCfg }

// Close implements Machine.
func (m BSD) Close() { m.S.K.Release() }
