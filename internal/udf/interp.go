package udf

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// Interpretation errors. All of them are deterministic functions of the
// program and its inputs, so a hostile UDF cannot leak information
// through error timing.
var (
	ErrFuel        = errors.New("udf: fuel exhausted")
	ErrOOB         = errors.New("udf: memory access out of bounds")
	ErrDivZero     = errors.New("udf: division by zero")
	ErrFellOffEnd  = errors.New("udf: execution fell off program end")
	ErrEmitsBounds = errors.New("udf: too many extents emitted")
)

// Limits on one interpretation.
const (
	// DefaultFuel bounds interpreted instructions per run. Template
	// UDFs over one 4-KB metadata block touch each pointer a constant
	// number of times, so this is roomy.
	DefaultFuel = 100_000

	// MaxExtents bounds owns-udf output size.
	MaxExtents = 2048
)

// Env carries the nondeterministic inputs available to acl-uf and
// size-uf via ENVW (e.g. the time of day, credential digests). Index 0
// is conventionally the current time in seconds.
type Env []int64

// Run interprets p over the given inputs:
//
//	meta — the metadata bytes (LD* loads)
//	aux  — the proposed modification or other secondary input (LDA*)
//	env  — ENVW-visible words (nil for deterministic runs)
//
// fuel <= 0 selects DefaultFuel.
func Run(p *Program, meta, aux []byte, env Env, fuel int) (Result, error) {
	if fuel <= 0 {
		fuel = DefaultFuel
	}
	var res Result
	var regs [NumRegs]int64
	pc := 0
	for {
		if pc == len(p.Instrs) {
			return res, ErrFellOffEnd
		}
		if pc < 0 || pc > len(p.Instrs) {
			return res, fmt.Errorf("udf: pc %d out of range", pc)
		}
		if res.Steps >= fuel {
			return res, ErrFuel
		}
		res.Steps++
		in := p.Instrs[pc]
		pc++
		switch in.Op {
		case OpLI:
			regs[in.Rd] = in.Imm
		case OpMOV:
			regs[in.Rd] = regs[in.Rs]
		case OpADD:
			regs[in.Rd] = regs[in.Rs] + regs[in.Rt]
		case OpSUB:
			regs[in.Rd] = regs[in.Rs] - regs[in.Rt]
		case OpMUL:
			regs[in.Rd] = regs[in.Rs] * regs[in.Rt]
		case OpDIV:
			if regs[in.Rt] == 0 {
				return res, ErrDivZero
			}
			regs[in.Rd] = regs[in.Rs] / regs[in.Rt]
		case OpMOD:
			if regs[in.Rt] == 0 {
				return res, ErrDivZero
			}
			regs[in.Rd] = regs[in.Rs] % regs[in.Rt]
		case OpAND:
			regs[in.Rd] = regs[in.Rs] & regs[in.Rt]
		case OpOR:
			regs[in.Rd] = regs[in.Rs] | regs[in.Rt]
		case OpXOR:
			regs[in.Rd] = regs[in.Rs] ^ regs[in.Rt]
		case OpSHL:
			regs[in.Rd] = regs[in.Rs] << (uint64(regs[in.Rt]) & 63)
		case OpSHR:
			regs[in.Rd] = int64(uint64(regs[in.Rs]) >> (uint64(regs[in.Rt]) & 63))
		case OpADDI:
			regs[in.Rd] = regs[in.Rs] + in.Imm
		case OpLDB:
			v, err := load(meta, regs[in.Rs]+in.Imm, 1)
			if err != nil {
				return res, err
			}
			regs[in.Rd] = v
		case OpLDW:
			v, err := load(meta, regs[in.Rs]+in.Imm, 4)
			if err != nil {
				return res, err
			}
			regs[in.Rd] = v
		case OpLDQ:
			v, err := load(meta, regs[in.Rs]+in.Imm, 8)
			if err != nil {
				return res, err
			}
			regs[in.Rd] = v
		case OpLDAB:
			v, err := load(aux, regs[in.Rs]+in.Imm, 1)
			if err != nil {
				return res, err
			}
			regs[in.Rd] = v
		case OpLDAW:
			v, err := load(aux, regs[in.Rs]+in.Imm, 4)
			if err != nil {
				return res, err
			}
			regs[in.Rd] = v
		case OpLDAQ:
			v, err := load(aux, regs[in.Rs]+in.Imm, 8)
			if err != nil {
				return res, err
			}
			regs[in.Rd] = v
		case OpMETA:
			regs[in.Rd] = int64(len(meta))
		case OpAUX:
			regs[in.Rd] = int64(len(aux))
		case OpENVW:
			if in.Imm < 0 || in.Imm >= int64(len(env)) {
				return res, ErrOOB
			}
			regs[in.Rd] = env[in.Imm]
		case OpEMIT:
			if len(res.Extents) >= MaxExtents {
				return res, ErrEmitsBounds
			}
			res.Extents = append(res.Extents, Extent{
				Start: regs[in.Rs],
				Count: regs[in.Rt],
				Type:  regs[in.Rd],
			})
		case OpBEQ:
			if regs[in.Rs] == regs[in.Rt] {
				pc = int(in.Imm)
			}
		case OpBNE:
			if regs[in.Rs] != regs[in.Rt] {
				pc = int(in.Imm)
			}
		case OpBLT:
			if regs[in.Rs] < regs[in.Rt] {
				pc = int(in.Imm)
			}
		case OpBGE:
			if regs[in.Rs] >= regs[in.Rt] {
				pc = int(in.Imm)
			}
		case OpJMP:
			pc = int(in.Imm)
		case OpRET:
			res.Ret = regs[in.Rs]
			return res, nil
		default:
			return res, fmt.Errorf("udf: invalid opcode %d at pc %d", in.Op, pc-1)
		}
	}
}

func load(buf []byte, off int64, size int) (int64, error) {
	if off < 0 || off+int64(size) > int64(len(buf)) {
		return 0, ErrOOB
	}
	switch size {
	case 1:
		return int64(buf[off]), nil
	case 4:
		return int64(binary.LittleEndian.Uint32(buf[off:])), nil
	case 8:
		return int64(binary.LittleEndian.Uint64(buf[off:])), nil
	}
	panic("udf: bad load size")
}
