package udf

import (
	"errors"
	"strings"
	"testing"
)

// Error-path coverage for the three UDF components: the interpreter's
// abort conditions (every one of which the kernel must survive — a
// hostile template program exercises exactly these), the verifier's
// rejections, and the assembler's diagnostics.

func mustAssemble(t *testing.T, src string) *Program {
	t.Helper()
	p, err := Assemble("t", src)
	if err != nil {
		t.Fatalf("assemble: %v", err)
	}
	return p
}

func TestInterpAborts(t *testing.T) {
	meta := make([]byte, 64)
	cases := []struct {
		name string
		src  string
		env  Env
		fuel int
		want error
	}{
		{name: "fuel exhausted on infinite loop",
			src:  "loop:\n jmp loop\n",
			fuel: 50, want: ErrFuel},
		{name: "load past end of meta",
			src:  "li r1, 0\n ldq r0, r1, 60\n ret r0\n",
			want: ErrOOB},
		{name: "load at negative offset",
			src:  "li r1, -9\n ldb r0, r1, 0\n ret r0\n",
			want: ErrOOB},
		{name: "aux load with empty aux",
			src:  "li r1, 0\n ldab r0, r1, 0\n ret r0\n",
			want: ErrOOB},
		{name: "divide by zero",
			src:  "li r1, 5\n li r2, 0\n div r0, r1, r2\n ret r0\n",
			want: ErrDivZero},
		{name: "modulo by zero",
			src:  "li r1, 5\n li r2, 0\n mod r0, r1, r2\n ret r0\n",
			want: ErrDivZero},
		{name: "fall off program end",
			src:  "li r0, 1\n",
			want: ErrFellOffEnd},
		{name: "envw index out of range",
			src: "envw r0, 3\n ret r0\n",
			env: Env{7}, want: ErrOOB},
		{name: "envw with nil env",
			src:  "envw r0, 0\n ret r0\n",
			want: ErrOOB},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			p := mustAssemble(t, c.src)
			_, err := Run(p, meta, nil, c.env, c.fuel)
			if !errors.Is(err, c.want) {
				t.Errorf("Run = %v, want %v", err, c.want)
			}
		})
	}
}

func TestInterpEmitBound(t *testing.T) {
	// An unrolled emit loop: branch back until the extent budget blows.
	src := `
	li r1, 1
	li r2, 1
	li r3, 0
loop:
	emit r1, r2, r3
	jmp loop
`
	p := mustAssemble(t, src)
	// Plenty of fuel so the emit bound fires first.
	_, err := Run(p, nil, nil, nil, MaxExtents*2+16)
	if !errors.Is(err, ErrEmitsBounds) {
		t.Fatalf("Run = %v, want ErrEmitsBounds", err)
	}
}

func TestInterpAbortStateIsDeterministic(t *testing.T) {
	// The abort must be a pure function of program + inputs: same
	// failing program twice, identical step count at the abort.
	p := mustAssemble(t, "li r1, 0\n li r2, 8\nloop:\n addi r1, r1, 1\n blt r1, r2, loop\n ldq r0, r1, 4096\n ret r0\n")
	r1, err1 := Run(p, make([]byte, 64), nil, nil, 0)
	r2, err2 := Run(p, make([]byte, 64), nil, nil, 0)
	if !errors.Is(err1, ErrOOB) || !errors.Is(err2, ErrOOB) {
		t.Fatalf("errs = %v, %v, want ErrOOB twice", err1, err2)
	}
	if r1.Steps != r2.Steps {
		t.Fatalf("abort step counts differ: %d vs %d", r1.Steps, r2.Steps)
	}
}

func TestVerifyRejections(t *testing.T) {
	if err := Verify(nil, true); !errors.Is(err, ErrEmpty) {
		t.Errorf("Verify(nil) = %v, want ErrEmpty", err)
	}
	if err := Verify(&Program{}, true); !errors.Is(err, ErrEmpty) {
		t.Errorf("Verify(empty) = %v, want ErrEmpty", err)
	}

	long := &Program{Instrs: make([]Instr, MaxProgramLen+1)}
	for i := range long.Instrs {
		long.Instrs[i] = Instr{Op: OpRET}
	}
	if err := Verify(long, true); !errors.Is(err, ErrTooLong) {
		t.Errorf("Verify(too long) = %v, want ErrTooLong", err)
	}

	// ENVW is legal in nondeterministic context, rejected in
	// deterministic context (owns-udf must not read the environment).
	envp := mustAssemble(t, "envw r0, 0\n ret r0\n")
	if err := Verify(envp, false); err != nil {
		t.Errorf("Verify(envw, nondet) = %v, want nil", err)
	}
	if err := Verify(envp, true); !errors.Is(err, ErrNondeterministic) {
		t.Errorf("Verify(envw, det) = %v, want ErrNondeterministic", err)
	}

	bad := []struct {
		name string
		p    *Program
		frag string
	}{
		{"invalid opcode", &Program{Instrs: []Instr{{Op: opCount}}}, "invalid opcode"},
		{"register out of range", &Program{Instrs: []Instr{{Op: OpMOV, Rd: NumRegs}}}, "register out of range"},
		{"branch target negative", &Program{Instrs: []Instr{{Op: OpJMP, Imm: -1}}}, "out of range"},
		{"branch target past end", &Program{Instrs: []Instr{{Op: OpBEQ, Imm: 5}}}, "out of range"},
	}
	for _, c := range bad {
		if err := Verify(c.p, true); err == nil || !strings.Contains(err.Error(), c.frag) {
			t.Errorf("Verify(%s) = %v, want error containing %q", c.name, err, c.frag)
		}
	}
}

// TestAssembleDiagnostics goes beyond TestAssembleErrors (udf_test.go)
// by pinning which diagnostic each malformed source produces — a wrong
// but non-nil error would hide the real problem from a UDF author.
func TestAssembleDiagnostics(t *testing.T) {
	cases := []struct {
		name string
		src  string
		frag string
	}{
		{"unknown mnemonic", "frob r0, r1\n", "unknown mnemonic"},
		{"bad operands", "li r0\n", "bad operands"},
		{"bad register", "li r99, 1\n", ""},
		{"bad immediate", "li r0, zzz\n", "bad immediate"},
		{"duplicate label", "x:\n li r0, 1\nx:\n ret r0\n", "duplicate label"},
		{"undefined label", "jmp nowhere\n ret r0\n", "undefined label"},
		{"bad label", "9bad!:\n ret r0\n", ""},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := Assemble("t", c.src)
			if err == nil {
				t.Fatalf("Assemble(%q) succeeded", c.src)
			}
			if c.frag != "" && !strings.Contains(err.Error(), c.frag) {
				t.Errorf("error %q does not contain %q", err, c.frag)
			}
		})
	}
}

// TestRunPCOutOfRangeViaRawProgram: a hand-built (unverified) program
// can jump outside [0, len]; the interpreter must abort, not panic —
// Verify normally rejects this, but the interpreter is the last line
// of defense.
func TestRunPCOutOfRangeViaRawProgram(t *testing.T) {
	p := &Program{Name: "raw", Instrs: []Instr{{Op: OpJMP, Imm: 99}}}
	if _, err := Run(p, nil, nil, nil, 0); err == nil {
		t.Fatal("Run with wild jump succeeded")
	}
	p2 := &Program{Name: "raw2", Instrs: []Instr{{Op: opCount}, {Op: OpRET}}}
	if _, err := Run(p2, nil, nil, nil, 0); err == nil {
		t.Fatal("Run with invalid opcode succeeded")
	}
}
