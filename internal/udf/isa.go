// Package udf implements the paper's UDFs — untrusted deterministic
// functions (Section 4.1), the cornerstone of XN. A UDF is a small
// program in a restricted pseudo-RISC assembly language that the kernel
// can interpret over a piece of file-system metadata without
// understanding the metadata's layout.
//
// Each XN template carries three functions written in this language:
//
//   - owns-udf  — maps metadata to the set of (start, count, type)
//     disk extents it points to. Must be deterministic: the verifier
//     rejects programs that read anything but their inputs.
//   - acl-uf    — approves or rejects a proposed modification, given
//     credentials. May be nondeterministic (may read the environment,
//     e.g. the time of day).
//   - size-uf   — returns the byte size of a metadata structure.
//
// The package provides the instruction set, a text assembler, the
// kernel-side verifier, and the interpreter. Interpretation is fuel
// limited so a hostile UDF cannot hang the kernel, and the interpreter
// reports the instruction count so XN can charge CPU time for it.
package udf

import "fmt"

// NumRegs is the register-file size.
const NumRegs = 16

// Op is an opcode.
type Op uint8

// The instruction set. Loads read the primary metadata buffer; LDA*
// variants read the auxiliary buffer (the proposed modification handed
// to acl-uf). ENVW is the only nondeterministic instruction.
const (
	OpLI   Op = iota // li   rd, imm        rd = imm
	OpMOV            // mov  rd, rs         rd = rs
	OpADD            // add  rd, rs, rt
	OpSUB            // sub  rd, rs, rt
	OpMUL            // mul  rd, rs, rt
	OpDIV            // div  rd, rs, rt     (divide by zero aborts)
	OpMOD            // mod  rd, rs, rt
	OpAND            // and  rd, rs, rt
	OpOR             // or   rd, rs, rt
	OpXOR            // xor  rd, rs, rt
	OpSHL            // shl  rd, rs, rt
	OpSHR            // shr  rd, rs, rt     (logical)
	OpADDI           // addi rd, rs, imm
	OpLDB            // ldb  rd, rs, imm    rd = meta[rs+imm] (byte)
	OpLDW            // ldw  rd, rs, imm    rd = le32(meta[rs+imm:])
	OpLDQ            // ldq  rd, rs, imm    rd = le64(meta[rs+imm:])
	OpLDAB           // ldab rd, rs, imm    rd = aux[rs+imm] (byte)
	OpLDAW           // ldaw rd, rs, imm    rd = le32(aux[rs+imm:])
	OpLDAQ           // ldaq rd, rs, imm    rd = le64(aux[rs+imm:])
	OpMETA           // meta rd             rd = len(meta)
	OpAUX            // aux  rd             rd = len(aux)
	OpENVW           // envw rd, imm        rd = env[imm]  (NONDETERMINISTIC)
	OpEMIT           // emit rs, rt, ru     emit extent (start, count, type)
	OpBEQ            // beq  rs, rt, label
	OpBNE            // bne  rs, rt, label
	OpBLT            // blt  rs, rt, label  (signed)
	OpBGE            // bge  rs, rt, label  (signed)
	OpJMP            // jmp  label
	OpRET            // ret  rs             return rs
	opCount
)

var opNames = [...]string{
	OpLI: "li", OpMOV: "mov", OpADD: "add", OpSUB: "sub", OpMUL: "mul",
	OpDIV: "div", OpMOD: "mod", OpAND: "and", OpOR: "or", OpXOR: "xor",
	OpSHL: "shl", OpSHR: "shr", OpADDI: "addi", OpLDB: "ldb",
	OpLDW: "ldw", OpLDQ: "ldq", OpLDAB: "ldab", OpLDAW: "ldaw",
	OpLDAQ: "ldaq", OpMETA: "meta", OpAUX: "aux", OpENVW: "envw",
	OpEMIT: "emit", OpBEQ: "beq", OpBNE: "bne", OpBLT: "blt",
	OpBGE: "bge", OpJMP: "jmp", OpRET: "ret",
}

// String returns the mnemonic.
func (o Op) String() string {
	if int(o) < len(opNames) {
		return opNames[o]
	}
	return fmt.Sprintf("op(%d)", uint8(o))
}

// Instr is one decoded instruction. Branch targets are absolute
// instruction indices stored in Imm.
type Instr struct {
	Op         Op
	Rd, Rs, Rt uint8
	Imm        int64
}

// Program is an assembled UDF.
type Program struct {
	Name   string
	Instrs []Instr
}

// Len returns the instruction count.
func (p *Program) Len() int { return len(p.Instrs) }

// Extent is one tuple of owns-udf output: "a block address that
// specifies the start of the range, the number of blocks in the range,
// and the template identifier for the blocks in the range"
// (Section 4.1).
type Extent struct {
	Start int64
	Count int64
	Type  int64
}

// Result is an interpretation outcome.
type Result struct {
	Ret     int64    // value passed to ret
	Extents []Extent // extents emitted (owns-udf output)
	Steps   int      // instructions executed, for CPU accounting
}
