package udf

import (
	"encoding/binary"
	"errors"
	"strings"
	"testing"
	"testing/quick"
)

func run(t *testing.T, src string, meta, aux []byte, env Env) Result {
	t.Helper()
	p, err := Assemble("test", src)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(p, meta, aux, env, 0)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestArithmetic(t *testing.T) {
	res := run(t, `
		li  r1, 6
		li  r2, 7
		mul r3, r1, r2
		addi r3, r3, -2
		ret r3
	`, nil, nil, nil)
	if res.Ret != 40 {
		t.Fatalf("ret = %d, want 40", res.Ret)
	}
	if res.Steps != 5 {
		t.Fatalf("steps = %d, want 5", res.Steps)
	}
}

func TestAllALUOps(t *testing.T) {
	cases := []struct {
		src  string
		want int64
	}{
		{"li r1, 10\nli r2, 3\nsub r3, r1, r2\nret r3", 7},
		{"li r1, 10\nli r2, 3\ndiv r3, r1, r2\nret r3", 3},
		{"li r1, 10\nli r2, 3\nmod r3, r1, r2\nret r3", 1},
		{"li r1, 12\nli r2, 10\nand r3, r1, r2\nret r3", 8},
		{"li r1, 12\nli r2, 10\nor r3, r1, r2\nret r3", 14},
		{"li r1, 12\nli r2, 10\nxor r3, r1, r2\nret r3", 6},
		{"li r1, 3\nli r2, 4\nshl r3, r1, r2\nret r3", 48},
		{"li r1, 48\nli r2, 4\nshr r3, r1, r2\nret r3", 3},
		{"li r1, 5\nmov r2, r1\nret r2", 5},
	}
	for _, c := range cases {
		if got := run(t, c.src, nil, nil, nil).Ret; got != c.want {
			t.Errorf("%q = %d, want %d", c.src, got, c.want)
		}
	}
}

func TestLoadsLittleEndian(t *testing.T) {
	meta := make([]byte, 16)
	meta[0] = 0xAB
	binary.LittleEndian.PutUint32(meta[4:], 0xDEADBEEF)
	binary.LittleEndian.PutUint64(meta[8:], 0x0102030405060708)
	res := run(t, `
		li  r0, 0
		ldb r1, r0, 0
		ldw r2, r0, 4
		ldq r3, r0, 8
		add r4, r1, r2
		add r4, r4, r3
		ret r4
	`, meta, nil, nil)
	want := int64(0xAB) + int64(0xDEADBEEF) + int64(0x0102030405060708)
	if res.Ret != want {
		t.Fatalf("ret = %d, want %d", res.Ret, want)
	}
}

func TestAuxLoadsAndLengths(t *testing.T) {
	meta := make([]byte, 10)
	aux := make([]byte, 20)
	aux[3] = 9
	res := run(t, `
		meta r1
		aux  r2
		li   r0, 0
		ldab r3, r0, 3
		add  r4, r1, r2
		add  r4, r4, r3
		ret  r4
	`, meta, aux, nil)
	if res.Ret != 10+20+9 {
		t.Fatalf("ret = %d", res.Ret)
	}
}

func TestLoopWithBackwardBranch(t *testing.T) {
	// Sum meta[0..n) bytes.
	meta := []byte{1, 2, 3, 4, 5}
	res := run(t, `
		li   r1, 0      ; i
		li   r2, 0      ; sum
		meta r3
	loop:
		bge  r1, r3, done
		ldb  r4, r1, 0
		add  r2, r2, r4
		addi r1, r1, 1
		jmp  loop
	done:
		ret  r2
	`, meta, nil, nil)
	if res.Ret != 15 {
		t.Fatalf("sum = %d, want 15", res.Ret)
	}
}

func TestEmitExtents(t *testing.T) {
	res := run(t, `
		li r1, 100
		li r2, 8
		li r3, 2
		emit r1, r2, r3
		li r1, 500
		li r2, 1
		emit r1, r2, r3
		li r0, 2
		ret r0
	`, nil, nil, nil)
	if len(res.Extents) != 2 {
		t.Fatalf("extents = %v", res.Extents)
	}
	if res.Extents[0] != (Extent{100, 8, 2}) || res.Extents[1] != (Extent{500, 1, 2}) {
		t.Fatalf("extents = %v", res.Extents)
	}
}

func TestEnvw(t *testing.T) {
	res := run(t, "envw r1, 0\nret r1", nil, nil, Env{777})
	if res.Ret != 777 {
		t.Fatalf("ret = %d", res.Ret)
	}
}

func TestRuntimeErrors(t *testing.T) {
	cases := []struct {
		src  string
		meta []byte
		env  Env
		want error
	}{
		{"li r1, 0\nli r2, 0\ndiv r3, r1, r2\nret r1", nil, nil, ErrDivZero},
		{"li r1, 0\nli r2, 0\nmod r3, r1, r2\nret r1", nil, nil, ErrDivZero},
		{"li r0, 100\nldb r1, r0, 0\nret r1", []byte{1}, nil, ErrOOB},
		{"li r0, -1\nldb r1, r0, 0\nret r1", []byte{1}, nil, ErrOOB},
		{"li r0, 0\nldw r1, r0, 0\nret r1", []byte{1, 2}, nil, ErrOOB},
		{"envw r1, 5\nret r1", nil, Env{1}, ErrOOB},
		{"li r1, 1", nil, nil, ErrFellOffEnd},
		{"loop: jmp loop", nil, nil, ErrFuel},
	}
	for _, c := range cases {
		p, err := Assemble("t", c.src)
		if err != nil {
			t.Fatalf("assemble %q: %v", c.src, err)
		}
		_, err = Run(p, c.meta, nil, c.env, 1000)
		if !errors.Is(err, c.want) {
			t.Errorf("%q: err = %v, want %v", c.src, err, c.want)
		}
	}
}

func TestEmitBound(t *testing.T) {
	p := MustAssemble("spam", `
		li r1, 1
	loop:
		emit r1, r1, r1
		jmp loop
	`)
	_, err := Run(p, nil, nil, nil, DefaultFuel)
	if !errors.Is(err, ErrEmitsBounds) && !errors.Is(err, ErrFuel) {
		t.Fatalf("err = %v", err)
	}
}

func TestAssembleErrors(t *testing.T) {
	bad := []string{
		"frob r1, r2",            // unknown mnemonic
		"li r16, 0",              // bad register
		"li rx, 0",               // bad register
		"li r1",                  // missing operand
		"li r1, zzz",             // bad immediate
		"jmp nowhere",            // undefined label
		"x: li r1, 0\nx: ret r1", // duplicate label
		"9bad: ret r1",           // bad label
		"add r1, r2",             // arity
	}
	for _, src := range bad {
		if _, err := Assemble("t", src); err == nil {
			t.Errorf("Assemble(%q) succeeded, want error", src)
		}
	}
}

func TestVerifyDeterminism(t *testing.T) {
	det := MustAssemble("d", "li r1, 1\nret r1")
	if err := Verify(det, true); err != nil {
		t.Fatalf("deterministic program rejected: %v", err)
	}
	nondet := MustAssemble("n", "envw r1, 0\nret r1")
	if err := Verify(nondet, true); !errors.Is(err, ErrNondeterministic) {
		t.Fatalf("ENVW accepted in deterministic context: %v", err)
	}
	if err := Verify(nondet, false); err != nil {
		t.Fatalf("ENVW rejected in acl context: %v", err)
	}
}

func TestVerifyBounds(t *testing.T) {
	if err := Verify(&Program{}, true); !errors.Is(err, ErrEmpty) {
		t.Fatalf("empty: %v", err)
	}
	long := &Program{Instrs: make([]Instr, MaxProgramLen+1)}
	for i := range long.Instrs {
		long.Instrs[i] = Instr{Op: OpRET}
	}
	if err := Verify(long, true); !errors.Is(err, ErrTooLong) {
		t.Fatalf("too long: %v", err)
	}
	badBranch := &Program{Instrs: []Instr{{Op: OpJMP, Imm: 99}}}
	if err := Verify(badBranch, true); err == nil {
		t.Fatal("out-of-range branch accepted")
	}
	badReg := &Program{Instrs: []Instr{{Op: OpLI, Rd: 99}}}
	if err := Verify(badReg, true); err == nil {
		t.Fatal("bad register accepted")
	}
	badOp := &Program{Instrs: []Instr{{Op: opCount}}}
	if err := Verify(badOp, true); err == nil {
		t.Fatal("bad opcode accepted")
	}
}

func TestDeterminismProperty(t *testing.T) {
	// The core UDF guarantee: same metadata in, same result out —
	// run twice over random metadata and compare everything.
	sum := MustAssemble("sum", `
		li   r1, 0
		li   r2, 0
		meta r3
	loop:
		bge  r1, r3, done
		ldb  r4, r1, 0
		add  r2, r2, r4
		li   r5, 16
		mod  r6, r4, r5
		emit r4, r6, r1
		addi r1, r1, 1
		jmp  loop
	done:
		ret  r2
	`)
	f := func(meta []byte) bool {
		if len(meta) > 512 {
			meta = meta[:512]
		}
		a, errA := Run(sum, meta, nil, nil, 0)
		b, errB := Run(sum, meta, nil, nil, 0)
		if (errA == nil) != (errB == nil) {
			return false
		}
		if errA != nil {
			return true
		}
		if a.Ret != b.Ret || a.Steps != b.Steps || len(a.Extents) != len(b.Extents) {
			return false
		}
		for i := range a.Extents {
			if a.Extents[i] != b.Extents[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDisassembleRoundTrip(t *testing.T) {
	src := `
		li   r1, 0
		li   r2, 0
		meta r3
	loop:
		bge  r1, r3, done
		ldb  r4, r1, 0
		add  r2, r2, r4
		addi r1, r1, 1
		emit r1, r2, r3
		jmp  loop
	done:
		ret  r2
	`
	p1 := MustAssemble("rt", src)
	text := Disassemble(p1)
	p2, err := Assemble("rt2", text)
	if err != nil {
		t.Fatalf("reassemble failed: %v\n%s", err, text)
	}
	if len(p1.Instrs) != len(p2.Instrs) {
		t.Fatalf("instruction count changed: %d vs %d", len(p1.Instrs), len(p2.Instrs))
	}
	for i := range p1.Instrs {
		if p1.Instrs[i] != p2.Instrs[i] {
			t.Fatalf("instr %d changed: %+v vs %+v", i, p1.Instrs[i], p2.Instrs[i])
		}
	}
	meta := []byte{3, 1, 4, 1, 5}
	r1, _ := Run(p1, meta, nil, nil, 0)
	r2, _ := Run(p2, meta, nil, nil, 0)
	if r1.Ret != r2.Ret {
		t.Fatal("semantics changed across round trip")
	}
}

func TestLabelOnSameLine(t *testing.T) {
	res := run(t, "start: li r1, 3\nret r1", nil, nil, nil)
	if res.Ret != 3 {
		t.Fatalf("ret = %d", res.Ret)
	}
}

func TestCommentsAndBlankLines(t *testing.T) {
	res := run(t, `
		; full-line comment
		# hash comment

		li r1, 2   ; trailing comment
		ret r1     # another
	`, nil, nil, nil)
	if res.Ret != 2 {
		t.Fatalf("ret = %d", res.Ret)
	}
}

func TestOpString(t *testing.T) {
	if OpADD.String() != "add" {
		t.Fatal("OpADD name")
	}
	if !strings.Contains(Op(200).String(), "200") {
		t.Fatal("unknown op name")
	}
}
