package udf

import (
	"fmt"
	"strconv"
	"strings"
	"sync"
)

// Assemble translates UDF assembly text into a Program. The syntax is
// line oriented:
//
//	; comment (also "#")
//	label:
//	    li   r1, 64
//	    ldw  r2, r0, 12
//	    blt  r2, r1, done
//	    emit r2, r3, r4
//	done:
//	    ret  r0
//
// Registers are r0..r15. Immediates are Go-style integers (decimal,
// 0x hex, negative). Branches name labels. A label may share a line
// with an instruction ("loop: addi r1, r1, 1").
func Assemble(name, src string) (*Program, error) {
	type pending struct {
		instr int
		label string
		line  int
	}
	p := &Program{Name: name}
	labels := make(map[string]int)
	var fixups []pending

	for lineNo, raw := range strings.Split(src, "\n") {
		line := raw
		if i := strings.IndexAny(line, ";#"); i >= 0 {
			line = line[:i]
		}
		line = strings.TrimSpace(line)
		for {
			colon := strings.Index(line, ":")
			if colon < 0 {
				break
			}
			label := strings.TrimSpace(line[:colon])
			if !isIdent(label) {
				return nil, asmErr(lineNo, "bad label %q", label)
			}
			if _, dup := labels[label]; dup {
				return nil, asmErr(lineNo, "duplicate label %q", label)
			}
			labels[label] = len(p.Instrs)
			line = strings.TrimSpace(line[colon+1:])
		}
		if line == "" {
			continue
		}

		fields := strings.Fields(line)
		mnemonic := strings.ToLower(fields[0])
		args := splitArgs(strings.Join(fields[1:], " "))
		op, ok := opByName(mnemonic)
		if !ok {
			return nil, asmErr(lineNo, "unknown mnemonic %q", mnemonic)
		}

		var in Instr
		in.Op = op
		bad := func() error {
			return asmErr(lineNo, "bad operands for %s: %q", mnemonic, line)
		}
		reg := func(s string) (uint8, error) {
			r, err := parseReg(s)
			if err != nil {
				return 0, asmErr(lineNo, "%v", err)
			}
			return r, nil
		}
		imm := func(s string) (int64, error) {
			v, err := strconv.ParseInt(s, 0, 64)
			if err != nil {
				return 0, asmErr(lineNo, "bad immediate %q", s)
			}
			return v, nil
		}

		var err error
		switch op {
		case OpLI, OpENVW: // rd, imm
			if len(args) != 2 {
				return nil, bad()
			}
			if in.Rd, err = reg(args[0]); err != nil {
				return nil, err
			}
			if in.Imm, err = imm(args[1]); err != nil {
				return nil, err
			}
		case OpMOV: // rd, rs
			if len(args) != 2 {
				return nil, bad()
			}
			if in.Rd, err = reg(args[0]); err != nil {
				return nil, err
			}
			if in.Rs, err = reg(args[1]); err != nil {
				return nil, err
			}
		case OpADD, OpSUB, OpMUL, OpDIV, OpMOD, OpAND, OpOR, OpXOR, OpSHL, OpSHR:
			if len(args) != 3 {
				return nil, bad()
			}
			if in.Rd, err = reg(args[0]); err != nil {
				return nil, err
			}
			if in.Rs, err = reg(args[1]); err != nil {
				return nil, err
			}
			if in.Rt, err = reg(args[2]); err != nil {
				return nil, err
			}
		case OpADDI, OpLDB, OpLDW, OpLDQ, OpLDAB, OpLDAW, OpLDAQ: // rd, rs, imm
			if len(args) != 3 {
				return nil, bad()
			}
			if in.Rd, err = reg(args[0]); err != nil {
				return nil, err
			}
			if in.Rs, err = reg(args[1]); err != nil {
				return nil, err
			}
			if in.Imm, err = imm(args[2]); err != nil {
				return nil, err
			}
		case OpMETA, OpAUX: // rd
			if len(args) != 1 {
				return nil, bad()
			}
			if in.Rd, err = reg(args[0]); err != nil {
				return nil, err
			}
		case OpEMIT: // rs, rt, ru(->Rd)
			if len(args) != 3 {
				return nil, bad()
			}
			if in.Rs, err = reg(args[0]); err != nil {
				return nil, err
			}
			if in.Rt, err = reg(args[1]); err != nil {
				return nil, err
			}
			if in.Rd, err = reg(args[2]); err != nil {
				return nil, err
			}
		case OpBEQ, OpBNE, OpBLT, OpBGE: // rs, rt, label
			if len(args) != 3 {
				return nil, bad()
			}
			if in.Rs, err = reg(args[0]); err != nil {
				return nil, err
			}
			if in.Rt, err = reg(args[1]); err != nil {
				return nil, err
			}
			fixups = append(fixups, pending{len(p.Instrs), args[2], lineNo})
		case OpJMP: // label
			if len(args) != 1 {
				return nil, bad()
			}
			fixups = append(fixups, pending{len(p.Instrs), args[0], lineNo})
		case OpRET: // rs
			if len(args) != 1 {
				return nil, bad()
			}
			if in.Rs, err = reg(args[0]); err != nil {
				return nil, err
			}
		default:
			return nil, asmErr(lineNo, "unhandled op %v", op)
		}
		p.Instrs = append(p.Instrs, in)
	}

	for _, f := range fixups {
		target, ok := labels[f.label]
		if !ok {
			return nil, asmErr(f.line, "undefined label %q", f.label)
		}
		p.Instrs[f.instr].Imm = int64(target)
	}
	return p, nil
}

// asmCache memoizes MustAssemble results. The file-system templates
// assemble the same handful of UDF sources on every machine boot —
// a third of all allocations in a difftest campaign before caching —
// and a Program is never mutated after assembly (Run only reads it),
// so one shared copy per distinct source is safe even across the
// worker goroutines of internal/parallel.
var asmCache sync.Map // name+"\x00"+src -> *Program

// MustAssemble is Assemble for compile-time-constant sources (template
// definitions); it panics on error. Results are memoized: repeated
// calls with the same name and source return one shared *Program.
func MustAssemble(name, src string) *Program {
	key := name + "\x00" + src
	if p, ok := asmCache.Load(key); ok {
		return p.(*Program)
	}
	p, err := Assemble(name, src)
	if err != nil {
		panic(err)
	}
	actual, _ := asmCache.LoadOrStore(key, p)
	return actual.(*Program)
}

// Disassemble renders the program back to text (labels synthesized as
// L<n>). Useful for cmd/udfasm and debugging.
func Disassemble(p *Program) string {
	targets := make(map[int]bool)
	for _, in := range p.Instrs {
		switch in.Op {
		case OpBEQ, OpBNE, OpBLT, OpBGE, OpJMP:
			targets[int(in.Imm)] = true
		}
	}
	var b strings.Builder
	for i, in := range p.Instrs {
		if targets[i] {
			fmt.Fprintf(&b, "L%d:\n", i)
		}
		b.WriteString("\t")
		switch in.Op {
		case OpLI, OpENVW:
			fmt.Fprintf(&b, "%s r%d, %d", in.Op, in.Rd, in.Imm)
		case OpMOV:
			fmt.Fprintf(&b, "%s r%d, r%d", in.Op, in.Rd, in.Rs)
		case OpADD, OpSUB, OpMUL, OpDIV, OpMOD, OpAND, OpOR, OpXOR, OpSHL, OpSHR:
			fmt.Fprintf(&b, "%s r%d, r%d, r%d", in.Op, in.Rd, in.Rs, in.Rt)
		case OpADDI, OpLDB, OpLDW, OpLDQ, OpLDAB, OpLDAW, OpLDAQ:
			fmt.Fprintf(&b, "%s r%d, r%d, %d", in.Op, in.Rd, in.Rs, in.Imm)
		case OpMETA, OpAUX:
			fmt.Fprintf(&b, "%s r%d", in.Op, in.Rd)
		case OpEMIT:
			fmt.Fprintf(&b, "%s r%d, r%d, r%d", in.Op, in.Rs, in.Rt, in.Rd)
		case OpBEQ, OpBNE, OpBLT, OpBGE:
			fmt.Fprintf(&b, "%s r%d, r%d, L%d", in.Op, in.Rs, in.Rt, in.Imm)
		case OpJMP:
			fmt.Fprintf(&b, "%s L%d", in.Op, in.Imm)
		case OpRET:
			fmt.Fprintf(&b, "%s r%d", in.Op, in.Rs)
		}
		if targets[len(p.Instrs)] && i == len(p.Instrs)-1 {
			// branch to end; label emitted below
		}
		b.WriteString("\n")
	}
	if targets[len(p.Instrs)] {
		fmt.Fprintf(&b, "L%d:\n", len(p.Instrs))
	}
	return b.String()
}

func opByName(name string) (Op, bool) {
	for op, n := range opNames {
		if n == name {
			return Op(op), true
		}
	}
	return 0, false
}

func parseReg(s string) (uint8, error) {
	if len(s) < 2 || (s[0] != 'r' && s[0] != 'R') {
		return 0, fmt.Errorf("bad register %q", s)
	}
	n, err := strconv.Atoi(s[1:])
	if err != nil || n < 0 || n >= NumRegs {
		return 0, fmt.Errorf("bad register %q", s)
	}
	return uint8(n), nil
}

func splitArgs(s string) []string {
	if strings.TrimSpace(s) == "" {
		return nil
	}
	parts := strings.Split(s, ",")
	out := make([]string, 0, len(parts))
	for _, p := range parts {
		p = strings.TrimSpace(p)
		if p != "" {
			out = append(out, p)
		}
	}
	return out
}

func isIdent(s string) bool {
	if s == "" {
		return false
	}
	for i, c := range s {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_':
		case c >= '0' && c <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

func asmErr(line int, format string, args ...any) error {
	return fmt.Errorf("udf: line %d: %s", line+1, fmt.Sprintf(format, args...))
}
