package udf

import (
	"errors"
	"fmt"
)

// Verification errors.
var (
	ErrNondeterministic = errors.New("udf: nondeterministic instruction in deterministic context")
	ErrEmpty            = errors.New("udf: empty program")
	ErrTooLong          = errors.New("udf: program exceeds length limit")
)

// MaxProgramLen bounds template size; templates are installed once and
// persist on disk, so the bound is generous.
const MaxProgramLen = 4096

// Verify is the kernel-side check run when a template is installed
// ("the limited language used to write these functions is ... checked
// by the kernel to ensure determinacy", Section 4.1). It validates:
//
//   - every opcode, register index and branch target;
//   - that deterministic programs (owns-udf) contain no ENVW — their
//     output may depend only on the metadata input, so XN "cannot be
//     spoofed by owns-udf";
//   - the length bound.
//
// Termination is enforced separately by the interpreter's fuel limit;
// determinism is a property of the *instruction set* reachable here,
// not of termination.
func Verify(p *Program, deterministic bool) error {
	if p == nil || len(p.Instrs) == 0 {
		return ErrEmpty
	}
	if len(p.Instrs) > MaxProgramLen {
		return ErrTooLong
	}
	for i, in := range p.Instrs {
		if in.Op >= opCount {
			return fmt.Errorf("udf: instr %d: invalid opcode %d", i, in.Op)
		}
		if in.Rd >= NumRegs || in.Rs >= NumRegs || in.Rt >= NumRegs {
			return fmt.Errorf("udf: instr %d: register out of range", i)
		}
		switch in.Op {
		case OpENVW:
			if deterministic {
				return fmt.Errorf("%w (instr %d)", ErrNondeterministic, i)
			}
		case OpBEQ, OpBNE, OpBLT, OpBGE, OpJMP:
			if in.Imm < 0 || in.Imm > int64(len(p.Instrs)) {
				return fmt.Errorf("udf: instr %d: branch target %d out of range", i, in.Imm)
			}
		}
	}
	return nil
}
