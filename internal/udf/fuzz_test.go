package udf

import (
	"testing"
	"testing/quick"
)

// The kernel interprets UDFs supplied by arbitrary untrusted libFSes:
// no program that passes Verify may crash the interpreter, run outside
// its fuel, or touch memory outside its inputs. These fuzz tests throw
// random (but structurally valid) programs and random raw instruction
// streams at the verifier+interpreter pair.

// randomProgram builds an arbitrary instruction sequence from raw
// fuzz bytes. Opcodes/registers/targets are taken modulo their valid
// ranges so Verify accepts most of them; the interpreter must then
// survive whatever they do.
func randomProgram(raw []byte) *Program {
	p := &Program{Name: "fuzz"}
	for i := 0; i+5 <= len(raw) && len(p.Instrs) < 64; i += 5 {
		in := Instr{
			Op: Op(raw[i] % uint8(opCount)),
			Rd: raw[i+1] % NumRegs,
			Rs: raw[i+2] % NumRegs,
			Rt: raw[i+3] % NumRegs,
		}
		// Zero the fields each op does not encode, so the text form is
		// lossless (Disassemble only prints meaningful operands).
		switch in.Op {
		case OpBEQ, OpBNE, OpBLT, OpBGE:
			in.Rd = 0
			in.Imm = int64(raw[i+4]) % int64(len(raw)/5+1)
		case OpJMP:
			in.Rd, in.Rs, in.Rt = 0, 0, 0
			in.Imm = int64(raw[i+4]) % int64(len(raw)/5+1)
		case OpLI, OpENVW:
			in.Rs, in.Rt = 0, 0
			in.Imm = int64(int8(raw[i+4]))
		case OpADDI, OpLDB, OpLDW, OpLDQ, OpLDAB, OpLDAW, OpLDAQ:
			in.Rt = 0
			in.Imm = int64(int8(raw[i+4]))
		case OpMOV:
			in.Rt = 0
		case OpMETA, OpAUX:
			in.Rs, in.Rt = 0, 0
		case OpRET:
			in.Rd, in.Rt = 0, 0
		}
		p.Instrs = append(p.Instrs, in)
	}
	p.Instrs = append(p.Instrs, Instr{Op: OpRET})
	return p
}

func TestFuzzInterpreterNeverPanics(t *testing.T) {
	f := func(raw []byte, meta []byte, aux []byte) bool {
		if len(meta) > 256 {
			meta = meta[:256]
		}
		if len(aux) > 64 {
			aux = aux[:64]
		}
		p := randomProgram(raw)
		if err := Verify(p, false); err != nil {
			return true // rejected programs never run
		}
		res, err := Run(p, meta, aux, Env{1, 2, 3, 4}, 2000)
		if err != nil {
			return true // controlled abort is fine
		}
		// Bounded execution and output.
		return res.Steps <= 2000 && len(res.Extents) <= MaxExtents
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestFuzzDeterministicProgramsAreDeterministic(t *testing.T) {
	// Any program Verify accepts as deterministic must produce
	// identical results on identical inputs — the property XN's
	// security depends on.
	f := func(raw []byte, meta []byte) bool {
		if len(meta) > 256 {
			meta = meta[:256]
		}
		p := randomProgram(raw)
		if err := Verify(p, true); err != nil {
			return true
		}
		r1, e1 := Run(p, meta, nil, nil, 2000)
		r2, e2 := Run(p, meta, nil, nil, 2000)
		if (e1 == nil) != (e2 == nil) {
			return false
		}
		if e1 != nil {
			return e1.Error() == e2.Error()
		}
		if r1.Ret != r2.Ret || r1.Steps != r2.Steps || len(r1.Extents) != len(r2.Extents) {
			return false
		}
		for i := range r1.Extents {
			if r1.Extents[i] != r2.Extents[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestFuzzAssemblerRoundTrip(t *testing.T) {
	// Disassemble(assembleable program) must reassemble to identical
	// instructions.
	f := func(raw []byte) bool {
		p := randomProgram(raw)
		if err := Verify(p, false); err != nil {
			return true
		}
		text := Disassemble(p)
		p2, err := Assemble("rt", text)
		if err != nil {
			return false
		}
		if len(p.Instrs) != len(p2.Instrs) {
			return false
		}
		for i := range p.Instrs {
			if p.Instrs[i] != p2.Instrs[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
