// Package unix defines the POSIX-flavored process interface that the
// simulated applications (internal/apps) are written against. The same
// application binaries — cp, gzip, pax, gcc, diff, ... — run unmodified
// on every OS personality in the repository:
//
//   - internal/exos: the ExOS library operating system on Xok, where
//     these calls are unprivileged library code;
//   - internal/bsdos: the monolithic FreeBSD/OpenBSD models, where
//     every call traps into the kernel.
//
// This mirrors the paper's methodology: identical unmodified UNIX
// applications measured across Xok/ExOS, OpenBSD/C-FFS, OpenBSD and
// FreeBSD (Section 6).
package unix

import (
	"errors"

	"xok/internal/sim"
)

// FD is a file descriptor: a small integer naming an entry in the
// process's descriptor table.
type FD int

// Canonical errors. Every personality returns these exact values for
// the corresponding misuse, so the same program observes the same
// errno on Xok/ExOS and on the BSD models — the paper's systems differ
// in cost, never in semantics. internal/difftest's cross-personality
// fuzzer compares errors by identity and flags any personality that
// invents its own.
var (
	// ErrBadFD is EBADF: the descriptor is closed, was never open, or
	// names the wrong end of a pipe for the operation.
	ErrBadFD = errors.New("bad file descriptor")
	// ErrInval is EINVAL: a bad whence, or a seek that would land
	// before the start of the file.
	ErrInval = errors.New("invalid argument")
	// ErrSeekPipe is ESPIPE: seek on a pipe.
	ErrSeekPipe = errors.New("illegal seek")
	// ErrPipe is EPIPE: write to a pipe with no read end open.
	ErrPipe = errors.New("broken pipe")
	// ErrXDev is EXDEV: rename across file systems.
	ErrXDev = errors.New("cross-device link")
)

// Whence values for Seek.
const (
	SeekSet = 0
	SeekCur = 1
	SeekEnd = 2
)

// Stat describes a file.
type Stat struct {
	Size  int64
	Mode  uint32
	UID   uint32
	GID   uint32
	MTime uint32
	IsDir bool
}

// DirEnt is one directory entry.
type DirEnt struct {
	Name   string
	IsDir  bool
	IsLink bool
	Size   int64
}

// Handle represents a spawned child process.
type Handle interface {
	// Wait blocks until the child exits.
	Wait()
}

// Proc is the interface one running process sees. Implementations are
// not safe for concurrent use: a process is single-threaded and its
// methods may only be called from its own body function.
type Proc interface {
	// Getpid returns the process id (the classic "trivial syscall"
	// microbenchmark, Section 7.1).
	Getpid() int

	// UID returns the user the process runs as.
	UID() uint16

	// Compute charges pure CPU work (application computation between
	// I/O operations).
	Compute(cycles sim.Time)

	// Now returns the current virtual time.
	Now() sim.Time

	// Files.
	Open(path string) (FD, error)
	Create(path string, mode uint32) (FD, error)
	Read(fd FD, buf []byte) (int, error)
	Write(fd FD, buf []byte) (int, error)
	Seek(fd FD, off int64, whence int) (int64, error)
	Close(fd FD) error
	Stat(path string) (Stat, error)
	Mkdir(path string, mode uint32) error
	Readdir(path string) ([]DirEnt, error)
	Unlink(path string) error
	Rmdir(path string) error
	Rename(oldPath, newPath string) error
	Chmod(path string, mode uint32) error
	// Symlink creates a symbolic link at path pointing to target.
	// Links resolve when they are the final component of a path;
	// Unlink and Rename operate on the link itself.
	Symlink(target, path string) error
	Sync() error

	// Pipe creates a connected read/write descriptor pair.
	Pipe() (r, w FD, err error)

	// Spawn forks and execs a child running f; the cost model charges
	// the personality's fork+exec price.
	Spawn(name string, f func(Proc)) (Handle, error)
}
