package apps

import (
	"bytes"
	"fmt"
	"testing"

	"xok/internal/exos"
	"xok/internal/unix"
)

// run executes main in a process on a fresh Xok/ExOS machine.
func run(t *testing.T, main func(p unix.Proc) error) {
	t.Helper()
	s := exos.Boot(exos.Config{})
	var err error
	s.Spawn("app", 0, func(p unix.Proc) {
		err = main(p)
	})
	s.Run()
	if err != nil {
		t.Fatal(err)
	}
}

func TestLccTreeShape(t *testing.T) {
	spec := LccTree()
	total := spec.TotalBytes()
	if total < 2_500_000 || total > 5_000_000 {
		t.Fatalf("tree = %d bytes, want ~3.5 MB", total)
	}
	if len(spec.Files) < 150 || len(spec.Files) > 400 {
		t.Fatalf("tree = %d files", len(spec.Files))
	}
	arch := ArchiveBytes(spec)
	compressed := len(arch) * 3 / 10
	if compressed < 800_000 || compressed > 1_500_000 {
		t.Fatalf("compressed archive = %d bytes, want ~1.1 MB", compressed)
	}
	// Deterministic.
	if LccTree().TotalBytes() != total {
		t.Fatal("LccTree not deterministic")
	}
}

func TestArchiveRoundTrip(t *testing.T) {
	spec := TreeSpec{
		Dirs: []string{"a", "b"},
		Files: []FileSpec{
			{Path: "a/x", Size: 5000},
			{Path: "b/y", Size: 12345},
			{Path: "top", Size: 1},
		},
	}
	arch := ArchiveBytes(spec)
	run(t, func(p unix.Proc) error {
		if err := WriteFile(p, "/t.tar", arch); err != nil {
			return err
		}
		if err := PaxR(p, "/t.tar", "/out"); err != nil {
			return err
		}
		for _, f := range spec.Files {
			st, err := p.Stat("/out/" + f.Path)
			if err != nil {
				return fmt.Errorf("stat %s: %w", f.Path, err)
			}
			if st.Size != int64(f.Size) {
				return fmt.Errorf("%s = %d bytes, want %d", f.Path, st.Size, f.Size)
			}
		}
		// Pack it back; unpack again; sizes must survive.
		if err := PaxW(p, "/out", "/t2.tar"); err != nil {
			return err
		}
		if err := PaxR(p, "/t2.tar", "/out2"); err != nil {
			return err
		}
		d, err := Diff(p, "/out", "/out2")
		if err != nil {
			return err
		}
		if d {
			return fmt.Errorf("pack/unpack round trip changed the tree")
		}
		return nil
	})
}

func TestCpPreservesBytes(t *testing.T) {
	run(t, func(p unix.Proc) error {
		data := make([]byte, 100_000)
		fillContent(data, 7)
		if err := WriteFile(p, "/src", data); err != nil {
			return err
		}
		if err := Cp(p, "/src", "/dst"); err != nil {
			return err
		}
		got, err := ReadFile(p, "/dst")
		if err != nil {
			return err
		}
		if !bytes.Equal(got, data) {
			return fmt.Errorf("copy corrupted data")
		}
		return nil
	})
}

func TestDiffDetectsDifference(t *testing.T) {
	run(t, func(p unix.Proc) error {
		if err := p.Mkdir("/a", 7); err != nil {
			return err
		}
		if err := p.Mkdir("/b", 7); err != nil {
			return err
		}
		if err := WriteFile(p, "/a/f", []byte("same content")); err != nil {
			return err
		}
		if err := WriteFile(p, "/b/f", []byte("same content")); err != nil {
			return err
		}
		d, err := Diff(p, "/a", "/b")
		if err != nil || d {
			return fmt.Errorf("identical dirs differ: %v, %v", d, err)
		}
		if err := WriteFile(p, "/b/f", []byte("other content")); err != nil {
			return err
		}
		d, err = Diff(p, "/a", "/b")
		if err != nil || !d {
			return fmt.Errorf("different dirs equal: %v, %v", d, err)
		}
		return nil
	})
}

func TestGccProducesObjects(t *testing.T) {
	run(t, func(p unix.Proc) error {
		if err := p.Mkdir("/src", 7); err != nil {
			return err
		}
		if err := WriteFile(p, "/src/a.c", make([]byte, 10000)); err != nil {
			return err
		}
		if err := WriteFile(p, "/src/b.txt", make([]byte, 5000)); err != nil {
			return err
		}
		if err := Gcc(p, "/src"); err != nil {
			return err
		}
		st, err := p.Stat("/src/a.o")
		if err != nil {
			return fmt.Errorf("object file missing: %w", err)
		}
		if st.Size != 10000*9/20 {
			return fmt.Errorf("object = %d bytes", st.Size)
		}
		if _, err := p.Stat("/src/b.o"); err == nil {
			return fmt.Errorf("gcc compiled a .txt file")
		}
		if err := RmGlob(p, "/src", ".o"); err != nil {
			return err
		}
		if _, err := p.Stat("/src/a.o"); err == nil {
			return fmt.Errorf("rm *.o left the object")
		}
		if _, err := p.Stat("/src/a.c"); err != nil {
			return fmt.Errorf("rm *.o removed a source: %w", err)
		}
		return nil
	})
}

func TestRmRFRemovesTree(t *testing.T) {
	run(t, func(p unix.Proc) error {
		spec := TreeSpec{
			Dirs:  []string{"x"},
			Files: []FileSpec{{Path: "x/a", Size: 100}, {Path: "b", Size: 200}},
		}
		if err := WriteTree(p, "/t", spec); err != nil {
			return err
		}
		if err := RmRF(p, "/t"); err != nil {
			return err
		}
		if _, err := p.Stat("/t"); err == nil {
			return fmt.Errorf("tree survived rm -rf")
		}
		return nil
	})
}

func TestGrepAndWc(t *testing.T) {
	run(t, func(p unix.Proc) error {
		content := []byte("one needle two needle three\nneedle")
		if err := WriteFile(p, "/f", content); err != nil {
			return err
		}
		n, err := Grep(p, "/f", "needle")
		if err != nil {
			return err
		}
		if n != 3 {
			return fmt.Errorf("grep = %d matches, want 3", n)
		}
		w, err := Wc(p, "/f")
		if err != nil {
			return err
		}
		if w != 6 {
			return fmt.Errorf("wc = %d words, want 6", w)
		}
		return nil
	})
}

func TestGzipShrinksGunzipRestoresSize(t *testing.T) {
	run(t, func(p unix.Proc) error {
		orig := make([]byte, 200_000)
		if err := WriteFile(p, "/in", orig); err != nil {
			return err
		}
		if err := Gzip(p, "/in", "/out.gz"); err != nil {
			return err
		}
		st, err := p.Stat("/out.gz")
		if err != nil {
			return err
		}
		if st.Size >= int64(len(orig)) || st.Size < int64(len(orig))/5 {
			return fmt.Errorf("compressed = %d bytes from %d", st.Size, len(orig))
		}
		if err := Gunzip(p, "/out.gz", "/restored", orig); err != nil {
			return err
		}
		st, err = p.Stat("/restored")
		if err != nil {
			return err
		}
		if st.Size != int64(len(orig)) {
			return fmt.Errorf("restored = %d bytes, want %d", st.Size, len(orig))
		}
		return nil
	})
}

func TestTspAndSorAreCPUBound(t *testing.T) {
	s := exos.Boot(exos.Config{})
	var tspTime, sorTime int64
	s.Spawn("tsp", 0, func(p unix.Proc) {
		start := p.Now()
		if got := Tsp(p, 60, 20); got <= 0 {
			t.Error("tsp returned non-positive tour length")
		}
		tspTime = int64(p.Now() - start)
	})
	s.Run()
	s.Spawn("sor", 0, func(p unix.Proc) {
		start := p.Now()
		Sor(p, 50, 50)
		sorTime = int64(p.Now() - start)
	})
	s.Run()
	if tspTime == 0 || sorTime == 0 {
		t.Fatalf("CPU jobs consumed no time: tsp=%d sor=%d", tspTime, sorTime)
	}
}

func TestCksum(t *testing.T) {
	run(t, func(p unix.Proc) error {
		if err := WriteFile(p, "/f", []byte{1, 2, 3}); err != nil {
			return err
		}
		a, err := Cksum(p, 2, "/f")
		if err != nil {
			return err
		}
		b, err := Cksum(p, 2, "/f")
		if err != nil {
			return err
		}
		if a != b {
			return fmt.Errorf("cksum not deterministic")
		}
		return nil
	})
}
