// Package apps implements the UNIX application programs the paper's
// macrobenchmarks run — cp, gunzip/gzip, pax, diff, gcc, rm, grep, wc,
// cksum, tsp, sor — written once against unix.Proc so the identical
// "binaries" run on ExOS and on the BSD models (Section 6
// methodology). File I/O is real (bytes move through the simulated
// file systems); computation is charged through the calibrated cost
// model.
package apps

import (
	"encoding/binary"
	"fmt"
	"strconv"
	"strings"

	"xok/internal/sim"
	"xok/internal/unix"
)

// FileSpec is one file in a synthetic source tree.
type FileSpec struct {
	Path string // relative, e.g. "src/alloc.c"
	Size int
}

// TreeSpec describes a source tree: the lcc-like workload of Table 1.
type TreeSpec struct {
	Dirs  []string
	Files []FileSpec
}

// TotalBytes sums the file sizes.
func (t TreeSpec) TotalBytes() int {
	n := 0
	for _, f := range t.Files {
		n += f.Size
	}
	return n
}

// LccTree synthesizes a tree with the lcc distribution's footprint:
// ~250 source files in ~20 directories totalling ~3.5 MB, whose pax
// archive is ~3.6 MB and whose gzipped archive is ~1.1 MB (Table 1:
// "the size of the compressed archive file for lcc is 1.1 MByte").
func LccTree() TreeSpec {
	rng := sim.NewRNG(0x1cc)
	var t TreeSpec
	dirs := []string{"src", "lib", "etc", "doc", "cpp", "lburg", "alpha", "mips", "sparc", "x86"}
	t.Dirs = append(t.Dirs, dirs...)
	for d := 0; d < len(dirs); d++ {
		nfiles := 18 + rng.Intn(14)
		for i := 0; i < nfiles; i++ {
			var name string
			var size int
			switch rng.Intn(10) {
			case 0, 1: // header
				name = fmt.Sprintf("h%02d.h", i)
				size = 1500 + rng.Intn(4000)
			case 2: // doc
				name = fmt.Sprintf("d%02d.txt", i)
				size = 3000 + rng.Intn(12000)
			default: // C source
				name = fmt.Sprintf("c%02d.c", i)
				size = 6000 + rng.Intn(24000)
			}
			t.Files = append(t.Files, FileSpec{
				Path: dirs[d] + "/" + name,
				Size: size,
			})
		}
	}
	return t
}

// fillContent writes deterministic bytes (so copies and diffs move
// real data).
func fillContent(buf []byte, seed uint32) {
	var x = seed | 1
	for i := 0; i+4 <= len(buf); i += 4 {
		x = x*1664525 + 1013904223
		binary.LittleEndian.PutUint32(buf[i:], x)
	}
}

// Archive header: "XARV <name> <size>\n" followed by the data — a
// pax/tar-like stream the simulated pax actually parses back.
const archiveMagic = "XARV"

// ArchiveBytes builds the archive stream for a tree.
func ArchiveBytes(t TreeSpec) []byte {
	var b []byte
	for _, d := range t.Dirs {
		b = append(b, []byte(fmt.Sprintf("%s D %s 0\n", archiveMagic, d))...)
	}
	for i, f := range t.Files {
		b = append(b, []byte(fmt.Sprintf("%s F %s %d\n", archiveMagic, f.Path, f.Size))...)
		data := make([]byte, f.Size)
		fillContent(data, uint32(i))
		b = append(b, data...)
	}
	return b
}

// ParseArchiveHeader reads one "XARV kind name size\n" header starting
// at data[off]. Returns kind, name, size and the offset past the
// newline.
func ParseArchiveHeader(data []byte, off int) (kind byte, name string, size int, next int, err error) {
	end := off
	for end < len(data) && data[end] != '\n' {
		end++
	}
	if end == len(data) {
		return 0, "", 0, 0, fmt.Errorf("apps: truncated archive header")
	}
	fields := strings.Fields(string(data[off:end]))
	if len(fields) != 4 || fields[0] != archiveMagic {
		return 0, "", 0, 0, fmt.Errorf("apps: bad archive header %q", string(data[off:end]))
	}
	sz, err := strconv.Atoi(fields[3])
	if err != nil {
		return 0, "", 0, 0, fmt.Errorf("apps: bad archive size: %v", err)
	}
	return fields[1][0], fields[2], sz, end + 1, nil
}

// WriteTree materializes a spec directly (test setup helper): mkdir
// the directories and write every file.
func WriteTree(p unix.Proc, root string, t TreeSpec) error {
	if err := p.Mkdir(root, 7); err != nil {
		return err
	}
	for _, d := range t.Dirs {
		if err := p.Mkdir(root+"/"+d, 7); err != nil {
			return err
		}
	}
	for i, f := range t.Files {
		fd, err := p.Create(root+"/"+f.Path, 6)
		if err != nil {
			return err
		}
		data := make([]byte, f.Size)
		fillContent(data, uint32(i))
		if _, err := p.Write(fd, data); err != nil {
			return err
		}
		if err := p.Close(fd); err != nil {
			return err
		}
	}
	return nil
}

// WriteFile creates path holding n deterministic bytes.
func WriteFile(p unix.Proc, path string, data []byte) error {
	fd, err := p.Create(path, 6)
	if err != nil {
		return err
	}
	if _, err := p.Write(fd, data); err != nil {
		return err
	}
	return p.Close(fd)
}

// ReadFile slurps a whole file.
func ReadFile(p unix.Proc, path string) ([]byte, error) {
	st, err := p.Stat(path)
	if err != nil {
		return nil, err
	}
	fd, err := p.Open(path)
	if err != nil {
		return nil, err
	}
	defer p.Close(fd)
	buf := make([]byte, st.Size)
	got := 0
	for got < len(buf) {
		n, err := p.Read(fd, buf[got:])
		if err != nil {
			return nil, err
		}
		if n == 0 {
			break
		}
		got += n
	}
	return buf[:got], nil
}
