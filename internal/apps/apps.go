package apps

import (
	"fmt"

	"xok/internal/sim"
	"xok/internal/unix"
)

// Per-byte CPU costs (cycles/byte), calibrated to late-90s software on
// a 200-MHz Pentium Pro.
const (
	// CPUGzip: gzip -6 compresses at ~1 MB/s.
	CPUGzip = 190
	// CPUGunzip: decompression at ~4.5 MB/s.
	CPUGunzip = 45
	// CPUGcc: cc1 chews ~160 KB/s of source (lcc's 3.5 MB ≈ 22 s of
	// compute, matching Figure 2's near-identical gcc bars).
	CPUGcc = 1250
	// CPUDiff: byte comparison of two streams.
	CPUDiff = 14
	// CPUGrep: Boyer-Moore scan.
	CPUGrep = 9
	// CPUWc: word counting.
	CPUWc = 8
	// CPUCksum: CRC over the file.
	CPUCksum = 6
	// gzipRatio is output/input for compression (and its inverse for
	// decompression bookkeeping).
	gzipRatioNum, gzipRatioDen = 3, 10
	// objRatio is object-file bytes per source byte.
	objRatioNum, objRatioDen = 9, 20
)

const ioChunk = 65536 // cp and friends use 64-KB buffers

// Cp copies one file ("copy small file" / "copy large file", Table 1).
func Cp(p unix.Proc, src, dst string) error {
	in, err := p.Open(src)
	if err != nil {
		return err
	}
	defer p.Close(in)
	out, err := p.Create(dst, 6)
	if err != nil {
		return err
	}
	defer p.Close(out)
	buf := make([]byte, ioChunk)
	for {
		n, err := p.Read(in, buf)
		if err != nil {
			return err
		}
		if n == 0 {
			return nil
		}
		if _, err := p.Write(out, buf[:n]); err != nil {
			return err
		}
	}
}

// CpR recursively copies a tree ("copy large tree", Table 1).
func CpR(p unix.Proc, srcDir, dstDir string) error {
	if err := p.Mkdir(dstDir, 7); err != nil {
		return err
	}
	ents, err := p.Readdir(srcDir)
	if err != nil {
		return err
	}
	for _, ent := range ents {
		s := srcDir + "/" + ent.Name
		d := dstDir + "/" + ent.Name
		if ent.IsDir {
			if err := CpR(p, s, d); err != nil {
				return err
			}
		} else if err := Cp(p, s, d); err != nil {
			return err
		}
	}
	return nil
}

// Gunzip decompresses src into dst. The simulation cannot run DEFLATE
// backwards from synthetic bytes, so the caller supplies the logical
// plaintext (generated from the same TreeSpec); the program still
// reads every compressed byte, charges decompression CPU, and writes
// every output byte through the file system.
func Gunzip(p unix.Proc, src, dst string, plaintext []byte) error {
	compressed, err := ReadFile(p, src)
	if err != nil {
		return err
	}
	p.Compute(sim.Time(len(compressed) * CPUGunzip))
	out, err := p.Create(dst, 6)
	if err != nil {
		return err
	}
	defer p.Close(out)
	for off := 0; off < len(plaintext); off += ioChunk {
		end := off + ioChunk
		if end > len(plaintext) {
			end = len(plaintext)
		}
		if _, err := p.Write(out, plaintext[off:end]); err != nil {
			return err
		}
	}
	return nil
}

// Gzip compresses src into dst at the standard ratio.
func Gzip(p unix.Proc, src, dst string) error {
	in, err := p.Open(src)
	if err != nil {
		return err
	}
	defer p.Close(in)
	out, err := p.Create(dst, 6)
	if err != nil {
		return err
	}
	defer p.Close(out)
	buf := make([]byte, ioChunk)
	for {
		n, err := p.Read(in, buf)
		if err != nil {
			return err
		}
		if n == 0 {
			return nil
		}
		p.Compute(sim.Time(n * CPUGzip))
		outN := n * gzipRatioNum / gzipRatioDen
		if _, err := p.Write(out, buf[:outN]); err != nil {
			return err
		}
	}
}

// PaxR unpacks an archive into destDir ("unpack file", Table 1),
// parsing the real archive stream.
func PaxR(p unix.Proc, archive, destDir string) error {
	data, err := ReadFile(p, archive)
	if err != nil {
		return err
	}
	if err := p.Mkdir(destDir, 7); err != nil {
		return err
	}
	off := 0
	for off < len(data) {
		kind, name, size, next, err := ParseArchiveHeader(data, off)
		if err != nil {
			return err
		}
		off = next
		switch kind {
		case 'D':
			if err := p.Mkdir(destDir+"/"+name, 7); err != nil {
				return err
			}
		case 'F':
			if off+size > len(data) {
				return fmt.Errorf("apps: archive truncated in %s", name)
			}
			if err := WriteFile(p, destDir+"/"+name, data[off:off+size]); err != nil {
				return err
			}
			off += size
		default:
			return fmt.Errorf("apps: bad archive entry kind %c", kind)
		}
	}
	return nil
}

// PaxW packs a tree into an archive ("pack tree", Table 1).
func PaxW(p unix.Proc, dir, archive string) error {
	out, err := p.Create(archive, 6)
	if err != nil {
		return err
	}
	defer p.Close(out)
	var walk func(rel string) error
	walk = func(rel string) error {
		full := dir
		if rel != "" {
			full = dir + "/" + rel
		}
		ents, err := p.Readdir(full)
		if err != nil {
			return err
		}
		for _, ent := range ents {
			childRel := ent.Name
			if rel != "" {
				childRel = rel + "/" + ent.Name
			}
			if ent.IsDir {
				hdr := fmt.Sprintf("%s D %s 0\n", archiveMagic, childRel)
				if _, err := p.Write(out, []byte(hdr)); err != nil {
					return err
				}
				if err := walk(childRel); err != nil {
					return err
				}
				continue
			}
			hdr := fmt.Sprintf("%s F %s %d\n", archiveMagic, childRel, ent.Size)
			if _, err := p.Write(out, []byte(hdr)); err != nil {
				return err
			}
			data, err := ReadFile(p, dir+"/"+childRel)
			if err != nil {
				return err
			}
			if _, err := p.Write(out, data); err != nil {
				return err
			}
		}
		return nil
	}
	return walk("")
}

// Diff compares two trees ("diff large tree", Table 1), reading both
// sides fully and charging the comparison. Returns true if they
// differ.
func Diff(p unix.Proc, a, b string) (bool, error) {
	ents, err := p.Readdir(a)
	if err != nil {
		return false, err
	}
	differs := false
	for _, ent := range ents {
		pa, pb := a+"/"+ent.Name, b+"/"+ent.Name
		if ent.IsDir {
			d, err := Diff(p, pa, pb)
			if err != nil {
				return false, err
			}
			differs = differs || d
			continue
		}
		da, err := ReadFile(p, pa)
		if err != nil {
			return false, err
		}
		db, err := ReadFile(p, pb)
		if err != nil {
			return false, err
		}
		p.Compute(sim.Time((len(da) + len(db)) * CPUDiff / 2))
		if len(da) != len(db) {
			differs = true
			continue
		}
		for i := range da {
			if da[i] != db[i] {
				differs = true
				break
			}
		}
	}
	return differs, nil
}

// Gcc "compiles" every .c file under dir: read source, burn compiler
// CPU, write the object file next to it ("compile", Table 1).
func Gcc(p unix.Proc, dir string) error {
	ents, err := p.Readdir(dir)
	if err != nil {
		return err
	}
	for _, ent := range ents {
		path := dir + "/" + ent.Name
		if ent.IsDir {
			if err := Gcc(p, path); err != nil {
				return err
			}
			continue
		}
		if !isC(ent.Name) {
			continue
		}
		src, err := ReadFile(p, path)
		if err != nil {
			return err
		}
		p.Compute(sim.Time(len(src) * CPUGcc))
		obj := path[:len(path)-2] + ".o"
		objData := make([]byte, len(src)*objRatioNum/objRatioDen)
		if err := WriteFile(p, obj, objData); err != nil {
			return err
		}
	}
	return nil
}

func isC(name string) bool {
	return len(name) > 2 && name[len(name)-2:] == ".c"
}

// RmGlob removes files under dir matching the suffix, recursively
// ("delete binary files": rm *.o).
func RmGlob(p unix.Proc, dir, suffix string) error {
	ents, err := p.Readdir(dir)
	if err != nil {
		return err
	}
	for _, ent := range ents {
		path := dir + "/" + ent.Name
		if ent.IsDir {
			if err := RmGlob(p, path, suffix); err != nil {
				return err
			}
			continue
		}
		if len(ent.Name) >= len(suffix) && ent.Name[len(ent.Name)-len(suffix):] == suffix {
			if err := p.Unlink(path); err != nil {
				return err
			}
		}
	}
	return nil
}

// RmRF removes a whole tree ("delete the created source tree").
func RmRF(p unix.Proc, dir string) error {
	ents, err := p.Readdir(dir)
	if err != nil {
		return err
	}
	for _, ent := range ents {
		path := dir + "/" + ent.Name
		if ent.IsDir {
			if err := RmRF(p, path); err != nil {
				return err
			}
		} else if err := p.Unlink(path); err != nil {
			return err
		}
	}
	return p.Rmdir(dir)
}

// Grep scans a file (or tree) for a pattern, charging scan CPU.
// Returns the number of matches (over the synthetic content this is
// typically zero; the cost is the point).
func Grep(p unix.Proc, path string, pattern string) (int, error) {
	st, err := p.Stat(path)
	if err != nil {
		return 0, err
	}
	if st.IsDir {
		total := 0
		ents, err := p.Readdir(path)
		if err != nil {
			return 0, err
		}
		for _, ent := range ents {
			n, err := Grep(p, path+"/"+ent.Name, pattern)
			if err != nil {
				return 0, err
			}
			total += n
		}
		return total, nil
	}
	data, err := ReadFile(p, path)
	if err != nil {
		return 0, err
	}
	p.Compute(sim.Time(len(data) * CPUGrep))
	matches := 0
	for i := 0; i+len(pattern) <= len(data); i++ {
		if string(data[i:i+len(pattern)]) == pattern {
			matches++
			i += len(pattern) - 1
		}
	}
	return matches, nil
}

// Wc counts words in the listed files.
func Wc(p unix.Proc, paths ...string) (int, error) {
	words := 0
	for _, path := range paths {
		data, err := ReadFile(p, path)
		if err != nil {
			return 0, err
		}
		p.Compute(sim.Time(len(data) * CPUWc))
		inWord := false
		for _, c := range data {
			isSpace := c == ' ' || c == '\n' || c == '\t'
			if !isSpace && !inWord {
				words++
			}
			inWord = !isSpace
		}
	}
	return words, nil
}

// Cksum computes a checksum over the files `repeat` times ("compute a
// checksum many times over a small set of files" — the CPU-heavy pool
// member in Figure 4).
func Cksum(p unix.Proc, repeat int, paths ...string) (uint32, error) {
	var sum uint32
	for r := 0; r < repeat; r++ {
		for _, path := range paths {
			data, err := ReadFile(p, path)
			if err != nil {
				return 0, err
			}
			p.Compute(sim.Time(len(data) * CPUCksum))
			for _, c := range data {
				sum = sum*31 + uint32(c)
			}
		}
	}
	return sum, nil
}

// Tsp solves a traveling-salesman instance by 2-opt over a random
// tour: pure CPU (Figure 4 pool).
func Tsp(p unix.Proc, cities, rounds int) float64 {
	rng := sim.NewRNG(uint64(cities)*2654435761 + 1)
	xs := make([]float64, cities)
	ys := make([]float64, cities)
	for i := range xs {
		xs[i] = rng.Float64()
		ys[i] = rng.Float64()
	}
	tour := rng.Perm(cities)
	dist := func(a, b int) float64 {
		dx, dy := xs[a]-xs[b], ys[a]-ys[b]
		return dx*dx + dy*dy
	}
	best := 0.0
	for r := 0; r < rounds; r++ {
		for i := 0; i < cities-2; i++ {
			for j := i + 2; j < cities-1; j++ {
				a, b, c, d := tour[i], tour[i+1], tour[j], tour[j+1]
				if dist(a, c)+dist(b, d) < dist(a, b)+dist(c, d) {
					for lo, hi := i+1, j; lo < hi; lo, hi = lo+1, hi-1 {
						tour[lo], tour[hi] = tour[hi], tour[lo]
					}
				}
			}
		}
		// ~40 cycles per inner-loop comparison on the target machine.
		p.Compute(sim.Time(cities * cities / 2 * 40))
	}
	for i := 0; i < cities-1; i++ {
		best += dist(tour[i], tour[i+1])
	}
	return best
}

// Sor iteratively solves a Laplace equation by successive
// overrelaxation on an n x n grid: pure CPU (Figure 4 pool).
func Sor(p unix.Proc, n, iters int) float64 {
	grid := make([]float64, n*n)
	for i := 0; i < n; i++ {
		grid[i] = 1.0 // hot top edge
	}
	const omega = 1.25
	for it := 0; it < iters; it++ {
		for y := 1; y < n-1; y++ {
			for x := 1; x < n-1; x++ {
				i := y*n + x
				v := (grid[i-1] + grid[i+1] + grid[i-n] + grid[i+n]) / 4
				grid[i] += omega * (v - grid[i])
			}
		}
		// ~12 cycles per stencil update (FP adds + multiply).
		p.Compute(sim.Time((n - 2) * (n - 2) * 12))
	}
	return grid[n*n/2+n/2]
}
