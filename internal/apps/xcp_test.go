package apps

import (
	"bytes"
	"fmt"
	"testing"

	"xok/internal/cap"
	"xok/internal/exos"
	"xok/internal/kernel"
	"xok/internal/sim"
	"xok/internal/unix"
)

// stageFiles creates n files of size bytes and returns the copy pairs.
// The files are written in interleaved chunks so their blocks are
// fragmented across the disk — the layout where sorted schedules pay
// off (real multi-file trees accumulate exactly this interleaving).
func stageFiles(t *testing.T, s *exos.System, n, size int) [][2]string {
	t.Helper()
	pairs := make([][2]string, n)
	s.Spawn("stage", 0, func(p unix.Proc) {
		fds := make([]unix.FD, n)
		for i := 0; i < n; i++ {
			src := fmt.Sprintf("/src%02d", i)
			fd, err := p.Create(src, 6)
			if err != nil {
				t.Errorf("stage: %v", err)
				return
			}
			fds[i] = fd
			pairs[i] = [2]string{src, fmt.Sprintf("/dst%02d", i)}
		}
		chunk := make([]byte, sim.DiskBlockSize)
		for off := 0; off < size; off += len(chunk) {
			for i := 0; i < n; i++ {
				fillContent(chunk, uint32(i*7919+off))
				if _, err := p.Write(fds[i], chunk); err != nil {
					t.Errorf("stage write: %v", err)
					return
				}
			}
		}
		for i := 0; i < n; i++ {
			p.Close(fds[i])
		}
		if err := p.Sync(); err != nil {
			t.Errorf("sync: %v", err)
		}
	})
	s.Run()
	return pairs
}

// evictAll recycles every clean buffer so the next run starts cold.
func evictAll(s *exos.System) {
	s.K.Spawn("evict", func(e *kernel.Env) {
		e.Creds = cap.UnixCreds(0)
		_ = s.FS.Sync(e)
		for {
			if _, ok := s.X.RecycleLRU(e); !ok {
				return
			}
		}
	})
	s.Run()
}

// runXCP copies the pairs with XCP, returning the program's elapsed
// time (measured at process exit, like the paper; background flushes
// continue afterwards).
func runXCP(t *testing.T, s *exos.System, pairs [][2]string) sim.Time {
	t.Helper()
	start := s.Now()
	var end sim.Time
	s.K.Spawn("xcp", func(e *kernel.Env) {
		e.Creds = cap.UnixCreds(0)
		if err := XCP(e, s.FS, pairs); err != nil {
			t.Errorf("xcp: %v", err)
		}
		end = s.Now()
	})
	s.Run()
	return end - start
}

// runCP copies the pairs with the plain UNIX cp, measured at process
// exit.
func runCP(t *testing.T, s *exos.System, pairs [][2]string) sim.Time {
	t.Helper()
	start := s.Now()
	var end sim.Time
	s.Spawn("cp", 0, func(p unix.Proc) {
		for _, pr := range pairs {
			if err := Cp(p, pr[0], pr[1]); err != nil {
				t.Errorf("cp: %v", err)
				return
			}
		}
		end = p.Now()
	})
	s.Run()
	return end - start
}

func TestXCPCopiesCorrectly(t *testing.T) {
	s := exos.Boot(exos.Config{})
	pairs := stageFiles(t, s, 4, 150_000)
	runXCP(t, s, pairs)
	s.Spawn("verify", 0, func(p unix.Proc) {
		for i, pr := range pairs {
			src, err := ReadFile(p, pr[0])
			if err != nil {
				t.Errorf("read src: %v", err)
				return
			}
			dst, err := ReadFile(p, pr[1])
			if err != nil {
				t.Errorf("read dst: %v", err)
				return
			}
			if !bytes.Equal(src, dst) {
				t.Errorf("pair %d: contents differ", i)
			}
		}
	})
	s.Run()
}

func TestXCPSurvivesSyncAndReload(t *testing.T) {
	// The adopted pages must produce correct on-disk data.
	s := exos.Boot(exos.Config{})
	pairs := stageFiles(t, s, 2, 50_000)
	runXCP(t, s, pairs)
	evictAll(s)
	s.Spawn("verify", 0, func(p unix.Proc) {
		for _, pr := range pairs {
			src, _ := ReadFile(p, pr[0])
			dst, err := ReadFile(p, pr[1])
			if err != nil || !bytes.Equal(src, dst) {
				t.Errorf("%s: on-disk copy wrong (err=%v)", pr[1], err)
			}
		}
	})
	s.Run()
}

func TestXCPFactorThreeInCore(t *testing.T) {
	// Section 7.2: "XCP is a factor of three faster than ... CP ...
	// irrespective of whether all files are in core (because XCP does
	// not touch the data)". Stage once; both runs are warm.
	const n, size = 8, 400_000

	sX := exos.Boot(exos.Config{})
	pairsX := stageFiles(t, sX, n, size)
	warm(t, sX, pairsX) // fault everything in
	xcpTime := runXCP(t, sX, pairsX)

	sC := exos.Boot(exos.Config{})
	pairsC := stageFiles(t, sC, n, size)
	warm(t, sC, pairsC)
	cpTime := runCP(t, sC, pairsC)

	ratio := float64(cpTime) / float64(xcpTime)
	t.Logf("in-core: cp=%v xcp=%v ratio=%.2f", cpTime, xcpTime, ratio)
	if ratio < 2 {
		t.Errorf("XCP in-core speedup = %.2fx, want ~3x", ratio)
	}
}

func TestXCPFactorThreeOnDisk(t *testing.T) {
	// "...or on disk (because XCP issues disk schedules with a minimum
	// number of seeks and the largest contiguous ranges)".
	const n, size = 8, 400_000

	sX := exos.Boot(exos.Config{})
	pairsX := stageFiles(t, sX, n, size)
	evictAll(sX)
	xcpTime := runXCP(t, sX, pairsX)

	sC := exos.Boot(exos.Config{})
	pairsC := stageFiles(t, sC, n, size)
	evictAll(sC)
	cpTime := runCP(t, sC, pairsC)

	ratio := float64(cpTime) / float64(xcpTime)
	t.Logf("on-disk: cp=%v xcp=%v ratio=%.2f", cpTime, xcpTime, ratio)
	if ratio < 1.5 {
		t.Errorf("XCP on-disk speedup = %.2fx, want ~3x", ratio)
	}
}

// warm faults all source files into the cache.
func warm(t *testing.T, s *exos.System, pairs [][2]string) {
	t.Helper()
	s.Spawn("warm", 0, func(p unix.Proc) {
		for _, pr := range pairs {
			if _, err := ReadFile(p, pr[0]); err != nil {
				t.Errorf("warm: %v", err)
			}
		}
	})
	s.Run()
}
