package apps

import (
	"fmt"
	"sort"

	"xok/internal/cffs"
	"xok/internal/disk"
	"xok/internal/kernel"
	"xok/internal/sim"
	"xok/internal/udf"
)

// XCP is the "zero-touch" file copy program (Section 7.2): a
// specialized exokernel application that bypasses the UNIX interface
// and "exploits the low-level disk interface by removing artificial
// ordering constraints, by improving disk scheduling through large
// schedules, by eliminating data touching by the CPU, and by
// performing all disk operations asynchronously."
//
// Given a list of files it (1) enumerates and sorts the disk blocks of
// all files and issues large batched reads over the sorted schedule;
// (2) creates the new files, preallocating their blocks while the
// reads proceed through the driver queue; (3) binds the cached source
// pages to the destination blocks (AdoptPage) and writes them out —
// the data is DMAed into and out of the buffer cache without the CPU
// ever touching it.
func XCP(e *kernel.Env, fs *cffs.FS, pairs [][2]string) error {
	x := fs.X

	type job struct {
		srcRef, dstRef cffs.Ref
		size           int64
		srcBlocks      []disk.BlockNo
	}
	jobs := make([]job, 0, len(pairs))

	// Phase 1: enumerate every source block and build one sorted read
	// schedule for all files together.
	var schedule []disk.BlockNo
	for _, pr := range pairs {
		ref, in, err := fs.Lookup(e, pr[0])
		if err != nil {
			return fmt.Errorf("xcp: %s: %w", pr[0], err)
		}
		exts, err := fs.FileExtents(e, ref)
		if err != nil {
			return err
		}
		j := job{srcRef: ref, size: int64(in.Size)}
		need := (int64(in.Size) + sim.DiskBlockSize - 1) / sim.DiskBlockSize
		// Blocks within the direct extents are owned by the directory
		// block (embedded inode); the rest by the indirect block,
		// which FileExtents has just made resident.
		var direct int64
		for _, ext := range in.Ext {
			direct += int64(ext.Count)
		}
		for _, ext := range exts {
			for k := uint32(0); k < ext.Count && int64(len(j.srcBlocks)) < need; k++ {
				b := disk.BlockNo(ext.Start + uint64(k))
				owner := ref.Dir
				if int64(len(j.srcBlocks)) >= direct && in.Ind != 0 {
					owner = disk.BlockNo(in.Ind)
				}
				j.srcBlocks = append(j.srcBlocks, b)
				if !x.Cached(b) {
					if _, inReg := x.Lookup(b); !inReg {
						if err := x.Insert(e, owner, udf.Extent{
							Start: int64(b), Count: 1, Type: int64(fs.DataT),
						}); err != nil {
							return err
						}
					}
					schedule = append(schedule, b)
				}
			}
		}
		jobs = append(jobs, j)
	}
	sort.Slice(schedule, func(i, k int) bool { return schedule[i] < schedule[k] })

	// Phase 2: create and preallocate the destinations. (The driver is
	// still free to merge this metadata I/O with the read schedule.)
	if len(schedule) > 0 {
		if err := x.Read(e, schedule, nil); err != nil {
			return err
		}
	}
	for i, pr := range pairs {
		ref, err := fs.Create(e, pr[1], 0, 0, 6)
		if err != nil {
			return fmt.Errorf("xcp: create %s: %w", pr[1], err)
		}
		if err := fs.Preallocate(e, ref, jobs[i].size); err != nil {
			return err
		}
		jobs[i].dstRef = ref
	}

	// Phase 3: bind source pages to destination blocks and write the
	// whole batch — no CPU copies anywhere.
	var writes []disk.BlockNo
	for _, j := range jobs {
		dexts, err := fs.FileExtents(e, j.dstRef)
		if err != nil {
			return err
		}
		var dst []disk.BlockNo
		for _, ext := range dexts {
			for k := uint32(0); k < ext.Count; k++ {
				dst = append(dst, disk.BlockNo(ext.Start+uint64(k)))
			}
		}
		if len(dst) < len(j.srcBlocks) {
			return fmt.Errorf("xcp: preallocation short: %d < %d", len(dst), len(j.srcBlocks))
		}
		for k, sb := range j.srcBlocks {
			if err := x.AdoptPage(e, dst[k], sb); err != nil {
				return err
			}
			writes = append(writes, dst[k])
		}
	}
	sort.Slice(writes, func(i, k int) bool { return writes[i] < writes[k] })
	// Asynchronous: hand the sorted schedule to the driver and return
	// ("performing all disk operations asynchronously"). The data is
	// safely in the cache registry; any process may flush it.
	if err := x.Write(nil, writes); err != nil {
		return err
	}
	e.Syscall(sim.Time(20 * len(writes) / 16)) // batched write submission
	return nil
}
