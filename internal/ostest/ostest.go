// Package ostest provides OS-personality conformance checks and
// microbenchmark drivers shared by the ExOS and BSD test suites and by
// the paper-reproduction benches (Table 2, Section 7.1). Both
// personalities must behave identically at the unix.Proc level — only
// their costs differ.
package ostest

import (
	"bytes"
	"fmt"
	"strings"

	"xok/internal/sim"
	"xok/internal/unix"
)

// RunFunc executes main inside a fresh process (uid 0) on the system
// under test and drains the machine before returning.
type RunFunc func(main func(unix.Proc))

// CheckFileOps exercises the POSIX surface end to end on the named
// personality; it returns an error describing the first misbehavior,
// prefixed with the personality name and carrying the full call
// transcript up to the failure, so a conformance failure is
// diagnosable without a debugger.
func CheckFileOps(name string, run RunFunc) error {
	var failure error
	var transcript []string
	call := func(format string, args ...any) {
		transcript = append(transcript, fmt.Sprintf(format, args...))
	}
	fail := func(format string, args ...any) {
		if failure == nil {
			failure = fmt.Errorf("%s: %s\ncall transcript (last call failed):\n  %s",
				name, fmt.Sprintf(format, args...), strings.Join(transcript, "\n  "))
		}
	}
	run(func(p unix.Proc) {
		call("mkdir(/dir, 7)")
		if err := p.Mkdir("/dir", 7); err != nil {
			fail("mkdir: %v", err)
			return
		}
		call("create(/dir/file, 6)")
		fd, err := p.Create("/dir/file", 6)
		if err != nil {
			fail("create: %v", err)
			return
		}
		payload := bytes.Repeat([]byte("abcdefgh"), 1000) // 8 KB
		call("write(fd, %d bytes)", len(payload))
		if n, err := p.Write(fd, payload); err != nil || n != len(payload) {
			fail("write = %d, %v", n, err)
			return
		}
		call("seek(fd, 0, SET)")
		if _, err := p.Seek(fd, 0, unix.SeekSet); err != nil {
			fail("seek: %v", err)
			return
		}
		buf := make([]byte, len(payload))
		call("read(fd, %d bytes)", len(buf))
		if n, err := p.Read(fd, buf); err != nil || n != len(payload) {
			fail("read = %d, %v", n, err)
			return
		}
		if !bytes.Equal(buf, payload) {
			fail("read data mismatch")
			return
		}
		// Sequential read hits EOF.
		call("read(fd) at EOF")
		if n, err := p.Read(fd, buf); err != nil || n != 0 {
			fail("read at EOF = %d, %v", n, err)
			return
		}
		call("seek(fd, -1, SET)")
		if _, err := p.Seek(fd, -1, unix.SeekSet); err == nil {
			fail("seek to negative offset succeeded")
			return
		}
		call("close(fd)")
		if err := p.Close(fd); err != nil {
			fail("close: %v", err)
			return
		}
		call("stat(/dir/file)")
		st, err := p.Stat("/dir/file")
		if err != nil || st.Size != int64(len(payload)) {
			fail("stat = %+v, %v", st, err)
			return
		}
		call("chmod(/dir/file, 4)")
		if err := p.Chmod("/dir/file", 4); err != nil {
			fail("chmod: %v", err)
			return
		}
		call("stat(/dir/file) after chmod")
		if st, err := p.Stat("/dir/file"); err != nil || st.Mode != 4 {
			fail("stat after chmod = %+v, %v", st, err)
			return
		}
		call("symlink(/dir/file, /dir/link)")
		if err := p.Symlink("/dir/file", "/dir/link"); err != nil {
			fail("symlink: %v", err)
			return
		}
		call("stat(/dir/link)")
		if st, err := p.Stat("/dir/link"); err != nil || st.Size != int64(len(payload)) {
			fail("stat through link = %+v, %v", st, err)
			return
		}
		call("open(/dir/link)")
		lfd, err := p.Open("/dir/link")
		if err != nil {
			fail("open through link: %v", err)
			return
		}
		small := make([]byte, 8)
		call("read(lfd, 8 bytes)")
		if n, err := p.Read(lfd, small); err != nil || n != 8 || !bytes.Equal(small, payload[:8]) {
			fail("read through link = %d, %v", n, err)
			return
		}
		call("close(lfd)")
		if err := p.Close(lfd); err != nil {
			fail("close link fd: %v", err)
			return
		}
		call("unlink(/dir/link)")
		if err := p.Unlink("/dir/link"); err != nil {
			fail("unlink link: %v", err)
			return
		}
		call("stat(/dir/file) after link removal")
		if _, err := p.Stat("/dir/file"); err != nil {
			fail("unlinking the link removed the target: %v", err)
			return
		}
		call("readdir(/dir)")
		ents, err := p.Readdir("/dir")
		if err != nil || len(ents) != 1 || ents[0].Name != "file" {
			fail("readdir = %v, %v", ents, err)
			return
		}
		call("rename(/dir/file, /dir/renamed)")
		if err := p.Rename("/dir/file", "/dir/renamed"); err != nil {
			fail("rename: %v", err)
			return
		}
		call("open(/dir/file) after rename")
		if _, err := p.Open("/dir/file"); err == nil {
			fail("old name still opens")
			return
		}
		call("unlink(/dir/renamed)")
		if err := p.Unlink("/dir/renamed"); err != nil {
			fail("unlink: %v", err)
			return
		}
		call("rmdir(/dir)")
		if err := p.Rmdir("/dir"); err != nil {
			fail("rmdir: %v", err)
			return
		}
		call("sync()")
		if err := p.Sync(); err != nil {
			fail("sync: %v", err)
			return
		}
		call("getpid()")
		if p.Getpid() <= 0 {
			fail("getpid = %d", p.Getpid())
		}
	})
	return failure
}

// CheckPipe verifies parent/child pipe plumbing: data integrity, EOF
// on writer close, and descriptor inheritance across Spawn.
func CheckPipe(run RunFunc) error {
	var failure error
	fail := func(format string, args ...any) {
		if failure == nil {
			failure = fmt.Errorf(format, args...)
		}
	}
	run(func(p unix.Proc) {
		r, w, err := p.Pipe()
		if err != nil {
			fail("pipe: %v", err)
			return
		}
		const total = 40000 // > pipe capacity: forces blocking both ways
		child, err := p.Spawn("writer", func(c unix.Proc) {
			chunk := bytes.Repeat([]byte{0xAA}, 1000)
			for i := 0; i < total/len(chunk); i++ {
				if _, err := c.Write(w, chunk); err != nil {
					fail("child write: %v", err)
					return
				}
			}
			if err := c.Close(w); err != nil {
				fail("child close: %v", err)
			}
		})
		if err != nil {
			fail("spawn: %v", err)
			return
		}
		// Parent must close its copy of the write end for EOF.
		if err := p.Close(w); err != nil {
			fail("parent close w: %v", err)
			return
		}
		got := 0
		buf := make([]byte, 3000)
		for {
			n, err := p.Read(r, buf)
			if err != nil {
				fail("parent read: %v", err)
				return
			}
			if n == 0 {
				break
			}
			for i := 0; i < n; i++ {
				if buf[i] != 0xAA {
					fail("corrupt pipe byte")
					return
				}
			}
			got += n
		}
		if got != total {
			fail("pipe moved %d bytes, want %d", got, total)
		}
		child.Wait()
	})
	return failure
}

// Close-semantics note: parent and child share the open-file object,
// so the child's close alone does not signal EOF — exactly UNIX.

// GetpidCost measures the marginal cost of one getpid call.
func GetpidCost(run RunFunc) sim.Time {
	const n = 2000
	var per sim.Time
	run(func(p unix.Proc) {
		p.Getpid() // warm
		start := p.Now()
		for i := 0; i < n; i++ {
			p.Getpid()
		}
		per = (p.Now() - start) / n
	})
	return per
}

// PipeLatency measures the one-way transfer latency for size-byte
// messages, via the classic two-pipe ping-pong between a parent and a
// child (Table 2 methodology).
func PipeLatency(run RunFunc, size, rounds int) sim.Time {
	var per sim.Time
	run(func(p unix.Proc) {
		r1, w1, err := p.Pipe() // parent -> child
		if err != nil {
			return
		}
		r2, w2, err := p.Pipe() // child -> parent
		if err != nil {
			return
		}
		child, err := p.Spawn("ponger", func(c unix.Proc) {
			buf := make([]byte, size)
			for i := 0; i < rounds; i++ {
				if readFull(c, r1, buf) != size {
					return
				}
				if n, err := c.Write(w2, buf); err != nil || n != size {
					return
				}
			}
		})
		if err != nil {
			return
		}
		buf := make([]byte, size)
		start := p.Now()
		for i := 0; i < rounds; i++ {
			if n, err := p.Write(w1, buf); err != nil || n != size {
				return
			}
			if readFull(p, r2, buf) != size {
				return
			}
		}
		elapsed := p.Now() - start
		per = elapsed / sim.Time(2*rounds)
		child.Wait()
	})
	return per
}

func readFull(p unix.Proc, fd unix.FD, buf []byte) int {
	got := 0
	for got < len(buf) {
		n, err := p.Read(fd, buf[got:])
		if err != nil || n == 0 {
			break
		}
		got += n
	}
	return got
}

// ForkCost measures one Spawn+Wait of a trivial child.
func ForkCost(run RunFunc) sim.Time {
	var cost sim.Time
	run(func(p unix.Proc) {
		start := p.Now()
		h, err := p.Spawn("noop", func(c unix.Proc) {})
		if err != nil {
			return
		}
		h.Wait()
		cost = p.Now() - start
	})
	return cost
}
