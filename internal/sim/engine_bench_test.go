package sim

import "testing"

// benchSteadyState drives the engine in its dominant pattern: a pool of
// pending events where every dispatch schedules a successor. One Step
// per b.N iteration — allocs/op is the number the fast path is judged
// on (the seed engine paid a heap allocation per scheduled event).
func benchSteadyState(b *testing.B, pending int, useArg bool) {
	e := NewEngine()
	var tick func()
	tickArg := func(any) {}
	i := 0
	tick = func() {
		i++
		d := Time(i%97 + 1)
		if useArg {
			e.AfterArg(d, tickArg, nil)
		} else {
			e.After(d, tick)
		}
	}
	if useArg {
		// Self-rescheduling through the arg path.
		tickArg = func(a any) {
			i++
			e.AfterArg(Time(i%97+1), tickArg, nil)
		}
		for j := 0; j < pending; j++ {
			e.AfterArg(Time(j), tickArg, nil)
		}
	} else {
		for j := 0; j < pending; j++ {
			e.After(Time(j), tick)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for n := 0; n < b.N; n++ {
		e.Step()
	}
}

func BenchmarkEngineStepAfter16(b *testing.B)      { benchSteadyState(b, 16, false) }
func BenchmarkEngineStepAfter1024(b *testing.B)    { benchSteadyState(b, 1024, false) }
func BenchmarkEngineStepAfterArg16(b *testing.B)   { benchSteadyState(b, 16, true) }
func BenchmarkEngineStepAfterArg1024(b *testing.B) { benchSteadyState(b, 1024, true) }

// BenchmarkEngineScheduleCancel measures the timer-rearm pattern
// (netsim RTO, kernel sleep timeouts): schedule then cancel before
// firing, so nodes cycle through the free list without dispatching.
func BenchmarkEngineScheduleCancel(b *testing.B) {
	e := NewEngine()
	fn := func() {}
	// Keep a baseline event so the heap never empties.
	e.At(1<<60, func() {})
	b.ReportAllocs()
	b.ResetTimer()
	for n := 0; n < b.N; n++ {
		ev := e.After(Time(n%1000+1), fn)
		e.Cancel(ev)
	}
}
