package sim

import "testing"

// benchSteadyState drives the engine in its dominant pattern: a pool of
// pending events where every dispatch schedules a successor. One Step
// per b.N iteration — allocs/op is the number the fast path is judged
// on (the seed engine paid a heap allocation per scheduled event).
func benchSteadyState(b *testing.B, pending int, useArg bool) {
	e := NewEngine()
	var tick func()
	tickArg := func(any) {}
	i := 0
	tick = func() {
		i++
		d := Time(i%97 + 1)
		if useArg {
			e.AfterArg(d, tickArg, nil)
		} else {
			e.After(d, tick)
		}
	}
	if useArg {
		// Self-rescheduling through the arg path.
		tickArg = func(a any) {
			i++
			e.AfterArg(Time(i%97+1), tickArg, nil)
		}
		for j := 0; j < pending; j++ {
			e.AfterArg(Time(j), tickArg, nil)
		}
	} else {
		for j := 0; j < pending; j++ {
			e.After(Time(j), tick)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for n := 0; n < b.N; n++ {
		e.Step()
	}
}

func BenchmarkEngineStepAfter16(b *testing.B)      { benchSteadyState(b, 16, false) }
func BenchmarkEngineStepAfter1024(b *testing.B)    { benchSteadyState(b, 1024, false) }
func BenchmarkEngineStepAfterArg16(b *testing.B)   { benchSteadyState(b, 16, true) }
func BenchmarkEngineStepAfterArg1024(b *testing.B) { benchSteadyState(b, 1024, true) }

// BenchmarkEngineScheduleCancel measures the timer-rearm pattern
// (netsim RTO, kernel sleep timeouts): schedule then cancel before
// firing, so nodes cycle through the free list without dispatching.
func BenchmarkEngineScheduleCancel(b *testing.B) {
	e := NewEngine()
	fn := func() {}
	// Keep a baseline event so the heap never empties.
	e.At(1<<60, func() {})
	b.ReportAllocs()
	b.ResetTimer()
	for n := 0; n < b.N; n++ {
		ev := e.After(Time(n%1000+1), fn)
		e.Cancel(ev)
	}
}

// benchFarTimers drives the bulk-timer regime the wheel exists for: a
// large standing population of far-future timers (the 60ms RTO
// pattern at cluster scale), each dispatch re-arming one full window
// ahead. On the pure heap every operation pays O(log pending); on the
// wheel the standing population sits in buckets and the heap holds
// only the near-term flush window, so per-event cost stays flat as
// pending grows — the Heap/Wheel benchmark pairs at 65536 and 1M
// pending make the crossover visible in BENCH_sim.json
// (wheel_speedups).
func benchFarTimers(b *testing.B, pending int, wheelOn bool) {
	const window = 12_000_000 // 60ms at 200MHz, the legacy RTO floor
	e := NewEngine()
	e.SetWheel(wheelOn)
	i := 0
	var tick func(any)
	tick = func(any) {
		i++
		// Full window ahead with deterministic jitter, so slots churn
		// rather than stacking one bucket.
		e.AfterArg(Time(window+i*2654435761%9973), tick, nil)
	}
	// Spread the standing population uniformly over one window.
	step := window / Time(pending)
	if step == 0 {
		step = 1
	}
	for j := 0; j < pending; j++ {
		e.AtArg(Time(j)*step, tick, nil)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for n := 0; n < b.N; n++ {
		e.Step()
	}
	b.StopTimer()
	if e.Pending() < pending {
		b.Fatalf("standing population collapsed: %d < %d", e.Pending(), pending)
	}
}

func BenchmarkEngineTimersHeap65536(b *testing.B)  { benchFarTimers(b, 65536, false) }
func BenchmarkEngineTimersWheel65536(b *testing.B) { benchFarTimers(b, 65536, true) }
func BenchmarkEngineTimersHeap1M(b *testing.B)     { benchFarTimers(b, 1_000_000, false) }
func BenchmarkEngineTimersWheel1M(b *testing.B)    { benchFarTimers(b, 1_000_000, true) }

// BenchmarkEngineScheduleCancelWheel is the far-timer re-arm pattern:
// schedule an RTO-distance event, then cancel it before it fires (the
// dominant path when transfers complete without loss). O(1) bucket
// unlink vs the heap's O(log n) remove — and pinned at 0 allocs/op by
// TestWheelScheduleCancelAllocFree.
func BenchmarkEngineScheduleCancelWheel(b *testing.B) {
	e := NewEngine()
	fn := func(any) {}
	e.At(1<<60, func() {})
	// Standing far population so the cancel path works against
	// realistically occupied buckets.
	for j := 0; j < 1024; j++ {
		e.AfterArg(Time(12_000_000+j*9973), fn, nil)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for n := 0; n < b.N; n++ {
		ev := e.AfterArg(Time(12_000_000+n%9973), fn, nil)
		e.Cancel(ev)
	}
}
