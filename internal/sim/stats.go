package sim

import (
	"fmt"
	"sort"
	"strings"
)

// Stats is a named-counter registry used for the paper's accounting
// results — e.g. Section 6.3 reports that removing XN and the
// shared-state protection calls cuts Xok system calls from 300,000 to
// 81,000 on the I/O-intensive workload. Counters are plain int64s keyed
// by string; the simulation increments them on traps, faults, disk ops,
// packets, and so on.
type Stats struct {
	counters map[string]int64
}

// NewStats returns an empty registry.
func NewStats() *Stats { return &Stats{counters: make(map[string]int64)} }

// Add increments counter name by n.
func (s *Stats) Add(name string, n int64) {
	if s == nil {
		return
	}
	s.counters[name] += n
}

// Inc increments counter name by one.
func (s *Stats) Inc(name string) { s.Add(name, 1) }

// Get returns counter name (zero if never touched).
func (s *Stats) Get(name string) int64 {
	if s == nil {
		return 0
	}
	return s.counters[name]
}

// Names returns all counter names in sorted order.
func (s *Stats) Names() []string {
	names := make([]string, 0, len(s.counters))
	for k := range s.counters {
		names = append(names, k)
	}
	sort.Strings(names)
	return names
}

// Reset zeroes every counter.
func (s *Stats) Reset() {
	for k := range s.counters {
		delete(s.counters, k)
	}
}

// String renders the registry as "name=value" lines, sorted by name.
func (s *Stats) String() string {
	var b strings.Builder
	for _, name := range s.Names() {
		fmt.Fprintf(&b, "%s=%d\n", name, s.counters[name])
	}
	return b.String()
}

// Well-known counter names used across the simulation.
const (
	CtrSyscalls      = "syscalls"       // kernel crossings
	CtrLibCalls      = "libcalls"       // libOS procedure calls
	CtrCtxSwitches   = "ctx_switches"   // address-space switches
	CtrDiskReads     = "disk_reads"     // block reads issued
	CtrDiskWrites    = "disk_writes"    // block writes issued
	CtrDiskSeeks     = "disk_seeks"     // non-sequential head moves
	CtrSyncWrites    = "sync_writes"    // synchronous metadata writes
	CtrPageFaults    = "page_faults"    // all faults
	CtrCOWFaults     = "cow_faults"     // copy-on-write faults
	CtrPacketsTx     = "packets_tx"     // frames transmitted
	CtrPacketsRx     = "packets_rx"     // frames received
	CtrBytesCopied   = "bytes_copied"   // CPU copy traffic
	CtrUDFSteps      = "udf_steps"      // UDF instructions interpreted
	CtrPredEvals     = "pred_evals"     // wakeup-predicate evaluations
	CtrCacheHits     = "cache_hits"     // buffer cache hits
	CtrCacheMisses   = "cache_misses"   // buffer cache misses
	CtrProtCalls     = "prot_calls"     // shared-state protection calls
	CtrForks         = "forks"          // process creations
	CtrChecksums     = "checksum_bytes" // bytes checksummed by CPU
	CtrRetransmits   = "retransmits"    // TCP retransmissions
	CtrUpcalls       = "upcalls"        // kernel->env upcalls
	CtrEngineEvents  = "engine_events"  // event-queue dispatches (EventsDispatched delta)
	CtrRegistryOps   = "registry_ops"   // buffer-registry operations
	CtrTaintedBlocks = "tainted_blocks" // blocks ever marked tainted
)
