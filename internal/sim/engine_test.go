package sim

import (
	"sort"
	"testing"
)

func TestEngineOrdering(t *testing.T) {
	e := NewEngine()
	var order []int
	e.At(300, func() { order = append(order, 3) })
	e.At(100, func() { order = append(order, 1) })
	e.At(200, func() { order = append(order, 2) })
	e.Run()
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("events ran out of order: %v", order)
	}
	if e.Now() != 300 {
		t.Fatalf("clock = %d, want 300", e.Now())
	}
}

func TestEngineSimultaneousFIFO(t *testing.T) {
	e := NewEngine()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		e.At(50, func() { order = append(order, i) })
	}
	e.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("simultaneous events not FIFO: %v", order)
		}
	}
}

func TestEngineCancel(t *testing.T) {
	e := NewEngine()
	fired := false
	ev := e.At(10, func() { fired = true })
	e.Cancel(ev)
	e.Run()
	if fired {
		t.Fatal("cancelled event fired")
	}
	// Double-cancel and cancel-after-run must be no-ops.
	e.Cancel(ev)
	ev2 := e.At(20, func() {})
	e.Run()
	e.Cancel(ev2)
}

func TestEngineNestedScheduling(t *testing.T) {
	e := NewEngine()
	count := 0
	var rec func()
	rec = func() {
		count++
		if count < 5 {
			e.After(10, rec)
		}
	}
	e.After(10, rec)
	e.Run()
	if count != 5 {
		t.Fatalf("count = %d, want 5", count)
	}
	if e.Now() != 50 {
		t.Fatalf("clock = %d, want 50", e.Now())
	}
}

func TestEnginePastSchedulingClamped(t *testing.T) {
	e := NewEngine()
	e.At(100, func() {})
	e.Run()
	fired := false
	e.At(50, func() { fired = true }) // in the past; must clamp to now
	e.Run()
	if !fired {
		t.Fatal("past-scheduled event did not fire")
	}
	if e.Now() != 100 {
		t.Fatalf("clock moved backwards: %d", e.Now())
	}
}

func TestEngineRunUntil(t *testing.T) {
	e := NewEngine()
	var fired []Time
	for _, at := range []Time{10, 20, 30, 40} {
		at := at
		e.At(at, func() { fired = append(fired, at) })
	}
	e.RunUntil(25)
	if len(fired) != 2 {
		t.Fatalf("fired %v, want events at 10,20", fired)
	}
	if e.Now() != 25 {
		t.Fatalf("clock = %d, want 25", e.Now())
	}
	e.Run()
	if len(fired) != 4 {
		t.Fatalf("remaining events lost: %v", fired)
	}
}

func TestEngineAdvancePanicsOverEvent(t *testing.T) {
	e := NewEngine()
	e.At(100, func() {})
	defer func() {
		if recover() == nil {
			t.Fatal("Advance over a pending event did not panic")
		}
	}()
	e.Advance(200)
}

func TestEngineAdvance(t *testing.T) {
	e := NewEngine()
	e.Advance(123)
	if e.Now() != 123 {
		t.Fatalf("clock = %d, want 123", e.Now())
	}
}

func TestEngineCancelSiblingFromCallback(t *testing.T) {
	// Two events scheduled for the same instant: the first one's
	// callback cancels the second while the engine is mid-dispatch at
	// that instant. The sibling must not fire, and cancelling the event
	// that is itself firing (already popped, index -1) must be safe.
	e := NewEngine()
	var aFired, bFired bool
	var evA, evB Event
	evA = e.At(10, func() {
		aFired = true
		e.Cancel(evB) // sibling at the same instant, still in the heap
		e.Cancel(evA) // self: already popped; must be a no-op
	})
	evB = e.At(10, func() { bFired = true })
	e.Run()
	if !aFired {
		t.Fatal("first event did not fire")
	}
	if bFired {
		t.Fatal("cancelled same-instant sibling fired anyway")
	}
	if e.Pending() != 0 {
		t.Fatalf("pending = %d after run", e.Pending())
	}
}

func TestEngineCancelSiblingUnderRunUntil(t *testing.T) {
	// Same scenario through the RunUntil dispatch path.
	e := NewEngine()
	var evB Event
	bFired := false
	e.At(10, func() { e.Cancel(evB) })
	evB = e.At(10, func() { bFired = true })
	e.RunUntil(10)
	if bFired {
		t.Fatal("cancelled sibling fired under RunUntil")
	}
	if e.Now() != 10 {
		t.Fatalf("clock = %d, want 10", e.Now())
	}
}

func TestEngineEventHook(t *testing.T) {
	e := NewEngine()
	var hooked []Time
	e.SetEventHook(func(at Time) {
		hooked = append(hooked, at)
		if e.Now() != at {
			t.Fatalf("hook at %d but clock is %d", at, e.Now())
		}
	})
	e.At(10, func() {})
	ev := e.At(20, func() {})
	e.At(30, func() {})
	e.Cancel(ev) // cancelled events must not reach the hook
	e.Run()
	if len(hooked) != 2 || hooked[0] != 10 || hooked[1] != 30 {
		t.Fatalf("hook saw %v, want [10 30]", hooked)
	}
	e.SetEventHook(nil) // disabling must not break dispatch
	e.At(40, func() {})
	e.Run()
	if len(hooked) != 2 {
		t.Fatal("hook fired after being cleared")
	}
}

func TestEnginePending(t *testing.T) {
	e := NewEngine()
	a := e.At(10, func() {})
	e.At(20, func() {})
	if e.Pending() != 2 {
		t.Fatalf("pending = %d, want 2", e.Pending())
	}
	e.Cancel(a)
	if e.Pending() != 1 {
		t.Fatalf("pending = %d, want 1 after cancel", e.Pending())
	}
}

func TestEngineEventPoolReuse(t *testing.T) {
	// After an event fires, its node returns to the free list; the next
	// schedule must reuse it with a bumped generation, and the stale
	// handle must read as not-pending.
	e := NewEngine()
	ev1 := e.At(10, func() {})
	n1 := ev1.n
	e.Run()
	if ev1.Pending() {
		t.Fatal("fired event still reports Pending")
	}
	ev2 := e.At(20, func() {})
	if ev2.n != n1 {
		t.Fatal("node was not recycled from the free list")
	}
	if ev2.gen == ev1.gen {
		t.Fatal("recycled node kept the same generation")
	}
	if !ev2.Pending() {
		t.Fatal("fresh event on recycled node not pending")
	}
}

func TestEngineStaleCancelIsNoOp(t *testing.T) {
	// A handle kept past its event's firing must not be able to cancel
	// the unrelated event that later reuses the slot.
	e := NewEngine()
	ev1 := e.At(10, func() {})
	e.Run()
	fired := false
	ev2 := e.At(20, func() { fired = true })
	if ev2.n != ev1.n {
		t.Fatal("test premise broken: slot not reused")
	}
	e.Cancel(ev1) // stale: generation mismatch, must not touch ev2
	e.Run()
	if !fired {
		t.Fatal("stale Cancel killed a recycled event")
	}
}

func TestEngineCancelThenFireReuse(t *testing.T) {
	// Cancel returns the node to the pool; the next schedule reuses it
	// and must fire normally. A second Cancel through the stale handle
	// must stay a no-op.
	e := NewEngine()
	ev1 := e.At(10, func() { t.Fatal("cancelled event fired") })
	e.Cancel(ev1)
	fired := false
	ev2 := e.At(15, func() { fired = true })
	if ev2.n != ev1.n {
		t.Fatal("cancelled node was not recycled")
	}
	e.Cancel(ev1) // stale
	e.Run()
	if !fired {
		t.Fatal("event on recycled node did not fire")
	}
	if e.Now() != 15 {
		t.Fatalf("clock = %d, want 15", e.Now())
	}
}

func TestEngineFIFOAfterChurn(t *testing.T) {
	// Heavy mixed-time scheduling with interleaved cancels: dispatch
	// order must equal the (at, seq) sort of the surviving events.
	e := NewEngine()
	type rec struct {
		at  Time
		seq int
	}
	var want []rec
	var got []rec
	seq := 0
	sched := func(at Time) Event {
		s := seq
		seq++
		want = append(want, rec{at, s})
		return e.At(at, func() { got = append(got, rec{at, s}) })
	}
	r := NewRNG(42)
	var cancelled []int
	var handles []Event
	for i := 0; i < 500; i++ {
		at := Time(r.Intn(50)) // many collisions
		handles = append(handles, sched(at))
		if i%7 == 3 {
			// Cancel a random earlier survivor.
			j := r.Intn(len(handles))
			if handles[j].Pending() {
				e.Cancel(handles[j])
				cancelled = append(cancelled, j)
			}
		}
	}
	dead := make(map[int]bool)
	for _, j := range cancelled {
		dead[j] = true
	}
	var wantLive []rec
	for i, w := range want {
		if !dead[i] {
			wantLive = append(wantLive, w)
		}
	}
	sort.SliceStable(wantLive, func(i, j int) bool {
		if wantLive[i].at != wantLive[j].at {
			return wantLive[i].at < wantLive[j].at
		}
		return wantLive[i].seq < wantLive[j].seq
	})
	e.Run()
	if len(got) != len(wantLive) {
		t.Fatalf("fired %d events, want %d", len(got), len(wantLive))
	}
	for i := range got {
		if got[i] != wantLive[i] {
			t.Fatalf("dispatch[%d] = %+v, want %+v", i, got[i], wantLive[i])
		}
	}
}

func TestEngineAdvanceToExactBoundary(t *testing.T) {
	// An event scheduled exactly at the Advance target is NOT inside
	// the window (the window is half-open); Advance must succeed and
	// the event must still fire, at its own timestamp.
	e := NewEngine()
	fired := false
	e.At(100, func() { fired = true })
	e.Advance(100)
	if e.Now() != 100 {
		t.Fatalf("clock = %d, want 100", e.Now())
	}
	if fired {
		t.Fatal("Advance ran an event")
	}
	e.Run()
	if !fired {
		t.Fatal("boundary event lost")
	}
}

func TestEngineAfterArg(t *testing.T) {
	e := NewEngine()
	type box struct{ hits int }
	bx := &box{}
	bump := func(a any) { a.(*box).hits++ }
	ev := e.AfterArg(10, bump, bx)
	if !ev.Pending() {
		t.Fatal("AfterArg event not pending")
	}
	e.AfterArg(20, bump, bx)
	e.Run()
	if bx.hits != 2 {
		t.Fatalf("hits = %d, want 2", bx.hits)
	}
	// Cancel path.
	ev3 := e.AfterArg(30, bump, bx)
	e.Cancel(ev3)
	e.Run()
	if bx.hits != 2 {
		t.Fatal("cancelled AfterArg event fired")
	}
}

func TestEngineAfterArgAllocFree(t *testing.T) {
	// The common timer pattern — one long-lived callback, the receiver
	// through arg — must not allocate in steady state: nodes come from
	// the pool and no closure is created.
	e := NewEngine()
	type box struct{ hits int }
	bx := &box{}
	bump := func(a any) { a.(*box).hits++ }
	// Warm up: grow the heap slice and the pool.
	for i := 0; i < 64; i++ {
		e.AfterArg(Time(i), bump, bx)
	}
	e.Run()
	allocs := testing.AllocsPerRun(1000, func() {
		e.AfterArg(5, bump, bx)
		e.Step()
	})
	if allocs != 0 {
		t.Fatalf("steady-state AfterArg+Step allocates %.1f/op, want 0", allocs)
	}
}

func TestEngineHandleZeroValue(t *testing.T) {
	e := NewEngine()
	var ev Event
	if ev.Pending() {
		t.Fatal("zero Event pending")
	}
	if ev.At() != 0 {
		t.Fatal("zero Event has a timestamp")
	}
	e.Cancel(ev) // must not panic
}
