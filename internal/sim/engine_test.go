package sim

import "testing"

func TestEngineOrdering(t *testing.T) {
	e := NewEngine()
	var order []int
	e.At(300, func() { order = append(order, 3) })
	e.At(100, func() { order = append(order, 1) })
	e.At(200, func() { order = append(order, 2) })
	e.Run()
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("events ran out of order: %v", order)
	}
	if e.Now() != 300 {
		t.Fatalf("clock = %d, want 300", e.Now())
	}
}

func TestEngineSimultaneousFIFO(t *testing.T) {
	e := NewEngine()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		e.At(50, func() { order = append(order, i) })
	}
	e.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("simultaneous events not FIFO: %v", order)
		}
	}
}

func TestEngineCancel(t *testing.T) {
	e := NewEngine()
	fired := false
	ev := e.At(10, func() { fired = true })
	e.Cancel(ev)
	e.Run()
	if fired {
		t.Fatal("cancelled event fired")
	}
	// Double-cancel and cancel-after-run must be no-ops.
	e.Cancel(ev)
	ev2 := e.At(20, func() {})
	e.Run()
	e.Cancel(ev2)
}

func TestEngineNestedScheduling(t *testing.T) {
	e := NewEngine()
	count := 0
	var rec func()
	rec = func() {
		count++
		if count < 5 {
			e.After(10, rec)
		}
	}
	e.After(10, rec)
	e.Run()
	if count != 5 {
		t.Fatalf("count = %d, want 5", count)
	}
	if e.Now() != 50 {
		t.Fatalf("clock = %d, want 50", e.Now())
	}
}

func TestEnginePastSchedulingClamped(t *testing.T) {
	e := NewEngine()
	e.At(100, func() {})
	e.Run()
	fired := false
	e.At(50, func() { fired = true }) // in the past; must clamp to now
	e.Run()
	if !fired {
		t.Fatal("past-scheduled event did not fire")
	}
	if e.Now() != 100 {
		t.Fatalf("clock moved backwards: %d", e.Now())
	}
}

func TestEngineRunUntil(t *testing.T) {
	e := NewEngine()
	var fired []Time
	for _, at := range []Time{10, 20, 30, 40} {
		at := at
		e.At(at, func() { fired = append(fired, at) })
	}
	e.RunUntil(25)
	if len(fired) != 2 {
		t.Fatalf("fired %v, want events at 10,20", fired)
	}
	if e.Now() != 25 {
		t.Fatalf("clock = %d, want 25", e.Now())
	}
	e.Run()
	if len(fired) != 4 {
		t.Fatalf("remaining events lost: %v", fired)
	}
}

func TestEngineAdvancePanicsOverEvent(t *testing.T) {
	e := NewEngine()
	e.At(100, func() {})
	defer func() {
		if recover() == nil {
			t.Fatal("Advance over a pending event did not panic")
		}
	}()
	e.Advance(200)
}

func TestEngineAdvance(t *testing.T) {
	e := NewEngine()
	e.Advance(123)
	if e.Now() != 123 {
		t.Fatalf("clock = %d, want 123", e.Now())
	}
}

func TestEngineCancelSiblingFromCallback(t *testing.T) {
	// Two events scheduled for the same instant: the first one's
	// callback cancels the second while the engine is mid-dispatch at
	// that instant. The sibling must not fire, and cancelling the event
	// that is itself firing (already popped, index -1) must be safe.
	e := NewEngine()
	var aFired, bFired bool
	var evA, evB *Event
	evA = e.At(10, func() {
		aFired = true
		e.Cancel(evB) // sibling at the same instant, still in the heap
		e.Cancel(evA) // self: already popped; must be a no-op
	})
	evB = e.At(10, func() { bFired = true })
	e.Run()
	if !aFired {
		t.Fatal("first event did not fire")
	}
	if bFired {
		t.Fatal("cancelled same-instant sibling fired anyway")
	}
	if e.Pending() != 0 {
		t.Fatalf("pending = %d after run", e.Pending())
	}
}

func TestEngineCancelSiblingUnderRunUntil(t *testing.T) {
	// Same scenario through the RunUntil dispatch path.
	e := NewEngine()
	var evB *Event
	bFired := false
	e.At(10, func() { e.Cancel(evB) })
	evB = e.At(10, func() { bFired = true })
	e.RunUntil(10)
	if bFired {
		t.Fatal("cancelled sibling fired under RunUntil")
	}
	if e.Now() != 10 {
		t.Fatalf("clock = %d, want 10", e.Now())
	}
}

func TestEngineEventHook(t *testing.T) {
	e := NewEngine()
	var hooked []Time
	e.SetEventHook(func(at Time) {
		hooked = append(hooked, at)
		if e.Now() != at {
			t.Fatalf("hook at %d but clock is %d", at, e.Now())
		}
	})
	e.At(10, func() {})
	ev := e.At(20, func() {})
	e.At(30, func() {})
	e.Cancel(ev) // cancelled events must not reach the hook
	e.Run()
	if len(hooked) != 2 || hooked[0] != 10 || hooked[1] != 30 {
		t.Fatalf("hook saw %v, want [10 30]", hooked)
	}
	e.SetEventHook(nil) // disabling must not break dispatch
	e.At(40, func() {})
	e.Run()
	if len(hooked) != 2 {
		t.Fatal("hook fired after being cleared")
	}
}

func TestEnginePending(t *testing.T) {
	e := NewEngine()
	a := e.At(10, func() {})
	e.At(20, func() {})
	if e.Pending() != 2 {
		t.Fatalf("pending = %d, want 2", e.Pending())
	}
	e.Cancel(a)
	if e.Pending() != 1 {
		t.Fatalf("pending = %d, want 1 after cancel", e.Pending())
	}
}
