package sim

import (
	"sync"
	"testing"
)

// goSpawn is the test fan-out: one goroutine per island.
func goSpawn(n int, run func(i int)) {
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			run(i)
		}(i)
	}
	wg.Wait()
}

// TestIslandNullMessageStarvation: an island whose only neighbor is
// completely quiet (no events, never sends) must still advance past it
// on lookahead promises alone — the null-message path, exercised here
// across many lookahead windows.
func TestIslandNullMessageStarvation(t *testing.T) {
	const lookahead = 100
	const eventAt = 10_000 // 100 lookahead windows past the quiet island
	busy := NewIsland(0, NewEngine())
	quiet := NewIsland(1, NewEngine())
	// Both directions wired: busy's execution is gated on quiet's
	// promises, and vice versa.
	Connect(quiet, busy, lookahead)
	Connect(busy, quiet, lookahead)

	fired := Time(0)
	busy.eng.At(eventAt, func() { fired = busy.eng.Now() })

	done := make(chan struct{})
	go func() {
		RunIslands([]*Island{busy, quiet}, goSpawn)
		close(done)
	}()
	<-done

	if fired != eventAt {
		t.Fatalf("event fired at %d, want %d", fired, eventAt)
	}
	if busy.eng.Now() != eventAt {
		t.Fatalf("busy clock %d, want %d", busy.eng.Now(), eventAt)
	}
}

// TestIslandCrossTrafficDeterministic: two islands ping-ponging
// messages must interleave identically on every run from the
// recording island's point of view — the merge is (time, scheduling
// instant, island) ordered, not wall-clock ordered. (Only one island
// records: cross-island recording order is inherently unordered, which
// is why the fabric keeps every tracer on a single island.)
func TestIslandCrossTrafficDeterministic(t *testing.T) {
	run := func() []Time {
		var log []Time
		a := NewIsland(0, NewEngine())
		b := NewIsland(1, NewEngine())
		ab := Connect(a, b, 10)
		ba := Connect(b, a, 10)

		// a volleys to b, b volleys back, ten rounds; a also runs a
		// local ticker that interleaves with the returns. All recording
		// happens on a's goroutine.
		var volley func(n int)
		volley = func(n int) {
			if n == 0 {
				return
			}
			ab.Send(a.eng.Now()+11, func() {
				serverAt := b.eng.Now()
				ba.Send(b.eng.Now()+11, func() {
					log = append(log, serverAt, a.eng.Now())
					volley(n - 1)
				})
			})
		}
		a.eng.At(0, func() { volley(10) })
		for i := Time(1); i <= 20; i++ {
			at := 7 * i
			a.eng.At(at, func() { log = append(log, at) })
		}
		RunIslands([]*Island{a, b}, goSpawn)
		return log
	}
	first := run()
	if len(first) < 40 {
		t.Fatalf("log too short: %d entries", len(first))
	}
	for trial := 0; trial < 20; trial++ {
		got := run()
		if len(got) != len(first) {
			t.Fatalf("trial %d: %d entries, want %d", trial, len(got), len(first))
		}
		for i := range got {
			if got[i] != first[i] {
				t.Fatalf("trial %d: entry %d = %d, want %d", trial, i, got[i], first[i])
			}
		}
	}
}

// TestIslandMatchesSingleEngine: the same workload run on one engine
// and split across two islands yields the same event sequence.
func TestIslandMatchesSingleEngine(t *testing.T) {
	// Workload: a "client" fires requests every 25 cycles; each request
	// crosses to the "server" (lookahead 10, wire 3), the server works
	// 5 cycles, replies; client records completion times.
	type result struct{ completions []Time }

	single := func() result {
		var r result
		eng := NewEngine()
		for i := Time(0); i < 50; i++ {
			at := 25 * i
			eng.At(at, func() {
				// request arrives server side at at+13
				eng.At(at+13, func() {
					eng.At(eng.Now()+5, func() {
						done := eng.Now() + 13
						eng.At(done, func() { r.completions = append(r.completions, eng.Now()) })
					})
				})
			})
		}
		eng.Run()
		return r
	}

	sharded := func() result {
		var r result
		client := NewIsland(0, NewEngine())
		server := NewIsland(1, NewEngine())
		toSrv := Connect(client, server, 10)
		toCli := Connect(server, client, 10)
		for i := Time(0); i < 50; i++ {
			at := 25 * i
			client.eng.At(at, func() {
				toSrv.Send(at+13, func() {
					server.eng.At(server.eng.Now()+5, func() {
						toCli.Send(server.eng.Now()+13, func() {
							r.completions = append(r.completions, client.eng.Now())
						})
					})
				})
			})
		}
		RunIslands([]*Island{client, server}, goSpawn)
		return r
	}

	want, got := single(), sharded()
	if len(want.completions) != len(got.completions) {
		t.Fatalf("completions: single %d, sharded %d", len(want.completions), len(got.completions))
	}
	for i := range want.completions {
		if want.completions[i] != got.completions[i] {
			t.Fatalf("completion %d: single %d, sharded %d", i, want.completions[i], got.completions[i])
		}
	}
}

// TestConnectRejectsZeroLookahead: a zero-lookahead channel can never
// let either side advance and must be refused outright.
func TestConnectRejectsZeroLookahead(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Connect with zero lookahead did not panic")
		}
	}()
	Connect(NewIsland(0, NewEngine()), NewIsland(1, NewEngine()), 0)
}
