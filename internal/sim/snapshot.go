package sim

// Snapshot/fork support. A machine snapshot is only legal at a
// quiescent point — no events queued, no process running — so the
// engine state worth capturing collapses to two scalars: the virtual
// clock and the scheduling sequence counter. The sequence counter
// matters because events scheduled for the same instant fire in
// scheduling order; a forked engine must hand out the same sequence
// numbers a from-boot engine would, or same-time events could
// interleave differently and break bit-for-bit replay equivalence.

// Clock returns the engine's snapshot state: the current virtual time
// and the next event sequence number. Call only when Pending() == 0 —
// queued events are not part of the exported state.
func (e *Engine) Clock() (now Time, seq uint64) { return e.now, e.seq }

// NewEngineAt returns a fresh engine whose clock and sequence counter
// continue from a snapshot taken with Clock. The meter baseline is set
// to now so the global cycle meter (CyclesSimulated) only accrues
// cycles the fork actually simulates — not the prefix it inherited,
// which the snapshotted machine already flushed.
func NewEngineAt(now Time, seq uint64) *Engine {
	return &Engine{now: now, seq: seq, metered: now}
}

// Clone returns an independent generator at the same stream position.
// Forked machines use this to continue a fault plan's per-channel
// xorshift streams exactly where the snapshot left them, so a forked
// run sees the same fault schedule as a run from boot.
func (r *RNG) Clone() *RNG {
	if r == nil {
		return nil
	}
	cp := *r
	return &cp
}

// Clone returns an independent copy of the counter registry.
func (s *Stats) Clone() *Stats {
	if s == nil {
		return nil
	}
	cp := NewStats()
	for k, v := range s.counters {
		cp.counters[k] = v
	}
	return cp
}
