package sim

import "container/heap"

// Event is a scheduled callback. It is returned by At/After so callers
// can cancel it before it fires.
type Event struct {
	at        Time
	seq       uint64
	fn        func()
	cancelled bool
	index     int // heap index, -1 once popped
}

// At returns the virtual time at which the event is (or was) scheduled
// to fire.
func (e *Event) At() Time { return e.at }

type eventHeap []*Event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq // FIFO among simultaneous events
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}
func (h *eventHeap) Push(x any) {
	e := x.(*Event)
	e.index = len(*h)
	*h = append(*h, e)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.index = -1
	*h = old[:n-1]
	return e
}

// Engine is the discrete-event core: a virtual clock plus a time-ordered
// event queue. Events scheduled for the same instant fire in scheduling
// order, so runs are fully deterministic.
//
// Engine is not safe for concurrent use; the simulation guarantees that
// only one goroutine touches it at a time (the kernel's token-handoff
// protocol, see internal/kernel).
type Engine struct {
	now  Time
	heap eventHeap
	seq  uint64
	hook func(at Time) // observes every fired event; nil = off
}

// NewEngine returns an engine with the clock at zero and no events.
func NewEngine() *Engine { return &Engine{} }

// Now returns the current virtual time.
func (e *Engine) Now() Time { return e.now }

// Pending reports the number of events queued. (Cancel removes events
// from the heap eagerly, so everything in it is live.)
func (e *Engine) Pending() int { return len(e.heap) }

// SetEventHook installs h to be called once per fired event, just
// before its callback runs and after the clock has advanced to its
// timestamp. Cancelled events never reach the hook. The tracing layer
// uses this to count event dispatches; nil disables it.
func (e *Engine) SetEventHook(h func(at Time)) { e.hook = h }

// At schedules fn to run when the clock reaches t. Scheduling in the
// past is a bug in the caller; the engine clamps it to "now" so the
// event still fires (in order) rather than corrupting the clock.
func (e *Engine) At(t Time, fn func()) *Event {
	if t < e.now {
		t = e.now
	}
	ev := &Event{at: t, seq: e.seq, fn: fn}
	e.seq++
	heap.Push(&e.heap, ev)
	return ev
}

// After schedules fn to run d cycles from now.
func (e *Engine) After(d Time, fn func()) *Event {
	return e.At(e.now+d, fn)
}

// Cancel prevents ev from firing. Cancelling an already-fired or
// already-cancelled event is a no-op.
func (e *Engine) Cancel(ev *Event) {
	if ev == nil || ev.cancelled {
		return
	}
	ev.cancelled = true
	if ev.index >= 0 {
		heap.Remove(&e.heap, ev.index)
		ev.index = -1
	}
}

// Step pops and runs the next event, advancing the clock to its time.
// It reports whether an event ran. Cancelled events are never in the
// heap (Cancel removes them eagerly), so whatever is popped fires.
func (e *Engine) Step() bool {
	if len(e.heap) == 0 {
		return false
	}
	ev := heap.Pop(&e.heap).(*Event)
	e.now = ev.at
	if e.hook != nil {
		e.hook(ev.at)
	}
	ev.fn()
	return true
}

// Run processes events until the queue is empty.
func (e *Engine) Run() {
	for e.Step() {
	}
}

// RunUntil processes events with timestamps <= t, then advances the
// clock to exactly t (if it isn't already past it).
func (e *Engine) RunUntil(t Time) {
	for len(e.heap) > 0 && e.heap[0].at <= t {
		e.Step()
	}
	if e.now < t {
		e.now = t
	}
}

// Advance moves the clock forward by d without processing any events.
// It must only be used when the caller knows no event falls inside the
// window; the engine panics otherwise, because silently reordering
// events would destroy determinism.
func (e *Engine) Advance(d Time) {
	target := e.now + d
	if len(e.heap) > 0 && e.heap[0].at < target {
		panic("sim: Advance would skip a pending event")
	}
	e.now = target
}
