package sim

// Event is a cancellable handle to a scheduled callback, returned by
// At/After/AfterArg. It is a small value (pointer + generation): the
// zero Event is inert, so fields holding "maybe a pending timer" need
// no pointer sentinel — Cancel on the zero value is a no-op.
//
// Handles are generation-checked: once the event has fired or been
// cancelled, its slot may be recycled for a future event, but stale
// handles keep referring to the *old* generation, so a late Cancel
// can never kill an unrelated newer event.
type Event struct {
	n   *node
	gen uint32
}

// Pending reports whether the event is still queued (not yet fired,
// not cancelled). The zero Event reports false.
func (ev Event) Pending() bool { return ev.n != nil && ev.n.gen == ev.gen }

// At returns the virtual time at which the event is scheduled to
// fire, or 0 if it already fired or was cancelled (the slot may have
// been recycled, so the original timestamp is gone).
func (ev Event) At() Time {
	if !ev.Pending() {
		return 0
	}
	return ev.n.at
}

// node is the engine-owned storage for one scheduled event. Nodes are
// pooled: on fire or cancel they return to the engine's free list and
// are reused by later At/After calls, so steady-state scheduling does
// not allocate. gen increments on every recycle, invalidating any
// handles still pointing at the slot.
type node struct {
	at      Time
	schedAt Time // clock value when the event was scheduled
	seq     uint64
	fn      func()
	fnArg   func(any) // set (with arg) by AfterArg instead of fn
	arg     any
	gen     uint32
	index   int32 // heap position, -1 once popped/removed, <= -2 in a wheel bucket
	next    *node // free-list / wheel-bucket link
	prev    *node // wheel-bucket back link (O(1) cancel)
}

// Engine is the discrete-event core: a virtual clock plus a
// time-ordered event queue. Events scheduled for the same instant fire
// in scheduling order, so runs are fully deterministic.
//
// The queue is a 4-ary min-heap ordered on (at, seq). A 4-ary heap
// does ~half the levels of a binary heap per operation, and the
// four-child scan stays within one cache line of the slice — the
// event queue is the hottest host-side structure in the simulator.
//
// Engine is not safe for concurrent use; the simulation guarantees
// that only one goroutine touches it at a time (the kernel's
// token-handoff protocol, see internal/kernel). Distinct Engines are
// fully independent and may run on concurrent goroutines — the basis
// of the parallel harness (internal/parallel).
type Engine struct {
	now     Time
	heap    []*node
	seq     uint64
	free    *node
	hook    func(at Time) // observes every fired event; nil = off
	metered Time          // clock value already flushed to the global meter
	wheel   *wheel        // far-future backend (wheel.go), lazily allocated
	noWheel bool          // SetWheel(false): pure-heap baseline mode
	fired   int64         // events dispatched since the last meter flush
	flushed int64         // events already published to the global meter
}

// Dispatched returns the total events this engine has fired since it
// was created — the per-engine view of the global EventsDispatched
// meter, deterministic for a deterministic schedule.
func (e *Engine) Dispatched() int64 { return e.flushed + e.fired }

// NewEngine returns an engine with the clock at zero and no events.
func NewEngine() *Engine { return &Engine{} }

// Now returns the current virtual time.
func (e *Engine) Now() Time { return e.now }

// Pending reports the number of events queued, whether they currently
// sit in the heap or in a timer-wheel bucket. (Cancel removes events
// from both eagerly, so everything counted is live.)
func (e *Engine) Pending() int {
	n := len(e.heap)
	if e.wheel != nil {
		n += e.wheel.count
	}
	return n
}

// SetEventHook installs h to be called once per fired event, just
// before its callback runs and after the clock has advanced to its
// timestamp. Cancelled events never reach the hook. The tracing layer
// uses this to count event dispatches; nil disables it.
func (e *Engine) SetEventHook(h func(at Time)) { e.hook = h }

// schedule acquires a node (recycling from the free list when
// possible), stamps it, and files it: far-future events go to the
// timer wheel, everything else to the heap. The (at, seq) stamp is
// fixed here, so the filing decision can never affect pop order.
func (e *Engine) schedule(t Time) *node {
	if t < e.now {
		t = e.now
	}
	n := e.free
	if n != nil {
		e.free = n.next
		n.next = nil
	} else {
		n = &node{}
	}
	n.at = t
	n.schedAt = e.now
	n.seq = e.seq
	e.seq++
	if !e.wheelAdd(n) {
		e.push(n)
	}
	return n
}

// release returns a node to the free list, invalidating every
// outstanding handle to the event it carried.
func (e *Engine) release(n *node) {
	n.gen++
	n.fn = nil
	n.fnArg = nil
	n.arg = nil
	n.index = -1
	n.prev = nil
	n.next = e.free
	e.free = n
}

// At schedules fn to run when the clock reaches t. Scheduling in the
// past is a bug in the caller; the engine clamps it to "now" so the
// event still fires (in order) rather than corrupting the clock.
func (e *Engine) At(t Time, fn func()) Event {
	n := e.schedule(t)
	n.fn = fn
	return Event{n, n.gen}
}

// After schedules fn to run d cycles from now.
func (e *Engine) After(d Time, fn func()) Event {
	return e.At(e.now+d, fn)
}

// AfterArg schedules fn(arg) to run d cycles from now. Unlike After,
// the common timer pattern pays no closure allocation: callers keep
// one long-lived fn (typically a package-level func or a field) and
// pass the receiver through arg, and the event node itself comes from
// the engine's pool — steady-state cost is zero allocations.
func (e *Engine) AfterArg(d Time, fn func(any), arg any) Event {
	n := e.schedule(e.now + d)
	n.fnArg = fn
	n.arg = arg
	return Event{n, n.gen}
}

// AtArg schedules fn(arg) to run when the clock reaches t — the
// absolute-time analogue of AfterArg, with the same allocation-free
// steady state.
func (e *Engine) AtArg(t Time, fn func(any), arg any) Event {
	n := e.schedule(t)
	n.fnArg = fn
	n.arg = arg
	return Event{n, n.gen}
}

// Cancel prevents ev from firing. Cancelling the zero Event, an
// already-fired or already-cancelled event — even if its slot has
// since been recycled for a newer event — is a no-op.
func (e *Engine) Cancel(ev Event) {
	n := ev.n
	if n == nil || n.gen != ev.gen || n.index == -1 {
		return
	}
	if n.index < -1 {
		e.wheel.unlink(n)
	} else {
		e.remove(int(n.index))
	}
	e.release(n)
}

// Step pops and runs the next event, advancing the clock to its time.
// It reports whether an event ran. Cancelled events are never in the
// heap (Cancel removes them eagerly), so whatever is popped fires. The
// node is recycled before the callback runs, so a callback that
// schedules a new event typically reuses the slot it fired from.
func (e *Engine) Step() bool {
	e.syncWheel()
	if len(e.heap) == 0 {
		return false
	}
	n := e.pop()
	e.now = n.at
	fn, fnArg, arg := n.fn, n.fnArg, n.arg
	e.release(n)
	e.fired++
	if e.hook != nil {
		e.hook(e.now)
	}
	if fnArg != nil {
		fnArg(arg)
	} else {
		fn()
	}
	return true
}

// peek syncs the wheel and reports the earliest queued deadline.
func (e *Engine) peek() (Time, bool) {
	e.syncWheel()
	if len(e.heap) == 0 {
		return 0, false
	}
	return e.heap[0].at, true
}

// NextEvent peeks at the earliest queued event without firing it,
// reporting its fire time and the clock value at which it was
// scheduled. The conservative parallel scheduler (shard.go) uses the
// pair to merge engine events against cross-island channel arrivals
// with the same tie-break a single shared engine's (at, seq) order
// would produce: among same-instant events, the one scheduled earliest
// fires first.
func (e *Engine) NextEvent() (at, schedAt Time, ok bool) {
	e.syncWheel()
	if len(e.heap) == 0 {
		return 0, 0, false
	}
	return e.heap[0].at, e.heap[0].schedAt, true
}

// Run processes events until the queue is empty.
func (e *Engine) Run() {
	for e.Step() {
	}
	e.flushMeter()
}

// RunUntil processes events with timestamps <= t, then advances the
// clock to exactly t (if it isn't already past it).
func (e *Engine) RunUntil(t Time) {
	for {
		at, ok := e.peek()
		if !ok || at > t {
			break
		}
		e.Step()
	}
	if e.now < t {
		e.now = t
	}
	e.flushMeter()
}

// Advance moves the clock forward by d without processing any events.
// It must only be used when the caller knows no event falls inside the
// window; the engine panics otherwise, because silently reordering
// events would destroy determinism.
func (e *Engine) Advance(d Time) {
	target := e.now + d
	if at, ok := e.peek(); ok && at < target {
		panic("sim: Advance would skip a pending event")
	}
	e.now = target
}

// less orders the heap: by timestamp, then FIFO among simultaneous
// events.
func less(a, b *node) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

// push appends n and restores the heap property.
func (e *Engine) push(n *node) {
	n.index = int32(len(e.heap))
	e.heap = append(e.heap, n)
	e.siftUp(int(n.index))
}

// pop removes and returns the minimum node.
func (e *Engine) pop() *node {
	root := e.heap[0]
	last := len(e.heap) - 1
	n := e.heap[last]
	e.heap[last] = nil
	e.heap = e.heap[:last]
	if last > 0 {
		e.heap[0] = n
		n.index = 0
		e.siftDown(0)
	}
	root.index = -1
	return root
}

// remove deletes the node at heap position i.
func (e *Engine) remove(i int) {
	last := len(e.heap) - 1
	n := e.heap[last]
	e.heap[last] = nil
	e.heap = e.heap[:last]
	if i < last {
		e.heap[i] = n
		n.index = int32(i)
		e.siftUp(i)
		e.siftDown(int(n.index))
	}
}

func (e *Engine) siftUp(i int) {
	n := e.heap[i]
	for i > 0 {
		p := (i - 1) >> 2
		if !less(n, e.heap[p]) {
			break
		}
		e.heap[i] = e.heap[p]
		e.heap[i].index = int32(i)
		i = p
	}
	e.heap[i] = n
	n.index = int32(i)
}

func (e *Engine) siftDown(i int) {
	n := e.heap[i]
	size := len(e.heap)
	for {
		first := i<<2 + 1
		if first >= size {
			break
		}
		best := first
		end := first + 4
		if end > size {
			end = size
		}
		for c := first + 1; c < end; c++ {
			if less(e.heap[c], e.heap[best]) {
				best = c
			}
		}
		if !less(e.heap[best], n) {
			break
		}
		e.heap[i] = e.heap[best]
		e.heap[i].index = int32(i)
		i = best
	}
	e.heap[i] = n
	n.index = int32(i)
}
