package sim

import (
	"testing"
)

// wheelTrace is the differential-testing harness for the timer wheel:
// it replays one deterministic, seed-driven schedule/cancel/step
// program against two engines — wheel-backed and pure heap — and
// requires the dispatch sequences to match element for element. The
// program mixes every regime the router distinguishes: near events
// (under wheelMinDefer, heap direct), each wheel level, beyond-span
// sentinels (heap direct), ties at one instant, cancels of wheel and
// heap residents, and callbacks that reschedule far timers (the RTO
// pattern that motivates the wheel).
type wheelFire struct {
	at Time
	id int
}

func runWheelTrace(seed int64, ops int, wheelOn bool) []wheelFire {
	e := NewEngine()
	e.SetWheel(wheelOn)
	r := NewRNG(uint64(seed))
	var fired []wheelFire
	var handles []Event
	id := 0
	// Deterministic per-id far reschedule: roughly a third of fired
	// events re-arm themselves far in the future, like an RTO chain.
	var fire func(a any)
	fire = func(a any) {
		myID := a.(int)
		fired = append(fired, wheelFire{e.Now(), myID})
		if myID%3 == 0 && id < ops*2 {
			d := Time(uint64(myID)*2654435761%50_000_000 + 1) // up to ~250ms
			nid := id
			id++
			handles = append(handles, e.AfterArg(d, fire, nid))
		}
	}
	sched := func() {
		var d Time
		switch r.Intn(6) {
		case 0: // near: stays on the heap
			d = Time(r.Intn(wheelMinDefer))
		case 1: // level 0
			d = Time(wheelMinDefer + r.Intn(1<<20))
		case 2: // level 1
			d = Time(1<<20 + r.Intn(1<<28))
		case 3: // level 2-3
			d = Time(1<<28 + r.Intn(1<<38))
		case 4: // ties: a burst at one instant spanning the routing cut
			d = Time(wheelMinDefer)
		case 5: // beyond the top span: heaps directly
			d = Time(1<<60 + r.Intn(1000))
		}
		nid := id
		id++
		handles = append(handles, e.AfterArg(d, fire, nid))
	}
	for i := 0; i < ops; i++ {
		sched()
		if r.Intn(4) == 0 && len(handles) > 0 {
			j := r.Intn(len(handles))
			if handles[j].Pending() {
				e.Cancel(handles[j])
			}
		}
		if r.Intn(8) == 0 {
			// Interleave dispatch so scheduling happens at many clock
			// positions (and many wheel cursor positions).
			for s := r.Intn(5); s > 0 && e.Pending() > 0; s-- {
				e.Step()
			}
		}
		if r.Intn(16) == 0 {
			e.RunUntil(e.Now() + Time(r.Intn(1<<24)))
		}
	}
	// Drain everything but the far sentinels' tail in bounded steps.
	for e.Pending() > 0 && len(fired) < ops*4 {
		e.Step()
	}
	return fired
}

// TestWheelPopOrderMatchesHeap is the tentpole's pinned contract: for
// randomized schedule/cancel sequences, the wheel-backed engine's
// dispatch order is bit-identical to the pure heap's (at, seq) FIFO
// order.
func TestWheelPopOrderMatchesHeap(t *testing.T) {
	for seed := int64(1); seed <= 25; seed++ {
		heapFired := runWheelTrace(seed, 400, false)
		wheelFired := runWheelTrace(seed, 400, true)
		if len(heapFired) != len(wheelFired) {
			t.Fatalf("seed %d: heap fired %d events, wheel fired %d",
				seed, len(heapFired), len(wheelFired))
		}
		for i := range heapFired {
			if heapFired[i] != wheelFired[i] {
				t.Fatalf("seed %d: dispatch[%d] heap=%+v wheel=%+v",
					seed, i, heapFired[i], wheelFired[i])
			}
		}
	}
}

// TestWheelFIFOAfterChurn mirrors TestEngineFIFOAfterChurn with far
// timestamps, so the surviving events live in wheel buckets instead of
// the heap: dispatch order must still equal the (at, seq) sort.
func TestWheelFIFOAfterChurn(t *testing.T) {
	e := NewEngine()
	type rec struct {
		at  Time
		seq int
	}
	var want, got []rec
	seq := 0
	sched := func(at Time) Event {
		s := seq
		seq++
		want = append(want, rec{at, s})
		return e.At(at, func() { got = append(got, rec{at, s}) })
	}
	r := NewRNG(42)
	var cancelled []int
	var handles []Event
	for i := 0; i < 500; i++ {
		// Few distinct buckets, far out: many same-slot and same-instant
		// collisions resolved by seq alone.
		at := Time(1_000_000 + r.Intn(8)*500_000)
		handles = append(handles, sched(at))
		if i%7 == 3 {
			j := r.Intn(len(handles))
			if handles[j].Pending() {
				e.Cancel(handles[j])
				cancelled = append(cancelled, j)
			}
		}
	}
	dead := make(map[int]bool)
	for _, j := range cancelled {
		dead[j] = true
	}
	var wantLive []rec
	for i, w := range want {
		if !dead[i] {
			wantLive = append(wantLive, w)
		}
	}
	// Insertion-stable sort by (at, seq).
	for i := 1; i < len(wantLive); i++ {
		for j := i; j > 0; j-- {
			a, b := wantLive[j-1], wantLive[j]
			if a.at < b.at || (a.at == b.at && a.seq < b.seq) {
				break
			}
			wantLive[j-1], wantLive[j] = b, a
		}
	}
	e.Run()
	if len(got) != len(wantLive) {
		t.Fatalf("fired %d events, want %d", len(got), len(wantLive))
	}
	for i := range got {
		if got[i] != wantLive[i] {
			t.Fatalf("dispatch[%d] = %+v, want %+v", i, got[i], wantLive[i])
		}
	}
}

// TestWheelPendingAndHandles: events resident in wheel buckets must be
// fully first-class — counted by Pending, readable through Event.At,
// cancellable in O(1), and stale handles must stay inert.
func TestWheelPendingAndHandles(t *testing.T) {
	e := NewEngine()
	a := e.At(10_000_000, func() {})
	b := e.At(20_000_000, func() {})
	c := e.At(100, func() {}) // near: heap
	if e.Pending() != 3 {
		t.Fatalf("pending = %d, want 3", e.Pending())
	}
	if e.wheel == nil || e.wheel.count != 2 {
		t.Fatalf("wheel residents = %v, want 2", e.wheel)
	}
	if a.At() != 10_000_000 || !a.Pending() {
		t.Fatalf("wheel-resident handle broken: at=%d pending=%v", a.At(), a.Pending())
	}
	e.Cancel(a)
	if a.Pending() || e.Pending() != 2 || e.wheel.count != 1 {
		t.Fatalf("cancel of wheel resident: pending=%d wheel=%d", e.Pending(), e.wheel.count)
	}
	e.Cancel(a) // double cancel: no-op
	e.Run()
	if b.Pending() || c.Pending() || e.Pending() != 0 {
		t.Fatal("events left after Run")
	}
	if e.Now() != 20_000_000 {
		t.Fatalf("clock = %d, want 20000000", e.Now())
	}
}

// TestWheelRunUntilAndAdvance: RunUntil must fire exactly the wheel
// residents inside the window, and Advance must still panic when a
// wheel-resident event falls inside the advance window.
func TestWheelRunUntilAndAdvance(t *testing.T) {
	e := NewEngine()
	var fired []Time
	for _, at := range []Time{5_000_000, 10_000_000, 15_000_000} {
		at := at
		e.At(at, func() { fired = append(fired, at) })
	}
	e.RunUntil(12_000_000)
	if len(fired) != 2 || e.Now() != 12_000_000 {
		t.Fatalf("RunUntil: fired %v, now %d", fired, e.Now())
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("Advance over a wheel-resident event did not panic")
			}
		}()
		e.Advance(10_000_000)
	}()
	e.Run()
	if len(fired) != 3 {
		t.Fatalf("remaining wheel event lost: %v", fired)
	}
}

// TestWheelDisableDrains: turning the wheel off mid-run moves every
// resident to the heap without disturbing order, and new far events
// heap directly.
func TestWheelDisableDrains(t *testing.T) {
	e := NewEngine()
	var got []Time
	for _, at := range []Time{30_000_000, 10_000_000, 20_000_000} {
		at := at
		e.At(at, func() { got = append(got, at) })
	}
	if e.wheel.count != 3 {
		t.Fatalf("wheel residents = %d, want 3", e.wheel.count)
	}
	e.SetWheel(false)
	if e.wheel.count != 0 || len(e.heap) != 3 {
		t.Fatalf("drain left wheel=%d heap=%d", e.wheel.count, len(e.heap))
	}
	e.At(40_000_000, func() { got = append(got, 40_000_000) })
	if e.wheel.count != 0 {
		t.Fatal("far event entered a disabled wheel")
	}
	e.Run()
	want := []Time{10_000_000, 20_000_000, 30_000_000, 40_000_000}
	for i, at := range want {
		if got[i] != at {
			t.Fatalf("order after drain: %v", got)
		}
	}
}

// TestWheelScheduleCancelAllocFree pins the wheel schedule/cancel path
// at zero allocations per op in steady state, and likewise the
// schedule→flush→fire path: nodes come from the engine pool and
// buckets are intrusive lists, so nothing is allocated after the wheel
// itself exists.
func TestWheelScheduleCancelAllocFree(t *testing.T) {
	e := NewEngine()
	bump := func(any) {}
	// Warm up: allocate the wheel, grow the pool and the heap slice.
	for i := 0; i < 64; i++ {
		e.AfterArg(Time(10_000_000+i*1000), bump, nil)
	}
	e.Run()
	allocs := testing.AllocsPerRun(1000, func() {
		ev := e.AfterArg(60_000_000, bump, nil) // RTO-style far re-arm
		e.Cancel(ev)
	})
	if allocs != 0 {
		t.Fatalf("wheel schedule+cancel allocates %.1f/op, want 0", allocs)
	}
	allocs = testing.AllocsPerRun(1000, func() {
		e.AfterArg(10_000_000, bump, nil)
		e.RunUntil(e.Now() + 10_000_000)
	})
	if allocs != 0 {
		t.Fatalf("wheel schedule+fire allocates %.1f/op, want 0", allocs)
	}
}

// TestWheelSnapshotClock: an engine that has used the wheel must still
// snapshot at quiescence (Pending()==0 even though cursors have
// drifted), and an engine rebuilt from the clock pair must replay a
// far-timer schedule identically to the original continuing.
func TestWheelSnapshotClock(t *testing.T) {
	run := func(e *Engine) []Time {
		var fired []Time
		for _, d := range []Time{7_777_777, 12_345_678, 12_345_678, 900} {
			d := d
			e.After(d, func() { fired = append(fired, e.Now()) })
		}
		e.Run()
		return fired
	}
	orig := NewEngine()
	orig.After(5_000_000, func() {})
	orig.Run() // wheel used; now quiescent
	now, seq := orig.Clock()
	fork := NewEngineAt(now, seq)
	a := run(orig)
	b := run(fork)
	if len(a) != len(b) {
		t.Fatalf("fired %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("replay diverged at %d: %d vs %d", i, a[i], b[i])
		}
	}
}

// TestWheelIslandsMatchSingleEngine: the conservative parallel
// scheduler must produce the same merged dispatch order whether island
// engines run wheel-backed or pure heap — cross-island merges go
// through NextEvent/Advance, which sync the wheel first.
func TestWheelIslandsMatchSingleEngine(t *testing.T) {
	type hop struct {
		at  Time
		isl int
		n   int
	}
	run := func(wheelOn bool) []hop {
		var log []hop
		a := NewIsland(0, NewEngine())
		b := NewIsland(1, NewEngine())
		a.Engine().SetWheel(wheelOn)
		b.Engine().SetWheel(wheelOn)
		ab := Connect(a, b, 1000)
		ba := Connect(b, a, 1000)
		// Ping-pong with far gaps (wheel territory) plus local far
		// timers on each island.
		var ping func(isl *Island, out *Channel, n int)
		ping = func(isl *Island, out *Channel, n int) {
			log = append(log, hop{isl.Engine().Now(), isl.ID(), n})
			if n >= 12 {
				return
			}
			isl.Engine().After(3_000_000, func() {
				log = append(log, hop{isl.Engine().Now(), isl.ID(), 100 + n})
			})
			at := isl.Engine().Now() + 20_000_000
			var dst *Island
			var back *Channel
			if isl == a {
				dst, back = b, ba
			} else {
				dst, back = a, ab
			}
			out.Send(at, func() { ping(dst, back, n+1) })
		}
		a.Engine().After(10_000_000, func() { ping(a, ab, 0) })
		RunIslands([]*Island{a, b}, goSpawn)
		return log
	}
	on := run(true)
	off := run(false)
	if len(on) != len(off) {
		t.Fatalf("wheel-on fired %d hops, wheel-off %d", len(on), len(off))
	}
	for i := range on {
		if on[i] != off[i] {
			t.Fatalf("island dispatch[%d]: on=%+v off=%+v", i, on[i], off[i])
		}
	}
}
