package sim

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestTimeConversions(t *testing.T) {
	if got := FromSeconds(1); got != CPUHz {
		t.Fatalf("FromSeconds(1) = %d, want %d", got, CPUHz)
	}
	if got := FromMicros(1); got != 200 {
		t.Fatalf("FromMicros(1) = %d, want 200", got)
	}
	if got := FromMillis(1); got != 200_000 {
		t.Fatalf("FromMillis(1) = %d, want 200000", got)
	}
	if got := Time(200).Micros(); got != 1 {
		t.Fatalf("Micros = %v, want 1", got)
	}
	if got := FromSeconds(41).Seconds(); got != 41 {
		t.Fatalf("Seconds round trip = %v", got)
	}
}

func TestTimeString(t *testing.T) {
	cases := []struct {
		in   Time
		want string
	}{
		{FromSeconds(41), "41.00s"},
		{FromMillis(6), "6.00ms"},
		{FromMicros(13), "13.00us"},
		{Time(99), "99cy"},
	}
	for _, c := range cases {
		if got := c.in.String(); got != c.want {
			t.Errorf("%d.String() = %q, want %q", uint64(c.in), got, c.want)
		}
	}
}

func TestTimeRoundTripProperty(t *testing.T) {
	// Microsecond-scale round trips must be exact: the constants are
	// integral multiples of the cycle.
	f := func(us uint32) bool {
		v := us % 10_000_000
		return FromMicros(float64(v)).Micros() == float64(v)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCostModelSanity(t *testing.T) {
	// Table 2 calibration: a 1-byte shared-memory pipe transfer is
	// ~13us; two 8-KB copies must add roughly 137us more.
	twoCopies := CopyCost(8192) * 2
	if twoCopies < FromMicros(120) || twoCopies > FromMicros(150) {
		t.Fatalf("two 8-KB copies = %v, want ~137us", twoCopies)
	}
	// getpid calibration (Section 7.1): trap path vs library path.
	bsd := CostTrapBSD + CostGetpidWork
	exos := CostLibCall + CostGetpidWork
	if bsd < 250 || bsd > 290 {
		t.Fatalf("BSD getpid = %d cycles, want ~270", bsd)
	}
	if exos < 90 || exos > 110 {
		t.Fatalf("ExOS getpid = %d cycles, want ~100", exos)
	}
	// Fork costs (Section 6.2): 6 ms vs <1 ms.
	if CostForkExOS.Millis() != 6 {
		t.Fatalf("ExOS fork = %v, want 6ms", CostForkExOS)
	}
	if CostForkBSD.Millis() >= 1 {
		t.Fatalf("BSD fork = %v, want <1ms", CostForkBSD)
	}
}

func TestWireTime(t *testing.T) {
	// A full MTU frame is (1500+38)*8 bits at 100 Mbit/s = 123.04us.
	wt := WireTime(EthernetMTU)
	if wt.Micros() < 120 || wt.Micros() > 126 {
		t.Fatalf("WireTime(MTU) = %v, want ~123us", wt)
	}
	if WireTime(0) == 0 {
		t.Fatal("zero-byte frame must still cost framing overhead")
	}
}

func TestStats(t *testing.T) {
	s := NewStats()
	s.Inc(CtrSyscalls)
	s.Add(CtrSyscalls, 2)
	s.Add(CtrDiskReads, 7)
	if s.Get(CtrSyscalls) != 3 {
		t.Fatalf("syscalls = %d, want 3", s.Get(CtrSyscalls))
	}
	if s.Get("missing") != 0 {
		t.Fatal("missing counter should be 0")
	}
	if !strings.Contains(s.String(), "disk_reads=7") {
		t.Fatalf("String() = %q", s.String())
	}
	names := s.Names()
	if len(names) != 2 || names[0] != CtrDiskReads {
		t.Fatalf("Names() = %v", names)
	}
	s.Reset()
	if s.Get(CtrSyscalls) != 0 {
		t.Fatal("Reset did not clear counters")
	}
	// nil Stats must be safe to use.
	var nils *Stats
	nils.Inc("x")
	if nils.Get("x") != 0 {
		t.Fatal("nil stats should read 0")
	}
}

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed diverged")
		}
	}
	c := NewRNG(43)
	same := true
	a2 := NewRNG(42)
	for i := 0; i < 10; i++ {
		if a2.Uint64() != c.Uint64() {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds produced identical streams")
	}
}

func TestRNGZeroSeed(t *testing.T) {
	r := NewRNG(0)
	if r.Uint64() == 0 && r.Uint64() == 0 {
		t.Fatal("zero seed produced a stuck generator")
	}
}

func TestRNGIntnRange(t *testing.T) {
	r := NewRNG(7)
	for i := 0; i < 10000; i++ {
		v := r.Intn(13)
		if v < 0 || v >= 13 {
			t.Fatalf("Intn(13) = %d out of range", v)
		}
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	r.Intn(0)
}

func TestRNGPermIsPermutation(t *testing.T) {
	r := NewRNG(9)
	p := r.Perm(50)
	seen := make([]bool, 50)
	for _, v := range p {
		if v < 0 || v >= 50 || seen[v] {
			t.Fatalf("Perm not a permutation: %v", p)
		}
		seen[v] = true
	}
}

func TestRNGFloat64Range(t *testing.T) {
	r := NewRNG(11)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 = %v out of [0,1)", f)
		}
	}
}
