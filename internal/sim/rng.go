package sim

// RNG is a small deterministic pseudo-random generator (xorshift64*).
// The global-performance experiments (Figures 4 and 5) depend on the
// paper's property that "the pseudo-random number generators are
// identical and start with the same seed, thus producing identical
// schedules" across the systems being compared — so the simulation
// carries its own generator rather than using math/rand, whose stream
// is not part of our compatibility surface.
type RNG struct {
	s uint64
}

// NewRNG returns a generator seeded with seed. A zero seed is remapped
// to a fixed non-zero constant (xorshift state must be non-zero).
func NewRNG(seed uint64) *RNG {
	if seed == 0 {
		seed = 0x9e3779b97f4a7c15
	}
	return &RNG{s: seed}
}

// Uint64 returns the next 64 pseudo-random bits.
func (r *RNG) Uint64() uint64 {
	x := r.s
	x ^= x >> 12
	x ^= x << 25
	x ^= x >> 27
	r.s = x
	return x * 0x2545F4914F6CDD1D
}

// Intn returns a pseudo-random int in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("sim: RNG.Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Int63 returns a non-negative pseudo-random 63-bit integer.
func (r *RNG) Int63() int64 { return int64(r.Uint64() >> 1) }

// Float64 returns a pseudo-random float in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Perm returns a pseudo-random permutation of [0, n).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}
