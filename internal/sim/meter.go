package sim

import "sync/atomic"

// The global cycle meter: a process-wide count of virtual cycles
// simulated by every Engine, across all machines and goroutines.
// Harnesses read it before and after an experiment to report "how
// much simulation happened" next to host wall-clock time
// (cmd/xok-bench's per-experiment summary lines).
//
// Engines batch their contribution — each flushes the clock delta
// since its last flush when Run or RunUntil returns — so the meter
// costs one atomic add per drain, not per event, and never perturbs
// simulated behavior. The counter is monotonic and shared; deltas are
// meaningful, absolute values only count cycles since process start.
var simulatedCycles atomic.Int64

// The global event meter, batched the same way: a process-wide count
// of events dispatched by every Engine. Harnesses divide its delta by
// host wall-clock seconds to report simulator throughput as
// events-per-host-second — the number a scheduling-backend change
// (heap vs timer wheel) actually moves.
var dispatchedEvents atomic.Int64

// CyclesSimulated returns the total virtual cycles simulated by all
// engines in this process so far. Safe to call from any goroutine.
func CyclesSimulated() Time { return Time(simulatedCycles.Load()) }

// EventsDispatched returns the total events fired by all engines in
// this process so far. Safe to call from any goroutine; like the cycle
// meter, only deltas are meaningful.
func EventsDispatched() int64 { return dispatchedEvents.Load() }

// flushMeter publishes the engine's clock and dispatch progress since
// the last flush to the global meters.
func (e *Engine) flushMeter() {
	if d := e.now - e.metered; d > 0 {
		simulatedCycles.Add(int64(d))
		e.metered = e.now
	}
	if e.fired > 0 {
		dispatchedEvents.Add(e.fired)
		e.flushed += e.fired
		e.fired = 0
	}
}
