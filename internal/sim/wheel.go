package sim

import "math/bits"

// Hierarchical timer wheel: the engine's scheduling backend for the
// far-future/bulk-timer regime (RTOs, open-loop arrival pre-draws).
//
// The 4-ary heap is exact but costs O(log n) per operation, and with
// 100k+ pending timers the log — and the cache misses under it — is
// what the simulator spends its host time on. The wheel files a
// far-future event into a bucket (a doubly-linked list) in O(1) and
// only moves it into the heap when the clock approaches its deadline,
// so the heap's n stays bounded by the near-term working set.
//
// Correctness contract: pop order must stay bit-identical to the pure
// heap's (at, seq) FIFO order. The wheel never orders anything — each
// node keeps the seq stamped at schedule time, and syncWheel flushes
// buckets into the heap strictly before the heap could pop past them
// (every pop/peek first establishes heap[0].at < cur[0]<<wheelShift,
// and every wheel resident's deadline is >= that bound). The heap is
// the sole arbiter of order, so an event that takes the wheel detour
// pops exactly where it always did. Any placement the wheel cannot
// make safely (deadline inside an already-flushed slot, beyond the top
// level's span like the 1<<60 serve-forever sentinels, or the wheel
// disabled) falls back to the heap, which is always exact — the wheel
// can only ever be a deferral, never a reordering.
const (
	wheelSlotBits = 8
	wheelSlots    = 1 << wheelSlotBits // 256 slots per level
	wheelSlotMask = wheelSlots - 1
	wheelLevels   = 5
	// wheelShift sizes a level-0 slot at 2^12 cycles (~20.5us at the
	// simulated 200MHz): far below every protocol timer (RTO floors are
	// tens of milliseconds) and far above per-event cost granularity.
	// Level l slots span 2^(12+8l) cycles; the top level covers 2^52
	// cycles (~260 simulated days), beyond which events heap directly.
	wheelShift = 12
	// wheelMinDefer keeps near-term events (under two level-0 slots
	// out) on the heap: they are about to fire, and the detour through
	// a bucket would cost more than the heap push it saves.
	wheelMinDefer = 2 << wheelShift
)

// wheelIndex encodes a wheel position (level, ring slot) into the
// node.index field: heap residents use index >= 0, free nodes -1, and
// wheel residents <= -2 so Cancel can route removal without any extra
// per-node storage.
func wheelIndex(level, ring int) int32 {
	return int32(-2 - (level<<wheelSlotBits | ring))
}

func wheelLoc(index int32) (level, ring int) {
	v := int(-2 - index)
	return v >> wheelSlotBits, v & wheelSlotMask
}

type wheelLevel struct {
	// cur is an absolute slot cursor: every slot with absolute number
	// < cur has been flushed (its events are in the heap or a lower
	// level), so the ring may only hold slots in [cur, cur+wheelSlots).
	cur   uint64
	occ   [wheelSlots / 64]uint64 // occupancy bitmap over ring indices
	slots [wheelSlots]*node       // per-slot doubly-linked bucket head
}

type wheel struct {
	count  int // nodes resident in buckets (not yet flushed to heap)
	levels [wheelLevels]wheelLevel
}

// place files n into the shallowest level whose unflushed window covers
// its deadline, reporting false when none can (already-flushed slot or
// beyond the top span) — the caller then heaps the node, which is
// always safe.
func (w *wheel) place(n *node) bool {
	shift := uint(wheelShift)
	for l := 0; l < wheelLevels; l++ {
		lv := &w.levels[l]
		abs := uint64(n.at) >> shift
		if abs >= lv.cur && abs-lv.cur < wheelSlots {
			ring := abs & wheelSlotMask
			head := lv.slots[ring]
			n.prev = nil
			n.next = head
			if head != nil {
				head.prev = n
			}
			lv.slots[ring] = n
			lv.occ[ring>>6] |= 1 << (ring & 63)
			n.index = wheelIndex(l, int(ring))
			w.count++
			return true
		}
		shift += wheelSlotBits
	}
	return false
}

// unlink removes a cancelled node from its bucket in O(1).
func (w *wheel) unlink(n *node) {
	level, ring := wheelLoc(n.index)
	lv := &w.levels[level]
	if n.prev != nil {
		n.prev.next = n.next
	} else {
		lv.slots[ring] = n.next
	}
	if n.next != nil {
		n.next.prev = n.prev
	}
	if lv.slots[ring] == nil {
		lv.occ[ring>>6] &^= 1 << (ring & 63)
	}
	n.prev, n.next = nil, nil
	w.count--
}

// reset re-anchors every cursor at t. Legal only when no bucket holds
// a node; called on the first insert after the wheel drains so cursor
// drift from past flushing never forces far inserts onto the heap.
func (w *wheel) reset(t Time) {
	shift := uint(wheelShift)
	for l := range w.levels {
		w.levels[l].cur = uint64(t) >> shift
		shift += wheelSlotBits
	}
}

// nextOcc returns the smallest absolute slot >= lv.cur (within one
// rotation) whose bucket is non-empty, skipping empty runs through the
// occupancy bitmap.
func (lv *wheelLevel) nextOcc() (uint64, bool) {
	start := int(lv.cur) & wheelSlotMask
	for off := 0; off < wheelSlots; {
		ring := (start + off) & wheelSlotMask
		bit := ring & 63
		if word := lv.occ[ring>>6] >> bit; word != 0 {
			return lv.cur + uint64(off+bits.TrailingZeros64(word)), true
		}
		off += 64 - bit
	}
	return 0, false
}

// skipGap advances every cursor to the earliest occupied slot anywhere
// in the wheel, without walking the empty run one slot at a time —
// this is what makes a lone timer far in the future O(levels) to reach
// instead of O(gap/slotSpan). Cursors only ever move forward, and only
// over slots proven empty (the minimum is taken over every level's
// next occupied slot, so nothing occupied is jumped).
func (w *wheel) skipGap() {
	best := ^uint64(0) // earliest occupied slot start, in level-0 slot units
	for l, sh := 0, 0; l < wheelLevels; l, sh = l+1, sh+wheelSlotBits {
		if abs, ok := w.levels[l].nextOcc(); ok {
			if start := abs << sh; start < best {
				best = start
			}
		}
	}
	if best == ^uint64(0) {
		return
	}
	for l, sh := 0, 0; l < wheelLevels; l, sh = l+1, sh+wheelSlotBits {
		if c := best >> sh; c > w.levels[l].cur {
			w.levels[l].cur = c
		}
	}
}

// wheelAdd tries to file a freshly scheduled node into the wheel,
// reporting false when it belongs on the heap instead.
func (e *Engine) wheelAdd(n *node) bool {
	if e.noWheel || n.at-e.now < wheelMinDefer {
		return false
	}
	w := e.wheel
	if w == nil {
		w = &wheel{}
		e.wheel = w
	}
	if w.count == 0 {
		w.reset(e.now)
	}
	return w.place(n)
}

// wheelFeed pulls level-(l+1) slots down whenever level l's cursor has
// reached the span they cover, recursing upward first so every pull
// happens while its own level is fed. This is the cascade: a bucket
// spanning 256 lower-level slots is exploded into them (or the heap)
// exactly when the cursor arrives at its start, never later.
func (e *Engine) wheelFeed(l int) {
	if l+1 >= wheelLevels {
		return
	}
	w := e.wheel
	for w.levels[l].cur >= w.levels[l+1].cur<<wheelSlotBits {
		e.wheelFeed(l + 1)
		e.wheelPull(l + 1)
	}
}

// wheelPull empties level l's current slot, re-filing each node into a
// shallower level or the heap, and advances the cursor past it.
func (e *Engine) wheelPull(l int) {
	w := e.wheel
	lv := &w.levels[l]
	ring := lv.cur & wheelSlotMask
	n := lv.slots[ring]
	lv.slots[ring] = nil
	lv.occ[ring>>6] &^= 1 << (ring & 63)
	lv.cur++
	for n != nil {
		next := n.next
		n.prev, n.next = nil, nil
		w.count--
		if !w.place(n) {
			e.push(n)
		}
		n = next
	}
}

// syncWheel flushes buckets into the heap until the heap's head — if
// any — is provably earlier than every wheel resident: residents at
// level l sit in slots >= cur[l], so their deadlines are >= cur[0]
// << wheelShift once the cascade invariant holds, and the loop stops
// as soon as heap[0].at is strictly below that bound (ties therefore
// always flush, and seq decides them in the heap exactly as before).
func (e *Engine) syncWheel() {
	w := e.wheel
	if w == nil || w.count == 0 {
		return
	}
	for w.count > 0 {
		lv := &w.levels[0]
		if len(e.heap) > 0 && e.heap[0].at < Time(lv.cur)<<wheelShift {
			return
		}
		e.wheelFeed(0)
		// The cursor may advance only up to the start of the next
		// unpulled level-1 slot: pulling it may deposit earlier work.
		limit := w.levels[1].cur << wheelSlotBits
		if abs, ok := lv.nextOcc(); ok && abs < limit {
			lv.cur = abs
			e.wheelPull(0)
		} else {
			lv.cur = limit
			w.skipGap()
		}
	}
}

// drainWheel moves every wheel resident into the heap (order is
// irrelevant — the heap re-establishes (at, seq) order).
func (e *Engine) drainWheel() {
	w := e.wheel
	if w == nil {
		return
	}
	for l := range w.levels {
		lv := &w.levels[l]
		for ring := range lv.slots {
			for n := lv.slots[ring]; n != nil; {
				next := n.next
				n.prev, n.next = nil, nil
				e.push(n)
				n = next
			}
			lv.slots[ring] = nil
		}
		lv.occ = [wheelSlots / 64]uint64{}
	}
	w.count = 0
}

// SetWheel toggles the timer-wheel backend (on by default). Disabling
// it drains every wheel resident into the heap, so pop order — already
// bit-identical by construction — is unaffected mid-run; benchmarks
// and differential tests use the off position as the pure-heap
// baseline.
func (e *Engine) SetWheel(on bool) {
	e.noWheel = !on
	if !on {
		e.drainWheel()
	}
}
