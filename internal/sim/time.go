// Package sim provides the deterministic discrete-event foundation on
// which the entire exokernel reproduction runs: a virtual clock measured
// in CPU cycles, an event engine, a seeded random-number generator and
// the calibrated cost model for the simulated 200-MHz Pentium Pro
// machine described in the paper's evaluation (Section 6).
//
// All timing in the repository is expressed as sim.Time (cycles).
// Nothing in the simulation reads the host clock; identical seeds yield
// byte-identical runs.
package sim

import (
	"fmt"
	"strconv"
)

// Time is a point on (or a span of) the virtual clock, in CPU cycles of
// the simulated 200-MHz processor. One cycle is 5 ns.
type Time uint64

// CPUHz is the simulated processor frequency. The paper's testbed is a
// 200-MHz Intel Pentium Pro.
const CPUHz = 200_000_000

// Cycle conversion helpers. Micros/Millis/Seconds convert spans or
// timestamps to wall-clock units of the simulated machine.

// FromNanos converts nanoseconds of simulated time to cycles.
func FromNanos(ns float64) Time { return Time(ns * CPUHz / 1e9) }

// FromMicros converts microseconds of simulated time to cycles.
func FromMicros(us float64) Time { return Time(us * CPUHz / 1e6) }

// FromMillis converts milliseconds of simulated time to cycles.
func FromMillis(ms float64) Time { return Time(ms * CPUHz / 1e3) }

// FromSeconds converts seconds of simulated time to cycles.
func FromSeconds(s float64) Time { return Time(s * CPUHz) }

// Nanos reports t in simulated nanoseconds.
func (t Time) Nanos() float64 { return float64(t) * 1e9 / CPUHz }

// Micros reports t in simulated microseconds.
func (t Time) Micros() float64 { return float64(t) * 1e6 / CPUHz }

// Millis reports t in simulated milliseconds.
func (t Time) Millis() float64 { return float64(t) * 1e3 / CPUHz }

// Seconds reports t in simulated seconds.
func (t Time) Seconds() float64 { return float64(t) / CPUHz }

// ParseTime parses a duration with a unit suffix — "250ms", "1.5s",
// "80us", "40ns" — or a bare cycle count ("1000" or "1000cy"). It is
// the inverse of String for flag values (cmd/xok-bench -faults).
func ParseTime(s string) (Time, error) {
	var scale func(float64) Time
	num := s
	switch {
	case len(s) > 2 && s[len(s)-2:] == "ms":
		scale, num = FromMillis, s[:len(s)-2]
	case len(s) > 2 && s[len(s)-2:] == "us":
		scale, num = FromMicros, s[:len(s)-2]
	case len(s) > 2 && s[len(s)-2:] == "ns":
		scale, num = FromNanos, s[:len(s)-2]
	case len(s) > 2 && s[len(s)-2:] == "cy":
		scale, num = func(v float64) Time { return Time(v) }, s[:len(s)-2]
	case len(s) > 1 && s[len(s)-1:] == "s":
		scale, num = FromSeconds, s[:len(s)-1]
	default:
		scale = func(v float64) Time { return Time(v) }
	}
	v, err := strconv.ParseFloat(num, 64)
	if err != nil || v < 0 {
		return 0, fmt.Errorf("sim: bad duration %q", s)
	}
	return scale(v), nil
}

// String formats t with an adaptive unit, e.g. "41.03s" or "13.2us".
func (t Time) String() string {
	switch {
	case t >= CPUHz:
		return fmt.Sprintf("%.2fs", t.Seconds())
	case t >= CPUHz/1000:
		return fmt.Sprintf("%.2fms", t.Millis())
	case t >= CPUHz/1_000_000:
		return fmt.Sprintf("%.2fus", t.Micros())
	default:
		return fmt.Sprintf("%dcy", uint64(t))
	}
}
