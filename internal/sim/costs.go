package sim

// Calibrated cost model for the simulated machine.
//
// The paper's testbed: 200-MHz Pentium Pro, 256-KB L2, 64-MB RAM, NCR 815
// SCSI with Quantum Atlas XP32150 disks, and 3 x 100-Mbit/s Ethernets.
// Every constant below is either taken directly from a number the paper
// states (cited inline) or calibrated so that the microbenchmarks the
// paper reports (getpid, fork, pipe latency) come out near the published
// values. The macro results (Figures 2-5) are then *emergent* from this
// model; they are not hard-coded.

// Microsecond is one microsecond of simulated time in cycles.
const Microsecond Time = CPUHz / 1_000_000

// Millisecond is one millisecond of simulated time in cycles.
const Millisecond Time = CPUHz / 1_000

// CPU entry/exit and call costs.
const (
	// CostLibCall is a protected-procedure call into a libOS (no kernel
	// crossing). Section 7.1: emulated getpid = 100 cycles total on
	// Xok/ExOS, which is a procedure call into ExOS plus the trivial
	// work itself.
	CostLibCall Time = 60

	// CostTrapXok is one Xok kernel crossing (trap + return). Xok is
	// "completely untuned" (Section 9.3) but its crossings are short.
	CostTrapXok Time = 160

	// CostTrapBSD is one 4.4BSD kernel crossing including the argument
	// validation UNIX performs. Section 7.1: getpid = 270 cycles on
	// OpenBSD; 270 minus the ~40-cycle body leaves ~230 for the
	// crossing; we round to 220 plus a 10-cycle dispatch.
	CostTrapBSD Time = 220

	// CostGetpidWork is the trivial body of getpid-like calls.
	CostGetpidWork Time = 40

	// CostContextSwitch is an address-space switch (CR3 reload + TLB
	// refill shadow). "Particularly expensive on the Intel Pentium Pro
	// processors" (Section 3.2): ~5 microseconds.
	CostContextSwitch Time = 5 * Microsecond

	// CostYieldDirected is a directed yield between cooperating
	// environments (Section 5.2.1, pipes): cheaper than a full
	// involuntary context switch because no scheduler search runs.
	CostYieldDirected Time = 4 * Microsecond

	// CostUpcall is delivering a software interrupt / upcall to an
	// environment (time-slice start/end notification, packet arrival).
	CostUpcall Time = 300

	// CostPredicateEval is evaluating one compiled wakeup predicate at
	// dispatch time (Section 5.1: compiled on the fly, cheap).
	CostPredicateEval Time = 40

	// CostPredicateDownload is installing a predicate: "like dynamic
	// packet filters, Xok compiles predicates on-the-fly to executable
	// code" and pre-translates the virtual addresses it references —
	// code generation plus page-table walks, charged on each install.
	CostPredicateDownload Time = 10 * Microsecond

	// CostRegionCheck is the kernel-side validation of one software
	// region access beyond the raw copy (bounds, capability check,
	// fault containment).
	CostRegionCheck Time = 500

	// CostUDFStep is one interpreted UDF instruction inside XN.
	CostUDFStep Time = 4

	// CostPageFault is the hardware fault + kernel dispatch cost of a
	// page fault (before any handler work).
	CostPageFault Time = 500

	// CostPTEUpdate is one page-table-entry update performed inside a
	// system call on Xok (applications cannot write x86 page tables
	// directly, Section 5.1). ExOS batches these to amortize the trap.
	CostPTEUpdate Time = 25
)

// Memory costs.
const (
	// PageSize is the x86 page size.
	PageSize = 4096

	// copy throughput: ~120 MB/s bulk copy on the 200-MHz Pentium Pro
	// (5/3 cycles per byte). Calibrated from Table 2: the 8-KB
	// shared-memory pipe costs 150us, which is two 8-KB copies plus
	// the 1-byte path (13us).
	copyNum = 5
	copyDen = 3

	// checksum: IP checksum at ~200 MB/s (1 cycle/byte).
	checksumPerByte = 1
)

// CopyCost is the CPU cost of copying n bytes (memcpy at ~120 MB/s).
func CopyCost(n int) Time { return Time(n*copyNum/copyDen) + 20 }

// ChecksumCost is the CPU cost of checksumming n bytes.
func ChecksumCost(n int) Time { return Time(n*checksumPerByte) + 10 }

// TouchCost is the CPU cost of streaming over n bytes read-only
// (compare, scan, word count): slightly cheaper than a copy.
func TouchCost(n int) Time { return Time(n) + 10 }

// Fork/exec costs (Section 6.2).
const (
	// CostForkExOS: "Fork takes six milliseconds on ExOS" because Xok
	// does not yet let environments share page tables, so ExOS scans
	// its page table marking pages copy-on-write through batched
	// system calls.
	CostForkExOS Time = 6 * Millisecond

	// CostForkBSD: "less than one millisecond on OpenBSD".
	CostForkBSD Time = 8 * Millisecond / 10

	// CostExec is overlaying a process image (demand-load setup).
	CostExec Time = 2 * Millisecond

	// CostCOWFault is one copy-on-write fault: fault + page copy + PTE
	// fixups (the 4-KB copy dominates).
	CostCOWFault Time = 500 + 4096*copyNum/copyDen + 200
)

// Disk model (Quantum Atlas XP32150: 7200 rpm, ~8 ms average seek,
// ~10 MB/s media rate).
const (
	// DiskBlockSize is the file-system block size used throughout.
	DiskBlockSize = 4096

	// DiskSeekMin is a single-track seek.
	DiskSeekMin Time = 800 * Microsecond

	// DiskSeekAvg is the average (third-of-max-stroke) seek.
	DiskSeekAvg Time = 8000 * Microsecond

	// DiskRotationPeriod is one revolution at 7200 rpm.
	DiskRotationPeriod Time = 8333 * Microsecond

	// DiskTransferPerBlock is the media transfer time of one 4-KB
	// block at ~10 MB/s.
	DiskTransferPerBlock Time = 400 * Microsecond

	// DiskControllerOverhead is per-request SCSI command processing.
	DiskControllerOverhead Time = 150 * Microsecond

	// DiskInterruptCost is the host CPU cost of one disk completion
	// interrupt.
	DiskInterruptCost Time = 20 * Microsecond
)

// Network model: 3 x 100-Mbit/s Ethernets (Section 7.3), standard 1500-B
// MTU.
const (
	// LinkBandwidthBps is one Ethernet's bandwidth in bits/second.
	LinkBandwidthBps = 100_000_000

	// NumLinks is the number of Ethernets on the server machine.
	NumLinks = 3

	// EthernetMTU is the maximum payload per frame.
	EthernetMTU = 1500

	// EthernetHeader is the per-frame header+CRC+framing overhead in
	// bytes (14 header + 4 CRC + 8 preamble + 12 inter-frame gap).
	EthernetHeader = 38

	// LinkLatency is the one-way wire+switch latency.
	LinkLatency Time = 50 * Microsecond

	// CostNICInterrupt is the host CPU cost of a packet interrupt.
	CostNICInterrupt Time = 10 * Microsecond

	// CostPacketFilter is running the dynamic packet filter on one
	// received packet (compiled, cheap).
	CostPacketFilter Time = 100
)

// WireTime is the transmission time of n payload bytes on one
// default-speed (LinkBandwidthBps) link.
func WireTime(n int) Time {
	return WireTimeAt(n, LinkBandwidthBps)
}

// WireTimeAt is the transmission time of n payload bytes on a link of
// the given bandwidth (bits/second). Topology links with explicit
// LinkSpec bandwidths serialize frames with this.
func WireTimeAt(n int, bps uint64) Time {
	bits := (n + EthernetHeader) * 8
	return Time(uint64(bits) * CPUHz / bps)
}
