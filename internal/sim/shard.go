package sim

// Conservative parallel discrete-event execution (Chandy–Misra–Bryant
// with null-message promises). A simulation is partitioned into
// Islands — each an Engine driven by its own goroutine — joined by
// directed Channels that carry timestamped callbacks plus lookahead
// promises. A channel with lookahead L guarantees that a message
// handed over while the sender's clock reads S fires no earlier than
// S+L+1 on the receiver, so the receiver may safely execute everything
// up to (promised sender clock)+L without waiting, and an idle island
// still advances past a quiet neighbor on promises alone.
//
// The merge is deterministic: each island orders its engine's next
// event against the inbound channel heads by (fire time, scheduling
// time, origin island, channel index) — the same order a single shared
// engine's (time, seq) heap produces whenever the scheduling instants
// differ, with the island id as the tie-break of last resort. Island
// state is only ever touched by its own goroutine; the channels are
// the only synchronization points.

import (
	"sync"
	"sync/atomic"
)

// maxTime is the saturation bound for promise arithmetic.
const maxTime = ^Time(0)

// satAdd adds two times, saturating instead of wrapping.
func satAdd(a, b Time) Time {
	if s := a + b; s >= a {
		return s
	}
	return maxTime
}

// msg is one cross-island event hand-off: a callback to run on the
// receiving island at virtual time at. sent is the sender's clock at
// the hand-over — the scheduling instant, used for the deterministic
// tie-break among same-instant events exactly as a shared engine's
// sequence numbers would order them. A message carries either a plain
// callback (fn) or an arg-carrying one (argFn+arg, the alloc-free
// variant mirroring Engine.AtArg).
type msg struct {
	at    Time
	sent  Time
	fn    func()
	argFn func(any)
	arg   any
}

// run invokes the message's callback.
func (m *msg) run() {
	if m.argFn != nil {
		m.argFn(m.arg)
		return
	}
	m.fn()
}

// Channel is a directed, timestamped event conduit between two
// islands. Messages must carry strictly increasing timestamps, each
// beyond the sender's clock plus the channel's lookahead — the
// conservative contract every promise is derived from. Queue storage
// is a reusable ring, so steady-state hand-off allocates nothing.
type Channel struct {
	from      *Island
	to        *Island
	lookahead Time

	// Sender-side state; only the sending island's goroutine touches
	// it. sentPromise mirrors the last published promise so redundant
	// publications skip the receiver's lock entirely, and pubQuantum is
	// the minimum clock advance between promise raises while busy.
	sentPromise Time
	pubQuantum  Time

	// Receiver-side state, guarded by to.mu.
	promise Time  // proven lower bound on the sender's clock
	q       []msg // ring: q[head], q[head+1], ... (mod len), count live
	head    int
	count   int
	idx     int // position in to.in — the tie-break of last resort
}

// Island is one partition of a conservatively parallel simulation: an
// engine plus its inbound and outbound channels. Exactly one goroutine
// (the one RunIslands spawns for it) executes its events.
type Island struct {
	id  int
	eng *Engine

	mu      sync.Mutex
	cond    *sync.Cond
	waiting bool
	version uint64 // bumped on every inbound push or promise raise
	in      []*Channel
	out     []*Channel

	st *shardState
}

// NewIsland wraps an engine as one island. The id must be unique
// within the set later passed to RunIslands; it doubles as the
// deterministic tie-break among islands.
func NewIsland(id int, eng *Engine) *Island {
	isl := &Island{id: id, eng: eng}
	isl.cond = sync.NewCond(&isl.mu)
	return isl
}

// ID returns the island's tie-break identity.
func (isl *Island) ID() int { return isl.id }

// Engine returns the island's engine.
func (isl *Island) Engine() *Engine { return isl.eng }

// Connect builds a directed channel with the given lookahead. A zero
// lookahead is rejected: it would let the receiver advance nowhere
// past the sender's clock, deadlocking both (the caller must merge
// such partitions instead).
func Connect(from, to *Island, lookahead Time) *Channel {
	if lookahead == 0 {
		panic("sim: cross-island channel needs lookahead >= 1")
	}
	c := &Channel{from: from, to: to, lookahead: lookahead, idx: len(to.in)}
	c.pubQuantum = lookahead
	if c.pubQuantum == 0 {
		c.pubQuantum = 1
	}
	from.out = append(from.out, c)
	to.in = append(to.in, c)
	return c
}

// Send hands fn to the receiving island to fire at virtual time at.
// It must be called from the sending island's goroutine, with at
// strictly beyond the sender's clock plus the lookahead, and strictly
// beyond every earlier Send on the same channel. The hand-off is
// synchronous — the message is in the receiver's queue before Send
// returns — which is what makes idle-detection exact.
func (c *Channel) Send(at Time, fn func()) {
	c.send(msg{at: at, fn: fn})
}

// SendArg is Send through a pre-bound function and argument — the
// steady-state hand-off path, which allocates nothing (a closure per
// crossing otherwise dominates a packet-forwarding fabric's garbage).
func (c *Channel) SendArg(at Time, fn func(any), arg any) {
	c.send(msg{at: at, argFn: fn, arg: arg})
}

func (c *Channel) send(m msg) {
	at := m.at
	now := c.from.eng.Now()
	if at <= satAdd(now, c.lookahead) {
		panic("sim: Channel.Send violates the lookahead contract")
	}
	to := c.to
	to.mu.Lock()
	if c.count > 0 {
		if last := c.q[(c.head+c.count-1)%len(c.q)]; at <= last.at {
			to.mu.Unlock()
			panic("sim: Channel.Send timestamps must strictly increase")
		}
	}
	m.sent = now
	c.push(m)
	if c.promise < now {
		c.promise = now
	}
	to.version++
	if st := c.from.st; st != nil {
		st.sent.Add(1)
	}
	if to.waiting {
		to.cond.Signal()
	}
	to.mu.Unlock()
	if now > c.sentPromise {
		c.sentPromise = now
	}
}

// push appends to the ring, growing it when full. Caller holds to.mu.
func (c *Channel) push(m msg) {
	if c.count == len(c.q) {
		grown := make([]msg, max(8, 2*len(c.q)))
		for i := 0; i < c.count; i++ {
			grown[i] = c.q[(c.head+i)%len(c.q)]
		}
		c.q, c.head = grown, 0
	}
	c.q[(c.head+c.count)%len(c.q)] = m
	c.count++
}

// pop removes the head message. Caller holds to.mu.
func (c *Channel) pop() msg {
	m := c.q[c.head]
	c.q[c.head] = msg{}
	c.head = (c.head + 1) % len(c.q)
	c.count--
	return m
}

// shardState is the run-wide termination tracker. An island that is
// purely idle — empty engine, empty inbound queues — counts itself;
// when every island is idle at once and every message ever sent has
// been executed, the run is globally drained and everyone exits.
// (Message counting closes the race where a sender finishes its last
// event — whose Send already woke a receiver that had counted itself
// idle — before that receiver un-counts.)
type shardState struct {
	mu        sync.Mutex
	idle      int
	n         int
	done      atomic.Bool
	sent      atomic.Int64
	processed atomic.Int64
	islands   []*Island
}

func (st *shardState) wakeAll() {
	for _, isl := range st.islands {
		isl.mu.Lock()
		isl.cond.Broadcast()
		isl.mu.Unlock()
	}
}

// cand is one merge candidate: the engine's next event or an inbound
// channel head, keyed for the deterministic global order.
type cand struct {
	ch   *Channel // nil = the engine's own next event
	at   Time
	sent Time // scheduling instant (engine schedAt / channel msg.sent)
	from int  // origin island
	idx  int  // origin channel position (-1 for engine events)
}

// beats reports whether a orders before b under the global order:
// fire time, then scheduling instant, then origin island, then
// channel index.
func (a cand) beats(b cand) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	if a.sent != b.sent {
		return a.sent < b.sent
	}
	if a.from != b.from {
		return a.from < b.from
	}
	return a.idx < b.idx
}

// pickLocked merges the engine head with the inbound channel heads and
// computes the safe execution bound: the least promise+lookahead over
// the EMPTY inbound channels (a nonempty channel's head already bounds
// everything that can still arrive on it, since timestamps strictly
// increase per channel). chMin is the earliest queued channel head —
// engine events strictly before it need no merge at all. Caller holds
// isl.mu; engine access needs no lock (only this island's goroutine
// touches it).
func (isl *Island) pickLocked() (best cand, ok bool, safe, chMin Time) {
	safe, chMin = maxTime, maxTime
	if at, schedAt, has := isl.eng.NextEvent(); has {
		best, ok = cand{at: at, sent: schedAt, from: isl.id, idx: -1}, true
	}
	for _, c := range isl.in {
		if c.count == 0 {
			if s := satAdd(c.promise, c.lookahead); s < safe {
				safe = s
			}
			continue
		}
		m := c.q[c.head]
		if m.at < chMin {
			chMin = m.at
		}
		mc := cand{ch: c, at: m.at, sent: m.sent, from: c.from.id, idx: c.idx}
		if !ok || mc.beats(best) {
			best, ok = mc, true
		}
	}
	return best, ok, safe, chMin
}

// queuedLocked counts inbound messages not yet executed. Caller holds
// isl.mu.
func (isl *Island) queuedLocked() int {
	n := 0
	for _, c := range isl.in {
		n += c.count
	}
	return n
}

// publish raises the promise on every outbound channel whose last
// published bound lags value. While busy (force=false) a channel is
// only touched once the clock has advanced a quantum past its last
// publication, bounding lock traffic to a fraction of the lookahead;
// at a blocking point (force=true) every lagging channel is raised so
// neighbors can make maximal progress.
func (isl *Island) publish(value Time, force bool) {
	for _, c := range isl.out {
		if value <= c.sentPromise {
			continue
		}
		if !force && value < satAdd(c.sentPromise, c.pubQuantum) {
			continue
		}
		to := c.to
		to.mu.Lock()
		if c.promise < value {
			c.promise = value
			to.version++
			if to.waiting {
				to.cond.Signal()
			}
		}
		to.mu.Unlock()
		c.sentPromise = value
	}
}

// runLoop is one island's executor: merge, execute while safe, else
// promise and wait. Lock order is strict — isl.mu is never held while
// taking another island's mu or st.mu (promises are published after
// snapshotting the decision under the version counter, and the
// snapshot is revalidated before sleeping).
func (isl *Island) runLoop() {
	st := isl.st
	for {
		isl.mu.Lock()
		best, ok, safe, chMin := isl.pickLocked()
		if ok && best.at <= safe {
			if best.ch == nil {
				isl.mu.Unlock()
				// Lock-free batch: every engine event strictly before the
				// earliest queued channel head and within the safe bound
				// wins the merge outright, so run them all without
				// re-taking the lock. The snapshot stays valid mid-batch:
				// per-channel timestamps strictly increase (queued heads
				// cannot drop below chMin) and any fresh arrival lands
				// strictly beyond safe. Events AT chMin or past safe fall
				// back to the locked merge for the deterministic
				// tie-break.
				for {
					isl.eng.Step()
					isl.publish(isl.eng.Now(), false)
					at, _, has := isl.eng.NextEvent()
					if !has || at > safe || at >= chMin {
						break
					}
				}
			} else {
				m := best.ch.pop()
				isl.mu.Unlock()
				if now := isl.eng.Now(); m.at > now {
					isl.eng.Advance(m.at - now)
				}
				st.processed.Add(1)
				m.run()
				isl.publish(isl.eng.Now(), false)
			}
			continue
		}
		// Nothing executable. lbts is the clock value we are guaranteed
		// to reach before sending anything else: every candidate is past
		// safe, and any future arrival is past safe too (promise +
		// lookahead is inclusive; real messages land strictly beyond it).
		v := isl.version
		pureIdle := !ok && isl.queuedLocked() == 0
		lbts := isl.eng.Now()
		if limit := satAdd(safe, 1); limit > lbts {
			lbts = limit
		}
		isl.mu.Unlock()
		isl.publish(lbts, true)
		if pureIdle {
			st.mu.Lock()
			st.idle++
			if st.idle == st.n && st.sent.Load() == st.processed.Load() {
				st.done.Store(true)
				st.mu.Unlock()
				st.wakeAll()
				return
			}
			st.mu.Unlock()
		}
		isl.mu.Lock()
		if isl.version == v && !st.done.Load() {
			isl.waiting = true
			isl.cond.Wait()
			isl.waiting = false
		}
		isl.mu.Unlock()
		if pureIdle {
			st.mu.Lock()
			st.idle--
			st.mu.Unlock()
		}
		if st.done.Load() {
			return
		}
	}
}

// RunIslands drives the islands to global completion: every engine
// drained, every channel empty. spawn must run its argument for each
// i in 0..n-1 on concurrent goroutines and return once all have
// finished — each island needs its own goroutine (multiplexing
// blocking islands onto fewer workers deadlocks), so callers pass a
// one-worker-per-island fan-out (internal/netsim routes this through
// internal/parallel). Channels persist across calls; promises are
// (re)seeded from the senders' current clocks, so a fabric that
// settles, loads and runs again never replays the null-message climb
// from time zero.
func RunIslands(islands []*Island, spawn func(n int, run func(i int))) {
	st := &shardState{n: len(islands), islands: islands}
	for _, isl := range islands {
		isl.st = st
		now := isl.eng.Now()
		for _, c := range isl.out {
			c.to.mu.Lock()
			if c.promise < now {
				c.promise = now
			}
			c.to.mu.Unlock()
			if c.sentPromise < now {
				c.sentPromise = now
			}
		}
	}
	spawn(len(islands), func(i int) { islands[i].runLoop() })
	for _, isl := range islands {
		isl.st = nil
		isl.eng.flushMeter()
	}
}
