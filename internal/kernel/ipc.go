package kernel

import (
	"errors"

	"xok/internal/sim"
)

// Xok IPC: a small protected message facility between environments.
// ExOS layers UNIX signals on it and uses it "to safely update parent
// and child process state" (Section 5.2.1).

// IPCMsg is one message.
type IPCMsg struct {
	From EnvID
	Kind int
	A, B int64
}

// ErrIPCDead reports a send to an exited environment.
var ErrIPCDead = errors.New("kernel: IPC target is dead")

// IPCSend enqueues a message for target and wakes it if it is blocked.
// One system call.
func (e *Env) IPCSend(target *Env, m IPCMsg) error {
	e.Syscall(sim.CopyCost(24))
	if target == nil || target.state == envDead {
		return ErrIPCDead
	}
	m.From = e.id
	target.ipcQ = append(target.ipcQ, m)
	e.k.Wake(target)
	return nil
}

// IPCTryRecv dequeues the next pending message without blocking.
func (e *Env) IPCTryRecv() (IPCMsg, bool) {
	e.Syscall(sim.CopyCost(24))
	if len(e.ipcQ) == 0 {
		return IPCMsg{}, false
	}
	m := e.ipcQ[0]
	e.ipcQ = e.ipcQ[1:]
	return m, true
}

// IPCRecv blocks until a message arrives, then dequeues it.
func (e *Env) IPCRecv() IPCMsg {
	for {
		if m, ok := e.IPCTryRecv(); ok {
			return m
		}
		e.Block()
	}
}

// IPCPending reports queued messages without a trap (the queue head
// lives in exposed memory).
func (e *Env) IPCPending() int { return len(e.ipcQ) }
