package kernel

import (
	"bytes"
	"testing"

	"xok/internal/disk"
	"xok/internal/fault"
	"xok/internal/sim"
)

func TestEnvKillMidSyscall(t *testing.T) {
	plan := &fault.Plan{KillSyscallNth: 3, KillEnv: "victim"}
	k := New(Config{Name: "xok", MemPages: 256, Faults: plan})

	completed := 0
	victim := k.Spawn("victim", func(e *Env) {
		for i := 0; i < 10; i++ {
			e.Syscall(100)
			completed++
		}
	})
	waited := false
	bystanderDone := false
	k.Spawn("waiter", func(e *Env) {
		e.WaitFor(victim)
		waited = true
	})
	k.Spawn("bystander", func(e *Env) {
		for i := 0; i < 5; i++ {
			e.Syscall(100)
		}
		bystanderDone = true
	})
	k.Run()

	if completed != 2 {
		t.Errorf("victim completed %d syscalls, want 2 (killed inside the 3rd)", completed)
	}
	if !victim.Dead() {
		t.Error("victim not dead")
	}
	if !waited {
		t.Error("WaitFor on the killed env never returned")
	}
	if !bystanderDone {
		t.Error("bystander disturbed by the kill")
	}
	if !plan.Killed() {
		t.Error("plan did not latch the kill")
	}
	if k.LiveEnvs() != 0 {
		t.Errorf("LiveEnvs = %d after drain", k.LiveEnvs())
	}
}

func TestKillEnvNameFilter(t *testing.T) {
	plan := &fault.Plan{KillSyscallNth: 1, KillEnv: "nobody"}
	k := New(Config{Name: "xok", MemPages: 256, Faults: plan})
	ok := false
	k.Spawn("worker", func(e *Env) {
		e.Syscall(0)
		ok = true
	})
	k.Run()
	if !ok || plan.Killed() {
		t.Fatalf("kill fired for a non-matching env (ok=%v killed=%v)", ok, plan.Killed())
	}
}

func TestCrashCapturesMediaNotInFlight(t *testing.T) {
	k := New(Config{Name: "xok", MemPages: 256, DiskSize: 128})
	durable := bytes.Repeat([]byte{0xD0}, sim.DiskBlockSize)
	k.Disk.PokeBlock(1, durable)
	page := bytes.Repeat([]byte{0xEE}, sim.DiskBlockSize)
	k.Disk.Submit(&disk.Request{Write: true, Block: 2, Count: 1, Pages: [][]byte{page}})
	img := k.Crash(10) // long before the write's service completes
	if !bytes.Equal(img[1], durable) {
		t.Error("durable block missing from crash image")
	}
	if _, ok := img[2]; ok {
		t.Error("in-flight write reached the crash image without torn writes armed")
	}
}
