package kernel

import (
	"testing"

	"xok/internal/sim"
	"xok/internal/wkpred"
)

func TestWaitAnyOf(t *testing.T) {
	k := newXok()
	var fast, slow *Env
	fast = k.Spawn("fast", func(e *Env) { e.Use(sim.FromMillis(1)) })
	slow = k.Spawn("slow", func(e *Env) { e.Use(sim.FromMillis(50)) })
	var sawFastDead, sawSlowAlive bool
	k.Spawn("waiter", func(e *Env) {
		e.WaitAnyOf([]*Env{fast, slow})
		sawFastDead = fast.Dead()
		sawSlowAlive = !slow.Dead()
	})
	k.Run()
	if !sawFastDead {
		t.Error("WaitAnyOf returned before any child died")
	}
	if !sawSlowAlive {
		t.Error("WaitAnyOf waited for all children, not any")
	}
}

func TestWaitAnyOfEmptyAndDead(t *testing.T) {
	k := newXok()
	d := k.Spawn("d", func(e *Env) {})
	k.Run()
	ok := false
	k.Spawn("w", func(e *Env) {
		e.WaitAnyOf(nil)       // empty: immediate
		e.WaitAnyOf([]*Env{d}) // already dead: immediate
		e.WaitAnyOf([]*Env{nil, d})
		ok = true
	})
	k.Run()
	if !ok {
		t.Fatal("WaitAnyOf blocked on empty/dead sets")
	}
}

func TestShutdownKillsPredicateSleeper(t *testing.T) {
	k := newXok()
	var word int64
	k.Spawn("sleeper", func(e *Env) {
		p, _ := wkpred.Compile(wkpred.Cmp(wkpred.EQ, wkpred.Load(&word), wkpred.Const(1)))
		e.SleepOn(p, 0)
		t.Error("predicate sleeper resumed after shutdown")
	})
	k.Run()
	k.Shutdown() // must not hang or panic
	if k.Eng.Pending() > 1 {
		t.Logf("pending events after shutdown: %d (harmless)", k.Eng.Pending())
	}
}

func TestUseZeroIsNoop(t *testing.T) {
	k := newXok()
	k.Spawn("z", func(e *Env) {
		e.Use(0)
		e.Use(0)
	})
	k.Run()
	if k.Now() > sim.FromMicros(50) {
		t.Fatalf("Use(0) consumed time: %v", k.Now())
	}
}

func TestSpawnFromInsideEnv(t *testing.T) {
	k := newXok()
	order := []string{}
	k.Spawn("parent", func(e *Env) {
		e.Use(100)
		child := k.Spawn("child", func(c *Env) {
			order = append(order, "child")
		})
		e.WaitFor(child)
		order = append(order, "parent-after")
	})
	k.Run()
	if len(order) != 2 || order[0] != "child" || order[1] != "parent-after" {
		t.Fatalf("order = %v", order)
	}
}

func TestManyEnvironmentsDeterministic(t *testing.T) {
	run := func() sim.Time {
		k := newXok()
		for i := 0; i < 12; i++ {
			i := i
			k.Spawn("w", func(e *Env) {
				e.Use(sim.Time(1000 * (i + 1)))
				e.Syscall(50)
				e.Use(sim.Time(500 * (12 - i)))
			})
		}
		k.Run()
		return k.Now()
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("12-env schedule nondeterministic: %v vs %v", a, b)
	}
}

func TestIPCPendingExposed(t *testing.T) {
	k := newXok()
	var target *Env
	target = k.Spawn("t", func(e *Env) {
		e.Block()
		if e.IPCPending() != 2 {
			t.Errorf("pending = %d, want 2", e.IPCPending())
		}
		e.IPCTryRecv()
		e.IPCTryRecv()
		if _, ok := e.IPCTryRecv(); ok {
			t.Error("empty queue returned a message")
		}
	})
	k.Spawn("s", func(e *Env) {
		e.Use(100)
		e.IPCSend(target, IPCMsg{Kind: 1})
		e.IPCSend(target, IPCMsg{Kind: 2})
	})
	k.Run()
}
