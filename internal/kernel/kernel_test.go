package kernel

import (
	"testing"

	"xok/internal/cap"
	"xok/internal/sim"
	"xok/internal/wkpred"
)

func newXok() *Kernel {
	return New(Config{Name: "xok", MemPages: 256})
}

func TestSpawnRunsToCompletion(t *testing.T) {
	k := newXok()
	ran := false
	k.Spawn("a", func(e *Env) {
		e.Use(1000)
		ran = true
	})
	k.Run()
	if !ran {
		t.Fatal("environment body did not run")
	}
	if k.LiveEnvs() != 0 {
		t.Fatalf("live envs = %d, want 0", k.LiveEnvs())
	}
	if k.Now() < 1000 {
		t.Fatalf("clock = %v, want >= 1000 cycles", k.Now())
	}
}

func TestCPUTimeCharged(t *testing.T) {
	k := newXok()
	k.Spawn("burn", func(e *Env) {
		e.Use(sim.FromMillis(3))
	})
	k.Run()
	if k.Now() < sim.FromMillis(3) {
		t.Fatalf("clock = %v, want >= 3ms", k.Now())
	}
	if k.Now() > sim.FromMillis(4) {
		t.Fatalf("clock = %v, too much overhead", k.Now())
	}
}

func TestRoundRobinFairness(t *testing.T) {
	// Two CPU-bound environments must finish at roughly the same time,
	// each having run for its own total, interleaved.
	k := newXok()
	var doneA, doneB sim.Time
	work := 5 * DefaultQuantum
	k.Spawn("a", func(e *Env) {
		e.Use(work)
		doneA = k.Now()
	})
	k.Spawn("b", func(e *Env) {
		e.Use(work)
		doneB = k.Now()
	})
	k.Run()
	total := k.Now()
	if total < 2*work {
		t.Fatalf("total %v < combined work %v", total, 2*work)
	}
	// Interleaving: both finish in the last fifth of the run.
	if doneA < total*3/5 || doneB < total*3/5 {
		t.Fatalf("not interleaved: A at %v, B at %v, total %v", doneA, doneB, total)
	}
	if k.Stats.Get(sim.CtrCtxSwitches) < 8 {
		t.Fatalf("ctx switches = %d, want >= 8", k.Stats.Get(sim.CtrCtxSwitches))
	}
}

func TestShortJobNotStarvedByLongJob(t *testing.T) {
	k := newXok()
	var shortDone sim.Time
	k.Spawn("long", func(e *Env) { e.Use(100 * DefaultQuantum) })
	k.Spawn("short", func(e *Env) {
		e.Use(DefaultQuantum / 2)
		shortDone = k.Now()
	})
	k.Run()
	if shortDone > 3*DefaultQuantum {
		t.Fatalf("short job finished at %v; starved", shortDone)
	}
}

func TestCriticalSectionDefersPreemption(t *testing.T) {
	// A 3-quantum burst inside a critical section must run without
	// interleaving (elapsed == burst) even with a competitor runnable;
	// the same burst outside a critical section gets preempted and
	// takes longer.
	measure := func(critical bool) sim.Time {
		k := newXok()
		var start, end sim.Time
		k.Spawn("worker", func(e *Env) {
			if critical {
				e.BeginCritical()
			}
			start = k.Now()
			e.Use(3 * DefaultQuantum)
			end = k.Now()
			if critical {
				e.EndCritical()
			}
		})
		k.Spawn("competitor", func(e *Env) { e.Use(5 * DefaultQuantum) })
		k.Run()
		return end - start
	}
	crit := measure(true)
	normal := measure(false)
	if crit != 3*DefaultQuantum {
		t.Fatalf("critical burst elapsed %v, want exactly %v", crit, 3*DefaultQuantum)
	}
	if normal <= 3*DefaultQuantum {
		t.Fatalf("non-critical burst elapsed %v, expected preemption to stretch it", normal)
	}
}

func TestBlockAndWake(t *testing.T) {
	k := newXok()
	var waiter *Env
	sequence := []string{}
	waiter = k.Spawn("waiter", func(e *Env) {
		sequence = append(sequence, "block")
		e.Block()
		sequence = append(sequence, "woken")
	})
	k.Spawn("waker", func(e *Env) {
		e.Use(1000)
		sequence = append(sequence, "wake")
		k.Wake(waiter)
	})
	k.Run()
	want := []string{"block", "wake", "woken"}
	if len(sequence) != 3 {
		t.Fatalf("sequence = %v", sequence)
	}
	for i := range want {
		if sequence[i] != want[i] {
			t.Fatalf("sequence = %v, want %v", sequence, want)
		}
	}
}

func TestWakeupPredicate(t *testing.T) {
	k := newXok()
	var flag int64
	order := []string{}
	k.Spawn("sleeper", func(e *Env) {
		p, err := wkpred.Compile(wkpred.Cmp(wkpred.EQ, wkpred.Load(&flag), wkpred.Const(1)))
		if err != nil {
			t.Error(err)
			return
		}
		e.SleepOn(p, 0)
		order = append(order, "woke")
	})
	k.Spawn("setter", func(e *Env) {
		e.Use(sim.FromMillis(1))
		flag = 1
		order = append(order, "set")
		e.Use(100) // parking here triggers a dispatch that scans sleepers
	})
	k.Run()
	if len(order) != 2 || order[0] != "set" || order[1] != "woke" {
		t.Fatalf("order = %v", order)
	}
	if k.Stats.Get(sim.CtrPredEvals) == 0 {
		t.Fatal("no predicate evaluations recorded")
	}
}

func TestPredicateClockDeadline(t *testing.T) {
	// A sleeper with a clock-compare predicate on an otherwise idle
	// machine must wake at its deadline.
	k := newXok()
	deadline := sim.FromMillis(50)
	var wokeAt sim.Time
	k.Spawn("sleeper", func(e *Env) {
		p, _ := wkpred.Compile(wkpred.Cmp(wkpred.GE, wkpred.Clock(), wkpred.Const(int64(deadline))))
		e.SleepOn(p, deadline)
		wokeAt = k.Now()
	})
	k.Run()
	if wokeAt < deadline {
		t.Fatalf("woke at %v before deadline %v", wokeAt, deadline)
	}
	if wokeAt > deadline+sim.FromMillis(1) {
		t.Fatalf("woke at %v, long after deadline %v", wokeAt, deadline)
	}
}

func TestSleep(t *testing.T) {
	k := newXok()
	var wokeAt sim.Time
	k.Spawn("s", func(e *Env) {
		e.Sleep(sim.FromMillis(7))
		wokeAt = k.Now()
	})
	k.Run()
	if wokeAt < sim.FromMillis(7) || wokeAt > sim.FromMillis(8) {
		t.Fatalf("woke at %v, want ~7ms", wokeAt)
	}
}

func TestYieldToRunsTargetNext(t *testing.T) {
	k := newXok()
	var partner *Env
	order := []string{}
	partner = k.Spawn("partner", func(e *Env) {
		e.Block()
		order = append(order, "partner")
	})
	k.Spawn("filler", func(e *Env) {
		e.Use(100)
		order = append(order, "filler")
	})
	k.Spawn("yielder", func(e *Env) {
		e.Use(200)
		order = append(order, "yield")
		e.YieldTo(partner)
		order = append(order, "yielder-back")
	})
	k.Run()
	// After the yield, partner must run before the yielder resumes.
	yi, pi := -1, -1
	for i, s := range order {
		switch s {
		case "yield":
			yi = i
		case "partner":
			pi = i
		}
	}
	if yi == -1 || pi == -1 || pi < yi {
		t.Fatalf("order = %v", order)
	}
	for i, s := range order {
		if s == "yielder-back" && i < pi {
			t.Fatalf("yielder resumed before partner: %v", order)
		}
	}
}

func TestWaitFor(t *testing.T) {
	k := newXok()
	var child *Env
	var childDone, parentSaw sim.Time
	child = k.Spawn("child", func(e *Env) {
		e.Use(sim.FromMillis(5))
		childDone = k.Now()
	})
	k.Spawn("parent", func(e *Env) {
		e.WaitFor(child)
		parentSaw = k.Now()
	})
	k.Run()
	if parentSaw < childDone {
		t.Fatalf("parent resumed at %v before child exit at %v", parentSaw, childDone)
	}
	// WaitFor on a dead env returns immediately.
	k2 := newXok()
	var c2 *Env
	c2 = k2.Spawn("c", func(e *Env) {})
	k2.Run()
	done := false
	k2.Spawn("p", func(e *Env) {
		e.WaitFor(c2)
		done = true
	})
	k2.Run()
	if !done {
		t.Fatal("WaitFor(dead) blocked")
	}
}

func TestSyscallAccounting(t *testing.T) {
	k := newXok()
	k.Spawn("a", func(e *Env) {
		e.Syscall(100)
		e.Syscalls(3)
		e.LibCall(50)
	})
	k.Run()
	if got := k.Stats.Get(sim.CtrSyscalls); got != 4 {
		t.Fatalf("syscalls = %d, want 4", got)
	}
	if got := k.Stats.Get(sim.CtrLibCalls); got != 1 {
		t.Fatalf("libcalls = %d, want 1", got)
	}
}

func TestSoftwareRegions(t *testing.T) {
	k := newXok()
	owner := cap.New(true, 1, 7)
	k.Spawn("owner", func(e *Env) {
		e.Creds = cap.Credentials{owner}
		id := e.RegionCreate(128, owner)
		if err := e.RegionWrite(id, 10, []byte("hello")); err != nil {
			t.Errorf("write: %v", err)
		}
		buf := make([]byte, 5)
		if err := e.RegionRead(id, 10, buf); err != nil {
			t.Errorf("read: %v", err)
		}
		if string(buf) != "hello" {
			t.Errorf("read back %q", buf)
		}
		// Bounds.
		if err := e.RegionWrite(id, 126, []byte("xyz")); err != ErrRegionBounds {
			t.Errorf("bounds err = %v", err)
		}
		// Unknown region.
		if err := e.RegionRead(RegionID(99), 0, buf); err != ErrRegionUnknown {
			t.Errorf("unknown err = %v", err)
		}
		if err := e.RegionFree(id); err != nil {
			t.Errorf("free: %v", err)
		}
		if err := e.RegionFree(id); err != ErrRegionUnknown {
			t.Errorf("double free err = %v", err)
		}
	})
	k.Run()
}

func TestRegionProtection(t *testing.T) {
	k := newXok()
	owner := cap.New(true, 1, 7)
	var id RegionID
	k.Spawn("owner", func(e *Env) {
		e.Creds = cap.Credentials{owner}
		id = e.RegionCreate(64, owner)
	})
	k.Run()
	k.Spawn("intruder", func(e *Env) {
		e.Creds = cap.Credentials{cap.New(true, 1, 8)}
		if err := e.RegionWrite(id, 0, []byte("x")); err != ErrRegionDenied {
			t.Errorf("intruder write err = %v, want denied", err)
		}
		if err := e.RegionRead(id, 0, make([]byte, 1)); err != ErrRegionDenied {
			t.Errorf("intruder read err = %v, want denied", err)
		}
	})
	k.Run()
}

func TestIPC(t *testing.T) {
	k := newXok()
	var receiver *Env
	var got IPCMsg
	receiver = k.Spawn("recv", func(e *Env) {
		got = e.IPCRecv()
	})
	k.Spawn("send", func(e *Env) {
		e.Use(1000)
		if err := e.IPCSend(receiver, IPCMsg{Kind: 9, A: 1, B: 2}); err != nil {
			t.Errorf("send: %v", err)
		}
	})
	k.Run()
	if got.Kind != 9 || got.A != 1 || got.B != 2 {
		t.Fatalf("got = %+v", got)
	}
	if got.From != 1 {
		t.Fatalf("From = %d, want sender id 1", got.From)
	}
}

func TestIPCToDeadEnv(t *testing.T) {
	k := newXok()
	var target *Env
	target = k.Spawn("t", func(e *Env) {})
	k.Run()
	k.Spawn("s", func(e *Env) {
		if err := e.IPCSend(target, IPCMsg{}); err != ErrIPCDead {
			t.Errorf("err = %v, want ErrIPCDead", err)
		}
	})
	k.Run()
}

func TestShutdownKillsBlockedEnvs(t *testing.T) {
	k := newXok()
	k.Spawn("stuck", func(e *Env) {
		e.Block() // never woken
		t.Error("stuck env resumed after kill")
	})
	k.Run()
	if k.LiveEnvs() != 1 {
		t.Fatalf("live = %d, want 1 blocked env", k.LiveEnvs())
	}
	k.Shutdown()
}

func TestChargeInterruptStealsFromCurrent(t *testing.T) {
	k := newXok()
	k.Spawn("victim", func(e *Env) {
		e.Use(1000)
	})
	// Fire an interrupt while the env is running.
	k.Eng.At(500, func() { k.ChargeInterrupt(2000) })
	k.Run()
	if k.Now() < 3000 {
		t.Fatalf("clock = %v, interrupt cycles not charged", k.Now())
	}
}

func TestDeterminism(t *testing.T) {
	// Two identical multi-env runs must produce identical clocks and
	// counters.
	run := func() (sim.Time, string) {
		k := newXok()
		var a, b *Env
		a = k.Spawn("a", func(e *Env) {
			e.Use(sim.FromMillis(3))
			k.Wake(b)
			e.Use(sim.FromMillis(2))
		})
		b = k.Spawn("b", func(e *Env) {
			e.Block()
			e.Use(sim.FromMillis(1))
			e.YieldTo(a)
			e.Syscall(500)
		})
		k.Run()
		return k.Now(), k.Stats.String()
	}
	t1, s1 := run()
	t2, s2 := run()
	if t1 != t2 || s1 != s2 {
		t.Fatalf("nondeterministic runs:\n%v vs %v\n%s\nvs\n%s", t1, t2, s1, s2)
	}
}
