// Package kernel implements the simulated Xok exokernel: environments
// (the hardware-specific state needed to run a process, Section 5.1),
// a round-robin time-sliced CPU scheduler with explicit slice
// start/end upcalls, directed yields, wakeup-predicate sleeping,
// software regions, robust critical sections, and IPC.
//
// # Execution model
//
// Each environment's code runs in its own goroutine, but the simulation
// enforces strict token handoff: exactly one goroutine — either the
// event loop or the current environment — runs at a time. An
// environment's code executes in zero virtual time except where it
// explicitly charges cycles (Env.Use and the syscall helpers); charged
// cycles are burned by the scheduler in quantum-sized slices
// interleaved round-robin with other runnable environments, so CPU
// contention, context-switch overhead and time-slice preemption are
// modelled faithfully and deterministically.
//
// The same Kernel type also serves as the substrate for the monolithic
// BSD personalities (internal/bsdos): Config selects the trap cost and
// scheduling quantum, while the OS personalities built on top decide
// what work happens in "the kernel" (traps) versus libraries.
package kernel

import (
	"fmt"

	"xok/internal/disk"
	"xok/internal/fault"
	"xok/internal/mem"
	"xok/internal/sim"
	"xok/internal/trace"
)

// Config parameterizes a machine's kernel.
type Config struct {
	Name     string   // "xok", "freebsd", "openbsd", ...
	TrapCost sim.Time // one kernel crossing (trap + return)
	Quantum  sim.Time // scheduler time slice
	MemPages int      // physical memory size in pages
	DiskSize int64    // disk size in blocks (0 = no disk)

	// Spindles > 1 builds the disk as a RAID-0 stripe set
	// (StripeUnit blocks per unit; default 16).
	Spindles   int
	StripeUnit int64

	// Trace attaches an observability tracer to this machine. Nil —
	// the default — turns tracing off at the cost of one nil check
	// per record point. The tracer is per-machine state: machines
	// running concurrently must not share one (merge per-machine
	// tracers afterwards with trace.Tracer.Merge).
	Trace *trace.Tracer

	// Faults attaches a deterministic fault plan (internal/fault): the
	// disk consults it for media errors and torn writes, Env.Syscall
	// for env kills. Nil — the default — injects nothing and costs one
	// nil check per decision point, the same contract as Trace.
	Faults *fault.Plan

	// Eng, when non-nil, attaches the machine to a shared event engine
	// instead of building a private one: all machines on one engine
	// share a single virtual clock, which is how a netsim.Topology
	// ties a cluster of machines to one network fabric. Machines on a
	// shared engine still serialize their environment goroutines
	// correctly (the token-handoff protocol is per-kernel), but they
	// must all run from the same host goroutine, and the per-machine
	// engine event hook is skipped — an event count spanning machines
	// belongs to no single one of them.
	Eng *sim.Engine
}

// DefaultQuantum is a 10-ms scheduler slice.
const DefaultQuantum = 10 * sim.Millisecond

// Kernel is one simulated machine's privileged core.
type Kernel struct {
	Eng   *sim.Engine
	Stats *sim.Stats
	Mem   *mem.PhysMem
	Disk  *disk.Disk

	// Trace is this machine's span/histogram sink (nil = tracing off)
	// and TracePID its process id within the tracer. Subsystems built
	// on the kernel (netsim, cffs, xn) emit through these.
	Trace    *trace.Tracer
	TracePID int64

	// Faults is the machine's fault plan (nil = no injection).
	// Subsystems that need fault decisions (netsim) read it here, the
	// same way they reach Trace.
	Faults *fault.Plan

	cfg      Config
	nextEnv  EnvID
	envs     map[EnvID]*Env
	runq     []*Env // runnable, round-robin order (live: runq[runqHead:])
	runqHead int    // index of the queue front within runq
	current  *Env
	sleeprs  []*Env // predicate sleepers, in sleep order

	dispatchPending bool
	parkCh          chan parkMsg
	liveEnvs        int

	regions    map[RegionID]*region
	nextRegion RegionID
}

// New builds a machine: engine, stats, memory, optional disk, kernel.
func New(cfg Config) *Kernel {
	if cfg.TrapCost == 0 {
		cfg.TrapCost = sim.CostTrapXok
	}
	if cfg.Quantum == 0 {
		cfg.Quantum = DefaultQuantum
	}
	if cfg.MemPages == 0 {
		cfg.MemPages = 16384 // 64 MB
	}
	eng := cfg.Eng
	shared := eng != nil
	if eng == nil {
		eng = sim.NewEngine()
	}
	st := sim.NewStats()
	k := &Kernel{
		Eng:     eng,
		Stats:   st,
		Mem:     mem.New(cfg.MemPages, st),
		Faults:  cfg.Faults,
		cfg:     cfg,
		envs:    make(map[EnvID]*Env),
		parkCh:  make(chan parkMsg),
		regions: make(map[RegionID]*region),
	}
	if cfg.DiskSize > 0 {
		opts := []disk.Option{disk.WithFaults(cfg.Faults)}
		if cfg.Spindles > 1 {
			opts = append(opts, disk.WithStriping(cfg.Spindles, cfg.StripeUnit))
		}
		k.Disk = disk.New(eng, st, cfg.DiskSize, opts...)
	}
	tr := cfg.Trace
	if tr.Enabled() {
		k.Trace = tr
		k.TracePID = tr.AddProcess(cfg.Name)
		pid := k.TracePID
		if !shared {
			eng.SetEventHook(func(at sim.Time) { tr.Count(pid, "events", 1) })
		}
		if k.Disk != nil {
			k.Disk.SetTrace(tr, pid)
		}
	}
	return k
}

// Config returns the kernel's configuration.
func (k *Kernel) Config() Config { return k.cfg }

// TrapCost returns one kernel-crossing cost for this machine.
func (k *Kernel) TrapCost() sim.Time { return k.cfg.TrapCost }

// Now returns the current virtual time.
func (k *Kernel) Now() sim.Time { return k.Eng.Now() }

// parkMsg is what an environment's goroutine sends when it hands the
// token back to the scheduler.
type parkMsg struct {
	env  *Env
	kind parkKind
	n    sim.Time // useCPU: cycles requested
	to   *Env     // yieldTo target
}

type parkKind uint8

const (
	parkUse parkKind = iota
	parkBlock
	parkYieldTo
	parkExit
)

// Spawn creates an environment running body and makes it runnable.
// The body executes in its own goroutine under the token protocol; it
// may only touch kernel state between Spawn and its return.
func (k *Kernel) Spawn(name string, body func(*Env)) *Env {
	e := &Env{
		k:      k,
		id:     k.nextEnv,
		name:   name,
		state:  envBlocked, // makeRunnable queues it below
		resume: make(chan bool),
		PT:     mem.NewPageTable(),
	}
	k.nextEnv++
	k.envs[e.id] = e
	k.liveEnvs++
	if k.Trace != nil {
		k.Trace.NameLane(k.TracePID, e.TraceLane(), fmt.Sprintf("env %d (%s)", e.id, name))
	}
	go func() {
		defer func() {
			if r := recover(); r != nil {
				if r == errKilled {
					return // Shutdown poisoned us; die silently.
				}
				panic(r)
			}
		}()
		if !<-e.resume {
			panic(errKilled)
		}
		body(e)
		e.park(parkMsg{env: e, kind: parkExit})
	}()
	k.makeRunnable(e)
	return e
}

// Env returns the environment with the given id, or nil.
func (k *Kernel) Env(id EnvID) *Env { return k.envs[id] }

// LiveEnvs reports how many environments have not exited.
func (k *Kernel) LiveEnvs() int { return k.liveEnvs }

func (k *Kernel) makeRunnable(e *Env) {
	if e.state == envDead {
		return
	}
	if e.state == envRunnable || e.state == envRunning {
		return
	}
	e.state = envRunnable
	e.pred = nil
	if e.timeout.Pending() {
		k.Eng.Cancel(e.timeout)
		e.timeout = sim.Event{}
	}
	// Remove from sleepers if present.
	for i, s := range k.sleeprs {
		if s == e {
			k.sleeprs = append(k.sleeprs[:i], k.sleeprs[i+1:]...)
			break
		}
	}
	k.runqPush(e)
	k.kickDispatch()
}

// The run queue is a head-indexed deque over one backing array:
// runq[runqHead:] are the runnable environments in order. Popping
// advances the head instead of re-slicing the array away — the old
// `runq = runq[1:]` pattern made every wake/dispatch cycle abandon its
// backing storage, so a long campaign re-allocated the queue tens of
// thousands of times.

func (k *Kernel) runqPush(e *Env) { k.runq = append(k.runq, e) }

func (k *Kernel) runqPop() *Env {
	if k.runqHead == len(k.runq) {
		return nil
	}
	e := k.runq[k.runqHead]
	k.runq[k.runqHead] = nil
	k.runqHead++
	if k.runqHead == len(k.runq) {
		k.runq = k.runq[:0]
		k.runqHead = 0
	}
	return e
}

// runqPromote moves e (already queued) to the front of the queue.
func (k *Kernel) runqPromote(e *Env) {
	live := k.runq[k.runqHead:]
	for i, r := range live {
		if r == e {
			copy(live[1:i+1], live[:i])
			live[0] = e
			break
		}
	}
}

// kickDispatch arranges for a dispatch pass if the CPU is idle.
func (k *Kernel) kickDispatch() {
	if k.current != nil || k.dispatchPending {
		return
	}
	k.dispatchPending = true
	k.Eng.AfterArg(0, kickDispatchArg, k)
}

// kickDispatchArg and dispatchArg are the scheduler's timer callbacks
// in sim.Engine's allocation-free AfterArg form: one package-level
// func each, the kernel passed through arg, no closure allocated per
// context switch.
func kickDispatchArg(a any) {
	k := a.(*Kernel)
	k.dispatchPending = false
	k.dispatch()
}

func dispatchArg(a any) { a.(*Kernel).dispatch() }

// dispatch is the scheduler: wake satisfied predicate sleepers, then
// run the next environment.
func (k *Kernel) dispatch() {
	if k.current != nil {
		return
	}
	k.scanSleepers()
	e := k.runqPop()
	if e == nil {
		return
	}
	k.current = e
	e.state = envRunning
	e.sliceLeft = k.cfg.Quantum
	// Slice-start notification upcall (Section 5.1: "explicit
	// notification of the beginning and the end of a time slice").
	k.Stats.Inc(sim.CtrUpcalls)
	if k.Trace != nil {
		k.Trace.Instant(k.TracePID, e.TraceLane(), "upcall", "slice-start", k.Eng.Now())
	}
	e.burst += sim.CostUpcall
	k.step(e)
}

// scanSleepers evaluates wakeup predicates "when an environment is
// about to be scheduled" and moves satisfied sleepers to the run
// queue.
func (k *Kernel) scanSleepers() {
	now := k.Eng.Now()
	for i := 0; i < len(k.sleeprs); {
		e := k.sleeprs[i]
		if e.pred == nil {
			i++
			continue
		}
		k.Stats.Inc(sim.CtrPredEvals)
		if e.pred.Eval(now) {
			// makeRunnable removes it from sleeprs; don't advance i.
			k.makeRunnable(e)
			continue
		}
		i++
	}
}

// step advances the current environment: burn owed CPU in slice-sized
// pieces, then resume its code.
func (k *Kernel) step(e *Env) {
	if e != k.current {
		return
	}
	if e.burst > 0 {
		grant := e.burst
		if !e.inCritical && grant > e.sliceLeft {
			grant = e.sliceLeft
		}
		if grant == 0 { // slice expired with work left
			k.rotate(e)
			return
		}
		e.grant = grant
		k.Eng.AfterArg(grant, burnGrantArg, e)
		return
	}
	if e.sliceLeft == 0 && !e.inCritical {
		k.rotate(e)
		return
	}
	k.resume(e)
}

// rotate preempts e at end of slice: slice-end upcall, context switch,
// requeue.
func (k *Kernel) rotate(e *Env) {
	k.Stats.Inc(sim.CtrUpcalls)
	k.Stats.Inc(sim.CtrCtxSwitches)
	if k.Trace != nil {
		now := k.Eng.Now()
		k.Trace.Instant(k.TracePID, e.TraceLane(), "upcall", "slice-end", now)
		k.Trace.Span(k.TracePID, e.TraceLane(), "kernel", "ctx-switch",
			now, now+sim.CostContextSwitch+sim.CostUpcall)
	}
	k.current = nil
	e.state = envRunnable
	k.runqPush(e)
	k.Eng.AfterArg(sim.CostContextSwitch+sim.CostUpcall, dispatchArg, k)
}

// burnGrantArg finishes one CPU burn slice for the environment in arg
// (the grant was stashed in e.grant by step; only one burn event can
// be outstanding per environment, because its code is parked while the
// scheduler burns its cycles).
func burnGrantArg(a any) {
	e := a.(*Env)
	grant := e.grant
	e.burst -= grant
	e.cpuUsed += grant
	if e.sliceLeft >= grant {
		e.sliceLeft -= grant
	} else {
		e.sliceLeft = 0
	}
	e.k.step(e)
}

// resume hands the token to e's goroutine and processes the park
// message it eventually sends back.
func (k *Kernel) resume(e *Env) {
	e.resume <- true
	msg := <-k.parkCh
	k.handlePark(msg)
}

func (k *Kernel) handlePark(msg parkMsg) {
	e := msg.env
	switch msg.kind {
	case parkUse:
		e.burst += msg.n
		k.step(e)
	case parkBlock:
		k.current = nil
		e.state = envBlocked
		if e.pred != nil {
			k.sleeprs = append(k.sleeprs, e)
		}
		k.Stats.Inc(sim.CtrCtxSwitches)
		if k.Trace != nil {
			now := k.Eng.Now()
			k.Trace.Span(k.TracePID, e.TraceLane(), "kernel", "ctx-switch",
				now, now+sim.CostContextSwitch)
		}
		k.Eng.AfterArg(sim.CostContextSwitch, dispatchArg, k)
	case parkYieldTo:
		k.current = nil
		e.state = envRunnable
		k.runqPush(e)
		if msg.to != nil && msg.to.state == envRunnable {
			k.runqPromote(msg.to)
		}
		k.Eng.AfterArg(sim.CostYieldDirected, dispatchArg, k)
	case parkExit:
		k.current = nil
		e.state = envDead
		k.liveEnvs--
		delete(k.envs, e.id)
		if e.exitWait != nil {
			for _, w := range e.exitWait {
				k.makeRunnable(w)
			}
			e.exitWait = nil
		}
		k.Eng.AfterArg(sim.CostContextSwitch, dispatchArg, k)
	}
}

// Run processes events until the machine is idle (no events pending;
// all environments either exited or blocked forever).
func (k *Kernel) Run() { k.Eng.Run() }

// RunUntil processes events until time t.
func (k *Kernel) RunUntil(t sim.Time) { k.Eng.RunUntil(t) }

// Crash cuts the machine's power at virtual time at: events run to
// that instant, the surviving disk image is captured (including torn
// in-flight writes when the fault plan arms them), and every
// environment dies. The returned image is what a fresh machine
// remounts — the crash-recovery path of Section 4.4.
func (k *Kernel) Crash(at sim.Time) disk.Image {
	k.RunUntil(at)
	var img disk.Image
	if k.Disk != nil {
		img = k.Disk.CrashImage()
	}
	k.Shutdown()
	return img
}

// Shutdown kills every live environment goroutine. Call when a test or
// benchmark finishes with environments still blocked.
func (k *Kernel) Shutdown() {
	for _, e := range k.envs {
		if e.state != envDead && e.state != envRunning {
			e.state = envDead
			e.resume <- false
		}
	}
}

// Release is Shutdown plus teardown-for-reuse: physical memory and the
// disk hand their 4-KB buffers back to bufpool so the next machine
// boots from recycled storage instead of fresh heap. The machine is
// unusable afterwards (Mem is nil, the disk is empty) — any late
// access fails loudly instead of silently corrupting pooled buffers.
// Only call from harnesses that own the machine outright and are done
// with every reference into it, including disk images obtained via
// Snapshot (copies — safe) and crash images already handed off.
func (k *Kernel) Release() {
	k.Shutdown()
	if k.Mem != nil {
		k.Mem.Recycle()
		k.Mem = nil
	}
	if k.Disk != nil {
		k.Disk.Recycle()
	}
}

// ChargeInterrupt accounts interrupt CPU time: if an environment is
// running, the interrupt steals cycles from it; otherwise the CPU was
// idle and the cost vanishes into idle time.
func (k *Kernel) ChargeInterrupt(c sim.Time) {
	if k.current != nil {
		k.current.burst += c
	}
}

// String identifies the kernel.
func (k *Kernel) String() string {
	return fmt.Sprintf("kernel(%s)", k.cfg.Name)
}
