package kernel

import (
	"testing"

	"xok/internal/disk"
	"xok/internal/sim"
	"xok/internal/trace"
)

// TestTracingWiring attaches a tracer to a machine and checks that the
// kernel and disk layers actually emit through it: syscall spans,
// context-switch spans, disk queue/service spans, latency histograms,
// and the engine's per-event counter.
func TestTracingWiring(t *testing.T) {
	tr := trace.New()
	k := New(Config{Name: "traced", MemPages: 256, DiskSize: 4096, Trace: tr})
	if k.Trace != tr {
		t.Fatal("kernel did not adopt the configured tracer")
	}

	done := false
	k.Spawn("worker", func(e *Env) {
		e.Syscall(1000)
		e.Syscall(0)
		ioDone := false
		k.Disk.Submit(&disk.Request{Block: 10, Count: 2,
			Done: func(*disk.Request) { ioDone = true; k.Wake(e) }})
		for !ioDone {
			e.Block()
		}
		done = true
	})
	k.Run()
	if !done {
		t.Fatal("worker never finished")
	}

	var sawSyscall, sawDisk bool
	for _, s := range tr.Spans() {
		switch {
		case s.Cat == "kernel" && s.Name == "syscall":
			sawSyscall = true
			if s.End <= s.Begin {
				t.Fatalf("zero-length syscall span: %+v", s)
			}
		case s.Cat == "disk":
			sawDisk = true
		}
	}
	if !sawSyscall {
		t.Fatal("no syscall spans recorded")
	}
	if !sawDisk {
		t.Fatal("no disk spans recorded")
	}
	if h := tr.Hist(k.TracePID, "kernel.syscall"); h == nil || h.Count() != 2 {
		t.Fatalf("kernel.syscall histogram = %+v, want 2 samples", h)
	}
	if h := tr.Hist(k.TracePID, "disk.service"); h == nil || h.Count() == 0 {
		t.Fatal("disk.service histogram empty")
	}
}

// TestTracingConfigOnly checks the tracer is pure per-machine config:
// a machine built without one carries zero tracer state (there is no
// package-global tracer to pick up), and a configured tracer on one
// machine never sees another machine's activity.
func TestTracingConfigOnly(t *testing.T) {
	tr := trace.New()
	k := New(Config{Name: "traced", MemPages: 64, Trace: tr})
	k.Spawn("w", func(e *Env) { e.Syscall(100) })
	k.Run()

	k2 := New(Config{Name: "untraced", MemPages: 64})
	if k2.Trace != nil {
		t.Fatal("tracer attached with tracing off")
	}
	k2.Spawn("w", func(e *Env) { e.Syscall(100) })
	k2.Run() // must not record or crash

	h := tr.Hist(k.TracePID, "kernel.syscall")
	if h == nil || h.Count() != 1 {
		t.Fatalf("traced machine histogram = %+v, want exactly its own 1 sample", h)
	}
}

// TestTracingEventCounter checks the engine hook feeds the per-machine
// event counter and stays deterministic (same run, same count).
func TestTracingEventCounter(t *testing.T) {
	run := func() (int, sim.Time) {
		tr := trace.New()
		k := New(Config{Name: "m", MemPages: 64, Trace: tr})
		k.Spawn("w", func(e *Env) {
			for i := 0; i < 10; i++ {
				e.Syscall(500)
			}
		})
		k.Run()
		var buf noopWriter
		if err := tr.WriteHistReport(&buf); err != nil {
			t.Fatal(err)
		}
		return tr.Events(), k.Now()
	}
	ev1, t1 := run()
	ev2, t2 := run()
	if ev1 == 0 {
		t.Fatal("no events recorded")
	}
	if ev1 != ev2 || t1 != t2 {
		t.Fatalf("tracing broke determinism: %d@%v vs %d@%v", ev1, t1, ev2, t2)
	}
}

type noopWriter struct{}

func (noopWriter) Write(p []byte) (int, error) { return len(p), nil }
