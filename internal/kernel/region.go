package kernel

import (
	"errors"

	"xok/internal/cap"
	"xok/internal/sim"
)

// Software regions (Section 3.3): "areas of memory that can only be
// read or written through system calls, provide sub-page protection and
// fault isolation". ExOS uses them to protect pipe buffers and (in its
// planned fully-protected mode) the shared UNIX tables.

// RegionID names a software region.
type RegionID int

type region struct {
	data  []byte
	guard cap.Capability
}

// Region errors.
var (
	ErrRegionUnknown = errors.New("kernel: unknown software region")
	ErrRegionDenied  = errors.New("kernel: region capability check failed")
	ErrRegionBounds  = errors.New("kernel: region access out of bounds")
)

// RegionCreate allocates a software region of size bytes guarded by
// guard. Charged as one system call.
func (e *Env) RegionCreate(size int, guard cap.Capability) RegionID {
	k := e.k
	id := k.nextRegion
	k.nextRegion++
	k.regions[id] = &region{data: make([]byte, size), guard: guard}
	e.Syscall(sim.Time(size) / 64) // zeroing, amortized
	return id
}

// RegionWrite copies buf into the region at off. The copy runs inside
// the kernel: one trap plus the copy cost, after a capability check.
func (e *Env) RegionWrite(id RegionID, off int, buf []byte) error {
	k := e.k
	r, ok := k.regions[id]
	e.Syscall(sim.CopyCost(len(buf)))
	if !ok {
		return ErrRegionUnknown
	}
	if !e.Creds.Grants(r.guard, true) {
		return ErrRegionDenied
	}
	if off < 0 || off+len(buf) > len(r.data) {
		return ErrRegionBounds
	}
	copy(r.data[off:], buf)
	k.Stats.Add(sim.CtrBytesCopied, int64(len(buf)))
	return nil
}

// RegionRead copies from the region at off into buf.
func (e *Env) RegionRead(id RegionID, off int, buf []byte) error {
	k := e.k
	r, ok := k.regions[id]
	e.Syscall(sim.CopyCost(len(buf)))
	if !ok {
		return ErrRegionUnknown
	}
	if !e.Creds.Grants(r.guard, false) {
		return ErrRegionDenied
	}
	if off < 0 || off+len(buf) > len(r.data) {
		return ErrRegionBounds
	}
	copy(buf, r.data[off:])
	k.Stats.Add(sim.CtrBytesCopied, int64(len(buf)))
	return nil
}

// RegionFree releases a region.
func (e *Env) RegionFree(id RegionID) error {
	k := e.k
	r, ok := k.regions[id]
	e.Syscall(0)
	if !ok {
		return ErrRegionUnknown
	}
	if !e.Creds.Grants(r.guard, true) {
		return ErrRegionDenied
	}
	delete(k.regions, id)
	return nil
}

// RegionSize returns a region's size without charging time (exposed
// information; tests use it too).
func (k *Kernel) RegionSize(id RegionID) (int, error) {
	r, ok := k.regions[id]
	if !ok {
		return 0, ErrRegionUnknown
	}
	return len(r.data), nil
}
