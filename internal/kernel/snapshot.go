package kernel

import (
	"fmt"

	"xok/internal/disk"
	"xok/internal/fault"
	"xok/internal/mem"
	"xok/internal/sim"
	"xok/internal/trace"
)

// Snapshot is a frozen kernel-level machine state: engine clock and
// sequence counter, counters, physical memory (copy-on-write), disk
// (copy-on-write layer + arm positions), env/region tables, the
// tracer, and the fault plan's stream positions.
//
// Snapshots are only legal at quiescent points — no live environments
// and no pending events. Environment bodies are Go closures running on
// their own goroutines, whose stacks cannot be captured; at quiescence
// there are none, so the machine state collapses to data this package
// can deep-clone. Forking from one Snapshot is safe from concurrent
// goroutines: forks only read it.
type Snapshot struct {
	cfg        Config
	now        sim.Time
	seq        uint64
	stats      *sim.Stats
	mem        *mem.Snap
	disk       *disk.Checkpoint // nil when the machine has no disk
	nextEnv    EnvID
	nextRegion RegionID
	regions    map[RegionID]region

	tracer   *trace.Tracer // frozen clone; nil = tracing off
	tracePID int64
	faults   *fault.Plan // frozen fork (streams mid-position); nil = no plan
}

// Snapshot captures the kernel's state. It fails unless the machine is
// quiescent: every spawned environment has exited and the event queue
// has drained (Run returned). The kernel keeps running afterwards;
// memory pages and disk blocks it then writes are copied up first
// (copy-on-write), so the frozen state stays intact.
func (k *Kernel) Snapshot() (*Snapshot, error) {
	if k.liveEnvs != 0 {
		return nil, fmt.Errorf("kernel: snapshot requires a quiescent machine: %d live environments", k.liveEnvs)
	}
	if n := k.Eng.Pending(); n != 0 {
		if k.cfg.Eng != nil {
			return nil, fmt.Errorf("kernel: snapshot requires a quiescent machine: shared fabric engine has %d in-flight events (packets or timers)", n)
		}
		return nil, fmt.Errorf("kernel: snapshot requires a quiescent machine: %d events pending", n)
	}
	now, seq := k.Eng.Clock()
	s := &Snapshot{
		cfg:        k.cfg,
		now:        now,
		seq:        seq,
		stats:      k.Stats.Clone(),
		mem:        k.Mem.Freeze(),
		nextEnv:    k.nextEnv,
		nextRegion: k.nextRegion,
		regions:    make(map[RegionID]region, len(k.regions)),
		tracer:     k.Trace.Clone(),
		tracePID:   k.TracePID,
		faults:     k.Faults.Fork(),
	}
	for id, r := range k.regions {
		s.regions[id] = region{data: append([]byte(nil), r.data...), guard: r.guard}
	}
	if k.Disk != nil {
		s.disk = k.Disk.Checkpoint()
	}
	return s, nil
}

// Fork builds a new kernel continuing from the snapshot: same config,
// clock, counters and tables, with a private engine, a cloned tracer,
// a fault plan whose streams resume mid-sequence, and copy-on-write
// views of memory and disk. A fork of a shared-engine (fabric)
// machine runs standalone on its own clock.
func Fork(s *Snapshot) *Kernel {
	eng := sim.NewEngineAt(s.now, s.seq)
	st := s.stats.Clone()
	tr := s.tracer.Clone()
	pl := s.faults.Fork()
	cfg := s.cfg
	cfg.Eng = nil
	cfg.Trace = tr
	cfg.Faults = pl
	k := &Kernel{
		Eng:        eng,
		Stats:      st,
		Mem:        s.mem.Fork(st),
		Faults:     pl,
		cfg:        cfg,
		nextEnv:    s.nextEnv,
		nextRegion: s.nextRegion,
		envs:       make(map[EnvID]*Env),
		parkCh:     make(chan parkMsg),
		regions:    make(map[RegionID]*region, len(s.regions)),
	}
	for id, r := range s.regions {
		k.regions[id] = &region{data: append([]byte(nil), r.data...), guard: r.guard}
	}
	if cfg.DiskSize > 0 {
		opts := []disk.Option{disk.WithFaults(pl)}
		if cfg.Spindles > 1 {
			opts = append(opts, disk.WithStriping(cfg.Spindles, cfg.StripeUnit))
		}
		k.Disk = disk.New(eng, st, cfg.DiskSize, opts...)
		k.Disk.Adopt(s.disk)
	}
	if tr.Enabled() {
		k.Trace = tr
		k.TracePID = s.tracePID
		pid := s.tracePID
		eng.SetEventHook(func(at sim.Time) { tr.Count(pid, "events", 1) })
		if k.Disk != nil {
			k.Disk.SetTrace(tr, pid)
		}
	}
	return k
}

// Release returns the snapshot's frozen memory and disk buffers to the
// buffer pool. Only legal once the snapshotted machine and every fork
// are closed (kernel Release / machine Close).
func (s *Snapshot) Release() {
	if s.mem != nil {
		s.mem.Release()
		s.mem = nil
	}
	if s.disk != nil {
		s.disk.Release()
		s.disk = nil
	}
}
