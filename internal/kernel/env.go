package kernel

import (
	"errors"

	"xok/internal/cap"
	"xok/internal/mem"
	"xok/internal/sim"
	"xok/internal/wkpred"
)

// EnvID names an environment. ExOS maps UNIX pids to environment
// numbers through a shared table (Section 5.2.1).
type EnvID int

type envState uint8

const (
	envRunnable envState = iota
	envRunning
	envBlocked
	envDead
)

// errKilled poisons an environment goroutine during Shutdown.
var errKilled = errors.New("kernel: environment killed")

// Env is one environment: "the hardware-specific state needed to run a
// process ... and to respond to any event occurring during process
// execution" (Section 5.1). Its exported methods are the interface
// environment code uses while it holds the execution token; they must
// only be called from within the environment's own body function.
type Env struct {
	k     *Kernel
	id    EnvID
	name  string
	state envState

	// Creds are the capabilities this environment presents on system
	// calls. Exported state, set by the libOS at process setup.
	Creds cap.Credentials

	// PT is the environment's page table (mutated via system calls on
	// x86, Section 5.1).
	PT *mem.PageTable

	resume    chan bool
	burst     sim.Time // CPU cycles owed before code continues
	grant     sim.Time // size of the in-flight burn slice (see burnGrantArg)
	cpuUsed   sim.Time // lifetime CPU consumed (accounting)
	sliceLeft sim.Time
	pred      *wkpred.Pred
	timeout   sim.Event

	inCritical bool
	exitWait   []*Env // environments waiting for this one to exit

	ipcQ []IPCMsg

	// Local is scratch space for the libOS running in this environment
	// (ExOS hangs its per-process state here).
	Local any
}

// ID returns the environment number.
func (e *Env) ID() EnvID { return e.id }

// Name returns the spawn label (debugging aid).
func (e *Env) Name() string { return e.name }

// Kernel returns the kernel this environment runs on.
func (e *Env) Kernel() *Kernel { return e.k }

// Dead reports whether the environment has exited.
func (e *Env) Dead() bool { return e.state == envDead }

// CPUUsed reports the total CPU cycles this environment has consumed
// (exposed information; the HTTP experiments derive server idle time
// from it).
func (e *Env) CPUUsed() sim.Time { return e.cpuUsed }

// TraceLane is this environment's lane (TID) in the machine's tracer.
// Lanes 100+ belong to environments; the disk's spindles use 1..n and
// the HTTP connections 10000+.
func (e *Env) TraceLane() int64 { return 100 + int64(e.id) }

// exit terminates the environment from inside its own code: hand the
// token back as an exit and unwind the goroutine. Spawn's recover
// swallows the poison, the scheduler wakes any WaitFor-ers.
func (e *Env) exit() {
	e.park(parkMsg{env: e, kind: parkExit})
	panic(errKilled)
}

// park hands the token to the scheduler and blocks until resumed.
func (e *Env) park(msg parkMsg) {
	e.k.parkCh <- msg
	if msg.kind == parkExit {
		return // scheduler never resumes an exited environment
	}
	if !<-e.resume {
		panic(errKilled)
	}
}

// Use charges c cycles of CPU to this environment. The scheduler burns
// them in quantum slices, interleaved with other runnable
// environments; the call returns when they have elapsed.
func (e *Env) Use(c sim.Time) {
	if c == 0 {
		return
	}
	e.park(parkMsg{env: e, kind: parkUse, n: c})
}

// Syscall charges one kernel crossing plus the in-kernel work cost.
func (e *Env) Syscall(work sim.Time) {
	e.k.Stats.Inc(sim.CtrSyscalls)
	if e.k.Faults.KillNow(e.name) {
		// The fault plan kills this environment mid-syscall: it paid
		// the trap but never returns — exactly a process destroyed
		// through the kernel interface while inside a call.
		e.Use(e.k.cfg.TrapCost)
		e.exit()
	}
	if tr := e.k.Trace; tr != nil {
		begin := e.k.Eng.Now()
		e.Use(e.k.cfg.TrapCost + work)
		end := e.k.Eng.Now()
		// The span covers trap entry to return, including any slices
		// the scheduler interleaved — i.e. the call's real latency.
		tr.Span(e.k.TracePID, e.TraceLane(), "kernel", "syscall", begin, end)
		tr.Observe(e.k.TracePID, "kernel.syscall", end-begin)
		return
	}
	e.Use(e.k.cfg.TrapCost + work)
}

// Syscalls charges n kernel crossings with no work (used to model the
// protection calls inserted before shared-state writes, Section 6.3).
func (e *Env) Syscalls(n int) {
	e.k.Stats.Add(sim.CtrSyscalls, int64(n))
	e.Use(sim.Time(n) * e.k.cfg.TrapCost)
}

// LibCall charges a protected procedure call into a libOS plus work.
func (e *Env) LibCall(work sim.Time) {
	e.k.Stats.Inc(sim.CtrLibCalls)
	e.Use(sim.CostLibCall + work)
}

// Block parks the environment until another environment or a device
// handler calls Wake.
func (e *Env) Block() {
	e.park(parkMsg{env: e, kind: parkBlock})
}

// SleepOn downloads a wakeup predicate and parks. The kernel evaluates
// the predicate whenever the environment is about to be scheduled
// (Section 5.1). deadline, if non-zero, is a hint: the kernel will run
// a dispatch pass at that time even if the machine is otherwise idle
// (predicates that compare against the clock need this to fire).
func (e *Env) SleepOn(p *wkpred.Pred, deadline sim.Time) {
	e.pred = p
	e.Use(p.Cost()) // downloading/compiling the predicate
	if deadline > 0 {
		d := deadline
		e.timeout = e.k.Eng.At(d, func() {
			e.timeout = sim.Event{}
			e.k.kickDispatch()
		})
	}
	e.park(parkMsg{env: e, kind: parkBlock})
}

// Wake makes target runnable. Callable from device completion handlers
// and from other environments' code (both hold the token).
func (k *Kernel) Wake(target *Env) {
	if target == nil || target.state != envBlocked {
		return
	}
	k.makeRunnable(target)
}

// YieldTo gives up the CPU in favor of target (directed yield,
// Section 5.2.1: pipes yield to the other party when it must do work).
// A nil target is an undirected yield to the end of the run queue.
func (e *Env) YieldTo(target *Env) {
	e.k.Wake(target)
	e.park(parkMsg{env: e, kind: parkYieldTo, to: target})
}

// WaitFor blocks until target exits. Returns immediately if it is
// already dead. Robust against spurious wakeups.
func (e *Env) WaitFor(target *Env) {
	for target != nil && target.state != envDead {
		target.exitWait = append(target.exitWait, e)
		e.park(parkMsg{env: e, kind: parkBlock})
	}
}

// WaitAnyOf blocks until at least one of the targets exits (the
// workload launcher's wait-any). Returns immediately if any target is
// already dead or the list is empty.
func (e *Env) WaitAnyOf(targets []*Env) {
	for {
		if len(targets) == 0 {
			return
		}
		for _, t := range targets {
			if t == nil || t.state == envDead {
				return
			}
		}
		for _, t := range targets {
			t.exitWait = append(t.exitWait, e)
		}
		e.park(parkMsg{env: e, kind: parkBlock})
	}
}

// BeginCritical enters a robust critical section by disabling software
// interrupts (Section 3.3: "inexpensive critical sections ...
// eliminates the need to trust other processes"). While in a critical
// section the environment is not preempted at slice end.
func (e *Env) BeginCritical() {
	e.inCritical = true
	e.Use(20) // disable software interrupts: a couple of stores
}

// EndCritical leaves the critical section.
func (e *Env) EndCritical() {
	e.inCritical = false
	e.Use(20)
}

// Sleep parks until the given virtual duration elapses.
func (e *Env) Sleep(d sim.Time) {
	target := e.k.Eng.Now() + d
	e.timeout = e.k.Eng.At(target, func() {
		e.timeout = sim.Event{}
		e.k.makeRunnable(e)
	})
	e.park(parkMsg{env: e, kind: parkBlock})
}
