package lfs

import (
	"bytes"
	"errors"
	"fmt"
	"testing"

	"xok/internal/cap"
	"xok/internal/cffs"
	"xok/internal/kernel"
	"xok/internal/xn"
)

func boot(t *testing.T) (*kernel.Kernel, *xn.XN, *FS) {
	t.Helper()
	k := kernel.New(kernel.Config{Name: "xok", MemPages: 4096, DiskSize: 32768})
	x := xn.New(k)
	var fs *FS
	k.Spawn("format", func(e *kernel.Env) {
		e.Creds = cap.UnixCreds(0)
		var err error
		fs, err = Format(e, x, "lfs")
		if err != nil {
			t.Error(err)
		}
	})
	k.Run()
	if t.Failed() {
		t.FailNow()
	}
	return k, x, fs
}

func run(t *testing.T, k *kernel.Kernel, body func(e *kernel.Env) error) {
	t.Helper()
	k.Spawn("t", func(e *kernel.Env) {
		e.Creds = cap.UnixCreds(0)
		if err := body(e); err != nil {
			t.Errorf("%v", err)
		}
	})
	k.Run()
}

func payload(seed byte, n int) []byte {
	b := make([]byte, n)
	for i := range b {
		b[i] = byte(i)*13 + seed
	}
	return b
}

func TestWriteReadRoundTrip(t *testing.T) {
	k, _, fs := boot(t)
	data := payload(1, 10000)
	run(t, k, func(e *kernel.Env) error {
		if err := fs.WriteFile(e, "alpha", data); err != nil {
			return err
		}
		got, err := fs.ReadFile(e, "alpha")
		if err != nil {
			return err
		}
		if !bytes.Equal(got, data) {
			t.Error("round trip mismatch")
		}
		if _, err := fs.ReadFile(e, "missing"); !errors.Is(err, ErrNotFound) {
			t.Errorf("missing err = %v", err)
		}
		return nil
	})
}

func TestOverwriteIsOutOfPlace(t *testing.T) {
	// LFS never updates in place: a rewrite must land on different
	// blocks, and the old version's blocks must eventually free.
	k, x, fs := boot(t)
	run(t, k, func(e *kernel.Env) error {
		if err := fs.WriteFile(e, "f", payload(1, 8000)); err != nil {
			return err
		}
		_, ino1, err := fs.inodeOf(e, "f")
		if err != nil {
			return err
		}
		ext1 := decodeExtents(x.PageData(ino1))
		if err := fs.Sync(e); err != nil {
			return err
		}
		freeBefore := x.FreeBlocks()

		if err := fs.WriteFile(e, "f", payload(2, 8000)); err != nil {
			return err
		}
		_, ino2, err := fs.inodeOf(e, "f")
		if err != nil {
			return err
		}
		if ino1 == ino2 {
			t.Error("inode updated in place")
		}
		ext2 := decodeExtents(x.PageData(ino2))
		for _, a := range ext1 {
			for _, b := range ext2 {
				if a.Start == b.Start {
					t.Error("data blocks reused in place")
				}
			}
		}
		// After sync, the old version's blocks are reclaimed.
		if err := fs.Sync(e); err != nil {
			return err
		}
		if got := x.FreeBlocks(); got != freeBefore {
			t.Errorf("free blocks = %d, want %d (old version reclaimed)", got, freeBefore)
		}
		got, err := fs.ReadFile(e, "f")
		if err != nil {
			return err
		}
		if !bytes.Equal(got, payload(2, 8000)) {
			t.Error("content is not the new version")
		}
		return nil
	})
}

func TestDeleteReclaims(t *testing.T) {
	k, x, fs := boot(t)
	run(t, k, func(e *kernel.Env) error {
		free0 := x.FreeBlocks()
		if err := fs.WriteFile(e, "doomed", payload(3, 20000)); err != nil {
			return err
		}
		if err := fs.Delete(e, "doomed"); err != nil {
			return err
		}
		if _, err := fs.ReadFile(e, "doomed"); !errors.Is(err, ErrNotFound) {
			t.Errorf("read after delete = %v", err)
		}
		if err := fs.Sync(e); err != nil {
			return err
		}
		if got := x.FreeBlocks(); got != free0 {
			t.Errorf("free = %d, want %d after delete", got, free0)
		}
		return nil
	})
}

func TestPersistenceAcrossReboot(t *testing.T) {
	k, _, fs := boot(t)
	data := payload(7, 30000)
	run(t, k, func(e *kernel.Env) error {
		if err := fs.WriteFile(e, "keep", data); err != nil {
			return err
		}
		if err := fs.WriteFile(e, "also", payload(8, 500)); err != nil {
			return err
		}
		return fs.Sync(e)
	})
	x2, err := xn.Mount(k)
	if err != nil {
		t.Fatal(err)
	}
	run(t, k, func(e *kernel.Env) error {
		fs2, err := Attach(e, x2, "lfs")
		if err != nil {
			return err
		}
		if len(fs2.Files()) != 2 {
			t.Errorf("files after reboot = %v", fs2.Files())
		}
		got, err := fs2.ReadFile(e, "keep")
		if err != nil {
			return err
		}
		if !bytes.Equal(got, data) {
			t.Error("content lost across reboot")
		}
		return nil
	})
}

func TestUnsyncedWriteLostCleanly(t *testing.T) {
	k, _, fs := boot(t)
	run(t, k, func(e *kernel.Env) error {
		if err := fs.WriteFile(e, "durable", payload(1, 5000)); err != nil {
			return err
		}
		if err := fs.Sync(e); err != nil {
			return err
		}
		// Never synced: must vanish without corrupting anything.
		return fs.WriteFile(e, "ghost", payload(2, 5000))
	})
	x2, err := xn.Mount(k)
	if err != nil {
		t.Fatal(err)
	}
	run(t, k, func(e *kernel.Env) error {
		fs2, err := Attach(e, x2, "lfs")
		if err != nil {
			return err
		}
		if _, err := fs2.ReadFile(e, "durable"); err != nil {
			t.Errorf("durable file lost: %v", err)
		}
		if _, err := fs2.ReadFile(e, "ghost"); !errors.Is(err, ErrNotFound) {
			t.Errorf("ghost err = %v", err)
		}
		return nil
	})
}

func TestCleanerCompactsRegion(t *testing.T) {
	k, x, fs := boot(t)
	run(t, k, func(e *kernel.Env) error {
		// Write files, then clean the region they live in.
		for i := 0; i < 5; i++ {
			if err := fs.WriteFile(e, fmt.Sprintf("f%d", i), payload(byte(i), 9000)); err != nil {
				return err
			}
		}
		if err := fs.Sync(e); err != nil {
			return err
		}
		start := fs.Ckpt + 1
		moved, err := fs.Clean(e, start, 64)
		if err != nil {
			return err
		}
		if moved == 0 {
			t.Error("cleaner moved nothing")
		}
		if err := fs.Sync(e); err != nil {
			return err
		}
		// The region is now free (except the pinned imap inside it).
		freeInRegion := 0
		for b := start; b < start+64; b++ {
			if x.IsFree(b) {
				freeInRegion++
			}
		}
		if freeInRegion < 50 {
			t.Errorf("only %d/64 region blocks free after cleaning", freeInRegion)
		}
		// All content intact.
		for i := 0; i < 5; i++ {
			got, err := fs.ReadFile(e, fmt.Sprintf("f%d", i))
			if err != nil {
				return err
			}
			if !bytes.Equal(got, payload(byte(i), 9000)) {
				t.Errorf("f%d corrupted by cleaner", i)
			}
		}
		return nil
	})
}

func TestLFSAndCFFSShareOneDisk(t *testing.T) {
	// The Section 4.6 question, answered: two radically different
	// libFSes running concurrently over one XN.
	k, x, fs := boot(t)
	var cf *cffs.FS
	run(t, k, func(e *kernel.Env) error {
		var err error
		cf, err = cffs.Mkfs(e, x, "cffs", cffs.DefaultConfig())
		return err
	})
	run(t, k, func(e *kernel.Env) error {
		if err := fs.WriteFile(e, "log-entry", payload(1, 7000)); err != nil {
			return err
		}
		ref, err := cf.Create(e, "/unix-file", 0, 0, 6)
		if err != nil {
			return err
		}
		if _, err := cf.WriteAt(e, ref, 0, payload(2, 7000)); err != nil {
			return err
		}
		return x.Sync(e)
	})
	// Both survive reboot.
	x2, err := xn.Mount(k)
	if err != nil {
		t.Fatal(err)
	}
	run(t, k, func(e *kernel.Env) error {
		fs2, err := Attach(e, x2, "lfs")
		if err != nil {
			return err
		}
		got, err := fs2.ReadFile(e, "log-entry")
		if err != nil || !bytes.Equal(got, payload(1, 7000)) {
			t.Errorf("lfs content lost: %v", err)
		}
		cf2, err := cffs.Attach(e, x2, "cffs", cffs.DefaultConfig())
		if err != nil {
			return err
		}
		ref, _, err := cf2.Lookup(e, "/unix-file")
		if err != nil {
			return err
		}
		buf := make([]byte, 7000)
		if _, err := cf2.ReadAt(e, ref, 0, buf); err != nil || !bytes.Equal(buf, payload(2, 7000)) {
			t.Errorf("cffs content lost: %v", err)
		}
		return nil
	})
}

func TestNameTooLongAndImapBound(t *testing.T) {
	k, _, fs := boot(t)
	run(t, k, func(e *kernel.Env) error {
		long := string(bytes.Repeat([]byte("x"), maxName+1))
		if err := fs.WriteFile(e, long, []byte("y")); !errors.Is(err, ErrNameLen) {
			t.Errorf("long name err = %v", err)
		}
		return nil
	})
}
