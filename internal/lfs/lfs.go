// Package lfs implements a log-structured file system over XN — one of
// the "range of file systems (log-structured file systems, RAID, and
// memory-based file systems)" Section 4.6 names as the test of
// "if the XN interface is powerful enough to support concurrent use by
// radically different file systems". Its on-disk structure shares
// nothing with C-FFS:
//
//	checkpoint block ("lfs.ckpt", the XN root):
//	    off  0: u32 magic
//	    off  4: u32 nImap
//	    off  8: u64 tail hint
//	    off 16: nImap x u64 imap block pointers
//	imap block ("lfs.imap"):
//	    off 0: u32 highest-used-slot+1
//	    off 8: slots of u64 inode-block pointers (0 = free slot)
//	inode block ("lfs.inode"), one file per block:
//	    off  0: u8 used, u8 nameLen, pad
//	    off  4: name[60]
//	    off 64: u32 size, u32 nExt
//	    off 72: nExt x {u64 start, u32 count, u32 pad}
//	data blocks ("lfs.data"): opaque
//
// All writes are out of place: updating a file allocates fresh data
// blocks and a fresh inode block at the log tail, then swaps the imap
// slot from the old inode to the new one with XN's atomic Replace.
// A simple cleaner compacts a disk region by re-logging the live files
// inside it.
package lfs

import (
	"encoding/binary"
	"errors"
	"fmt"

	"xok/internal/disk"
	"xok/internal/kernel"
	"xok/internal/sim"
	"xok/internal/udf"
	"xok/internal/xn"
)

// Format constants.
const (
	Magic = 0x1F5

	ckptImapOff = 16
	maxImaps    = 64

	imapSlotsOff = 8
	imapSlots    = 500

	inoUsed    = 0
	inoNameLen = 1
	inoName    = 4
	inoSize    = 64
	inoNExt    = 68
	inoExts    = 72
	inoExtSize = 16
	maxExts    = 16

	maxName = 60
)

// Errors.
var (
	ErrNotFound = errors.New("lfs: no such file")
	ErrNameLen  = errors.New("lfs: name too long")
	ErrFull     = errors.New("lfs: imap full")
	ErrTooBig   = errors.New("lfs: file exceeds extent table")
)

// FS is one mounted log-structured file system.
type FS struct {
	X    *xn.XN
	Name string

	Ckpt  disk.BlockNo
	CkptT xn.TemplateID
	ImapT xn.TemplateID
	InoT  xn.TemplateID
	DataT xn.TemplateID

	imap disk.BlockNo // single imap block (500 files)
	tail disk.BlockNo // log tail cursor

	// files caches name -> imap slot (rebuilt on attach).
	files map[string]int
}

// UDF sources. The checkpoint owns the imap blocks; an imap owns the
// inode blocks in its slots; an inode owns its data extents.
func ckptOwnsSource(imapT int64) string {
	return fmt.Sprintf(`
	li   r0, 0
	ldw  r1, r0, 4      ; nImap
	li   r2, 0
	li   r3, %d         ; pointer offset
loop:
	bge  r2, r1, done
	ldq  r4, r3, 0
	li   r5, 1
	li   r6, %d
	emit r4, r5, r6
	addi r3, r3, 8
	addi r2, r2, 1
	jmp  loop
done:
	li   r0, 0
	ret  r0
`, ckptImapOff, imapT)
}

func imapOwnsSource(inoT int64) string {
	return fmt.Sprintf(`
	li   r0, 0
	ldw  r1, r0, 0      ; bound
	li   r2, 0
	li   r3, %d
loop:
	bge  r2, r1, done
	ldq  r4, r3, 0
	li   r5, 0
	beq  r4, r5, next   ; empty slot
	li   r5, 1
	li   r6, %d
	emit r4, r5, r6
next:
	addi r3, r3, 8
	addi r2, r2, 1
	jmp  loop
done:
	li   r0, 0
	ret  r0
`, imapSlotsOff, inoT)
}

func inoOwnsSource(dataT int64) string {
	return fmt.Sprintf(`
	li   r0, 0
	ldw  r1, r0, %d     ; nExt
	li   r2, 0
	li   r3, %d
loop:
	bge  r2, r1, done
	ldq  r4, r3, 0
	ldw  r5, r3, 8
	li   r6, %d
	emit r4, r5, r6
	addi r3, r3, %d
	addi r2, r2, 1
	jmp  loop
done:
	li   r0, 0
	ret  r0
`, inoNExt, inoExts, dataT, inoExtSize)
}

const approveAll = "li r0, 1\nret r0"
const ownsNothing = "li r0, 0\nret r0"
const blockSize = "li r0, 4096\nret r0"

func asm(name, src string) *udf.Program { return udf.MustAssemble(name, src) }

// Format creates a fresh LFS on the volume.
func Format(e *kernel.Env, x *xn.XN, name string) (*FS, error) {
	fs := &FS{X: x, Name: name, files: make(map[string]int)}

	dataT, err := x.InstallTemplate(e, xn.Template{
		Name: name + ".data",
		Owns: asm(name+".do", ownsNothing),
		Acl:  asm(name+".da", approveAll),
		Size: asm(name+".ds", blockSize),
		// Data access rights come from the owning inode.
		AclAtParent: true,
	})
	if err != nil {
		return nil, err
	}
	inoT, err := x.InstallTemplate(e, xn.Template{
		Name: name + ".inode",
		Owns: asm(name+".io", inoOwnsSource(int64(dataT))),
		Acl:  asm(name+".ia", approveAll),
		Size: asm(name+".is", blockSize),
	})
	if err != nil {
		return nil, err
	}
	imapT, err := x.InstallTemplate(e, xn.Template{
		Name: name + ".imap",
		Owns: asm(name+".mo", imapOwnsSource(int64(inoT))),
		Acl:  asm(name+".ma", approveAll),
		Size: asm(name+".ms", blockSize),
	})
	if err != nil {
		return nil, err
	}
	ckptT, err := x.InstallTemplate(e, xn.Template{
		Name: name + ".ckpt",
		Owns: asm(name+".co", ckptOwnsSource(int64(imapT))),
		Acl:  asm(name+".ca", approveAll),
		Size: asm(name+".cs", blockSize),
	})
	if err != nil {
		return nil, err
	}
	fs.DataT, fs.InoT, fs.ImapT, fs.CkptT = dataT, inoT, imapT, ckptT

	ckpt, err := x.AllocRootExtent(e, 128, 1)
	if err != nil {
		return nil, err
	}
	fs.Ckpt = ckpt
	if err := x.RegisterRoot(e, xn.Root{Name: name, Start: ckpt, Count: 1, Tmpl: ckptT}); err != nil {
		return nil, err
	}
	if _, err := x.LoadRoot(e, name); err != nil {
		return nil, err
	}
	x.Pin(ckpt)

	// Header: magic, no imaps yet.
	hdr := make([]byte, 8)
	binary.LittleEndian.PutUint32(hdr[0:], Magic)
	if err := x.Modify(e, ckpt, []xn.Mod{{Off: 0, Bytes: hdr}}); err != nil {
		return nil, err
	}

	// First imap block, logged right after the checkpoint.
	fs.tail = ckpt + 1
	im, err := fs.logAlloc(e, 1)
	if err != nil {
		return nil, err
	}
	nImap := make([]byte, 4)
	binary.LittleEndian.PutUint32(nImap, 1)
	ptr := make([]byte, 8)
	binary.LittleEndian.PutUint64(ptr, uint64(im))
	if err := x.Alloc(e, ckpt,
		[]xn.Mod{{Off: 4, Bytes: nImap}, {Off: ckptImapOff, Bytes: ptr}},
		udf.Extent{Start: int64(im), Count: 1, Type: int64(imapT)}); err != nil {
		return nil, err
	}
	if err := x.InitMetadata(e, im, make([]byte, 8)); err != nil {
		return nil, err
	}
	x.Pin(im)
	fs.imap = im
	return fs, nil
}

// Attach mounts an existing LFS after a reboot, rebuilding the name
// cache from the imap.
func Attach(e *kernel.Env, x *xn.XN, name string) (*FS, error) {
	fs := &FS{X: x, Name: name, files: make(map[string]int)}
	for _, tp := range []struct {
		suffix string
		dst    *xn.TemplateID
	}{{".data", &fs.DataT}, {".inode", &fs.InoT}, {".imap", &fs.ImapT}, {".ckpt", &fs.CkptT}} {
		t, ok := x.TemplateByName(name + tp.suffix)
		if !ok {
			return nil, fmt.Errorf("lfs: template %s%s missing", name, tp.suffix)
		}
		*tp.dst = t.ID
	}
	r, err := x.LoadRoot(e, name)
	if err != nil {
		return nil, err
	}
	fs.Ckpt = r.Start
	x.Pin(fs.Ckpt)
	ck := x.PageData(fs.Ckpt)
	if binary.LittleEndian.Uint32(ck[0:]) != Magic {
		return nil, fmt.Errorf("lfs: bad checkpoint magic")
	}
	if binary.LittleEndian.Uint32(ck[4:]) < 1 {
		return nil, fmt.Errorf("lfs: no imap")
	}
	fs.imap = disk.BlockNo(binary.LittleEndian.Uint64(ck[ckptImapOff:]))
	if err := x.Insert(e, fs.Ckpt, udf.Extent{Start: int64(fs.imap), Count: 1, Type: int64(fs.ImapT)}); err != nil {
		return nil, err
	}
	if err := x.Read(e, []disk.BlockNo{fs.imap}, nil); err != nil {
		return nil, err
	}
	x.Pin(fs.imap)

	// Rebuild the name cache by visiting every inode.
	im := x.PageData(fs.imap)
	bound := int(binary.LittleEndian.Uint32(im[0:]))
	for slot := 0; slot < bound && slot < imapSlots; slot++ {
		ptr := binary.LittleEndian.Uint64(im[imapSlotsOff+slot*8:])
		if ptr == 0 {
			continue
		}
		ino := disk.BlockNo(ptr)
		if err := fs.ensureInode(e, ino); err != nil {
			return nil, err
		}
		data := x.PageData(ino)
		n := int(data[inoNameLen])
		fs.files[string(data[inoName:inoName+n])] = slot
	}
	fs.tail = fs.Ckpt + 1
	return fs, nil
}

// logAlloc claims count free contiguous blocks at the log tail,
// advancing (and wrapping) the cursor.
func (fs *FS) logAlloc(e *kernel.Env, count int64) (disk.BlockNo, error) {
	start, ok := fs.X.FindFree(fs.tail, count)
	if !ok {
		return 0, xn.ErrNotFree
	}
	fs.tail = start + disk.BlockNo(count)
	if int64(fs.tail) >= fs.X.D.NumBlocks()-count {
		fs.tail = fs.Ckpt + 1 // wrap
	}
	return start, nil
}

func (fs *FS) ensureInode(e *kernel.Env, ino disk.BlockNo) error {
	if fs.X.Cached(ino) {
		return nil
	}
	if _, ok := fs.X.Lookup(ino); !ok {
		if err := fs.X.Insert(e, fs.imap, udf.Extent{Start: int64(ino), Count: 1, Type: int64(fs.InoT)}); err != nil {
			return err
		}
	}
	return fs.X.Read(e, []disk.BlockNo{ino}, nil)
}

// inodeOf returns the slot and inode block for name.
func (fs *FS) inodeOf(e *kernel.Env, name string) (int, disk.BlockNo, error) {
	slot, ok := fs.files[name]
	if !ok {
		return 0, 0, ErrNotFound
	}
	im := fs.X.PageData(fs.imap)
	ptr := binary.LittleEndian.Uint64(im[imapSlotsOff+slot*8:])
	if ptr == 0 {
		delete(fs.files, name)
		return 0, 0, ErrNotFound
	}
	ino := disk.BlockNo(ptr)
	if err := fs.ensureInode(e, ino); err != nil {
		return 0, 0, err
	}
	return slot, ino, nil
}

// buildInode serializes an inode image.
func buildInode(name string, size int, exts []xn.ExtentPair) []byte {
	buf := make([]byte, 72+len(exts)*inoExtSize)
	buf[inoUsed] = 1
	buf[inoNameLen] = byte(len(name))
	copy(buf[inoName:], name)
	binary.LittleEndian.PutUint32(buf[inoSize:], uint32(size))
	binary.LittleEndian.PutUint32(buf[inoNExt:], uint32(len(exts)))
	for i, ext := range exts {
		off := inoExts + i*inoExtSize
		binary.LittleEndian.PutUint64(buf[off:], uint64(ext.Start))
		binary.LittleEndian.PutUint32(buf[off+8:], ext.Count)
	}
	return buf
}

// decodeExtents parses an inode's extent list.
func decodeExtents(data []byte) []xn.ExtentPair {
	n := int(binary.LittleEndian.Uint32(data[inoNExt:]))
	if n > maxExts {
		n = maxExts
	}
	out := make([]xn.ExtentPair, 0, n)
	for i := 0; i < n; i++ {
		off := inoExts + i*inoExtSize
		out = append(out, xn.ExtentPair{
			Start: disk.BlockNo(binary.LittleEndian.Uint64(data[off:])),
			Count: binary.LittleEndian.Uint32(data[off+8:]),
		})
	}
	return out
}

// WriteFile logs a whole file: fresh data blocks and a fresh inode at
// the tail, then one atomic imap-slot swap. The previous version's
// blocks are released through XN's will-free machinery.
func (fs *FS) WriteFile(e *kernel.Env, name string, data []byte) error {
	e.LibCall(100)
	if len(name) > maxName {
		return ErrNameLen
	}
	x := fs.X

	// 1. Log the data blocks.
	nBlocks := int64((len(data) + sim.DiskBlockSize - 1) / sim.DiskBlockSize)
	var exts []xn.ExtentPair
	var newIno disk.BlockNo

	// 2. Log the new inode (allocated out of the imap via Replace or
	// Alloc below; data extents are recorded in the inode image before
	// the inode block exists, which XN permits because ownership is
	// checked at the metadata block holding the pointers — the imap —
	// not inside the not-yet-allocated inode... so the order is: claim
	// the inode block in the imap first, init it with NO extents, then
	// Alloc the data extents into it.)
	inoBlk, err := fs.logAlloc(e, 1)
	if err != nil {
		return err
	}
	newIno = inoBlk

	oldSlot, oldIno, lookupErr := fs.slotFor(e, name)
	slot := oldSlot
	if lookupErr != nil { // new file: pick a free slot
		slot = -1
		im := x.PageData(fs.imap)
		bound := int(binary.LittleEndian.Uint32(im[0:]))
		for i := 0; i < imapSlots; i++ {
			if i >= bound || binary.LittleEndian.Uint64(im[imapSlotsOff+i*8:]) == 0 {
				slot = i
				break
			}
		}
		if slot < 0 {
			return ErrFull
		}
	}

	// Swap (or set) the imap slot.
	ptr := make([]byte, 8)
	binary.LittleEndian.PutUint64(ptr, uint64(newIno))
	var mods []xn.Mod
	im := x.PageData(fs.imap)
	bound := int(binary.LittleEndian.Uint32(im[0:]))
	if slot >= bound {
		nb := make([]byte, 4)
		binary.LittleEndian.PutUint32(nb, uint32(slot+1))
		mods = append(mods, xn.Mod{Off: 0, Bytes: nb})
	}
	mods = append(mods, xn.Mod{Off: imapSlotsOff + slot*8, Bytes: ptr})

	if lookupErr == nil {
		// Existing file: release the old version's data first (the old
		// inode still owns it), then atomically swap inodes.
		if err := fs.truncateInode(e, oldIno); err != nil {
			return err
		}
		if err := x.Replace(e, fs.imap, mods,
			udf.Extent{Start: int64(newIno), Count: 1, Type: int64(fs.InoT)},
			udf.Extent{Start: int64(oldIno), Count: 1, Type: int64(fs.InoT)}); err != nil {
			return err
		}
	} else {
		if err := x.Alloc(e, fs.imap, mods,
			udf.Extent{Start: int64(newIno), Count: 1, Type: int64(fs.InoT)}); err != nil {
			return err
		}
	}
	if err := x.InitMetadata(e, newIno, buildInode(name, len(data), nil)); err != nil {
		return err
	}

	// 3. Log the data extents into the new inode and fill the pages.
	remaining := nBlocks
	off := 0
	for remaining > 0 {
		if len(exts) >= maxExts {
			return ErrTooBig
		}
		start, err := fs.logAlloc(e, remaining)
		if err != nil {
			// Fall back to whatever contiguous run exists.
			start, err = fs.logAlloc(e, 1)
			if err != nil {
				return err
			}
			exts = append(exts, xn.ExtentPair{Start: start, Count: 1})
			remaining--
		} else {
			exts = append(exts, xn.ExtentPair{Start: start, Count: uint32(remaining)})
			remaining = 0
		}
		ext := exts[len(exts)-1]
		img := buildInode(name, len(data), exts)
		if err := x.Alloc(e, newIno,
			[]xn.Mod{{Off: 0, Bytes: img}},
			udf.Extent{Start: int64(ext.Start), Count: int64(ext.Count), Type: int64(fs.DataT)}); err != nil {
			return err
		}
		for j := uint32(0); j < ext.Count; j++ {
			b := ext.Start + disk.BlockNo(j)
			if _, err := x.AttachPage(e, b); err != nil {
				return err
			}
			page := x.PageData(b)
			n := copy(page, data[off:])
			off += n
			if err := x.MarkDirty(e, b); err != nil {
				return err
			}
		}
		e.Use(sim.CopyCost(int(ext.Count) * sim.DiskBlockSize))
	}

	fs.files[name] = slot
	return nil
}

// slotFor resolves name without mutating state.
func (fs *FS) slotFor(e *kernel.Env, name string) (int, disk.BlockNo, error) {
	return fs.inodeOf(e, name)
}

// truncateInode releases every data extent an inode owns.
func (fs *FS) truncateInode(e *kernel.Env, ino disk.BlockNo) error {
	if err := fs.ensureInode(e, ino); err != nil {
		return err
	}
	data := fs.X.PageData(ino)
	exts := decodeExtents(data)
	name := string(data[inoName : inoName+int(data[inoNameLen])])
	size := int(binary.LittleEndian.Uint32(data[inoSize:]))
	for i := len(exts) - 1; i >= 0; i-- {
		img := buildInode(name, size, exts[:i])
		if err := fs.X.Dealloc(e, ino,
			[]xn.Mod{{Off: 0, Bytes: img}},
			udf.Extent{Start: int64(exts[i].Start), Count: int64(exts[i].Count), Type: int64(fs.DataT)}); err != nil {
			return err
		}
	}
	return nil
}

// ReadFile returns a file's content.
func (fs *FS) ReadFile(e *kernel.Env, name string) ([]byte, error) {
	e.LibCall(100)
	_, ino, err := fs.inodeOf(e, name)
	if err != nil {
		return nil, err
	}
	x := fs.X
	data := x.PageData(ino)
	size := int(binary.LittleEndian.Uint32(data[inoSize:]))
	exts := decodeExtents(data)
	out := make([]byte, 0, size)
	for _, ext := range exts {
		var need []disk.BlockNo
		for j := uint32(0); j < ext.Count; j++ {
			b := ext.Start + disk.BlockNo(j)
			if !x.Cached(b) {
				if _, ok := x.Lookup(b); !ok {
					if err := x.Insert(e, ino, udf.Extent{Start: int64(b), Count: 1, Type: int64(fs.DataT)}); err != nil {
						return nil, err
					}
				}
				need = append(need, b)
			}
		}
		if len(need) > 0 {
			if err := x.Read(e, need, nil); err != nil {
				return nil, err
			}
		}
		for j := uint32(0); j < ext.Count && len(out) < size; j++ {
			b := ext.Start + disk.BlockNo(j)
			page := x.PageData(b)
			take := size - len(out)
			if take > len(page) {
				take = len(page)
			}
			out = append(out, page[:take]...)
		}
	}
	e.Use(sim.CopyCost(len(out)))
	return out, nil
}

// Delete removes a file: release its data, then drop the inode from
// the imap.
func (fs *FS) Delete(e *kernel.Env, name string) error {
	e.LibCall(100)
	slot, ino, err := fs.inodeOf(e, name)
	if err != nil {
		return err
	}
	if err := fs.truncateInode(e, ino); err != nil {
		return err
	}
	zero := make([]byte, 8)
	if err := fs.X.Dealloc(e, fs.imap,
		[]xn.Mod{{Off: imapSlotsOff + slot*8, Bytes: zero}},
		udf.Extent{Start: int64(ino), Count: 1, Type: int64(fs.InoT)}); err != nil {
		return err
	}
	delete(fs.files, name)
	return nil
}

// Files lists the live file names.
func (fs *FS) Files() []string {
	out := make([]string, 0, len(fs.files))
	for name := range fs.files {
		out = append(out, name)
	}
	return out
}

// Sync flushes everything in dependency order.
func (fs *FS) Sync(e *kernel.Env) error { return fs.X.Sync(e) }

// Clean compacts the region [start, start+count): every live file with
// blocks inside it is re-logged at the tail, freeing the region (the
// LFS cleaner).
func (fs *FS) Clean(e *kernel.Env, start disk.BlockNo, count int64) (moved int, err error) {
	e.LibCall(200)
	end := start + disk.BlockNo(count)
	inRegion := func(b disk.BlockNo, c uint32) bool {
		return b < end && b+disk.BlockNo(c) > start
	}
	// Collect victims first: re-logging mutates the imap.
	var victims []string
	for name := range fs.files {
		_, ino, err := fs.inodeOf(e, name)
		if err != nil {
			return moved, err
		}
		hit := inRegion(ino, 1)
		if !hit {
			for _, ext := range decodeExtents(fs.X.PageData(ino)) {
				if inRegion(ext.Start, ext.Count) {
					hit = true
					break
				}
			}
		}
		if hit {
			victims = append(victims, name)
		}
	}
	for _, name := range victims {
		data, err := fs.ReadFile(e, name)
		if err != nil {
			return moved, err
		}
		// Point the tail past the region so the rewrite lands outside.
		if fs.tail >= start && fs.tail < end {
			fs.tail = end
		}
		if err := fs.WriteFile(e, name, data); err != nil {
			return moved, err
		}
		moved++
	}
	return moved, nil
}
