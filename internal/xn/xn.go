// Package xn implements XN, Xok's extensible, low-level in-kernel
// stable storage system (Section 4). XN provides access to storage at
// the level of disk blocks and exports a buffer cache registry, a free
// map, and template/root catalogues. Its job is to determine, as
// efficiently as possible, the access rights of a principal to a disk
// block — without understanding the metadata layouts of the library
// file systems (libFSes) built above it.
//
// The cornerstone is UDFs (untrusted deterministic functions,
// internal/udf): each metadata type is described once, in a template,
// by three functions —
//
//	owns-udf  (deterministic) — metadata bytes -> owned extents
//	acl-uf    — approves/denies a proposed modification
//	size-uf   — byte size of the structure
//
// To allocate a block b into metadata m, a libFS hands XN m, b and a
// proposed byte-level modification to m. XN runs owns-udf(m), applies
// the modification to a copy, runs owns-udf(m'), and verifies the new
// ownership set equals the old set plus exactly b (Section 4.1). The
// symmetric check guards deallocation, and a modification that must not
// change ownership at all (Modify) is verified to have an empty delta.
//
// XN also enforces the two Ganger/Patt integrity rules that protect the
// whole system (Section 4.3.2): an on-disk resource is never reused
// before all on-disk pointers to it are nullified (will-free list with
// reference counts), and persistent pointers to uninitialized
// structures are never written (tainted-block tracking, with the
// temporary-filesystem and unattached-subtree exemptions).
package xn

import (
	"bytes"
	"errors"
	"fmt"
	"strconv"

	"xok/internal/cap"
	"xok/internal/disk"
	"xok/internal/kernel"
	"xok/internal/mem"
	"xok/internal/sim"
	"xok/internal/trace"
	"xok/internal/udf"
)

// TemplateID names an installed template.
type TemplateID int64

// ExtentPair is a (start, count) run of blocks — the common currency
// of libFS extent tables.
type ExtentPair struct {
	Start disk.BlockNo
	Count uint32
}

// Reserved template IDs.
const (
	// TmplUnknown marks a registry entry whose type is not yet known
	// (raw speculative reads, Section 4.4).
	TmplUnknown TemplateID = 0
)

// Template describes one on-disk metadata type (Section 4.1). Once
// installed, a template cannot be changed.
type Template struct {
	ID   TemplateID
	Name string // unique string, e.g. "FFS Inode"

	Owns *udf.Program // deterministic: metadata -> extents
	Acl  *udf.Program // modification approval (may read env)
	Size *udf.Program // structure size in bytes

	// Temporary marks types belonging to a non-persistent file system:
	// exempt from the ordering rules (Section 4.3.2).
	Temporary bool

	// AclAtParent routes access-control checks to the parent's acl-uf
	// instead of this type's own. Data blocks carry no permission
	// information of their own, so "access control through acl-uf is
	// performed at the parent (e.g., if the data loaded is a bare disk
	// block), at the child (e.g., if the data is an inode), or both"
	// (Section 4.4).
	AclAtParent bool
}

// Root is a persistent entry in the root catalogue: "a root entry
// consists of a disk extent and corresponding template type, identified
// by a unique string" (Section 4.4).
type Root struct {
	Name      string
	Start     disk.BlockNo
	Count     int64
	Tmpl      TemplateID
	Temporary bool
}

// Errors.
var (
	ErrBadTemplate    = errors.New("xn: template verification failed")
	ErrDupTemplate    = errors.New("xn: template name already installed")
	ErrNoTemplate     = errors.New("xn: unknown template")
	ErrDupRoot        = errors.New("xn: root name already registered")
	ErrNoRoot         = errors.New("xn: unknown root")
	ErrNotInRegistry  = errors.New("xn: block not in buffer cache registry")
	ErrNotResident    = errors.New("xn: block not resident")
	ErrNotOwned       = errors.New("xn: metadata does not own requested block")
	ErrBadDelta       = errors.New("xn: modification changes ownership incorrectly")
	ErrNotFree        = errors.New("xn: requested block is not free")
	ErrAccessDenied   = errors.New("xn: acl-uf rejected the operation")
	ErrTainted        = errors.New("xn: write would persist pointer to uninitialized data")
	ErrLocked         = errors.New("xn: registry entry locked by another environment")
	ErrPinned         = errors.New("xn: block pinned by another application")
	ErrMetadataRW     = errors.New("xn: metadata blocks may not be mapped read/write")
	ErrOutOfRange     = errors.New("xn: block outside volume")
	ErrUDF            = errors.New("xn: UDF execution failed")
	ErrWrongParent    = errors.New("xn: entry bound to a different parent")
	ErrStillReachable = errors.New("xn: block still has on-disk references")
)

// Layout of the reserved area (in blocks).
const (
	superBlock    = 0
	tmplCatStart  = 1
	tmplCatBlocks = 16
	rootCatStart  = tmplCatStart + tmplCatBlocks
	rootCatBlocks = 8
	reservedEnd   = rootCatStart + rootCatBlocks
)

// XN is the storage system for one disk.
type XN struct {
	K *kernel.Kernel
	D *disk.Disk
	M *mem.PhysMem

	templates map[TemplateID]*Template
	tmplNames map[string]TemplateID
	nextTmpl  TemplateID

	roots map[string]Root

	free *bitmap

	reg map[disk.BlockNo]*Entry

	// useClock stamps registry entries for LRU recycling. Per-machine
	// state: a package-level clock would be a data race (and a hidden
	// cross-machine coupling) once machines run on parallel workers.
	useClock uint64

	// onDiskOwns is what each written metadata block pointed to the
	// last time it hit the disk; diffing against it on each write
	// maintains diskRefs.
	onDiskOwns map[disk.BlockNo][]udf.Extent
	// diskRefs counts on-disk pointers to each block.
	diskRefs map[disk.BlockNo]int
	// willFree holds deallocated blocks awaiting diskRefs == 0
	// ("XN enqueues the block on a 'will free' list until the block's
	// reference count is zero", Section 4.4).
	willFree map[disk.BlockNo]bool

	// FreeCost disables per-call trap and UDF charging. The monolithic
	// BSD personalities reuse this package as their in-kernel file
	// system substrate: there, block bookkeeping is ordinary kernel
	// code whose cost is charged by the syscall layer above, not a
	// protection boundary. Xok machines leave this false — the
	// difference is precisely the paper's "cost of protection"
	// (Section 6.3).
	FreeCost bool

	// MaxCachePages caps buffer-cache size (0 = unlimited). See
	// getPage in ops.go.
	MaxCachePages int

	// FlushBehind, when non-zero, starts asynchronous write-back once
	// more than this many blocks are dirty (C-FFS flush-behind: writes
	// are asynchronous but dirty data does not accumulate unboundedly).
	FlushBehind int

	dirtyCount int

	// modScratch is the reusable shadow-copy buffer mutateMeta uses to
	// trial-apply a modification before owns-udf re-verification, sized
	// to the largest metadata block seen. modScratchBusy marks it held
	// across a charging park (see mutateMeta); a re-entering env then
	// allocates privately rather than sharing.
	modScratch     []byte
	modScratchBusy bool

	// Catalogue write-through batching and scratch (see catalog.go).
	catFlushHold  int
	catFlushDirty bool
	catBuf        bytes.Buffer
	catScratch    []byte
}

// New attaches XN to a kernel's disk and formats the volume (mkfs):
// fresh catalogues, everything past the reserved area free. Use Mount
// to attach to an existing volume instead.
func New(k *kernel.Kernel) *XN {
	x := newEmpty(k)
	x.free = newBitmap(k.Disk.NumBlocks())
	x.free.setRange(reservedEnd, k.Disk.NumBlocks(), true)
	x.flushCatalogues()
	return x
}

func newEmpty(k *kernel.Kernel) *XN {
	if k.Disk == nil {
		panic("xn: kernel has no disk")
	}
	return &XN{
		K:          k,
		D:          k.Disk,
		M:          k.Mem,
		templates:  make(map[TemplateID]*Template),
		tmplNames:  make(map[string]TemplateID),
		nextTmpl:   1,
		roots:      make(map[string]Root),
		reg:        make(map[disk.BlockNo]*Entry),
		onDiskOwns: make(map[disk.BlockNo][]udf.Extent),
		diskRefs:   make(map[disk.BlockNo]int),
		willFree:   make(map[disk.BlockNo]bool),
	}
}

// InstallTemplate verifies the three UDFs and installs a new type in
// the type catalogue. "Creating new file formats should be simple and
// lightweight. It should not require any special privilege"
// (Section 4): any environment may call this.
func (x *XN) InstallTemplate(e *kernel.Env, t Template) (TemplateID, error) {
	x.charge(e, sim.Time(200))
	if _, dup := x.tmplNames[t.Name]; dup {
		return 0, ErrDupTemplate
	}
	if t.Owns == nil || t.Acl == nil || t.Size == nil {
		return 0, fmt.Errorf("%w: missing UDF", ErrBadTemplate)
	}
	// owns-udf must be deterministic; acl-uf and size-uf may not.
	if err := udf.Verify(t.Owns, true); err != nil {
		return 0, fmt.Errorf("%w: owns: %v", ErrBadTemplate, err)
	}
	if err := udf.Verify(t.Acl, false); err != nil {
		return 0, fmt.Errorf("%w: acl: %v", ErrBadTemplate, err)
	}
	if err := udf.Verify(t.Size, false); err != nil {
		return 0, fmt.Errorf("%w: size: %v", ErrBadTemplate, err)
	}
	t.ID = x.nextTmpl
	x.nextTmpl++
	tc := t
	x.templates[t.ID] = &tc
	x.tmplNames[t.Name] = t.ID
	x.flushCatalogues()
	return t.ID, nil
}

// TemplateByName looks up an installed template (exposed catalogue).
func (x *XN) TemplateByName(name string) (*Template, bool) {
	id, ok := x.tmplNames[name]
	if !ok {
		return nil, false
	}
	return x.templates[id], true
}

// Template returns the template with the given id.
func (x *XN) Template(id TemplateID) (*Template, bool) {
	t, ok := x.templates[id]
	return t, ok
}

// RegisterRoot records a persistent root in the root catalogue
// (Section 4.4, "LibFS persistence"). The extent must be allocated
// first (via Alloc or claimed from the free map at mkfs time with
// AllocRootExtent).
func (x *XN) RegisterRoot(e *kernel.Env, r Root) error {
	x.charge(e, 200)
	if _, dup := x.roots[r.Name]; dup {
		return ErrDupRoot
	}
	if _, ok := x.templates[r.Tmpl]; !ok {
		return ErrNoTemplate
	}
	x.roots[r.Name] = r
	// Root catalogue references are on-disk pointers: they pin the
	// extent across crashes.
	for i := int64(0); i < r.Count; i++ {
		x.diskRefs[r.Start+disk.BlockNo(i)]++
	}
	x.flushCatalogues()
	return nil
}

// LookupRoot returns a root catalogue entry.
func (x *XN) LookupRoot(e *kernel.Env, name string) (Root, error) {
	x.charge(e, 50)
	r, ok := x.roots[name]
	if !ok {
		return Root{}, ErrNoRoot
	}
	return r, nil
}

// AllocRootExtent claims count free contiguous blocks for a new libFS
// root, preferring the given start hint. Used at libFS-creation time,
// before any metadata exists to hang an Alloc off.
func (x *XN) AllocRootExtent(e *kernel.Env, hint disk.BlockNo, count int64) (disk.BlockNo, error) {
	x.charge(e, 200)
	start, ok := x.free.findRun(int64(hint), count)
	if !ok {
		return 0, ErrNotFree
	}
	x.free.setRange(start, start+count, false)
	return disk.BlockNo(start), nil
}

// FreeBlocks reports the number of free blocks (exposed free map).
func (x *XN) FreeBlocks() int64 { return x.free.count() }

// IsFree reports whether block b is free (libFSes read the free map to
// control layout, Section 4.4 "Allocate").
func (x *XN) IsFree(b disk.BlockNo) bool {
	return x.free.get(int64(b))
}

// FindFree locates a run of count free blocks at or after hint,
// wrapping once. Pure free-map read: libFSes use it to choose layout.
func (x *XN) FindFree(hint disk.BlockNo, count int64) (disk.BlockNo, bool) {
	start, ok := x.free.findRun(int64(hint), count)
	return disk.BlockNo(start), ok
}

// charge bills e for one XN system call plus work; nil env runs free
// (mkfs-time setup).
func (x *XN) charge(e *kernel.Env, work sim.Time) {
	if e == nil || x.FreeCost {
		return
	}
	e.Syscall(work)
}

// chargeUDF bills interpreted UDF steps. With tracing on, each
// interpretation becomes a span and a latency sample, so the cost of
// in-kernel UDF interpretation is attributable per call.
func (x *XN) chargeUDF(e *kernel.Env, steps int) {
	x.K.Stats.Add(sim.CtrUDFSteps, int64(steps))
	if e != nil && !x.FreeCost {
		if tr := x.K.Trace; tr != nil {
			begin := x.K.Now()
			e.Use(sim.Time(steps) * sim.CostUDFStep)
			now := x.K.Now()
			tr.Span(x.K.TracePID, e.TraceLane(), "xn", "udf", begin, now,
				trace.Arg{Key: "steps", Val: strconv.Itoa(steps)})
			tr.Observe(x.K.TracePID, "xn.udf", now-begin)
			return
		}
		e.Use(sim.Time(steps) * sim.CostUDFStep)
	}
}

// NextTemplateID previews the ID the next InstallTemplate call will
// assign (exposed information; self-referential templates like a
// directory type that owns other directories need it to compile their
// owns-udf).
func (x *XN) NextTemplateID() TemplateID { return x.nextTmpl }

// runOwns interprets a template's owns-udf over metadata bytes.
func (x *XN) runOwns(e *kernel.Env, t *Template, meta []byte) ([]udf.Extent, error) {
	res, err := udf.Run(t.Owns, meta, nil, nil, 0)
	x.chargeUDF(e, res.Steps)
	if err != nil {
		return nil, fmt.Errorf("%w: owns-udf(%s): %v", ErrUDF, t.Name, err)
	}
	return res.Extents, nil
}

// runAcl interprets acl-uf: metadata, proposed modification bytes, and
// the caller's identity in the environment words.
func (x *XN) runAcl(e *kernel.Env, t *Template, meta, mod []byte, op int64) (bool, error) {
	env := udf.Env{
		int64(x.K.Now().Seconds()), // env[0]: time of day
		op,                         // env[1]: operation code
		credWord(e, 0),             // env[2]: uid
		credWord(e, 1),             // env[3]: gid
	}
	res, err := udf.Run(t.Acl, meta, mod, env, 0)
	x.chargeUDF(e, res.Steps)
	if err != nil {
		return false, fmt.Errorf("%w: acl-uf(%s): %v", ErrUDF, t.Name, err)
	}
	return res.Ret != 0, nil
}

// Operation codes passed to acl-uf in env[1].
const (
	OpRead    = 1
	OpModify  = 2
	OpAlloc   = 3
	OpDealloc = 4
)

// credWord extracts the caller's uid (i=0) or gid (i=1) from its
// credentials for acl-uf consumption. Root credentials read as 0.
func credWord(e *kernel.Env, i int) int64 {
	if e == nil {
		return 0
	}
	return cap.CredWord(e.Creds, i)
}
