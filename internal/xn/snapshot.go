package xn

import (
	"fmt"

	"xok/internal/disk"
	"xok/internal/kernel"
	"xok/internal/udf"
)

// Snapshot is XN's frozen bookkeeping: the type catalogue, roots, the
// free map, the buffer-cache registry, and the on-disk reference
// counting state. Template values and owns-extent slices are shared
// with the live XN and its forks rather than deep-copied — both are
// immutable once stored (templates never change after install;
// completeWrite replaces onDiskOwns slices wholesale) — so a snapshot
// costs the tables, not the data they index. Forking from one
// Snapshot is safe from concurrent goroutines: forks only read it.
type Snapshot struct {
	templates map[TemplateID]*Template
	tmplNames map[string]TemplateID
	nextTmpl  TemplateID

	roots     map[string]Root
	freeWords []uint64
	freeN     int64

	entries  []Entry // registry, flattened; waiters nil, nothing in flight
	useClock uint64

	onDiskOwns map[disk.BlockNo][]udf.Extent
	diskRefs   map[disk.BlockNo]int
	willFree   map[disk.BlockNo]bool

	freeCost      bool
	maxCachePages int
	flushBehind   int
	dirtyCount    int
}

// Snapshot captures XN's state. The kernel-level quiescence check
// (engine drained, no environments) already rules out in-flight reads
// and flush-behind writes; the errors here are defensive — they catch
// a caller snapshotting from inside an operation.
func (x *XN) Snapshot() (*Snapshot, error) {
	if x.catFlushHold != 0 {
		return nil, fmt.Errorf("xn: snapshot with catalogue flush suspended (%d holds)", x.catFlushHold)
	}
	if x.modScratchBusy {
		return nil, fmt.Errorf("xn: snapshot from inside a metadata modification")
	}
	s := &Snapshot{
		templates:     make(map[TemplateID]*Template, len(x.templates)),
		tmplNames:     make(map[string]TemplateID, len(x.tmplNames)),
		nextTmpl:      x.nextTmpl,
		roots:         make(map[string]Root, len(x.roots)),
		freeWords:     append([]uint64(nil), x.free.words...),
		freeN:         x.free.n,
		entries:       make([]Entry, 0, len(x.reg)),
		useClock:      x.useClock,
		onDiskOwns:    make(map[disk.BlockNo][]udf.Extent, len(x.onDiskOwns)),
		diskRefs:      make(map[disk.BlockNo]int, len(x.diskRefs)),
		willFree:      make(map[disk.BlockNo]bool, len(x.willFree)),
		freeCost:      x.FreeCost,
		maxCachePages: x.MaxCachePages,
		flushBehind:   x.FlushBehind,
		dirtyCount:    x.dirtyCount,
	}
	for id, t := range x.templates {
		s.templates[id] = t
	}
	for n, id := range x.tmplNames {
		s.tmplNames[n] = id
	}
	for n, r := range x.roots {
		s.roots[n] = r
	}
	for _, en := range x.reg {
		if en.flushing {
			return nil, fmt.Errorf("xn: snapshot with flush-behind write in flight on block %d", en.Block)
		}
		if len(en.waiters) != 0 {
			return nil, fmt.Errorf("xn: snapshot with %d environments waiting on block %d", len(en.waiters), en.Block)
		}
		cp := *en
		cp.waiters = nil
		s.entries = append(s.entries, cp)
	}
	for b, owns := range x.onDiskOwns {
		s.onDiskOwns[b] = owns
	}
	for b, n := range x.diskRefs {
		s.diskRefs[b] = n
	}
	for b, v := range x.willFree {
		s.willFree[b] = v
	}
	return s, nil
}

// Fork rebuilds an XN from the snapshot on a forked kernel (whose
// memory and disk are the copy-on-write forks of the snapshotted
// machine's). Page numbers in registry entries are valid by
// construction: the forked PhysMem has the identical frame layout.
func ForkXN(s *Snapshot, k *kernel.Kernel) *XN {
	x := newEmpty(k)
	x.nextTmpl = s.nextTmpl
	x.useClock = s.useClock
	x.FreeCost = s.freeCost
	x.MaxCachePages = s.maxCachePages
	x.FlushBehind = s.flushBehind
	x.dirtyCount = s.dirtyCount
	x.free = &bitmap{words: append([]uint64(nil), s.freeWords...), n: s.freeN}
	for id, t := range s.templates {
		x.templates[id] = t
	}
	for n, id := range s.tmplNames {
		x.tmplNames[n] = id
	}
	for n, r := range s.roots {
		x.roots[n] = r
	}
	for i := range s.entries {
		en := s.entries[i]
		x.reg[en.Block] = &en
	}
	for b, owns := range s.onDiskOwns {
		x.onDiskOwns[b] = owns
	}
	for b, n := range s.diskRefs {
		x.diskRefs[b] = n
	}
	for b, v := range s.willFree {
		x.willFree[b] = v
	}
	return x
}
