package xn

// bitmap is XN's free map: bit set = block free. LibFSes read it to
// control their own layout; only XN writes it.
type bitmap struct {
	words []uint64
	n     int64
}

func newBitmap(n int64) *bitmap {
	return &bitmap{words: make([]uint64, (n+63)/64), n: n}
}

func (b *bitmap) get(i int64) bool {
	if i < 0 || i >= b.n {
		return false
	}
	return b.words[i/64]&(1<<(uint(i)%64)) != 0
}

func (b *bitmap) set(i int64, v bool) {
	if i < 0 || i >= b.n {
		return
	}
	if v {
		b.words[i/64] |= 1 << (uint(i) % 64)
	} else {
		b.words[i/64] &^= 1 << (uint(i) % 64)
	}
}

func (b *bitmap) setRange(lo, hi int64, v bool) {
	for i := lo; i < hi; i++ {
		b.set(i, v)
	}
}

func (b *bitmap) count() int64 {
	var c int64
	for _, w := range b.words {
		for w != 0 {
			w &= w - 1
			c++
		}
	}
	return c
}

// findRun locates `count` consecutive free blocks at or after hint,
// wrapping around once. Returns (start, ok).
func (b *bitmap) findRun(hint, count int64) (int64, bool) {
	if count <= 0 || count > b.n {
		return 0, false
	}
	if hint < 0 || hint >= b.n {
		hint = 0
	}
	check := func(lo, hi int64) (int64, bool) {
		run := int64(0)
		for i := lo; i < hi; i++ {
			if b.get(i) {
				run++
				if run == count {
					return i - count + 1, true
				}
			} else {
				run = 0
			}
		}
		return 0, false
	}
	if s, ok := check(hint, b.n); ok {
		return s, true
	}
	return check(0, hint+count) // wrap (overlap covers runs crossing hint)
}
