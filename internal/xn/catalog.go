package xn

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"fmt"
	"sort"

	"xok/internal/disk"
	"xok/internal/kernel"
	"xok/internal/sim"
)

// The template and root catalogues are persistent: "once installed,
// types are persistent across reboots" (Section 4.4). The simulation
// serializes both into the reserved block area so that Mount — and the
// crash-recovery path — can reconstruct XN entirely from the disk
// image.

const superMagic = 0x584E2D31 // "XN-1"

type catalogImage struct {
	NextTmpl  TemplateID
	Templates []Template
	Roots     []Root
}

// SuspendCatalogueFlush defers catalogue write-through until the
// matching ResumeCatalogueFlush. mkfs installs a handful of templates
// and roots back to back; re-serializing the whole catalogue after each
// one is pure overhead, so the format path brackets its setup with a
// suspend/resume pair and pays for one flush. Calls nest. The deferred
// state is only in-memory maps — crash boundaries cannot fall inside
// the bracket because catalogue writes use the untimed PokeBlock path
// and the machine has run no timed work yet.
func (x *XN) SuspendCatalogueFlush() { x.catFlushHold++ }

// ResumeCatalogueFlush re-enables write-through and performs the flush
// skipped while suspended, if any.
func (x *XN) ResumeCatalogueFlush() {
	if x.catFlushHold == 0 {
		panic("xn: ResumeCatalogueFlush without suspend")
	}
	x.catFlushHold--
	if x.catFlushHold == 0 && x.catFlushDirty {
		x.catFlushDirty = false
		x.flushCatalogues()
	}
}

// flushCatalogues serializes the catalogues into the reserved blocks.
// Catalogue updates (template installs, root registrations) are rare
// setup operations; they are written through immediately.
func (x *XN) flushCatalogues() {
	if x.catFlushHold > 0 {
		x.catFlushDirty = true
		return
	}
	img := catalogImage{NextTmpl: x.nextTmpl}
	for _, t := range x.templates {
		img.Templates = append(img.Templates, *t)
	}
	sort.Slice(img.Templates, func(i, j int) bool { return img.Templates[i].ID < img.Templates[j].ID })
	for _, r := range x.roots {
		img.Roots = append(img.Roots, r)
	}
	sort.Slice(img.Roots, func(i, j int) bool { return img.Roots[i].Name < img.Roots[j].Name })

	x.catBuf.Reset()
	if err := gob.NewEncoder(&x.catBuf).Encode(&img); err != nil {
		panic(fmt.Sprintf("xn: catalogue encode: %v", err))
	}
	capacity := (tmplCatBlocks + rootCatBlocks) * sim.DiskBlockSize
	if x.catBuf.Len() > capacity {
		panic(fmt.Sprintf("xn: catalogue image %d bytes exceeds reserved area %d", x.catBuf.Len(), capacity))
	}

	// One scratch block serves the superblock and every catalogue block:
	// PokeBlock copies the bytes into the media, never retaining them.
	if x.catScratch == nil {
		x.catScratch = make([]byte, sim.DiskBlockSize)
	}
	blk := x.catScratch
	clear(blk)
	binary.LittleEndian.PutUint32(blk[0:], superMagic)
	binary.LittleEndian.PutUint32(blk[4:], uint32(x.catBuf.Len()))
	x.D.PokeBlock(superBlock, blk)

	data := x.catBuf.Bytes()
	for i := 0; i < tmplCatBlocks+rootCatBlocks; i++ {
		clear(blk)
		lo := i * sim.DiskBlockSize
		if lo < len(data) {
			hi := lo + sim.DiskBlockSize
			if hi > len(data) {
				hi = len(data)
			}
			copy(blk, data[lo:hi])
		}
		x.D.PokeBlock(disk.BlockNo(tmplCatStart+i), blk)
	}
}

// Mount attaches XN to a previously-formatted disk: it reads the
// catalogues back and reconstructs the free map by garbage-collecting
// from the roots — "XN uses these roots to garbage-collect the disk by
// reconstructing the free map ... reachable blocks are allocated,
// non-reachable blocks are not" (Section 4.4). This is also the crash
// recovery path: after a simulated crash, Mount on the surviving disk
// image restores a consistent XN.
func Mount(k *kernel.Kernel) (*XN, error) {
	x := newEmpty(k)
	super := x.D.ViewBlock(superBlock)
	if binary.LittleEndian.Uint32(super[0:]) != superMagic {
		return nil, fmt.Errorf("xn: no XN volume on disk")
	}
	size := int(binary.LittleEndian.Uint32(super[4:]))
	data := make([]byte, 0, size)
	for i := 0; len(data) < size; i++ {
		blk := x.D.ViewBlock(disk.BlockNo(tmplCatStart + i))
		need := size - len(data)
		if need > len(blk) {
			need = len(blk)
		}
		data = append(data, blk[:need]...)
	}
	var img catalogImage
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&img); err != nil {
		return nil, fmt.Errorf("xn: catalogue decode: %v", err)
	}
	x.nextTmpl = img.NextTmpl
	for i := range img.Templates {
		t := img.Templates[i]
		x.templates[t.ID] = &t
		x.tmplNames[t.Name] = t.ID
	}
	for _, r := range img.Roots {
		if r.Temporary {
			continue // temporary file systems do not survive reboot
		}
		x.roots[r.Name] = r
	}
	x.free = newBitmap(x.D.NumBlocks())
	x.free.setRange(reservedEnd, x.D.NumBlocks(), true)
	x.recoverGC()
	return x, nil
}

// recoverGC rebuilds the free map and the on-disk reference counts by
// logically traversing all roots and all blocks reachable from them.
func (x *XN) recoverGC() {
	type frame struct {
		b    disk.BlockNo
		tmpl TemplateID
	}
	visited := make(map[disk.BlockNo]bool)
	var stack []frame

	names := make([]string, 0, len(x.roots))
	for name := range x.roots {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		r := x.roots[name]
		for i := int64(0); i < r.Count; i++ {
			b := r.Start + disk.BlockNo(i)
			x.diskRefs[b]++
			x.free.set(int64(b), false)
			stack = append(stack, frame{b, r.Tmpl})
		}
	}

	for len(stack) > 0 {
		f := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if visited[f.b] {
			continue
		}
		visited[f.b] = true
		t, ok := x.templates[f.tmpl]
		if !ok {
			continue
		}
		data := x.D.ViewBlock(f.b)
		extents, err := x.runOwns(nil, t, data)
		if err != nil {
			// A block whose owns-udf faults owns nothing; the write
			// ordering rules guarantee reachable metadata is intact,
			// so this only happens for hostile or leaf content.
			continue
		}
		x.onDiskOwns[f.b] = extents
		for _, ext := range extents {
			for j := int64(0); j < ext.Count; j++ {
				c := disk.BlockNo(ext.Start + j)
				if int64(c) < reservedEnd || int64(c) >= x.D.NumBlocks() {
					continue
				}
				x.diskRefs[c]++
				x.free.set(int64(c), false)
				stack = append(stack, frame{c, TemplateID(ext.Type)})
			}
		}
	}
}
