package xn

import (
	"encoding/binary"
	"fmt"
	"sort"

	"xok/internal/cap"
	"xok/internal/disk"
	"xok/internal/fault"
	"xok/internal/kernel"
	"xok/internal/mem"
	"xok/internal/sim"
	"xok/internal/udf"
)

// Mod is one piece of a proposed metadata modification: "specified as a
// list of bytes to write into m" (Section 4.1).
type Mod struct {
	Off   int
	Bytes []byte
}

// applyMods writes the modification into data, checking bounds.
func applyMods(data []byte, mods []Mod) error {
	for _, m := range mods {
		if m.Off < 0 || m.Off+len(m.Bytes) > len(data) {
			return fmt.Errorf("xn: modification [%d,+%d) outside metadata", m.Off, len(m.Bytes))
		}
		copy(data[m.Off:], m.Bytes)
	}
	return nil
}

// modsToAux serializes a modification for acl-uf consumption:
// repeated (off:le32, len:le32, bytes).
func modsToAux(mods []Mod) []byte {
	var out []byte
	for _, m := range mods {
		var hdr [8]byte
		binary.LittleEndian.PutUint32(hdr[0:], uint32(m.Off))
		binary.LittleEndian.PutUint32(hdr[4:], uint32(len(m.Bytes)))
		out = append(out, hdr[:]...)
		out = append(out, m.Bytes...)
	}
	return out
}

// getPage obtains a physical page for buffer-cache use, recycling the
// LRU buffer when the cache cap (MaxCachePages; the OpenBSD
// personality's small, non-unified buffer cache) or physical memory is
// exhausted.
func (x *XN) getPage(e *kernel.Env) (mem.PageNo, error) {
	if x.MaxCachePages > 0 && len(x.reg) >= x.MaxCachePages {
		if p, ok := x.RecycleLRU(e); ok {
			return p, nil
		}
	}
	p, err := x.M.Alloc(cap.Root(true))
	if err == nil {
		return p, nil
	}
	if p, ok := x.RecycleLRU(e); ok {
		return p, nil
	}
	// Memory pressure with nothing clean: flush some dirty buffers
	// (write-back under pressure) and retry.
	if n, werr := x.WriteBack(e, 64); werr == nil && n > 0 {
		if p, ok := x.RecycleLRU(e); ok {
			return p, nil
		}
	}
	return mem.NoPage, err
}

// Read is the second stage of reading (Section 4.4): supply pages and
// issue disk requests for the listed blocks, blocking the environment
// until all complete. Entries must already exist (Insert, LoadRoot or
// RawRead). pages may be nil (XN allocates from the free page list /
// LRU); if given, pages[i] backs blocks[i] — applications control
// placement.
func (x *XN) Read(e *kernel.Env, blocks []disk.BlockNo, pages []mem.PageNo) error {
	x.charge(e, sim.Time(50*len(blocks)))
	x.K.Stats.Inc(sim.CtrRegistryOps)

	type readOp struct {
		block disk.BlockNo
		entry *Entry
	}
	var ops []readOp
	for i, b := range blocks {
		en, ok := x.reg[b]
		if !ok {
			return ErrNotInRegistry
		}
		switch en.State {
		case StateResident:
			x.K.Stats.Inc(sim.CtrCacheHits)
			x.touch(en)
			continue
		case StateInTransit:
			// Another environment's read is in flight; wait for it.
			if e != nil {
				en.waiters = append(en.waiters, e)
			}
			continue
		}
		if en.Uninit {
			// The block was allocated but its on-disk content never
			// initialized: whatever lives there belongs to a previous
			// owner. Serve a zero page without touching the disk — the
			// UNIX hole contract (reading past what was written sees
			// zeros) and stale-data containment in one. Uninit stays
			// set: it describes the *disk*, which is still garbage.
			x.K.Stats.Inc(sim.CtrCacheHits)
			if en.Page == mem.NoPage {
				var p mem.PageNo
				if pages != nil && i < len(pages) && pages[i] != mem.NoPage {
					p = pages[i]
				} else {
					var err error
					p, err = x.getPage(e)
					if err != nil {
						return err
					}
				}
				en.Page = p
				x.M.Ref(p)
			}
			d := x.M.Data(en.Page)
			for j := range d {
				d[j] = 0
			}
			en.setState(StateResident)
			x.touch(en)
			continue
		}
		x.K.Stats.Inc(sim.CtrCacheMisses)
		if en.Page == mem.NoPage {
			var p mem.PageNo
			if pages != nil && i < len(pages) && pages[i] != mem.NoPage {
				p = pages[i]
			} else {
				var err error
				p, err = x.getPage(e)
				if err != nil {
					return err
				}
			}
			en.Page = p
			x.M.Ref(p)
		}
		en.setState(StateInTransit)
		ops = append(ops, readOp{b, en})
	}

	// Coalesce contiguous runs so large sorted schedules hit the disk
	// as large requests.
	sort.Slice(ops, func(i, j int) bool { return ops[i].block < ops[j].block })
	submit := func(run []readOp) {
		pagesData := make([][]byte, len(run))
		for i, op := range run {
			pagesData[i] = x.M.Data(op.entry.Page)
		}
		x.D.Submit(&disk.Request{
			Block: run[0].block,
			Count: len(run),
			Pages: pagesData,
			Done: func(req *disk.Request) {
				x.K.ChargeInterrupt(sim.DiskInterruptCost)
				for _, op := range run {
					if req.Err != nil {
						// Media error: no data arrived. The entry
						// falls back out of core so a later read can
						// retry; waiters wake and see the failure.
						op.entry.setState(StateOutOfCore)
					} else {
						op.entry.setState(StateResident)
						op.entry.Uninit = false
						x.touch(op.entry)
					}
					for _, w := range op.entry.waiters {
						x.K.Wake(w)
					}
					op.entry.waiters = nil
				}
				if e != nil {
					x.K.Wake(e)
				}
			},
		})
	}
	start := 0
	nreq := 0
	for i := 1; i <= len(ops); i++ {
		if i == len(ops) || ops[i].block != ops[i-1].block+1 {
			submit(ops[start:i])
			nreq++
			start = i
		}
	}
	x.chargeIO(e, nreq)
	if e != nil {
		for {
			pending := false
			for _, b := range blocks {
				en, ok := x.reg[b]
				if !ok {
					return ErrNotInRegistry
				}
				switch en.State {
				case StateResident:
				case StateInTransit:
					pending = true
				default:
					// We (or the read we piggybacked on) hit a media
					// error and the entry fell back out of core.
					return fault.ErrMedia
				}
			}
			if !pending {
				return nil
			}
			e.Block()
		}
	}
	return nil
}

// chargeIO charges the unavoidable kernel crossing that starts a disk
// request even when protection-boundary charging is off (FreeCost):
// "without XN" still means trapping to program the controller. This is
// what keeps the Section 6.3 comparison honest — removing XN removes
// most system calls, not all of them (300,000 -> 81,000 in the paper).
func (x *XN) chargeIO(e *kernel.Env, nreq int) {
	if e == nil || nreq == 0 || !x.FreeCost {
		return
	}
	x.K.Stats.Add(sim.CtrSyscalls, int64(nreq))
	e.Use(sim.Time(nreq) * x.K.TrapCost())
}

func (x *XN) allResident(blocks []disk.BlockNo) bool {
	for _, b := range blocks {
		if en, ok := x.reg[b]; !ok || en.State != StateResident {
			return false
		}
	}
	return true
}

// RawRead speculatively reads a block before its parent is known
// (Section 4.4). The entry is marked "unknown type" and cannot be used
// until Insert binds it to a parent.
func (x *XN) RawRead(e *kernel.Env, b disk.BlockNo) error {
	if int64(b) < reservedEnd || int64(b) >= x.D.NumBlocks() {
		return ErrOutOfRange
	}
	if _, ok := x.reg[b]; !ok {
		x.reg[b] = &Entry{
			Block:    b,
			Page:     mem.NoPage,
			State:    StateOutOfCore,
			Tmpl:     TmplUnknown,
			Parent:   NoParent,
			LockedBy: NoEnv,
		}
	}
	return x.Read(e, []disk.BlockNo{b}, nil)
}

// MapData performs the bind-time access check for mapping a cached
// block into an environment (secure bindings: "the permission to read
// a cached disk block is checked when the page is inserted into the
// page table ... rather than on every access", Section 4.3.1).
// Metadata blocks may never be mapped writable.
func (x *XN) MapData(e *kernel.Env, b disk.BlockNo, write bool) (mem.PageNo, error) {
	x.charge(e, 100)
	en, ok := x.reg[b]
	if !ok {
		return mem.NoPage, ErrNotInRegistry
	}
	if en.State != StateResident {
		return mem.NoPage, ErrNotResident
	}
	if write && x.isMetadata(en.Tmpl) {
		return mem.NoPage, ErrMetadataRW
	}
	if err := x.checkAccess(e, en, write); err != nil {
		return mem.NoPage, err
	}
	x.touch(en)
	return en.Page, nil
}

// checkAccess runs the appropriate acl-uf for the entry: its own
// template's, or — for types with AclAtParent, such as bare data
// blocks — the parent's over the parent's metadata.
func (x *XN) checkAccess(e *kernel.Env, en *Entry, write bool) error {
	t, ok := x.templates[en.Tmpl]
	if !ok {
		return ErrNoTemplate
	}
	op := int64(OpRead)
	if write {
		op = OpModify
	}
	target := en
	if t.AclAtParent {
		if en.Parent == NoParent {
			return ErrNotOwned
		}
		pen, ok := x.reg[en.Parent]
		if !ok || pen.State != StateResident {
			return ErrNotResident
		}
		target = pen
		t, ok = x.templates[pen.Tmpl]
		if !ok {
			return ErrNoTemplate
		}
	}
	// A freshly allocated block has no content yet; its acl-uf runs
	// over empty metadata (self-describing types that need their own
	// bytes for access control must check after InitMetadata).
	var meta []byte
	if target.Page != mem.NoPage && target.State == StateResident {
		meta = x.M.Data(target.Page)
	}
	okAcl, err := x.runAcl(e, t, meta, nil, op)
	if err != nil {
		return err
	}
	if !okAcl {
		return ErrAccessDenied
	}
	return nil
}

// AttachPage supplies a zeroed page for a freshly allocated block so
// the application can fill it (data path). The write-access check
// happens here, at bind time.
func (x *XN) AttachPage(e *kernel.Env, b disk.BlockNo) (mem.PageNo, error) {
	x.charge(e, 100)
	en, ok := x.reg[b]
	if !ok {
		return mem.NoPage, ErrNotInRegistry
	}
	if en.State == StateResident {
		return mem.NoPage, fmt.Errorf("xn: block %d already resident", b)
	}
	if x.isMetadata(en.Tmpl) {
		return mem.NoPage, ErrMetadataRW
	}
	if err := x.checkAccess(e, en, true); err != nil {
		return mem.NoPage, err
	}
	p, err := x.getPage(e)
	if err != nil {
		return mem.NoPage, err
	}
	en.Page = p
	x.M.Ref(p)
	en.setState(StateResident)
	d := x.M.Data(p)
	for i := range d {
		d[i] = 0
	}
	x.touch(en)
	return p, nil
}

// MarkDirty flags a data block modified through its writable mapping.
func (x *XN) MarkDirty(e *kernel.Env, b disk.BlockNo) error {
	x.charge(e, 30)
	en, ok := x.reg[b]
	if !ok {
		return ErrNotInRegistry
	}
	if en.State != StateResident {
		return ErrNotResident
	}
	x.setDirty(en)
	x.touch(en)
	return nil
}

// setDirty marks an entry dirty, maintaining the dirty count and
// triggering flush-behind when configured.
func (x *XN) setDirty(en *Entry) {
	if !en.Dirty {
		en.Dirty = true
		x.dirtyCount++
	}
	x.maybeFlushBehind()
}

// DirtyCount reports the number of dirty blocks (exposed information).
func (x *XN) DirtyCount() int { return x.dirtyCount }

// maybeFlushBehind starts asynchronous write-back of the writable
// dirty blocks when the dirty set exceeds the threshold. The caller
// does not wait; completions arrive through disk events.
func (x *XN) maybeFlushBehind() {
	if x.FlushBehind <= 0 || x.dirtyCount <= x.FlushBehind {
		return
	}
	var flush []disk.BlockNo
	limit := x.dirtyCount - x.FlushBehind/2 // flush down to half-threshold
	for _, b := range x.DirtyBlocks() {
		en := x.reg[b]
		if en.LockedBy != NoEnv || en.State != StateResident || en.flushing {
			continue
		}
		if x.taintCheck(en) != nil {
			continue
		}
		en.flushing = true
		flush = append(flush, b)
		if len(flush) >= limit {
			break
		}
	}
	if len(flush) > 0 {
		// Write with a nil environment: fire and forget.
		_ = x.Write(nil, flush)
	}
}

// AdoptPage makes dest's registry entry share src's physical page and
// marks dest dirty — the zero-touch copy path (Section 7.2): "this
// strategy eliminates all copies; the file is DMAed into and out of
// the buffer cache by the disk controller — the CPU never touches the
// data". Requires read access to src and write access to dest, checked
// at bind time.
func (x *XN) AdoptPage(e *kernel.Env, dest, src disk.BlockNo) error {
	x.charge(e, 60) // page remap, no data movement
	sen, ok := x.reg[src]
	if !ok || sen.State != StateResident || sen.Page == mem.NoPage {
		return ErrNotResident
	}
	den, ok := x.reg[dest]
	if !ok {
		return ErrNotInRegistry
	}
	if x.isMetadata(den.Tmpl) {
		return ErrMetadataRW
	}
	if err := x.checkAccess(e, sen, false); err != nil {
		return err
	}
	if err := x.checkAccess(e, den, true); err != nil {
		return err
	}
	if den.Page != mem.NoPage {
		x.M.Unref(den.Page)
	}
	den.Page = sen.Page
	x.M.Ref(den.Page)
	den.setState(StateResident)
	x.setDirty(den)
	x.touch(den)
	return nil
}

// InitMetadata supplies the initial content of a freshly allocated
// metadata block. The content must own nothing (pointers are added
// later through Alloc, keeping the ownership audit trail intact), and
// must satisfy its own template's acl-uf (well-formedness).
func (x *XN) InitMetadata(e *kernel.Env, b disk.BlockNo, content []byte) error {
	x.charge(e, sim.CopyCost(len(content)))
	en, ok := x.reg[b]
	if !ok {
		return ErrNotInRegistry
	}
	if !en.Uninit {
		return fmt.Errorf("xn: block %d is not awaiting initialization", b)
	}
	t, ok := x.templates[en.Tmpl]
	if !ok {
		return ErrNoTemplate
	}
	if len(content) > sim.DiskBlockSize {
		return fmt.Errorf("xn: init content larger than a block")
	}
	buf := make([]byte, sim.DiskBlockSize)
	copy(buf, content)
	owned, err := x.runOwns(e, t, buf)
	if err != nil {
		return err
	}
	if len(owned) != 0 {
		return fmt.Errorf("%w: initial content may not own blocks", ErrBadDelta)
	}
	okAcl, err := x.runAcl(e, t, buf, nil, OpModify)
	if err != nil {
		return err
	}
	if !okAcl {
		return ErrAccessDenied
	}
	if en.Page == mem.NoPage {
		p, err := x.getPage(e)
		if err != nil {
			return err
		}
		en.Page = p
		x.M.Ref(p)
	}
	copy(x.M.Data(en.Page), buf)
	en.setState(StateResident)
	x.setDirty(en)
	x.touch(en)
	return nil
}

// ownsMap expands extents to a per-block type map for exact delta
// comparison (extent boundaries may shift across a modification).
func ownsMap(extents []udf.Extent) map[disk.BlockNo]int64 {
	m := make(map[disk.BlockNo]int64)
	for _, e := range extents {
		for i := int64(0); i < e.Count; i++ {
			m[disk.BlockNo(e.Start+i)] = e.Type
		}
	}
	return m
}

// verifyDelta checks new = old + add - remove exactly.
func verifyDelta(old, new map[disk.BlockNo]int64, add, remove udf.Extent) error {
	want := make(map[disk.BlockNo]int64, len(old))
	for b, t := range old {
		want[b] = t
	}
	for i := int64(0); i < add.Count; i++ {
		b := disk.BlockNo(add.Start + i)
		if _, dup := want[b]; dup {
			return fmt.Errorf("%w: block %d already owned", ErrBadDelta, b)
		}
		want[b] = add.Type
	}
	for i := int64(0); i < remove.Count; i++ {
		b := disk.BlockNo(remove.Start + i)
		if t, ok := want[b]; !ok || t != remove.Type {
			return fmt.Errorf("%w: block %d not owned with type %d", ErrBadDelta, b, remove.Type)
		}
		delete(want, b)
	}
	if len(new) != len(want) {
		return ErrBadDelta
	}
	for b, t := range want {
		if nt, ok := new[b]; !ok || nt != t {
			return ErrBadDelta
		}
	}
	return nil
}

// mutateMeta is the shared guts of Alloc, Dealloc and Modify: run
// acl-uf, verify the ownership delta of the proposed modification via
// owns-udf before/after (Section 4.1), then commit it to the cached
// page.
func (x *XN) mutateMeta(e *kernel.Env, meta disk.BlockNo, mods []Mod, add, remove udf.Extent, op int64) (*Entry, error) {
	en, ok := x.reg[meta]
	if !ok {
		return nil, ErrNotInRegistry
	}
	if en.State != StateResident {
		return nil, ErrNotResident
	}
	if x.lockedByOther(e, en) {
		return nil, ErrLocked
	}
	t, ok := x.templates[en.Tmpl]
	if !ok {
		return nil, ErrNoTemplate
	}
	data := x.M.Data(en.Page)
	okAcl, err := x.runAcl(e, t, data, modsToAux(mods), op)
	if err != nil {
		return nil, err
	}
	if !okAcl {
		return nil, ErrAccessDenied
	}
	oldOwns, err := x.runOwns(e, t, data)
	if err != nil {
		return nil, err
	}
	// Trial-apply into the shared scratch when no other env holds it.
	// Charging (runOwns below) parks this goroutine, so a second env can
	// enter mutateMeta while we are mid-flight; that rare interleaving
	// falls back to a private buffer instead of clobbering ours.
	var tmp []byte
	if !x.modScratchBusy {
		if len(x.modScratch) < len(data) {
			x.modScratch = make([]byte, len(data))
		}
		tmp = x.modScratch[:len(data)]
		x.modScratchBusy = true
		defer func() { x.modScratchBusy = false }()
	} else {
		tmp = make([]byte, len(data))
	}
	copy(tmp, data)
	if err := applyMods(tmp, mods); err != nil {
		return nil, err
	}
	newOwns, err := x.runOwns(e, t, tmp)
	if err != nil {
		return nil, err
	}
	if err := verifyDelta(ownsMap(oldOwns), ownsMap(newOwns), add, remove); err != nil {
		return nil, err
	}
	// Commit.
	copy(data, tmp)
	x.setDirty(en)
	x.touch(en)
	return en, nil
}

// Alloc allocates the extent's blocks into metadata block meta by
// applying the proposed modification, after verifying (1) acl-uf
// approves, (2) the blocks are free, and (3) owns-udf confirms the
// modification allocates exactly those blocks (Section 4.4).
func (x *XN) Alloc(e *kernel.Env, meta disk.BlockNo, mods []Mod, ext udf.Extent) error {
	x.charge(e, 200)
	for i := int64(0); i < ext.Count; i++ {
		b := ext.Start + i
		if b < reservedEnd || b >= x.D.NumBlocks() {
			return ErrOutOfRange
		}
		if !x.free.get(b) {
			return ErrNotFree
		}
	}
	en, err := x.mutateMeta(e, meta, mods, ext, udf.Extent{}, OpAlloc)
	if err != nil {
		return err
	}
	tmpl := x.templates[en.Tmpl]
	for i := int64(0); i < ext.Count; i++ {
		b := disk.BlockNo(ext.Start + i)
		x.free.set(int64(b), false)
		x.reg[b] = &Entry{
			Block:     b,
			Page:      mem.NoPage,
			State:     StateOutOfCore,
			Uninit:    true,
			Tmpl:      TemplateID(ext.Type),
			Parent:    meta,
			Attached:  en.Attached,
			Temporary: en.Temporary || tmpl.Temporary,
			LockedBy:  NoEnv,
		}
		x.K.Stats.Inc(sim.CtrTaintedBlocks)
	}
	x.recomputeTaint(meta)
	return nil
}

// Dealloc removes the extent from meta's ownership. Freed blocks whose
// on-disk reference count is non-zero go to the will-free list until
// the pointers are nullified by a write (Section 4.4).
func (x *XN) Dealloc(e *kernel.Env, meta disk.BlockNo, mods []Mod, ext udf.Extent) error {
	x.charge(e, 200)
	en, err := x.mutateMeta(e, meta, mods, udf.Extent{}, ext, OpDealloc)
	if err != nil {
		return err
	}
	_ = en
	for i := int64(0); i < ext.Count; i++ {
		b := disk.BlockNo(ext.Start + i)
		if cen, ok := x.reg[b]; ok {
			if cen.Page != mem.NoPage {
				x.M.Unref(cen.Page)
			}
			if cen.Dirty {
				x.dirtyCount--
			}
			delete(x.reg, b)
		}
		x.releaseBlock(b)
	}
	x.recomputeTaint(meta)
	return nil
}

// releaseBlock frees b if nothing on disk points to it, else queues it
// on the will-free list.
func (x *XN) releaseBlock(b disk.BlockNo) {
	if x.diskRefs[b] > 0 {
		x.willFree[b] = true
		return
	}
	delete(x.willFree, b)
	x.free.set(int64(b), true)
	// Freeing a metadata block kills its on-disk pointers.
	if owns, ok := x.onDiskOwns[b]; ok {
		delete(x.onDiskOwns, b)
		for _, ext := range owns {
			for i := int64(0); i < ext.Count; i++ {
				c := disk.BlockNo(ext.Start + i)
				x.decDiskRef(c)
			}
		}
	}
}

func (x *XN) decDiskRef(b disk.BlockNo) {
	if x.diskRefs[b] > 0 {
		x.diskRefs[b]--
	}
	if x.diskRefs[b] == 0 {
		delete(x.diskRefs, b)
		if x.willFree[b] {
			x.releaseBlock(b)
		}
	}
}

// Replace applies a modification that atomically allocates the add
// extent and releases the remove extent in one metadata block — the
// "move" operation of Ganger/Patt rule 3 ("when moving an on-disk
// resource, never reset the old pointer in persistent storage before
// the new one has been set"): because the swap is one cached-block
// modification, the on-disk image transitions in a single write. The
// log-structured file system uses it to swap a file's old inode for
// its freshly-logged replacement.
func (x *XN) Replace(e *kernel.Env, meta disk.BlockNo, mods []Mod, add, remove udf.Extent) error {
	x.charge(e, 250)
	for i := int64(0); i < add.Count; i++ {
		b := add.Start + i
		if b < reservedEnd || b >= x.D.NumBlocks() {
			return ErrOutOfRange
		}
		if !x.free.get(b) {
			return ErrNotFree
		}
	}
	en, err := x.mutateMeta(e, meta, mods, add, remove, OpAlloc)
	if err != nil {
		return err
	}
	tmpl := x.templates[en.Tmpl]
	for i := int64(0); i < add.Count; i++ {
		b := disk.BlockNo(add.Start + i)
		x.free.set(int64(b), false)
		x.reg[b] = &Entry{
			Block:     b,
			Page:      mem.NoPage,
			State:     StateOutOfCore,
			Uninit:    true,
			Tmpl:      TemplateID(add.Type),
			Parent:    meta,
			Attached:  en.Attached,
			Temporary: en.Temporary || tmpl.Temporary,
			LockedBy:  NoEnv,
		}
	}
	for i := int64(0); i < remove.Count; i++ {
		b := disk.BlockNo(remove.Start + i)
		if cen, ok := x.reg[b]; ok {
			if cen.Page != mem.NoPage {
				x.M.Unref(cen.Page)
			}
			if cen.Dirty {
				x.dirtyCount--
			}
			delete(x.reg, b)
		}
		x.releaseBlock(b)
	}
	x.recomputeTaint(meta)
	return nil
}

// Modify applies a metadata modification that must not change
// ownership at all (sizes, timestamps, directory names, ...).
func (x *XN) Modify(e *kernel.Env, meta disk.BlockNo, mods []Mod) error {
	x.charge(e, 100)
	_, err := x.mutateMeta(e, meta, mods, udf.Extent{}, udf.Extent{}, OpModify)
	return err
}

// WillFreeCount reports blocks parked on the will-free list.
func (x *XN) WillFreeCount() int { return len(x.willFree) }

// recomputeTaint refreshes the taint flag of b and propagates changes
// up the parent chain: "any block is considered tainted if it points
// either to an uninitialized block or to a tainted block"
// (Section 4.3.2). Unattached and temporary trees are not tracked.
func (x *XN) recomputeTaint(b disk.BlockNo) {
	for b != NoParent {
		en, ok := x.reg[b]
		if !ok || en.State != StateResident || en.Temporary || !en.Attached {
			return
		}
		if !x.isMetadata(en.Tmpl) {
			return
		}
		t := x.templates[en.Tmpl]
		owns, err := x.runOwns(nil, t, x.M.Data(en.Page))
		if err != nil {
			return
		}
		tainted := false
		for _, ext := range owns {
			for i := int64(0); i < ext.Count && !tainted; i++ {
				if cen, ok := x.reg[disk.BlockNo(ext.Start+i)]; ok {
					if cen.Uninit || cen.Tainted {
						tainted = true
					}
				}
			}
			if tainted {
				break
			}
		}
		if en.Tainted == tainted {
			return
		}
		en.Tainted = tainted
		b = en.Parent
	}
}

// taintCheck reports whether writing b's current cached content would
// persist a pointer to uninitialized data.
func (x *XN) taintCheck(en *Entry) error {
	if en.Temporary || !en.Attached {
		return nil // exemptions, Section 4.3.2
	}
	if !x.isMetadata(en.Tmpl) {
		return nil
	}
	t := x.templates[en.Tmpl]
	owns, err := x.runOwns(nil, t, x.M.Data(en.Page))
	if err != nil {
		return err
	}
	for _, ext := range owns {
		for i := int64(0); i < ext.Count; i++ {
			if cen, ok := x.reg[disk.BlockNo(ext.Start+i)]; ok {
				if cen.Uninit || cen.Tainted {
					return ErrTainted
				}
			}
		}
	}
	return nil
}

// Write flushes the listed blocks to disk, enforcing the ordering
// rules, and blocks the environment until the I/O completes. "The
// write also fails if any of the blocks are tainted and reachable from
// a persistent root" (Section 4.4). Contiguous runs coalesce into
// single disk requests.
func (x *XN) Write(e *kernel.Env, blocks []disk.BlockNo) error {
	x.charge(e, sim.Time(50*len(blocks)))
	type writeOp struct {
		block disk.BlockNo
		entry *Entry
		owns  []udf.Extent
	}
	var ops []writeOp
	for _, b := range blocks {
		en, ok := x.reg[b]
		if !ok {
			return ErrNotInRegistry
		}
		if en.State != StateResident || en.Page == mem.NoPage {
			return ErrNotResident
		}
		if x.lockedByOther(e, en) {
			return ErrLocked
		}
		if err := x.taintCheck(en); err != nil {
			return err
		}
		var owns []udf.Extent
		if x.isMetadata(en.Tmpl) {
			t := x.templates[en.Tmpl]
			var err error
			owns, err = x.runOwns(e, t, x.M.Data(en.Page))
			if err != nil {
				return err
			}
		}
		ops = append(ops, writeOp{b, en, owns})
	}
	if len(ops) == 0 {
		return nil
	}
	sort.Slice(ops, func(i, j int) bool { return ops[i].block < ops[j].block })

	remaining := 0
	submit := func(run []writeOp) {
		pagesData := make([][]byte, len(run))
		for i, op := range run {
			pagesData[i] = x.M.Data(op.entry.Page)
		}
		remaining++
		x.D.Submit(&disk.Request{
			Write: true,
			Block: run[0].block,
			Count: len(run),
			Pages: pagesData,
			Done: func(*disk.Request) {
				x.K.ChargeInterrupt(sim.DiskInterruptCost)
				for _, op := range run {
					x.completeWrite(op.block, op.entry, op.owns)
				}
				remaining--
				if remaining == 0 && e != nil {
					x.K.Wake(e)
				}
			},
		})
	}
	start := 0
	nreq := 0
	for i := 1; i <= len(ops); i++ {
		if i == len(ops) || ops[i].block != ops[i-1].block+1 {
			submit(ops[start:i])
			nreq++
			start = i
		}
	}
	x.chargeIO(e, nreq)
	if e != nil {
		for remaining > 0 {
			e.Block()
		}
	}
	return nil
}

// completeWrite runs at disk-completion time: maintain on-disk
// reference counts from the ownership diff, release will-free blocks
// whose last pointer died, clear dirty/uninit, and refresh taint up
// the tree.
func (x *XN) completeWrite(b disk.BlockNo, en *Entry, newOwns []udf.Extent) {
	oldMap := ownsMap(x.onDiskOwns[b])
	newMap := ownsMap(newOwns)
	for c := range newMap {
		if _, had := oldMap[c]; !had {
			x.diskRefs[c]++
		}
	}
	for c := range oldMap {
		if _, has := newMap[c]; !has {
			x.decDiskRef(c)
		}
	}
	if len(newOwns) > 0 {
		x.onDiskOwns[b] = newOwns
	} else {
		delete(x.onDiskOwns, b)
	}
	if en.Dirty {
		en.Dirty = false
		x.dirtyCount--
	}
	en.flushing = false
	wasUninit := en.Uninit
	en.Uninit = false
	if wasUninit && en.Parent != NoParent {
		x.recomputeTaint(en.Parent)
	}
}

// WriteBack flushes up to max dirty, unlocked, untainted blocks — the
// asynchronous write-back daemon's operation. "XN allows any process
// to write 'unowned' dirty blocks to disk ... even if that process
// does not have write permission for the dirty blocks" (Section
// 4.3.3): no acl check here, flushing committed state is always safe.
func (x *XN) WriteBack(e *kernel.Env, max int) (int, error) {
	var flush []disk.BlockNo
	for _, b := range x.DirtyBlocks() {
		en := x.reg[b]
		if en.LockedBy != NoEnv {
			continue
		}
		if x.taintCheck(en) != nil {
			continue // not yet writable; its children must go first
		}
		flush = append(flush, b)
		if max > 0 && len(flush) >= max {
			break
		}
	}
	if len(flush) == 0 {
		return 0, nil
	}
	if err := x.Write(e, flush); err != nil {
		return 0, err
	}
	return len(flush), nil
}

// Sync flushes all dirty blocks in dependency order: repeatedly write
// everything writable until nothing is dirty (children before tainted
// parents; each pass un-taints the next level).
func (x *XN) Sync(e *kernel.Env) error {
	for {
		n, err := x.WriteBack(e, 0)
		if err != nil {
			return err
		}
		if n == 0 {
			break
		}
	}
	if rest := x.DirtyBlocks(); len(rest) > 0 {
		return fmt.Errorf("xn: %d dirty blocks cannot be synced (locked or tainted)", len(rest))
	}
	return nil
}
