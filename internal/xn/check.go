package xn

import (
	"fmt"
	"sort"

	"xok/internal/disk"
)

// CheckConsistency audits XN's block bookkeeping and returns one
// message per violated invariant (empty = clean). The invariants are
// the ones the Ganger/Patt write-ordering rules exist to preserve
// across crashes:
//
//   - a referenced block is never on the free map (a reachable block
//     handed out again is how trees get cross-linked);
//   - no block has more than one on-disk owner, counting root extents
//     (single ownership is what makes reachability GC sound);
//   - every block owned by a written metadata block lies inside the
//     volume.
//
// Blocks on the will-free list are exempt from the sharing check:
// deallocation deliberately leaves the old pointer until it is
// nullified on disk. The crash-enumeration harness runs this against
// every remounted image, after Mount's recoverGC.
func (x *XN) CheckConsistency() []string {
	var errs []string

	owners := make(map[disk.BlockNo]int)
	for _, r := range x.roots {
		for i := int64(0); i < r.Count; i++ {
			owners[r.Start+disk.BlockNo(i)]++
		}
	}
	for _, extents := range x.onDiskOwns {
		for _, ext := range extents {
			for j := int64(0); j < ext.Count; j++ {
				b := disk.BlockNo(ext.Start + j)
				if int64(b) < reservedEnd || int64(b) >= x.D.NumBlocks() {
					errs = append(errs, fmt.Sprintf("owned block %d outside volume [%d,%d)",
						b, reservedEnd, x.D.NumBlocks()))
					continue
				}
				owners[b]++
			}
		}
	}
	for b, n := range owners {
		if n > 1 && !x.willFree[b] {
			errs = append(errs, fmt.Sprintf("block %d has %d on-disk owners", b, n))
		}
		if x.free.get(int64(b)) {
			errs = append(errs, fmt.Sprintf("block %d is referenced but on the free map", b))
		}
	}
	// Deterministic report order (maps iterate randomly; the crash
	// harness digests these messages byte-for-byte).
	sort.Strings(errs)
	return errs
}
