package xn

import (
	"sort"

	"xok/internal/disk"
	"xok/internal/kernel"
	"xok/internal/mem"
	"xok/internal/sim"
	"xok/internal/udf"
)

// The buffer cache registry (Section 4.3.3): a system-wide, protected
// map from cached disk blocks to the physical pages holding them.
// "Unlike traditional buffer caches, it only records the mapping, not
// the disk blocks themselves" — pages are application-managed. The
// registry is mapped read-only into application space, so lookups cost
// nothing; mutations go through XN calls.

// EntryState is a registry entry's residency state.
type EntryState uint8

// Registry entry states (the paper's "dirty, out of core,
// uninitialized, locked" are tracked in the state plus the flags).
const (
	StateOutOfCore EntryState = iota // mapping exists, no data yet
	StateInTransit                   // disk read in flight
	StateResident                    // page holds the block
)

// NoEnv marks an unlocked entry.
const NoEnv kernel.EnvID = -1

// NoParent marks an entry not (yet) bound to a parent.
const NoParent disk.BlockNo = -1

// Entry is one registry record.
type Entry struct {
	Block disk.BlockNo
	Page  mem.PageNo
	State EntryState
	Dirty bool

	// Uninit: the block's on-disk content has never been initialized
	// since allocation. Writing a persistent pointer to such a block
	// is what the tainted-block machinery prevents.
	Uninit bool

	// Tainted: this block's cached content points (directly or
	// transitively) to uninitialized blocks (Section 4.3.2).
	Tainted bool

	// Attached: reachable from a persistent root. Unattached subtrees
	// are exempt from taint tracking until connected.
	Attached bool

	// Temporary: belongs to a non-persistent file system.
	Temporary bool

	Tmpl     TemplateID
	Parent   disk.BlockNo
	LockedBy kernel.EnvID

	lastUse  uint64
	waiters  []*kernel.Env // environments waiting for an in-flight read
	flushing bool          // flush-behind write in flight
	pinned   bool          // exempt from LRU recycling (hot metadata)

	// stateWord mirrors State as an exposed int64 so wakeup
	// predicates can bind to it: "to wait for a disk block to be
	// paged in, a wakeup predicate can bind to the block's state and
	// wake up when it changes from 'in transit' to 'resident'"
	// (Section 5.1).
	stateWord int64
}

// setState updates both representations of an entry's state.
func (en *Entry) setState(st EntryState) {
	en.State = st
	en.stateWord = int64(st)
}

// Metadata reports whether the entry's type can own blocks (leaf/data
// templates never taint anything through content).
func (x *XN) isMetadata(id TemplateID) bool {
	t, ok := x.templates[id]
	if !ok {
		return false
	}
	// A template whose owns-udf can emit is metadata. Cheap static
	// scan, computed per call (programs are tiny).
	for _, in := range t.Owns.Instrs {
		if in.Op == udf.OpEMIT {
			return true
		}
	}
	return false
}

func (x *XN) touch(en *Entry) {
	x.useClock++
	en.lastUse = x.useClock
	if en.Page != mem.NoPage {
		x.M.Touch(en.Page)
	}
}

// Lookup returns a copy of the registry entry for b. No system call:
// the registry is mapped read-only into application space.
func (x *XN) Lookup(b disk.BlockNo) (Entry, bool) {
	en, ok := x.reg[b]
	if !ok {
		return Entry{}, false
	}
	return *en, true
}

// Cached reports whether b is resident in some page (libFSes consult
// this to share each other's cached blocks).
func (x *XN) Cached(b disk.BlockNo) bool {
	en, ok := x.reg[b]
	return ok && en.State == StateResident
}

// PageData exposes the bytes of a resident block. The caller must have
// performed a bind-time access check (MapData / Insert); the simulation
// trusts libFS code the way hardware page protections would enforce it.
func (x *XN) PageData(b disk.BlockNo) []byte {
	en, ok := x.reg[b]
	if !ok || en.Page == mem.NoPage {
		panic("xn: PageData on non-resident block")
	}
	x.touch(en)
	return x.M.Data(en.Page)
}

// Lock locks the registry entry for atomic multi-step metadata updates
// (Section 4.3.1: "libFSes can lock cache registry entries").
func (x *XN) Lock(e *kernel.Env, b disk.BlockNo) error {
	x.charge(e, 50)
	en, ok := x.reg[b]
	if !ok {
		return ErrNotInRegistry
	}
	if en.LockedBy != NoEnv && en.LockedBy != e.ID() {
		return ErrLocked
	}
	en.LockedBy = e.ID()
	return nil
}

// Unlock releases a lock.
func (x *XN) Unlock(e *kernel.Env, b disk.BlockNo) error {
	x.charge(e, 50)
	en, ok := x.reg[b]
	if !ok {
		return ErrNotInRegistry
	}
	if en.LockedBy != e.ID() {
		return ErrLocked
	}
	en.LockedBy = NoEnv
	return nil
}

func (x *XN) lockedByOther(e *kernel.Env, en *Entry) bool {
	return en.LockedBy != NoEnv && e != nil && en.LockedBy != e.ID()
}

// Insert is the first stage of a read (Section 4.4): given a resident
// parent metadata block, verify with owns-udf that it owns the extent,
// and install registry entries for the children. Entries start out of
// core; Read supplies pages and issues the disk I/O.
func (x *XN) Insert(e *kernel.Env, parent disk.BlockNo, ext udf.Extent) error {
	x.charge(e, 100)
	x.K.Stats.Inc(sim.CtrRegistryOps)
	pen, ok := x.reg[parent]
	if !ok {
		return ErrNotInRegistry
	}
	if pen.State != StateResident {
		return ErrNotResident
	}
	pt, ok := x.templates[pen.Tmpl]
	if !ok {
		return ErrNoTemplate
	}
	owned, err := x.runOwns(e, pt, x.M.Data(pen.Page))
	if err != nil {
		return err
	}
	if !extentCovered(owned, ext) {
		return ErrNotOwned
	}
	// Read access control at the parent.
	okAcl, err := x.runAcl(e, pt, x.M.Data(pen.Page), nil, OpRead)
	if err != nil {
		return err
	}
	if !okAcl {
		return ErrAccessDenied
	}
	for i := int64(0); i < ext.Count; i++ {
		b := disk.BlockNo(ext.Start + i)
		if en, exists := x.reg[b]; exists {
			// Bind a speculative raw read to its parent now that the
			// parent is known (Section 4.4 "raw read").
			if en.Tmpl == TmplUnknown {
				en.Tmpl = TemplateID(ext.Type)
				en.Parent = parent
				en.Attached = pen.Attached
				en.Temporary = pen.Temporary
			} else if en.Parent != parent && en.Parent != NoParent {
				return ErrWrongParent
			}
			continue
		}
		x.reg[b] = &Entry{
			Block:     b,
			Page:      mem.NoPage,
			State:     StateOutOfCore,
			Tmpl:      TemplateID(ext.Type),
			Parent:    parent,
			Attached:  pen.Attached,
			Temporary: pen.Temporary,
			LockedBy:  NoEnv,
		}
	}
	return nil
}

// extentCovered reports whether every block of ext (with matching
// type) appears in the owned set.
func extentCovered(owned []udf.Extent, ext udf.Extent) bool {
	for i := int64(0); i < ext.Count; i++ {
		b := ext.Start + i
		found := false
		for _, o := range owned {
			if o.Type == ext.Type && b >= o.Start && b < o.Start+o.Count {
				found = true
				break
			}
		}
		if !found {
			return false
		}
	}
	return true
}

// LoadRoot installs registry entries for a root catalogue entry and
// reads its blocks into freshly allocated pages. This is "Startup"
// (Section 4.4): the libFS loads its roots; usually they are already
// cached, in which case this is cheap.
func (x *XN) LoadRoot(e *kernel.Env, name string) (Root, error) {
	r, err := x.LookupRoot(e, name)
	if err != nil {
		return Root{}, err
	}
	var toRead []disk.BlockNo
	for i := int64(0); i < r.Count; i++ {
		b := r.Start + disk.BlockNo(i)
		if en, ok := x.reg[b]; ok {
			if en.State == StateResident {
				continue
			}
		} else {
			x.reg[b] = &Entry{
				Block:     b,
				Page:      mem.NoPage,
				State:     StateOutOfCore,
				Tmpl:      r.Tmpl,
				Parent:    NoParent,
				Attached:  !r.Temporary,
				Temporary: r.Temporary,
				LockedBy:  NoEnv,
			}
		}
		toRead = append(toRead, b)
	}
	if len(toRead) > 0 {
		if err := x.Read(e, toRead, nil); err != nil {
			return Root{}, err
		}
	}
	return r, nil
}

// RecycleLRU evicts the least-recently-used clean, unlocked, resident
// entry and returns its page for reuse: "by default, when libOSes need
// pages and none are free, they recycle the oldest buffer on this LRU
// list" (Section 4.3.3).
func (x *XN) RecycleLRU(e *kernel.Env) (mem.PageNo, bool) {
	x.charge(e, 100)
	var victim *Entry
	for _, en := range x.reg {
		if en.State != StateResident || en.Dirty || en.LockedBy != NoEnv || en.pinned {
			continue
		}
		if victim == nil || en.lastUse < victim.lastUse {
			victim = en
		}
	}
	if victim == nil {
		return mem.NoPage, false
	}
	p := victim.Page
	delete(x.reg, victim.Block)
	if p != mem.NoPage {
		x.M.Unref(p)
	}
	return p, true
}

// Pin exempts a resident block from LRU recycling. LibFSes pin their
// hot metadata (directory and indirect blocks) the way a kernel file
// system would hold its metadata in the buffer cache; pinned pages
// stay accounted against the cache.
func (x *XN) Pin(b disk.BlockNo) {
	if en, ok := x.reg[b]; ok {
		en.pinned = true
	}
}

// Unpin re-exposes a block to recycling.
func (x *XN) Unpin(b disk.BlockNo) {
	if en, ok := x.reg[b]; ok {
		en.pinned = false
	}
}

// DirtyBlocks lists dirty resident blocks, sorted — what an
// asynchronous write-back daemon scans (Section 4.3.3: any process may
// write unowned dirty blocks).
func (x *XN) DirtyBlocks() []disk.BlockNo {
	var out []disk.BlockNo
	for b, en := range x.reg {
		if en.Dirty && en.State == StateResident {
			out = append(out, b)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// RegistrySize reports the number of registry entries.
func (x *XN) RegistrySize() int { return len(x.reg) }

// StateWord exposes the address of an entry's state as a watchable
// word for wakeup predicates — the paper's Section 5.1 example: sleep
// until a block's state changes from "in transit" to "resident". The
// registry is mapped read-only into application space, so binding a
// predicate to this word needs no system call beyond the download.
func (x *XN) StateWord(b disk.BlockNo) (*int64, bool) {
	en, ok := x.reg[b]
	if !ok {
		return nil, false
	}
	return &en.stateWord, true
}
