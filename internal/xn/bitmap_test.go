package xn

import (
	"testing"
	"testing/quick"
)

func TestBitmapBasics(t *testing.T) {
	b := newBitmap(200)
	if b.count() != 0 {
		t.Fatal("fresh bitmap not empty")
	}
	b.setRange(10, 20, true)
	if b.count() != 10 {
		t.Fatalf("count = %d, want 10", b.count())
	}
	if !b.get(10) || !b.get(19) || b.get(20) || b.get(9) {
		t.Fatal("range bounds wrong")
	}
	b.set(15, false)
	if b.get(15) || b.count() != 9 {
		t.Fatal("clear failed")
	}
	// Out-of-range accesses are inert.
	b.set(-1, true)
	b.set(1000, true)
	if b.get(-1) || b.get(1000) {
		t.Fatal("out-of-range bits set")
	}
}

func TestBitmapFindRun(t *testing.T) {
	b := newBitmap(100)
	b.setRange(0, 100, true)
	b.setRange(30, 40, false) // hole

	// Run entirely after the hint.
	s, ok := b.findRun(10, 5)
	if !ok || s != 10 {
		t.Fatalf("findRun(10,5) = %d, %v", s, ok)
	}
	// Run straddling the hole must land after it.
	s, ok = b.findRun(28, 15)
	if !ok || s != 40 {
		t.Fatalf("findRun(28,15) = %d, %v", s, ok)
	}
	// Wrapping: hint near the end, run exists only at the start.
	b2 := newBitmap(100)
	b2.setRange(0, 10, true)
	s, ok = b2.findRun(90, 8)
	if !ok || s != 0 {
		t.Fatalf("wrap findRun = %d, %v", s, ok)
	}
	// Impossible requests.
	if _, ok := b2.findRun(0, 11); ok {
		t.Fatal("found an 11-run in a 10-run bitmap")
	}
	if _, ok := b2.findRun(0, 0); ok {
		t.Fatal("zero-length run reported found")
	}
	if _, ok := b2.findRun(0, 1000); ok {
		t.Fatal("run longer than bitmap reported found")
	}
}

func TestBitmapFindRunProperty(t *testing.T) {
	// For random bit patterns, any run findRun returns must (a) be
	// entirely free and (b) have the requested length within bounds.
	f := func(pattern []bool, hint8, count8 uint8) bool {
		n := int64(len(pattern))
		if n == 0 {
			return true
		}
		b := newBitmap(n)
		for i, v := range pattern {
			b.set(int64(i), v)
		}
		hint := int64(hint8) % n
		count := int64(count8)%8 + 1
		s, ok := b.findRun(hint, count)
		if !ok {
			// Verify there really is no run of that length anywhere.
			run := int64(0)
			for i := int64(0); i < n; i++ {
				if b.get(i) {
					run++
					if run >= count {
						return false // findRun missed one
					}
				} else {
					run = 0
				}
			}
			return true
		}
		if s < 0 || s+count > n {
			return false
		}
		for i := s; i < s+count; i++ {
			if !b.get(i) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
