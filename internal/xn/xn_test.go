package xn

import (
	"encoding/binary"
	"errors"
	"testing"

	"xok/internal/cap"
	"xok/internal/disk"
	"xok/internal/kernel"
	"xok/internal/sim"
	"xok/internal/udf"
	"xok/internal/wkpred"
)

// The tests define a miniature libFS metadata format, "tnode", to
// exercise XN exactly the way a real libFS would — through UDFs, with
// XN never understanding the layout natively.
//
// tnode layout (one 4-KB block):
//
//	off 0: uint32 owner uid
//	off 4: uint32 n — number of pointer records
//	off 8: n records of {uint64 start, uint32 count, uint32 type}
const (
	tnOwnerOff = 0
	tnCountOff = 4
	tnRecsOff  = 8
	tnRecSize  = 16
)

var tnodeOwns = udf.MustAssemble("tnode-owns", `
	li   r0, 0
	ldw  r1, r0, 4      ; n
	li   r2, 0          ; i
	li   r3, 8          ; record offset
loop:
	bge  r2, r1, done
	ldq  r4, r3, 0      ; start
	ldw  r5, r3, 8      ; count
	ldw  r6, r3, 12     ; type
	emit r4, r5, r6
	addi r3, r3, 16
	addi r2, r2, 1
	jmp  loop
done:
	ret  r1
`)

// acl: allow if caller uid is 0 (superuser) or matches the stored
// owner uid.
var tnodeAcl = udf.MustAssemble("tnode-acl", `
	envw r1, 2          ; caller uid
	li   r2, 0
	beq  r1, r2, ok
	li   r0, 0
	ldw  r3, r0, 0      ; owner uid
	beq  r1, r3, ok
	li   r0, 0
	ret  r0
ok:
	li   r0, 1
	ret  r0
`)

var tnodeSize = udf.MustAssemble("tnode-size", `
	li   r0, 0
	ldw  r1, r0, 4
	li   r2, 16
	mul  r3, r1, r2
	addi r3, r3, 8
	ret  r3
`)

var dataOwns = udf.MustAssemble("data-owns", `
	li r0, 0
	ret r0
`)

var dataAcl = udf.MustAssemble("data-acl", `
	li r0, 1
	ret r0
`)

var dataSize = udf.MustAssemble("data-size", `
	li r0, 4096
	ret r0
`)

// tnAddRecord builds the Mods that append a pointer record to a tnode
// whose current record count is n.
func tnAddRecord(n int, start disk.BlockNo, count uint32, tmpl TemplateID) []Mod {
	rec := make([]byte, tnRecSize)
	binary.LittleEndian.PutUint64(rec[0:], uint64(start))
	binary.LittleEndian.PutUint32(rec[8:], count)
	binary.LittleEndian.PutUint32(rec[12:], uint32(tmpl))
	cnt := make([]byte, 4)
	binary.LittleEndian.PutUint32(cnt, uint32(n+1))
	return []Mod{
		{Off: tnRecsOff + n*tnRecSize, Bytes: rec},
		{Off: tnCountOff, Bytes: cnt},
	}
}

// tnRemoveLast builds the Mods that drop the last record (record n-1).
func tnRemoveLast(n int) []Mod {
	cnt := make([]byte, 4)
	binary.LittleEndian.PutUint32(cnt, uint32(n-1))
	return []Mod{{Off: tnCountOff, Bytes: cnt}}
}

// fixture bundles a formatted volume with installed templates and a
// registered, loaded root tnode.
type fixture struct {
	k        *kernel.Kernel
	x        *XN
	tnode    TemplateID
	data     TemplateID
	rootBlk  disk.BlockNo
	rootName string
}

func newFixture(t *testing.T) *fixture {
	t.Helper()
	k := kernel.New(kernel.Config{Name: "xok", MemPages: 2048, DiskSize: 4096})
	x := New(k)
	f := &fixture{k: k, x: x, rootName: "testfs"}
	f.run(t, "mkfs", func(e *kernel.Env) error {
		e.Creds = cap.UnixCreds(0)
		var err error
		f.tnode, err = x.InstallTemplate(e, Template{
			Name: "tnode", Owns: tnodeOwns, Acl: tnodeAcl, Size: tnodeSize,
		})
		if err != nil {
			return err
		}
		f.data, err = x.InstallTemplate(e, Template{
			Name: "tdata", Owns: dataOwns, Acl: dataAcl, Size: dataSize,
			AclAtParent: true,
		})
		if err != nil {
			return err
		}
		start, err := x.AllocRootExtent(e, 100, 1)
		if err != nil {
			return err
		}
		f.rootBlk = start
		if err := x.RegisterRoot(e, Root{
			Name: f.rootName, Start: start, Count: 1, Tmpl: f.tnode,
		}); err != nil {
			return err
		}
		_, err = x.LoadRoot(e, f.rootName)
		return err
	})
	return f
}

// run executes body in a fresh environment with root credentials and
// drains the machine.
func (f *fixture) run(t *testing.T, name string, body func(*kernel.Env) error) {
	t.Helper()
	f.k.Spawn(name, func(e *kernel.Env) {
		if e.Creds == nil {
			e.Creds = cap.UnixCreds(0)
		}
		if err := body(e); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	})
	f.k.Run()
}

// runAs is run with specific UNIX credentials, expecting wantErr.
func (f *fixture) runAs(t *testing.T, name string, uid uint16, wantErr error, body func(*kernel.Env) error) {
	t.Helper()
	f.k.Spawn(name, func(e *kernel.Env) {
		e.Creds = cap.UnixCreds(uid)
		err := body(e)
		if !errors.Is(err, wantErr) {
			t.Errorf("%s: err = %v, want %v", name, err, wantErr)
		}
	})
	f.k.Run()
}

func TestMkfsAndCatalogues(t *testing.T) {
	f := newFixture(t)
	if _, ok := f.x.TemplateByName("tnode"); !ok {
		t.Fatal("tnode template not installed")
	}
	if _, ok := f.x.Template(f.data); !ok {
		t.Fatal("data template not found by id")
	}
	f.run(t, "lookup", func(e *kernel.Env) error {
		r, err := f.x.LookupRoot(e, f.rootName)
		if err != nil {
			return err
		}
		if r.Start != f.rootBlk || r.Tmpl != f.tnode {
			t.Errorf("root = %+v", r)
		}
		_, err = f.x.LookupRoot(e, "nope")
		if !errors.Is(err, ErrNoRoot) {
			t.Errorf("missing root err = %v", err)
		}
		return nil
	})
	if f.x.IsFree(f.rootBlk) {
		t.Fatal("root block still on free map")
	}
}

func TestDuplicateTemplateAndRoot(t *testing.T) {
	f := newFixture(t)
	f.run(t, "dups", func(e *kernel.Env) error {
		_, err := f.x.InstallTemplate(e, Template{
			Name: "tnode", Owns: tnodeOwns, Acl: tnodeAcl, Size: tnodeSize,
		})
		if !errors.Is(err, ErrDupTemplate) {
			t.Errorf("dup template err = %v", err)
		}
		err = f.x.RegisterRoot(e, Root{Name: f.rootName, Start: f.rootBlk, Count: 1, Tmpl: f.tnode})
		if !errors.Is(err, ErrDupRoot) {
			t.Errorf("dup root err = %v", err)
		}
		return nil
	})
}

func TestTemplateVerificationRejectsNondeterministicOwns(t *testing.T) {
	f := newFixture(t)
	bad := udf.MustAssemble("bad-owns", "envw r1, 0\nret r1")
	f.run(t, "badtmpl", func(e *kernel.Env) error {
		_, err := f.x.InstallTemplate(e, Template{
			Name: "bad", Owns: bad, Acl: tnodeAcl, Size: tnodeSize,
		})
		if !errors.Is(err, ErrBadTemplate) {
			t.Errorf("err = %v, want ErrBadTemplate", err)
		}
		return nil
	})
}

func TestAllocVerifiedByUDF(t *testing.T) {
	f := newFixture(t)
	freeBefore := f.x.FreeBlocks()
	f.run(t, "alloc", func(e *kernel.Env) error {
		target, ok := f.x.FindFree(200, 2)
		if !ok {
			t.Fatal("no free blocks")
		}
		err := f.x.Alloc(e, f.rootBlk, tnAddRecord(0, target, 2, f.data),
			udf.Extent{Start: int64(target), Count: 2, Type: int64(f.data)})
		if err != nil {
			return err
		}
		// Child entries must exist, uninitialized, bound to parent.
		en, ok := f.x.Lookup(target)
		if !ok || !en.Uninit || en.Parent != f.rootBlk || en.Tmpl != f.data {
			t.Errorf("child entry = %+v, %v", en, ok)
		}
		return nil
	})
	if got := freeBefore - f.x.FreeBlocks(); got != 2 {
		t.Fatalf("free delta = %d, want 2", got)
	}
}

func TestAllocRejectsLyingModification(t *testing.T) {
	// The modification claims to allocate block A but actually records
	// block B: owns-udf catches the lie.
	f := newFixture(t)
	f.run(t, "lie", func(e *kernel.Env) error {
		a, _ := f.x.FindFree(200, 1)
		b := a + 1
		err := f.x.Alloc(e, f.rootBlk, tnAddRecord(0, b, 1, f.data),
			udf.Extent{Start: int64(a), Count: 1, Type: int64(f.data)})
		if !errors.Is(err, ErrBadDelta) {
			t.Errorf("err = %v, want ErrBadDelta", err)
		}
		return nil
	})
}

func TestAllocRejectsNonFreeBlock(t *testing.T) {
	f := newFixture(t)
	f.run(t, "nonfree", func(e *kernel.Env) error {
		err := f.x.Alloc(e, f.rootBlk, tnAddRecord(0, f.rootBlk, 1, f.data),
			udf.Extent{Start: int64(f.rootBlk), Count: 1, Type: int64(f.data)})
		if !errors.Is(err, ErrNotFree) {
			t.Errorf("err = %v, want ErrNotFree", err)
		}
		return nil
	})
}

func TestAclDeniesForeignUID(t *testing.T) {
	f := newFixture(t)
	// Set the root tnode's owner to uid 503.
	f.run(t, "chown", func(e *kernel.Env) error {
		owner := make([]byte, 4)
		binary.LittleEndian.PutUint32(owner, 503)
		return f.x.Modify(e, f.rootBlk, []Mod{{Off: tnOwnerOff, Bytes: owner}})
	})
	// uid 504 may not allocate into it.
	f.runAs(t, "intruder", 504, ErrAccessDenied, func(e *kernel.Env) error {
		tgt, _ := f.x.FindFree(200, 1)
		return f.x.Alloc(e, f.rootBlk, tnAddRecord(0, tgt, 1, f.data),
			udf.Extent{Start: int64(tgt), Count: 1, Type: int64(f.data)})
	})
	// uid 503 may.
	f.runAs(t, "owner", 503, nil, func(e *kernel.Env) error {
		tgt, _ := f.x.FindFree(200, 1)
		return f.x.Alloc(e, f.rootBlk, tnAddRecord(0, tgt, 1, f.data),
			udf.Extent{Start: int64(tgt), Count: 1, Type: int64(f.data)})
	})
}

func TestDataWriteReadRoundTrip(t *testing.T) {
	f := newFixture(t)
	var target disk.BlockNo
	f.run(t, "write", func(e *kernel.Env) error {
		tgt, _ := f.x.FindFree(300, 1)
		target = tgt
		if err := f.x.Alloc(e, f.rootBlk, tnAddRecord(0, tgt, 1, f.data),
			udf.Extent{Start: int64(tgt), Count: 1, Type: int64(f.data)}); err != nil {
			return err
		}
		if _, err := f.x.AttachPage(e, tgt); err != nil {
			return err
		}
		copy(f.x.PageData(tgt), "hello, xn")
		if err := f.x.MarkDirty(e, tgt); err != nil {
			return err
		}
		if err := f.x.Write(e, []disk.BlockNo{tgt}); err != nil {
			return err
		}
		return f.x.Write(e, []disk.BlockNo{f.rootBlk})
	})
	// Evict everything resident and read back through the two-stage
	// protocol.
	f.run(t, "readback", func(e *kernel.Env) error {
		for {
			if _, ok := f.x.RecycleLRU(e); !ok {
				break
			}
		}
		if f.x.Cached(target) {
			t.Fatal("target still cached after full eviction")
		}
		if _, err := f.x.LoadRoot(e, f.rootName); err != nil {
			return err
		}
		if err := f.x.Insert(e, f.rootBlk, udf.Extent{Start: int64(target), Count: 1, Type: int64(f.data)}); err != nil {
			return err
		}
		if err := f.x.Read(e, []disk.BlockNo{target}, nil); err != nil {
			return err
		}
		got := string(f.x.PageData(target)[:9])
		if got != "hello, xn" {
			t.Errorf("read back %q", got)
		}
		return nil
	})
}

func TestInsertRejectsUnownedBlock(t *testing.T) {
	f := newFixture(t)
	f.run(t, "unowned", func(e *kernel.Env) error {
		err := f.x.Insert(e, f.rootBlk, udf.Extent{Start: 999, Count: 1, Type: int64(f.data)})
		if !errors.Is(err, ErrNotOwned) {
			t.Errorf("err = %v, want ErrNotOwned", err)
		}
		return nil
	})
}

func TestOrderedWritesTaintRule(t *testing.T) {
	// Rule 2 (Section 4.3.2): never persist a pointer to uninitialized
	// metadata. Writing the parent before initializing+writing the
	// child must fail; after the child is written, it must succeed.
	f := newFixture(t)
	f.run(t, "taint", func(e *kernel.Env) error {
		child, _ := f.x.FindFree(400, 1)
		if err := f.x.Alloc(e, f.rootBlk, tnAddRecord(0, child, 1, f.tnode),
			udf.Extent{Start: int64(child), Count: 1, Type: int64(f.tnode)}); err != nil {
			return err
		}
		en, _ := f.x.Lookup(f.rootBlk)
		if !en.Tainted {
			t.Error("parent not marked tainted after allocating uninitialized child")
		}
		err := f.x.Write(e, []disk.BlockNo{f.rootBlk})
		if !errors.Is(err, ErrTainted) {
			t.Errorf("premature parent write err = %v, want ErrTainted", err)
		}
		// Initialize the child (owner=0, n=0) and write it first.
		if err := f.x.InitMetadata(e, child, make([]byte, 8)); err != nil {
			return err
		}
		err = f.x.Write(e, []disk.BlockNo{f.rootBlk})
		if !errors.Is(err, ErrTainted) {
			t.Errorf("parent write before child on disk err = %v, want ErrTainted", err)
		}
		if err := f.x.Write(e, []disk.BlockNo{child}); err != nil {
			return err
		}
		en, _ = f.x.Lookup(f.rootBlk)
		if en.Tainted {
			t.Error("parent still tainted after child write")
		}
		return f.x.Write(e, []disk.BlockNo{f.rootBlk})
	})
}

func TestSyncFlushesInDependencyOrder(t *testing.T) {
	f := newFixture(t)
	f.run(t, "chain", func(e *kernel.Env) error {
		// root -> m1 -> m2 chain, all dirty, children uninitialized.
		m1, _ := f.x.FindFree(500, 1)
		if err := f.x.Alloc(e, f.rootBlk, tnAddRecord(0, m1, 1, f.tnode),
			udf.Extent{Start: int64(m1), Count: 1, Type: int64(f.tnode)}); err != nil {
			return err
		}
		if err := f.x.InitMetadata(e, m1, make([]byte, 8)); err != nil {
			return err
		}
		m2, _ := f.x.FindFree(600, 1)
		if err := f.x.Alloc(e, m1, tnAddRecord(0, m2, 1, f.tnode),
			udf.Extent{Start: int64(m2), Count: 1, Type: int64(f.tnode)}); err != nil {
			return err
		}
		if err := f.x.InitMetadata(e, m2, make([]byte, 8)); err != nil {
			return err
		}
		if err := f.x.Sync(e); err != nil {
			return err
		}
		if len(f.x.DirtyBlocks()) != 0 {
			t.Errorf("dirty blocks after sync: %v", f.x.DirtyBlocks())
		}
		return nil
	})
}

func TestDeallocWillFreeList(t *testing.T) {
	f := newFixture(t)
	var target disk.BlockNo
	f.run(t, "setup", func(e *kernel.Env) error {
		tgt, _ := f.x.FindFree(300, 1)
		target = tgt
		if err := f.x.Alloc(e, f.rootBlk, tnAddRecord(0, tgt, 1, f.data),
			udf.Extent{Start: int64(tgt), Count: 1, Type: int64(f.data)}); err != nil {
			return err
		}
		if _, err := f.x.AttachPage(e, tgt); err != nil {
			return err
		}
		if err := f.x.MarkDirty(e, tgt); err != nil {
			return err
		}
		if err := f.x.Write(e, []disk.BlockNo{tgt}); err != nil {
			return err
		}
		// Parent hits the disk with the pointer: on-disk ref exists.
		return f.x.Write(e, []disk.BlockNo{f.rootBlk})
	})
	f.run(t, "dealloc", func(e *kernel.Env) error {
		if err := f.x.Dealloc(e, f.rootBlk, tnRemoveLast(1),
			udf.Extent{Start: int64(target), Count: 1, Type: int64(f.data)}); err != nil {
			return err
		}
		// On-disk parent still points at it: must be on will-free, not
		// free ("never reuse an on-disk resource before nullifying all
		// previous pointers to it").
		if f.x.IsFree(target) {
			t.Error("block freed while on-disk pointer exists")
		}
		if f.x.WillFreeCount() != 1 {
			t.Errorf("will-free count = %d, want 1", f.x.WillFreeCount())
		}
		// Writing the parent nullifies the pointer; the block frees.
		if err := f.x.Write(e, []disk.BlockNo{f.rootBlk}); err != nil {
			return err
		}
		if !f.x.IsFree(target) {
			t.Error("block not freed after pointer nullified on disk")
		}
		if f.x.WillFreeCount() != 0 {
			t.Errorf("will-free count = %d, want 0", f.x.WillFreeCount())
		}
		return nil
	})
}

func TestDeallocNeverOnDiskFreesImmediately(t *testing.T) {
	f := newFixture(t)
	f.run(t, "quick", func(e *kernel.Env) error {
		tgt, _ := f.x.FindFree(300, 1)
		if err := f.x.Alloc(e, f.rootBlk, tnAddRecord(0, tgt, 1, f.data),
			udf.Extent{Start: int64(tgt), Count: 1, Type: int64(f.data)}); err != nil {
			return err
		}
		// Parent never written: no on-disk pointer; dealloc frees now.
		if err := f.x.Dealloc(e, f.rootBlk, tnRemoveLast(1),
			udf.Extent{Start: int64(tgt), Count: 1, Type: int64(f.data)}); err != nil {
			return err
		}
		if !f.x.IsFree(tgt) {
			t.Error("block not immediately free")
		}
		return nil
	})
}

func TestModifyMustNotChangeOwnership(t *testing.T) {
	f := newFixture(t)
	f.run(t, "modify", func(e *kernel.Env) error {
		tgt, _ := f.x.FindFree(300, 1)
		// Modify that sneaks in an allocation must be rejected.
		err := f.x.Modify(e, f.rootBlk, tnAddRecord(0, tgt, 1, f.data))
		if !errors.Is(err, ErrBadDelta) {
			t.Errorf("err = %v, want ErrBadDelta", err)
		}
		// Owner change (no ownership delta) is fine.
		owner := make([]byte, 4)
		binary.LittleEndian.PutUint32(owner, 42)
		return f.x.Modify(e, f.rootBlk, []Mod{{Off: tnOwnerOff, Bytes: owner}})
	})
}

func TestMetadataNeverMappedWritable(t *testing.T) {
	f := newFixture(t)
	f.run(t, "maprw", func(e *kernel.Env) error {
		_, err := f.x.MapData(e, f.rootBlk, true)
		if !errors.Is(err, ErrMetadataRW) {
			t.Errorf("err = %v, want ErrMetadataRW", err)
		}
		_, err = f.x.MapData(e, f.rootBlk, false)
		return err // read-only mapping of metadata is fine
	})
}

func TestLocking(t *testing.T) {
	f := newFixture(t)
	// Env 1 locks the root; env 2's modification must fail with
	// ErrLocked; after unlock it succeeds.
	locked := make(chan struct{})
	release := make(chan struct{})
	_ = locked
	_ = release
	f.run(t, "locker", func(e *kernel.Env) error {
		return f.x.Lock(e, f.rootBlk)
	})
	f.run(t, "blocked", func(e *kernel.Env) error {
		owner := make([]byte, 4)
		err := f.x.Modify(e, f.rootBlk, []Mod{{Off: tnOwnerOff, Bytes: owner}})
		if !errors.Is(err, ErrLocked) {
			t.Errorf("err = %v, want ErrLocked", err)
		}
		err = f.x.Write(e, []disk.BlockNo{f.rootBlk})
		if !errors.Is(err, ErrLocked) {
			t.Errorf("write err = %v, want ErrLocked", err)
		}
		err = f.x.Unlock(e, f.rootBlk)
		if !errors.Is(err, ErrLocked) {
			t.Errorf("foreign unlock err = %v, want ErrLocked", err)
		}
		return nil
	})
}

func TestRawReadThenBind(t *testing.T) {
	f := newFixture(t)
	var target disk.BlockNo
	f.run(t, "setup", func(e *kernel.Env) error {
		tgt, _ := f.x.FindFree(300, 1)
		target = tgt
		if err := f.x.Alloc(e, f.rootBlk, tnAddRecord(0, tgt, 1, f.data),
			udf.Extent{Start: int64(tgt), Count: 1, Type: int64(f.data)}); err != nil {
			return err
		}
		if _, err := f.x.AttachPage(e, tgt); err != nil {
			return err
		}
		copy(f.x.PageData(tgt), "spec")
		if err := f.x.MarkDirty(e, tgt); err != nil {
			return err
		}
		if err := f.x.Write(e, []disk.BlockNo{tgt}); err != nil {
			return err
		}
		if err := f.x.Write(e, []disk.BlockNo{f.rootBlk}); err != nil {
			return err
		}
		for {
			if _, ok := f.x.RecycleLRU(e); !ok {
				break
			}
		}
		return nil
	})
	f.run(t, "raw", func(e *kernel.Env) error {
		if err := f.x.RawRead(e, target); err != nil {
			return err
		}
		en, _ := f.x.Lookup(target)
		if en.Tmpl != TmplUnknown {
			t.Errorf("speculative entry tmpl = %v, want unknown", en.Tmpl)
		}
		// Unusable until bound: MapData must fail.
		if _, err := f.x.MapData(e, target, false); err == nil {
			t.Error("unbound speculative block was mappable")
		}
		// Bind via parent.
		if _, err := f.x.LoadRoot(e, f.rootName); err != nil {
			return err
		}
		if err := f.x.Insert(e, f.rootBlk, udf.Extent{Start: int64(target), Count: 1, Type: int64(f.data)}); err != nil {
			return err
		}
		if _, err := f.x.MapData(e, target, false); err != nil {
			return err
		}
		if string(f.x.PageData(target)[:4]) != "spec" {
			t.Error("speculative read content wrong")
		}
		return nil
	})
}

func TestCrashRecoveryGC(t *testing.T) {
	f := newFixture(t)
	var synced, lost disk.BlockNo
	f.run(t, "build", func(e *kernel.Env) error {
		// One persistent allocation, synced to disk...
		s, _ := f.x.FindFree(300, 1)
		synced = s
		if err := f.x.Alloc(e, f.rootBlk, tnAddRecord(0, s, 1, f.data),
			udf.Extent{Start: int64(s), Count: 1, Type: int64(f.data)}); err != nil {
			return err
		}
		if _, err := f.x.AttachPage(e, s); err != nil {
			return err
		}
		if err := f.x.MarkDirty(e, s); err != nil {
			return err
		}
		if err := f.x.Sync(e); err != nil {
			return err
		}
		// ...and one allocation that never reaches the disk.
		l, _ := f.x.FindFree(600, 1)
		lost = l
		return f.x.Alloc(e, f.rootBlk, tnAddRecord(1, l, 1, f.data),
			udf.Extent{Start: int64(l), Count: 1, Type: int64(f.data)})
	})

	// Crash: throw away all in-memory state, remount from the disk.
	x2, err := Mount(f.k)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := x2.TemplateByName("tnode"); !ok {
		t.Fatal("template catalogue lost across reboot")
	}
	if x2.IsFree(f.rootBlk) {
		t.Error("root block free after recovery")
	}
	if x2.IsFree(synced) {
		t.Error("synced block reclaimed by GC")
	}
	if !x2.IsFree(lost) {
		t.Error("unsynced allocation not reclaimed by GC")
	}
	// The recovered volume must be fully usable.
	f.x = x2
	f.run(t, "reuse", func(e *kernel.Env) error {
		if _, err := x2.LoadRoot(e, f.rootName); err != nil {
			return err
		}
		if err := x2.Insert(e, f.rootBlk, udf.Extent{Start: int64(synced), Count: 1, Type: int64(f.data)}); err != nil {
			return err
		}
		return x2.Read(e, []disk.BlockNo{synced}, nil)
	})
}

func TestTemporaryRootExemptFromOrdering(t *testing.T) {
	f := newFixture(t)
	f.run(t, "tmpfs", func(e *kernel.Env) error {
		start, err := f.x.AllocRootExtent(e, 2000, 1)
		if err != nil {
			return err
		}
		if err := f.x.RegisterRoot(e, Root{
			Name: "tmpfs", Start: start, Count: 1, Tmpl: f.tnode, Temporary: true,
		}); err != nil {
			return err
		}
		if _, err := f.x.LoadRoot(e, "tmpfs"); err != nil {
			return err
		}
		child, _ := f.x.FindFree(2100, 1)
		if err := f.x.Alloc(e, start, tnAddRecord(0, child, 1, f.tnode),
			udf.Extent{Start: int64(child), Count: 1, Type: int64(f.tnode)}); err != nil {
			return err
		}
		// Parent write with uninitialized child: allowed for temporary
		// file systems (Section 4.3.2).
		return f.x.Write(e, []disk.BlockNo{start})
	})
	// And temporary roots do not survive reboot.
	x2, err := Mount(f.k)
	if err != nil {
		t.Fatal(err)
	}
	f.run(t, "gone", func(e *kernel.Env) error {
		_, err := x2.LookupRoot(e, "tmpfs")
		if !errors.Is(err, ErrNoRoot) {
			t.Errorf("temporary root survived reboot: %v", err)
		}
		return nil
	})
}

func TestCacheSharingAcrossEnvironments(t *testing.T) {
	// Two environments read the same block; the second gets a cache
	// hit — "applications ... can also safely use each other's cached
	// pages" (Section 3.2).
	f := newFixture(t)
	var target disk.BlockNo
	f.run(t, "setup", func(e *kernel.Env) error {
		tgt, _ := f.x.FindFree(300, 1)
		target = tgt
		if err := f.x.Alloc(e, f.rootBlk, tnAddRecord(0, tgt, 1, f.data),
			udf.Extent{Start: int64(tgt), Count: 1, Type: int64(f.data)}); err != nil {
			return err
		}
		if _, err := f.x.AttachPage(e, tgt); err != nil {
			return err
		}
		if err := f.x.MarkDirty(e, tgt); err != nil {
			return err
		}
		return f.x.Sync(e)
	})
	hitsBefore := f.k.Stats.Get(sim.CtrCacheHits)
	f.run(t, "sharer", func(e *kernel.Env) error {
		if err := f.x.Insert(e, f.rootBlk, udf.Extent{Start: int64(target), Count: 1, Type: int64(f.data)}); err != nil {
			return err
		}
		return f.x.Read(e, []disk.BlockNo{target}, nil)
	})
	if f.k.Stats.Get(sim.CtrCacheHits) != hitsBefore+1 {
		t.Fatalf("expected one cache hit, got %d", f.k.Stats.Get(sim.CtrCacheHits)-hitsBefore)
	}
}

func TestLRURecycleReclaimsCleanBuffers(t *testing.T) {
	f := newFixture(t)
	f.run(t, "recycle", func(e *kernel.Env) error {
		before := f.x.RegistrySize()
		if before == 0 {
			t.Fatal("nothing cached")
		}
		p, ok := f.x.RecycleLRU(e)
		if !ok {
			// Root may be dirty; sync and retry.
			if err := f.x.Sync(e); err != nil {
				return err
			}
			p, ok = f.x.RecycleLRU(e)
		}
		if !ok {
			t.Fatal("recycle found no victim")
		}
		_ = p
		if f.x.RegistrySize() != before-1 {
			t.Errorf("registry size %d, want %d", f.x.RegistrySize(), before-1)
		}
		return nil
	})
}

func TestFindFreeWraps(t *testing.T) {
	f := newFixture(t)
	// Hint near the end of the volume must wrap to find space.
	start, ok := f.x.FindFree(4090, 16)
	if !ok {
		t.Fatal("FindFree failed")
	}
	if start < disk.BlockNo(reservedEnd) {
		t.Fatalf("found run in reserved area at %d", start)
	}
}

func TestWakeupPredicateOnBlockState(t *testing.T) {
	// The Section 5.1 example verbatim: "to wait for a disk block to
	// be paged in, a wakeup predicate can bind to the block's state
	// and wake up when it changes from 'in transit' to 'resident'".
	// A third-party environment sleeps on the exposed state word while
	// another environment's read is in flight.
	f := newFixture(t)
	var target disk.BlockNo
	f.run(t, "setup", func(e *kernel.Env) error {
		tgt, _ := f.x.FindFree(300, 1)
		target = tgt
		if err := f.x.Alloc(e, f.rootBlk, tnAddRecord(0, tgt, 1, f.data),
			udf.Extent{Start: int64(tgt), Count: 1, Type: int64(f.data)}); err != nil {
			return err
		}
		if _, err := f.x.AttachPage(e, tgt); err != nil {
			return err
		}
		if err := f.x.MarkDirty(e, tgt); err != nil {
			return err
		}
		if err := f.x.Sync(e); err != nil {
			return err
		}
		_, ok := f.x.RecycleLRU(e) // evict the freshly written block
		for ok {
			_, ok = f.x.RecycleLRU(e)
		}
		return nil
	})

	var watcherWoke, readDone sim.Time
	reader := f.k.Spawn("reader", func(e *kernel.Env) {
		e.Creds = cap.UnixCreds(0)
		if _, err := f.x.LoadRoot(e, f.rootName); err != nil {
			t.Error(err)
			return
		}
		if err := f.x.Insert(e, f.rootBlk, udf.Extent{Start: int64(target), Count: 1, Type: int64(f.data)}); err != nil {
			t.Error(err)
			return
		}
		if err := f.x.Read(e, []disk.BlockNo{target}, nil); err != nil {
			t.Error(err)
			return
		}
		readDone = f.k.Now()
	})
	_ = reader
	f.k.Spawn("watcher", func(e *kernel.Env) {
		e.Creds = cap.UnixCreds(0)
		// Run after the reader has issued its I/O.
		for {
			if en, ok := f.x.Lookup(target); ok && en.State == StateInTransit {
				break
			}
			e.Use(10_000) // poll the read-only registry briefly
			if f.k.Now() > sim.FromMillis(500) {
				t.Error("read never became in-transit")
				return
			}
		}
		word, ok := f.x.StateWord(target)
		if !ok {
			t.Error("no state word")
			return
		}
		pred, err := wkpred.Compile(wkpred.Cmp(wkpred.EQ, wkpred.Load(word), wkpred.Const(int64(StateResident))))
		if err != nil {
			t.Error(err)
			return
		}
		e.SleepOn(pred, 0)
		watcherWoke = f.k.Now()
	})
	f.k.Run()
	if readDone == 0 || watcherWoke == 0 {
		t.Fatalf("read=%v watcher=%v: someone never finished", readDone, watcherWoke)
	}
	if watcherWoke < readDone {
		t.Fatalf("watcher woke at %v before the block was resident at %v", watcherWoke, readDone)
	}
}
