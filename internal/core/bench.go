package core

import (
	"fmt"

	"xok/internal/httpd"
	"xok/internal/machine"
	"xok/internal/ostest"
	"xok/internal/parallel"
	"xok/internal/sim"
	"xok/internal/trace"
	"xok/internal/workload"
)

// Bench runs the paper's experiments with two orthogonal knobs the
// plain Run* functions don't expose: a trace sink and a worker count.
//
// Every experiment decomposes into independent "legs" — one simulated
// machine booted, run and measured in isolation (a Figure-2 system, a
// Table-2 pipe implementation, one server×size cell of Figure 3, one
// system of a Figure 4/5 cell). Legs run on up to Parallel worker
// goroutines; each leg gets its own trace.Tracer, merged into Trace in
// presentation order after all legs finish. Results, table order, and
// the trace sink's digest are therefore identical at every Parallel
// setting, including 1 (which takes internal/parallel's no-goroutine
// serial path).
type Bench struct {
	BenchOpts
}

// BenchOpts are the cross-cutting experiment knobs — the options
// every experiment accepts without threading them positionally
// through internal/workload. The zero value is a serial, untraced
// run.
type BenchOpts struct {
	// Trace, when non-nil, collects every leg's spans, histograms and
	// counters (cmd/xok-bench feeds -trace/-hist from it).
	Trace *trace.Tracer
	// Parallel bounds the worker pool; <= 1 runs legs serially.
	// cmd/xok-bench resolves its -parallel flag (0 = one worker per
	// CPU) with parallel.Workers before setting this.
	Parallel int
	// Shard partitions each cluster cell's fabric across this many
	// concurrent islands (conservative parallel simulation inside one
	// run, vs Parallel's across-runs pool). Only the cluster
	// experiment honors it; 0 runs single-engine. Incompatible with
	// Trace — sharded cells refuse a full tracer.
	Shard int
	// NoWheel disables the cluster engines' timer-wheel scheduling
	// backend (pure-heap baseline). Results are byte-identical either
	// way; only host time moves (cmd/xok-bench's -nowheel).
	NoWheel bool
}

func (b *Bench) workers() int {
	if b.Parallel <= 1 {
		return 1
	}
	return b.Parallel
}

type leg[R any] struct {
	res R
	tr  *trace.Tracer
	err error
}

// runLegs fans run(0..n-1) across the bench's worker pool. Each leg
// receives a private tracer (nil when the bench has no sink); legs
// merge into b.Trace in index order. The first failing index aborts
// with its error, matching a serial loop.
func runLegs[R any](b *Bench, n int, run func(i int, tr *trace.Tracer) (R, error)) ([]R, error) {
	legs := parallel.Map(b.workers(), n, func(i int) leg[R] {
		var tr *trace.Tracer
		if b.Trace != nil {
			tr = trace.New()
		}
		r, err := run(i, tr)
		return leg[R]{r, tr, err}
	})
	out := make([]R, 0, n)
	for _, l := range legs {
		if l.err != nil {
			return nil, l.err
		}
		b.Trace.Merge(l.tr)
		out = append(out, l.res)
	}
	return out, nil
}

// Figure2 executes the I/O-intensive lcc-install workload (Table 1)
// on the four systems of Figure 2, in the paper's order.
func (b *Bench) Figure2() ([]workload.IOResult, error) {
	cfgs := workload.SystemConfigs()
	return runLegs(b, len(cfgs), func(i int, tr *trace.Tracer) (workload.IOResult, error) {
		cfg := cfgs[i]
		cfg.Trace = tr
		return workload.IOIntensive(machine.MustNew(cfg))
	})
}

// MAB executes the Modified Andrew Benchmark on the four systems.
func (b *Bench) MAB() ([]workload.MABResult, error) {
	cfgs := workload.SystemConfigs()
	return runLegs(b, len(cfgs), func(i int, tr *trace.Tracer) (workload.MABResult, error) {
		cfg := cfgs[i]
		cfg.Trace = tr
		return workload.MAB(machine.MustNew(cfg))
	})
}

// ProtectionCost executes the Section 6.3 experiment: the I/O workload
// with and without XN + shared-state protection. The two
// configurations are independent machines, so they run as two legs.
func (b *Bench) ProtectionCost() (workload.ProtectionResult, error) {
	cfgs := []machine.Config{
		{Personality: machine.XokExOS},
		{Personality: machine.XokUnprotected},
	}
	rs, err := runLegs(b, len(cfgs), func(i int, tr *trace.Tracer) (workload.IOResult, error) {
		cfg := cfgs[i]
		cfg.Trace = tr
		return workload.IOIntensive(machine.MustNew(cfg))
	})
	if err != nil {
		return workload.ProtectionResult{}, err
	}
	return workload.ProtectionResult{WithProtection: rs[0], WithoutProtection: rs[1]}, nil
}

// Table2 measures the three pipe implementations of Table 2.
func (b *Bench) Table2() ([]Table2Row, error) {
	const rounds = 200
	specs := []struct {
		impl string
		cfg  machine.Config
	}{
		{"Shared memory", machine.Config{Personality: machine.XokExOS, SharedMemPipes: true}},
		{"Protection", machine.Config{Personality: machine.XokExOS}},
		{"OpenBSD", machine.Config{Personality: machine.OpenBSD}},
	}
	return runLegs(b, len(specs), func(i int, tr *trace.Tracer) (Table2Row, error) {
		cfg := specs[i].cfg
		cfg.Trace = tr
		run := machine.Runner(machine.MustNew(cfg))
		row := Table2Row{
			Impl:   specs[i].impl,
			Lat1B:  ostest.PipeLatency(run, 1, rounds),
			Lat8KB: ostest.PipeLatency(run, 8192, rounds),
		}
		if row.Lat1B == 0 || row.Lat8KB == 0 {
			return row, fmt.Errorf("core: pipe measurement failed for %s", row.Impl)
		}
		return row, nil
	})
}

// Figure3 measures HTTP throughput for all five servers across the
// document sizes of Figure 3 — 25 independent server×size cells.
func (b *Bench) Figure3(clients int, duration sim.Time) ([]httpd.Result, error) {
	if clients == 0 {
		clients = 24
	}
	if duration == 0 {
		duration = 300 * sim.Millisecond
	}
	kinds := httpd.Kinds()
	sizes := httpd.Figure3Sizes
	return runLegs(b, len(kinds)*len(sizes), func(i int, tr *trace.Tracer) (httpd.Result, error) {
		kind, size := kinds[i/len(sizes)], sizes[i%len(sizes)]
		r, err := httpd.Measure(kind, size, httpd.Opts{Clients: clients, Duration: duration, Trace: tr})
		if err != nil {
			return r, fmt.Errorf("%v@%d: %w", kind, size, err)
		}
		return r, nil
	})
}

// Cluster runs the topology-aware cluster cells — each cell boots its
// own fabric and machines, so cells are independent legs. Results and
// the merged latency digests are identical at every Parallel setting.
func (b *Bench) Cluster(cells []workload.ClusterConfig) ([]workload.ClusterResult, error) {
	return runLegs(b, len(cells), func(i int, tr *trace.Tracer) (workload.ClusterResult, error) {
		cfg := cells[i]
		cfg.Trace = tr
		cfg.Shard = b.Shard
		cfg.NoWheel = b.NoWheel
		return workload.Cluster(cfg)
	})
}

// GlobalSweep runs the Figure 4/5 cells on both Xok/ExOS and FreeBSD
// with the identical seed — 2×len(cells) legs. Row i of the result is
// {Xok/ExOS, FreeBSD} for cells[i].
func (b *Bench) GlobalSweep(pool []workload.JobKind, cells []GlobalCell, seed uint64) ([][2]workload.GlobalResult, error) {
	rs, err := runLegs(b, 2*len(cells), func(i int, tr *trace.Tracer) (workload.GlobalResult, error) {
		cell := cells[i/2]
		cfg := machine.Config{Personality: machine.XokExOS}
		if i%2 == 1 {
			cfg.Personality = machine.FreeBSD
		}
		cfg.Trace = tr
		return workload.GlobalPerf(machine.MustNew(cfg), pool, cell.TotalJobs, cell.MaxConc, seed)
	})
	if err != nil {
		return nil, err
	}
	out := make([][2]workload.GlobalResult, len(cells))
	for i := range cells {
		out[i] = [2]workload.GlobalResult{rs[2*i], rs[2*i+1]}
	}
	return out, nil
}
