package core

import (
	"testing"

	"xok/internal/sim"
)

func TestTable2PipeShape(t *testing.T) {
	// Table 2: Shared memory 13/150 us, Protection 30/148 us, OpenBSD
	// 34/160 us (1-byte / 8-KB latency). The shape: shared < protected
	// <= OpenBSD at 1 byte; at 8 KB the copy cost dominates and all
	// three converge, with the user-level pipes still at or below
	// OpenBSD ("even with gratuitous use of Xok's protection
	// mechanisms, user-level pipes can still outperform OpenBSD").
	rows, err := RunTable2()
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		t.Logf("%-14s 1B=%8.1fus  8KB=%8.1fus", r.Impl, r.Lat1B.Micros(), r.Lat8KB.Micros())
	}
	shared, prot, bsd := rows[0], rows[1], rows[2]
	if !(shared.Lat1B < prot.Lat1B) {
		t.Errorf("1B: shared (%v) must beat protected (%v)", shared.Lat1B, prot.Lat1B)
	}
	if !(prot.Lat1B <= bsd.Lat1B) {
		t.Errorf("1B: protected (%v) must not exceed OpenBSD (%v)", prot.Lat1B, bsd.Lat1B)
	}
	if !(prot.Lat8KB <= bsd.Lat8KB) {
		t.Errorf("8KB: protected (%v) must not exceed OpenBSD (%v)", prot.Lat8KB, bsd.Lat8KB)
	}
	// 8-KB latencies converge within ~25% between shared and protected
	// (148 vs 150 us in the paper).
	ratio := float64(prot.Lat8KB) / float64(shared.Lat8KB)
	if ratio > 1.4 {
		t.Errorf("8KB shared/protected ratio = %.2f, want near 1", ratio)
	}
	// Magnitudes: within a factor ~2.5 of the published values.
	checks := []struct {
		name string
		got  sim.Time
		want float64 // microseconds
	}{
		{"shared 1B", shared.Lat1B, 13},
		{"protected 1B", prot.Lat1B, 30},
		{"openbsd 1B", bsd.Lat1B, 34},
		{"shared 8KB", shared.Lat8KB, 150},
		{"protected 8KB", prot.Lat8KB, 148},
		{"openbsd 8KB", bsd.Lat8KB, 160},
	}
	for _, c := range checks {
		us := c.got.Micros()
		if us < c.want/2.5 || us > c.want*2.5 {
			t.Errorf("%s = %.1fus, paper reports %.0fus", c.name, us, c.want)
		}
	}
}

func TestBootHelpers(t *testing.T) {
	if s := BootXok(); s.FS == nil || !s.Cfg.Protect {
		t.Fatal("BootXok misconfigured")
	}
	if cells := Figure45Cells(); len(cells) != 5 || cells[4].TotalJobs != 35 {
		t.Fatal("figure 4/5 cells wrong")
	}
	if len(Pool1()) != 9 || len(Pool2()) != 5 {
		t.Fatal("pool sizes wrong")
	}
}

func TestRunFigure3Smoke(t *testing.T) {
	results, err := RunFigure3(8, 50*sim.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 25 {
		t.Fatalf("cells = %d, want 5 servers x 5 sizes", len(results))
	}
	for _, r := range results {
		if r.Requests == 0 {
			t.Errorf("%s@%d completed nothing", r.Server, r.DocSize)
		}
	}
}

func TestRunGlobalSmoke(t *testing.T) {
	xok, fbsd, err := RunGlobal(Pool1(), GlobalCell{TotalJobs: 4, MaxConc: 2}, 7)
	if err != nil {
		t.Fatal(err)
	}
	if xok.Total == 0 || fbsd.Total == 0 {
		t.Fatalf("empty results: %+v %+v", xok, fbsd)
	}
	if xok.TotalJobs != 4 || xok.MaxConc != 2 {
		t.Fatalf("cell echoed wrong: %+v", xok)
	}
}

func TestRunFigure2AndMABSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("heavy")
	}
	f2, err := RunFigure2()
	if err != nil {
		t.Fatal(err)
	}
	if len(f2) != 4 || len(f2[0].Steps) != 11 {
		t.Fatalf("figure 2 shape: %d systems, %d steps", len(f2), len(f2[0].Steps))
	}
	mab, err := RunMAB()
	if err != nil {
		t.Fatal(err)
	}
	if len(mab) != 4 || len(mab[0].Phases) != 5 {
		t.Fatalf("MAB shape: %d systems, %d phases", len(mab), len(mab[0].Phases))
	}
	pc, err := RunProtectionCost()
	if err != nil {
		t.Fatal(err)
	}
	if pc.WithProtection.Total <= pc.WithoutProtection.Total {
		t.Fatal("protection result inverted")
	}
}
