// Package core is the top-level facade of the exokernel reproduction:
// one entry point to boot simulated machines (Xok/ExOS and the BSD
// models) and to run every experiment from the paper's evaluation —
// Figure 2 / Table 1 (the I/O-intensive workload), the Modified Andrew
// Benchmark, the Section 6.3 cost-of-protection measurement, Table 2
// (pipe latencies), the Section 7.1 emulator and 7.2 XCP results,
// Figure 3 (HTTP throughput), and Figures 4 and 5 (global
// performance).
//
// The examples and cmd/xok-bench are built on this package; each
// experiment returns plain result structs so callers can format or
// assert on them.
package core

import (
	"xok/internal/bsdos"
	"xok/internal/exos"
	"xok/internal/httpd"
	"xok/internal/sim"
	"xok/internal/workload"
)

// BootXok boots a Xok/ExOS machine with protection on (the paper's
// measured configuration).
func BootXok() *exos.System {
	return exos.Boot(exos.Config{Protect: true})
}

// BootXokWith boots a Xok/ExOS machine with explicit options.
func BootXokWith(cfg exos.Config) *exos.System { return exos.Boot(cfg) }

// BootBSD boots one of the monolithic comparison systems.
func BootBSD(v bsdos.Variant) *bsdos.System {
	return bsdos.Boot(v, bsdos.Config{})
}

// RunFigure2 executes the I/O-intensive lcc-install workload (Table 1)
// on the four systems of Figure 2, in the paper's order. (The Run*
// functions are serial, untraced conveniences; Bench adds a worker
// pool and a trace sink with identical results.)
func RunFigure2() ([]workload.IOResult, error) {
	return (&Bench{}).Figure2()
}

// RunMAB executes the Modified Andrew Benchmark on the four systems.
func RunMAB() ([]workload.MABResult, error) {
	return (&Bench{}).MAB()
}

// RunProtectionCost executes the Section 6.3 experiment.
func RunProtectionCost() (workload.ProtectionResult, error) {
	return (&Bench{}).ProtectionCost()
}

// Table2Row is one pipe implementation's latencies.
type Table2Row struct {
	Impl   string
	Lat1B  sim.Time
	Lat8KB sim.Time
}

// RunTable2 measures the three pipe implementations of Table 2:
// shared-memory ExOS pipes, protected ExOS pipes (software regions +
// wakeup predicates), and OpenBSD's in-kernel pipes.
func RunTable2() ([]Table2Row, error) {
	return (&Bench{}).Table2()
}

// RunFigure3 measures HTTP throughput for all five servers across the
// document sizes of Figure 3.
func RunFigure3(clients int, duration sim.Time) ([]httpd.Result, error) {
	return (&Bench{}).Figure3(clients, duration)
}

// GlobalCell is one number/number cell of Figures 4 and 5.
type GlobalCell struct {
	TotalJobs int
	MaxConc   int
}

// Figure45Cells are the paper's five cells: 7/1 .. 35/5.
func Figure45Cells() []GlobalCell {
	return []GlobalCell{{7, 1}, {14, 2}, {21, 3}, {28, 4}, {35, 5}}
}

// RunGlobal runs one global-performance cell on both Xok/ExOS and
// FreeBSD (the figures' two systems), with the identical seed.
func RunGlobal(pool []workload.JobKind, cell GlobalCell, seed uint64) (xok, fbsd workload.GlobalResult, err error) {
	rows, err := (&Bench{}).GlobalSweep(pool, []GlobalCell{cell}, seed)
	if err != nil {
		return
	}
	return rows[0][0], rows[0][1], nil
}

// Pool1 re-exports Figure 4's job mix.
func Pool1() []workload.JobKind { return workload.Pool1() }

// Pool2 re-exports Figure 5's job mix.
func Pool2() []workload.JobKind { return workload.Pool2() }
