package wkpred

import (
	"errors"
	"testing"

	"xok/internal/sim"
)

func TestBasicComparison(t *testing.T) {
	var word int64 = 5
	p, err := Compile(Cmp(EQ, Load(&word), Const(7)))
	if err != nil {
		t.Fatal(err)
	}
	if p.Eval(0) {
		t.Fatal("5 == 7 evaluated true")
	}
	word = 7
	if !p.Eval(0) {
		t.Fatal("predicate did not observe word change")
	}
}

func TestAllOperators(t *testing.T) {
	var w int64 = 10
	cases := []struct {
		op   CmpOp
		rhs  int64
		want bool
	}{
		{EQ, 10, true}, {EQ, 9, false},
		{NE, 9, true}, {NE, 10, false},
		{LT, 11, true}, {LT, 10, false},
		{LE, 10, true}, {LE, 9, false},
		{GT, 9, true}, {GT, 10, false},
		{GE, 10, true}, {GE, 11, false},
	}
	for _, c := range cases {
		p, err := Compile(Cmp(c.op, Load(&w), Const(c.rhs)))
		if err != nil {
			t.Fatal(err)
		}
		if got := p.Eval(0); got != c.want {
			t.Errorf("10 %v %d = %v, want %v", c.op, c.rhs, got, c.want)
		}
	}
}

func TestBooleanCombinators(t *testing.T) {
	var a, b int64 = 1, 0
	pa := Cmp(NE, Load(&a), Const(0))
	pb := Cmp(NE, Load(&b), Const(0))

	and, _ := Compile(And(pa, pb))
	or, _ := Compile(Or(pa, pb))
	not, _ := Compile(Not(pb))

	if and.Eval(0) {
		t.Fatal("AND with false arm evaluated true")
	}
	if !or.Eval(0) {
		t.Fatal("OR with true arm evaluated false")
	}
	if !not.Eval(0) {
		t.Fatal("NOT false evaluated false")
	}
	b = 1
	if !and.Eval(0) {
		t.Fatal("AND did not observe update")
	}
}

func TestClockBoundedSleep(t *testing.T) {
	// "To bound the amount of time a predicate sleeps, it can compare
	// against the system clock": block-state OR timeout.
	var blockState int64 // 0 = in transit, 1 = resident
	deadline := sim.FromMicros(100)
	p, err := Compile(Or(
		Cmp(EQ, Load(&blockState), Const(1)),
		Cmp(GE, Clock(), Const(int64(deadline))),
	))
	if err != nil {
		t.Fatal(err)
	}
	if p.Eval(sim.FromMicros(10)) {
		t.Fatal("woke too early")
	}
	if !p.Eval(sim.FromMicros(100)) {
		t.Fatal("timeout did not fire")
	}
	blockState = 1
	if !p.Eval(sim.FromMicros(10)) {
		t.Fatal("state change did not wake")
	}
}

func TestCompileRejectsBadShapes(t *testing.T) {
	var w int64
	cases := []struct {
		name string
		n    *Node
		want error
	}{
		{"nil", nil, ErrNil},
		{"bare const", Const(1), ErrBadShape},
		{"bare load", Load(&w), ErrBadShape},
		{"cmp of bools", Cmp(EQ, Cmp(EQ, Const(1), Const(1)), Const(1)), ErrBadShape},
		{"and of arith", And(Const(1), Const(2)), ErrBadShape},
		{"nil word", Cmp(EQ, Load(nil), Const(0)), ErrNilWord},
	}
	for _, c := range cases {
		if _, err := Compile(c.n); !errors.Is(err, c.want) {
			t.Errorf("%s: err = %v, want %v", c.name, err, c.want)
		}
	}
}

func TestCompileSizeLimit(t *testing.T) {
	var w int64
	n := Cmp(EQ, Load(&w), Const(0))
	for i := 0; i < MaxNodes; i++ {
		n = And(n, Cmp(EQ, Load(&w), Const(0)))
	}
	if _, err := Compile(n); !errors.Is(err, ErrTooBig) {
		t.Fatalf("oversized predicate err = %v, want ErrTooBig", err)
	}
}

func TestCostScalesWithSize(t *testing.T) {
	var w int64
	small, _ := Compile(Cmp(EQ, Load(&w), Const(0)))
	big, _ := Compile(And(
		Cmp(EQ, Load(&w), Const(0)),
		Cmp(GE, Clock(), Const(100)),
	))
	if small.Cost() >= big.Cost() {
		t.Fatalf("cost(small)=%v >= cost(big)=%v", small.Cost(), big.Cost())
	}
	if small.Nodes() != 3 {
		t.Fatalf("small nodes = %d, want 3", small.Nodes())
	}
}

func TestCompositionChecksDisjointStructures(t *testing.T) {
	// "The composition of multiple predicates allows atomic checking
	// of disjoint data structures": both words must be observed in one
	// evaluation.
	var q1len, q2len int64
	p, err := Compile(And(
		Cmp(GT, Load(&q1len), Const(0)),
		Cmp(GT, Load(&q2len), Const(0)),
	))
	if err != nil {
		t.Fatal(err)
	}
	q1len = 5
	if p.Eval(0) {
		t.Fatal("half-ready state woke the predicate")
	}
	q2len = 2
	if !p.Eval(0) {
		t.Fatal("fully-ready state did not wake")
	}
}
