// Package wkpred implements Xok's wakeup predicates (Section 5.1):
// "small, kernel-downloaded functions that wake up processes when
// arbitrary conditions become true". A sleeping environment downloads a
// predicate; the kernel evaluates it whenever the environment is about
// to be scheduled and skips the environment while the predicate is
// false.
//
// Following the paper, the language is deliberately tiny — boolean
// combinations of comparisons over bound words, with no loops — which
// is what makes the kernel's evaluator trivial to control ("careful
// language design (no loops and easy to understand operations) allows
// predicates to be easily controlled"; the original implementation was
// fewer than 200 lines). Predicates may compare against the system
// clock to bound how long they sleep, and composition with And/Or
// "allows atomic checking of disjoint data structures".
//
// Address binding: on real Xok, predicate virtual addresses are
// pre-translated to physical addresses when the predicate is
// downloaded. The simulation's equivalent is binding to *int64 words at
// compile time — evaluation involves no lookups, just loads.
package wkpred

import (
	"errors"

	"xok/internal/sim"
)

// CmpOp is a comparison operator.
type CmpOp uint8

// Comparison operators.
const (
	EQ CmpOp = iota
	NE
	LT
	LE
	GT
	GE
)

// Node is a predicate expression node. Nodes are built with the
// constructor functions below and compiled with Compile.
type Node struct {
	kind  nodeKind
	op    CmpOp
	a, b  *Node
	word  *int64
	value int64
}

type nodeKind uint8

const (
	kindConst nodeKind = iota
	kindLoad
	kindClock
	kindCmp
	kindAnd
	kindOr
	kindNot
)

// Const is an integer literal.
func Const(v int64) *Node { return &Node{kind: kindConst, value: v} }

// Load binds a watched word. The pointer is the "pre-translated
// physical address": evaluation reads through it directly.
func Load(word *int64) *Node { return &Node{kind: kindLoad, word: word} }

// Clock reads the current virtual time in cycles; predicates use it to
// bound their sleep ("to bound the amount of time a predicate sleeps,
// it can compare against the system clock").
func Clock() *Node { return &Node{kind: kindClock} }

// Cmp compares two arithmetic nodes.
func Cmp(op CmpOp, a, b *Node) *Node { return &Node{kind: kindCmp, op: op, a: a, b: b} }

// And is boolean conjunction of two boolean nodes.
func And(a, b *Node) *Node { return &Node{kind: kindAnd, a: a, b: b} }

// Or is boolean disjunction.
func Or(a, b *Node) *Node { return &Node{kind: kindOr, a: a, b: b} }

// Not negates a boolean node.
func Not(a *Node) *Node { return &Node{kind: kindNot, a: a} }

// MaxNodes bounds a compiled predicate's size.
const MaxNodes = 64

// Compilation errors.
var (
	ErrNil      = errors.New("wkpred: nil node")
	ErrTooBig   = errors.New("wkpred: predicate exceeds node limit")
	ErrBadShape = errors.New("wkpred: arithmetic node where boolean required")
	ErrNilWord  = errors.New("wkpred: Load with nil word")
)

// Pred is a compiled predicate.
type Pred struct {
	root  *Node
	nodes int
}

// Compile verifies the expression (the kernel-side check at download
// time) and returns an evaluable predicate. The root must be boolean
// (a comparison or a boolean combinator).
func Compile(root *Node) (*Pred, error) {
	n, err := check(root, true)
	if err != nil {
		return nil, err
	}
	if n > MaxNodes {
		return nil, ErrTooBig
	}
	return &Pred{root: root, nodes: n}, nil
}

// check validates shape and counts nodes. wantBool tracks whether the
// context requires a boolean result.
func check(n *Node, wantBool bool) (int, error) {
	if n == nil {
		return 0, ErrNil
	}
	switch n.kind {
	case kindConst:
		if wantBool {
			return 0, ErrBadShape
		}
		return 1, nil
	case kindLoad:
		if wantBool {
			return 0, ErrBadShape
		}
		if n.word == nil {
			return 0, ErrNilWord
		}
		return 1, nil
	case kindClock:
		if wantBool {
			return 0, ErrBadShape
		}
		return 1, nil
	case kindCmp:
		if !wantBool {
			return 0, ErrBadShape
		}
		ca, err := check(n.a, false)
		if err != nil {
			return 0, err
		}
		cb, err := check(n.b, false)
		if err != nil {
			return 0, err
		}
		return ca + cb + 1, nil
	case kindAnd, kindOr:
		if !wantBool {
			return 0, ErrBadShape
		}
		ca, err := check(n.a, true)
		if err != nil {
			return 0, err
		}
		cb, err := check(n.b, true)
		if err != nil {
			return 0, err
		}
		return ca + cb + 1, nil
	case kindNot:
		if !wantBool {
			return 0, ErrBadShape
		}
		ca, err := check(n.a, true)
		if err != nil {
			return 0, err
		}
		return ca + 1, nil
	}
	return 0, ErrNil
}

// Eval evaluates the predicate at virtual time now.
func (p *Pred) Eval(now sim.Time) bool { return evalBool(p.root, now) }

// Cost returns the CPU cost of one evaluation, proportional to
// predicate size (compiled predicates are cheap).
func (p *Pred) Cost() sim.Time {
	return sim.CostPredicateEval + sim.Time(p.nodes)*4
}

// Nodes reports the compiled node count.
func (p *Pred) Nodes() int { return p.nodes }

func evalBool(n *Node, now sim.Time) bool {
	switch n.kind {
	case kindCmp:
		a, b := evalArith(n.a, now), evalArith(n.b, now)
		switch n.op {
		case EQ:
			return a == b
		case NE:
			return a != b
		case LT:
			return a < b
		case LE:
			return a <= b
		case GT:
			return a > b
		case GE:
			return a >= b
		}
	case kindAnd:
		return evalBool(n.a, now) && evalBool(n.b, now)
	case kindOr:
		return evalBool(n.a, now) || evalBool(n.b, now)
	case kindNot:
		return !evalBool(n.a, now)
	}
	panic("wkpred: eval of unverified predicate")
}

func evalArith(n *Node, now sim.Time) int64 {
	switch n.kind {
	case kindConst:
		return n.value
	case kindLoad:
		return *n.word
	case kindClock:
		return int64(now)
	}
	panic("wkpred: eval of unverified predicate")
}
