// Package httpd implements the five HTTP/1.0 servers of Figure 3 and
// the harness that measures their document throughput:
//
//	NCSA/BSD    — NCSA 1.4.2 on OpenBSD: forks a handler per request.
//	Harvest/BSD — the Harvest proxy cache on OpenBSD: single process,
//	              in-memory object cache (it "stores cached pages in
//	              multiple directories to achieve fast name lookup").
//	Socket/BSD  — the paper's own server over OpenBSD TCP sockets.
//	Socket/Xok  — the same server over the XIO-based socket interface
//	              on Xok ("better by 80-100%").
//	Cheetah     — the Cheetah server: merged file cache/retransmission
//	              pool with precomputed checksums, knowledge-based
//	              packet merging, and HTML-based grouping.
package httpd

import (
	"fmt"

	"xok/internal/bsdos"
	"xok/internal/cap"
	"xok/internal/cffs"
	"xok/internal/exos"
	"xok/internal/kernel"
	"xok/internal/netsim"
	"xok/internal/sim"
	"xok/internal/trace"
	"xok/internal/xio"
)

// Kind selects a server configuration.
type Kind int

// The five servers, in Figure 3's legend order.
const (
	NCSABSd Kind = iota
	HarvestBSD
	SocketBSD
	SocketXok
	Cheetah
)

// String names the server as the figure does.
func (k Kind) String() string {
	switch k {
	case NCSABSd:
		return "NCSA/BSD"
	case HarvestBSD:
		return "Harvest/BSD"
	case SocketBSD:
		return "Socket/BSD"
	case SocketXok:
		return "Socket/Xok"
	case Cheetah:
		return "Cheetah"
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// Kinds lists all five servers.
func Kinds() []Kind {
	return []Kind{NCSABSd, HarvestBSD, SocketBSD, SocketXok, Cheetah}
}

// StackProfile is the server's protocol cost profile (Section 7.3
// calibration; see EXPERIMENTS.md). Exported so other harnesses (the
// cluster experiment) can serve with the same calibrated stacks.
func (k Kind) StackProfile() netsim.StackConfig {
	switch k {
	case NCSABSd:
		return netsim.StackConfig{
			Name: k.String(), PerConn: 500 * sim.Microsecond,
			PerPacket: 120 * sim.Microsecond, AckCost: 30 * sim.Microsecond,
			CopyOnSend: true, ChecksumOnSend: true,
			SeparateReqAck: true, SeparateFIN: true,
			ForkPerRequest: sim.CostForkBSD + sim.CostExec,
		}
	case HarvestBSD, SocketBSD:
		return netsim.StackConfig{
			Name: k.String(), PerConn: 500 * sim.Microsecond,
			PerPacket: 120 * sim.Microsecond, AckCost: 30 * sim.Microsecond,
			CopyOnSend: true, ChecksumOnSend: true,
			SeparateReqAck: true, SeparateFIN: true,
		}
	case SocketXok:
		return netsim.StackConfig{
			Name: k.String(), PerConn: 200 * sim.Microsecond,
			PerPacket: 85 * sim.Microsecond, AckCost: 15 * sim.Microsecond,
			CopyOnSend: true, ChecksumOnSend: true,
			SeparateReqAck: true, SeparateFIN: true,
		}
	case Cheetah:
		return netsim.StackConfig{
			Name: k.String(), PerConn: 50 * sim.Microsecond,
			PerPacket: 12 * sim.Microsecond, AckCost: 8 * sim.Microsecond,
			// Merged file cache/retransmission pool: no copies, no
			// send-time checksums; packet merging: no separate
			// control packets.
		}
	}
	panic("httpd: unknown kind")
}

// onXok reports whether the server runs on the exokernel.
func (k Kind) onXok() bool { return k == SocketXok || k == Cheetah }

// Result is one measured cell of Figure 3.
type Result struct {
	Server     string
	DocSize    int
	Requests   int
	ReqPerSec  float64
	MBytesPerS float64
	CPUIdle    float64 // fraction of server CPU left idle
	MeanLat    sim.Time
}

const nDocs = 16

// Opts bundles the measurement knobs so call sites stop threading
// them positionally (Clients defaults to 24, Duration to 300 virtual
// ms).
type Opts struct {
	// Clients is the closed-loop client count.
	Clients int
	// Duration is the measured virtual time window.
	Duration sim.Time
	// Trace, when non-nil, receives the machine's spans and
	// histograms; it must not be shared with a machine running
	// concurrently (internal/parallel callers pass a fresh tracer per
	// leg and merge afterwards).
	Trace *trace.Tracer
}

func (o Opts) withDefaults() Opts {
	if o.Clients == 0 {
		o.Clients = 24
	}
	if o.Duration == 0 {
		o.Duration = 300 * sim.Millisecond
	}
	return o
}

// Measure runs one server at one document size with o.Clients
// closed-loop clients for o.Duration of virtual time.
func Measure(kind Kind, docSize int, o Opts) (Result, error) {
	o = o.withDefaults()
	tr := o.Trace
	var k *kernel.Kernel
	var fs *cffs.FS
	if kind.onXok() {
		s := exos.Boot(exos.Config{Trace: tr})
		k, fs = s.K, s.FS
	} else {
		s := bsdos.Boot(bsdos.OpenBSD, bsdos.Config{Trace: tr})
		k, fs = s.K, s.FS
	}

	// Stage the document tree. NCSA-style servers resolve a deeper
	// path per request; Harvest and Cheetah keep flat object stores
	// (Harvest spreads objects over directories purely for lookup
	// speed).
	var stageErr error
	k.Spawn("stage", func(e *kernel.Env) {
		e.Creds = cap.UnixCreds(0)
		if err := fs.Mkdir(e, "/docs", 0, 0, 7); err != nil {
			stageErr = err
			return
		}
		for i := 0; i < nDocs; i++ {
			ref, err := fs.Create(e, docPath(i), 0, 0, 6)
			if err != nil {
				stageErr = err
				return
			}
			if docSize > 0 {
				if _, err := fs.WriteAt(e, ref, 0, make([]byte, docSize)); err != nil {
					stageErr = err
					return
				}
			}
		}
		stageErr = fs.Sync(e)
	})
	k.Run()
	if stageErr != nil {
		return Result{}, fmt.Errorf("httpd stage: %w", stageErr)
	}

	// The paper's testbed as a Topology: one client host wired to the
	// server machine by sim.NumLinks Ethernets.
	topo := netsim.NewTopologyOn(k.Eng)
	topo.Faults = k.Faults
	clientHost := topo.AddHost("clients")
	srvHost := topo.AttachKernel("server", k)
	for i := 0; i < sim.NumLinks; i++ {
		topo.Link(clientHost, srvHost, netsim.LinkSpec{})
	}
	stop := k.Now() + o.Duration
	pool := topo.NewClientPool(clientHost, srvHost, o.Clients, docSize, stop)

	handler := makeHandler(kind, fs)
	var serverEnv *kernel.Env
	serverEnv = k.Spawn("httpd-"+kind.String(), func(e *kernel.Env) {
		e.Creds = cap.UnixCreds(0)
		topo.NIC(srvHost).Serve(e, kind.StackProfile(), handler, stop)
	})
	k.RunUntil(stop)
	elapsed := o.Duration

	res := Result{
		Server:   kind.String(),
		DocSize:  docSize,
		Requests: pool.Completed,
		MeanLat:  pool.MeanLatency(),
	}
	secs := elapsed.Seconds()
	res.ReqPerSec = float64(pool.Completed) / secs
	res.MBytesPerS = float64(pool.Bytes) / secs / 1e6
	busy := serverEnv.CPUUsed().Seconds()
	res.CPUIdle = 1 - busy/secs
	if res.CPUIdle < 0 {
		res.CPUIdle = 0
	}
	k.Shutdown()
	return res, nil
}

func docPath(i int) string {
	return fmt.Sprintf("/docs/d%02d", i)
}

// makeHandler builds the per-request file path for each server type.
func makeHandler(kind Kind, fs *cffs.FS) netsim.Handler {
	switch kind {
	case Cheetah:
		cache := xio.NewCache(fs)
		next := 0
		return func(e *kernel.Env, c *netsim.Conn) int {
			e.Use(25 * sim.Microsecond) // parse request, build header
			i := next % nDocs
			next++
			en, err := cache.Lookup(e, docPath(i))
			if err != nil {
				return 0
			}
			return en.Size
		}
	case HarvestBSD:
		// In-memory object cache: cheap lookups after first touch, but
		// the send path still copies (BSD sockets).
		type obj struct{ size int }
		cache := make(map[int]obj)
		next := 0
		return func(e *kernel.Env, c *netsim.Conn) int {
			e.Use(40 * sim.Microsecond) // parse + cache hash
			i := next % nDocs
			next++
			if o, ok := cache[i]; ok {
				return o.size
			}
			ref, in, err := fs.Lookup(e, docPath(i))
			if err != nil {
				return 0
			}
			if in.Size > 0 {
				buf := make([]byte, in.Size)
				if _, err := fs.ReadAt(e, ref, 0, buf); err != nil {
					return 0
				}
			}
			cache[i] = obj{size: int(in.Size)}
			return int(in.Size)
		}
	default: // NCSA, Socket/BSD, Socket/Xok: open + read per request
		next := 0
		return func(e *kernel.Env, c *netsim.Conn) int {
			e.Use(30 * sim.Microsecond) // parse request, build header
			i := next % nDocs
			next++
			ref, in, err := fs.Lookup(e, docPath(i))
			if err != nil {
				return 0
			}
			if in.Size > 0 {
				// Read into a user buffer: the FS copy the socket
				// path then copies again.
				buf := make([]byte, in.Size)
				if _, err := fs.ReadAt(e, ref, 0, buf); err != nil {
					return 0
				}
			}
			return int(in.Size)
		}
	}
}

// Figure3Sizes are the x-axis document sizes.
var Figure3Sizes = []int{0, 100, 1024, 10240, 102400}

// Figure3 measures every server at every size, serially and untraced
// (core.Bench.Figure3 is the parallel, traceable entry point).
func Figure3(clients int, duration sim.Time) ([]Result, error) {
	var out []Result
	for _, kind := range Kinds() {
		for _, size := range Figure3Sizes {
			r, err := Measure(kind, size, Opts{Clients: clients, Duration: duration})
			if err != nil {
				return nil, fmt.Errorf("%v@%d: %w", kind, size, err)
			}
			out = append(out, r)
		}
	}
	return out, nil
}
