package httpd

import (
	"testing"

	"xok/internal/sim"
)

const testDuration = 300 * sim.Millisecond
const testClients = 24

func measure(t *testing.T, kind Kind, size int) Result {
	t.Helper()
	r, err := Measure(kind, size, Opts{Clients: testClients, Duration: testDuration})
	if err != nil {
		t.Fatalf("%v@%d: %v", kind, size, err)
	}
	if r.Requests == 0 {
		t.Fatalf("%v@%d completed no requests", kind, size)
	}
	return r
}

func TestFigure3SmallDocumentOrdering(t *testing.T) {
	// Figure 3 at small sizes: NCSA < {Harvest ~ Socket/BSD} <
	// Socket/Xok < Cheetah, with Cheetah ~4x Socket/Xok and ~8x the
	// best BSD server.
	size := 1024
	ncsa := measure(t, NCSABSd, size)
	harvest := measure(t, HarvestBSD, size)
	sockBSD := measure(t, SocketBSD, size)
	sockXok := measure(t, SocketXok, size)
	cheetah := measure(t, Cheetah, size)
	for _, r := range []Result{ncsa, harvest, sockBSD, sockXok, cheetah} {
		t.Logf("%-12s %6d B: %8.0f req/s  %6.1f MB/s  idle %4.1f%%  lat %v",
			r.Server, r.DocSize, r.ReqPerSec, r.MBytesPerS, r.CPUIdle*100, r.MeanLat)
	}
	if !(ncsa.ReqPerSec < harvest.ReqPerSec && ncsa.ReqPerSec < sockBSD.ReqPerSec) {
		t.Error("NCSA should be slowest (fork per request)")
	}
	if !(sockBSD.ReqPerSec < sockXok.ReqPerSec) {
		t.Error("Socket/Xok should beat Socket/BSD")
	}
	xokGain := sockXok.ReqPerSec / sockBSD.ReqPerSec
	if xokGain < 1.5 || xokGain > 2.6 {
		t.Errorf("Socket/Xok gain = %.2fx, want 1.8-2x (paper: 80-100%%)", xokGain)
	}
	cheetahGain := cheetah.ReqPerSec / sockXok.ReqPerSec
	if cheetahGain < 2.8 || cheetahGain > 6 {
		t.Errorf("Cheetah/SocketXok = %.2fx, want ~4x", cheetahGain)
	}
	bestBSD := sockBSD.ReqPerSec
	if harvest.ReqPerSec > bestBSD {
		bestBSD = harvest.ReqPerSec
	}
	overall := cheetah.ReqPerSec / bestBSD
	if overall < 5 || overall > 12 {
		t.Errorf("Cheetah/bestBSD = %.2fx, want ~8x", overall)
	}
}

func TestFigure3LargeDocuments(t *testing.T) {
	// At 100 KB: sockets are CPU-bound around 16.5 MB/s; Cheetah is
	// network-limited near 30 MB/s with substantial CPU idle.
	sockXok := measure(t, SocketXok, 102400)
	cheetah := measure(t, Cheetah, 102400)
	t.Logf("Socket/Xok 100KB: %6.1f MB/s idle %4.1f%%", sockXok.MBytesPerS, sockXok.CPUIdle*100)
	t.Logf("Cheetah    100KB: %6.1f MB/s idle %4.1f%%", cheetah.MBytesPerS, cheetah.CPUIdle*100)
	if sockXok.MBytesPerS < 10 || sockXok.MBytesPerS > 24 {
		t.Errorf("Socket/Xok = %.1f MB/s, want ~16.5", sockXok.MBytesPerS)
	}
	if cheetah.MBytesPerS < 25 || cheetah.MBytesPerS > 38 {
		t.Errorf("Cheetah = %.1f MB/s, want ~29-35 (network-limited)", cheetah.MBytesPerS)
	}
	if sockXok.CPUIdle > 0.1 {
		t.Errorf("Socket/Xok idle = %.0f%%, should be CPU-bound", sockXok.CPUIdle*100)
	}
	if cheetah.CPUIdle < 0.25 {
		t.Errorf("Cheetah idle = %.0f%%, paper reports >30%% idle", cheetah.CPUIdle*100)
	}
	if cheetah.MBytesPerS < 1.7*sockXok.MBytesPerS {
		t.Errorf("Cheetah (%.1f) should be ~1.8x Socket/Xok (%.1f) at 100KB",
			cheetah.MBytesPerS, sockXok.MBytesPerS)
	}
}

func TestThroughputScalesDownWithSize(t *testing.T) {
	small := measure(t, Cheetah, 0)
	large := measure(t, Cheetah, 102400)
	if small.ReqPerSec <= large.ReqPerSec {
		t.Errorf("0B (%0.f/s) should beat 100KB (%0.f/s) in req/s",
			small.ReqPerSec, large.ReqPerSec)
	}
	if large.MBytesPerS <= small.MBytesPerS {
		t.Error("100KB should beat 0B in MB/s")
	}
}

func TestDeterministicMeasurement(t *testing.T) {
	a := measure(t, SocketXok, 1024)
	b := measure(t, SocketXok, 1024)
	if a.Requests != b.Requests || a.MeanLat != b.MeanLat {
		t.Errorf("nondeterministic: %+v vs %+v", a, b)
	}
}
