package mem

import (
	"testing"

	"xok/internal/cap"
	"xok/internal/sim"
)

func newMem(n int) *PhysMem { return New(n, sim.NewStats()) }

func TestAllocFreeCycle(t *testing.T) {
	m := newMem(8)
	owner := cap.New(true, 1, 10)
	creds := cap.Credentials{owner}

	if m.FreePages() != 8 {
		t.Fatalf("free = %d, want 8", m.FreePages())
	}
	p, err := m.Alloc(owner)
	if err != nil {
		t.Fatal(err)
	}
	if m.FreePages() != 7 {
		t.Fatalf("free = %d, want 7", m.FreePages())
	}
	if err := m.Free(p, creds); err != nil {
		t.Fatal(err)
	}
	if m.FreePages() != 8 {
		t.Fatalf("free = %d after free, want 8", m.FreePages())
	}
}

func TestAllocExhaustion(t *testing.T) {
	m := newMem(2)
	g := cap.Root(true)
	if _, err := m.Alloc(g); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Alloc(g); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Alloc(g); err != ErrNoMemory {
		t.Fatalf("err = %v, want ErrNoMemory", err)
	}
}

func TestAllocSpecific(t *testing.T) {
	m := newMem(4)
	g := cap.Root(true)
	if err := m.AllocSpecific(2, g); err != nil {
		t.Fatal(err)
	}
	if err := m.AllocSpecific(2, g); err != ErrNotFree {
		t.Fatalf("double alloc err = %v, want ErrNotFree", err)
	}
	if err := m.AllocSpecific(99, g); err != ErrBadPage {
		t.Fatalf("bad page err = %v, want ErrBadPage", err)
	}
	// The specifically-allocated page must no longer be handed out.
	seen := map[PageNo]bool{2: true}
	for i := 0; i < 3; i++ {
		p, err := m.Alloc(g)
		if err != nil {
			t.Fatal(err)
		}
		if seen[p] {
			t.Fatalf("page %d handed out twice", p)
		}
		seen[p] = true
	}
}

func TestAccessControl(t *testing.T) {
	m := newMem(4)
	owner := cap.New(true, 1, 5)
	p, _ := m.Alloc(owner)

	ownerCreds := cap.Credentials{owner}
	stranger := cap.Credentials{cap.New(true, 1, 6)}
	readOnly := cap.Credentials{owner.ReadOnly()}

	if err := m.Access(p, ownerCreds, true); err != nil {
		t.Fatalf("owner write denied: %v", err)
	}
	if err := m.Access(p, stranger, false); err != ErrAccessDenied {
		t.Fatalf("stranger read err = %v, want denied", err)
	}
	if err := m.Access(p, readOnly, true); err != ErrAccessDenied {
		t.Fatalf("read-only write err = %v, want denied", err)
	}
	if err := m.Access(p, readOnly, false); err != nil {
		t.Fatalf("read-only read denied: %v", err)
	}
	if err := m.Free(p, stranger); err != ErrAccessDenied {
		t.Fatalf("stranger free err = %v, want denied", err)
	}
}

func TestFreeRequiresZeroRefs(t *testing.T) {
	m := newMem(4)
	owner := cap.Root(true)
	creds := cap.Credentials{owner}
	p, _ := m.Alloc(owner)
	if err := m.Ref(p); err != nil {
		t.Fatal(err)
	}
	if err := m.Free(p, creds); err != ErrPageInUse {
		t.Fatalf("free of pinned page err = %v, want ErrPageInUse", err)
	}
	if err := m.Unref(p); err != nil {
		t.Fatal(err)
	}
	if err := m.Free(p, creds); err != nil {
		t.Fatalf("free after unref: %v", err)
	}
	if err := m.Unref(p); err == nil {
		t.Fatal("unref of free page must fail")
	}
}

func TestSetGuardTransfersOwnership(t *testing.T) {
	m := newMem(2)
	alice := cap.New(true, 1, 1)
	bob := cap.New(true, 1, 2)
	p, _ := m.Alloc(alice)
	if err := m.SetGuard(p, cap.Credentials{alice}, bob); err != nil {
		t.Fatal(err)
	}
	if err := m.Access(p, cap.Credentials{alice}, false); err == nil {
		t.Fatal("old owner still has access after re-guard")
	}
	if err := m.Access(p, cap.Credentials{bob}, true); err != nil {
		t.Fatalf("new owner denied: %v", err)
	}
	g, err := m.Guard(p)
	if err != nil || !g.Equal(bob) {
		t.Fatalf("Guard = %v, %v", g, err)
	}
}

func TestDataPersists(t *testing.T) {
	m := newMem(2)
	p, _ := m.Alloc(cap.Root(true))
	d := m.Data(p)
	if len(d) != sim.PageSize {
		t.Fatalf("page size = %d", len(d))
	}
	d[0] = 0xAB
	if m.Data(p)[0] != 0xAB {
		t.Fatal("page data did not persist")
	}
}

func TestLRUVictim(t *testing.T) {
	m := newMem(4)
	g := cap.Root(true)
	a, _ := m.Alloc(g)
	b, _ := m.Alloc(g)
	c, _ := m.Alloc(g)
	m.Touch(a)
	m.Touch(c)
	m.Touch(b) // order of recency now: a < c < b... with a oldest
	if v := m.LRUVictim(); v != a {
		t.Fatalf("LRU victim = %d, want %d", v, a)
	}
	m.Ref(a)
	if v := m.LRUVictim(); v != c {
		t.Fatalf("LRU victim with a pinned = %d, want %d", v, c)
	}
	m.Ref(b)
	m.Ref(c)
	if v := m.LRUVictim(); v != NoPage {
		t.Fatalf("all pinned but victim = %d", v)
	}
}

func TestPageTable(t *testing.T) {
	pt := NewPageTable()
	pt.Map(10, PTE{Phys: 3, Writable: true})
	pt.Map(11, PTE{Phys: 4, Soft: SoftCOW})
	if pt.Len() != 2 {
		t.Fatalf("len = %d", pt.Len())
	}
	e, ok := pt.Lookup(11)
	if !ok || e.Phys != 4 || e.Soft&SoftCOW == 0 {
		t.Fatalf("lookup = %+v, %v", e, ok)
	}
	old, ok := pt.Unmap(10)
	if !ok || old.Phys != 3 {
		t.Fatalf("unmap = %+v, %v", old, ok)
	}
	if _, ok := pt.Lookup(10); ok {
		t.Fatal("entry survived unmap")
	}
	if _, ok := pt.Unmap(10); ok {
		t.Fatal("double unmap reported ok")
	}
	n := 0
	pt.Range(func(VPN, PTE) { n++ })
	if n != 1 {
		t.Fatalf("Range visited %d entries, want 1", n)
	}
	if len(pt.VPNs()) != 1 {
		t.Fatal("VPNs length mismatch")
	}
}
