package mem

// VPN is a virtual page number inside one environment's address space.
type VPN uint32

// PTE is one page-table entry. Writable is the hardware W bit; Soft is
// the software-only bit field the hardware ignores but Xok exposes to
// libOSes (ExOS keeps its copy-on-write mark there).
type PTE struct {
	Phys     PageNo
	Writable bool
	Soft     uint8
}

// Software-bit assignments used by ExOS.
const (
	SoftCOW uint8 = 1 << iota // page is copy-on-write
	SoftPinned
)

// PageTable is one environment's virtual-to-physical mapping. On real
// Xok this is the x86 hardware page table, mutated only via system
// calls; the kernel package charges those call costs.
type PageTable struct {
	entries map[VPN]PTE
}

// NewPageTable returns an empty table.
func NewPageTable() *PageTable {
	return &PageTable{entries: make(map[VPN]PTE)}
}

// Map installs or replaces the entry for vpn.
func (pt *PageTable) Map(vpn VPN, e PTE) { pt.entries[vpn] = e }

// Unmap removes vpn's entry, returning the old entry and whether one
// existed.
func (pt *PageTable) Unmap(vpn VPN) (PTE, bool) {
	e, ok := pt.entries[vpn]
	if ok {
		delete(pt.entries, vpn)
	}
	return e, ok
}

// Lookup returns vpn's entry.
func (pt *PageTable) Lookup(vpn VPN) (PTE, bool) {
	e, ok := pt.entries[vpn]
	return e, ok
}

// Len returns the number of live mappings.
func (pt *PageTable) Len() int { return len(pt.entries) }

// Range calls fn for every mapping; fn may not mutate the table.
// Iteration order is unspecified (callers needing determinism sort the
// VPNs themselves).
func (pt *PageTable) Range(fn func(VPN, PTE)) {
	for vpn, e := range pt.entries {
		fn(vpn, e)
	}
}

// VPNs returns all mapped virtual page numbers, unsorted.
func (pt *PageTable) VPNs() []VPN {
	out := make([]VPN, 0, len(pt.entries))
	for vpn := range pt.entries {
		out = append(out, vpn)
	}
	return out
}
