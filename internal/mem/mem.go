// Package mem models the physical memory of the simulated machine and
// the per-environment page tables Xok maintains.
//
// Exokernel principles visible here (Section 3.1):
//
//   - Expose allocation: environments allocate specific physical pages
//     explicitly and may request particular page numbers.
//   - Expose names: all interfaces use physical page numbers.
//   - Expose information: the free list, per-page guards, reference
//     counts and the kernel's approximate-LRU ordering are readable by
//     applications.
//
// Because the x86 defines the page-table format and refills the TLB in
// hardware, applications cannot own their page tables on Xok; they
// mutate mappings through (batched) system calls instead (Section 5.1).
// The PageTable type models exactly the state those calls maintain,
// including the software-only PTE bits ExOS uses to implement
// copy-on-write (Section 9.3: "Xok lets libOSes use the software-only
// bits of page tables, greatly simplifying the implementation of copy
// on write").
package mem

import (
	"errors"
	"fmt"
	"sync"

	"xok/internal/bufpool"
	xcap "xok/internal/cap"
	"xok/internal/sim"
)

// PageNo names a physical page. Physical names are the exokernel
// currency; -1 is "no page".
type PageNo int32

// NoPage is the invalid page number.
const NoPage PageNo = -1

// Errors returned by the allocator and access checks.
var (
	ErrNoMemory     = errors.New("mem: out of physical pages")
	ErrBadPage      = errors.New("mem: bad physical page number")
	ErrNotFree      = errors.New("mem: requested page is not free")
	ErrAccessDenied = errors.New("mem: capability check failed")
	ErrPageInUse    = errors.New("mem: page reference count not zero")
)

type page struct {
	guard    xcap.Capability
	refCount int  // live mappings + registry pins
	free     bool // on the free list
	shared   bool // data is frozen in a snapshot: copy-on-write, never mutate or Put
	data     []byte
	lastUse  uint64 // LRU clock stamp
}

// PhysMem is the machine's physical page frame array plus the free
// list.
type PhysMem struct {
	pages    []page
	freeList []PageNo
	useClock uint64
	stats    *sim.Stats
}

// physmemPool recycles whole PhysMem shells (the page-frame array and
// free list) between machine boots. Harnesses that churn through
// machines hand them back via Recycle; a pooled shell whose arrays are
// too small for the requested size is simply replaced.
var physmemPool = sync.Pool{New: func() any { return new(PhysMem) }}

// New returns physical memory with npages frames, all free.
func New(npages int, stats *sim.Stats) *PhysMem {
	m := physmemPool.Get().(*PhysMem)
	m.stats = stats
	m.useClock = 0
	if cap(m.pages) >= npages {
		m.pages = m.pages[:npages]
	} else {
		m.pages = make([]page, npages)
	}
	if cap(m.freeList) >= npages {
		m.freeList = m.freeList[:0]
	} else {
		m.freeList = make([]PageNo, 0, npages)
	}
	for i := npages - 1; i >= 0; i-- {
		m.pages[i].free = true
		m.freeList = append(m.freeList, PageNo(i))
	}
	return m
}

// Recycle tears the memory down for reuse: every lazily-materialized
// frame buffer goes back to bufpool and the shell itself is pooled for
// the next New. The caller promises no reference into this PhysMem —
// page data included — survives the call.
func (m *PhysMem) Recycle() {
	for i := range m.pages {
		if d := m.pages[i].data; d != nil && !m.pages[i].shared {
			bufpool.Put(d)
		}
	}
	clear(m.pages)
	m.stats = nil
	physmemPool.Put(m)
}

// NumPages returns the total number of physical frames.
func (m *PhysMem) NumPages() int { return len(m.pages) }

// FreePages returns how many frames are on the free list. The free
// list itself is exposed state; applications use it to pick frames.
func (m *PhysMem) FreePages() int { return len(m.freeList) }

func (m *PhysMem) valid(p PageNo) bool {
	return p >= 0 && int(p) < len(m.pages)
}

// Alloc takes a frame off the free list and guards it with guard.
// The caller (an environment) chose to allocate — allocation is always
// explicit and visible.
func (m *PhysMem) Alloc(guard xcap.Capability) (PageNo, error) {
	n := len(m.freeList)
	if n == 0 {
		return NoPage, ErrNoMemory
	}
	p := m.freeList[n-1]
	m.freeList = m.freeList[:n-1]
	pg := &m.pages[p]
	pg.free = false
	pg.guard = guard
	pg.refCount = 0
	pg.lastUse = m.touchClock()
	return p, nil
}

// AllocSpecific allocates the named frame if it is free, honoring the
// "expose allocation: specific resources can be requested" principle.
func (m *PhysMem) AllocSpecific(p PageNo, guard xcap.Capability) error {
	if !m.valid(p) {
		return ErrBadPage
	}
	pg := &m.pages[p]
	if !pg.free {
		return ErrNotFree
	}
	for i, f := range m.freeList {
		if f == p {
			m.freeList = append(m.freeList[:i], m.freeList[i+1:]...)
			break
		}
	}
	pg.free = false
	pg.guard = guard
	pg.refCount = 0
	pg.lastUse = m.touchClock()
	return nil
}

// Free returns a frame to the free list. The caller must hold write
// power over the page's guard and the page must be unreferenced —
// revocation is explicit and applications choose *which* page to give
// up.
func (m *PhysMem) Free(p PageNo, creds xcap.Credentials) error {
	if !m.valid(p) {
		return ErrBadPage
	}
	pg := &m.pages[p]
	if pg.free {
		return ErrBadPage
	}
	if !creds.Grants(pg.guard, true) {
		return ErrAccessDenied
	}
	if pg.refCount != 0 {
		return ErrPageInUse
	}
	pg.free = true
	// Keep the frame buffer attached (zeroed) rather than dropping it to
	// the GC: a later Alloc of this frame sees the same fresh-page
	// semantics, without re-allocating 4 KB. A snapshot-frozen buffer
	// must instead be detached untouched — the snapshot owns those bytes
	// — and the frame falls back to lazy zeroed materialization.
	if pg.shared {
		pg.data = nil
		pg.shared = false
	} else {
		clear(pg.data)
	}
	m.freeList = append(m.freeList, p)
	return nil
}

// Access verifies that creds allow (write?) access to frame p. Access
// control happens at map/bind time (secure bindings); the simulation
// calls this wherever Xok would check a binding.
func (m *PhysMem) Access(p PageNo, creds xcap.Credentials, write bool) error {
	if !m.valid(p) {
		return ErrBadPage
	}
	pg := &m.pages[p]
	if pg.free {
		return ErrBadPage
	}
	if !creds.Grants(pg.guard, write) {
		return ErrAccessDenied
	}
	return nil
}

// SetGuard re-guards a page; requires current write power.
func (m *PhysMem) SetGuard(p PageNo, creds xcap.Credentials, guard xcap.Capability) error {
	if err := m.Access(p, creds, true); err != nil {
		return err
	}
	m.pages[p].guard = guard
	return nil
}

// Guard returns the page's guard capability (exposed information).
func (m *PhysMem) Guard(p PageNo) (xcap.Capability, error) {
	if !m.valid(p) || m.pages[p].free {
		return xcap.Capability{}, ErrBadPage
	}
	return m.pages[p].guard, nil
}

// Ref pins a frame (a mapping or a buffer-registry entry references
// it). RefCount is exposed information.
func (m *PhysMem) Ref(p PageNo) error {
	if !m.valid(p) || m.pages[p].free {
		return ErrBadPage
	}
	m.pages[p].refCount++
	return nil
}

// Unref releases one pin.
func (m *PhysMem) Unref(p PageNo) error {
	if !m.valid(p) || m.pages[p].free {
		return ErrBadPage
	}
	if m.pages[p].refCount == 0 {
		return fmt.Errorf("mem: unref of page %d with zero refcount", p)
	}
	m.pages[p].refCount--
	return nil
}

// RefCount returns the pin count of frame p.
func (m *PhysMem) RefCount(p PageNo) int {
	if !m.valid(p) || m.pages[p].free {
		return 0
	}
	return m.pages[p].refCount
}

// Data returns the 4-KB backing store of frame p, allocating it lazily.
// The simulation stores real bytes so XN's UDFs can interpret real
// metadata.
func (m *PhysMem) Data(p PageNo) []byte {
	if !m.valid(p) || m.pages[p].free {
		panic(fmt.Sprintf("mem: Data on invalid page %d", p))
	}
	pg := &m.pages[p]
	if pg.data == nil {
		pg.data = bufpool.Get()
	} else if pg.shared {
		// Copy-on-access: the buffer is frozen in a snapshot shared with
		// other forks, so the first touch after a snapshot/fork copies it
		// up into a private buffer. Data is the single choke point for
		// frame contents, so nothing else can reach the frozen bytes.
		fresh := bufpool.GetDirty()
		copy(fresh, pg.data)
		pg.data = fresh
		pg.shared = false
	}
	pg.lastUse = m.touchClock()
	return pg.data
}

// Touch stamps frame p in the kernel's approximate-LRU ordering —
// "an exokernel might also record an approximate least-recently-used
// ordering of all physical pages, something individual applications
// cannot do without global information" (Section 3.1).
func (m *PhysMem) Touch(p PageNo) {
	if m.valid(p) && !m.pages[p].free {
		m.pages[p].lastUse = m.touchClock()
	}
}

func (m *PhysMem) touchClock() uint64 {
	m.useClock++
	return m.useClock
}

// LRUVictim returns the least-recently-used allocated, unreferenced
// frame, or NoPage if none qualifies. LibOSes consult this when they
// need frames and none are free.
func (m *PhysMem) LRUVictim() PageNo {
	best := NoPage
	var bestUse uint64
	for i := range m.pages {
		pg := &m.pages[i]
		if pg.free || pg.refCount > 0 {
			continue
		}
		if best == NoPage || pg.lastUse < bestUse {
			best = PageNo(i)
			bestUse = pg.lastUse
		}
	}
	return best
}
