package mem

import (
	"xok/internal/bufpool"
	"xok/internal/sim"
)

// Snap is frozen physical-memory state: the page-frame metadata array,
// the free list, and the LRU clock, with every materialized frame
// buffer marked shared. Frames are copy-on-write from here on — the
// snapshotted machine and every fork copy a frozen buffer up into a
// private one on first access (see Data), so a fork costs the metadata
// arrays, not the resident set.
//
// A Snap owns exactly the buffers it froze (those not already frozen
// by an earlier snapshot); Release returns them to bufpool once no
// machine forked from the snapshot can touch them again. Forking from
// one Snap is safe from concurrent goroutines: forks only read it.
type Snap struct {
	pages    []page
	freeList []PageNo
	useClock uint64
	owned    [][]byte // buffers this snapshot froze; returned on Release
}

// Freeze captures m's current state and flips every materialized frame
// buffer to copy-on-write. m keeps running afterwards — its first
// write (or read) of a frozen frame copies the buffer up.
func (m *PhysMem) Freeze() *Snap {
	s := &Snap{useClock: m.useClock}
	s.freeList = append([]PageNo(nil), m.freeList...)
	for i := range m.pages {
		pg := &m.pages[i]
		if pg.data != nil && !pg.shared {
			s.owned = append(s.owned, pg.data)
			pg.shared = true
		}
	}
	s.pages = append([]page(nil), m.pages...)
	return s
}

// Fork builds a new PhysMem continuing from the snapshot. All frames
// with data start shared (copy-on-write against the frozen buffers).
func (s *Snap) Fork(stats *sim.Stats) *PhysMem {
	m := physmemPool.Get().(*PhysMem)
	m.stats = stats
	m.useClock = s.useClock
	if cap(m.pages) >= len(s.pages) {
		m.pages = m.pages[:len(s.pages)]
	} else {
		m.pages = make([]page, len(s.pages))
	}
	copy(m.pages, s.pages)
	if cap(m.freeList) >= len(s.freeList) {
		m.freeList = m.freeList[:len(s.freeList)]
	} else {
		m.freeList = make([]PageNo, len(s.freeList))
	}
	copy(m.freeList, s.freeList)
	return m
}

// Release returns the snapshot's frozen buffers to bufpool. Only legal
// once every machine forked from the snapshot (and the machine it was
// taken from) has been closed or will never touch memory again.
func (s *Snap) Release() {
	for _, b := range s.owned {
		bufpool.Put(b)
	}
	s.owned = nil
	s.pages = nil
	s.freeList = nil
}
