package workload

import (
	"fmt"

	"xok/internal/apps"
	"xok/internal/sim"
	"xok/internal/unix"
)

// The Modified Andrew Benchmark (Ousterhout 1990; paper Section 6.2):
// five phases over a small source tree — make directories, copy the
// files, stat every file, read every file, and compile. The compile
// phase forks a compiler process per source file, which is why "MAB
// stresses fork, an expensive function in Xok/ExOS" (6 ms vs <1 ms).

// MABPhases names the five phases.
var MABPhases = []string{"mkdir", "copy", "stat", "read", "compile"}

// MABResult is one run.
type MABResult struct {
	System string
	Phases []StepResult
	Total  sim.Time
}

// mabTree is the benchmark's small source tree (~70 files, ~280 KB).
func mabTree() apps.TreeSpec {
	rng := sim.NewRNG(0xAB)
	var t apps.TreeSpec
	for d := 0; d < 5; d++ {
		dir := fmt.Sprintf("sub%d", d)
		t.Dirs = append(t.Dirs, dir)
		for i := 0; i < 14; i++ {
			t.Files = append(t.Files, apps.FileSpec{
				Path: fmt.Sprintf("%s/m%02d.c", dir, i),
				Size: 2500 + rng.Intn(3000),
			})
		}
	}
	return t
}

// MAB runs the benchmark on m.
func MAB(m Machine) (MABResult, error) {
	res := MABResult{System: m.Name()}
	spec := mabTree()

	var err error
	// Stage the source tree (untimed, like the benchmark's pristine
	// source directory).
	m.SpawnProc("mab-setup", 0, func(p unix.Proc) {
		if e := apps.WriteTree(p, "/mabsrc", spec); e != nil && err == nil {
			err = e
		}
		if e := p.Sync(); e != nil && err == nil {
			err = e
		}
	})
	m.Run()
	if err != nil {
		return res, fmt.Errorf("mab setup: %w", err)
	}

	start := m.Now()
	phases := mabPhaseFuncs(spec)
	for i, phase := range phases {
		elapsed := exec(m, "mab-"+MABPhases[i], phase, &err)
		if err != nil {
			return res, err
		}
		res.Phases = append(res.Phases, StepResult{Name: MABPhases[i], Elapsed: elapsed})
	}
	res.Total = m.Now() - start
	return res, nil
}

// mabSegment is one quiescent-to-quiescent unit of the benchmark: a
// single process, with the machine drained after it. Segment
// boundaries are where snapshots are legal — the crash-enumeration
// fork path and the replay-equivalence tests are built on them.
type mabSegment struct {
	name string
	body func(p unix.Proc) error
}

// mabSegmentList is the benchmark as segments: staging (with a sync)
// then the five phases.
func mabSegmentList(spec apps.TreeSpec) []mabSegment {
	segs := []mabSegment{{name: "mab-setup", body: func(p unix.Proc) error {
		if e := apps.WriteTree(p, "/mabsrc", spec); e != nil {
			return e
		}
		return p.Sync()
	}}}
	for i, phase := range mabPhaseFuncs(spec) {
		segs = append(segs, mabSegment{name: "mab-" + MABPhases[i], body: phase})
	}
	return segs
}

// mabPhaseFuncs builds the five phase bodies over spec, in MABPhases
// order. MAB runs each in its own process; the crash-enumeration
// harness runs them back to back inside one.
func mabPhaseFuncs(spec apps.TreeSpec) []func(p unix.Proc) error {
	return []func(p unix.Proc) error{
		// Phase 1: mkdir the target hierarchy.
		func(p unix.Proc) error {
			if e := p.Mkdir("/mab", 7); e != nil {
				return e
			}
			for _, d := range spec.Dirs {
				if e := p.Mkdir("/mab/"+d, 7); e != nil {
					return e
				}
			}
			return nil
		},
		// Phase 2: copy the source tree in.
		func(p unix.Proc) error {
			for _, f := range spec.Files {
				if e := apps.Cp(p, "/mabsrc/"+f.Path, "/mab/"+f.Path); e != nil {
					return e
				}
			}
			return nil
		},
		// Phase 3: stat every file (recursive ls -l).
		func(p unix.Proc) error {
			for pass := 0; pass < 4; pass++ {
				for _, f := range spec.Files {
					if _, e := p.Stat("/mab/" + f.Path); e != nil {
						return e
					}
				}
			}
			return nil
		},
		// Phase 4: read every byte (grep through the tree).
		func(p unix.Proc) error {
			_, e := apps.Grep(p, "/mab", "include")
			return e
		},
		// Phase 5: compile. The cc driver forks the toolchain pipeline
		// for every file — cpp, cc1, as — which is what makes MAB
		// fork-bound and why ExOS's 6-ms fork hurts here.
		func(p unix.Proc) error {
			for _, f := range spec.Files {
				path := "/mab/" + f.Path
				var src []byte
				stages := []struct {
					name string
					body func(c unix.Proc)
				}{
					{"cpp", func(c unix.Proc) {
						s, e := apps.ReadFile(c, path)
						if e != nil {
							return
						}
						c.Compute(sim.Time(len(s) * 40)) // preprocess
						src = s
					}},
					{"cc1", func(c unix.Proc) {
						c.Compute(sim.Time(len(src) * apps.CPUGcc))
					}},
					{"as", func(c unix.Proc) {
						c.Compute(sim.Time(len(src) * 30))
						obj := make([]byte, len(src)*9/20)
						_ = apps.WriteFile(c, path[:len(path)-2]+".o", obj)
					}},
				}
				for _, st := range stages {
					h, e := p.Spawn(st.name, st.body)
					if e != nil {
						return e
					}
					h.Wait()
				}
			}
			return nil
		},
	}
}
