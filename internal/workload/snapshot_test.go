package workload

import (
	"bytes"
	"fmt"
	"hash/fnv"
	"sort"
	"strings"
	"sync"
	"testing"

	"xok/internal/apps"
	"xok/internal/disk"
	"xok/internal/fault"
	"xok/internal/machine"
	"xok/internal/netsim"
	"xok/internal/sim"
	"xok/internal/trace"
	"xok/internal/unix"
)

// Replay equivalence is the snapshot/fork contract: a machine forked
// at cycle C must continue bit-identically to the machine that reached
// C from boot — same trace digest, same cycle count, same final media.
// The MAB's per-process phases are the natural quiescent points
// (goroutine stacks cannot be captured, so snapshots happen between
// processes); the property test picks a seeded-random phase boundary
// mid-benchmark per personality and compares a forked completion
// against an uninterrupted run.

// runSegments executes segs[from:to] on m, one process per segment.
func runSegments(m Machine, segs []mabSegment, from, to int) error {
	var err error
	for _, seg := range segs[from:to] {
		exec(m, seg.name, seg.body, &err)
		if err != nil {
			return err
		}
	}
	return nil
}

// mediaHash digests the machine's final disk contents, block order
// normalized.
func mediaHash(t *testing.T, m Machine) uint64 {
	t.Helper()
	img := m.Disk().Snapshot()
	blocks := make([]disk.BlockNo, 0, len(img))
	for b := range img {
		blocks = append(blocks, b)
	}
	sort.Slice(blocks, func(i, j int) bool { return blocks[i] < blocks[j] })
	h := fnv.New64a()
	var num [8]byte
	for _, b := range blocks {
		for i := 0; i < 8; i++ {
			num[i] = byte(uint64(b) >> (8 * i))
		}
		h.Write(num[:])
		h.Write(img[b])
	}
	disk.RecycleImage(img)
	return h.Sum64()
}

type mabRunOutcome struct {
	digest uint64
	cycles sim.Time
	media  uint64
}

func snapCfg(pers machine.Personality, plan *fault.Plan) machine.Config {
	return machine.Config{
		Personality: pers,
		DiskBlocks:  16384,
		MemPages:    2048,
		Trace:       trace.New(),
		Faults:      plan,
	}
}

// uninterruptedMAB runs every segment from boot on one machine.
func uninterruptedMAB(t *testing.T, pers machine.Personality, plan *fault.Plan, segs []mabSegment) mabRunOutcome {
	t.Helper()
	m := machine.MustNew(snapCfg(pers, plan))
	defer m.Close()
	if err := runSegments(m, segs, 0, len(segs)); err != nil {
		t.Fatalf("%v: uninterrupted run: %v", pers, err)
	}
	return mabRunOutcome{digest: m.Kern().Trace.Digest(), cycles: m.Now(), media: mediaHash(t, m)}
}

// forkedMAB runs segments up to cut, snapshots, forks, and finishes on
// the fork.
func forkedMAB(t *testing.T, pers machine.Personality, plan *fault.Plan, segs []mabSegment, cut int) mabRunOutcome {
	t.Helper()
	m := machine.MustNew(snapCfg(pers, plan))
	defer m.Close()
	if err := runSegments(m, segs, 0, cut); err != nil {
		t.Fatalf("%v: prefix run: %v", pers, err)
	}
	snap, err := m.Snapshot()
	if err != nil {
		t.Fatalf("%v: snapshot after segment %d: %v", pers, cut, err)
	}
	defer snap.Release()
	f := machine.Fork(snap)
	defer f.Close()
	if err := runSegments(f, segs, cut, len(segs)); err != nil {
		t.Fatalf("%v: forked run: %v", pers, err)
	}
	return mabRunOutcome{digest: f.Kern().Trace.Digest(), cycles: f.Now(), media: mediaHash(t, f)}
}

func checkReplayEquivalence(t *testing.T, plan *fault.Plan) {
	t.Helper()
	spec := mabTree()
	segs := mabSegmentList(spec)
	rng := sim.NewRNG(0xF02C)
	for _, pers := range machine.Personalities() {
		// A seeded-random mid-benchmark boundary: after setup at the
		// earliest, before the last phase at the latest.
		cut := 1 + rng.Intn(len(segs)-1)
		var pf, ff *fault.Plan
		if plan != nil {
			pf, ff = plan.Clone(), plan.Clone()
		}
		ref := uninterruptedMAB(t, pers, pf, segs)
		got := forkedMAB(t, pers, ff, segs, cut)
		if got != ref {
			t.Errorf("%v: fork at segment boundary %d diverged from boot run:\n  fork: digest %#x cycles %d media %#x\n  boot: digest %#x cycles %d media %#x",
				pers, cut, got.digest, got.cycles, got.media, ref.digest, ref.cycles, ref.media)
		}
	}
}

// TestSnapshotForkReplayEquivalence: for every personality, fork at a
// seeded-random MAB phase boundary and run to completion — trace
// digest, cycle count and final disk contents must equal the
// uninterrupted run's.
func TestSnapshotForkReplayEquivalence(t *testing.T) {
	checkReplayEquivalence(t, nil)
}

// TestSnapshotForkIsCopyOnWrite: Fork must cost O(state actually
// written afterwards), not O(machine size). A fork that never writes
// copies zero disk blocks (CowCopies is the disk's copy-up counter),
// and the fork itself allocates only table shells — bounded well below
// anything proportional to the 16K-block volume or 2K-page memory. A
// fork that then runs real file activity starts copying.
func TestSnapshotForkIsCopyOnWrite(t *testing.T) {
	segs := mabSegmentList(mabTree())
	m := machine.MustNew(snapCfg(machine.XokExOS, nil))
	defer m.Close()
	// Through the copy phase: a real tree on disk and a warm cache, so
	// lazy copying has plenty to be lazy about.
	if err := runSegments(m, segs, 0, 3); err != nil {
		t.Fatalf("prefix run: %v", err)
	}
	snap, err := m.Snapshot()
	if err != nil {
		t.Fatalf("snapshot: %v", err)
	}
	defer snap.Release()

	allocs := testing.AllocsPerRun(10, func() {
		f := machine.Fork(snap)
		if n := f.Disk().CowCopies(); n != 0 {
			t.Errorf("fork with zero writes copied %d disk blocks", n)
		}
		f.Close()
	})
	// The bound is ~4x the measured table-shell cost; an eager copy of
	// pages or blocks (thousands of buffers) blows straight through it.
	if allocs > 3000 {
		t.Errorf("fork+close allocates %.0f objects; the fork path is no longer O(tables)", allocs)
	}

	f := machine.Fork(snap)
	defer f.Close()
	if err := runSegments(f, segs, 3, len(segs)); err != nil {
		t.Fatalf("forked run: %v", err)
	}
	var serr error
	exec(f, "sync", func(p unix.Proc) error { return p.Sync() }, &serr)
	if serr != nil {
		t.Fatalf("forked sync: %v", serr)
	}
	// The sync flushes metadata updates (inodes, directories, the free
	// bitmap) onto blocks frozen in the snapshot — those must copy up.
	if f.Disk().CowCopies() == 0 {
		t.Error("forked run wrote the tree but copied no blocks — writes are landing in frozen state")
	}
}

// TestSnapshotConcurrentForksDoNotAlias: two forks of one snapshot
// overwrite the same pre-existing file with different bytes, forcing
// copy-up of the same shared blocks and cache pages, and each must
// read back only its own data. Run under -race (snapshot-smoke), this
// is the no-shared-mutable-state proof for concurrent forking.
func TestSnapshotConcurrentForksDoNotAlias(t *testing.T) {
	m := machine.MustNew(snapCfg(machine.XokExOS, nil))
	var werr error
	exec(m, "seed-file", func(p unix.Proc) error {
		return apps.WriteFile(p, "/shared.dat", bytes.Repeat([]byte{0xEE}, 3*4096))
	}, &werr)
	if werr != nil {
		t.Fatalf("seed write: %v", werr)
	}
	snap, err := m.Snapshot()
	if err != nil {
		t.Fatalf("snapshot: %v", err)
	}
	m.Close()
	defer snap.Release()

	var wg sync.WaitGroup
	errs := make([]error, 2)
	for i := range errs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			f := machine.Fork(snap)
			defer f.Close()
			want := bytes.Repeat([]byte{byte('A' + i)}, 3*4096)
			var got []byte
			var ferr error
			exec(f, "writer", func(p unix.Proc) error {
				if e := apps.WriteFile(p, "/shared.dat", want); e != nil {
					return e
				}
				if e := p.Sync(); e != nil {
					return e
				}
				b, e := apps.ReadFile(p, "/shared.dat")
				got = b
				return e
			}, &ferr)
			if ferr != nil {
				errs[i] = ferr
				return
			}
			if !bytes.Equal(got, want) {
				errs[i] = fmt.Errorf("fork %d read back another fork's bytes (got %x..., want %x...)", i, got[:4], want[:4])
			}
		}(i)
	}
	wg.Wait()
	for i, e := range errs {
		if e != nil {
			t.Errorf("fork %d: %v", i, e)
		}
	}
}

// TestSnapshotFabricRequiresQuiescentEngine: a machine on a shared
// network fabric runs on the topology's engine, which carries other
// machines' packets and timers — state a single-machine snapshot
// cannot capture. Snapshot must refuse while the shared engine has
// in-flight events, name the fabric in the error, and succeed once the
// engine drains; the fork then runs standalone on a private clock.
func TestSnapshotFabricRequiresQuiescentEngine(t *testing.T) {
	topo := netsim.NewTopology()
	att := &netsim.Attachment{Topology: topo}
	m, err := machine.New(machine.Config{
		Personality: machine.XokExOS,
		DiskBlocks:  16384,
		MemPages:    2048,
		Net:         att,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()

	topo.Engine().After(100, func() {}) // an in-flight fabric timer
	if _, err := m.Snapshot(); err == nil || !strings.Contains(err.Error(), "fabric") {
		t.Fatalf("snapshot with an in-flight fabric event: err = %v, want a fabric-quiescence error", err)
	}

	m.Run() // drain the shared engine
	snap, err := m.Snapshot()
	if err != nil {
		t.Fatalf("snapshot of a drained fabric machine: %v", err)
	}
	defer snap.Release()

	f := machine.Fork(snap)
	defer f.Close()
	if f.Kern().Eng == topo.Engine() {
		t.Fatal("fork shares the fabric engine; forks must run standalone")
	}
	var ferr error
	exec(f, "probe", func(p unix.Proc) error {
		return apps.WriteFile(p, "/standalone", []byte("ok"))
	}, &ferr)
	if ferr != nil {
		t.Fatalf("forked fabric machine failed to run standalone: %v", ferr)
	}
}

// TestSnapshotForkReplayEquivalenceWithFaults repeats the property
// under an active fault plan whose streams are consumed throughout the
// run (a draw per disk read, a count per syscall): the fork must
// resume the xorshift streams and syscall counter mid-position, not
// rewind them. Rates are armed but astronomically low so both runs
// take the same control path and the comparison stays exact.
func TestSnapshotForkReplayEquivalenceWithFaults(t *testing.T) {
	checkReplayEquivalence(t, &fault.Plan{Seed: 99, ReadErrRate: 1 << 30, KillSyscallNth: 1 << 30})
}
