package workload

import (
	"fmt"

	"xok/internal/apps"
	"xok/internal/sim"
	"xok/internal/unix"
)

// The I/O-intensive workload of Table 1: installing the lcc compiler.
// "copying a compressed archive file, uncompressing it, unpacking it
// (which results in a source tree), copying the resulting tree,
// comparing the two trees, compiling the source tree, deleting
// binaries, archiving the source tree, compressing the archive file,
// and deleting the source tree."

// Step names, in Table 1 order (with the program in parens, as in
// Figure 2's x-axis).
var IOStepNames = []string{
	"copy small file (cp)",
	"uncompress (gunzip)",
	"copy large file (cp)",
	"unpack (pax)",
	"copy large tree (cp -r)",
	"diff large tree (diff)",
	"compile (gcc)",
	"delete files (rm *.o)",
	"pack tree (pax -w)",
	"compress (gzip)",
	"delete (rm -rf)",
}

// StepResult is one measured step.
type StepResult struct {
	Name    string
	Elapsed sim.Time
}

// IOResult is a full run of the workload on one system.
type IOResult struct {
	System string
	Steps  []StepResult
	Total  sim.Time

	// Accounting for the Section 6.3 analysis.
	Syscalls  int64
	ProtCalls int64
}

// IOIntensive runs the Table 1 workload on m. Setup (creating the
// initial compressed archive) is excluded from the measurement, like
// the paper's pre-staged archive file.
func IOIntensive(m Machine) (IOResult, error) {
	res := IOResult{System: m.Name()}
	spec := apps.LccTree()
	plaintext := apps.ArchiveBytes(spec)
	// The "compressed" archive: gzip-ratio-sized prefix of the stream.
	compressed := plaintext[:len(plaintext)*3/10]

	var err error
	// Setup: stage /lcc.tgz (untimed).
	m.SpawnProc("setup", 0, func(p unix.Proc) {
		if e := apps.WriteFile(p, "/lcc.tgz", compressed); e != nil && err == nil {
			err = e
		}
		if e := p.Sync(); e != nil && err == nil {
			err = e
		}
	})
	m.Run()
	if err != nil {
		return res, fmt.Errorf("setup: %w", err)
	}

	sys0 := m.Stats().Get(sim.CtrSyscalls)
	prot0 := m.Stats().Get(sim.CtrProtCalls)
	start := m.Now()

	steps := []func(p unix.Proc) error{
		func(p unix.Proc) error { return apps.Cp(p, "/lcc.tgz", "/lcc2.tgz") },
		func(p unix.Proc) error { return apps.Gunzip(p, "/lcc2.tgz", "/lcc.tar", plaintext) },
		func(p unix.Proc) error { return apps.Cp(p, "/lcc.tar", "/lcc2.tar") },
		func(p unix.Proc) error { return apps.PaxR(p, "/lcc.tar", "/lcc") },
		func(p unix.Proc) error { return apps.CpR(p, "/lcc", "/lcc2") },
		func(p unix.Proc) error {
			differs, e := apps.Diff(p, "/lcc", "/lcc2")
			if e != nil {
				return e
			}
			if differs {
				return fmt.Errorf("identical trees reported different")
			}
			return nil
		},
		func(p unix.Proc) error { return apps.Gcc(p, "/lcc") },
		func(p unix.Proc) error { return apps.RmGlob(p, "/lcc", ".o") },
		func(p unix.Proc) error { return apps.PaxW(p, "/lcc", "/lcc.tar2") },
		func(p unix.Proc) error { return apps.Gzip(p, "/lcc.tar2", "/lcc.tgz2") },
		func(p unix.Proc) error { return apps.RmRF(p, "/lcc") },
	}
	for i, step := range steps {
		elapsed := exec(m, IOStepNames[i], step, &err)
		if err != nil {
			return res, err
		}
		res.Steps = append(res.Steps, StepResult{Name: IOStepNames[i], Elapsed: elapsed})
	}
	res.Total = m.Now() - start
	res.Syscalls = m.Stats().Get(sim.CtrSyscalls) - sys0
	res.ProtCalls = m.Stats().Get(sim.CtrProtCalls) - prot0
	return res, nil
}

// ProtectionCost runs the Section 6.3 experiment: the I/O workload on
// stock Xok/ExOS (XN + shared-state protection calls) versus Xok/ExOS
// with both removed. The paper reports 41.1 s -> 39.7 s and 300,000 ->
// 81,000 system calls.
type ProtectionResult struct {
	WithProtection    IOResult
	WithoutProtection IOResult
}

// ProtectionCost executes both configurations.
func ProtectionCost() (ProtectionResult, error) {
	var res ProtectionResult
	var err error
	if res.WithProtection, err = IOIntensive(NewXok()); err != nil {
		return res, err
	}
	if res.WithoutProtection, err = IOIntensive(NewXokUnprotected()); err != nil {
		return res, err
	}
	return res, nil
}
