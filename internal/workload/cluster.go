package workload

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"io"

	"xok/internal/cap"
	"xok/internal/cffs"
	"xok/internal/httpd"
	"xok/internal/kernel"
	"xok/internal/machine"
	"xok/internal/netsim"
	"xok/internal/sim"
	"xok/internal/trace"
)

// ClusterConfig describes one cell of the cluster experiment: N
// machine.New-built servers behind a load balancer, driven by an
// open-loop arrival process (the ROADMAP's "millions of users"
// setting — offered load does not slow down when the servers do).
type ClusterConfig struct {
	// Servers is the backend machine count (default 1).
	Servers int
	// Conns is the total connection arrivals (default 2000).
	Conns int
	// Rate is the offered arrival rate per virtual second (default
	// 12000 — past a single server's capacity, so scaling shows).
	Rate float64
	// Policy spreads connections over the backends.
	Policy netsim.Policy
	// Arrival picks the spacing process (default Poisson).
	Arrival netsim.Arrival
	// Seed drives arrival spacing and the class mix (default 1).
	Seed uint64
	// Personality is the server OS (default Xok/ExOS, serving with
	// the Socket/Xok stack profile; BSD personalities serve with
	// Socket/BSD).
	Personality machine.Personality
	// Trace, when non-nil, additionally receives every machine's
	// spans plus the request-latency series. It must not be shared
	// with a concurrently running cell (core.Bench passes a fresh
	// tracer per leg and merges in order). Incompatible with Shard:
	// one tracer cannot deterministically interleave recordings from
	// concurrent islands.
	Trace *trace.Tracer
	// Shard > 0 partitions the fabric into min(Shard, Servers) server
	// islands plus the client/balancer island and runs them on
	// concurrent workers (conservative parallel simulation over the
	// link latencies). Results are deterministic at every shard count
	// and byte-identical to Shard == 0 at the standard scales (pinned
	// through 60k connections). Past that, same-cycle event collisions
	// across islands become statistically certain, and the merge's
	// island-id tie-break can order them differently than the single
	// engine's global sequence numbers (whose order is genealogical —
	// no scalar key a cross-island message could carry reproduces it).
	// Sharded runs remain exactly reproducible and agree with each
	// other at every shard count >= 2; only the sub-cycle tie order
	// against Shard == 0 may move.
	Shard int
	// NoWheel disables the engines' timer-wheel scheduling backend and
	// runs the cell on the pure binary-heap baseline. Results are
	// bit-identical either way — the wheel-vs-heap digest test pins
	// exactly that — so the knob only moves host time.
	NoWheel bool
}

func (cfg ClusterConfig) withDefaults() ClusterConfig {
	if cfg.Servers == 0 {
		cfg.Servers = 1
	}
	if cfg.Conns == 0 {
		cfg.Conns = 2000
	}
	if cfg.Rate == 0 {
		cfg.Rate = 12000
	}
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	return cfg
}

// ClusterClasses is the request mix: mostly small documents with a
// heavier tail class, so the per-class latency series separate.
func ClusterClasses() []netsim.RequestClass {
	return []netsim.RequestClass{
		{Name: "small", DocSize: 512, Weight: 3},
		{Name: "large", DocSize: 8192, Weight: 1},
	}
}

// ClusterClass is one request class's outcome.
type ClusterClass struct {
	Name    string
	DocSize int
	Done    int
	Bytes   int64
	P50     sim.Time
	P99     sim.Time
}

// ClusterResult is one measured cell.
type ClusterResult struct {
	Servers   int
	Policy    netsim.Policy
	Conns     int
	Rate      float64
	Completed int
	Bytes     int64

	// Makespan is first arrival to last completion; ReqPerSec and
	// MBytesPerS are measured over it.
	Makespan   sim.Time
	ReqPerSec  float64
	MBytesPerS float64

	// Request latency quantiles, from the internal/trace histogram.
	P50, P90, P99, Max sim.Time

	Classes []ClusterClass

	// Assignments is connections per backend, in backend order.
	Assignments []int64
	// Retransmits sums the server machines' go-back-N retransmits;
	// Drops counts link-queue tail drops in the fabric.
	Retransmits int64
	Drops       int64

	// EngineEvents sums the cell's island engines' dispatched-event
	// counts (sim.CtrEngineEvents; the denominator-free half of the
	// events-per-host-second throughput metric). Deterministic for a
	// given shard count, but sharded runs add channel-sync events, so
	// it is excluded from the report and the digest.
	EngineEvents int64

	// Digest fingerprints the cell's latency series (and, when the
	// cell was traced, everything else on the tracer): identical
	// runs produce identical digests at any -parallel setting.
	Digest uint64
}

// clusterFS reaches the machine's root file system.
func clusterFS(m machine.Machine) *cffs.FS {
	switch s := m.(type) {
	case machine.Xok:
		return s.S.FS
	case machine.BSD:
		return s.S.FS
	}
	return nil
}

// clusterProfile maps the server personality onto a Figure-3 stack
// cost profile.
func clusterProfile(p machine.Personality) netsim.StackConfig {
	kind := httpd.SocketBSD
	if p == machine.XokExOS || p == machine.XokUnprotected {
		kind = httpd.SocketXok
	}
	return kind.StackProfile()
}

// stageClusterDocs creates one document per request class on the
// machine.
func stageClusterDocs(m machine.Machine, classes []netsim.RequestClass) error {
	fs := clusterFS(m)
	var stageErr error
	m.Kern().Spawn("stage", func(e *kernel.Env) {
		e.Creds = cap.UnixCreds(0)
		if err := fs.Mkdir(e, "/docs", 0, 0, 7); err != nil {
			stageErr = err
			return
		}
		for _, cl := range classes {
			ref, err := fs.Create(e, "/docs/"+cl.Name, 0, 0, 6)
			if err != nil {
				stageErr = err
				return
			}
			if cl.DocSize > 0 {
				if _, err := fs.WriteAt(e, ref, 0, make([]byte, cl.DocSize)); err != nil {
					stageErr = err
					return
				}
			}
		}
		stageErr = fs.Sync(e)
	})
	m.Run()
	return stageErr
}

// clusterHandler serves the staged document for the connection's
// request class: parse, lookup, read into a user buffer. The document
// paths and the read buffer are hoisted out of the per-request path —
// at 100k connections a fresh path string and buffer per request is
// real host-side garbage (the simulated costs are identical either
// way: Use/ReadAt charges don't depend on buffer identity).
func clusterHandler(fs *cffs.FS, classes []netsim.RequestClass) netsim.Handler {
	paths := make([]string, len(classes))
	for i, cl := range classes {
		paths[i] = "/docs/" + cl.Name
	}
	var buf []byte
	return func(e *kernel.Env, c *netsim.Conn) int {
		e.Use(30 * sim.Microsecond) // parse request, build header
		ref, in, err := fs.Lookup(e, paths[c.Class()])
		if err != nil {
			return 0
		}
		if n := int(in.Size); n > 0 {
			if len(buf) < n {
				buf = make([]byte, n)
			}
			if _, err := fs.ReadAt(e, ref, 0, buf[:n]); err != nil {
				return 0
			}
		}
		return int(in.Size)
	}
}

// clusterEpoch is the virtual instant load starts. Every island's
// clock — there is exactly one island unless cfg.Shard > 0 — is run
// to quiescence and then advanced to this fixed epoch between staging
// and the open-loop arrivals. Sharded islands stage on separate
// clocks that drift from the globally-interleaved single-engine
// order; pinning both paths to one epoch makes every load-phase
// timestamp (and so every digest) byte-identical across shard counts.
const clusterEpoch = 1000 * sim.Millisecond

// Cluster runs one cell: builds the fabric (clients — balancer — N
// server machines), boots and stages every server, then drives the
// open-loop arrivals to completion. Deterministic end to end:
// conservative synchronization orders everything (trivially so on a
// single engine), arrivals and the class mix come from the seeded
// stream, and the balancer's choices are policy-deterministic.
func Cluster(cfg ClusterConfig) (ClusterResult, error) {
	cfg = cfg.withDefaults()
	classes := ClusterClasses()
	if cfg.Shard > 0 && cfg.Trace != nil {
		return ClusterResult{}, fmt.Errorf("cluster: full tracing and sharding are incompatible (one tracer cannot deterministically interleave concurrent islands); run Shard=0 for traced cells")
	}
	shards := 0
	if cfg.Shard > 0 {
		shards = min(cfg.Shard, cfg.Servers)
	}

	topo := netsim.NewTopology()
	if cfg.NoWheel {
		topo.SetWheel(false)
	}
	clients := topo.AddHost("clients")
	lb := topo.LoadBalancer(cfg.Policy)
	// Fat front link: the client aggregate must not be the bottleneck
	// (the per-server Ethernets and CPUs are what's under test).
	topo.Link(clients, lb, netsim.LinkSpec{BandwidthBps: 1_000_000_000})

	// The latency sink: the cell's tracer when the caller wants full
	// tracing, else a private histogram-only tracer so quantiles and
	// the digest exist either way (span recording off — at connection
	// scale the span buffer would dominate the untraced run).
	latTr := cfg.Trace
	if latTr == nil {
		latTr = trace.NewHistOnly()
	}
	pid := latTr.AddProcess(fmt.Sprintf("cluster-%d-%s", cfg.Servers, cfg.Policy))

	machines := make([]machine.Machine, 0, cfg.Servers)
	defer func() {
		for _, m := range machines {
			m.Close()
		}
	}()
	profile := clusterProfile(cfg.Personality)
	// Partition: clients and the balancer stay on the root island (the
	// open-loop pool's clock lives there); servers round-robin over the
	// shard islands, each bounded from its neighbors by the LB link's
	// latency (the lookahead).
	islands := make([]netsim.IslandID, shards)
	for i := range islands {
		islands[i] = topo.AddIsland()
	}
	for i := 0; i < cfg.Servers; i++ {
		att := &netsim.Attachment{Topology: topo, Name: fmt.Sprintf("srv%d", i)}
		if shards > 0 {
			att.Island = islands[i%shards]
		}
		m, err := machine.New(machine.Config{
			Personality: cfg.Personality,
			// Small machines: the cluster stresses the network path,
			// not the disk, and N of them boot per cell.
			DiskBlocks: 1 << 16,
			MemPages:   2048,
			Trace:      cfg.Trace,
			Net:        att,
		})
		if err != nil {
			return ClusterResult{}, fmt.Errorf("cluster: server %d: %w", i, err)
		}
		machines = append(machines, m)
		topo.Link(lb, att.Host, netsim.LinkSpec{})
		if err := stageClusterDocs(m, classes); err != nil {
			return ClusterResult{}, fmt.Errorf("cluster: stage server %d: %w", i, err)
		}
		handler := clusterHandler(clusterFS(m), classes)
		nic := att.NIC
		m.Kern().Spawn(fmt.Sprintf("httpd%d", i), func(e *kernel.Env) {
			e.Creds = cap.UnixCreds(0)
			nic.Serve(e, profile, handler, 0) // serve forever
		})
	}
	// Settle every server into its listen state, then advance every
	// island's clock to the shared epoch so load-phase timestamps are
	// identical at every shard count (see clusterEpoch).
	for i := 0; i < topo.Islands(); i++ {
		eng := topo.IslandEngine(netsim.IslandID(i))
		eng.Run()
		if eng.Now() > clusterEpoch {
			return ClusterResult{}, fmt.Errorf("cluster: island %d staging ran to %v, past the load epoch %v", i, eng.Now(), clusterEpoch)
		}
		eng.RunUntil(clusterEpoch)
	}

	pool := topo.OpenLoop(netsim.OpenLoopConfig{
		From: clients, Target: lb,
		Conns: cfg.Conns, Rate: cfg.Rate,
		Arrival: cfg.Arrival, Seed: cfg.Seed,
		Classes: classes,
		Trace:   latTr, TracePID: pid,
	})
	if err := topo.RunSharded(); err != nil {
		return ClusterResult{}, fmt.Errorf("cluster: %w", err)
	}

	res := ClusterResult{
		Servers: cfg.Servers, Policy: cfg.Policy,
		Conns: cfg.Conns, Rate: cfg.Rate,
		Completed: pool.Completed, Bytes: pool.Bytes,
		Makespan:    pool.Makespan(),
		Assignments: topo.Assignments(lb),
		Drops:       topo.Drops,
	}
	if secs := res.Makespan.Seconds(); secs > 0 {
		res.ReqPerSec = float64(res.Completed) / secs
		res.MBytesPerS = float64(res.Bytes) / secs / 1e6
	}
	if h := latTr.Hist(pid, "http.request"); h != nil {
		res.P50 = h.Quantile(0.50)
		res.P90 = h.Quantile(0.90)
		res.P99 = h.Quantile(0.99)
		res.Max = h.Max()
	}
	for i, cl := range classes {
		cc := ClusterClass{Name: cl.Name, DocSize: cl.DocSize,
			Done: pool.ClassDone[i], Bytes: pool.ClassBytes[i]}
		if h := latTr.Hist(pid, "http."+cl.Name); h != nil {
			cc.P50 = h.Quantile(0.50)
			cc.P99 = h.Quantile(0.99)
		}
		res.Classes = append(res.Classes, cc)
	}
	for _, m := range machines {
		res.Retransmits += m.Stats().Get(sim.CtrRetransmits)
	}
	for i := 0; i < topo.Islands(); i++ {
		res.EngineEvents += topo.IslandEngine(netsim.IslandID(i)).Dispatched()
	}
	if len(machines) > 0 {
		machines[0].Stats().Add(sim.CtrEngineEvents, res.EngineEvents)
	}
	res.Digest = latTr.Digest()
	return res, nil
}

// baselineCellCeiling is the largest connection count at which the
// sweep still runs its 1-server baseline cell. A single server
// sustains ~1.2k req/s at the standard mix, so past this scale the
// baseline is pure overload backlog — every arrival queues behind
// ~all the others, armed RTOs churn retransmissions, and the cell
// measures nothing but its own congestion while dominating the
// sweep's wall-clock. The cluster cells stay meaningful at any size.
const baselineCellCeiling = 20000

// ClusterCells is the standard sweep at a fixed offered load: one
// server as the baseline, then the full cluster under both balancing
// policies. Beyond baselineCellCeiling connections the baseline cell
// is omitted (see above); pass servers=1 to force a single-server
// run at any scale.
func ClusterCells(servers, conns int, rate float64) []ClusterConfig {
	base := ClusterConfig{Servers: 1, Conns: conns, Rate: rate, Policy: netsim.RoundRobin}
	if servers <= 1 {
		lc := base
		lc.Policy = netsim.LeastConnections
		return []ClusterConfig{base, lc}
	}
	rr := base
	rr.Servers = servers
	lc := rr
	lc.Policy = netsim.LeastConnections
	if conns > baselineCellCeiling {
		return []ClusterConfig{rr, lc}
	}
	return []ClusterConfig{base, rr, lc}
}

// ms renders a sim.Time in milliseconds for the report.
func ms(t sim.Time) float64 { return t.Seconds() * 1e3 }

// WriteClusterReport renders the cells the way xok-bench prints them
// (the parallel-determinism test renders into a buffer and compares
// bytes across worker counts).
func WriteClusterReport(w io.Writer, rs []ClusterResult) {
	if len(rs) == 0 {
		return
	}
	fmt.Fprintf(w, "open-loop load: %d conns at %.0f/s (Poisson), mix", rs[0].Conns, rs[0].Rate)
	for _, cl := range ClusterClasses() {
		fmt.Fprintf(w, " %s=%dB(w%d)", cl.Name, cl.DocSize, cl.Weight)
	}
	fmt.Fprintln(w)
	fmt.Fprintf(w, "%7s  %-11s %6s %9s %7s %9s %9s %9s %9s %5s %6s\n",
		"servers", "policy", "done", "req/s", "MB/s",
		"p50(ms)", "p90(ms)", "p99(ms)", "max(ms)", "rtx", "drops")
	for _, r := range rs {
		fmt.Fprintf(w, "%7d  %-11s %6d %9.0f %7.2f %9.2f %9.2f %9.2f %9.2f %5d %6d\n",
			r.Servers, r.Policy, r.Completed, r.ReqPerSec, r.MBytesPerS,
			ms(r.P50), ms(r.P90), ms(r.P99), ms(r.Max), r.Retransmits, r.Drops)
	}
	last := rs[len(rs)-1]
	for _, cc := range last.Classes {
		fmt.Fprintf(w, "class %-6s (%d servers, %s): done=%d  p50=%.2fms  p99=%.2fms\n",
			cc.Name, last.Servers, last.Policy, cc.Done, ms(cc.P50), ms(cc.P99))
	}
	fmt.Fprintf(w, "balancer spread (%s): %v\n", last.Policy, last.Assignments)
	if base, scaled := rs[0], bestCell(rs); scaled.Servers > base.Servers && base.ReqPerSec > 0 {
		fmt.Fprintf(w, "scaling: %d-server/%d-server throughput = %.2fx\n",
			scaled.Servers, base.Servers, scaled.ReqPerSec/base.ReqPerSec)
	}
	fmt.Fprintf(w, "latency digest: %#x\n", ClusterDigest(rs))
}

// bestCell is the round-robin cell with the most servers (the scaling
// numerator).
func bestCell(rs []ClusterResult) ClusterResult {
	best := rs[0]
	for _, r := range rs {
		if r.Policy == netsim.RoundRobin && r.Servers > best.Servers {
			best = r
		}
	}
	return best
}

// ClusterDigest folds the cells' latency digests into one
// fingerprint, in cell order.
func ClusterDigest(rs []ClusterResult) uint64 {
	h := fnv.New64a()
	var buf [8]byte
	for _, r := range rs {
		binary.LittleEndian.PutUint64(buf[:], r.Digest)
		h.Write(buf[:])
	}
	return h.Sum64()
}
