package workload

import (
	"testing"

	"xok/internal/bsdos"
	"xok/internal/sim"
)

func TestIOIntensiveShape(t *testing.T) {
	// Figure 2's shape: Xok/ExOS fastest, OpenBSD/C-FFS second,
	// native-FFS BSDs slowest (41 s vs 51 s vs ~60 s in the paper).
	xok, err := IOIntensive(NewXok())
	if err != nil {
		t.Fatal(err)
	}
	obsdCffs, err := IOIntensive(NewBSD(bsdos.OpenBSDCFFS))
	if err != nil {
		t.Fatal(err)
	}
	fbsd, err := IOIntensive(NewBSD(bsdos.FreeBSD))
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("Xok/ExOS total      = %v", xok.Total)
	t.Logf("OpenBSD/C-FFS total = %v", obsdCffs.Total)
	t.Logf("FreeBSD total       = %v", fbsd.Total)
	for i, s := range xok.Steps {
		t.Logf("step %-26s xok=%10v obsd/cffs=%10v fbsd=%10v",
			s.Name, s.Elapsed, obsdCffs.Steps[i].Elapsed, fbsd.Steps[i].Elapsed)
	}
	if xok.Total >= obsdCffs.Total {
		t.Errorf("Xok/ExOS (%v) not faster than OpenBSD/C-FFS (%v)", xok.Total, obsdCffs.Total)
	}
	if obsdCffs.Total >= fbsd.Total {
		t.Errorf("OpenBSD/C-FFS (%v) not faster than FreeBSD (%v)", obsdCffs.Total, fbsd.Total)
	}
	// The paper's gap: FreeBSD ~1.45x Xok total.
	ratio := float64(fbsd.Total) / float64(xok.Total)
	if ratio < 1.2 || ratio > 2.2 {
		t.Errorf("FreeBSD/Xok ratio = %.2f, want ~1.45", ratio)
	}
	// At least one step should show a large (>2.5x) win for Xok over
	// FreeBSD ("in one case by over a factor of four").
	best := 0.0
	for i := range xok.Steps {
		r := float64(fbsd.Steps[i].Elapsed) / float64(xok.Steps[i].Elapsed+1)
		if r > best {
			best = r
		}
	}
	if best < 2.5 {
		t.Errorf("largest per-step win = %.2fx, want > 2.5x", best)
	}
}

func TestProtectionCost(t *testing.T) {
	// Section 6.3: protection costs a few percent (41.1 s vs 39.7 s)
	// and most system calls (300k -> 81k).
	res, err := ProtectionCost()
	if err != nil {
		t.Fatal(err)
	}
	with, without := res.WithProtection, res.WithoutProtection
	t.Logf("with protection:    %v, %d syscalls (%d protection calls)",
		with.Total, with.Syscalls, with.ProtCalls)
	t.Logf("without protection: %v, %d syscalls", without.Total, without.Syscalls)
	if with.Total <= without.Total {
		t.Error("protection should cost something")
	}
	overhead := float64(with.Total-without.Total) / float64(without.Total)
	if overhead > 0.15 {
		t.Errorf("protection overhead = %.1f%%, want a few percent", overhead*100)
	}
	if with.Syscalls < 2*without.Syscalls {
		t.Errorf("syscall reduction %d -> %d too small (paper: 300k -> 81k)",
			with.Syscalls, without.Syscalls)
	}
	if without.ProtCalls != 0 {
		t.Error("unprotected run made protection calls")
	}
}

func TestMABShape(t *testing.T) {
	// Section 6.2: MAB totals 11.5 / 12.5 / 14.2 / 11.5 s for Xok,
	// OpenBSD/C-FFS, OpenBSD, FreeBSD — much closer than the I/O
	// workload "because MAB stresses fork, an expensive function in
	// Xok/ExOS".
	xok, err := MAB(NewXok())
	if err != nil {
		t.Fatal(err)
	}
	fbsd, err := MAB(NewBSD(bsdos.FreeBSD))
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("Xok MAB = %v, FreeBSD MAB = %v", xok.Total, fbsd.Total)
	for i := range xok.Phases {
		t.Logf("phase %-8s xok=%10v fbsd=%10v",
			xok.Phases[i].Name, xok.Phases[i].Elapsed, fbsd.Phases[i].Elapsed)
	}
	// The paper reports a tie (11.5 s both); our FFS model charges the
	// copy phase's synchronous creates more heavily than 1997 FreeBSD
	// apparently paid, so we accept a band around parity (documented
	// in EXPERIMENTS.md). The essential claim — MAB is far closer than
	// the I/O workload because fork drags Xok back — is asserted below.
	ratio := float64(xok.Total) / float64(fbsd.Total)
	if ratio < 0.55 || ratio > 1.3 {
		t.Errorf("Xok/FreeBSD MAB ratio = %.2f, want near parity", ratio)
	}
	// The compile phase must be relatively worse for Xok than the
	// copy phase (fork cost vs C-FFS win).
	xokCompile := float64(xok.Phases[4].Elapsed) / float64(fbsd.Phases[4].Elapsed)
	xokCopy := float64(xok.Phases[1].Elapsed) / float64(fbsd.Phases[1].Elapsed)
	if xokCompile <= xokCopy {
		t.Errorf("compile ratio %.2f should exceed copy ratio %.2f (fork penalty)",
			xokCompile, xokCopy)
	}
}

func TestGlobalPerfSmall(t *testing.T) {
	// A scaled-down Figure 4 cell: 7 jobs at concurrency 2. Xok and
	// FreeBSD should land within ~35% of each other, and identical
	// seeds must give identical schedules per system.
	xok1, err := GlobalPerf(NewXok(), Pool1(), 7, 2, 42)
	if err != nil {
		t.Fatal(err)
	}
	xok2, err := GlobalPerf(NewXok(), Pool1(), 7, 2, 42)
	if err != nil {
		t.Fatal(err)
	}
	if xok1.Total != xok2.Total || xok1.Max != xok2.Max || xok1.Min != xok2.Min {
		t.Errorf("nondeterministic: %+v vs %+v", xok1, xok2)
	}
	fbsd, err := GlobalPerf(NewBSD(bsdos.FreeBSD), Pool1(), 7, 2, 42)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("Xok:     total=%v max=%v min=%v", xok1.Total, xok1.Max, xok1.Min)
	t.Logf("FreeBSD: total=%v max=%v min=%v", fbsd.Total, fbsd.Max, fbsd.Min)
	if xok1.Min == 0 || xok1.Max < xok1.Min {
		t.Errorf("latencies broken: %+v", xok1)
	}
	ratio := float64(xok1.Total) / float64(fbsd.Total)
	if ratio < 0.5 || ratio > 1.35 {
		t.Errorf("Xok/FreeBSD total ratio = %.2f, want roughly comparable", ratio)
	}
}

func TestGlobalPerfPool2ConcurrencyHelpsXok(t *testing.T) {
	// Figure 5: "the relative performance difference between FreeBSD
	// and Xok/ExOS increases with job concurrency" when C-FFS-favoured
	// jobs are in the pool.
	xok, err := GlobalPerf(NewXok(), Pool2(), 8, 4, 7)
	if err != nil {
		t.Fatal(err)
	}
	fbsd, err := GlobalPerf(NewBSD(bsdos.FreeBSD), Pool2(), 8, 4, 7)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("pool2: xok=%v fbsd=%v", xok.Total, fbsd.Total)
	if xok.Total >= fbsd.Total {
		t.Errorf("Xok (%v) should beat FreeBSD (%v) on the pool-2 mix", xok.Total, fbsd.Total)
	}
}

var _ = sim.Time(0)
