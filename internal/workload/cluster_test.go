package workload_test

import (
	"bytes"
	"os"
	"testing"

	"xok/internal/core"
	"xok/internal/machine"
	"xok/internal/netsim"
	"xok/internal/trace"
	"xok/internal/workload"
)

// testCells is a scaled-down acceptance sweep: 1 server vs 4 servers
// at the same offered load.
func testCells() []workload.ClusterConfig {
	return workload.ClusterCells(4, 400, 8000)
}

// renderCluster runs the sweep on a bench with the given worker count
// and returns the rendered report plus the combined latency digest.
func renderCluster(t *testing.T, parallel int) (string, uint64) {
	t.Helper()
	bench := core.Bench{BenchOpts: core.BenchOpts{Trace: trace.New(), Parallel: parallel}}
	rs, err := bench.Cluster(testCells())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	workload.WriteClusterReport(&buf, rs)
	return buf.String(), workload.ClusterDigest(rs)
}

// TestClusterParallelMatchesSerial: the cluster sweep renders
// byte-identically and digests identically at every worker count.
func TestClusterParallelMatchesSerial(t *testing.T) {
	serialOut, serialDigest := renderCluster(t, 1)
	for _, p := range []int{2, 4} {
		out, digest := renderCluster(t, p)
		if out != serialOut {
			t.Errorf("-parallel %d report differs from serial:\n--- serial ---\n%s--- parallel %d ---\n%s",
				p, serialOut, p, out)
		}
		if digest != serialDigest {
			t.Errorf("-parallel %d digest %#x != serial %#x", p, digest, serialDigest)
		}
	}
}

// renderClusterShard runs the sweep single-threaded with the given
// shard count (0 = single-engine) and returns the rendered report and
// combined digest. No trace sink: full tracing and sharding are
// mutually exclusive, and the latency digest is what the byte-identity
// bar is measured on.
func renderClusterShard(t *testing.T, shard int) (string, uint64) {
	t.Helper()
	bench := core.Bench{BenchOpts: core.BenchOpts{Shard: shard}}
	rs, err := bench.Cluster(testCells())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	workload.WriteClusterReport(&buf, rs)
	return buf.String(), workload.ClusterDigest(rs)
}

// TestClusterShardMatchesSingleEngine: the sharded cluster renders
// byte-identically — report text and latency digests — to the
// single-engine run at every shard count, including shard counts past
// the server count (which clamp).
func TestClusterShardMatchesSingleEngine(t *testing.T) {
	singleOut, singleDigest := renderClusterShard(t, 0)
	for _, n := range []int{1, 2, 4, 8} {
		out, digest := renderClusterShard(t, n)
		if out != singleOut {
			t.Errorf("-shard %d report differs from single-engine:\n--- single ---\n%s--- shard %d ---\n%s",
				n, singleOut, n, out)
		}
		if digest != singleDigest {
			t.Errorf("-shard %d digest %#x != single-engine %#x", n, digest, singleDigest)
		}
	}
}

// TestClusterWheelMatchesHeap: the timer-wheel scheduling backend is
// an implementation detail — every cell's report bytes and latency
// digest are identical with the wheel on (default) and off (NoWheel's
// pure-heap baseline), and identical again when sharding composes with
// either backend.
func TestClusterWheelMatchesHeap(t *testing.T) {
	render := func(noWheel bool, shard int) (string, uint64) {
		bench := core.Bench{BenchOpts: core.BenchOpts{NoWheel: noWheel, Shard: shard}}
		rs, err := bench.Cluster(testCells())
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		workload.WriteClusterReport(&buf, rs)
		return buf.String(), workload.ClusterDigest(rs)
	}
	wheelOut, wheelDigest := render(false, 0)
	for _, cfg := range []struct {
		name    string
		noWheel bool
		shard   int
	}{
		{"heap", true, 0},
		{"heap-shard2", true, 2},
		{"wheel-shard2", false, 2},
	} {
		out, digest := render(cfg.noWheel, cfg.shard)
		if out != wheelOut {
			t.Errorf("%s report differs from wheel/single-engine:\n--- wheel ---\n%s--- %s ---\n%s",
				cfg.name, wheelOut, cfg.name, out)
		}
		if digest != wheelDigest {
			t.Errorf("%s digest %#x != wheel %#x", cfg.name, digest, wheelDigest)
		}
	}
}

// TestClusterConns100kWheelDigest is the wheel smoke (`make
// wheel-smoke`): one 100k-connection cell, run with the wheel and with
// the pure heap — single-engine and sharded — must complete every
// connection, and within each topology the two scheduling backends
// must produce identical latency digests and engine event counts (the
// wheel is an implementation detail at every scale and shard count).
// The single-engine and sharded digests are NOT compared to each
// other: past ~60k connections the cross-island tie-break for
// same-cycle events may legitimately order sub-cycle collisions
// differently than the shared engine's sequence numbers (see the
// ClusterConfig.Shard doc). ~5 s/run unraced on a 2021 host — opt-in
// via XOK_WHEEL_SMOKE=1 so plain `go test ./...` stays fast.
func TestClusterConns100kWheelDigest(t *testing.T) {
	if os.Getenv("XOK_WHEEL_SMOKE") == "" {
		t.Skip("set XOK_WHEEL_SMOKE=1 (make wheel-smoke) to run the 100k-connection smoke")
	}
	run := func(noWheel bool, shard int) workload.ClusterResult {
		res, err := workload.Cluster(workload.ClusterConfig{
			Servers: 4, Conns: 100_000, Rate: 4000,
			Policy: netsim.LeastConnections, NoWheel: noWheel, Shard: shard,
		})
		if err != nil {
			t.Fatal(err)
		}
		if res.Completed != res.Conns {
			t.Fatalf("noWheel=%v shard=%d: %d/%d connections completed",
				noWheel, shard, res.Completed, res.Conns)
		}
		return res
	}
	for _, shard := range []int{0, 2} {
		wheel := run(false, shard)
		heap := run(true, shard)
		if wheel.Digest != heap.Digest {
			t.Errorf("100k-connection digest (shard=%d): wheel %#x != heap %#x",
				shard, wheel.Digest, heap.Digest)
		}
		if wheel.EngineEvents != heap.EngineEvents {
			t.Errorf("100k-connection event count (shard=%d): wheel %d != heap %d",
				shard, wheel.EngineEvents, heap.EngineEvents)
		}
	}
}

// TestClusterShardRejectsTracing: a traced cell cannot shard — one
// tracer cannot deterministically interleave concurrent islands.
func TestClusterShardRejectsTracing(t *testing.T) {
	bench := core.Bench{BenchOpts: core.BenchOpts{Trace: trace.New(), Shard: 2}}
	if _, err := bench.Cluster(testCells()); err == nil {
		t.Fatal("sharded cluster with a full tracer did not error")
	}
}

// TestClusterThroughputScales: at a fixed offered load past one
// server's capacity, 4 servers must deliver at least 2.5x the
// single-server throughput, and every connection must complete.
func TestClusterThroughputScales(t *testing.T) {
	var bench core.Bench
	rs, err := bench.Cluster(testCells())
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rs {
		if r.Completed != r.Conns {
			t.Errorf("%d servers (%v): completed %d/%d connections",
				r.Servers, r.Policy, r.Completed, r.Conns)
		}
		if r.P50 <= 0 || r.P99 < r.P50 {
			t.Errorf("%d servers (%v): implausible quantiles p50=%v p99=%v",
				r.Servers, r.Policy, r.P50, r.P99)
		}
	}
	base, scaled := rs[0], rs[1]
	if ratio := scaled.ReqPerSec / base.ReqPerSec; ratio < 2.5 {
		t.Errorf("4-server/1-server throughput = %.2fx, want >= 2.5x (%.0f vs %.0f req/s)",
			ratio, scaled.ReqPerSec, base.ReqPerSec)
	}
}

// TestClusterBalancerSpread: round-robin spreads exactly evenly;
// least-connections stays within a few connections of even.
func TestClusterBalancerSpread(t *testing.T) {
	var bench core.Bench
	rs, err := bench.Cluster(testCells())
	if err != nil {
		t.Fatal(err)
	}
	rr, lc := rs[1], rs[2]
	per := int64(rr.Conns / rr.Servers)
	for i, n := range rr.Assignments {
		if n != per {
			t.Errorf("round-robin backend %d got %d connections, want %d", i, n, per)
		}
	}
	var total int64
	for i, n := range lc.Assignments {
		total += n
		if n < per/2 || n > per*2 {
			t.Errorf("least-conn backend %d got %d connections, want near %d", i, n, per)
		}
	}
	if total != int64(lc.Conns) {
		t.Errorf("least-conn assigned %d connections total, want %d", total, lc.Conns)
	}
}

// TestMachinesShareFabricClock: machines attached to one topology boot
// on the fabric's engine — one event queue, one virtual clock.
func TestMachinesShareFabricClock(t *testing.T) {
	topo := netsim.NewTopology()
	var atts [2]*netsim.Attachment
	for i := range atts {
		atts[i] = &netsim.Attachment{Topology: topo}
		m, err := machine.New(machine.Config{
			Personality: machine.XokExOS,
			DiskBlocks:  1 << 15,
			Net:         atts[i],
		})
		if err != nil {
			t.Fatal(err)
		}
		defer m.Close()
		if m.Kern().Eng != topo.Engine() {
			t.Fatalf("machine %d booted on its own engine, not the fabric's", i)
		}
		if atts[i].NIC == nil {
			t.Fatalf("machine %d: attachment NIC not filled in", i)
		}
	}
	if atts[0].Host == atts[1].Host {
		t.Error("both machines attached to the same host id")
	}
}
