package workload_test

import (
	"bytes"
	"testing"

	"xok/internal/core"
	"xok/internal/machine"
	"xok/internal/netsim"
	"xok/internal/trace"
	"xok/internal/workload"
)

// testCells is a scaled-down acceptance sweep: 1 server vs 4 servers
// at the same offered load.
func testCells() []workload.ClusterConfig {
	return workload.ClusterCells(4, 400, 8000)
}

// renderCluster runs the sweep on a bench with the given worker count
// and returns the rendered report plus the combined latency digest.
func renderCluster(t *testing.T, parallel int) (string, uint64) {
	t.Helper()
	bench := core.Bench{BenchOpts: core.BenchOpts{Trace: trace.New(), Parallel: parallel}}
	rs, err := bench.Cluster(testCells())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	workload.WriteClusterReport(&buf, rs)
	return buf.String(), workload.ClusterDigest(rs)
}

// TestClusterParallelMatchesSerial: the cluster sweep renders
// byte-identically and digests identically at every worker count.
func TestClusterParallelMatchesSerial(t *testing.T) {
	serialOut, serialDigest := renderCluster(t, 1)
	for _, p := range []int{2, 4} {
		out, digest := renderCluster(t, p)
		if out != serialOut {
			t.Errorf("-parallel %d report differs from serial:\n--- serial ---\n%s--- parallel %d ---\n%s",
				p, serialOut, p, out)
		}
		if digest != serialDigest {
			t.Errorf("-parallel %d digest %#x != serial %#x", p, digest, serialDigest)
		}
	}
}

// renderClusterShard runs the sweep single-threaded with the given
// shard count (0 = single-engine) and returns the rendered report and
// combined digest. No trace sink: full tracing and sharding are
// mutually exclusive, and the latency digest is what the byte-identity
// bar is measured on.
func renderClusterShard(t *testing.T, shard int) (string, uint64) {
	t.Helper()
	bench := core.Bench{BenchOpts: core.BenchOpts{Shard: shard}}
	rs, err := bench.Cluster(testCells())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	workload.WriteClusterReport(&buf, rs)
	return buf.String(), workload.ClusterDigest(rs)
}

// TestClusterShardMatchesSingleEngine: the sharded cluster renders
// byte-identically — report text and latency digests — to the
// single-engine run at every shard count, including shard counts past
// the server count (which clamp).
func TestClusterShardMatchesSingleEngine(t *testing.T) {
	singleOut, singleDigest := renderClusterShard(t, 0)
	for _, n := range []int{1, 2, 4, 8} {
		out, digest := renderClusterShard(t, n)
		if out != singleOut {
			t.Errorf("-shard %d report differs from single-engine:\n--- single ---\n%s--- shard %d ---\n%s",
				n, singleOut, n, out)
		}
		if digest != singleDigest {
			t.Errorf("-shard %d digest %#x != single-engine %#x", n, digest, singleDigest)
		}
	}
}

// TestClusterShardRejectsTracing: a traced cell cannot shard — one
// tracer cannot deterministically interleave concurrent islands.
func TestClusterShardRejectsTracing(t *testing.T) {
	bench := core.Bench{BenchOpts: core.BenchOpts{Trace: trace.New(), Shard: 2}}
	if _, err := bench.Cluster(testCells()); err == nil {
		t.Fatal("sharded cluster with a full tracer did not error")
	}
}

// TestClusterThroughputScales: at a fixed offered load past one
// server's capacity, 4 servers must deliver at least 2.5x the
// single-server throughput, and every connection must complete.
func TestClusterThroughputScales(t *testing.T) {
	var bench core.Bench
	rs, err := bench.Cluster(testCells())
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rs {
		if r.Completed != r.Conns {
			t.Errorf("%d servers (%v): completed %d/%d connections",
				r.Servers, r.Policy, r.Completed, r.Conns)
		}
		if r.P50 <= 0 || r.P99 < r.P50 {
			t.Errorf("%d servers (%v): implausible quantiles p50=%v p99=%v",
				r.Servers, r.Policy, r.P50, r.P99)
		}
	}
	base, scaled := rs[0], rs[1]
	if ratio := scaled.ReqPerSec / base.ReqPerSec; ratio < 2.5 {
		t.Errorf("4-server/1-server throughput = %.2fx, want >= 2.5x (%.0f vs %.0f req/s)",
			ratio, scaled.ReqPerSec, base.ReqPerSec)
	}
}

// TestClusterBalancerSpread: round-robin spreads exactly evenly;
// least-connections stays within a few connections of even.
func TestClusterBalancerSpread(t *testing.T) {
	var bench core.Bench
	rs, err := bench.Cluster(testCells())
	if err != nil {
		t.Fatal(err)
	}
	rr, lc := rs[1], rs[2]
	per := int64(rr.Conns / rr.Servers)
	for i, n := range rr.Assignments {
		if n != per {
			t.Errorf("round-robin backend %d got %d connections, want %d", i, n, per)
		}
	}
	var total int64
	for i, n := range lc.Assignments {
		total += n
		if n < per/2 || n > per*2 {
			t.Errorf("least-conn backend %d got %d connections, want near %d", i, n, per)
		}
	}
	if total != int64(lc.Conns) {
		t.Errorf("least-conn assigned %d connections total, want %d", total, lc.Conns)
	}
}

// TestMachinesShareFabricClock: machines attached to one topology boot
// on the fabric's engine — one event queue, one virtual clock.
func TestMachinesShareFabricClock(t *testing.T) {
	topo := netsim.NewTopology()
	var atts [2]*netsim.Attachment
	for i := range atts {
		atts[i] = &netsim.Attachment{Topology: topo}
		m, err := machine.New(machine.Config{
			Personality: machine.XokExOS,
			DiskBlocks:  1 << 15,
			Net:         atts[i],
		})
		if err != nil {
			t.Fatal(err)
		}
		defer m.Close()
		if m.Kern().Eng != topo.Engine() {
			t.Fatalf("machine %d booted on its own engine, not the fabric's", i)
		}
		if atts[i].NIC == nil {
			t.Fatalf("machine %d: attachment NIC not filled in", i)
		}
	}
	if atts[0].Host == atts[1].Host {
		t.Error("both machines attached to the same host id")
	}
}
