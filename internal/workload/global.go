package workload

import (
	"fmt"

	"xok/internal/apps"
	"xok/internal/kernel"
	"xok/internal/sim"
	"xok/internal/unix"
)

// Global performance experiments (Section 8, Figures 4 and 5): a
// randomized schedule of jobs from a pool, held at a fixed concurrency
// by a launcher (the shell). "The pseudo-random number generators are
// identical and start with the same seed, thus producing identical
// schedules" across systems; "each application ... is run in a
// separate directory from the others (to avoid cooperative buffer
// cache reuse)". Outputs are total running time (throughput) and the
// max/min per-job latency (interactive performance).

// JobKind is one pool member: Stage prepares its input files in a
// private directory (untimed), Run is the measured program.
type JobKind struct {
	Name  string
	Stage func(p unix.Proc, dir string) error
	Run   func(p unix.Proc, dir string) error
}

func stageNothing(unix.Proc, string) error { return nil }

// stageFile creates dir/<name> with n bytes.
func stageFile(p unix.Proc, dir, name string, n int) error {
	data := make([]byte, n)
	return apps.WriteFile(p, dir+"/"+name, data)
}

// stageTree builds a small source tree under dir/src.
func stageTree(p unix.Proc, dir string, files, fileSize int) error {
	if err := p.Mkdir(dir+"/src", 7); err != nil {
		return err
	}
	for i := 0; i < files; i++ {
		if err := stageFile(p, dir+"/src", fmt.Sprintf("s%02d.c", i), fileSize); err != nil {
			return err
		}
	}
	return nil
}

// Pool1 is Figure 4's mix of I/O- and CPU-intensive programs: pax -w,
// grep, cksum, tsp, sor, wc, gcc, gzip, gunzip.
func Pool1() []JobKind {
	return []JobKind{
		{
			Name:  "pax -w",
			Stage: func(p unix.Proc, dir string) error { return stageTree(p, dir, 40, 40000) },
			Run:   func(p unix.Proc, dir string) error { return apps.PaxW(p, dir+"/src", dir+"/out.tar") },
		},
		{
			Name:  "grep",
			Stage: func(p unix.Proc, dir string) error { return stageFile(p, dir, "big.txt", 4_000_000) },
			Run: func(p unix.Proc, dir string) error {
				_, err := apps.Grep(p, dir+"/big.txt", "needle")
				return err
			},
		},
		{
			Name: "cksum",
			Stage: func(p unix.Proc, dir string) error {
				for i := 0; i < 4; i++ {
					if err := stageFile(p, dir, fmt.Sprintf("f%d", i), 120_000); err != nil {
						return err
					}
				}
				return nil
			},
			Run: func(p unix.Proc, dir string) error {
				_, err := apps.Cksum(p, 80, dir+"/f0", dir+"/f1", dir+"/f2", dir+"/f3")
				return err
			},
		},
		{
			Name:  "tsp",
			Stage: stageNothing,
			Run: func(p unix.Proc, dir string) error {
				apps.Tsp(p, 120, 900)
				return nil
			},
		},
		{
			Name:  "sor",
			Stage: stageNothing,
			Run: func(p unix.Proc, dir string) error {
				apps.Sor(p, 120, 2500)
				return nil
			},
		},
		{
			Name:  "wc",
			Stage: func(p unix.Proc, dir string) error { return stageFile(p, dir, "words.txt", 4_000_000) },
			Run: func(p unix.Proc, dir string) error {
				_, err := apps.Wc(p, dir+"/words.txt")
				return err
			},
		},
		{
			Name:  "gcc",
			Stage: func(p unix.Proc, dir string) error { return stageTree(p, dir, 20, 35000) },
			Run:   func(p unix.Proc, dir string) error { return apps.Gcc(p, dir+"/src") },
		},
		{
			Name:  "gzip",
			Stage: func(p unix.Proc, dir string) error { return stageFile(p, dir, "in.bin", 3_000_000) },
			Run:   func(p unix.Proc, dir string) error { return apps.Gzip(p, dir+"/in.bin", dir+"/out.gz") },
		},
		{
			Name:  "gunzip",
			Stage: func(p unix.Proc, dir string) error { return stageFile(p, dir, "in.gz", 1_200_000) },
			Run: func(p unix.Proc, dir string) error {
				plain := make([]byte, 4_000_000)
				return apps.Gunzip(p, dir+"/in.gz", dir+"/out.bin", plain)
			},
		},
	}
}

// Pool2 is Figure 5's mix, where the pax and cp jobs "represent the
// specialized applications" that benefit from C-FFS: tsp, sor,
// pax -r, cp -r, and diff over two identical 5-MB files.
func Pool2() []JobKind {
	archive := apps.ArchiveBytes(smallTree())
	return []JobKind{
		{
			Name:  "tsp",
			Stage: stageNothing,
			Run: func(p unix.Proc, dir string) error {
				apps.Tsp(p, 120, 900)
				return nil
			},
		},
		{
			Name:  "sor",
			Stage: stageNothing,
			Run: func(p unix.Proc, dir string) error {
				apps.Sor(p, 120, 2500)
				return nil
			},
		},
		{
			Name: "pax -r",
			Stage: func(p unix.Proc, dir string) error {
				return apps.WriteFile(p, dir+"/in.tar", archive)
			},
			Run: func(p unix.Proc, dir string) error { return apps.PaxR(p, dir+"/in.tar", dir+"/tree") },
		},
		{
			Name:  "cp -r",
			Stage: func(p unix.Proc, dir string) error { return stageTree(p, dir, 40, 40000) },
			Run:   func(p unix.Proc, dir string) error { return apps.CpR(p, dir+"/src", dir+"/copy") },
		},
		{
			Name: "diff",
			Stage: func(p unix.Proc, dir string) error {
				if err := p.Mkdir(dir+"/a", 7); err != nil {
					return err
				}
				if err := p.Mkdir(dir+"/b", 7); err != nil {
					return err
				}
				if err := stageFile(p, dir+"/a", "big", 5_000_000); err != nil {
					return err
				}
				return stageFile(p, dir+"/b", "big", 5_000_000)
			},
			Run: func(p unix.Proc, dir string) error {
				_, err := apps.Diff(p, dir+"/a", dir+"/b")
				return err
			},
		},
	}
}

func smallTree() apps.TreeSpec {
	rng := sim.NewRNG(0x77)
	var t apps.TreeSpec
	t.Dirs = []string{"d0", "d1", "d2"}
	for d := 0; d < 3; d++ {
		for i := 0; i < 12; i++ {
			t.Files = append(t.Files, apps.FileSpec{
				Path: fmt.Sprintf("d%d/f%02d", d, i),
				Size: 20000 + rng.Intn(30000),
			})
		}
	}
	return t
}

// GlobalResult is one experiment: number/number in the figures is
// TotalJobs/MaxConc.
type GlobalResult struct {
	System    string
	TotalJobs int
	MaxConc   int
	Total     sim.Time // throughput
	Max       sim.Time // worst job latency
	Min       sim.Time // best job latency
}

// GlobalPerf runs `total` jobs drawn pseudo-randomly from pool,
// holding `maxConc` running at once.
func GlobalPerf(m Machine, pool []JobKind, total, maxConc int, seed uint64) (GlobalResult, error) {
	res := GlobalResult{System: m.Name(), TotalJobs: total, MaxConc: maxConc}

	// Identical seeds => identical schedules on every system.
	rng := sim.NewRNG(seed)
	seq := make([]int, total)
	for i := range seq {
		seq[i] = rng.Intn(len(pool))
	}

	// Stage all inputs (untimed), each job in its own directory.
	var err error
	m.SpawnProc("stage", 0, func(p unix.Proc) {
		for i, k := range seq {
			dir := fmt.Sprintf("/g%03d", i)
			if e := p.Mkdir(dir, 7); e != nil && err == nil {
				err = e
				return
			}
			if e := pool[k].Stage(p, dir); e != nil && err == nil {
				err = e
				return
			}
		}
		if e := p.Sync(); e != nil && err == nil {
			err = e
		}
	})
	m.Run()
	if err != nil {
		return res, fmt.Errorf("stage: %w", err)
	}

	starts := make([]sim.Time, total)
	ends := make([]sim.Time, total)
	begin := m.Now()

	// The launcher is itself a process (the driving shell): its spawns
	// pay the personality's fork+exec price.
	m.SpawnProc("launcher", 0, func(p unix.Proc) {
		type running struct {
			idx int
			env *kernel.Env
		}
		var live []running
		next := 0
		for next < total || len(live) > 0 {
			for next < total && len(live) < maxConc {
				i := next
				next++
				kind := pool[seq[i]]
				dir := fmt.Sprintf("/g%03d", i)
				starts[i] = p.Now()
				h, e := p.Spawn(kind.Name, func(c unix.Proc) {
					if e := kind.Run(c, dir); e != nil && err == nil {
						err = fmt.Errorf("%s job %d: %w", kind.Name, i, e)
					}
					ends[i] = c.Now()
				})
				if e != nil {
					if err == nil {
						err = e
					}
					return
				}
				live = append(live, running{i, h.(interface{ Env() *kernel.Env }).Env()})
			}
			envs := make([]*kernel.Env, len(live))
			for j, r := range live {
				envs[j] = r.env
			}
			waiter := p.(interface{ Env() *kernel.Env }).Env()
			waiter.WaitAnyOf(envs)
			survivors := live[:0]
			for _, r := range live {
				if !r.env.Dead() {
					survivors = append(survivors, r)
				}
			}
			live = survivors
		}
	})
	m.Run()
	if err != nil {
		return res, err
	}

	res.Total = m.Now() - begin
	res.Max, res.Min = 0, 0
	for i := 0; i < total; i++ {
		lat := ends[i] - starts[i]
		if lat > res.Max {
			res.Max = lat
		}
		if res.Min == 0 || lat < res.Min {
			res.Min = lat
		}
	}
	return res, nil
}
