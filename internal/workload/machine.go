// Package workload reproduces the paper's macrobenchmarks: the
// I/O-intensive lcc-install workload (Table 1 / Figure 2), the
// Modified Andrew Benchmark (Section 6.2), the cost-of-protection
// experiment (Section 6.3), and the global-performance job mixes
// (Figures 4 and 5). Each takes a Machine — one of the four systems
// under test — and returns measured virtual times.
package workload

import (
	"fmt"

	"xok/internal/bsdos"
	"xok/internal/exos"
	"xok/internal/kernel"
	"xok/internal/sim"
	"xok/internal/unix"
)

// EnvHandle identifies a spawned process.
type EnvHandle interface {
	Env() *kernel.Env
}

// Machine abstracts over the OS personalities.
type Machine interface {
	// Name labels the system as the paper does ("Xok/ExOS", ...).
	Name() string
	// SpawnProc starts a UNIX process.
	SpawnProc(name string, uid uint16, main func(unix.Proc)) EnvHandle
	// Run drains the machine.
	Run()
	// Now returns virtual time.
	Now() sim.Time
	// Stats returns the counter registry.
	Stats() *sim.Stats
	// Kern returns the kernel.
	Kern() *kernel.Kernel
}

// Xok wraps an ExOS system as a Machine.
type Xok struct{ S *exos.System }

// Name implements Machine.
func (m Xok) Name() string { return "Xok/ExOS" }

// SpawnProc implements Machine.
func (m Xok) SpawnProc(name string, uid uint16, main func(unix.Proc)) EnvHandle {
	return m.S.Spawn(name, uid, main)
}

// Run implements Machine.
func (m Xok) Run() { m.S.Run() }

// Now implements Machine.
func (m Xok) Now() sim.Time { return m.S.Now() }

// Stats implements Machine.
func (m Xok) Stats() *sim.Stats { return m.S.Stats() }

// Kern implements Machine.
func (m Xok) Kern() *kernel.Kernel { return m.S.K }

// BSD wraps a BSD system as a Machine.
type BSD struct{ S *bsdos.System }

// Name implements Machine.
func (m BSD) Name() string { return m.S.Variant.String() }

// SpawnProc implements Machine.
func (m BSD) SpawnProc(name string, uid uint16, main func(unix.Proc)) EnvHandle {
	return m.S.Spawn(name, uid, main)
}

// Run implements Machine.
func (m BSD) Run() { m.S.Run() }

// Now implements Machine.
func (m BSD) Now() sim.Time { return m.S.Now() }

// Stats implements Machine.
func (m BSD) Stats() *sim.Stats { return m.S.Stats() }

// Kern implements Machine.
func (m BSD) Kern() *kernel.Kernel { return m.S.K }

// NewXok boots a stock Xok/ExOS machine (protection on, as in all
// Section 6 measurements).
func NewXok() Machine { return Xok{S: exos.Boot(exos.Config{Protect: true})} }

// NewXokUnprotected boots Xok/ExOS with XN charging and shared-state
// protection calls removed (the Section 6.3 comparison point).
func NewXokUnprotected() Machine {
	s := exos.Boot(exos.Config{Protect: false})
	s.X.FreeCost = true
	return Xok{S: s}
}

// NewBSD boots a BSD machine.
func NewBSD(v bsdos.Variant) Machine { return BSD{S: bsdos.Boot(v, bsdos.Config{})} }

// AllSystems boots the four systems of Figure 2, in the paper's
// presentation order.
func AllSystems() []Machine {
	return []Machine{
		NewXok(),
		NewBSD(bsdos.OpenBSDCFFS),
		NewBSD(bsdos.OpenBSD),
		NewBSD(bsdos.FreeBSD),
	}
}

// exec runs main as a process to completion and returns the elapsed
// virtual time. Errors inside are collected into errp.
func exec(m Machine, name string, main func(unix.Proc) error, errp *error) sim.Time {
	start := m.Now()
	m.SpawnProc(name, 0, func(p unix.Proc) {
		if err := main(p); err != nil && *errp == nil {
			*errp = fmt.Errorf("%s: %s: %w", m.Name(), name, err)
		}
	})
	m.Run()
	return m.Now() - start
}
