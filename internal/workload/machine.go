// Package workload reproduces the paper's macrobenchmarks: the
// I/O-intensive lcc-install workload (Table 1 / Figure 2), the
// Modified Andrew Benchmark (Section 6.2), the cost-of-protection
// experiment (Section 6.3), the global-performance job mixes
// (Figures 4 and 5), and the crash-point enumeration harness. Each
// takes a Machine — one of the systems under test, built through
// internal/machine — and returns measured virtual times.
package workload

import (
	"fmt"

	"xok/internal/bsdos"
	"xok/internal/machine"
	"xok/internal/sim"
	"xok/internal/unix"
)

// EnvHandle identifies a spawned process.
type EnvHandle = machine.EnvHandle

// Machine abstracts over the OS personalities; internal/machine is the
// construction path.
type Machine = machine.Machine

// Xok and BSD are the concrete machine wrappers, re-exported for
// experiments that reach the underlying systems.
type (
	Xok = machine.Xok
	BSD = machine.BSD
)

// NewXok boots a stock Xok/ExOS machine (protection on, as in all
// Section 6 measurements).
func NewXok() Machine {
	return machine.MustNew(machine.Config{Personality: machine.XokExOS})
}

// NewXokUnprotected boots Xok/ExOS with XN charging and shared-state
// protection calls removed (the Section 6.3 comparison point).
func NewXokUnprotected() Machine {
	return machine.MustNew(machine.Config{Personality: machine.XokUnprotected})
}

// NewBSD boots a BSD machine.
func NewBSD(v bsdos.Variant) Machine {
	p := machine.FreeBSD
	switch v {
	case bsdos.OpenBSD:
		p = machine.OpenBSD
	case bsdos.OpenBSDCFFS:
		p = machine.OpenBSDCFFS
	}
	return machine.MustNew(machine.Config{Personality: p})
}

// SystemConfigs returns the machine configurations of the four
// Figure-2 systems in the paper's presentation order. Callers that
// need per-machine state (a tracer, a fault plan) set it on a config
// before booting with machine.MustNew — the pattern parallel
// experiment legs use.
func SystemConfigs() []machine.Config {
	return []machine.Config{
		{Personality: machine.XokExOS},
		{Personality: machine.OpenBSDCFFS},
		{Personality: machine.OpenBSD},
		{Personality: machine.FreeBSD},
	}
}

// AllSystems boots the four systems of Figure 2, in the paper's
// presentation order.
func AllSystems() []Machine {
	cfgs := SystemConfigs()
	ms := make([]Machine, len(cfgs))
	for i, cfg := range cfgs {
		ms[i] = machine.MustNew(cfg)
	}
	return ms
}

// exec runs main as a process to completion and returns the elapsed
// virtual time. Errors inside are collected into errp.
func exec(m Machine, name string, main func(unix.Proc) error, errp *error) sim.Time {
	start := m.Now()
	m.SpawnProc(name, 0, func(p unix.Proc) {
		if err := main(p); err != nil && *errp == nil {
			*errp = fmt.Errorf("%s: %s: %w", m.Name(), name, err)
		}
	})
	m.Run()
	return m.Now() - start
}
