package workload

import (
	"testing"

	"xok/internal/fault"
)

// TestCrashEnumerationMAB is the headline recovery check: crash the
// MAB workload at sampled synchronous-write boundaries with torn
// writes armed; every image must remount and audit clean, and the
// sweep must be bit-identical across two same-seed runs.
func TestCrashEnumerationMAB(t *testing.T) {
	cfg := CrashConfig{Plan: &fault.Plan{Seed: 42, TornWrites: true}, MaxPoints: 10}
	res, err := CrashEnumerate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	want := res.Boundaries
	if want > cfg.MaxPoints {
		want = cfg.MaxPoints
	}
	if want == 0 || len(res.Points) != want {
		t.Fatalf("boundaries=%d points=%d, want %d sampled points", res.Boundaries, len(res.Points), want)
	}
	for _, pt := range res.Points {
		for _, v := range pt.Violations {
			t.Errorf("crash@%v: %s", pt.At, v)
		}
	}
	if res.Violations() != 0 {
		t.Fatalf("%d of %d crash points failed recovery", res.Violations(), len(res.Points))
	}

	cfg2 := CrashConfig{Plan: &fault.Plan{Seed: 42, TornWrites: true}, MaxPoints: 10}
	res2, err := CrashEnumerate(cfg2)
	if err != nil {
		t.Fatal(err)
	}
	if res2.Digest != res.Digest {
		t.Fatalf("same seed diverged: digest %016x vs %016x", res.Digest, res2.Digest)
	}
	if res2.Boundaries != res.Boundaries {
		t.Fatalf("boundary count diverged: %d vs %d", res.Boundaries, res2.Boundaries)
	}
}

// TestCrashEnumerationSeedSensitivity: the recovery guarantee is
// seed-independent — any plan seed must sweep clean. (With only torn
// writes armed no rate-based channel draws from the seed streams, so
// torn content is fixed by the crash instant; seeds matter once
// readerr/loss-style knobs are armed.)
func TestCrashEnumerationSeedSensitivity(t *testing.T) {
	res, err := CrashEnumerate(CrashConfig{Plan: &fault.Plan{Seed: 7, TornWrites: true}, MaxPoints: 4})
	if err != nil {
		t.Fatal(err)
	}
	if res.Violations() != 0 {
		t.Fatalf("seed 7: %d crash points failed recovery", res.Violations())
	}
}

// TestCrashParallelMatchesSerial: fanning the per-point trials across
// workers must not change the sweep — same sampled boundaries, same
// per-point audit findings, same outcome digest. Each trial boots its
// own machine under its own plan clone, so this holds by construction;
// the test is the guard that keeps it true.
func TestCrashParallelMatchesSerial(t *testing.T) {
	mk := func(workers int) CrashResult {
		res, err := CrashEnumerate(CrashConfig{
			Plan:      &fault.Plan{Seed: 42, TornWrites: true},
			MaxPoints: 6,
			Parallel:  workers,
		})
		if err != nil {
			t.Fatalf("parallel=%d: %v", workers, err)
		}
		return res
	}
	serial := mk(1)
	for _, workers := range []int{3, 8} {
		par := mk(workers)
		if par.Digest != serial.Digest {
			t.Fatalf("parallel=%d digest %#x, serial %#x", workers, par.Digest, serial.Digest)
		}
		if par.Boundaries != serial.Boundaries || len(par.Points) != len(serial.Points) {
			t.Fatalf("parallel=%d shape differs: %d/%d boundaries, %d/%d points",
				workers, par.Boundaries, serial.Boundaries, len(par.Points), len(serial.Points))
		}
		for i := range par.Points {
			if par.Points[i].At != serial.Points[i].At {
				t.Fatalf("point %d crashes at %v parallel vs %v serial", i, par.Points[i].At, serial.Points[i].At)
			}
		}
	}
}

// TestCrashSnapshotMatchesFromBoot: the fork-based fast path (trials
// fork from the segment-boundary snapshot nearest their crash point)
// must reproduce the from-boot sweep exactly — same boundaries, same
// crash instants, same audit findings, same digest — serially and
// with trials forking concurrently from shared snapshots.
func TestCrashSnapshotMatchesFromBoot(t *testing.T) {
	mk := func(snapshot bool, workers int) CrashResult {
		res, err := CrashEnumerate(CrashConfig{
			Plan:      &fault.Plan{Seed: 42, TornWrites: true},
			MaxPoints: 8,
			Parallel:  workers,
			Snapshot:  snapshot,
		})
		if err != nil {
			t.Fatalf("snapshot=%v parallel=%d: %v", snapshot, workers, err)
		}
		return res
	}
	ref := mk(false, 1)
	if ref.Violations() != 0 {
		t.Fatalf("from-boot sweep: %d crash points failed recovery", ref.Violations())
	}
	for _, workers := range []int{1, 4} {
		got := mk(true, workers)
		if got.Digest != ref.Digest || got.Boundaries != ref.Boundaries || len(got.Points) != len(ref.Points) {
			t.Fatalf("snapshot parallel=%d: digest %#x boundaries %d points %d, from-boot digest %#x boundaries %d points %d",
				workers, got.Digest, got.Boundaries, len(got.Points), ref.Digest, ref.Boundaries, len(ref.Points))
		}
	}
}
