package workload

import (
	"errors"
	"fmt"
	"sort"

	"xok/internal/apps"
	"xok/internal/cffs"
	"xok/internal/fault"
	"xok/internal/machine"
	"xok/internal/parallel"
	"xok/internal/sim"
	"xok/internal/unix"
)

// Crash-point enumeration (Section 4.4): the paper's recovery story is
// that XN's on-disk structures are consistent enough after ANY crash
// that a reachability scan rebuilds the free map and C-FFS needs no
// ordered cleanup. The harness tests that claim systematically instead
// of at one arbitrary instant: a probe run of the MAB file workload
// records every synchronous-write completion, then the workload is
// re-run once per sampled boundary, power is cut one cycle BEFORE the
// write completes (so the fault plan can tear the in-flight transfer),
// and the surviving image must remount, pass fsck, and satisfy XN's
// ownership invariants. Because every fault decision comes from the
// plan's seeded streams, two sweeps with the same plan produce
// bit-identical outcome digests.

// CrashConfig parameterizes a crash-enumeration sweep.
type CrashConfig struct {
	// Plan is the fault plan template applied to every run (cloned per
	// machine so consumed stream state never leaks between runs). Nil
	// defaults to seed 1 with torn writes armed.
	Plan *fault.Plan

	// MaxPoints caps the number of crash points (0 = 48). Boundaries
	// beyond the cap are stride-sampled evenly across the workload.
	MaxPoints int

	// DiskBlocks sizes the volume (0 = 32768 blocks = 128 MB — small
	// keeps the per-point remounts fast).
	DiskBlocks int64

	// Parallel bounds the worker pool for the per-point trials; <= 1
	// runs them serially. Every trial boots its own machine under its
	// own plan clone, so trials are independent; results keep boundary
	// order, and the outcome digest is identical at any worker count.
	Parallel int

	// Snapshot turns on the fork-based fast path: the probe run leaves
	// a machine snapshot at every workload segment boundary, and each
	// crash trial forks from the snapshot nearest below its crash
	// point instead of re-running the workload from boot. Replay
	// equivalence (forks continue bit-identically) guarantees the
	// boundary list, per-point audits and outcome digest are the same
	// with the flag on or off — only host wall-clock changes.
	Snapshot bool
}

// CrashPoint is one enumerated crash trial.
type CrashPoint struct {
	At         sim.Time // instant power was cut
	Violations []string // recovery audit findings (empty = clean)
}

// CrashResult summarizes a sweep.
type CrashResult struct {
	System     string
	Boundaries int          // write-completion boundaries observed
	Points     []CrashPoint // one per sampled crash instant
	Digest     uint64       // FNV-1a over every per-point outcome
}

// Violations counts crash points that failed the recovery audit.
func (r CrashResult) Violations() int {
	n := 0
	for _, pt := range r.Points {
		if len(pt.Violations) > 0 {
			n++
		}
	}
	return n
}

// crashSegments is the MAB file activity cut into quiescent segments
// (one process each, machine drained between): staging, the five
// phases, and a final sync. Power can be cut at any instant — the
// crash trial runs whole segments up to the one containing the crash
// point, then cuts power mid-segment. Segment boundaries are also
// where the fork fast path snapshots: goroutine stacks cannot be
// captured, so a snapshot needs a drained machine.
func crashSegments(spec apps.TreeSpec) []mabSegment {
	return append(mabSegmentList(spec), mabSegment{
		name: "crash-sync",
		body: func(p unix.Proc) error { return p.Sync() },
	})
}

// CrashEnumerate runs the sweep on a Xok/ExOS machine.
func CrashEnumerate(cfg CrashConfig) (CrashResult, error) {
	plan := cfg.Plan
	if plan == nil {
		plan = &fault.Plan{Seed: 1, TornWrites: true}
	}
	if cfg.MaxPoints == 0 {
		cfg.MaxPoints = 48
	}
	if cfg.DiskBlocks == 0 {
		cfg.DiskBlocks = 32768
	}
	if cfg.Parallel <= 1 {
		cfg.Parallel = 1 // zero value = serial; never auto-widen
	}
	boot := func() (Machine, *fault.Plan) {
		p := plan.Clone()
		m := machine.MustNew(machine.Config{
			Personality: machine.XokExOS,
			DiskBlocks:  cfg.DiskBlocks,
			MemPages:    4096,
			Faults:      p,
		})
		// Aggressive flush-behind: the workload emits many small
		// synchronous writes instead of a few giant batches, giving the
		// sweep dense crash-point coverage.
		m.(machine.Xok).S.X.FlushBehind = 16
		return m, p
	}

	// Probe run: record every write-completion boundary while the
	// workload runs to completion, segment by segment. segStarts[i] is
	// the virtual time segment i began at; with Snapshot on, snaps[i]
	// freezes the machine at that same instant, so a crash trial can
	// fork straight to the start of the segment containing its crash
	// point.
	spec := mabTree()
	segs := crashSegments(spec)
	probe, pp := boot()
	var boundaries []sim.Time
	pp.ObserveWrites(func(at sim.Time, block int64, count int) {
		if n := len(boundaries); n == 0 || boundaries[n-1] != at {
			boundaries = append(boundaries, at)
		}
	})
	segStarts := make([]sim.Time, len(segs))
	var snaps []*machine.Snapshot
	if cfg.Snapshot {
		snaps = make([]*machine.Snapshot, len(segs))
		defer func() {
			for _, sn := range snaps {
				if sn != nil {
					sn.Release()
				}
			}
		}()
	}
	var werr error
	for i, seg := range segs {
		segStarts[i] = probe.Now()
		if cfg.Snapshot {
			sn, err := probe.Snapshot()
			if err != nil {
				probe.Close()
				return CrashResult{}, fmt.Errorf("crash probe snapshot: %w", err)
			}
			snaps[i] = sn
		}
		exec(probe, seg.name, seg.body, &werr)
		if werr != nil {
			probe.Close()
			return CrashResult{}, fmt.Errorf("crash workload: %w", werr)
		}
	}
	probeName := probe.Name()
	probe.Close()
	if len(boundaries) == 0 {
		return CrashResult{}, errors.New("crash workload produced no write boundaries")
	}
	res := CrashResult{System: probeName, Boundaries: len(boundaries)}

	pts := boundaries
	if len(pts) > cfg.MaxPoints {
		stride := float64(len(pts)) / float64(cfg.MaxPoints)
		sampled := make([]sim.Time, 0, cfg.MaxPoints)
		for i := 0; i < cfg.MaxPoints; i++ {
			sampled = append(sampled, pts[int(float64(i)*stride)])
		}
		pts = sampled
	}

	res.Points = parallel.Map(cfg.Parallel, len(pts), func(i int) CrashPoint {
		// One cycle before the completion event: the write is still
		// in flight, so a torn-writes plan tears it in the image.
		at := pts[i] - 1
		// The segment the crash lands in: the last one starting at or
		// before the crash instant.
		k := sort.Search(len(segStarts), func(j int) bool { return segStarts[j] > at }) - 1
		if k < 0 {
			k = 0
		}
		var m Machine
		if cfg.Snapshot {
			// Fork to the start of segment k. Concurrent trials fork from
			// one snapshot safely: it is read-only, pages and blocks are
			// copy-on-write.
			m = machine.Fork(snaps[k])
		} else {
			var serr error
			m, _ = boot()
			for _, seg := range segs[:k] {
				exec(m, seg.name, seg.body, &serr)
			}
			_ = serr // the probe already validated the workload
		}
		m.SpawnProc(segs[k].name, 0, func(p unix.Proc) { _ = segs[k].body(p) })
		img := m.Crash(at)
		// AuditImage consumes img; Close recycles the crashed machine's
		// buffers for the next trial's boot.
		viols := cffs.AuditImage(img, cfg.DiskBlocks, "cffs", cffs.DefaultConfig())
		m.Close()
		return CrashPoint{At: at, Violations: viols}
	})

	// Outcome digest (FNV-1a): equal plans must yield equal digests.
	h := uint64(14695981039346656037)
	mix := func(s string) {
		for i := 0; i < len(s); i++ {
			h = (h ^ uint64(s[i])) * 1099511628211
		}
	}
	for _, pt := range res.Points {
		mix(fmt.Sprintf("%d:", pt.At))
		for _, v := range pt.Violations {
			mix(v)
			mix(";")
		}
		mix("\n")
	}
	res.Digest = h
	return res, nil
}
