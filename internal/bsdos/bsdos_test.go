package bsdos

import (
	"testing"

	"xok/internal/ostest"
	"xok/internal/sim"
	"xok/internal/unix"
)

func runner(v Variant) (ostest.RunFunc, *System) {
	s := Boot(v, Config{})
	return func(main func(unix.Proc)) {
		s.Spawn("test", 0, main)
		s.Run()
	}, s
}

func TestFileOpsConformanceAllVariants(t *testing.T) {
	for _, v := range []Variant{FreeBSD, OpenBSD, OpenBSDCFFS} {
		run, _ := runner(v)
		if err := ostest.CheckFileOps(v.String(), run); err != nil {
			t.Errorf("%v: %v", v, err)
		}
	}
}

func TestPipeConformance(t *testing.T) {
	run, _ := runner(OpenBSD)
	if err := ostest.CheckPipe(run); err != nil {
		t.Fatal(err)
	}
}

func TestGetpidTraps(t *testing.T) {
	// Section 7.1: getpid = 270 cycles on OpenBSD (a kernel crossing).
	run, s := runner(OpenBSD)
	sysBefore := s.Stats().Get(sim.CtrSyscalls)
	cost := ostest.GetpidCost(run)
	if cost < 240 || cost > 300 {
		t.Fatalf("getpid = %d cycles, want ~270", cost)
	}
	if s.Stats().Get(sim.CtrSyscalls)-sysBefore < 2000 {
		t.Fatal("getpid did not trap")
	}
}

func TestForkCheaperThanExOS(t *testing.T) {
	// Section 6.2: BSD fork < 1 ms (ExOS's is 6 ms).
	run, _ := runner(FreeBSD)
	cost := ostest.ForkCost(run)
	if cost > sim.FromMillis(4) {
		t.Fatalf("fork+exec+wait = %v, want < 4ms", cost)
	}
}

func TestEveryFileOpTraps(t *testing.T) {
	run, s := runner(FreeBSD)
	before := s.Stats().Get(sim.CtrSyscalls)
	run(func(p unix.Proc) {
		fd, err := p.Create("/f", 6)
		if err != nil {
			t.Error(err)
			return
		}
		buf := make([]byte, 100)
		p.Write(fd, buf)
		p.Seek(fd, 0, unix.SeekSet)
		p.Read(fd, buf)
		p.Close(fd)
		p.Stat("/f")
		p.Unlink("/f")
	})
	if got := s.Stats().Get(sim.CtrSyscalls) - before; got < 7 {
		t.Fatalf("syscalls = %d, want >= 7 (one per operation)", got)
	}
}

func TestOpenBSDCacheSmallerThanFreeBSD(t *testing.T) {
	sf := Boot(FreeBSD, Config{})
	so := Boot(OpenBSD, Config{})
	if sf.X.MaxCachePages != 0 {
		t.Fatal("FreeBSD cache should be unified (uncapped)")
	}
	if so.X.MaxCachePages == 0 || so.X.MaxCachePages > 4000 {
		t.Fatalf("OpenBSD cache cap = %d, want small", so.X.MaxCachePages)
	}
}

func TestVariantFSProfiles(t *testing.T) {
	// FreeBSD/OpenBSD run FFS (sync metadata); OpenBSD/C-FFS runs the
	// co-locating profile.
	f := Boot(FreeBSD, Config{})
	if f.FS.Cfg.EmbeddedInodes || !f.FS.Cfg.SyncMeta {
		t.Fatalf("FreeBSD profile = %+v", f.FS.Cfg)
	}
	c := Boot(OpenBSDCFFS, Config{})
	if !c.FS.Cfg.EmbeddedInodes || c.FS.Cfg.SyncMeta {
		t.Fatalf("OpenBSD/C-FFS profile = %+v", c.FS.Cfg)
	}
}

func TestVariantString(t *testing.T) {
	if FreeBSD.String() != "FreeBSD" || OpenBSDCFFS.String() != "OpenBSD/C-FFS" {
		t.Fatal("variant names wrong")
	}
}
