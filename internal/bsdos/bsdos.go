// Package bsdos models the two monolithic 4.4BSD systems the paper
// compares against (FreeBSD 2.2.2 and OpenBSD 2.1), plus the
// OpenBSD/C-FFS variant (Costa Sapuntzakis's in-kernel port of C-FFS,
// Section 6).
//
// The same application programs run here as on ExOS, but every UNIX
// call is a kernel trap, and the file systems run inside the kernel:
//
//   - FreeBSD: native FFS (split inodes, no co-location, synchronous
//     metadata writes) with a unified buffer cache spanning memory;
//   - OpenBSD: native FFS with a small, non-unified buffer cache —
//     the property the paper credits for FreeBSD beating OpenBSD
//     under load (Section 8);
//   - OpenBSD/C-FFS: the C-FFS structural policies inside the OpenBSD
//     kernel.
//
// The block-bookkeeping substrate is shared with the exokernel build
// (internal/xn in FreeCost mode): here it stands in for ordinary
// in-kernel file system code, with no protection-boundary charging.
// What differs from Xok/ExOS is exactly what differed in the paper:
// kernel crossings on every call, in-kernel pipe machinery, FFS
// structure, and buffer cache architecture.
package bsdos

import (
	"fmt"

	"xok/internal/cap"
	"xok/internal/cffs"
	"xok/internal/fault"
	"xok/internal/kernel"
	"xok/internal/sim"
	"xok/internal/trace"
	"xok/internal/unix"
	"xok/internal/xn"
)

// Variant selects the modelled system.
type Variant int

// The three BSD configurations from the paper's evaluation.
const (
	FreeBSD Variant = iota
	OpenBSD
	OpenBSDCFFS
)

// String names the variant as the paper does.
func (v Variant) String() string {
	switch v {
	case FreeBSD:
		return "FreeBSD"
	case OpenBSD:
		return "OpenBSD"
	case OpenBSDCFFS:
		return "OpenBSD/C-FFS"
	}
	return fmt.Sprintf("Variant(%d)", int(v))
}

// openBSDCachePages is the small, non-unified buffer cache (OpenBSD
// 2.1 dedicated only a fixed few-MB buffer cache to file data, unlike
// FreeBSD's unified page cache — the difference Section 8 credits for
// FreeBSD beating OpenBSD under load).
const openBSDCachePages = 800

// Config sizes the machine.
type Config struct {
	DiskBlocks int64
	MemPages   int

	// Spindles > 1 builds the volume as a RAID-0 stripe set of that
	// many disks, StripeUnit blocks per unit (see kernel.Config).
	Spindles   int
	StripeUnit int64

	// Trace and Faults are handed straight to the kernel: the
	// observability sink and the deterministic fault plan (both nil by
	// default).
	Trace  *trace.Tracer
	Faults *fault.Plan

	// Eng attaches the machine to a shared event engine (nil = build a
	// private one); see kernel.Config.Eng.
	Eng *sim.Engine
}

// System is one booted BSD machine.
type System struct {
	K       *kernel.Kernel
	X       *xn.XN
	FS      *cffs.FS
	Variant Variant

	// FSCfg is the structural profile the file system was formatted
	// with (FFS or C-FFS), kept for forensic remounts (cffs.AuditImage
	// needs the same profile to re-attach the image).
	FSCfg cffs.Config

	nextPid int
}

// Boot builds the machine and formats its file system.
func Boot(v Variant, cfg Config) *System {
	if cfg.DiskBlocks == 0 {
		cfg.DiskBlocks = 1 << 20
	}
	if cfg.MemPages == 0 {
		cfg.MemPages = 16384
	}
	k := kernel.New(kernel.Config{
		Name:       v.String(),
		TrapCost:   sim.CostTrapBSD,
		MemPages:   cfg.MemPages,
		DiskSize:   cfg.DiskBlocks,
		Spindles:   cfg.Spindles,
		StripeUnit: cfg.StripeUnit,
		Trace:      cfg.Trace,
		Faults:     cfg.Faults,
		Eng:        cfg.Eng,
	})
	x := xn.New(k)
	x.FreeCost = true   // in-kernel FS: no protection-boundary charging
	x.FlushBehind = 512 // the update daemon keeps dirty data bounded
	if v == OpenBSD || v == OpenBSDCFFS {
		x.MaxCachePages = openBSDCachePages
	}
	fsCfg := cffs.FFSConfig()
	if v == OpenBSDCFFS {
		fsCfg = cffs.DefaultConfig()
	}
	s := &System{K: k, X: x, Variant: v, FSCfg: fsCfg, nextPid: 1}
	k.Spawn("bsd-mkfs", func(e *kernel.Env) {
		e.Creds = cap.UnixCreds(0)
		fs, err := cffs.Mkfs(e, x, "ffs", fsCfg)
		if err != nil {
			panic("bsdos: mkfs failed: " + err.Error())
		}
		s.FS = fs
	})
	k.Run()
	return s
}

// Run drains the machine.
func (s *System) Run() { s.K.Run() }

// Now returns virtual time.
func (s *System) Now() sim.Time { return s.K.Now() }

// Stats exposes the machine counters.
func (s *System) Stats() *sim.Stats { return s.K.Stats }

// Spawn starts a top-level UNIX process.
func (s *System) Spawn(name string, uid uint16, main func(unix.Proc)) *Handle {
	pid := s.nextPid
	s.nextPid++
	h := &Handle{}
	h.env = s.K.Spawn(name, func(e *kernel.Env) {
		e.Creds = cap.UnixCreds(uid)
		p := &Proc{s: s, e: e, pid: pid, uid: uid, fds: make(map[unix.FD]*file)}
		main(p)
		p.closeAll()
	})
	return h
}

// Handle identifies a spawned process.
type Handle struct{ env *kernel.Env }

// Env exposes the underlying environment.
func (h *Handle) Env() *kernel.Env { return h.env }

// Proc is one UNIX process on a BSD kernel: every call below traps.
type Proc struct {
	s   *System
	e   *kernel.Env
	pid int
	uid uint16

	fds    map[unix.FD]*file
	nextFD unix.FD
}

type fileKind uint8

const (
	kindFile fileKind = iota
	kindPipeR
	kindPipeW
)

type file struct {
	kind fileKind
	ref  cffs.Ref
	path string
	off  int64
	pipe *bsdPipe
}

// ErrBadFD reports an unknown descriptor — the canonical unix value,
// identical to what ExOS returns for the same misuse.
var ErrBadFD = unix.ErrBadFD

var _ unix.Proc = (*Proc)(nil)

// Env exposes the environment.
func (p *Proc) Env() *kernel.Env { return p.e }

// Getpid traps into the kernel (270 cycles on OpenBSD, Section 7.1).
func (p *Proc) Getpid() int {
	p.e.Syscall(sim.CostGetpidWork)
	return p.pid
}

// UID returns the process owner.
func (p *Proc) UID() uint16 { return p.uid }

// Compute charges application CPU time.
func (p *Proc) Compute(c sim.Time) { p.e.Use(c) }

// Now returns virtual time.
func (p *Proc) Now() sim.Time { return p.s.K.Now() }

func (p *Proc) allocFD(f *file) unix.FD {
	fd := p.nextFD
	p.nextFD++
	p.fds[fd] = f
	return fd
}

func (p *Proc) lookupFD(fd unix.FD) (*file, error) {
	f, ok := p.fds[fd]
	if !ok {
		return nil, ErrBadFD
	}
	return f, nil
}

// Open traps and resolves the path in the kernel.
func (p *Proc) Open(path string) (unix.FD, error) {
	p.e.Syscall(400) // trap + namei
	ref, in, err := p.s.FS.Lookup(p.e, path)
	if err != nil {
		return -1, err
	}
	if in.Kind == cffs.KindDir {
		return -1, cffs.ErrIsDir
	}
	return p.allocFD(&file{kind: kindFile, ref: ref, path: path}), nil
}

// Create traps, truncating any existing file.
func (p *Proc) Create(path string, mode uint32) (unix.FD, error) {
	p.e.Syscall(600)
	if _, _, err := p.s.FS.Lookup(p.e, path); err == nil {
		if err := p.s.FS.Unlink(p.e, path); err != nil {
			return -1, err
		}
	}
	ref, err := p.s.FS.Create(p.e, path, uint32(p.uid), uint32(p.uid), mode)
	if err != nil {
		return -1, err
	}
	return p.allocFD(&file{kind: kindFile, ref: ref, path: path}), nil
}

// Read traps and copies through the kernel buffer cache.
func (p *Proc) Read(fd unix.FD, buf []byte) (int, error) {
	f, err := p.lookupFD(fd)
	if err != nil {
		return 0, err
	}
	p.e.Syscall(150)
	switch f.kind {
	case kindPipeR:
		return f.pipe.read(p.e, buf)
	case kindPipeW:
		return 0, unix.ErrBadFD // read from write end
	}
	n, err := p.s.FS.ReadAt(p.e, f.ref, f.off, buf)
	f.off += int64(n)
	return n, err
}

// Write traps and copies through the kernel buffer cache.
func (p *Proc) Write(fd unix.FD, buf []byte) (int, error) {
	f, err := p.lookupFD(fd)
	if err != nil {
		return 0, err
	}
	p.e.Syscall(150)
	switch f.kind {
	case kindPipeW:
		return f.pipe.write(p.e, buf)
	case kindPipeR:
		return 0, unix.ErrBadFD // write to read end
	}
	n, err := p.s.FS.WriteAt(p.e, f.ref, f.off, buf)
	f.off += int64(n)
	return n, err
}

// Seek traps.
func (p *Proc) Seek(fd unix.FD, off int64, whence int) (int64, error) {
	f, err := p.lookupFD(fd)
	if err != nil {
		return 0, err
	}
	if f.kind != kindFile {
		return 0, unix.ErrSeekPipe
	}
	p.e.Syscall(80)
	pos := f.off
	switch whence {
	case unix.SeekSet:
		pos = off
	case unix.SeekCur:
		pos += off
	case unix.SeekEnd:
		// Follow the descriptor's inode, not its path (see exos.Seek).
		in, err := p.s.FS.RefInode(p.e, f.ref)
		if err != nil {
			return 0, err
		}
		pos = int64(in.Size) + off
	default:
		return 0, unix.ErrInval
	}
	if pos < 0 {
		// A negative offset must not become the descriptor position:
		// a later read would slice a page at a negative index.
		return 0, unix.ErrInval
	}
	f.off = pos
	return f.off, nil
}

// Close traps.
func (p *Proc) Close(fd unix.FD) error {
	f, err := p.lookupFD(fd)
	if err != nil {
		return err
	}
	p.e.Syscall(100)
	delete(p.fds, fd)
	if f.pipe != nil {
		f.pipe.closeEnd(p.e, f.kind == kindPipeW)
	}
	return nil
}

// Stat traps.
func (p *Proc) Stat(path string) (unix.Stat, error) {
	p.e.Syscall(300)
	in, err := p.s.FS.Stat(p.e, path)
	if err != nil {
		return unix.Stat{}, err
	}
	return unix.Stat{
		Size: int64(in.Size), Mode: in.Mode, UID: in.UID, GID: in.GID,
		MTime: in.MTime, IsDir: in.Kind == cffs.KindDir,
	}, nil
}

// Mkdir traps.
func (p *Proc) Mkdir(path string, mode uint32) error {
	p.e.Syscall(600)
	return p.s.FS.Mkdir(p.e, path, uint32(p.uid), uint32(p.uid), mode)
}

// Readdir traps (getdents).
func (p *Proc) Readdir(path string) ([]unix.DirEnt, error) {
	p.e.Syscall(400)
	ents, err := p.s.FS.Readdir(p.e, path)
	if err != nil {
		return nil, err
	}
	out := make([]unix.DirEnt, len(ents))
	for i, in := range ents {
		out[i] = unix.DirEnt{Name: in.Name, IsDir: in.Kind == cffs.KindDir,
			IsLink: in.Kind == cffs.KindLink, Size: int64(in.Size)}
	}
	return out, nil
}

// Unlink traps.
func (p *Proc) Unlink(path string) error {
	p.e.Syscall(500)
	return p.s.FS.Unlink(p.e, path)
}

// Rmdir traps.
func (p *Proc) Rmdir(path string) error {
	p.e.Syscall(500)
	return p.s.FS.Rmdir(p.e, path)
}

// Rename traps.
func (p *Proc) Rename(oldPath, newPath string) error {
	p.e.Syscall(600)
	return p.s.FS.Rename(p.e, oldPath, newPath)
}

// Chmod traps.
func (p *Proc) Chmod(path string, mode uint32) error {
	p.e.Syscall(500)
	return p.s.FS.Chmod(p.e, path, mode)
}

// Symlink traps.
func (p *Proc) Symlink(target, path string) error {
	p.e.Syscall(600)
	return p.s.FS.Symlink(p.e, target, path, uint32(p.uid), uint32(p.uid))
}

// Sync traps.
func (p *Proc) Sync() error {
	p.e.Syscall(200)
	return p.s.FS.Sync(p.e)
}

// Pipe traps and allocates the kernel pipe object.
func (p *Proc) Pipe() (unix.FD, unix.FD, error) {
	p.e.Syscall(800)
	pi := &bsdPipe{s: p.s, buf: make([]byte, pipeCapacity), readers: 1, writers: 1}
	r := p.allocFD(&file{kind: kindPipeR, pipe: pi})
	w := p.allocFD(&file{kind: kindPipeW, pipe: pi})
	return r, w, nil
}

// Spawn is fork+exec: "less than one millisecond on OpenBSD"
// (Section 6.2) plus the exec overlay.
func (p *Proc) Spawn(name string, f func(unix.Proc)) (unix.Handle, error) {
	p.s.K.Stats.Inc(sim.CtrForks)
	p.e.Syscall(0)
	p.e.Use(sim.CostForkBSD + sim.CostExec)
	pid := p.s.nextPid
	p.s.nextPid++
	uid := p.uid
	s := p.s
	// Fork semantics: the child inherits the parent's descriptors.
	inherited := make(map[unix.FD]*file, len(p.fds))
	for fd, fl := range p.fds {
		inherited[fd] = fl
		if fl.pipe != nil {
			fl.pipe.addRef(fl.kind == kindPipeW)
		}
	}
	nextFD := p.nextFD
	env := s.K.Spawn(name, func(e *kernel.Env) {
		e.Creds = cap.UnixCreds(uid)
		child := &Proc{s: s, e: e, pid: pid, uid: uid, fds: inherited, nextFD: nextFD}
		f(child)
		child.closeAll()
	})
	return &procHandle{parent: p, env: env}, nil
}

// closeAll releases every descriptor at process exit.
func (p *Proc) closeAll() {
	for fd := unix.FD(0); fd < p.nextFD; fd++ {
		f, ok := p.fds[fd]
		if !ok {
			continue
		}
		delete(p.fds, fd)
		if f.pipe != nil {
			f.pipe.closeEnd(p.e, f.kind == kindPipeW)
		}
	}
}

type procHandle struct {
	parent *Proc
	env    *kernel.Env
}

// Wait blocks until the child exits.
func (h *procHandle) Wait() {
	h.parent.e.Syscall(200)
	h.parent.e.WaitFor(h.env)
}

// Env exposes the child's environment.
func (h *procHandle) Env() *kernel.Env { return h.env }
