package bsdos

import (
	"fmt"

	"xok/internal/cffs"
	"xok/internal/kernel"
	"xok/internal/xn"
)

// Snapshot is a frozen BSD machine: kernel state, the in-kernel file
// system substrate's bookkeeping, the file system control state, and
// the variant/profile.
type Snapshot struct {
	k       *kernel.Snapshot
	x       *xn.Snapshot
	fs      *cffs.Frozen
	variant Variant
	fsCfg   cffs.Config
	nextPid int
}

// Snapshot captures the machine's state. Fails unless the machine is
// quiescent (no live processes, event queue drained).
func (s *System) Snapshot() (*Snapshot, error) {
	ks, err := s.K.Snapshot()
	if err != nil {
		return nil, err
	}
	xs, err := s.X.Snapshot()
	if err != nil {
		return nil, err
	}
	if s.FS == nil {
		return nil, fmt.Errorf("bsdos: snapshot before mkfs completed")
	}
	return &Snapshot{
		k:       ks,
		x:       xs,
		fs:      s.FS.Freeze(),
		variant: s.Variant,
		fsCfg:   s.FSCfg,
		nextPid: s.nextPid,
	}, nil
}

// Fork builds a new machine continuing from the snapshot. Safe to call
// concurrently on one snapshot.
func Fork(sn *Snapshot) *System {
	k := kernel.Fork(sn.k)
	x := xn.ForkXN(sn.x, k)
	return &System{
		K:       k,
		X:       x,
		FS:      sn.fs.Thaw(x),
		Variant: sn.variant,
		FSCfg:   sn.fsCfg,
		nextPid: sn.nextPid,
	}
}

// Release returns the snapshot's frozen buffers to the shared pool.
// Only legal once the snapshotted machine and every fork are closed.
func (sn *Snapshot) Release() {
	if sn.k != nil {
		sn.k.Release()
		sn.k = nil
	}
}
