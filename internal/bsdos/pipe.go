package bsdos

import (
	"xok/internal/kernel"
	"xok/internal/sim"
	"xok/internal/unix"
)

// bsdPipe is the in-kernel 4.4BSD pipe: every transfer is a system
// call that copies between the user buffer and a kernel buffer, and
// blocking goes through the kernel sleep queue (tsleep/wakeup), which
// costs a full reschedule. Table 2 reports 34 us / 160 us for the 1-B
// and 8-KB latencies on OpenBSD.
const pipeCapacity = 16384

// costPipeWakeup is the tsleep/wakeup + scheduler-queue overhead per
// blocking handoff, beyond the generic context switch.
const costPipeWakeup = 8 * sim.Microsecond

// ErrPipeClosed reports a write with no reader (the canonical
// unix.ErrPipe, shared across personalities).
var ErrPipeClosed = unix.ErrPipe

type bsdPipe struct {
	s *System

	buf        []byte
	count      int64
	rpos, wpos int

	readerWaiting *kernel.Env
	writerWaiting *kernel.Env
	readers       int
	writers       int
}

func (p *bsdPipe) rClosed() bool { return p.readers == 0 }
func (p *bsdPipe) wClosed() bool { return p.writers == 0 }

// addRef notes a forked descriptor sharing this end.
func (p *bsdPipe) addRef(writeEnd bool) {
	if writeEnd {
		p.writers++
	} else {
		p.readers++
	}
}

func (p *bsdPipe) moveBytes(e *kernel.Env, n int) {
	e.Use(sim.CopyCost(n))
	p.s.K.Stats.Add(sim.CtrBytesCopied, int64(n))
}

func (p *bsdPipe) write(e *kernel.Env, data []byte) (int, error) {
	n := 0
	for n < len(data) {
		if p.rClosed() {
			return n, ErrPipeClosed
		}
		space := pipeCapacity - int(p.count)
		if space == 0 {
			p.writerWaiting = e
			e.Use(costPipeWakeup)
			if r := p.readerWaiting; r != nil {
				p.readerWaiting = nil
				p.s.K.Wake(r)
			}
			e.Block()
			continue
		}
		chunk := len(data) - n
		if chunk > space {
			chunk = space
		}
		// Copy user -> kernel buffer.
		for c := chunk; c > 0; {
			seg := c
			if p.wpos+seg > pipeCapacity {
				seg = pipeCapacity - p.wpos
			}
			copy(p.buf[p.wpos:], data[n:n+seg])
			p.wpos = (p.wpos + seg) % pipeCapacity
			c -= seg
			n += seg
		}
		p.moveBytes(e, chunk)
		p.count += int64(chunk)
	}
	if r := p.readerWaiting; r != nil && p.count > 0 {
		p.readerWaiting = nil
		e.Use(costPipeWakeup)
		p.s.K.Wake(r)
	}
	return n, nil
}

func (p *bsdPipe) read(e *kernel.Env, buf []byte) (int, error) {
	for p.count == 0 {
		if p.wClosed() {
			return 0, nil
		}
		p.readerWaiting = e
		e.Use(costPipeWakeup)
		if w := p.writerWaiting; w != nil {
			p.writerWaiting = nil
			p.s.K.Wake(w)
		}
		e.Block()
	}
	chunk := len(buf)
	if int64(chunk) > p.count {
		chunk = int(p.count)
	}
	// Copy kernel buffer -> user.
	for c, off := chunk, 0; c > 0; {
		seg := c
		if p.rpos+seg > pipeCapacity {
			seg = pipeCapacity - p.rpos
		}
		copy(buf[off:off+seg], p.buf[p.rpos:])
		p.rpos = (p.rpos + seg) % pipeCapacity
		c -= seg
		off += seg
	}
	p.moveBytes(e, chunk)
	p.count -= int64(chunk)
	if w := p.writerWaiting; w != nil {
		p.writerWaiting = nil
		e.Use(costPipeWakeup)
		p.s.K.Wake(w)
	}
	return chunk, nil
}

func (p *bsdPipe) closeEnd(e *kernel.Env, writeEnd bool) {
	if writeEnd {
		if p.writers > 0 {
			p.writers--
		}
		if p.wClosed() {
			if r := p.readerWaiting; r != nil {
				p.readerWaiting = nil
				p.s.K.Wake(r)
			}
		}
	} else {
		if p.readers > 0 {
			p.readers--
		}
		if p.rClosed() {
			if w := p.writerWaiting; w != nil {
				p.writerWaiting = nil
				p.s.K.Wake(w)
			}
		}
	}
}
