// Package bufpool recycles the 4-KB buffers that dominate the
// simulator's heap churn: physical page frames (internal/mem), disk
// media blocks (internal/disk) and crash-image snapshots. One campaign
// of the differential fuzzer boots and discards hundreds of machines;
// without recycling, every boot re-allocates (and the GC re-scans and
// re-frees) tens of thousands of these buffers, and that GC pressure —
// not simulated work — is what serialized the parallel harness.
//
// The pool is a plain sync.Pool, safe for concurrent use from the
// worker goroutines of internal/parallel. Ownership discipline is the
// caller's: a buffer must be Put at most once, and never used after.
// The teardown entry points that honor this are kernel.(*Kernel).
// Release and the Close method of machine.Machine — both only called
// by harnesses that are finished with the whole machine.
package bufpool

import (
	"sync"

	"xok/internal/sim"
)

// Size is the one buffer size the pool handles: sim.PageSize ==
// sim.DiskBlockSize == 4096.
const Size = sim.PageSize

var pool = sync.Pool{
	New: func() any {
		b := make([]byte, Size)
		return &b
	},
}

// Get returns a zeroed Size-byte buffer. Callers that rely on
// fresh-allocation semantics (lazily materialized page frames, disk
// blocks never written) get identical behavior to make([]byte, Size).
func Get() []byte {
	b := *pool.Get().(*[]byte)
	clear(b)
	return b
}

// GetDirty returns a Size-byte buffer with unspecified contents, for
// callers that overwrite the whole buffer anyway (snapshot copies).
func GetDirty() []byte {
	return *pool.Get().(*[]byte)
}

// Put recycles a buffer. Buffers of the wrong size (hand-built test
// images, sub-block slices) are dropped for the GC rather than
// poisoning the pool.
func Put(b []byte) {
	if len(b) != Size {
		return
	}
	pool.Put(&b)
}
