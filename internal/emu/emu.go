// Package emu models the OpenBSD binary emulator of Section 7.1: "Xok
// provides facilities to efficiently reroute specific INT instructions.
// We have used this ability to build a binary emulator for OpenBSD
// applications by capturing the system calls made by emulated OpenBSD
// programs."
//
// The emulator runs in the same address space as the emulated program
// and needs no privilege: each captured OpenBSD system call becomes a
// procedure call into ExOS. That is why "it is possible to run
// emulated programs faster than on their native OS": the trivial
// getpid costs 270 cycles on OpenBSD (a real kernel crossing) but only
// ~100 cycles emulated (INT reroute + procedure call into ExOS, which
// "can omit many expensive checks that UNIX must perform").
package emu

import (
	"xok/internal/exos"
	"xok/internal/sim"
	"xok/internal/unix"
)

// CostReroute is the INT-reroute trampoline: a handful of cycles to
// bounce the trap into the emulator's handler in the same address
// space.
const CostReroute sim.Time = 12

// SupportedCalls mirrors the paper: "it supports 90 of the
// approximately 155 OpenBSD system calls".
const SupportedCalls = 90

// Proc wraps an ExOS process, presenting the OpenBSD system call
// surface. Every call pays the reroute cost and then the ExOS library
// path — no kernel crossing.
type Proc struct {
	P *exos.Proc
}

var _ unix.Proc = (*Proc)(nil)

// Emulate wraps an ExOS process in the emulator.
func Emulate(p *exos.Proc) *Proc { return &Proc{P: p} }

func (m *Proc) reroute() { m.P.Compute(CostReroute) }

// Getpid is the microbenchmark of Section 7.1.
func (m *Proc) Getpid() int { m.reroute(); return m.P.Getpid() }

// UID returns the process owner.
func (m *Proc) UID() uint16 { return m.P.UID() }

// Compute charges CPU (no emulation overhead: user code runs native).
func (m *Proc) Compute(c sim.Time) { m.P.Compute(c) }

// Now returns virtual time.
func (m *Proc) Now() sim.Time { return m.P.Now() }

// Open emulates open(2).
func (m *Proc) Open(path string) (unix.FD, error) { m.reroute(); return m.P.Open(path) }

// Create emulates open(2) with O_CREAT.
func (m *Proc) Create(path string, mode uint32) (unix.FD, error) {
	m.reroute()
	return m.P.Create(path, mode)
}

// Read emulates read(2).
func (m *Proc) Read(fd unix.FD, buf []byte) (int, error) { m.reroute(); return m.P.Read(fd, buf) }

// Write emulates write(2).
func (m *Proc) Write(fd unix.FD, buf []byte) (int, error) { m.reroute(); return m.P.Write(fd, buf) }

// Seek emulates lseek(2).
func (m *Proc) Seek(fd unix.FD, off int64, whence int) (int64, error) {
	m.reroute()
	return m.P.Seek(fd, off, whence)
}

// Close emulates close(2).
func (m *Proc) Close(fd unix.FD) error { m.reroute(); return m.P.Close(fd) }

// Stat emulates stat(2).
func (m *Proc) Stat(path string) (unix.Stat, error) { m.reroute(); return m.P.Stat(path) }

// Mkdir emulates mkdir(2).
func (m *Proc) Mkdir(path string, mode uint32) error { m.reroute(); return m.P.Mkdir(path, mode) }

// Readdir emulates getdents(2).
func (m *Proc) Readdir(path string) ([]unix.DirEnt, error) { m.reroute(); return m.P.Readdir(path) }

// Unlink emulates unlink(2).
func (m *Proc) Unlink(path string) error { m.reroute(); return m.P.Unlink(path) }

// Rmdir emulates rmdir(2).
func (m *Proc) Rmdir(path string) error { m.reroute(); return m.P.Rmdir(path) }

// Rename emulates rename(2).
func (m *Proc) Rename(oldPath, newPath string) error {
	m.reroute()
	return m.P.Rename(oldPath, newPath)
}

// Chmod emulates chmod(2).
func (m *Proc) Chmod(path string, mode uint32) error { m.reroute(); return m.P.Chmod(path, mode) }

// Symlink emulates symlink(2).
func (m *Proc) Symlink(target, path string) error { m.reroute(); return m.P.Symlink(target, path) }

// Sync emulates sync(2).
func (m *Proc) Sync() error { m.reroute(); return m.P.Sync() }

// Pipe emulates pipe(2).
func (m *Proc) Pipe() (unix.FD, unix.FD, error) { m.reroute(); return m.P.Pipe() }

// Spawn emulates fork+execve; the child also runs under the emulator.
func (m *Proc) Spawn(name string, f func(unix.Proc)) (unix.Handle, error) {
	m.reroute()
	return m.P.Spawn(name, func(c unix.Proc) {
		f(Emulate(c.(*exos.Proc)))
	})
}
