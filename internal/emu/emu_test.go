package emu

import (
	"testing"

	"xok/internal/apps"
	"xok/internal/bsdos"
	"xok/internal/exos"
	"xok/internal/ostest"
	"xok/internal/sim"
	"xok/internal/unix"
)

func runEmulated(main func(unix.Proc)) *exos.System {
	s := exos.Boot(exos.Config{})
	s.Spawn("emu", 0, func(p unix.Proc) {
		main(Emulate(p.(*exos.Proc)))
	})
	s.Run()
	return s
}

func TestEmulatedGetpidFasterThanNative(t *testing.T) {
	// Section 7.1: 270 cycles on OpenBSD, ~100 cycles emulated.
	var emulated sim.Time
	runEmulated(func(p unix.Proc) {
		const n = 1000
		p.Getpid()
		start := p.Now()
		for i := 0; i < n; i++ {
			p.Getpid()
		}
		emulated = (p.Now() - start) / n
	})

	bsd := bsdos.Boot(bsdos.OpenBSD, bsdos.Config{})
	native := ostest.GetpidCost(func(main func(unix.Proc)) {
		bsd.Spawn("native", 0, main)
		bsd.Run()
	})

	t.Logf("getpid: emulated on Xok/ExOS = %d cycles, native OpenBSD = %d cycles",
		emulated, native)
	if emulated >= native {
		t.Errorf("emulated getpid (%d) should beat native OpenBSD (%d)", emulated, native)
	}
	if emulated < 90 || emulated > 140 {
		t.Errorf("emulated getpid = %d cycles, want ~100-112", emulated)
	}
	if native < 240 || native > 300 {
		t.Errorf("native getpid = %d cycles, want ~270", native)
	}
}

func TestEmulatedProgramsRunCorrectly(t *testing.T) {
	// "It has been able to execute large programs such as Mosaic": a
	// real application (cp over a tree) must behave identically under
	// emulation.
	runEmulated(func(p unix.Proc) {
		spec := apps.TreeSpec{
			Dirs:  []string{"d"},
			Files: []apps.FileSpec{{Path: "d/a", Size: 20000}, {Path: "d/b", Size: 4096}},
		}
		if err := apps.WriteTree(p, "/src", spec); err != nil {
			t.Errorf("write tree: %v", err)
			return
		}
		if err := apps.CpR(p, "/src", "/dst"); err != nil {
			t.Errorf("cp -r: %v", err)
			return
		}
		differs, err := apps.Diff(p, "/src", "/dst")
		if err != nil || differs {
			t.Errorf("emulated copy wrong: differs=%v err=%v", differs, err)
		}
	})
}

func TestEmulationOverheadFewPercent(t *testing.T) {
	// "Most programs on the emulator run only a few percent slower
	// than the same programs running directly under Xok/ExOS."
	workload := func(p unix.Proc) {
		spec := apps.TreeSpec{Dirs: []string{"d"}}
		for i := 0; i < 10; i++ {
			spec.Files = append(spec.Files, apps.FileSpec{
				Path: "d/f" + string(rune('0'+i)), Size: 30000,
			})
		}
		if err := apps.WriteTree(p, "/t", spec); err != nil {
			t.Error(err)
			return
		}
		if _, err := apps.Grep(p, "/t", "x"); err != nil {
			t.Error(err)
		}
	}

	sNative := exos.Boot(exos.Config{})
	sNative.Spawn("native", 0, workload)
	sNative.Run()
	native := sNative.Now()

	sEmu := runEmulated(workload)
	emulated := sEmu.Now()

	overhead := float64(emulated-native) / float64(native)
	t.Logf("native %v, emulated %v, overhead %.2f%%", native, emulated, overhead*100)
	if overhead < 0 {
		t.Error("emulation cannot be faster than native ExOS")
	}
	if overhead > 0.05 {
		t.Errorf("emulation overhead = %.1f%%, want a few percent", overhead*100)
	}
}

func TestSupportedCallCount(t *testing.T) {
	if SupportedCalls != 90 {
		t.Fatal("paper documents 90 supported calls")
	}
}

func TestEmulatorFullConformance(t *testing.T) {
	// The emulator must pass the same POSIX-surface and pipe checks as
	// the native personalities — 90 supported calls means real
	// programs run unmodified.
	runE := func(main func(unix.Proc)) {
		s := exos.Boot(exos.Config{})
		s.Spawn("emu", 0, func(p unix.Proc) {
			main(Emulate(p.(*exos.Proc)))
		})
		s.Run()
	}
	if err := ostest.CheckFileOps("Xok/ExOS (emulated)", runE); err != nil {
		t.Fatalf("file ops under emulation: %v", err)
	}
	if err := ostest.CheckPipe(runE); err != nil {
		t.Fatalf("pipes under emulation: %v", err)
	}
}
