package exos

import (
	"fmt"

	"xok/internal/cffs"
	"xok/internal/kernel"
	"xok/internal/xn"
)

// Snapshot is a frozen ExOS machine: kernel state (engine clock,
// copy-on-write memory and disk, tracer, fault streams), XN
// bookkeeping, the root file system plus every mount, the process-id
// counter and the build options. Mount-table aliases survive forking:
// each distinct *cffs.FS is frozen once and mounts reference it by
// index, so a file system mounted at two prefixes stays one file
// system in every fork.
type Snapshot struct {
	k       *kernel.Snapshot
	x       *xn.Snapshot
	cfg     Config
	nextPid int

	fss     []*cffs.Frozen // index 0 is the root FS
	mounts  []frozenMount
	tracked []*cffs.FS // the live FS pointers fss was built from (alias lookup)
}

type frozenMount struct {
	prefix string
	fs     int // index into fss
}

// Snapshot captures the machine's state. Fails unless the machine is
// quiescent: every process has exited and the event queue has drained.
func (s *System) Snapshot() (*Snapshot, error) {
	if len(s.procs) != 0 {
		return nil, fmt.Errorf("exos: snapshot with %d live processes", len(s.procs))
	}
	ks, err := s.K.Snapshot()
	if err != nil {
		return nil, err
	}
	xs, err := s.X.Snapshot()
	if err != nil {
		return nil, err
	}
	sn := &Snapshot{k: ks, x: xs, cfg: s.Cfg, nextPid: s.nextPid}
	freeze := func(fs *cffs.FS) int {
		for i, seen := range sn.tracked {
			if seen == fs {
				return i
			}
		}
		sn.tracked = append(sn.tracked, fs)
		sn.fss = append(sn.fss, fs.Freeze())
		return len(sn.fss) - 1
	}
	freeze(s.FS)
	for _, m := range s.mounts {
		sn.mounts = append(sn.mounts, frozenMount{prefix: m.prefix, fs: freeze(m.fs)})
	}
	return sn, nil
}

// Fork builds a new machine continuing from the snapshot. Safe to call
// concurrently on one snapshot.
func Fork(sn *Snapshot) *System {
	k := kernel.Fork(sn.k)
	x := xn.ForkXN(sn.x, k)
	cfg := sn.cfg
	cfg.Trace = k.Trace
	cfg.Faults = k.Faults
	cfg.Eng = nil
	sys := &System{K: k, X: x, Cfg: cfg, nextPid: sn.nextPid, procs: make(map[int]*Proc)}
	fss := make([]*cffs.FS, len(sn.fss))
	for i, fz := range sn.fss {
		fss[i] = fz.Thaw(x)
	}
	sys.FS = fss[0]
	for _, m := range sn.mounts {
		sys.mounts = append(sys.mounts, mount{prefix: m.prefix, fs: fss[m.fs]})
	}
	return sys
}

// Release returns the snapshot's frozen buffers to the shared pool.
// Only legal once the snapshotted machine and every fork are closed.
func (sn *Snapshot) Release() {
	if sn.k != nil {
		sn.k.Release()
		sn.k = nil
	}
}
