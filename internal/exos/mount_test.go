package exos

import (
	"errors"
	"strings"
	"testing"

	"xok/internal/cap"
	"xok/internal/cffs"
	"xok/internal/kernel"
	"xok/internal/unix"
)

func TestMountTable(t *testing.T) {
	s := Boot(Config{})
	// Build a memory-based file system and mount it at /tmp
	// (Section 5.2.1's mount table mapping directories across file
	// systems).
	var memfs *cffs.FS
	s.K.Spawn("mktmp", func(e *kernel.Env) {
		e.Creds = cap.UnixCreds(0)
		var err error
		memfs, err = cffs.Mkfs(e, s.X, "tmpfs", cffs.MemConfig())
		if err != nil {
			t.Error(err)
		}
	})
	s.Run()
	s.Mount("/tmp", memfs)

	s.Spawn("user", 0, func(p unix.Proc) {
		// Files under /tmp land on the memfs; others on the root FS.
		fd, err := p.Create("/tmp/scratch", 6)
		if err != nil {
			t.Errorf("create on mount: %v", err)
			return
		}
		if _, err := p.Write(fd, []byte("temp data")); err != nil {
			t.Error(err)
			return
		}
		p.Close(fd)
		fd2, err := p.Create("/persistent", 6)
		if err != nil {
			t.Error(err)
			return
		}
		p.Close(fd2)

		// The file is visible through the mount...
		if _, err := p.Stat("/tmp/scratch"); err != nil {
			t.Errorf("stat via mount: %v", err)
		}
		// ...lives on the memfs...
		ents, err := p.Readdir("/tmp")
		if err != nil || len(ents) != 1 || ents[0].Name != "scratch" {
			t.Errorf("readdir mount root = %v, %v", ents, err)
		}
		// ...and not on the root file system.
		rootEnts, err := p.Readdir("/")
		if err != nil {
			t.Error(err)
			return
		}
		for _, ent := range rootEnts {
			if ent.Name == "scratch" {
				t.Error("mounted file leaked onto the root FS")
			}
		}
		// Cross-device rename is rejected.
		if err := p.Rename("/tmp/scratch", "/stolen"); err == nil ||
			!strings.Contains(err.Error(), "cross-device") {
			t.Errorf("cross-device rename err = %v", err)
		}
	})
	s.Run()

	// Unmount: /tmp paths fall through to the root FS again.
	s.Unmount("/tmp")
	s.Spawn("after", 0, func(p unix.Proc) {
		if _, err := p.Stat("/tmp/scratch"); !errors.Is(err, cffs.ErrNotFound) {
			t.Errorf("after unmount, stat = %v, want ErrNotFound", err)
		}
	})
	s.Run()
}

func TestLongestPrefixWins(t *testing.T) {
	s := Boot(Config{})
	var fsA, fsB *cffs.FS
	s.K.Spawn("mk", func(e *kernel.Env) {
		e.Creds = cap.UnixCreds(0)
		var err error
		if fsA, err = cffs.Mkfs(e, s.X, "a", cffs.MemConfig()); err != nil {
			t.Error(err)
			return
		}
		if fsB, err = cffs.Mkfs(e, s.X, "b", cffs.MemConfig()); err != nil {
			t.Error(err)
		}
	})
	s.Run()
	s.Mount("/mnt", fsA)
	s.Mount("/mnt/inner", fsB)

	s.Spawn("user", 0, func(p unix.Proc) {
		if fd, err := p.Create("/mnt/outer-file", 6); err != nil {
			t.Error(err)
		} else {
			p.Close(fd)
		}
		if fd, err := p.Create("/mnt/inner/inner-file", 6); err != nil {
			t.Error(err)
		} else {
			p.Close(fd)
		}
		// inner-file must be on fsB's root, not under fsA.
		entsB, err := p.Readdir("/mnt/inner")
		if err != nil || len(entsB) != 1 || entsB[0].Name != "inner-file" {
			t.Errorf("inner mount readdir = %v, %v", entsB, err)
		}
		entsA, err := p.Readdir("/mnt")
		if err != nil || len(entsA) != 1 || entsA[0].Name != "outer-file" {
			t.Errorf("outer mount readdir = %v, %v", entsA, err)
		}
	})
	s.Run()
}
