package exos

import (
	"xok/internal/cap"
	"xok/internal/cffs"
	"xok/internal/kernel"
	"xok/internal/sim"
	"xok/internal/unix"
)

// Proc is one UNIX process under ExOS: unix.Proc implemented as
// library code in the process's own environment.
type Proc struct {
	s   *System
	e   *kernel.Env
	pid int
	uid uint16

	fds    map[unix.FD]*file
	nextFD unix.FD
}

type fileKind uint8

const (
	kindFile fileKind = iota
	kindPipeR
	kindPipeW
)

type file struct {
	kind fileKind
	fs   *cffs.FS
	ref  cffs.Ref
	path string
	off  int64
	pipe *pipe
}

// Errors. The canonical unix values: every personality must return
// identical errno values for identical misuse (internal/difftest
// compares them by identity across personalities).
var (
	ErrBadFD = unix.ErrBadFD
)

var _ unix.Proc = (*Proc)(nil)

// Env exposes the environment (used by specialized applications that
// bypass the UNIX layer — the whole point of an exokernel).
func (p *Proc) Env() *kernel.Env { return p.e }

// Sys returns the system this process runs on.
func (p *Proc) Sys() *System { return p.s }

// Getpid is a protected procedure call into the library — no kernel
// crossing (Section 7.1: 100 cycles vs 270 on OpenBSD).
func (p *Proc) Getpid() int {
	p.e.LibCall(sim.CostGetpidWork)
	return p.pid
}

// UID returns the process owner.
func (p *Proc) UID() uint16 { return p.uid }

// Compute charges application CPU time.
func (p *Proc) Compute(c sim.Time) { p.e.Use(c) }

// Now returns virtual time.
func (p *Proc) Now() sim.Time { return p.s.K.Now() }

func (p *Proc) allocFD(f *file) unix.FD {
	// The fd table is shared global state (Section 5.2.1).
	p.s.sharedWrite(p.e)
	fd := p.nextFD
	p.nextFD++
	p.fds[fd] = f
	return fd
}

func (p *Proc) lookupFD(fd unix.FD) (*file, error) {
	f, ok := p.fds[fd]
	if !ok {
		return nil, ErrBadFD
	}
	return f, nil
}

// Open opens an existing file.
func (p *Proc) Open(path string) (unix.FD, error) {
	fs, rel := p.s.resolve(path)
	ref, in, err := fs.Lookup(p.e, rel)
	if err != nil {
		return -1, err
	}
	if in.Kind == cffs.KindDir {
		return -1, cffs.ErrIsDir
	}
	return p.allocFD(&file{kind: kindFile, fs: fs, ref: ref, path: rel}), nil
}

// Create makes (or truncates-by-recreating) a file and opens it.
func (p *Proc) Create(path string, mode uint32) (unix.FD, error) {
	fs, rel := p.s.resolve(path)
	if _, _, err := fs.Lookup(p.e, rel); err == nil {
		if err := fs.Unlink(p.e, rel); err != nil {
			return -1, err
		}
	}
	ref, err := fs.Create(p.e, rel, uint32(p.uid), uint32(p.uid), mode)
	if err != nil {
		return -1, err
	}
	return p.allocFD(&file{kind: kindFile, fs: fs, ref: ref, path: rel}), nil
}

// Read reads from the descriptor's current offset.
func (p *Proc) Read(fd unix.FD, buf []byte) (int, error) {
	f, err := p.lookupFD(fd)
	if err != nil {
		return 0, err
	}
	switch f.kind {
	case kindPipeR:
		return f.pipe.read(p.e, buf)
	case kindPipeW:
		return 0, unix.ErrBadFD // read from write end
	}
	n, err := f.fs.ReadAt(p.e, f.ref, f.off, buf)
	f.off += int64(n)
	return n, err
}

// Write writes at the descriptor's current offset.
func (p *Proc) Write(fd unix.FD, buf []byte) (int, error) {
	f, err := p.lookupFD(fd)
	if err != nil {
		return 0, err
	}
	switch f.kind {
	case kindPipeW:
		return f.pipe.write(p.e, buf)
	case kindPipeR:
		return 0, unix.ErrBadFD // write to read end
	}
	n, err := f.fs.WriteAt(p.e, f.ref, f.off, buf)
	f.off += int64(n)
	return n, err
}

// Seek repositions the descriptor.
func (p *Proc) Seek(fd unix.FD, off int64, whence int) (int64, error) {
	f, err := p.lookupFD(fd)
	if err != nil {
		return 0, err
	}
	if f.kind != kindFile {
		return 0, unix.ErrSeekPipe
	}
	p.e.LibCall(20)
	pos := f.off
	switch whence {
	case unix.SeekSet:
		pos = off
	case unix.SeekCur:
		pos += off
	case unix.SeekEnd:
		// Size comes from the descriptor's inode, not its path: the
		// descriptor must follow the file across rename and go stale
		// (not resolve a new occupant) after unlink.
		in, err := f.fs.RefInode(p.e, f.ref)
		if err != nil {
			return 0, err
		}
		pos = int64(in.Size) + off
	default:
		return 0, unix.ErrInval
	}
	if pos < 0 {
		// A negative offset must not become the descriptor position:
		// a later read would slice a page at a negative index.
		return 0, unix.ErrInval
	}
	f.off = pos
	return f.off, nil
}

// Close releases the descriptor.
func (p *Proc) Close(fd unix.FD) error {
	f, err := p.lookupFD(fd)
	if err != nil {
		return err
	}
	p.s.sharedWrite(p.e)
	delete(p.fds, fd)
	if f.pipe != nil {
		f.pipe.closeEnd(p.e, f.kind == kindPipeW)
	}
	return nil
}

// Stat returns file metadata.
func (p *Proc) Stat(path string) (unix.Stat, error) {
	fs, rel := p.s.resolve(path)
	in, err := fs.Stat(p.e, rel)
	if err != nil {
		return unix.Stat{}, err
	}
	return unix.Stat{
		Size: int64(in.Size), Mode: in.Mode, UID: in.UID, GID: in.GID,
		MTime: in.MTime, IsDir: in.Kind == cffs.KindDir,
	}, nil
}

// Mkdir creates a directory.
func (p *Proc) Mkdir(path string, mode uint32) error {
	fs, rel := p.s.resolve(path)
	return fs.Mkdir(p.e, rel, uint32(p.uid), uint32(p.uid), mode)
}

// Readdir lists a directory.
func (p *Proc) Readdir(path string) ([]unix.DirEnt, error) {
	fs, rel := p.s.resolve(path)
	ents, err := fs.Readdir(p.e, rel)
	if err != nil {
		return nil, err
	}
	out := make([]unix.DirEnt, len(ents))
	for i, in := range ents {
		out[i] = unix.DirEnt{Name: in.Name, IsDir: in.Kind == cffs.KindDir,
			IsLink: in.Kind == cffs.KindLink, Size: int64(in.Size)}
	}
	return out, nil
}

// Unlink removes a file.
func (p *Proc) Unlink(path string) error {
	fs, rel := p.s.resolve(path)
	return fs.Unlink(p.e, rel)
}

// Rmdir removes an empty directory.
func (p *Proc) Rmdir(path string) error {
	fs, rel := p.s.resolve(path)
	return fs.Rmdir(p.e, rel)
}

// Rename renames a file. Cross-mount renames are rejected (EXDEV).
func (p *Proc) Rename(oldPath, newPath string) error {
	fs, ra, rb, same := p.s.resolve2(oldPath, newPath)
	if !same {
		return unix.ErrXDev
	}
	return fs.Rename(p.e, ra, rb)
}

// Chmod changes permission bits.
func (p *Proc) Chmod(path string, mode uint32) error {
	fs, rel := p.s.resolve(path)
	return fs.Chmod(p.e, rel, mode)
}

// Symlink creates a symbolic link.
func (p *Proc) Symlink(target, path string) error {
	fs, rel := p.s.resolve(path)
	return fs.Symlink(p.e, target, rel, uint32(p.uid), uint32(p.uid))
}

// Sync flushes all mounted file systems (they share one XN, so one
// pass covers everything).
func (p *Proc) Sync() error { return p.s.FS.Sync(p.e) }

// Pipe creates a pipe pair using the configured trust level.
func (p *Proc) Pipe() (unix.FD, unix.FD, error) {
	pi := newPipe(p.s, p.e, p.s.Cfg.SharedMemPipes)
	r := p.allocFD(&file{kind: kindPipeR, pipe: pi})
	w := p.allocFD(&file{kind: kindPipeW, pipe: pi})
	return r, w, nil
}

// Spawn forks and execs a child process. ExOS fork scans the page
// table marking pages copy-on-write through batched system calls
// (~6 ms, Section 6.2); exec overlays a demand-loaded image.
func (p *Proc) Spawn(name string, f func(unix.Proc)) (unix.Handle, error) {
	p.s.K.Stats.Inc(sim.CtrForks)
	p.s.sharedWrite(p.e) // process map update
	// Batched PTE updates: a handful of traps cover the scan.
	p.e.Syscalls(8)
	p.e.Use(sim.CostForkExOS + sim.CostExec)
	pid := p.s.nextPid
	p.s.nextPid++
	uid := p.uid
	s := p.s
	// Fork semantics: the child inherits the parent's descriptors
	// (sharing the open-file objects and offsets).
	inherited := make(map[unix.FD]*file, len(p.fds))
	for fd, fl := range p.fds {
		inherited[fd] = fl
		if fl.pipe != nil {
			fl.pipe.addRef(fl.kind == kindPipeW)
		}
	}
	nextFD := p.nextFD
	env := s.K.Spawn(name, func(e *kernel.Env) {
		e.Creds = cap.UnixCreds(uid)
		// The child's early COW faults (stack/data pages the fork
		// call itself was using were already copied eagerly).
		e.Use(4 * sim.CostCOWFault)
		child := &Proc{s: s, e: e, pid: pid, uid: uid, fds: inherited, nextFD: nextFD}
		s.procs[pid] = child
		f(child)
		child.closeAll()
		delete(s.procs, pid)
	})
	return &procHandle{parent: p, env: env}, nil
}

// closeAll releases every descriptor at process exit (UNIX closes a
// dying process's files; pipes must see their ends drop).
func (p *Proc) closeAll() {
	for fd := unix.FD(0); fd < p.nextFD; fd++ {
		f, ok := p.fds[fd]
		if !ok {
			continue
		}
		delete(p.fds, fd)
		if f.pipe != nil {
			f.pipe.closeEnd(p.e, f.kind == kindPipeW)
		}
	}
}

type procHandle struct {
	parent *Proc
	env    *kernel.Env
}

// Wait blocks the parent until the child exits (wait4 semantics).
func (h *procHandle) Wait() {
	h.parent.e.Syscall(200)
	h.parent.e.WaitFor(h.env)
}

// Env exposes the child's environment (the workload launcher's
// wait-any needs it).
func (h *procHandle) Env() *kernel.Env { return h.env }
