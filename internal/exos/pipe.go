package exos

import (
	"xok/internal/cap"
	"xok/internal/kernel"
	"xok/internal/sim"
	"xok/internal/unix"
	"xok/internal/wkpred"
)

// Pipes (Section 5.2.1): "implemented using Xok's software regions,
// coupled with a 'directed yield' to the other party when it is
// required to do work (i.e., if the queue is full or empty)".
//
// Two trust levels exist, matching Table 2:
//
//   - shared-memory (mutual trust): the ring buffer lives in memory
//     both processes map; transfers are bare copies.
//   - protected: the ring lives in a software region, so every data
//     movement is a system call, and — gratuitously, as the paper
//     notes — a wakeup predicate is installed on every read.
//
// Both use directed yields for the handoff.

const pipeCapacity = 16384

// ErrPipeClosed reports a write to a pipe with no reader (the
// canonical unix.ErrPipe, shared across personalities).
var ErrPipeClosed = unix.ErrPipe

type pipe struct {
	s      *System
	shared bool

	buf    []byte // shared-memory variant storage
	region kernel.RegionID

	count      int64 // bytes buffered; watched by wakeup predicates
	rpos, wpos int

	readerWaiting *kernel.Env
	writerWaiting *kernel.Env

	// Open-descriptor counts per end (fork shares ends, so EOF and
	// EPIPE only fire when the last descriptor of an end closes).
	readers int
	writers int

	pred *wkpred.Pred
}

func (p *pipe) rClosed() bool { return p.readers == 0 }
func (p *pipe) wClosed() bool { return p.writers == 0 }

func newPipe(s *System, e *kernel.Env, shared bool) *pipe {
	p := &pipe{s: s, shared: shared, readers: 1, writers: 1}
	if shared {
		p.buf = make([]byte, pipeCapacity)
		e.LibCall(sim.CopyCost(64)) // set up the shared mapping
	} else {
		p.region = e.RegionCreate(pipeCapacity, cap.Root(true))
		pr, err := wkpred.Compile(wkpred.Cmp(wkpred.GT, wkpred.Load(&p.count), wkpred.Const(0)))
		if err != nil {
			panic("exos: pipe predicate: " + err.Error())
		}
		p.pred = pr
	}
	return p
}

// moveIn copies src into the ring at wpos (through the region in
// protected mode), advancing wpos.
func (p *pipe) moveIn(e *kernel.Env, src []byte) {
	for len(src) > 0 {
		seg := len(src)
		if p.wpos+seg > pipeCapacity {
			seg = pipeCapacity - p.wpos
		}
		if p.shared {
			copy(p.buf[p.wpos:], src[:seg])
			e.Use(sim.CopyCost(seg))
			p.s.K.Stats.Add(sim.CtrBytesCopied, int64(seg))
		} else {
			e.Use(sim.CostRegionCheck)
			if err := e.RegionWrite(p.region, p.wpos, src[:seg]); err != nil {
				panic("exos: pipe region write: " + err.Error())
			}
		}
		p.wpos = (p.wpos + seg) % pipeCapacity
		src = src[seg:]
	}
}

// moveOut copies from the ring at rpos into dst, advancing rpos.
func (p *pipe) moveOut(e *kernel.Env, dst []byte) {
	for len(dst) > 0 {
		seg := len(dst)
		if p.rpos+seg > pipeCapacity {
			seg = pipeCapacity - p.rpos
		}
		if p.shared {
			copy(dst[:seg], p.buf[p.rpos:])
			e.Use(sim.CopyCost(seg))
			p.s.K.Stats.Add(sim.CtrBytesCopied, int64(seg))
		} else {
			e.Use(sim.CostRegionCheck)
			if err := e.RegionRead(p.region, p.rpos, dst[:seg]); err != nil {
				panic("exos: pipe region read: " + err.Error())
			}
		}
		p.rpos = (p.rpos + seg) % pipeCapacity
		dst = dst[seg:]
	}
}

// write sends data, blocking (with directed yields to the reader) when
// the queue fills.
func (p *pipe) write(e *kernel.Env, data []byte) (int, error) {
	e.LibCall(60)
	n := 0
	for n < len(data) {
		if p.rClosed() {
			return n, ErrPipeClosed
		}
		space := pipeCapacity - int(p.count)
		if space == 0 {
			// Queue full: the reader must do work — yield to it, or
			// block until a read drains the queue.
			p.writerWaiting = e
			if r := p.readerWaiting; r != nil {
				p.readerWaiting = nil
				e.YieldTo(r)
			} else {
				e.Block()
			}
			continue
		}
		chunk := len(data) - n
		if chunk > space {
			chunk = space
		}
		p.moveIn(e, data[n:n+chunk])
		p.count += int64(chunk)
		n += chunk
	}
	if r := p.readerWaiting; r != nil && p.count > 0 {
		p.readerWaiting = nil
		e.YieldTo(r)
	}
	return n, nil
}

// read receives up to len(buf) bytes; returns 0, nil at EOF.
func (p *pipe) read(e *kernel.Env, buf []byte) (int, error) {
	e.LibCall(60)
	if !p.shared {
		// "...installs a wakeup predicate on every read (something
		// unnecessary even with mutual distrust)" — the gratuitous
		// protection Table 2 measures. Each install compiles the
		// predicate and pre-translates its addresses.
		e.Syscall(sim.CostPredicateDownload)
	}
	for p.count == 0 {
		if p.wClosed() {
			return 0, nil // EOF
		}
		p.readerWaiting = e
		w := p.writerWaiting
		p.writerWaiting = nil
		if !p.shared {
			// Sleep on the predicate; the writer's yield makes the
			// dispatch pass that re-evaluates it.
			if w != nil {
				e.YieldTo(w)
			} else {
				e.SleepOn(p.pred, 0)
			}
		} else if w != nil {
			e.YieldTo(w)
		} else {
			e.Block()
		}
	}
	chunk := len(buf)
	if int64(chunk) > p.count {
		chunk = int(p.count)
	}
	p.moveOut(e, buf[:chunk])
	p.count -= int64(chunk)
	if w := p.writerWaiting; w != nil {
		p.writerWaiting = nil
		p.s.K.Wake(w)
	}
	return chunk, nil
}

// closeEnd releases one descriptor of an end; when the last one goes,
// any peer blocked on that end wakes (EOF / EPIPE).
func (p *pipe) closeEnd(e *kernel.Env, writeEnd bool) {
	if writeEnd {
		if p.writers > 0 {
			p.writers--
		}
		if p.wClosed() {
			if r := p.readerWaiting; r != nil {
				p.readerWaiting = nil
				p.s.K.Wake(r)
			}
		}
	} else {
		if p.readers > 0 {
			p.readers--
		}
		if p.rClosed() {
			if w := p.writerWaiting; w != nil {
				p.writerWaiting = nil
				p.s.K.Wake(w)
			}
		}
	}
}

// addRef notes a forked descriptor sharing this end.
func (p *pipe) addRef(writeEnd bool) {
	if writeEnd {
		p.writers++
	} else {
		p.readers++
	}
}
