package exos

import (
	"errors"
	"testing"

	"xok/internal/unix"
)

func TestSignalDelivery(t *testing.T) {
	s := Boot(Config{})
	got := make(chan [2]int, 1)
	var waiterPid int
	s.Spawn("waiter", 0, func(p unix.Proc) {
		ep := p.(*Proc)
		waiterPid = ep.pid
		sig, from := ep.Pause()
		got <- [2]int{sig, from}
	})
	s.Spawn("killer", 0, func(p unix.Proc) {
		ep := p.(*Proc)
		p.Compute(1000)
		if err := ep.Kill(waiterPid, SIGUSR1); err != nil {
			t.Errorf("kill: %v", err)
		}
	})
	s.Run()
	select {
	case g := <-got:
		if g[0] != SIGUSR1 {
			t.Fatalf("signal = %d, want SIGUSR1", g[0])
		}
		if g[1] != 2 {
			t.Fatalf("sender pid = %d, want 2", g[1])
		}
	default:
		t.Fatal("signal never delivered")
	}
	s.K.Shutdown()
}

func TestSignalsQueueInOrder(t *testing.T) {
	s := Boot(Config{})
	s.Spawn("target", 0, func(p unix.Proc) {
		ep := p.(*Proc)
		want := []int{SIGHUP, SIGTERM, SIGUSR2}
		for i := 0; i < 3; i++ {
			sig, _ := ep.Pause() // blocks until each signal arrives
			if sig != want[i] {
				t.Errorf("signal %d = %d, want %d", i, sig, want[i])
			}
		}
	})
	s.Spawn("sender", 0, func(p unix.Proc) {
		ep := p.(*Proc)
		for _, sig := range []int{SIGHUP, SIGTERM, SIGUSR2} {
			if err := ep.Kill(1, sig); err != nil {
				t.Errorf("kill: %v", err)
			}
		}
	})
	s.Run()
}

func TestKillNoSuchProcess(t *testing.T) {
	s := Boot(Config{})
	s.Spawn("k", 0, func(p unix.Proc) {
		if err := p.(*Proc).Kill(999, SIGTERM); !errors.Is(err, ErrNoProcess) {
			t.Errorf("err = %v, want ErrNoProcess", err)
		}
	})
	s.Run()
}
